package repro_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCommandLineWorkflow builds the real binaries and drives the full
// record -> inspect -> replay workflow through their public interfaces.
func TestCommandLineWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bins := map[string]string{}
	for _, name := range []string{"preslist", "presrun", "presreplay", "prestrace", "presbench"} {
		bin := filepath.Join(dir, name)
		out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+name).CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, out)
		}
		bins[name] = bin
	}
	run := func(name string, args ...string) string {
		t.Helper()
		out, err := exec.Command(bins[name], args...).CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	if out := run("preslist"); !strings.Contains(out, "mysqld") || !strings.Contains(out, "radix-deadlock") {
		t.Fatalf("preslist output:\n%s", out)
	}

	recFile := filepath.Join(dir, "run.pres")
	out := run("presrun", "-bug", "fft-barrier", "-scheme", "SYNC", "-o", recFile)
	if !strings.Contains(out, "manifested") {
		t.Fatalf("presrun output:\n%s", out)
	}
	if _, err := os.Stat(recFile); err != nil {
		t.Fatal(err)
	}

	out = run("prestrace", "-n", "5", recFile)
	if !strings.Contains(out, "scheme=SYNC") || !strings.Contains(out, "thread-start") {
		t.Fatalf("prestrace output:\n%s", out)
	}

	out = run("presreplay", "-app", "fft", "-bug", "fft-barrier", recFile)
	if !strings.Contains(out, "reproduced in") || !strings.Contains(out, "re-reproduced") {
		t.Fatalf("presreplay output:\n%s", out)
	}
	if !strings.Contains(out, "simplified schedule") {
		t.Fatalf("presreplay missing simplification:\n%s", out)
	}

	out = run("presbench", "-exp", "e9", "-json", "-seed-budget", "500")
	if !strings.Contains(out, "\"e9\"") || !strings.Contains(out, "\"Reproduced\": true") {
		t.Fatalf("presbench json output:\n%s", out)
	}
}
