package repro_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

// TestCommandLineWorkflow builds the real binaries and drives the full
// record -> inspect -> replay workflow through their public interfaces.
func TestCommandLineWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bins := map[string]string{}
	for _, name := range []string{"preslist", "presrun", "presreplay", "prestrace", "presbench"} {
		bin := filepath.Join(dir, name)
		out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+name).CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, out)
		}
		bins[name] = bin
	}
	run := func(name string, args ...string) string {
		t.Helper()
		out, err := exec.Command(bins[name], args...).CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	if out := run("preslist"); !strings.Contains(out, "mysqld") || !strings.Contains(out, "radix-deadlock") {
		t.Fatalf("preslist output:\n%s", out)
	}

	recFile := filepath.Join(dir, "run.pres")
	out := run("presrun", "-bug", "fft-barrier", "-scheme", "SYNC", "-o", recFile)
	if !strings.Contains(out, "manifested") {
		t.Fatalf("presrun output:\n%s", out)
	}
	if _, err := os.Stat(recFile); err != nil {
		t.Fatal(err)
	}

	out = run("prestrace", "-n", "5", recFile)
	if !strings.Contains(out, "scheme=SYNC") || !strings.Contains(out, "thread-start") {
		t.Fatalf("prestrace output:\n%s", out)
	}

	metricsFile := filepath.Join(dir, "replay-metrics.json")
	traceFile := filepath.Join(dir, "replay-trace.jsonl")
	out = run("presreplay", "-app", "fft", "-bug", "fft-barrier",
		"-metrics-out", metricsFile, "-trace-out", traceFile, recFile)
	if !strings.Contains(out, "reproduced in") || !strings.Contains(out, "re-reproduced") {
		t.Fatalf("presreplay output:\n%s", out)
	}
	if !strings.Contains(out, "simplified schedule") {
		t.Fatalf("presreplay missing simplification:\n%s", out)
	}
	checkMetricsJSON(t, metricsFile)
	checkTraceJSONL(t, traceFile)

	promFile := filepath.Join(dir, "replay-metrics.prom")
	run("presreplay", "-app", "fft", "-bug", "fft-barrier",
		"-metrics-out", promFile, "-metrics-format", "prom", recFile)
	prom, err := os.ReadFile(promFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(prom), "# TYPE pres_replay_attempts_total counter") ||
		!strings.Contains(string(prom), `le="+Inf"`) {
		t.Fatalf("prometheus metrics:\n%s", prom)
	}

	out = run("presbench", "-exp", "e9", "-json", "-seed-budget", "500")
	if !strings.Contains(out, "\"e9\"") || !strings.Contains(out, "\"Reproduced\": true") {
		t.Fatalf("presbench json output:\n%s", out)
	}
}

// checkMetricsJSON asserts the file is a valid repro.MetricsSnapshot
// with the headline replay series present.
func checkMetricsJSON(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap repro.MetricsSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics file is not a snapshot: %v\n%s", err, raw)
	}
	var attempts uint64
	for k, v := range snap.Counters {
		if strings.HasPrefix(k, "pres_replay_attempts_total{") {
			attempts += v
		}
	}
	if attempts == 0 {
		t.Fatalf("no pres_replay_attempts_total series in %v", snap.Counters)
	}
	if snap.Counters["sched_steps_total"] == 0 {
		t.Fatalf("scheduler counters missing: %v", snap.Counters)
	}
	if _, ok := snap.Histograms["pres_replay_attempt_wall_seconds"]; !ok {
		t.Fatalf("attempt wall histogram missing: %v", snap.Histograms)
	}
}

// checkTraceJSONL asserts the trace is valid JSONL: one attempt event
// per attempt with the contract's fields, closed by a summary event.
func checkTraceJSONL(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) < 2 {
		t.Fatalf("trace has %d lines; want attempts + summary", len(lines))
	}
	for i, ln := range lines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("trace line %d %q: %v", i+1, ln, err)
		}
		last := i == len(lines)-1
		switch ev["event"] {
		case repro.EventAttempt:
			if last {
				t.Fatal("trace not closed by a summary event")
			}
			for _, field := range []string{"attempt", "mode", "outcome", "wall_ms", "sketch_consumed"} {
				if _, ok := ev[field]; !ok {
					t.Fatalf("attempt event missing %q: %v", field, ev)
				}
			}
		case repro.EventSummary:
			if !last {
				t.Fatalf("summary event mid-trace at line %d", i+1)
			}
			if ev["reproduced"] != true {
				t.Fatalf("summary: %v", ev)
			}
		default:
			t.Fatalf("unknown event type in %v", ev)
		}
	}
}
