# Standard-library-only Go module; these targets just bundle the
# invocations CI and contributors run by hand.

GO ?= go

.PHONY: check build vet test bench

## check: the full gate — build everything, vet, test under -race.
check: build vet
	$(GO) test -race ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

## bench: substrate micro-benchmarks, including the observability
## overhead pairs (SchedulingPointMetricsOff/On, ReplaySearchMetricsOff/On)
## that back OBSERVABILITY.md's disabled-means-free claim.
bench:
	$(GO) test -run NONE -bench . -benchtime 1s .
