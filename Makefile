# Standard-library-only Go module; these targets just bundle the
# invocations CI and contributors run by hand.

GO ?= go
FUZZTIME ?= 30s

.PHONY: check build vet lint test bench stress fuzz-short

## check: the full gate — build everything, lint (gofmt + vet), test
## under -race (including the fast-path equivalence properties in
## internal/sched and internal/core), stress the search engine, and
## give every fuzz target a short budget.
check: build lint stress fuzz-short
	$(GO) test -race ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## lint: formatting and static checks — fail if any file needs gofmt,
## then go vet everything.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

test:
	$(GO) test ./...

## stress: the concurrency gate — the work-stealing search (core) and
## the experiment cell pool (harness) twice under -race, so the
## dedup/commit/cache/dispatch paths get different goroutine schedules
## on each pass.
stress:
	$(GO) test -race -count=2 ./internal/core/...
	$(GO) test -race -count=2 -run 'TestPool|TestJobs|TestMetricsDeterministic' ./internal/harness/...
	$(GO) test -race -count=2 -run 'TestProp|TestRunCancellation' ./internal/sched/...

## fuzz-short: run every native fuzz target in internal/trace for
## FUZZTIME each (the canonical-key collision-freedom targets plus the
## decoder robustness targets), seeded from testdata/fuzz corpora.
fuzz-short:
	@set -e; for t in $$($(GO) test -list 'Fuzz.*' ./internal/trace | grep '^Fuzz'); do \
		echo "fuzz $$t ($(FUZZTIME))"; \
		$(GO) test -run NONE -fuzz "^$$t$$" -fuzztime $(FUZZTIME) ./internal/trace; \
	done

## bench: substrate micro-benchmarks, including the observability
## overhead pairs (SchedulingPointMetricsOff/On, ReplaySearchMetricsOff/On)
## that back OBSERVABILITY.md's disabled-means-free claim, the
## wire-format/harness-pool benches (BenchmarkEncodeSketch*,
## BenchmarkHarnessMatrix*), and the grant-loop trio
## (BenchmarkSchedulingPoint/SingleStep/Batch) with its zero-alloc
## gate (TestSchedGrantLoopAllocFree). presperf distills the headline
## numbers — encode bytes/entry and ns/entry per scheme v1 vs v2,
## E2/E8 matrix wall-clock at -j1 vs -j GOMAXPROCS, and the run-grant
## fast path's per-app steps/sec, handoffs/step, and allocs/step
## before vs after — into BENCH_pr5.json.
bench:
	$(GO) test -run TestSchedGrantLoopAllocFree -bench . -benchtime 1s .
	$(GO) run ./cmd/presperf -out BENCH_pr5.json
