# Standard-library-only Go module; these targets just bundle the
# invocations CI and contributors run by hand.

GO ?= go
FUZZTIME ?= 30s

.PHONY: check build vet lint test bench bench-compare stress scenarios fuzz-short docs-drift

## check: the full gate — build everything, lint (gofmt + vet), verify
## the metric docs are in sync, test under -race (including the
## fast-path and per-thread-log equivalence properties in
## internal/sched and internal/core), stress the search engine, run
## the failure-injection matrix and generator sweep, and give every
## fuzz target a short budget (which includes the per-thread merge
## fuzzer FuzzShardMergeRoundTrip and the scenario-generator
## round-tripper FuzzScenarioGen). The bench comparison is advisory
## here (the leading -): recorded BENCH numbers came from whatever
## host wrote them, so a drift warning must not fail an unrelated
## change — run bench-compare directly for the enforcing exit code.
check: build lint docs-drift stress scenarios fuzz-short
	$(GO) test -race ./...
	-$(GO) run ./cmd/benchcmp

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## lint: formatting and static checks — fail if any file needs gofmt,
## then go vet everything.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

test:
	$(GO) test ./...

## stress: the concurrency gate — the work-stealing search (core) and
## the experiment cell pool (harness) twice under -race, so the
## dedup/commit/cache/dispatch paths get different goroutine schedules
## on each pass.
stress:
	$(GO) test -race -count=2 ./internal/core/...
	$(GO) test -race -count=2 -run 'TestPool|TestJobs|TestMetricsDeterministic' ./internal/harness/...
	$(GO) test -race -count=2 -run 'TestProp|TestRunCancellation' ./internal/sched/...

## scenarios: the failure-injection matrix (every app x failure class
## driven to its declared outcome and replayed to reproduction) plus a
## 100-seed generated-program sweep (buggy variants manifest and
## reproduce, patched variants stay clean). The in-test sweep slice and
## the exhaustive ground-truth prover run under go test; the wide sweep
## goes through the presgen CLI.
scenarios:
	$(GO) test -run 'TestMatrix|TestGen|TestInject' ./internal/scenario ./internal/sched
	$(GO) run ./cmd/presgen -sweep 100

## fuzz-short: run every native fuzz target in internal/trace and
## internal/scenario for FUZZTIME each (the canonical-key
## collision-freedom targets, the decoder robustness targets, and the
## generator round-tripper), seeded from testdata/fuzz corpora.
fuzz-short:
	@set -e; for pkg in ./internal/trace ./internal/scenario; do \
		for t in $$($(GO) test -list 'Fuzz.*' $$pkg | grep '^Fuzz'); do \
			echo "fuzz $$t ($(FUZZTIME)) [$$pkg]"; \
			$(GO) test -run NONE -fuzz "^$$t$$" -fuzztime $(FUZZTIME) $$pkg; \
		done; \
	done

## bench: substrate micro-benchmarks, including the observability
## overhead pairs (SchedulingPointMetricsOff/On, ReplaySearchMetricsOff/On)
## that back OBSERVABILITY.md's disabled-means-free claim, the
## wire-format/harness-pool benches (BenchmarkEncodeSketch*,
## BenchmarkHarnessMatrix*), and the grant-loop trio
## (BenchmarkSchedulingPoint/SingleStep/Batch) with its zero-alloc
## gate (TestSchedGrantLoopAllocFree). presperf distills the headline
## numbers — encode bytes/entry and ns/entry per scheme v1 vs v2,
## E2/E8 matrix wall-clock at -j1 vs -j GOMAXPROCS, the run-grant
## fast path's per-app steps/sec, handoffs/step, and allocs/step
## before vs after (at each -procs setting), the record path's
## global-log vs per-thread-log fleet throughput across the -procs
## sweep, the always-on record path's epoch-ring-off vs epoch-ring-on
## before/after, and the replay search's prefix-snapshots-off vs -on
## step-work comparison per bug and policy — into BENCH_pr10.json.
bench:
	$(GO) test -run TestSchedGrantLoopAllocFree -bench . -benchtime 1s .
	$(GO) run ./cmd/presperf -out BENCH_pr10.json -procs 1,2,4

## bench-compare: diff the two newest BENCH_*.json reports (presperf
## output) and fail if a shared headline — per-app best steps/sec,
## per-scheme encoded bytes/entry — regressed by more than 10%.
bench-compare:
	$(GO) run ./cmd/benchcmp

## docs-drift: every pres_-prefixed metric name registered anywhere in
## the source (internal/obs wiring in sched/core/harness/cmd) must have
## a row in OBSERVABILITY.md, and every CLI flag README.md mentions in
## inline code (`-flag`) must be registered by some tool in cmd/; a
## metric or flag documented without code (or vice versa) fails the
## gate. FLAG_ALLOW lists README tokens that look like flags but are
## not ours (e.g. go test's -race).
FLAG_ALLOW = race bench benchtime
docs-drift:
	@set -e; \
	names=$$(grep -ohrE '"pres_[a-z_]+"' --include='*.go' --exclude='*_test.go' internal cmd | tr -d '"' | sort -u); \
	missing=0; \
	for n in $$names; do \
		if ! grep -q "$$n" OBSERVABILITY.md; then \
			echo "docs-drift: metric $$n is registered in code but missing from OBSERVABILITY.md"; missing=1; \
		fi; \
	done; \
	flags=$$(grep -ohE '[`]-[a-z][a-z0-9-]*' README.md | sed 's/^..//' | sort -u); \
	for f in $$flags; do \
		case " $(FLAG_ALLOW) " in *" $$f "*) continue;; esac; \
		if ! grep -qrE "\"$$f\"" --include='*.go' cmd; then \
			echo "docs-drift: flag -$$f is documented in README.md but no tool in cmd/ registers it"; missing=1; \
		fi; \
	done; \
	if [ $$missing -ne 0 ]; then exit 1; fi; \
	echo "docs-drift: $$(echo "$$names" | wc -l) pres_ metrics and $$(echo "$$flags" | wc -l) README flags all in sync"
