package patterns

import (
	"strings"
	"testing"

	"repro/internal/appkit"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sketch"
	"repro/internal/vsys"
)

func exploreVariant(p Pattern, fixed bool, maxRuns int) *sched.ExploreResult {
	prog := p.Build()
	return sched.Explore(func(t *sched.Thread) {
		prog.Run(&appkit.Env{T: t, W: vsys.NewWorld(1), FixBugs: fixed})
	}, sched.ExploreOptions{MaxRuns: maxRuns})
}

// TestCatalogGroundTruth is the catalog's defining property, checked by
// exhaustive enumeration: every buggy variant fails under some schedule
// and every fixed variant under none. Patterns whose space fits the
// budget get a complete proof; the rest (the 3-philosopher ring) get a
// bounded verification over the enumerated prefix.
func TestCatalogGroundTruth(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			const budget = 120_000
			buggy := exploreVariant(p, false, budget)
			if buggy.FailureCount == 0 {
				t.Fatalf("buggy variant never fails (%d schedules, complete=%v)", buggy.Runs, buggy.Complete)
			}
			if buggy.Complete && buggy.FailureCount == buggy.Runs {
				t.Fatalf("buggy variant always fails — not schedule-dependent")
			}
			fixed := exploreVariant(p, true, budget)
			if fixed.FailureCount != 0 {
				t.Fatalf("fixed variant fails: %v", fixed)
			}
			kind := "proved"
			if !buggy.Complete || !fixed.Complete {
				kind = "bounded"
			}
			t.Logf("%s: buggy %d/%d schedules fail; fixed 0/%d",
				kind, buggy.FailureCount, buggy.Runs, fixed.Runs)
		})
	}
}

// TestCatalogFailureKinds: deadlock/hang patterns must manifest as
// deadlocks, the rest as assertions with the declared bug id.
func TestCatalogFailureKinds(t *testing.T) {
	for _, p := range All() {
		prog := p.Build()
		res := sched.Explore(func(t *sched.Thread) {
			prog.Run(&appkit.Env{T: t, W: vsys.NewWorld(1)})
		}, sched.ExploreOptions{MaxRuns: 300_000, StopAtFirstFailure: true})
		if len(res.Failures) == 0 {
			t.Fatalf("%s: no failures", p.Name)
		}
		f := res.Failures[0]
		switch p.Class {
		case "deadlock", "hang":
			if f.Reason != sched.ReasonDeadlock {
				t.Errorf("%s: reason = %v", p.Name, f.Reason)
			}
		default:
			if f.Reason != sched.ReasonAssert || f.BugID != p.BugID {
				t.Errorf("%s: failure = %v", p.Name, f)
			}
		}
	}
}

// TestCatalogReplays: PRES reproduces every pattern from a SYNC sketch.
func TestCatalogReplays(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			prog := p.Build()
			oracle := core.MatchBugID(p.BugID)
			// One-shot windows in tiny programs need a contended
			// machine to manifest (a thread stranded mid-window by
			// preemption), so the production sweep covers processor
			// counts down to a loaded uniprocessor.
			var rec *core.Recording
			for _, procs := range []int{4, 1, 2} {
				for seed := int64(0); seed < 4000 && rec == nil; seed++ {
					r := core.Record(prog, core.Options{
						Scheme:       sketch.SYNC,
						Processors:   procs,
						Preempt:      0.05,
						ScheduleSeed: seed,
						WorldSeed:    1,
						MaxSteps:     100_000,
					})
					if f := r.BugFailure(); f != nil && oracle(f) {
						rec = r
					}
				}
				if rec != nil {
					break
				}
			}
			if rec == nil {
				t.Fatalf("%s: no buggy production seed across processor counts", p.Name)
			}
			res := core.Replay(prog, rec, core.ReplayOptions{Feedback: true, Oracle: oracle})
			if !res.Reproduced {
				t.Fatalf("not reproduced: %d attempts %+v", res.Attempts, res.Stats)
			}
			out := core.Reproduce(prog, rec, res.Order)
			if out.Failure == nil || !out.Failure.IsBug() {
				t.Fatalf("captured order lost the bug: %v", out.Failure)
			}
			t.Logf("reproduced in %d attempts", res.Attempts)
		})
	}
}

func TestCatalogLookup(t *testing.T) {
	if len(All()) != 12 {
		t.Fatalf("catalog has %d patterns", len(All()))
	}
	p, ok := Get("abba-deadlock")
	if !ok || !strings.Contains(p.BugID, "deadlock") {
		t.Fatal("lookup broken")
	}
	if _, ok := Get("nope"); ok {
		t.Fatal("unknown pattern found")
	}
}
