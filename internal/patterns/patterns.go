// Package patterns is a catalog of canonical concurrency-bug patterns —
// the taxonomy the paper's corpus instantiates — as small parameterized
// programs with known ground truth. Each pattern is tiny enough for the
// exhaustive explorer to *prove* facts about (the buggy variant fails
// under some schedule, the fixed variant under none), and each is a
// regression battery for the replayer that is independent of the tuned
// application corpus.
//
// The catalog covers: single- and multi-variable atomicity violations,
// publish- and teardown-order violations, AB/BA and dining-philosopher
// deadlocks, the lost-wakeup hang, a barrier misuse, the lost wakeup
// under producer load, a bounded livelock, the ABA problem, and broken
// double-checked locking. The last four are the templates the scenario
// generator (internal/scenario) seeds its random programs with.
package patterns

import (
	"fmt"

	"repro/internal/appkit"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/ssync"
)

// Pattern is one catalog entry.
type Pattern struct {
	// Name identifies the pattern; the buggy variant fails with BugID.
	Name  string
	BugID string
	// Class is the taxonomy bucket: "atomicity", "order", "deadlock",
	// "hang" or "livelock". Deadlock and hang patterns manifest as
	// detected deadlocks; livelock manifests as a starvation assertion
	// (a retry bound trips), since threads stay runnable throughout.
	Class string
	// Build returns the program; FixBugs in the Env selects the correct
	// synchronization.
	Build func() *appkit.Program
}

// All returns the catalog.
func All() []Pattern {
	return []Pattern{
		{"single-var-atomicity", "pat-sva", "atomicity", singleVarAtomicity},
		{"multi-var-atomicity", "pat-mva", "atomicity", multiVarAtomicity},
		{"publish-order", "pat-pub", "order", publishOrder},
		{"teardown-order", "pat-tear", "order", teardownOrder},
		{"abba-deadlock", "pat-abba-deadlock", "deadlock", abbaDeadlock},
		{"philosophers-deadlock", "pat-phil-deadlock", "deadlock", philosophers},
		{"lost-wakeup", "pat-lost-deadlock", "hang", lostWakeup},
		{"barrier-misuse", "pat-barrier", "order", barrierMisuse},
		{"lost-wakeup-load", "pat-lostload-deadlock", "hang", lostWakeupLoad},
		{"livelock", "pat-live", "livelock", livelock},
		{"aba", "pat-aba", "atomicity", aba},
		{"double-checked-locking", "pat-dcl", "order", doubleCheckedLocking},
	}
}

// Get returns the named pattern.
func Get(name string) (Pattern, bool) {
	for _, p := range All() {
		if p.Name == name {
			return p, true
		}
	}
	return Pattern{}, false
}

// singleVarAtomicity: the unprotected read-modify-write counter.
func singleVarAtomicity() *appkit.Program {
	return &appkit.Program{
		Name: "pattern-sva",
		Bugs: []string{"pat-sva"},
		Run: func(env *appkit.Env) {
			th := env.T
			n := env.ScaleOr(2)
			ctr := mem.NewCell("pat.sva.ctr", 0)
			m := ssync.NewMutex("pat.sva.lock")
			var ws []*sched.Thread
			for i := 0; i < 2; i++ {
				ws = append(ws, th.Spawn("w", func(t *sched.Thread) {
					for j := 0; j < n; j++ {
						if env.FixBugs {
							m.Lock(t)
						}
						v := ctr.Load(t)
						ctr.Store(t, v+1)
						if env.FixBugs {
							m.Unlock(t)
						}
					}
				}))
			}
			for _, w := range ws {
				th.Join(w)
			}
			th.Check(ctr.Peek() == uint64(2*n), "pat-sva", "lost update: %d", ctr.Peek())
		},
	}
}

// multiVarAtomicity: two variables that must change together, read
// apart.
func multiVarAtomicity() *appkit.Program {
	return &appkit.Program{
		Name: "pattern-mva",
		Bugs: []string{"pat-mva"},
		Run: func(env *appkit.Env) {
			th := env.T
			lo := mem.NewCell("pat.mva.lo", 0)
			hi := mem.NewCell("pat.mva.hi", 0)
			m := ssync.NewMutex("pat.mva.lock")
			writer := th.Spawn("writer", func(t *sched.Thread) {
				for i := uint64(1); i <= 2; i++ {
					if env.FixBugs {
						m.Lock(t)
					}
					lo.Store(t, i)
					hi.Store(t, i)
					if env.FixBugs {
						m.Unlock(t)
					}
				}
			})
			reader := th.Spawn("reader", func(t *sched.Thread) {
				if env.FixBugs {
					m.Lock(t)
				}
				a := lo.Load(t)
				b := hi.Load(t)
				if env.FixBugs {
					m.Unlock(t)
				}
				t.Check(a == b, "pat-mva", "torn pair: lo=%d hi=%d", a, b)
			})
			th.Join(writer)
			th.Join(reader)
		},
	}
}

// publishOrder: the handle escapes before the object is initialized.
func publishOrder() *appkit.Program {
	return &appkit.Program{
		Name: "pattern-pub",
		Bugs: []string{"pat-pub"},
		Run: func(env *appkit.Env) {
			th := env.T
			body := mem.NewCell("pat.pub.body", 0)
			ptr := mem.NewCell("pat.pub.ptr", 0)
			pub := th.Spawn("publisher", func(t *sched.Thread) {
				if env.FixBugs {
					body.Store(t, 7)
					ptr.Store(t, 1)
				} else {
					ptr.Store(t, 1) // BUG: pointer first
					body.Store(t, 7)
				}
			})
			use := th.Spawn("user", func(t *sched.Thread) {
				if ptr.Load(t) == 1 {
					t.Check(body.Load(t) == 7, "pat-pub", "dangling use")
				}
			})
			th.Join(pub)
			th.Join(use)
		},
	}
}

// teardownOrder: a resource freed while a late touch is outstanding.
func teardownOrder() *appkit.Program {
	return &appkit.Program{
		Name: "pattern-tear",
		Bugs: []string{"pat-tear"},
		Run: func(env *appkit.Env) {
			th := env.T
			freed := mem.NewCell("pat.tear.freed", 0)
			done := ssync.NewWaitGroup("pat.tear.done")
			done.Add(th, 1)
			worker := th.Spawn("worker", func(t *sched.Thread) {
				done.Done(t) // BUG: progress published before the last touch
				v := freed.Load(t)
				t.Check(v == 0, "pat-tear", "use after free")
			})
			if env.FixBugs {
				th.Join(worker) // the missing join
				freed.Store(th, 1)
			} else {
				done.Wait(th)
				freed.Store(th, 1)
				th.Join(worker)
			}
		},
	}
}

// abbaDeadlock: the classic lock-order inversion.
func abbaDeadlock() *appkit.Program {
	return &appkit.Program{
		Name: "pattern-abba",
		Bugs: []string{"pat-abba-deadlock"},
		Run: func(env *appkit.Env) {
			th := env.T
			a := ssync.NewMutex("pat.abba.A")
			b := ssync.NewMutex("pat.abba.B")
			pair := func(first, second *ssync.Mutex) func(*sched.Thread) {
				return func(t *sched.Thread) {
					first.Lock(t)
					second.Lock(t)
					second.Unlock(t)
					first.Unlock(t)
				}
			}
			t1 := th.Spawn("t1", pair(a, b))
			var t2 *sched.Thread
			if env.FixBugs {
				t2 = th.Spawn("t2", pair(a, b)) // consistent order
			} else {
				t2 = th.Spawn("t2", pair(b, a)) // inversion
			}
			th.Join(t1)
			th.Join(t2)
		},
	}
}

// philosophers: workers each take their own token then their
// neighbor's, semaphore-based (the ring variant lives in the radix
// corpus app; two philosophers keep the schedule space provable).
func philosophers() *appkit.Program {
	return &appkit.Program{
		Name: "pattern-phil",
		Bugs: []string{"pat-phil-deadlock"},
		Run: func(env *appkit.Env) {
			th := env.T
			n := 2
			var forks []*ssync.Semaphore
			for i := 0; i < n; i++ {
				forks = append(forks, ssync.NewSemaphore(fmt.Sprintf("pat.phil.fork%d", i), 1))
			}
			var ws []*sched.Thread
			for i := 0; i < n; i++ {
				i := i
				ws = append(ws, th.Spawn("phil", func(t *sched.Thread) {
					lo, hi := i, (i+1)%n
					if env.FixBugs && lo > hi {
						lo, hi = hi, lo // global order breaks the cycle
					}
					forks[lo].Acquire(t)
					forks[hi].Acquire(t)
					forks[hi].Release(t)
					forks[lo].Release(t)
				}))
			}
			for _, w := range ws {
				th.Join(w)
			}
		},
	}
}

// lostWakeup: the check-then-wait without holding the lock across both.
func lostWakeup() *appkit.Program {
	return &appkit.Program{
		Name: "pattern-lost",
		Bugs: []string{"pat-lost-deadlock"},
		Run: func(env *appkit.Env) {
			th := env.T
			m := ssync.NewMutex("pat.lost.lock")
			c := ssync.NewCond("pat.lost.cond")
			ready := mem.NewCell("pat.lost.ready", 0)
			waiter := th.Spawn("waiter", func(t *sched.Thread) {
				if env.FixBugs {
					m.Lock(t)
					for ready.Load(t) == 0 {
						c.Wait(t, m)
					}
					m.Unlock(t)
					return
				}
				// BUG: predicate checked outside the lock; the signal
				// can land between the check and the wait.
				if ready.Load(t) == 0 {
					m.Lock(t)
					c.Wait(t, m)
					m.Unlock(t)
				}
			})
			m.Lock(th)
			ready.Store(th, 1)
			c.Signal(th, m)
			m.Unlock(th)
			th.Join(waiter)
		},
	}
}

// lostWakeupLoad: the lost wakeup under producer load — a work queue
// with two consumers where the buggy consumer checks the item count
// outside the lock before deciding to wait. Under load the producer
// publishes both items (signalling into the void) inside the
// check-to-wait window; a consumer that then waits sleeps forever while
// its sibling drains the queue, and the join hangs — the
// multi-consumer manifestation the single-waiter lost-wakeup pattern
// cannot express.
func lostWakeupLoad() *appkit.Program {
	return &appkit.Program{
		Name: "pattern-lostload",
		Bugs: []string{"pat-lostload-deadlock"},
		Run: func(env *appkit.Env) {
			th := env.T
			m := ssync.NewMutex("pat.lostload.lock")
			c := ssync.NewCond("pat.lostload.cond")
			count := mem.NewCell("pat.lostload.count", 0)
			consumer := func(t *sched.Thread) {
				if env.FixBugs {
					m.Lock(t)
					for count.Load(t) == 0 {
						c.Wait(t, m)
					}
					count.Store(t, count.Load(t)-1)
					m.Unlock(t)
					return
				}
				// BUG: the emptiness check happens outside the lock; both
				// signals can land between the check and the wait.
				if count.Load(t) == 0 {
					m.Lock(t)
					c.Wait(t, m)
					m.Unlock(t)
				}
				m.Lock(t)
				count.Store(t, count.Load(t)-1)
				m.Unlock(t)
			}
			c1 := th.Spawn("consumer1", consumer)
			c2 := th.Spawn("consumer2", consumer)
			// The producer is the loaded main thread: two items, one
			// signal each, with compute between them widening the window.
			for i := 0; i < 2; i++ {
				appkit.BB(th, "pat.lostload.produce")
				m.Lock(th)
				count.Store(th, count.Load(th)+1)
				c.Signal(th, m)
				m.Unlock(th)
			}
			th.Join(c1)
			th.Join(c2)
		},
	}
}

// livelock: two polite threads each hold their own lock and TryLock the
// other's, backing off (release, retry) on failure. Schedules that keep
// the threads in lockstep starve both until the retry bound trips — the
// classic livelock, detectable as a starvation assertion because every
// thread stays runnable the whole time (no deadlock ever forms). The
// fix is the same as for AB/BA deadlocks: a global acquisition order,
// under which the first thread to lock wins and the bound can never
// trip.
func livelock() *appkit.Program {
	return &appkit.Program{
		Name: "pattern-live",
		Bugs: []string{"pat-live"},
		Run: func(env *appkit.Env) {
			th := env.T
			a := ssync.NewMutex("pat.live.A")
			b := ssync.NewMutex("pat.live.B")
			const retries = 3
			polite := func(first, second *ssync.Mutex) func(*sched.Thread) {
				return func(t *sched.Thread) {
					for try := 0; ; try++ {
						first.Lock(t)
						if second.TryLock(t) {
							second.Unlock(t)
							first.Unlock(t)
							return
						}
						// Back off: release and retry from scratch.
						first.Unlock(t)
						t.Check(try < retries, "pat-live",
							"livelock: no progress after %d polite retries", retries)
						t.Yield()
					}
				}
			}
			var t1, t2 *sched.Thread
			if env.FixBugs {
				// Global order: both go A then B; blocking Lock on the
				// second mutex instead of the polite dance.
				ordered := func(t *sched.Thread) {
					a.Lock(t)
					b.Lock(t)
					b.Unlock(t)
					a.Unlock(t)
				}
				t1 = th.Spawn("t1", ordered)
				t2 = th.Spawn("t2", ordered)
			} else {
				t1 = th.Spawn("t1", polite(a, b))
				t2 = th.Spawn("t2", polite(b, a))
			}
			th.Join(t1)
			th.Join(t2)
		},
	}
}

// aba: the ABA problem on a CAS-maintained free list. The slow popper
// loads top=A and next(A)=B, is preempted, and meanwhile a fast thread
// pops A, pops B, and pushes A back. The slow CAS still sees A on top
// and succeeds — installing B, a node that was freed — and the list is
// corrupt. The fix tags the top pointer with a version counter packed
// into the same cell, so any intervening reuse changes the compared
// value and the CAS retries.
func aba() *appkit.Program {
	return &appkit.Program{
		Name: "pattern-aba",
		Bugs: []string{"pat-aba"},
		Run: func(env *appkit.Env) {
			th := env.T
			const (
				nodeA, nodeB, nodeC = 1, 2, 3
				nilNode             = 0
				verShift            = 8 // top = version<<verShift | node
			)
			// top and the per-node next pointers; initial stack A->B->C.
			// Setup uses Poke and the invariant check Peek, so only the
			// race itself contributes scheduling points — the exhaustive
			// prover's budget is spent where the bug lives.
			top := mem.NewCell("pat.aba.top", nodeA)
			next := mem.NewArray("pat.aba.next", 4)
			freed := mem.NewCell("pat.aba.freed", 0) // bitmask of freed nodes
			next.Poke(nodeA, nodeB)
			next.Poke(nodeB, nodeC)
			next.Poke(nodeC, nilNode)
			node := func(v uint64) uint64 { return v & ((1 << verShift) - 1) }
			// pack is the top-pointer write discipline: the fix tags every
			// write with a bumped version so a CAS against a stale load can
			// never succeed, while the buggy variant writes the raw node id
			// — a pop-pop-push cycle restores the exact compared value.
			pack := func(ver, n uint64) uint64 {
				if !env.FixBugs {
					return n
				}
				return ver<<verShift | n
			}
			slow := th.Spawn("slow-pop", func(t *sched.Thread) {
				for {
					old := top.Load(t)
					if node(old) == nilNode {
						return
					}
					// The ABA window: between this next-pointer load and
					// the CAS below, the fast thread can recycle node(old).
					nxt := next.Load(t, int(node(old)))
					if top.CAS(t, old, pack(old>>verShift+1, nxt)) {
						return
					}
				}
			})
			fast := th.Spawn("fast-reuse", func(t *sched.Thread) {
				old := top.Load(t)
				if node(old) != nodeA {
					return // the slow pop already won; nothing to recycle
				}
				ver := old >> verShift
				// Pop A, pop B (freeing it), push A back: each step writes
				// top, so the tagged variant bumps the version three times
				// while the untagged one ends on the very value it started
				// from.
				top.Store(t, pack(ver+1, nodeB))
				top.Store(t, pack(ver+2, nodeC))
				freed.Store(t, 1<<nodeB)
				next.Store(t, nodeA, nodeC)
				top.Store(t, pack(ver+3, nodeA))
			})
			th.Join(slow)
			th.Join(fast)
			th.Check(freed.Peek()&(1<<node(top.Peek())) == 0, "pat-aba",
				"ABA: freed node %d reinstalled as top", node(top.Peek()))
		},
	}
}

// doubleCheckedLocking: lazy initialization with the classic broken
// double-checked idiom — the buggy initializer publishes the instance
// pointer before filling the instance body, so the other reader's
// unsynchronized first check can see the pointer and read the
// uninitialized body without ever taking the lock.
func doubleCheckedLocking() *appkit.Program {
	return &appkit.Program{
		Name: "pattern-dcl",
		Bugs: []string{"pat-dcl"},
		Run: func(env *appkit.Env) {
			th := env.T
			m := ssync.NewMutex("pat.dcl.lock")
			ptr := mem.NewCell("pat.dcl.ptr", 0)
			body := mem.NewCell("pat.dcl.body", 0)
			getInstance := func(t *sched.Thread) {
				if ptr.Load(t) == 0 { // first (unsynchronized) check
					m.Lock(t)
					if ptr.Load(t) == 0 { // second (locked) check
						if env.FixBugs {
							body.Store(t, 7)
							ptr.Store(t, 1)
						} else {
							ptr.Store(t, 1) // BUG: published before init
							body.Store(t, 7)
						}
					}
					m.Unlock(t)
				}
				t.Check(body.Load(t) == 7, "pat-dcl",
					"DCL: instance observed before initialization")
			}
			r1 := th.Spawn("reader1", getInstance)
			r2 := th.Spawn("reader2", getInstance)
			th.Join(r1)
			th.Join(r2)
		},
	}
}

// barrierMisuse: one worker skips a phase barrier and reads early.
func barrierMisuse() *appkit.Program {
	return &appkit.Program{
		Name: "pattern-barrier",
		Bugs: []string{"pat-barrier"},
		Run: func(env *appkit.Env) {
			th := env.T
			b := ssync.NewBarrier("pat.bar", 2)
			data := mem.NewCell("pat.bar.data", 0)
			w1 := th.Spawn("producer", func(t *sched.Thread) {
				data.Store(t, 9)
				b.Await(t)
			})
			w2 := th.Spawn("consumer", func(t *sched.Thread) {
				if env.FixBugs {
					b.Await(t) // the required barrier
				}
				v := data.Load(t)
				t.Check(v == 9, "pat-barrier", "read before publish: %d", v)
				if !env.FixBugs {
					b.Await(t) // arrives late, keeping the barrier balanced
				}
			})
			th.Join(w1)
			th.Join(w2)
		},
	}
}
