// Package patterns is a catalog of canonical concurrency-bug patterns —
// the taxonomy the paper's corpus instantiates — as small parameterized
// programs with known ground truth. Each pattern is tiny enough for the
// exhaustive explorer to *prove* facts about (the buggy variant fails
// under some schedule, the fixed variant under none), and each is a
// regression battery for the replayer that is independent of the tuned
// application corpus.
//
// The catalog covers: single- and multi-variable atomicity violations,
// publish- and teardown-order violations, AB/BA and dining-philosopher
// deadlocks, the lost-wakeup hang, and a barrier misuse.
package patterns

import (
	"fmt"

	"repro/internal/appkit"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/ssync"
)

// Pattern is one catalog entry.
type Pattern struct {
	// Name identifies the pattern; the buggy variant fails with BugID.
	Name  string
	BugID string
	// Class is the taxonomy bucket: "atomicity", "order", "deadlock" or
	// "hang".
	Class string
	// Build returns the program; FixBugs in the Env selects the correct
	// synchronization.
	Build func() *appkit.Program
}

// All returns the catalog.
func All() []Pattern {
	return []Pattern{
		{"single-var-atomicity", "pat-sva", "atomicity", singleVarAtomicity},
		{"multi-var-atomicity", "pat-mva", "atomicity", multiVarAtomicity},
		{"publish-order", "pat-pub", "order", publishOrder},
		{"teardown-order", "pat-tear", "order", teardownOrder},
		{"abba-deadlock", "pat-abba-deadlock", "deadlock", abbaDeadlock},
		{"philosophers-deadlock", "pat-phil-deadlock", "deadlock", philosophers},
		{"lost-wakeup", "pat-lost-deadlock", "hang", lostWakeup},
		{"barrier-misuse", "pat-barrier", "order", barrierMisuse},
	}
}

// Get returns the named pattern.
func Get(name string) (Pattern, bool) {
	for _, p := range All() {
		if p.Name == name {
			return p, true
		}
	}
	return Pattern{}, false
}

// singleVarAtomicity: the unprotected read-modify-write counter.
func singleVarAtomicity() *appkit.Program {
	return &appkit.Program{
		Name: "pattern-sva",
		Bugs: []string{"pat-sva"},
		Run: func(env *appkit.Env) {
			th := env.T
			n := env.ScaleOr(2)
			ctr := mem.NewCell("pat.sva.ctr", 0)
			m := ssync.NewMutex("pat.sva.lock")
			var ws []*sched.Thread
			for i := 0; i < 2; i++ {
				ws = append(ws, th.Spawn("w", func(t *sched.Thread) {
					for j := 0; j < n; j++ {
						if env.FixBugs {
							m.Lock(t)
						}
						v := ctr.Load(t)
						ctr.Store(t, v+1)
						if env.FixBugs {
							m.Unlock(t)
						}
					}
				}))
			}
			for _, w := range ws {
				th.Join(w)
			}
			th.Check(ctr.Peek() == uint64(2*n), "pat-sva", "lost update: %d", ctr.Peek())
		},
	}
}

// multiVarAtomicity: two variables that must change together, read
// apart.
func multiVarAtomicity() *appkit.Program {
	return &appkit.Program{
		Name: "pattern-mva",
		Bugs: []string{"pat-mva"},
		Run: func(env *appkit.Env) {
			th := env.T
			lo := mem.NewCell("pat.mva.lo", 0)
			hi := mem.NewCell("pat.mva.hi", 0)
			m := ssync.NewMutex("pat.mva.lock")
			writer := th.Spawn("writer", func(t *sched.Thread) {
				for i := uint64(1); i <= 2; i++ {
					if env.FixBugs {
						m.Lock(t)
					}
					lo.Store(t, i)
					hi.Store(t, i)
					if env.FixBugs {
						m.Unlock(t)
					}
				}
			})
			reader := th.Spawn("reader", func(t *sched.Thread) {
				if env.FixBugs {
					m.Lock(t)
				}
				a := lo.Load(t)
				b := hi.Load(t)
				if env.FixBugs {
					m.Unlock(t)
				}
				t.Check(a == b, "pat-mva", "torn pair: lo=%d hi=%d", a, b)
			})
			th.Join(writer)
			th.Join(reader)
		},
	}
}

// publishOrder: the handle escapes before the object is initialized.
func publishOrder() *appkit.Program {
	return &appkit.Program{
		Name: "pattern-pub",
		Bugs: []string{"pat-pub"},
		Run: func(env *appkit.Env) {
			th := env.T
			body := mem.NewCell("pat.pub.body", 0)
			ptr := mem.NewCell("pat.pub.ptr", 0)
			pub := th.Spawn("publisher", func(t *sched.Thread) {
				if env.FixBugs {
					body.Store(t, 7)
					ptr.Store(t, 1)
				} else {
					ptr.Store(t, 1) // BUG: pointer first
					body.Store(t, 7)
				}
			})
			use := th.Spawn("user", func(t *sched.Thread) {
				if ptr.Load(t) == 1 {
					t.Check(body.Load(t) == 7, "pat-pub", "dangling use")
				}
			})
			th.Join(pub)
			th.Join(use)
		},
	}
}

// teardownOrder: a resource freed while a late touch is outstanding.
func teardownOrder() *appkit.Program {
	return &appkit.Program{
		Name: "pattern-tear",
		Bugs: []string{"pat-tear"},
		Run: func(env *appkit.Env) {
			th := env.T
			freed := mem.NewCell("pat.tear.freed", 0)
			done := ssync.NewWaitGroup("pat.tear.done")
			done.Add(th, 1)
			worker := th.Spawn("worker", func(t *sched.Thread) {
				done.Done(t) // BUG: progress published before the last touch
				v := freed.Load(t)
				t.Check(v == 0, "pat-tear", "use after free")
			})
			if env.FixBugs {
				th.Join(worker) // the missing join
				freed.Store(th, 1)
			} else {
				done.Wait(th)
				freed.Store(th, 1)
				th.Join(worker)
			}
		},
	}
}

// abbaDeadlock: the classic lock-order inversion.
func abbaDeadlock() *appkit.Program {
	return &appkit.Program{
		Name: "pattern-abba",
		Bugs: []string{"pat-abba-deadlock"},
		Run: func(env *appkit.Env) {
			th := env.T
			a := ssync.NewMutex("pat.abba.A")
			b := ssync.NewMutex("pat.abba.B")
			pair := func(first, second *ssync.Mutex) func(*sched.Thread) {
				return func(t *sched.Thread) {
					first.Lock(t)
					second.Lock(t)
					second.Unlock(t)
					first.Unlock(t)
				}
			}
			t1 := th.Spawn("t1", pair(a, b))
			var t2 *sched.Thread
			if env.FixBugs {
				t2 = th.Spawn("t2", pair(a, b)) // consistent order
			} else {
				t2 = th.Spawn("t2", pair(b, a)) // inversion
			}
			th.Join(t1)
			th.Join(t2)
		},
	}
}

// philosophers: workers each take their own token then their
// neighbor's, semaphore-based (the ring variant lives in the radix
// corpus app; two philosophers keep the schedule space provable).
func philosophers() *appkit.Program {
	return &appkit.Program{
		Name: "pattern-phil",
		Bugs: []string{"pat-phil-deadlock"},
		Run: func(env *appkit.Env) {
			th := env.T
			n := 2
			var forks []*ssync.Semaphore
			for i := 0; i < n; i++ {
				forks = append(forks, ssync.NewSemaphore(fmt.Sprintf("pat.phil.fork%d", i), 1))
			}
			var ws []*sched.Thread
			for i := 0; i < n; i++ {
				i := i
				ws = append(ws, th.Spawn("phil", func(t *sched.Thread) {
					lo, hi := i, (i+1)%n
					if env.FixBugs && lo > hi {
						lo, hi = hi, lo // global order breaks the cycle
					}
					forks[lo].Acquire(t)
					forks[hi].Acquire(t)
					forks[hi].Release(t)
					forks[lo].Release(t)
				}))
			}
			for _, w := range ws {
				th.Join(w)
			}
		},
	}
}

// lostWakeup: the check-then-wait without holding the lock across both.
func lostWakeup() *appkit.Program {
	return &appkit.Program{
		Name: "pattern-lost",
		Bugs: []string{"pat-lost-deadlock"},
		Run: func(env *appkit.Env) {
			th := env.T
			m := ssync.NewMutex("pat.lost.lock")
			c := ssync.NewCond("pat.lost.cond")
			ready := mem.NewCell("pat.lost.ready", 0)
			waiter := th.Spawn("waiter", func(t *sched.Thread) {
				if env.FixBugs {
					m.Lock(t)
					for ready.Load(t) == 0 {
						c.Wait(t, m)
					}
					m.Unlock(t)
					return
				}
				// BUG: predicate checked outside the lock; the signal
				// can land between the check and the wait.
				if ready.Load(t) == 0 {
					m.Lock(t)
					c.Wait(t, m)
					m.Unlock(t)
				}
			})
			m.Lock(th)
			ready.Store(th, 1)
			c.Signal(th, m)
			m.Unlock(th)
			th.Join(waiter)
		},
	}
}

// barrierMisuse: one worker skips a phase barrier and reads early.
func barrierMisuse() *appkit.Program {
	return &appkit.Program{
		Name: "pattern-barrier",
		Bugs: []string{"pat-barrier"},
		Run: func(env *appkit.Env) {
			th := env.T
			b := ssync.NewBarrier("pat.bar", 2)
			data := mem.NewCell("pat.bar.data", 0)
			w1 := th.Spawn("producer", func(t *sched.Thread) {
				data.Store(t, 9)
				b.Await(t)
			})
			w2 := th.Spawn("consumer", func(t *sched.Thread) {
				if env.FixBugs {
					b.Await(t) // the required barrier
				}
				v := data.Load(t)
				t.Check(v == 9, "pat-barrier", "read before publish: %d", v)
				if !env.FixBugs {
					b.Await(t) // arrives late, keeping the barrier balanced
				}
			})
			th.Join(w1)
			th.Join(w2)
		},
	}
}
