package race

import (
	"reflect"
	"testing"

	"repro/internal/trace"
)

// cloneEvents is a synthetic stream with spawns, sync, queue traffic
// and racy memory accesses across three threads — enough to populate
// every map the detectors keep.
func cloneEvents() []trace.Event {
	mk := func(tid trace.TID, tc uint64, kind trace.Kind, obj, arg, seq uint64) trace.Event {
		return trace.Event{TID: tid, TCount: tc, Kind: kind, Obj: obj, Arg: arg, Seq: seq}
	}
	return []trace.Event{
		mk(1, 1, trace.KindSpawn, 0, 2, 1),
		mk(2, 1, trace.KindThreadStart, 0, 0, 2),
		mk(1, 2, trace.KindStore, 0x100, 0, 3),
		mk(2, 2, trace.KindStore, 0x100, 0, 4), // races with t1's store
		mk(1, 3, trace.KindLock, 0x200, 0, 5),
		mk(1, 4, trace.KindLoad, 0x300, 0, 6),
		mk(1, 5, trace.KindUnlock, 0x200, 0, 7),
		mk(2, 3, trace.KindLock, 0x200, 0, 8),
		mk(2, 4, trace.KindStore, 0x300, 0, 9), // HB via the lock: no race
		mk(2, 5, trace.KindUnlock, 0x200, 0, 10),
		mk(1, 6, trace.KindSpawn, 0, 3, 11),
		mk(3, 1, trace.KindThreadStart, 0, 0, 12),
		mk(3, 2, trace.KindLoad, 0x100, 0, 13), // races with both stores
	}
}

// suffix continues the stream past the clone point with fresh races.
func cloneSuffix() []trace.Event {
	mk := func(tid trace.TID, tc uint64, kind trace.Kind, obj, arg, seq uint64) trace.Event {
		return trace.Event{TID: tid, TCount: tc, Kind: kind, Obj: obj, Arg: arg, Seq: seq}
	}
	return []trace.Event{
		mk(2, 6, trace.KindStore, 0x400, 0, 14),
		mk(3, 3, trace.KindStore, 0x400, 0, 15), // new race
		mk(1, 7, trace.KindLoad, 0x400, 0, 16),  // more races
		mk(3, 4, trace.KindThreadExit, 0, 0, 17),
		mk(1, 8, trace.KindJoin, 3, 0, 18),
		mk(1, 9, trace.KindLoad, 0x400, 0, 19), // HB via join with t3 only
	}
}

func TestDetectorCloneEquivalence(t *testing.T) {
	// A from-scratch detector over prefix+suffix and a clone taken at
	// the prefix boundary, fed only the suffix, must report identical
	// pair sets — the invariant the prefix-snapshot restore path needs.
	whole := NewDetector()
	pre := NewDetector()
	for _, ev := range cloneEvents() {
		whole.OnEvent(ev)
		pre.OnEvent(ev)
	}
	clone := pre.Clone()
	for _, ev := range cloneSuffix() {
		whole.OnEvent(ev)
		clone.OnEvent(ev)
	}
	if len(whole.Pairs()) == 0 {
		t.Fatal("stream produced no races; the test is vacuous")
	}
	if !reflect.DeepEqual(whole.Pairs(), clone.Pairs()) {
		t.Fatalf("clone diverged from whole-stream detection:\nwhole: %v\nclone: %v", whole.Pairs(), clone.Pairs())
	}
}

func TestDetectorCloneIsolation(t *testing.T) {
	// Events fed to the original after cloning must not leak into the
	// clone (and vice versa): the clone's maps, histories and clocks
	// are private storage.
	d := NewDetector()
	for _, ev := range cloneEvents() {
		d.OnEvent(ev)
	}
	c := d.Clone()
	wantPairs := append([]Pair(nil), c.Pairs()...)
	for _, ev := range cloneSuffix() {
		d.OnEvent(ev)
	}
	if !reflect.DeepEqual(c.Pairs(), wantPairs) {
		t.Fatalf("feeding the original mutated the clone's pairs: %v != %v", c.Pairs(), wantPairs)
	}
	// The clone must still detect the suffix races independently.
	for _, ev := range cloneSuffix() {
		c.OnEvent(ev)
	}
	if !reflect.DeepEqual(c.Pairs(), d.Pairs()) {
		t.Fatalf("clone and original disagree after identical suffixes:\nclone: %v\norig: %v", c.Pairs(), d.Pairs())
	}
}

func TestLocksetCloneEquivalence(t *testing.T) {
	whole := NewLocksetDetector()
	pre := NewLocksetDetector()
	for _, ev := range cloneEvents() {
		whole.OnEvent(ev)
		pre.OnEvent(ev)
	}
	clone := pre.Clone()
	for _, ev := range cloneSuffix() {
		whole.OnEvent(ev)
		clone.OnEvent(ev)
	}
	if len(whole.Pairs()) == 0 {
		t.Fatal("stream produced no lockset reports; the test is vacuous")
	}
	if !reflect.DeepEqual(whole.Pairs(), clone.Pairs()) {
		t.Fatalf("lockset clone diverged:\nwhole: %v\nclone: %v", whole.Pairs(), clone.Pairs())
	}
	// Isolation: more events into the original leave the clone's state
	// untouched.
	snap := append([]Pair(nil), clone.Pairs()...)
	whole.OnEvent(trace.Event{TID: 2, TCount: 7, Kind: trace.KindStore, Obj: 0x500, Seq: 20})
	if !reflect.DeepEqual(clone.Pairs(), snap) {
		t.Fatal("feeding the original mutated the lockset clone")
	}
}

func TestDetectorFootprintPositive(t *testing.T) {
	d := NewDetector()
	l := NewLocksetDetector()
	for _, ev := range cloneEvents() {
		d.OnEvent(ev)
		l.OnEvent(ev)
	}
	if d.Footprint() <= 0 || l.Footprint() <= 0 {
		t.Fatalf("footprints must be positive: hb=%d lockset=%d", d.Footprint(), l.Footprint())
	}
	if d.Clone().Footprint() != d.Footprint() {
		t.Fatal("clone footprint differs from original")
	}
}
