package race

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/ssync"
	"repro/internal/trace"
)

func detectLockset(t *testing.T, strategy sched.Strategy, root func(*sched.Thread)) []Pair {
	t.Helper()
	d := NewLocksetDetector()
	res := sched.Run(root, sched.Config{Strategy: strategy, Observers: []sched.Observer{d}})
	if res.Failure != nil && !res.Failure.IsBug() {
		t.Fatalf("run broke: %v", res.Failure)
	}
	return d.Pairs()
}

func TestLocksetFlagsUnprotectedCounter(t *testing.T) {
	pairs := detectLockset(t, sched.Lowest{}, func(th *sched.Thread) {
		x := mem.NewCell("x", 0)
		c := th.Spawn("c", func(ct *sched.Thread) {
			v := x.Load(ct)
			x.Store(ct, v+1)
		})
		v := x.Load(th)
		x.Store(th, v+1)
		th.Join(c)
	})
	if len(pairs) == 0 {
		t.Fatal("unprotected counter not flagged")
	}
}

func TestLocksetAcceptsConsistentLocking(t *testing.T) {
	pairs := detectLockset(t, sched.NewRandomMP(4, 0.1, 3), func(th *sched.Thread) {
		x := mem.NewCell("x", 0)
		m := ssync.NewMutex("m")
		var ts []*sched.Thread
		for i := 0; i < 3; i++ {
			ts = append(ts, th.Spawn("w", func(ct *sched.Thread) {
				for j := 0; j < 3; j++ {
					m.Lock(ct)
					v := x.Load(ct)
					x.Store(ct, v+1)
					m.Unlock(ct)
				}
			}))
		}
		for _, h := range ts {
			th.Join(h)
		}
	})
	if len(pairs) != 0 {
		t.Fatalf("consistently locked counter flagged: %v", pairs)
	}
}

func TestLocksetExclusivePhaseSilent(t *testing.T) {
	// Single-thread access never leaves the exclusive state.
	pairs := detectLockset(t, sched.Lowest{}, func(th *sched.Thread) {
		x := mem.NewCell("x", 0)
		for i := 0; i < 5; i++ {
			v := x.Load(th)
			x.Store(th, v+1)
		}
	})
	if len(pairs) != 0 {
		t.Fatalf("single-thread access flagged: %v", pairs)
	}
}

func TestLocksetFlagsEvenWhenHBOrdered(t *testing.T) {
	// The defining difference from happens-before: accesses fully
	// serialized by spawn/join edges are still flagged when no common
	// lock protects them — each thread locks its *own* mutex.
	prog := func(th *sched.Thread) {
		x := mem.NewCell("x", 0)
		m1 := ssync.NewMutex("m1")
		m2 := ssync.NewMutex("m2")
		step := func(m *ssync.Mutex) func(*sched.Thread) {
			return func(ct *sched.Thread) {
				m.Lock(ct)
				v := x.Load(ct)
				x.Store(ct, v+1)
				m.Unlock(ct)
			}
		}
		for i, m := range []*ssync.Mutex{m1, m2, m1} {
			c := th.Spawn("c", step(m))
			th.Join(c) // every access strictly ordered by join edges
			_ = i
		}
	}
	pairs := detectLockset(t, sched.Lowest{}, prog)
	if len(pairs) == 0 {
		t.Fatal("lockset should flag inconsistent locking despite join ordering")
	}
	// Happens-before, by contrast, sees the join edges and stays quiet.
	d := NewDetector()
	res := sched.Run(prog, sched.Config{Strategy: sched.Lowest{}, Observers: []sched.Observer{d}})
	if res.Failure != nil {
		t.Fatal(res.Failure)
	}
	if len(d.Pairs()) != 0 {
		t.Fatal("HB detector flagged join-ordered accesses")
	}
}

func TestLocksetPairsDeduplicated(t *testing.T) {
	d := NewLocksetDetector()
	st := func(tid trace.TID, tc uint64) trace.Event {
		return trace.Event{Seq: tc, TID: tid, TCount: tc, Kind: trace.KindStore, Obj: 0x10}
	}
	// t1 writes, t2 writes twice with the same identity.
	d.OnEvent(st(1, 1))
	d.OnEvent(st(2, 1))
	n := len(d.Pairs())
	d.OnEvent(st(2, 1)) // duplicate identity
	if len(d.Pairs()) != n {
		t.Fatal("duplicate pair not deduplicated")
	}
}
