package race

import (
	"strings"
	"testing"

	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/ssync"
	"repro/internal/trace"
)

func detect(t *testing.T, strategy sched.Strategy, root func(*sched.Thread)) []Pair {
	t.Helper()
	d := NewDetector()
	res := sched.Run(root, sched.Config{Strategy: strategy, Observers: []sched.Observer{d}})
	if res.Failure != nil && !res.Failure.IsBug() {
		t.Fatalf("run broke: %v", res.Failure)
	}
	return d.Pairs()
}

func TestUnprotectedAccessesRace(t *testing.T) {
	pairs := detect(t, sched.Lowest{}, func(th *sched.Thread) {
		x := mem.NewCell("x", 0)
		c := th.Spawn("c", func(ct *sched.Thread) {
			x.Store(ct, 1)
		})
		x.Store(th, 2)
		th.Join(c)
	})
	if len(pairs) == 0 {
		t.Fatal("two unordered writes must race")
	}
	p := pairs[0]
	if p.First.Addr != mem.Addr("x") || !p.First.Write || !p.Second.Write {
		t.Fatalf("bad pair: %v", p)
	}
	if p.First.TID == p.Second.TID {
		t.Fatal("race within one thread reported")
	}
}

func TestLockedAccessesDoNotRace(t *testing.T) {
	pairs := detect(t, sched.NewRandomMP(4, 0.2, 3), func(th *sched.Thread) {
		x := mem.NewCell("x", 0)
		m := ssync.NewMutex("m")
		var ts []*sched.Thread
		for i := 0; i < 3; i++ {
			ts = append(ts, th.Spawn("w", func(ct *sched.Thread) {
				for j := 0; j < 4; j++ {
					m.Lock(ct)
					v := x.Load(ct)
					x.Store(ct, v+1)
					m.Unlock(ct)
				}
			}))
		}
		for _, h := range ts {
			th.Join(h)
		}
	})
	if len(pairs) != 0 {
		t.Fatalf("locked counter reported races: %v", pairs)
	}
}

func TestSpawnOrdersParentWrites(t *testing.T) {
	// Parent writes x before spawning a child that reads x: no race.
	pairs := detect(t, sched.NewRandomMP(4, 0.2, 7), func(th *sched.Thread) {
		x := mem.NewCell("x", 0)
		x.Store(th, 42)
		c := th.Spawn("c", func(ct *sched.Thread) {
			x.Load(ct)
		})
		th.Join(c)
	})
	if len(pairs) != 0 {
		t.Fatalf("spawn edge missing: %v", pairs)
	}
}

func TestJoinOrdersChildWrites(t *testing.T) {
	pairs := detect(t, sched.NewRandomMP(4, 0.2, 7), func(th *sched.Thread) {
		x := mem.NewCell("x", 0)
		c := th.Spawn("c", func(ct *sched.Thread) {
			x.Store(ct, 7)
		})
		th.Join(c)
		x.Load(th)
	})
	if len(pairs) != 0 {
		t.Fatalf("join edge missing: %v", pairs)
	}
}

func TestReadReadDoesNotRace(t *testing.T) {
	pairs := detect(t, sched.Lowest{}, func(th *sched.Thread) {
		x := mem.NewCell("x", 5)
		c := th.Spawn("c", func(ct *sched.Thread) {
			x.Load(ct)
		})
		x.Load(th)
		th.Join(c)
	})
	if len(pairs) != 0 {
		t.Fatalf("read/read raced: %v", pairs)
	}
}

func TestRacyReadOfFlag(t *testing.T) {
	// Classic order violation: consumer reads a flag the producer sets
	// with no synchronization.
	pairs := detect(t, sched.Lowest{}, func(th *sched.Thread) {
		flag := mem.NewCell("flag", 0)
		c := th.Spawn("c", func(ct *sched.Thread) {
			flag.Load(ct)
		})
		flag.Store(th, 1)
		th.Join(c)
	})
	if len(pairs) == 0 {
		t.Fatal("unsynchronized flag must race")
	}
}

func TestSemaphoreOrdersAccesses(t *testing.T) {
	pairs := detect(t, sched.NewRandomMP(4, 0.2, 9), func(th *sched.Thread) {
		x := mem.NewCell("x", 0)
		s := ssync.NewSemaphore("s", 0)
		c := th.Spawn("c", func(ct *sched.Thread) {
			s.Acquire(ct) // waits for the release below
			x.Load(ct)
		})
		x.Store(th, 1)
		s.Release(th)
		th.Join(c)
	})
	if len(pairs) != 0 {
		t.Fatalf("semaphore edge missing: %v", pairs)
	}
}

func TestPairDedupAcrossSchedule(t *testing.T) {
	d := NewDetector()
	ev := func(seq uint64, tid trace.TID, tc uint64, k trace.Kind, obj uint64) trace.Event {
		return trace.Event{Seq: seq, TID: tid, TCount: tc, Kind: k, Obj: obj}
	}
	d.OnEvent(ev(1, 0, 1, trace.KindStore, 0x10))
	d.OnEvent(ev(2, 1, 1, trace.KindStore, 0x10))
	// Same logical race replayed again must not duplicate.
	before := len(d.Pairs())
	d.OnEvent(ev(3, 0, 1, trace.KindStore, 0x10)) // same identity (t0#1)
	if len(d.Pairs()) != before+1 {
		// t0#1 vs t1#1 already seen; only the new direction (t1#1 first,
		// t0#1 second) may appear.
		t.Fatalf("pairs went %d -> %d", before, len(d.Pairs()))
	}
}

func TestHistoryBounded(t *testing.T) {
	d := NewDetector()
	// 100 sequential writes by one thread to one address must keep the
	// history bounded.
	for i := uint64(1); i <= 100; i++ {
		d.OnEvent(trace.Event{Seq: i, TID: 0, TCount: i, Kind: trace.KindStore, Obj: 0x20})
	}
	if n := len(d.writes[0x20]); n > historyDepth {
		t.Fatalf("history grew to %d", n)
	}
}

func TestAccessAndPairStrings(t *testing.T) {
	a := Access{TID: 1, TCount: 3, Addr: 0x40, Write: true}
	if !strings.Contains(a.String(), "write of") {
		t.Fatalf("Access.String() = %q", a.String())
	}
	// A registered variable renders by name.
	named := Access{TID: 2, TCount: 1, Addr: mem.NewCell("race.test.var", 0).Addr()}
	if !strings.Contains(named.String(), "race.test.var") {
		t.Fatalf("named Access.String() = %q", named.String())
	}
	p := Pair{First: a, Second: Access{TID: 2, TCount: 5, Addr: 0x40}, SecondSeq: 9}
	if p.Key() == "" || !strings.Contains(p.String(), "race{") {
		t.Fatal("pair rendering broken")
	}
}

func TestRacesOrderedBySecondSeq(t *testing.T) {
	pairs := detect(t, sched.NewRandomMP(4, 0.3, 11), func(th *sched.Thread) {
		x := mem.NewCell("x", 0)
		y := mem.NewCell("y", 0)
		var ts []*sched.Thread
		for i := 0; i < 2; i++ {
			ts = append(ts, th.Spawn("w", func(ct *sched.Thread) {
				x.Store(ct, 1)
				y.Store(ct, 1)
			}))
		}
		for _, h := range ts {
			th.Join(h)
		}
	})
	for i := 1; i < len(pairs); i++ {
		if pairs[i].SecondSeq < pairs[i-1].SecondSeq {
			t.Fatal("pairs not in execution order")
		}
	}
	if len(pairs) == 0 {
		t.Fatal("expected races on x and y")
	}
}
