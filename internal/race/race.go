// Package race implements the happens-before race detector the PRES
// replayer uses for feedback generation: during every replay attempt it
// identifies pairs of conflicting, concurrent shared-memory accesses
// whose unrecorded outcome the next attempt can flip.
//
// The happens-before relation is built from program order plus
// release/acquire edges through synchronization objects (every
// operation on the same object is conservatively treated as both a
// release and an acquire, which is exact for locks and conservative for
// the rest), spawn->start and exit->join edges, and message-passing
// edges from queue send to queue receive. Plain system calls do NOT
// synchronize memory — treating them as synchronization would serialize
// every thread through the kernel and hide exactly the races PRES needs
// to flip.
package race

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/vclock"
	"repro/internal/vsys"
)

// Access pins one memory access by its stable identity: the thread and
// the thread-local operation index (deterministic per thread given the
// same inputs), plus the address. This identity survives re-execution,
// which is what lets a flip learned in one attempt be enforced in the
// next.
type Access struct {
	TID    trace.TID
	TCount uint64
	Addr   uint64
	Write  bool
}

// String renders the access for diagnostics, resolving the address to
// its variable name when the allocation registered one.
func (a Access) String() string {
	rw := "read of"
	if a.Write {
		rw = "write of"
	}
	return fmt.Sprintf("t%d#%d %s %s", a.TID, a.TCount, rw, mem.NameOf(a.Addr))
}

// Pair is one observed race: First executed before Second in this
// attempt, they conflict, and neither happens-before the other.
type Pair struct {
	First, Second Access
	// FirstSeq and SecondSeq are the global steps at which the two
	// accesses executed; feedback prefers races closest to the failure
	// point, and tight races (small windows) flip more reliably.
	FirstSeq  uint64
	SecondSeq uint64
}

// Window returns the distance in global steps between the two accesses.
func (p Pair) Window() uint64 { return p.SecondSeq - p.FirstSeq }

// Key returns a stable identity for deduplication across attempts.
func (p Pair) Key() string {
	return fmt.Sprintf("%#x:t%d#%d/t%d#%d", p.First.Addr, p.First.TID, p.First.TCount, p.Second.TID, p.Second.TCount)
}

// String renders the pair for diagnostics.
func (p Pair) String() string {
	return fmt.Sprintf("race{%v <-> %v @ step %d}", p.First, p.Second, p.SecondSeq)
}

// historyDepth bounds how many prior accesses per address are retained;
// racing partners further back than this are rare and the memory cost of
// keeping everything is quadratic-ish on hot addresses.
const historyDepth = 8

type accessRec struct {
	acc Access
	seq uint64
	vc  vclock.VC
}

// Detector consumes the event stream of one execution and accumulates
// race pairs. It implements sched.Observer with zero recording cost
// (it runs at diagnosis time, not during production).
type Detector struct {
	threads map[trace.TID]vclock.VC
	objects map[uint64]vclock.VC // sync/syscall object clocks
	born    map[trace.TID]vclock.VC
	exited  map[trace.TID]vclock.VC

	writes map[uint64][]accessRec // recent writes per address
	reads  map[uint64][]accessRec // recent reads per address

	pairs []Pair
	seen  map[string]bool
}

// NewDetector returns an empty detector.
func NewDetector() *Detector {
	return &Detector{
		threads: make(map[trace.TID]vclock.VC),
		objects: make(map[uint64]vclock.VC),
		born:    make(map[trace.TID]vclock.VC),
		exited:  make(map[trace.TID]vclock.VC),
		writes:  make(map[uint64][]accessRec),
		reads:   make(map[uint64][]accessRec),
		seen:    make(map[string]bool),
	}
}

// Pairs returns the races observed so far, in execution order of their
// second access.
func (d *Detector) Pairs() []Pair { return d.pairs }

// OnEvent implements sched.Observer.
func (d *Detector) OnEvent(ev trace.Event) uint64 {
	tid := ev.TID
	vc := d.threads[tid]

	switch {
	case ev.Kind == trace.KindThreadStart:
		if bvc, ok := d.born[tid]; ok {
			vc = vc.Join(bvc)
		}
	case ev.Kind == trace.KindJoin:
		if evc, ok := d.exited[trace.TID(ev.Obj)]; ok {
			vc = vc.Join(evc)
		}
	case ev.Kind.IsMemory():
		vc = vc.Tick(int(tid))
		d.threads[tid] = vc
		d.checkAccess(ev, vc)
		return 0
	case ev.Kind.IsSync():
		// Release-acquire through the object: acquire first (observe
		// prior ops on the object), release after the tick below.
		vc = vc.Join(d.objects[ev.Obj])
	case ev.Kind == trace.KindSyscall && ev.Obj == vsys.CallRecv:
		// Message passing: the receive acquires what senders released.
		vc = vc.Join(d.objects[queueKey(ev.Arg)])
	}

	vc = vc.Tick(int(tid))
	d.threads[tid] = vc

	switch {
	case ev.Kind == trace.KindSpawn:
		d.born[trace.TID(ev.Arg)] = vc.Clone()
	case ev.Kind == trace.KindThreadExit:
		d.exited[tid] = vc.Clone()
	case ev.Kind.IsSync():
		d.objects[ev.Obj] = d.objects[ev.Obj].Join(vc)
	case ev.Kind == trace.KindSyscall && ev.Obj == vsys.CallSend:
		d.objects[queueKey(ev.Arg)] = d.objects[queueKey(ev.Arg)].Join(vc)
	}
	return 0
}

// queueKey namespaces queue objects away from sync-object ids. The
// queue id arrives in the event's Arg (the Obj slot carries the call
// code for syscalls).
func queueKey(q uint64) uint64 { return q ^ 0x9e3779b97f4a7c15 }

func (d *Detector) checkAccess(ev trace.Event, vc vclock.VC) {
	acc := Access{TID: ev.TID, TCount: ev.TCount, Addr: ev.Obj, Write: ev.Kind.IsWrite()}
	rec := accessRec{acc: acc, seq: ev.Seq, vc: vc.Clone()}

	// A write races with concurrent prior reads and writes; a read races
	// with concurrent prior writes.
	d.reportConcurrent(d.writes[acc.Addr], rec, ev.Seq)
	if acc.Write {
		d.reportConcurrent(d.reads[acc.Addr], rec, ev.Seq)
		d.writes[acc.Addr] = appendBounded(d.writes[acc.Addr], rec)
	} else {
		d.reads[acc.Addr] = appendBounded(d.reads[acc.Addr], rec)
	}
}

func (d *Detector) reportConcurrent(prior []accessRec, cur accessRec, seq uint64) {
	for _, p := range prior {
		if p.acc.TID == cur.acc.TID {
			continue
		}
		if !p.vc.HappensBefore(cur.vc) {
			pair := Pair{First: p.acc, Second: cur.acc, FirstSeq: p.seq, SecondSeq: seq}
			if k := pair.Key(); !d.seen[k] {
				d.seen[k] = true
				d.pairs = append(d.pairs, pair)
			}
		}
	}
}

func appendBounded(s []accessRec, r accessRec) []accessRec {
	s = append(s, r)
	if len(s) > historyDepth {
		copy(s, s[1:])
		s = s[:historyDepth]
	}
	return s
}
