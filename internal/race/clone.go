package race

import (
	"repro/internal/trace"
	"repro/internal/vclock"
)

// Detector cloning. The replayer's prefix-snapshot path (internal/core
// snapshot.go) captures a detector mid-execution so a child attempt
// restored from that snapshot resumes detection at the boundary instead
// of re-observing the whole prefix. A clone must be fully independent:
// vclock.VC values mutate in place on Tick/Join when no growth is
// needed, and appendBounded shifts its slice's backing array, so both
// get fresh storage here. The per-access clocks stored inside
// accessRec values are the one thing safely shared — checkAccess stores
// a private Clone at insert time and nothing mutates it afterwards.

// Clone returns a deep, independent copy of the detector's state.
// Feeding the original and the clone identical event suffixes yields
// identical pair sets; events fed to one never affect the other.
func (d *Detector) Clone() *Detector {
	c := &Detector{
		threads: cloneVCMapTID(d.threads),
		objects: cloneVCMapObj(d.objects),
		born:    cloneVCMapTID(d.born),
		exited:  cloneVCMapTID(d.exited),
		writes:  cloneHistory(d.writes),
		reads:   cloneHistory(d.reads),
		pairs:   append([]Pair(nil), d.pairs...),
		seen:    make(map[string]bool, len(d.seen)),
	}
	for k := range d.seen {
		c.seen[k] = true
	}
	return c
}

// Footprint estimates the detector's retained bytes — the snapshot
// cache's accounting currency. It is a model, not a measurement: map
// and slice headers are charged at a flat overhead and clocks at
// 8 bytes per component.
func (d *Detector) Footprint() int64 {
	n := int64(256)
	for _, vc := range d.threads {
		n += mapSlot + 8*int64(len(vc))
	}
	for _, vc := range d.objects {
		n += mapSlot + 8*int64(len(vc))
	}
	for _, vc := range d.born {
		n += mapSlot + 8*int64(len(vc))
	}
	for _, vc := range d.exited {
		n += mapSlot + 8*int64(len(vc))
	}
	n += historyFootprint(d.writes)
	n += historyFootprint(d.reads)
	n += int64(len(d.pairs)) * recBytes
	for k := range d.seen {
		n += mapSlot + int64(len(k))
	}
	return n
}

// mapSlot and recBytes are the flat per-entry overheads Footprint
// charges for map slots and access records.
const (
	mapSlot  = 48
	recBytes = 64
)

func cloneVCMapTID(m map[trace.TID]vclock.VC) map[trace.TID]vclock.VC {
	out := make(map[trace.TID]vclock.VC, len(m))
	for k, v := range m {
		out[k] = v.Clone()
	}
	return out
}

func cloneVCMapObj(m map[uint64]vclock.VC) map[uint64]vclock.VC {
	out := make(map[uint64]vclock.VC, len(m))
	for k, v := range m {
		out[k] = v.Clone()
	}
	return out
}

func cloneHistory(m map[uint64][]accessRec) map[uint64][]accessRec {
	out := make(map[uint64][]accessRec, len(m))
	for k, recs := range m {
		// New backing array (appendBounded shifts in place); the per-rec
		// vc values are immutable after insert and shared deliberately.
		out[k] = append(make([]accessRec, 0, len(recs)), recs...)
	}
	return out
}

func historyFootprint(m map[uint64][]accessRec) int64 {
	n := int64(0)
	for _, recs := range m {
		n += mapSlot
		for _, r := range recs {
			n += recBytes + 8*int64(len(r.vc))
		}
	}
	return n
}

// Clone returns a deep, independent copy of the lockset detector —
// the same contract as Detector.Clone for the Eraser-style ablation.
func (d *LocksetDetector) Clone() *LocksetDetector {
	c := &LocksetDetector{
		held:  make(map[trace.TID]map[uint64]bool, len(d.held)),
		state: make(map[uint64]*addrState, len(d.state)),
		pairs: append([]Pair(nil), d.pairs...),
		seen:  make(map[string]bool, len(d.seen)),
	}
	for tid, hs := range d.held {
		c.held[tid] = copySet(hs)
	}
	for addr, st := range d.state {
		ns := &addrState{mode: st.mode, owner: st.owner}
		if st.candidate != nil {
			ns.candidate = copySet(st.candidate)
		}
		if st.lastBy != nil {
			ns.lastBy = make(map[trace.TID]accessRec, len(st.lastBy))
			for tid, r := range st.lastBy {
				ns.lastBy[tid] = r
			}
		}
		c.state[addr] = ns
	}
	for k := range d.seen {
		c.seen[k] = true
	}
	return c
}

// Footprint estimates the lockset detector's retained bytes, with the
// same flat per-entry model as Detector.Footprint.
func (d *LocksetDetector) Footprint() int64 {
	n := int64(256)
	for _, hs := range d.held {
		n += mapSlot + int64(len(hs))*mapSlot
	}
	for _, st := range d.state {
		n += mapSlot + recBytes
		n += int64(len(st.candidate)) * mapSlot
		n += int64(len(st.lastBy)) * (mapSlot + recBytes)
	}
	n += int64(len(d.pairs)) * recBytes
	for k := range d.seen {
		n += mapSlot + int64(len(k))
	}
	return n
}
