package race

import (
	"repro/internal/trace"
)

// LocksetDetector is an Eraser-style alternative to the happens-before
// Detector: it tracks the set of locks each thread holds and, per
// address, the intersection of locksets across accesses (the Eraser
// state machine: virgin -> exclusive -> shared -> shared-modified).
// When an address's candidate lockset empties under a write, the access
// is flagged and paired with the most recent access from another thread
// to form a flip candidate.
//
// Lockset analysis predicts races that did not happen in this execution
// (any consistently-unlocked access pattern), at the price of false
// positives on deliberately lock-free protocols; happens-before is
// exact for the observed execution. PRES's feedback can be driven by
// either — BenchmarkAblationDetector compares them.
type LocksetDetector struct {
	held  map[trace.TID]map[uint64]bool // locks currently held per thread
	state map[uint64]*addrState

	pairs []Pair
	seen  map[string]bool
}

type addrMode uint8

const (
	virgin addrMode = iota
	exclusive
	shared
	sharedModified
)

type addrState struct {
	mode  addrMode
	owner trace.TID
	// candidate is the intersection of lock sets seen at accesses; nil
	// means "not yet initialized" (first shared access copies).
	candidate map[uint64]bool
	// lastBy holds the most recent access per thread, so a flagged
	// access can be paired with the latest access from another thread.
	lastBy map[trace.TID]accessRec
}

// NewLocksetDetector returns an empty lockset detector.
func NewLocksetDetector() *LocksetDetector {
	return &LocksetDetector{
		held:  make(map[trace.TID]map[uint64]bool),
		state: make(map[uint64]*addrState),
		seen:  make(map[string]bool),
	}
}

// Pairs returns the flagged access pairs in execution order.
func (d *LocksetDetector) Pairs() []Pair { return d.pairs }

// OnEvent implements sched.Observer.
func (d *LocksetDetector) OnEvent(ev trace.Event) uint64 {
	switch ev.Kind {
	case trace.KindLock, trace.KindRLock, trace.KindWake:
		// Wake reacquires the mutex the wait released; we cannot see
		// which from the event (Obj is the cond), so wait/wake pairs
		// are approximated by the surrounding lock/unlock events.
		if ev.Kind != trace.KindWake {
			d.lockHeld(ev.TID, ev.Obj, true)
		}
	case trace.KindUnlock, trace.KindRUnlock:
		d.lockHeld(ev.TID, ev.Obj, false)
	case trace.KindLoad, trace.KindStore, trace.KindRMW:
		d.access(ev)
	}
	return 0
}

func (d *LocksetDetector) lockHeld(tid trace.TID, obj uint64, held bool) {
	hs := d.held[tid]
	if hs == nil {
		hs = make(map[uint64]bool)
		d.held[tid] = hs
	}
	if held {
		hs[obj] = true
	} else {
		delete(hs, obj)
	}
}

func (d *LocksetDetector) access(ev trace.Event) {
	st := d.state[ev.Obj]
	if st == nil {
		st = &addrState{mode: virgin}
		d.state[ev.Obj] = st
	}
	acc := Access{TID: ev.TID, TCount: ev.TCount, Addr: ev.Obj, Write: ev.Kind.IsWrite()}
	rec := accessRec{acc: acc, seq: ev.Seq}
	if st.lastBy == nil {
		st.lastBy = make(map[trace.TID]accessRec)
	}
	defer func() { st.lastBy[ev.TID] = rec }()

	switch st.mode {
	case virgin:
		st.mode = exclusive
		st.owner = ev.TID
		return
	case exclusive:
		if ev.TID == st.owner {
			return
		}
		// Second thread: start intersecting locksets.
		st.candidate = copySet(d.held[ev.TID])
		if acc.Write {
			st.mode = sharedModified
		} else {
			st.mode = shared
		}
	case shared, sharedModified:
		st.candidate = intersect(st.candidate, d.held[ev.TID])
		if acc.Write {
			st.mode = sharedModified
		}
	}

	// A shared-modified address with an empty candidate lockset is a
	// (potential) race: no single lock protected every access. Pair the
	// flagged access with the latest access by another thread.
	if st.mode == sharedModified && len(st.candidate) == 0 {
		var other accessRec
		for tid, r := range st.lastBy {
			if tid != acc.TID && r.seq > other.seq {
				other = r
			}
		}
		if other.acc != (Access{}) {
			pair := Pair{First: other.acc, Second: acc, FirstSeq: other.seq, SecondSeq: ev.Seq}
			if k := pair.Key(); !d.seen[k] {
				d.seen[k] = true
				d.pairs = append(d.pairs, pair)
			}
		}
	}
}

func copySet(s map[uint64]bool) map[uint64]bool {
	out := make(map[uint64]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func intersect(a, b map[uint64]bool) map[uint64]bool {
	out := make(map[uint64]bool)
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}
