package apps

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sketch"
	"repro/internal/trace"
)

// kindCount records an app (patched, fixed scale) and returns the
// per-kind event counts.
func kindCount(t *testing.T, name string, scale int, fixed bool) (*core.Recording, *[trace.NumKinds]uint64) {
	t.Helper()
	p, _ := Get(name)
	rec := core.Record(p, core.Options{
		Scheme:       sketch.BASE,
		Processors:   4,
		ScheduleSeed: 2,
		WorldSeed:    1,
		Scale:        scale,
		MaxSteps:     2_000_000,
		FixBugs:      fixed,
	})
	if fixed && rec.Result.Failure != nil {
		t.Fatalf("%s (fixed): %v", name, rec.Result.Failure)
	}
	return rec, &rec.Result.EventsByKind
}

func TestMysqldBehavior(t *testing.T) {
	_, k := kindCount(t, "mysqld", 24, true)
	// 24 requests: each binlogged request writes the binlog file, and
	// the rotator reopens the log (1 + 24/6 rotations, each one open).
	if k[trace.KindSyscall] < 24 {
		t.Fatalf("too few syscalls: %d", k[trace.KindSyscall])
	}
	// The patched variant takes the log lock per append and rotation.
	if k[trace.KindLock] < 24*2 { // table lock + log lock per request
		t.Fatalf("too few lock events for the patched binlog: %d", k[trace.KindLock])
	}
	// The buggy variant has strictly fewer lock events (no log lock).
	_, kb := kindCount(t, "mysqld", 24, false)
	if kb[trace.KindLock] >= k[trace.KindLock] {
		t.Fatalf("buggy variant locks as much as patched: %d vs %d",
			kb[trace.KindLock], k[trace.KindLock])
	}
}

func TestApachedBehavior(t *testing.T) {
	rec, k := kindCount(t, "apached", 16, true)
	// One access-log file write per request.
	if k[trace.KindSyscall] < 16 {
		t.Fatalf("too few syscalls: %d", k[trace.KindSyscall])
	}
	// Every request claims a connection buffer (stores to conn_state),
	// handled under the pool lock.
	if k[trace.KindLock] < 16 {
		t.Fatalf("too few lock events: %d", k[trace.KindLock])
	}
	if rec.Result.Steps == 0 {
		t.Fatal("no events")
	}
}

func TestOpenldapdBehavior(t *testing.T) {
	_, k := kindCount(t, "openldapd", 12, true)
	// Every op takes both locks (search and fixed unbind): 2 locks/op.
	if k[trace.KindLock] < 24 {
		t.Fatalf("too few lock events: %d", k[trace.KindLock])
	}
	if k[trace.KindFuncEnter] < 12 {
		t.Fatalf("too few op functions: %d", k[trace.KindFuncEnter])
	}
}

func TestCherokeedBehavior(t *testing.T) {
	_, k := kindCount(t, "cherokeed", 20, true)
	// served.Add per request is the app's only RMW.
	if k[trace.KindRMW] != 20 {
		t.Fatalf("served counter updates = %d, want 20", k[trace.KindRMW])
	}
}

func TestPbzip2Behavior(t *testing.T) {
	_, k := kindCount(t, "pbzip2", 10, true)
	// Producer reads each block, writes each compressed block at the
	// end, plus open/close: at least 2 syscalls per block.
	if k[trace.KindSyscall] < 20 {
		t.Fatalf("too few syscalls: %d", k[trace.KindSyscall])
	}
	// The bounded fifo uses cond waits when full/empty; signals flow.
	if k[trace.KindSignal] == 0 {
		t.Fatal("fifo signalling absent")
	}
}

func TestAgetBehavior(t *testing.T) {
	_, k := kindCount(t, "aget", 12, true)
	// One bitmap store and one bwritten load+store pair per chunk, plus
	// the signal handler's snapshot loads.
	if k[trace.KindStore] < 24 {
		t.Fatalf("too few stores: %d", k[trace.KindStore])
	}
	// The SIGINT semaphore fires exactly once each way.
	if k[trace.KindSemRelease] < 2 || k[trace.KindSemAcquire] < 2 {
		t.Fatalf("signal semaphores: rel=%d acq=%d", k[trace.KindSemRelease], k[trace.KindSemAcquire])
	}
}

func TestTransmissionBehavior(t *testing.T) {
	_, k := kindCount(t, "transmission", 10, true)
	// Each admitted message rate-limits through transferred.Add.
	if k[trace.KindRMW] == 0 {
		t.Fatal("no transfers admitted")
	}
	// Peers receive every queued message plus the close markers.
	if k[trace.KindSyscall] < 10 {
		t.Fatalf("too few syscalls: %d", k[trace.KindSyscall])
	}
}

func TestFFTBehavior(t *testing.T) {
	// The patched variant's defining feature IS the barrier.
	_, fixed := kindCount(t, "fft", 8, true)
	if fixed[trace.KindBarrier] == 0 {
		t.Fatal("patched fft has no barrier")
	}
	_, buggy := kindCount(t, "fft", 8, false)
	if buggy[trace.KindBarrier] != 0 {
		t.Fatalf("buggy fft has %d barrier events; the bug is its absence", buggy[trace.KindBarrier])
	}
}

func TestLUBehavior(t *testing.T) {
	_, k := kindCount(t, "lu", 12, true)
	// 2 elimination steps x 4 phases x 3 parties of barrier arrivals.
	if k[trace.KindBarrier] != 24 {
		t.Fatalf("barrier arrivals = %d, want 24", k[trace.KindBarrier])
	}
	// The patched combine takes the pivot lock once per worker per step.
	if k[trace.KindLock] < 4 {
		t.Fatalf("pivot locking absent: %d", k[trace.KindLock])
	}
}

func TestBarnesBehavior(t *testing.T) {
	_, k := kindCount(t, "barnes", 10, true)
	// Node allocation under the tree lock: one lock per inserted body.
	if k[trace.KindLock] != 10 {
		t.Fatalf("tree locks = %d, want 10", k[trace.KindLock])
	}
	// Walkers accumulate forces.
	if k[trace.KindRMW] == 0 {
		t.Fatal("walkers accumulated nothing")
	}
}

func TestRadixBehavior(t *testing.T) {
	_, k := kindCount(t, "radix", 8, true)
	// Rank exchange: every acquire is matched by a release.
	if k[trace.KindSemAcquire] != k[trace.KindSemRelease] {
		t.Fatalf("semaphores unbalanced: %d acquires, %d releases",
			k[trace.KindSemAcquire], k[trace.KindSemRelease])
	}
	if k[trace.KindSemAcquire] != 6 { // 3 workers x 2 semaphores
		t.Fatalf("sem acquires = %d, want 6", k[trace.KindSemAcquire])
	}
}
