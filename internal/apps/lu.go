package apps

import (
	"fmt"

	"repro/internal/appkit"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/ssync"
)

// lu models the SPLASH-2 LU decomposition kernel with partial pivoting:
// for each elimination step, workers scan their share of the pivot
// column for the local maximum, the maxima are combined into a global
// pivot, and workers then eliminate their rows using it. Barriers
// separate the scan/combine/eliminate phases — except the combine.
//
// Modelled bug:
//
//   - lu-atomicity (atomicity violation): the combine is an unlocked
//     check-then-act (if local > gmax then gmax = local); two workers
//     interleaving lose the true maximum, selecting a wrong pivot. The
//     per-step verification against a sequential re-scan is the
//     original wrong-answer defect, caught at the step that loses it.
func lu() *appkit.Program {
	return &appkit.Program{
		Name:     "lu",
		Category: "scientific",
		Bugs:     []string{"lu-atomicity"},
		Run:      runLU,
	}
}

func runLU(env *appkit.Env) {
	th := env.T
	nWorkers := 2
	n := env.ScaleOr(6) // matrix dimension (n x n)
	steps := 2
	if steps > n-1 {
		steps = n - 1
	}

	matrix := mem.NewMatrix("lu.matrix", n, n)
	gmax := mem.NewCell("lu.gmax", 0)
	pivotLock := ssync.NewMutex("lu.pivot_lock")              // taken only when FixBugs
	phase := ssync.NewBarrier("lu.phase_barrier", nWorkers+1) // workers + main verifier

	// Deterministic, non-trivially ordered matrix.
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			i := r*n + c
			matrix.Poke(r, c, uint64((i*2654435761)%1000)+1)
		}
	}

	scanAndCombine := func(t *sched.Thread, wid, step int) {
		appkit.Func(t, "lu.pivot_scan", func() {
			// Local max over this worker's share of column `step`. Each
			// row's block+load is straight-line and batches under one
			// handoff; the racy combine below stays on plain points.
			var local uint64
			for r := step + wid; r < n; r += nWorkers {
				t.PointBatch(
					appkit.BlockOp("lu.scan_arith", 100),
					matrix.LoadOp(r, step, func(v uint64) {
						if v > local {
							local = v
						}
					}),
				)
			}
			// BUG: unlocked check-then-act on the global maximum. The
			// patched variant holds the pivot lock across the pair.
			appkit.BB(t, "lu.combine")
			if env.FixBugs {
				pivotLock.Lock(t)
			}
			g := gmax.Load(t)
			if local > g {
				gmax.Store(t, local)
			}
			if env.FixBugs {
				pivotLock.Unlock(t)
			}
		})
	}

	eliminate := func(t *sched.Thread, wid, step int) {
		appkit.Func(t, "lu.eliminate", func() {
			p := gmax.Load(t)
			if p == 0 {
				return
			}
			pv0 := matrix.Load(t, step, step) // pivot row head
			for r := step + 1 + wid; r < n; r += nWorkers {
				// The row update streams through n-step elements of
				// private arithmetic (three accesses per element); only
				// the pivot-column cell is re-read by later phases, so
				// it is the one shared access per row. The whole row is
				// straight-line: one declared batch, one handoff.
				var head uint64
				t.PointBatch(
					appkit.BlockOp("lu.row_stream", 3*(n-step)),
					matrix.LoadOp(r, step, func(v uint64) { head = v }),
					matrix.StoreOpFn(r, step, func() uint64 { return head + (head/p)*pv0%97 }),
				)
			}
		})
	}

	// Each step has four barrier-separated phases:
	//   scan+combine | verify (main) | eliminate | reset (main)
	// Every gmax access except the buggy combine is barrier-ordered.
	var workers []*sched.Thread
	for i := 0; i < nWorkers; i++ {
		wid := i
		workers = append(workers, th.Spawn(fmt.Sprintf("lu-worker%d", i), func(t *sched.Thread) {
			for step := 0; step < steps; step++ {
				scanAndCombine(t, wid, step)
				phase.Await(t) // A: scans done
				phase.Await(t) // B: verify done
				eliminate(t, wid, step)
				phase.Await(t) // C: eliminate done
				phase.Await(t) // D: reset done
			}
		}))
	}

	for step := 0; step < steps; step++ {
		phase.Await(th) // A: wait for the scans
		// Verify the pivot against a sequential re-scan; a lost update
		// in the combine is the manifested bug.
		appkit.Func(th, "lu.verify_pivot", func() {
			var want uint64
			for r := step; r < n; r++ {
				th.PointBatch(
					appkit.BlockOp("lu.verify_row", appkit.DefaultBlockAccesses),
					matrix.LoadOp(r, step, func(v uint64) {
						if v > want {
							want = v
						}
					}),
				)
			}
			got := gmax.Load(th)
			th.Check(got == want, "lu-atomicity",
				"step %d pivot lost: combined %d, true max %d", step, got, want)
		})
		phase.Await(th) // B: release the eliminate phase
		phase.Await(th) // C: eliminate done
		gmax.Store(th, 0)
		phase.Await(th) // D: next step may combine
	}

	for _, wk := range workers {
		th.Join(wk)
	}
}
