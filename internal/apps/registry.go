// Package apps is the evaluation corpus: models of the paper's 11
// applications (4 servers, 3 desktop/client, 4 scientific/graphics) each
// embedding its documented real-world concurrency bug — 13 bugs in
// total, covering atomicity violations (single- and multi-variable),
// order violations and deadlocks.
//
// The models are structural reproductions: the same thread roles, the
// same synchronization idioms, the same unprotected windows as the
// original defects, on top of workloads that do real (if scaled-down)
// computation so the instrumentation-density profile per category —
// syscall-heavy servers, barrier-heavy scientific kernels, mixed
// desktop tools — matches the originals. See DESIGN.md for the
// bug-by-bug mapping.
package apps

import (
	"sort"

	"repro/internal/appkit"
)

// Bug types.
const (
	TypeAtomicity = "atomicity"
	TypeOrder     = "order"
	TypeDeadlock  = "deadlock"
)

// BugInfo describes one corpus bug.
type BugInfo struct {
	ID          string
	App         string
	Type        string
	Description string
}

var bugList = []BugInfo{
	{"mysql-169", "mysqld", TypeAtomicity, "binlog append is a non-atomic reserve+copy+publish; concurrent appends clobber each other's records"},
	{"mysql-791", "mysqld", TypeAtomicity, "worker checks log_open, rotator closes the log in the window, worker writes to a closed binlog"},
	{"apache-25520", "apached", TypeAtomicity, "shared access-log buffer: length read and record copy are not atomic across workers"},
	{"apache-21285", "apached", TypeOrder, "connection buffer freed twice when request completion races with shutdown teardown"},
	{"openldap-deadlock", "openldapd", TypeDeadlock, "search locks conn->index while unbind locks index->conn: classic inversion"},
	{"cherokee-326", "cherokeed", TypeAtomicity, "cached date-string buffer regenerated non-atomically while another worker reads it"},
	{"pbzip2-order", "pbzip2", TypeOrder, "main frees the output queue while a consumer still drains it (missing join)"},
	{"aget-atomicity", "aget", TypeAtomicity, "SIGINT save reads bwritten+bitmap between a worker's two unsynchronized updates"},
	{"transmission-1818", "transmission", TypeOrder, "session handle published before its bandwidth field is initialized"},
	{"fft-barrier", "fft", TypeOrder, "transpose reads the partner's tile before the missing barrier would have published it"},
	{"lu-atomicity", "lu", TypeAtomicity, "global pivot maximum updated with unlocked check-then-act; concurrent updates lose the true max"},
	{"barnes-order", "barnes", TypeOrder, "tree build publishes a child pointer before the node body is initialized"},
	{"radix-deadlock", "radix", TypeDeadlock, "rank-exchange semaphores acquired in ring order; all workers holding one starves the ring"},
}

var programs = map[string]*appkit.Program{}

func register(p *appkit.Program) *appkit.Program {
	programs[p.Name] = p
	return p
}

func init() {
	register(mysqld())
	register(apached())
	register(openldapd())
	register(cherokeed())
	register(pbzip2())
	register(aget())
	register(transmission())
	register(fft())
	register(lu())
	register(barnes())
	register(radix())
}

// All returns every corpus program, sorted by name.
func All() []*appkit.Program {
	out := make([]*appkit.Program, 0, len(programs))
	for _, p := range programs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Get returns the named program.
func Get(name string) (*appkit.Program, bool) {
	p, ok := programs[name]
	return p, ok
}

// AllBugs returns every corpus bug in corpus order.
func AllBugs() []BugInfo {
	return append([]BugInfo(nil), bugList...)
}

// GetBug returns the bug with the given id.
func GetBug(id string) (BugInfo, bool) {
	for _, b := range bugList {
		if b.ID == id {
			return b, true
		}
	}
	return BugInfo{}, false
}

// ProgramForBug returns the program that manifests the bug.
func ProgramForBug(id string) (*appkit.Program, bool) {
	b, ok := GetBug(id)
	if !ok {
		return nil, false
	}
	return Get(b.App)
}
