package apps

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sketch"
)

func TestRegistryComplete(t *testing.T) {
	progs := All()
	if len(progs) != 11 {
		t.Fatalf("corpus has %d programs, want 11", len(progs))
	}
	cats := map[string]int{}
	for _, p := range progs {
		cats[p.Category]++
		if p.Run == nil {
			t.Fatalf("%s has no Run", p.Name)
		}
		if len(p.Bugs) == 0 {
			t.Fatalf("%s declares no bugs", p.Name)
		}
	}
	if cats["server"] != 4 || cats["desktop"] != 3 || cats["scientific"] != 4 {
		t.Fatalf("category mix = %v, want 4 servers / 3 desktop / 4 scientific", cats)
	}
	if len(AllBugs()) != 13 {
		t.Fatalf("corpus has %d bugs, want 13", len(AllBugs()))
	}
	types := map[string]int{}
	for _, b := range AllBugs() {
		types[b.Type]++
		p, ok := ProgramForBug(b.ID)
		if !ok {
			t.Fatalf("bug %s has no program", b.ID)
		}
		found := false
		for _, id := range p.Bugs {
			if id == b.ID {
				found = true
			}
		}
		if !found {
			t.Fatalf("program %s does not declare bug %s", p.Name, b.ID)
		}
	}
	if types[TypeAtomicity] == 0 || types[TypeOrder] == 0 || types[TypeDeadlock] == 0 {
		t.Fatalf("bug type mix = %v", types)
	}
}

func TestGetUnknown(t *testing.T) {
	if _, ok := Get("nope"); ok {
		t.Fatal("unknown program found")
	}
	if _, ok := GetBug("nope"); ok {
		t.Fatal("unknown bug found")
	}
	if _, ok := ProgramForBug("nope"); ok {
		t.Fatal("unknown bug mapped to a program")
	}
}

// TestEachProgramHasCleanRuns: every program must complete without a
// failure on at least one production seed — the bugs are schedule-
// dependent, not unconditional.
func TestEachProgramHasCleanRuns(t *testing.T) {
	for _, p := range All() {
		clean := false
		for seed := int64(0); seed < 60 && !clean; seed++ {
			rec := core.Record(p, core.Options{
				Scheme:       sketch.BASE,
				Processors:   4,
				ScheduleSeed: seed,
				WorldSeed:    1,
				MaxSteps:     300_000,
			})
			if rec.Result.Failure == nil {
				clean = true
			} else if !rec.Result.Failure.IsBug() {
				t.Fatalf("%s seed %d broke the harness: %v", p.Name, seed, rec.Result.Failure)
			}
		}
		if !clean {
			t.Errorf("%s never ran cleanly in 60 seeds", p.Name)
		}
	}
}

// TestEachBugManifests: every corpus bug must manifest on some
// production seed within a reasonable search budget.
func TestEachBugManifests(t *testing.T) {
	for _, b := range AllBugs() {
		seed, rec := findBuggySeed(t, b.ID, 2000)
		if rec == nil {
			t.Errorf("%s never manifested in 2000 seeds", b.ID)
			continue
		}
		t.Logf("%-18s manifests at seed %d (step %d)", b.ID, seed, rec.Result.Failure.Step)
	}
}

// findBuggySeed searches production seeds until the target bug fires.
func findBuggySeed(t *testing.T, bugID string, budget int) (int64, *core.Recording) {
	t.Helper()
	prog, _ := ProgramForBug(bugID)
	oracle := core.MatchBugID(bugID)
	for seed := int64(0); seed < int64(budget); seed++ {
		rec := core.Record(prog, core.Options{
			Scheme:       sketch.SYNC,
			Processors:   4,
			ScheduleSeed: seed,
			WorldSeed:    1,
			MaxSteps:     300_000,
		})
		if f := rec.BugFailure(); f != nil && oracle(f) {
			return seed, rec
		}
	}
	return -1, nil
}

// TestEachBugReproduces is the corpus-wide integration test of the
// paper's headline claim: record with SYNC sketching, then reproduce
// with the intelligent replayer.
func TestEachBugReproduces(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus-wide reproduction is not short")
	}
	for _, b := range AllBugs() {
		prog, _ := ProgramForBug(b.ID)
		_, rec := findBuggySeed(t, b.ID, 2000)
		if rec == nil {
			t.Errorf("%s: no buggy seed", b.ID)
			continue
		}
		res := core.Replay(prog, rec, core.ReplayOptions{
			Feedback: true,
			Oracle:   core.MatchBugID(b.ID),
		})
		if !res.Reproduced {
			t.Errorf("%s: NOT reproduced in %d attempts (stats %+v)", b.ID, res.Attempts, res.Stats)
			continue
		}
		t.Logf("%-18s reproduced in %d attempts (%d flips)", b.ID, res.Attempts, res.Flips)

		// And once reproduced, it reproduces every time.
		out := core.Reproduce(prog, rec, res.Order)
		if out.Failure == nil || !out.Failure.IsBug() {
			t.Errorf("%s: captured order did not re-reproduce (%v)", b.ID, out.Failure)
		}
	}
}

// TestDeadlockFailuresNamed: deadlock bugs must produce deadlock
// failures with stuck-thread details.
func TestDeadlockFailuresNamed(t *testing.T) {
	for _, id := range []string{"openldap-deadlock", "radix-deadlock"} {

		_, rec := findBuggySeed(t, id, 2000)
		if rec == nil {
			t.Errorf("%s: no buggy seed", id)
			continue
		}
		f := rec.Result.Failure
		if f.Reason != sched.ReasonDeadlock {
			t.Errorf("%s: reason = %v", id, f.Reason)
		}
		if len(f.Stuck) == 0 {
			t.Errorf("%s: no stuck threads reported", id)
		}
	}
}
