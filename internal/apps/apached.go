package apps

import (
	"fmt"

	"repro/internal/appkit"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/ssync"
)

// apached models an Apache-like worker-pool HTTP server: a listener
// queue feeds a pool of workers that parse a request, touch a shared
// document cache, append to the shared access log, and recycle their
// connection buffer into a pool that shutdown also tears down.
//
// Two real-world bugs are modelled:
//
//   - apache-25520 (atomicity violation): the access-log append reads
//     the shared buffer length, copies the record, then publishes the
//     new length — with no lock, concurrent workers interleave inside
//     the window and corrupt each other's records (the original
//     garbled-log defect).
//
//   - apache-21285 (order violation): a connection buffer is returned
//     to the pool on the request-completion path and again on the
//     shutdown path when the two race — a double free.
func apached() *appkit.Program {
	return &appkit.Program{
		Name:     "apached",
		Category: "server",
		Bugs:     []string{"apache-25520", "apache-21285"},
		Run:      runApached,
	}
}

func runApached(env *appkit.Env) {
	th := env.T
	w := env.W
	nReq := env.ScaleOr(10)
	nWorkers := 3

	const logCap = 2048
	const nConns = 8
	accessLog := mem.NewArray("apache.access_log", logCap)
	logLen := mem.NewCell("apache.log_len", 0)
	cache := mem.NewArray("apache.doc_cache", 32)
	// connState: 0 = free (in pool), 1 = in use by a worker.
	connState := mem.NewArray("apache.conn_state", nConns)
	shuttingDown := mem.NewCell("apache.shutting_down", 0)
	connLock := ssync.NewMutex("apache.conn_pool_lock")
	logLock := ssync.NewMutex("apache.log_lock") // taken only when FixBugs
	reqQ := w.NewQueue("apache.listener")
	logFd := w.Open(th, "/var/log/apache/access.log")

	logAppend := func(t *sched.Thread, tag uint64) {
		appkit.Func(t, "apache.log_append", func() {
			appkit.BB(t, "apache.log_reserve")
			if env.FixBugs { // patched: appends are serialized
				logLock.Lock(t)
				defer logLock.Unlock(t)
			}
			l := logLen.Load(t) // read length (apache-25520 window opens)
			slot := int(l % logCap)
			accessLog.Store(t, slot, tag) // copy the record header
			// Format the rest of the log line into the slot.
			appkit.Block(t, "apache.fmt_logline", 25)
			got := accessLog.Load(t, slot)
			t.Check(got == tag, "apache-25520",
				"access log record %d corrupted: wrote %d, found %d", l, tag, got)
			logLen.Store(t, l+1) // publish length
			logFd.Write(t, []byte{byte(tag)})
		})
	}

	// freeConn returns a connection buffer to the pool; freeing a free
	// buffer is the apache-21285 double free.
	freeConn := func(t *sched.Thread, c int, path string) {
		appkit.BB(t, "apache.free_conn")
		if env.FixBugs { // patched: check-and-free is atomic
			connLock.Lock(t)
			defer connLock.Unlock(t)
			if connState.Load(t, c) == 1 {
				connState.Store(t, c, 0)
			}
			return
		}
		st := connState.Load(t, c)
		t.Check(st == 1, "apache-21285", "double free of conn %d on %s path", c, path)
		connState.Store(t, c, 0)
	}

	serve := func(t *sched.Thread, wid int, seq int, req []byte) {
		appkit.Func(t, "apache.process_request", func() {
			conn := wid % nConns
			// Claim the connection buffer under the pool lock (the
			// original code synchronizes allocation, not the free).
			connLock.Lock(t)
			connState.Store(t, conn, 1)
			connLock.Unlock(t)

			// Parse headers and render the response body: private work,
			// declared as one run with the handler-entry block so both
			// commit under a single handoff.
			t.PointBatch(
				appkit.BlockOp("apache.parse_render", 6000),
				appkit.BlockOp("apache.handle", appkit.DefaultBlockAccesses),
			)
			h := uint64(req[0])
			for k := 0; k < 3; k++ {
				appkit.BB(t, "apache.handle_loop")
				idx := int((h + uint64(k)) % uint64(cache.Len()))
				v := cache.Load(t, idx)
				cache.Store(t, idx, v+h)
				h = h*31 + v
			}
			w.Now(t) // request timestamp for the log line

			logAppend(t, uint64(seq)*7919+h%997+1)

			// Completion path frees the buffer — unless shutdown has
			// begun, in which case the original code *also* lets the
			// teardown loop free it (the race). The brigade flush
			// between the check and the free is the window.
			if shuttingDown.Load(t) == 0 {
				appkit.Block(t, "apache.conn_flush", 200)
				freeConn(t, conn, "completion")
			}
		})
	}

	var workers []*sched.Thread
	for i := 0; i < nWorkers; i++ {
		wid := i
		workers = append(workers, th.Spawn(fmt.Sprintf("apached-worker%d", i), func(t *sched.Thread) {
			seq := 0
			for {
				appkit.BB(t, "apache.worker_loop")
				req, ok := reqQ.Recv(t)
				if !ok {
					return
				}
				serve(t, wid, int(t.ID())*10000+seq, req)
				seq++
			}
		}))
	}

	for i := 0; i < nReq; i++ {
		r := w.Rand(th)
		reqQ.Send(th, []byte{byte(r), byte(r >> 8)})
		w.Sleep(th, 2500) // client inter-arrival gap
	}
	// Graceful-stop: signal shutdown while the tail of the queue is
	// still being served, then tear down whatever buffers look in-use.
	shuttingDown.Store(th, 1)
	reqQ.Close(th)
	appkit.Func(th, "apache.shutdown_teardown", func() {
		for c := 0; c < nConns; c++ {
			appkit.BB(th, "apache.teardown_loop")
			if connState.Load(th, c) == 1 {
				freeConn(th, c, "shutdown")
			}
		}
	})

	for _, wk := range workers {
		th.Join(wk)
	}
	logFd.Close(th)
}
