package apps

import (
	"fmt"

	"repro/internal/appkit"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/ssync"
)

// mysqld models a MySQL-like storage engine. Worker threads pop
// INSERT/DELETE requests from a client queue, update a bucketed row
// store under the table lock (correctly synchronized), and append a
// change record to the binary log; a rotator thread periodically rotates
// the binlog like FLUSH LOGS does.
//
// Two real-world bugs are modelled:
//
//   - mysql-169 (atomicity violation): the binlog append is a
//     non-atomic reserve (read loglen) + copy (write record slots) +
//     publish (write loglen). Two workers that interleave inside the
//     window reserve the same slot and clobber each other's records.
//
//   - mysql-791 (atomicity violation, multi-variable): workers check
//     log_open before the low-level write, but the rotator closes and
//     reopens the log between the check and the write, so the write
//     lands on a closed log — the original crash.
func mysqld() *appkit.Program {
	return &appkit.Program{
		Name:     "mysqld",
		Category: "server",
		Bugs:     []string{"mysql-169", "mysql-791"},
		Run:      runMysqld,
	}
}

func runMysqld(env *appkit.Env) {
	th := env.T
	w := env.W
	nReq := env.ScaleOr(10)
	nWorkers := 3

	const nBuckets = 16
	const logCap = 1024
	buckets := mem.NewArray("mysql.buckets", nBuckets)
	tableLock := ssync.NewMutex("mysql.table_lock")
	binlog := mem.NewArray("mysql.binlog", logCap)
	payload := mem.NewArray("mysql.binlog_payload", logCap)
	logLen := mem.NewCell("mysql.loglen", 0)
	logOpen := mem.NewCell("mysql.log_open", 1)
	logLock := ssync.NewMutex("mysql.log_lock") // taken only when FixBugs
	reqQ := w.NewQueue("mysql.client_socket")
	logFd := w.Open(th, "/var/lib/mysql/binlog.000001")

	execute := func(t *sched.Thread, seq int, req []byte) {
		key := uint64(req[0])<<8 | uint64(req[1])
		tag := uint64(seq)*1_000_003 + key + 1

		appkit.Func(t, "mysql.execute", func() {
			// Parse, plan and prepare the statement: straight-line
			// private work, the bulk of a simple query's instructions.
			// It is declared as one run with the row-store block so the
			// scheduler commits both under a single handoff.
			t.PointBatch(
				appkit.BlockOp("mysql.parse_plan", 12000),
				appkit.BlockOp("mysql.store_row", appkit.DefaultBlockAccesses),
			)
			// Row-store update: correctly protected by the table lock.
			tableLock.Lock(t)
			b := int(key % nBuckets)
			rows := buckets.Load(t, b)
			buckets.Store(t, b, rows+1)
			tableLock.Unlock(t)

			// Binlog append: the buggy unprotected fast path. The fix
			// (patched variant) serializes appends and rotation with
			// the log lock, making reserve+copy+publish atomic
			// (mysql-169) and the open-check/write atomic (mysql-791).
			appkit.BB(t, "mysql.binlog_append")
			if env.FixBugs {
				logLock.Lock(t)
				defer logLock.Unlock(t)
			}
			if logOpen.Load(t) != 1 {
				return // log rotating; the request skips binlogging
			}
			l := logLen.Load(t) // reserve (mysql-169 window opens)
			slot := int(l % logCap)
			binlog.Store(t, slot, tag)
			// Copy the statement body into the reserved slot — the
			// window between reserve and publish spans this copy.
			appkit.Block(t, "mysql.binlog_copy", 40)
			payload.Store(t, slot, key)
			got := binlog.Load(t, slot) // record trailer validation
			t.Check(got == tag, "mysql-169",
				"binlog record %d clobbered: wrote %d, found %d", l, tag, got)
			logLen.Store(t, l+1) // publish

			// Low-level write: crashes if the rotator closed the log
			// inside the check-to-write window (mysql-791).
			open := logOpen.Load(t)
			t.Check(open == 1, "mysql-791", "write to closed binlog (record %d)", l)
			logFd.Write(t, req)
		})
	}

	var workers []*sched.Thread
	for i := 0; i < nWorkers; i++ {
		workers = append(workers, th.Spawn(fmt.Sprintf("mysqld-worker%d", i), func(t *sched.Thread) {
			seq := 0
			for {
				appkit.BB(t, "mysql.worker_loop")
				req, ok := reqQ.Recv(t)
				if !ok {
					return
				}
				execute(t, int(t.ID())*10000+seq, req)
				seq++
			}
		}))
	}

	rotations := 1 + nReq/6
	rotator := th.Spawn("mysqld-rotator", func(t *sched.Thread) {
		for r := 0; r < rotations; r++ {
			w.Sleep(t, 40)
			appkit.Func(t, "mysql.rotate_log", func() {
				appkit.BB(t, "mysql.rotate")
				if env.FixBugs {
					logLock.Lock(t)
					defer logLock.Unlock(t)
				}
				logOpen.Store(t, 0)
				logFd.Close(t)
				logFd = w.Open(t, fmt.Sprintf("/var/lib/mysql/binlog.%06d", r+2))
				logLen.Store(t, 0)
				logOpen.Store(t, 1)
			})
		}
	})

	// The client driver: issue randomized requests, then hang up.
	for i := 0; i < nReq; i++ {
		k := w.Rand(th)
		reqQ.Send(th, []byte{byte(k >> 8), byte(k), 'I'})
	}
	reqQ.Close(th)

	for _, wk := range workers {
		th.Join(wk)
	}
	th.Join(rotator)
	logFd.Close(th)
}
