package apps

import (
	"fmt"

	"repro/internal/appkit"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/ssync"
)

// cherokeed models the Cherokee web server's shared cached date-string:
// every response header carries the current time, and to avoid
// reformatting it per request the server caches the formatted string in
// a shared buffer, regenerating it when the second changes.
//
// Modelled bug:
//
//   - cherokee-326 (atomicity violation): the regeneration writes the
//     buffer cells one by one with no lock while other workers read
//     them; a reader that overlaps a writer (or two writers that
//     overlap) sees a half-old half-new string — the original corrupted
//     Date: header.
func cherokeed() *appkit.Program {
	return &appkit.Program{
		Name:     "cherokeed",
		Category: "server",
		Bugs:     []string{"cherokee-326"},
		Run:      runCherokeed,
	}
}

func runCherokeed(env *appkit.Env) {
	th := env.T
	w := env.W
	nReq := env.ScaleOr(10)
	nWorkers := 3

	const bufLen = 4
	timeBuf := mem.NewArray("cherokee.time_buf", bufLen) // formatted date cells
	// The sentinel forces a regeneration on the first request so the
	// buffer is never read in its zeroed state.
	cachedSec := mem.NewCell("cherokee.cached_sec", ^uint64(0))
	served := mem.NewCell("cherokee.served", 0)
	cacheLock := ssync.NewMutex("cherokee.cache_lock") // taken only when FixBugs
	reqQ := w.NewQueue("cherokee.listener")

	respond := func(t *sched.Thread) {
		appkit.Func(t, "cherokee.build_header", func() {
			// Serve the static file body: private work per request.
			appkit.Block(t, "cherokee.serve_static", 3000)
			now := w.Now(t) / 16 // seconds granularity
			appkit.BB(t, "cherokee.check_cache")
			if env.FixBugs { // patched: regen+copy under the cache lock
				cacheLock.Lock(t)
				defer cacheLock.Unlock(t)
			}
			if cachedSec.Load(t) != now {
				if env.FixBugs {
					// Patched: the regeneration runs under the cache
					// lock, so the whole cell-by-cell strftime is
					// straight-line and batches under one handoff.
					ops := []*sched.Op{
						appkit.BlockOp("cherokee.regen", appkit.DefaultBlockAccesses),
						cachedSec.StoreOp(now),
					}
					for k := 0; k < bufLen; k++ {
						ops = append(ops,
							appkit.BlockOp("cherokee.strftime", 8),
							timeBuf.StoreOp(k, now*10+uint64(k)))
					}
					t.PointBatch(ops...)
				} else {
					// Regenerate the cached date string — unlocked, cell
					// by cell (the cherokee-326 window), so every store
					// stays a plain interleavable point.
					appkit.BB(t, "cherokee.regen")
					cachedSec.Store(t, now)
					// strftime into the shared buffer, cell by cell.
					for k := 0; k < bufLen; k++ {
						appkit.Block(t, "cherokee.strftime", 8)
						timeBuf.Store(t, k, now*10+uint64(k))
					}
				}
			}
			// Copy the cached string into the response and validate it
			// is coherent (all cells from the same generation).
			appkit.BB(t, "cherokee.copy_header")
			first := timeBuf.Load(t, 0)
			for k := 1; k < bufLen; k++ {
				v := timeBuf.Load(t, k)
				t.Check(v == first+uint64(k), "cherokee-326",
					"torn date header: cell0=%d cell%d=%d", first, k, v)
			}
			served.Add(t, 1)
		})
	}

	var workers []*sched.Thread
	for i := 0; i < nWorkers; i++ {
		workers = append(workers, th.Spawn(fmt.Sprintf("cherokee-worker%d", i), func(t *sched.Thread) {
			for {
				appkit.BB(t, "cherokee.worker_loop")
				_, ok := reqQ.Recv(t)
				if !ok {
					return
				}
				respond(t)
			}
		}))
	}

	for i := 0; i < nReq; i++ {
		reqQ.Send(th, []byte{byte(i)})
	}
	reqQ.Close(th)
	for _, wk := range workers {
		th.Join(wk)
	}
	th.Check(served.Peek() <= uint64(nReq), "cherokee-internal", "served more than requested")
}
