package apps

import (
	"fmt"

	"repro/internal/appkit"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/ssync"
)

// pbzip2 models the parallel bzip2 compressor: a producer splits the
// input file into blocks and feeds a bounded work queue; consumer
// threads compress blocks (a real bit-mixing pass over the block) and
// store results into an output table; the main thread writes the output
// file once everything is done.
//
// Modelled bug:
//
//   - pbzip2-order (order violation): the original main() deletes the
//     shared output queue when it believes all blocks are written, but
//     it checks a counter the consumers update *before* their final
//     queue access — so teardown can free the queue while a consumer
//     still touches it (the real use-after-free crash).
func pbzip2() *appkit.Program {
	return &appkit.Program{
		Name:     "pbzip2",
		Category: "desktop",
		Bugs:     []string{"pbzip2-order"},
		Run:      runPbzip2,
	}
}

func runPbzip2(env *appkit.Env) {
	th := env.T
	w := env.W
	nBlocks := env.ScaleOr(6)
	nConsumers := 2

	const blockWords = 4
	input := mem.NewArray("pbzip2.input", nBlocks*blockWords)
	output := mem.NewArray("pbzip2.output", nBlocks)
	queueFreed := mem.NewCell("pbzip2.queue_freed", 0)
	outDone := ssync.NewWaitGroup("pbzip2.blocks_done")
	qLock := ssync.NewMutex("pbzip2.fifo_lock")
	notEmpty := ssync.NewCond("pbzip2.fifo_not_empty")
	notFull := ssync.NewCond("pbzip2.fifo_not_full")
	const fifoCap = 4
	fifo := mem.NewArray("pbzip2.fifo", fifoCap)
	fifoHead := mem.NewCell("pbzip2.fifo_head", 0)
	fifoTail := mem.NewCell("pbzip2.fifo_tail", 0)

	// Seed the input "file" deterministically.
	for i := 0; i < input.Len(); i++ {
		input.Poke(i, uint64(i)*2654435761+17)
	}
	outDone.Add(th, nBlocks)

	compress := func(t *sched.Thread, blk int) uint64 {
		var h uint64 = 14695981039346656037
		appkit.Func(t, "pbzip2.compress_block", func() {
			// The BWT+Huffman kernel plus the block scan. The input
			// "file" is sealed before the workers start, so compressing
			// a block is entirely straight-line: the heavy kernel block
			// and every per-word read batch under one handoff.
			ops := []*sched.Op{appkit.BlockOp("pbzip2.bzip2_kernel", 40000)}
			for k := 0; k < blockWords; k++ {
				ops = append(ops,
					appkit.BlockOp("pbzip2.compress_loop", appkit.DefaultBlockAccesses),
					input.LoadOp(blk*blockWords+k, func(v uint64) {
						h = (h ^ v) * 1099511628211
						h ^= h >> 29
					}))
			}
			t.PointBatch(ops...)
		})
		return h
	}

	producer := th.Spawn("pbzip2-producer", func(t *sched.Thread) {
		fd := w.Open(t, "/tmp/in.tar")
		push := func(item uint64) {
			qLock.Lock(t)
			for fifoTail.Load(t)-fifoHead.Load(t) == fifoCap {
				notFull.Wait(t, qLock)
			}
			tail := fifoTail.Load(t)
			fifo.Store(t, int(tail)%fifo.Len(), item)
			fifoTail.Store(t, tail+1)
			notEmpty.Signal(t, qLock)
			qLock.Unlock(t)
		}
		for b := 0; b < nBlocks; b++ {
			appkit.BB(t, "pbzip2.read_block")
			fd.Read(t, make([]byte, 8))
			push(uint64(b) + 1)
		}
		// Sentinel per consumer terminates their loops.
		for c := 0; c < nConsumers; c++ {
			push(0)
		}
		fd.Close(t)
	})

	var consumers []*sched.Thread
	for c := 0; c < nConsumers; c++ {
		consumers = append(consumers, th.Spawn(fmt.Sprintf("pbzip2-consumer%d", c), func(t *sched.Thread) {
			for {
				appkit.BB(t, "pbzip2.consumer_loop")
				qLock.Lock(t)
				for fifoHead.Load(t) == fifoTail.Load(t) {
					notEmpty.Wait(t, qLock)
				}
				head := fifoHead.Load(t)
				item := fifo.Load(t, int(head)%fifo.Len())
				fifoHead.Store(t, head+1)
				notFull.Signal(t, qLock)
				qLock.Unlock(t)
				if item == 0 {
					return // sentinel
				}
				blk := int(item - 1)
				sum := compress(t, blk)
				output.Store(t, blk, sum)
				// BUG: progress published before the consumer's final
				// queue touch — main may free the fifo in the window.
				outDone.Done(t)
				appkit.BB(t, "pbzip2.requeue_stats")
				freed := queueFreed.Load(t) // the racing late queue access
				t.Check(freed == 0, "pbzip2-order",
					"consumer touched the fifo after main freed it (block %d)", blk)
				fifoStats := fifo.Load(t, fifo.Len()-1)
				_ = fifoStats
			}
		}))
	}

	// BUG: main tears the queue down when the progress gate says all
	// blocks are compressed — but consumers signal the gate before their
	// final queue access, so this can run early. The patched variant
	// joins the consumers first, exactly the missing pthread_join of
	// the original fix.
	if env.FixBugs {
		th.Join(producer)
		for _, c := range consumers {
			th.Join(c)
		}
		queueFreed.Store(th, 1)
	} else {
		appkit.Func(th, "pbzip2.wait_and_free", func() {
			outDone.Wait(th)
			queueFreed.Store(th, 1) // delete the fifo
		})
	}

	out := w.Open(th, "/tmp/out.tar.bz2")
	if !env.FixBugs {
		th.Join(producer)
		for _, c := range consumers {
			th.Join(c)
		}
	}
	for b := 0; b < nBlocks; b++ {
		out.Write(th, []byte{byte(output.Peek(b))})
	}
	out.Close(th)
}
