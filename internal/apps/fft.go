package apps

import (
	"fmt"

	"repro/internal/appkit"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/ssync"
)

// fft models the SPLASH-2 FFT kernel's structure: each worker computes a
// butterfly pass over its rows of the matrix, the workers transpose
// tiles pairwise, and a final pass completes the transform. The real
// kernel separates the phases with barriers.
//
// Modelled bug:
//
//   - fft-barrier (order violation): the barrier between the local
//     butterfly phase and the transpose was missing on one path (the
//     original used a hand-rolled flag instead), so a worker can read
//     its partner's tile before the partner has written it. Each tile
//     carries a phase tag the reader validates — a stale tag is the
//     original wrong-results defect, caught at the source.
func fft() *appkit.Program {
	return &appkit.Program{
		Name:     "fft",
		Category: "scientific",
		Bugs:     []string{"fft-barrier"},
		Run:      runFFT,
	}
}

func runFFT(env *appkit.Env) {
	th := env.T
	nWorkers := 4
	rows := env.ScaleOr(4) // rows per worker

	const phaseTag = 1
	data := mem.NewArray("fft.matrix", nWorkers*rows*2) // interleaved re/im
	tileTag := mem.NewArray("fft.tile_tag", nWorkers)   // per-worker phase tag
	sync1 := ssync.NewBarrier("fft.phase1_barrier", nWorkers)

	butterfly := func(t *sched.Thread, wid int) {
		appkit.Func(t, "fft.butterfly", func() {
			base := wid * rows * 2
			for r := 0; r < rows; r++ {
				// Each row is straight-line work on the worker's own
				// tile: declared as one batch so the scheduler commits
				// it under a single handoff. The tile-tag publish below
				// — the racy access — stays a plain point.
				var re, im uint64
				t.PointBatch(
					appkit.BlockOp("fft.twiddle_math", 200),
					data.LoadOp(base+2*r, func(v uint64) { re = v }),
					data.LoadOp(base+2*r+1, func(v uint64) { im = v }),
					// Radix-2 butterfly with a fixed twiddle (3,5 scaled).
					data.StoreOpFn(base+2*r, func() uint64 { return re*3 - im*5 }),
					data.StoreOpFn(base+2*r+1, func() uint64 { return re*5 + im*3 }),
				)
			}
			// Publish "phase 1 done" for this tile.
			tileTag.Store(t, wid, phaseTag)
		})
	}

	transpose := func(t *sched.Thread, wid int) {
		appkit.Func(t, "fft.transpose", func() {
			partner := (wid + 1) % nWorkers
			appkit.BB(t, "fft.transpose_read")
			// BUG: no barrier before reading the partner's tile.
			tag := tileTag.Load(t, partner)
			t.Check(tag == phaseTag, "fft-barrier",
				"worker %d transposed tile %d before its butterfly finished", wid, partner)
			pbase := partner * rows * 2
			mybase := wid * rows * 2
			for r := 0; r < rows; r++ {
				// Past the tag check the partner tile is phase-stable,
				// so each row is straight-line and batches whole.
				var re, my uint64
				t.PointBatch(
					appkit.BlockOp("fft.transpose_math", 100),
					data.LoadOp(pbase+2*r, func(v uint64) { re = v }),
					data.LoadOp(mybase+2*r, func(v uint64) { my = v }),
					data.StoreOpFn(mybase+2*r, func() uint64 { return re + my }),
				)
			}
		})
	}

	// Seed the input signal.
	for i := 0; i < data.Len(); i++ {
		data.Poke(i, uint64(i%7+1))
	}

	var workers []*sched.Thread
	for i := 0; i < nWorkers; i++ {
		wid := i
		workers = append(workers, th.Spawn(fmt.Sprintf("fft-worker%d", i), func(t *sched.Thread) {
			butterfly(t, wid)
			// The bit-reverse permutation of the local rows runs before
			// the transpose; under normal timing it outlasts whatever
			// head start a peer still needs to publish its tile, which
			// is why the missing barrier "almost always" worked.
			appkit.Block(t, "fft.bit_reverse", 120*rows)
			if env.FixBugs {
				sync1.Await(t) // the missing barrier
			}
			transpose(t, wid)
		}))
	}
	for _, wk := range workers {
		th.Join(wk)
	}
}
