package apps

import (
	"fmt"

	"repro/internal/appkit"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/ssync"
)

// fft models the SPLASH-2 FFT kernel's structure: each worker computes a
// butterfly pass over its rows of the matrix, the workers transpose
// tiles pairwise, and a final pass completes the transform. The real
// kernel separates the phases with barriers.
//
// Modelled bug:
//
//   - fft-barrier (order violation): the barrier between the local
//     butterfly phase and the transpose was missing on one path (the
//     original used a hand-rolled flag instead), so a worker can read
//     its partner's tile before the partner has written it. Each tile
//     carries a phase tag the reader validates — a stale tag is the
//     original wrong-results defect, caught at the source.
func fft() *appkit.Program {
	return &appkit.Program{
		Name:     "fft",
		Category: "scientific",
		Bugs:     []string{"fft-barrier"},
		Run:      runFFT,
	}
}

func runFFT(env *appkit.Env) {
	th := env.T
	nWorkers := 4
	rows := env.ScaleOr(4) // rows per worker

	const phaseTag = 1
	data := mem.NewArray("fft.matrix", nWorkers*rows*2) // interleaved re/im
	tileTag := mem.NewArray("fft.tile_tag", nWorkers)   // per-worker phase tag
	sync1 := ssync.NewBarrier("fft.phase1_barrier", nWorkers)

	butterfly := func(t *sched.Thread, wid int) {
		appkit.Func(t, "fft.butterfly", func() {
			base := wid * rows * 2
			for r := 0; r < rows; r++ {
				appkit.Block(t, "fft.twiddle_math", 200)
				re := data.Load(t, base+2*r)
				im := data.Load(t, base+2*r+1)
				// Radix-2 butterfly with a fixed twiddle (3,5 scaled).
				nre := re*3 - im*5
				nim := re*5 + im*3
				data.Store(t, base+2*r, nre)
				data.Store(t, base+2*r+1, nim)
			}
			// Publish "phase 1 done" for this tile.
			tileTag.Store(t, wid, phaseTag)
		})
	}

	transpose := func(t *sched.Thread, wid int) {
		appkit.Func(t, "fft.transpose", func() {
			partner := (wid + 1) % nWorkers
			appkit.BB(t, "fft.transpose_read")
			// BUG: no barrier before reading the partner's tile.
			tag := tileTag.Load(t, partner)
			t.Check(tag == phaseTag, "fft-barrier",
				"worker %d transposed tile %d before its butterfly finished", wid, partner)
			pbase := partner * rows * 2
			mybase := wid * rows * 2
			for r := 0; r < rows; r++ {
				appkit.Block(t, "fft.transpose_math", 100)
				re := data.Load(t, pbase+2*r)
				my := data.Load(t, mybase+2*r)
				data.Store(t, mybase+2*r, re+my)
			}
		})
	}

	// Seed the input signal.
	for i := 0; i < data.Len(); i++ {
		data.Poke(i, uint64(i%7+1))
	}

	var workers []*sched.Thread
	for i := 0; i < nWorkers; i++ {
		wid := i
		workers = append(workers, th.Spawn(fmt.Sprintf("fft-worker%d", i), func(t *sched.Thread) {
			butterfly(t, wid)
			// The bit-reverse permutation of the local rows runs before
			// the transpose; under normal timing it outlasts whatever
			// head start a peer still needs to publish its tile, which
			// is why the missing barrier "almost always" worked.
			appkit.Block(t, "fft.bit_reverse", 120*rows)
			if env.FixBugs {
				sync1.Await(t) // the missing barrier
			}
			transpose(t, wid)
		}))
	}
	for _, wk := range workers {
		th.Join(wk)
	}
}
