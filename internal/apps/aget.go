package apps

import (
	"fmt"

	"repro/internal/appkit"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/ssync"
)

// aget models the multi-connection download accelerator: N worker
// threads each fetch byte ranges of a file from the network and write
// them at their offset, maintaining shared progress state (total bytes
// written plus a per-chunk completion bitmap) that a SIGINT handler
// serializes into a resume file.
//
// Modelled bug:
//
//   - aget-atomicity (atomicity violation, multi-variable): workers
//     update bwritten and the chunk bitmap as two separate unlocked
//     stores; the signal handler that snapshots them for the resume
//     file can run between the two and persist an inconsistent state —
//     the original corrupted-resume defect.
func aget() *appkit.Program {
	return &appkit.Program{
		Name:     "aget",
		Category: "desktop",
		Bugs:     []string{"aget-atomicity"},
		Run:      runAget,
	}
}

func runAget(env *appkit.Env) {
	th := env.T
	w := env.W
	nChunks := env.ScaleOr(8)
	nWorkers := 2
	const chunkBytes = 64

	bwritten := mem.NewCell("aget.bwritten", 0)
	bitmap := mem.NewArray("aget.chunk_bitmap", nChunks)
	progressLock := ssync.NewMutex("aget.progress_lock") // taken only when FixBugs
	sigFired := ssync.NewSemaphore("aget.sigint", 0)
	sigDone := ssync.NewSemaphore("aget.sig_done", 0)
	chunkQ := w.NewQueue("aget.http_socket")

	fetch := func(t *sched.Thread, chunk int) {
		appkit.Func(t, "aget.http_get", func() {
			// Receive and buffer the range body. The copy and hash-mix
			// are private work, so the whole receive path is declared as
			// one run and commits under a single handoff.
			var sum uint64
			for k := 0; k < 3; k++ {
				sum = sum*6364136223846793005 + uint64(chunk*16+k)
			}
			t.PointBatch(
				appkit.BlockOp("aget.recv_copy", 9000),
				appkit.BlockOp("aget.recv_body", appkit.DefaultBlockAccesses),
				appkit.BlockOp("aget.copy_loop", appkit.DefaultBlockAccesses),
				appkit.BlockOp("aget.copy_loop", appkit.DefaultBlockAccesses),
				appkit.BlockOp("aget.copy_loop", appkit.DefaultBlockAccesses),
			)
			fd := w.Open(t, "/tmp/aget.out")

			// BUG: two-variable progress update with no lock — bwritten
			// is bumped when the write is issued, the bitmap only after
			// it completes. The patched variant makes the pair atomic
			// under the lock the signal handler also takes.
			appkit.BB(t, "aget.update_progress")
			if env.FixBugs {
				progressLock.Lock(t)
			}
			cur := bwritten.Load(t)
			bwritten.Store(t, cur+chunkBytes) // update 1
			fd.Write(t, []byte{byte(sum)})
			fd.Close(t)
			bitmap.Store(t, chunk, 1) // update 2 (window spans the write)
			if env.FixBugs {
				progressLock.Unlock(t)
			}
		})
	}

	var workers []*sched.Thread
	for i := 0; i < nWorkers; i++ {
		workers = append(workers, th.Spawn(fmt.Sprintf("aget-worker%d", i), func(t *sched.Thread) {
			for {
				appkit.BB(t, "aget.worker_loop")
				msg, ok := chunkQ.Recv(t)
				if !ok {
					return
				}
				fetch(t, int(msg[0]))
			}
		}))
	}

	// The signal handler thread: parked until the driver raises SIGINT,
	// then snapshots progress into the resume file.
	handler := th.Spawn("aget-sighandler", func(t *sched.Thread) {
		sigFired.Acquire(t)
		appkit.Func(t, "aget.save_state", func() {
			appkit.BB(t, "aget.snapshot")
			if env.FixBugs {
				progressLock.Lock(t)
				defer progressLock.Unlock(t)
			}
			total := bwritten.Load(t)
			var fromBitmap uint64
			for c := 0; c < nChunks; c++ {
				fromBitmap += bitmap.Load(t, c) * chunkBytes
			}
			// The resume file is valid only if the two structures agree.
			t.Check(total == fromBitmap, "aget-atomicity",
				"resume state torn: bwritten=%d bitmap=%d", total, fromBitmap)
			fd := w.Open(t, "/tmp/aget.resume")
			fd.Write(t, []byte{byte(total), byte(fromBitmap)})
			fd.Close(t)
		})
		sigDone.Release(t)
	})

	// Driver: enqueue chunks as the transfer progresses, raising SIGINT
	// midway — the user's Ctrl-C lands at an arbitrary point of the
	// download.
	half := nChunks / 2
	for c := 0; c < half; c++ {
		chunkQ.Send(th, []byte{byte(c)})
		w.Sleep(th, 450)
	}
	sigFired.Release(th) // user hits Ctrl-C mid-transfer
	for c := half; c < nChunks; c++ {
		chunkQ.Send(th, []byte{byte(c)})
		w.Sleep(th, 450)
	}
	chunkQ.Close(th)

	sigDone.Acquire(th)
	for _, wk := range workers {
		th.Join(wk)
	}
	th.Join(handler)
}
