package apps

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sketch"
)

// TestFixedVariantsNeverFail is the ground truth that every corpus
// failure really is the documented race: with the patched code paths
// enabled, no schedule in a broad sweep manifests anything.
func TestFixedVariantsNeverFail(t *testing.T) {
	for _, p := range All() {
		for seed := int64(0); seed < 60; seed++ {
			rec := core.Record(p, core.Options{
				Scheme:       sketch.BASE,
				Processors:   8,
				Preempt:      0.1,
				ScheduleSeed: seed,
				WorldSeed:    1,
				MaxSteps:     300_000,
				FixBugs:      true,
			})
			if rec.Result.Failure != nil {
				t.Errorf("%s (fixed) seed %d failed: %v", p.Name, seed, rec.Result.Failure)
				break
			}
		}
	}
}

// TestFixedVariantsScaleUp: the patched programs must also survive the
// larger workloads the overhead experiments use.
func TestFixedVariantsScaleUp(t *testing.T) {
	if testing.Short() {
		t.Skip("scaled runs are not short")
	}
	for _, p := range All() {
		rec := core.Record(p, core.Options{
			Scheme:       sketch.RW,
			Processors:   4,
			ScheduleSeed: 1,
			WorldSeed:    1,
			Scale:        200,
			MaxSteps:     2_000_000,
			FixBugs:      true,
		})
		if rec.Result.Failure != nil {
			t.Errorf("%s (fixed, scale 200) failed: %v", p.Name, rec.Result.Failure)
		}
		if rec.Sketch.TotalOps < 1000 {
			t.Errorf("%s: scaled workload only %d ops; scale knob not wired?", p.Name, rec.Sketch.TotalOps)
		}
	}
}
