package apps

import (
	"fmt"

	"repro/internal/appkit"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/ssync"
)

// openldapd models an OpenLDAP-like directory server: worker threads
// execute SEARCH and UNBIND operations against an entry index and a
// per-connection structure, each protected by its own mutex.
//
// Modelled bug:
//
//   - openldap-deadlock: SEARCH locks the connection then the index
//     (conn -> index) while UNBIND tears down in the opposite order
//     (index -> conn). When a search and an unbind interleave, each
//     holds one lock and waits for the other — the classic inversion
//     deadlock of the original report.
func openldapd() *appkit.Program {
	return &appkit.Program{
		Name:     "openldapd",
		Category: "server",
		Bugs:     []string{"openldap-deadlock"},
		Run:      runOpenldapd,
	}
}

func runOpenldapd(env *appkit.Env) {
	th := env.T
	w := env.W
	nOps := env.ScaleOr(8)

	const nEntries = 32
	index := mem.NewArray("ldap.entry_index", nEntries)
	connRefs := mem.NewCell("ldap.conn_refs", 0)
	indexLock := ssync.NewMutex("ldap.index_lock")
	connLock := ssync.NewMutex("ldap.conn_lock")
	opQ := w.NewQueue("ldap.ops")

	search := func(t *sched.Thread, key uint64) {
		appkit.Func(t, "ldap.do_search", func() {
			// Decode the BER-encoded request and evaluate the filter:
			// private work before any locking, declared as one run so
			// both blocks commit under a single handoff.
			t.PointBatch(
				appkit.BlockOp("ldap.ber_decode", 5000),
				appkit.BlockOp("ldap.search_lock", appkit.DefaultBlockAccesses),
			)
			connLock.Lock(t) // conn first...
			// Parse the ber-encoded filter while holding the conn.
			appkit.Block(t, "ldap.ber_parse", 150)
			indexLock.Lock(t) // ...then index: A->B
			refs := connRefs.Load(t)
			connRefs.Store(t, refs+1)
			appkit.BB(t, "ldap.search_scan")
			sum := uint64(0)
			for k := 0; k < 4; k++ {
				sum += index.Load(t, int((key+uint64(k))%nEntries))
			}
			index.Store(t, int(key%nEntries), sum+1)
			indexLock.Unlock(t)
			refs = connRefs.Load(t)
			connRefs.Store(t, refs-1)
			connLock.Unlock(t)
		})
	}

	unbind := func(t *sched.Thread, key uint64) {
		appkit.Func(t, "ldap.do_unbind", func() {
			t.PointBatch(
				appkit.BlockOp("ldap.conn_teardown_work", 2000),
				appkit.BlockOp("ldap.unbind_lock", appkit.DefaultBlockAccesses),
			)
			if env.FixBugs { // patched: same order as search
				connLock.Lock(t)
				indexLock.Lock(t)
			} else {
				indexLock.Lock(t) // index first...
				// Purge the id2entry cache while holding the index.
				appkit.Block(t, "ldap.cache_purge", 100)
				connLock.Lock(t) // ...then conn: B->A (the inversion)
			}
			index.Store(t, int(key%nEntries), 0)
			index.Store(t, int((key+1)%nEntries), 0)
			appkit.BB(t, "ldap.unbind_teardown")
			refs := connRefs.Load(t)
			connRefs.Store(t, refs)
			if env.FixBugs {
				indexLock.Unlock(t)
				connLock.Unlock(t)
			} else {
				connLock.Unlock(t)
				indexLock.Unlock(t)
			}
		})
	}

	var workers []*sched.Thread
	for i := 0; i < 2; i++ {
		workers = append(workers, th.Spawn(fmt.Sprintf("ldap-worker%d", i), func(t *sched.Thread) {
			for {
				appkit.BB(t, "ldap.worker_loop")
				op, ok := opQ.Recv(t)
				if !ok {
					return
				}
				key := uint64(op[1])
				if op[0] == 'S' {
					search(t, key)
				} else {
					unbind(t, key)
				}
			}
		}))
	}

	for i := 0; i < nOps; i++ {
		r := w.Rand(th)
		// Every session eventually unbinds: a quarter of the ops are
		// unbinds regardless of the search key distribution.
		kind := byte('S')
		if i%4 == 3 {
			kind = 'U'
		}
		opQ.Send(th, []byte{kind, byte(r >> 8)})
	}
	opQ.Close(th)

	for _, wk := range workers {
		th.Join(wk)
	}
}
