package apps

import (
	"fmt"

	"repro/internal/appkit"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/ssync"
)

// radix models the SPLASH-2 radix-sort kernel's rank-exchange phase:
// each worker builds a local histogram of its keys for the current
// digit, then the workers exchange prefix-sum information through
// per-worker semaphores before permuting keys.
//
// Modelled bug:
//
//   - radix-deadlock: the exchange takes the neighbor semaphores in
//     ring order (mine, then my right neighbor's) — dining-philosopher
//     style. Under the schedule where every worker grabs its own
//     semaphore first, each then waits on its neighbor forever.
func radix() *appkit.Program {
	return &appkit.Program{
		Name:     "radix",
		Category: "scientific",
		Bugs:     []string{"radix-deadlock"},
		Run:      runRadix,
	}
}

func runRadix(env *appkit.Env) {
	th := env.T
	nWorkers := 3
	keysPer := env.ScaleOr(6)

	const radixBits = 4
	const buckets = 1 << radixBits
	keys := mem.NewArray("radix.keys", nWorkers*keysPer)
	hist := mem.NewArray("radix.hist", nWorkers*buckets)
	ranks := mem.NewArray("radix.ranks", nWorkers)

	// One exchange token per worker, initially available.
	var sems []*ssync.Semaphore
	for i := 0; i < nWorkers; i++ {
		sems = append(sems, ssync.NewSemaphore(fmt.Sprintf("radix.sem%d", i), 1))
	}

	// Deterministic skewed key distribution.
	for i := 0; i < keys.Len(); i++ {
		keys.Poke(i, uint64((i*i*31)%997))
	}

	histogram := func(t *sched.Thread, wid int) {
		appkit.Func(t, "radix.histogram", func() {
			for k := 0; k < keysPer; k++ {
				// The digit extraction is straight-line and batches; the
				// histogram update cannot — its address depends on the
				// key value just loaded, and batch ops are declared
				// before any of them commits.
				var v uint64
				t.PointBatch(
					appkit.BlockOp("radix.digit_extract", 150),
					keys.LoadOp(wid*keysPer+k, func(u uint64) { v = u }),
				)
				d := int(v) & (buckets - 1)
				c := hist.Load(t, wid*buckets+d)
				hist.Store(t, wid*buckets+d, c+1)
			}
		})
	}

	exchange := func(t *sched.Thread, wid int) {
		appkit.Func(t, "radix.rank_exchange", func() {
			right := (wid + 1) % nWorkers
			lo, hi := wid, right
			if env.FixBugs && lo > hi {
				lo, hi = hi, lo // patched: global acquisition order
			}
			appkit.BB(t, "radix.take_own")
			sems[lo].Acquire(t) // BUG (unpatched): every worker takes its own first...
			// ...computes its local prefix sums while holding it...
			appkit.Block(t, "radix.local_rank", 50)
			appkit.BB(t, "radix.take_right")
			sems[hi].Acquire(t) // ...then blocks on the neighbor's.

			// Combine the neighbor's histogram into this worker's rank.
			// Both semaphores are held here, so the neighbor histogram
			// is stable: each bucket's block+load batches whole.
			var sum uint64
			for d := 0; d < buckets; d++ {
				t.PointBatch(
					appkit.BlockOp("radix.prefix_arith", 100),
					hist.LoadOp(right*buckets+d, func(v uint64) { sum += v }),
				)
			}
			ranks.Store(t, wid, sum)

			sems[right].Release(t)
			sems[wid].Release(t)
		})
	}

	var workers []*sched.Thread
	for i := 0; i < nWorkers; i++ {
		wid := i
		workers = append(workers, th.Spawn(fmt.Sprintf("radix-worker%d", i), func(t *sched.Thread) {
			histogram(t, wid)
			exchange(t, wid)
		}))
	}
	for _, wk := range workers {
		th.Join(wk)
	}
}
