package apps

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sketch"
	"repro/internal/trace"
)

func recordOnce(t *testing.T, name string, seed int64, fixed bool) *core.Recording {
	t.Helper()
	p, ok := Get(name)
	if !ok {
		t.Fatalf("unknown app %s", name)
	}
	return core.Record(p, core.Options{
		Scheme:       sketch.RW,
		Processors:   4,
		ScheduleSeed: seed,
		WorldSeed:    1,
		MaxSteps:     500_000,
		FixBugs:      fixed,
	})
}

// TestAppsDeterministicPerSeed: every application's full event volume is
// identical across two recordings with the same seed.
func TestAppsDeterministicPerSeed(t *testing.T) {
	for _, p := range All() {
		a := recordOnce(t, p.Name, 11, true)
		b := recordOnce(t, p.Name, 11, true)
		if a.Sketch.Len() != b.Sketch.Len() || a.Result.Steps != b.Result.Steps {
			t.Errorf("%s: nondeterministic recordings (%d/%d steps vs %d/%d)",
				p.Name, a.Sketch.Len(), a.Result.Steps, b.Sketch.Len(), b.Result.Steps)
		}
	}
}

// TestAppsThreadStructure: thread counts match each model's documented
// role mix.
func TestAppsThreadStructure(t *testing.T) {
	want := map[string]int{
		"mysqld":       5, // main + 3 workers + rotator
		"apached":      4, // main + 3 workers
		"openldapd":    3, // main + 2 workers
		"cherokeed":    4, // main + 3 workers
		"pbzip2":       4, // main + producer + 2 consumers
		"aget":         4, // main + 2 workers + signal handler
		"transmission": 3, // main + 2 peers
		"fft":          5, // main + 4 workers
		"lu":           3, // main + 2 workers
		"barnes":       4, // main + builder + 2 walkers
		"radix":        4, // main + 3 workers
	}
	for _, p := range All() {
		rec := recordOnce(t, p.Name, 3, true)
		if rec.Result.Threads != want[p.Name] {
			t.Errorf("%s: %d threads, want %d", p.Name, rec.Result.Threads, want[p.Name])
		}
	}
}

// TestAppsEventProfiles: the per-category instrumentation mixes that
// drive the overhead experiments must hold structurally.
func TestAppsEventProfiles(t *testing.T) {
	for _, p := range All() {
		rec := recordOnce(t, p.Name, 3, true)
		k := rec.Result.EventsByKind
		syscalls := k[trace.KindSyscall]
		barriers := k[trace.KindBarrier]
		locks := k[trace.KindLock]
		mem := k[trace.KindLoad] + k[trace.KindStore] + k[trace.KindRMW]
		if mem == 0 {
			t.Errorf("%s: no shared-memory traffic", p.Name)
		}
		switch p.Category {
		case "server":
			if syscalls < 10 {
				t.Errorf("%s: server with only %d syscalls", p.Name, syscalls)
			}
			if locks == 0 {
				t.Errorf("%s: server without locking", p.Name)
			}
		case "scientific":
			if p.Name == "fft" || p.Name == "lu" {
				if barriers == 0 {
					t.Errorf("%s: kernel without barriers", p.Name)
				}
			}
		}
	}
}

// TestDeadlockBugsReportCycles: the corpus deadlocks must come with an
// extracted waits-for cycle naming the deadlocked threads.
func TestDeadlockBugsReportCycles(t *testing.T) {
	for _, id := range []string{"openldap-deadlock"} {
		prog, _ := ProgramForBug(id)
		oracle := core.MatchBugID(id)
		var f *sched.Failure
		for seed := int64(0); seed < 2000; seed++ {
			rec := core.Record(prog, core.Options{
				Scheme: sketch.SYNC, Processors: 4, ScheduleSeed: seed, WorldSeed: 1, MaxSteps: 300_000,
			})
			if g := rec.BugFailure(); g != nil && oracle(g) {
				f = g
				break
			}
		}
		if f == nil {
			t.Fatalf("%s never manifested", id)
		}
		if len(f.Cycle) < 2 {
			t.Errorf("%s: no waits-for cycle extracted (%v)", id, f.Msg)
		}
	}
}

// TestScaleKnobGrowsWork: doubling the scale must grow every app's
// instrumented work.
func TestScaleKnobGrowsWork(t *testing.T) {
	for _, p := range All() {
		small := core.Record(p, core.Options{
			Scheme: sketch.BASE, ScheduleSeed: 1, WorldSeed: 1, Scale: 20, MaxSteps: 2_000_000, FixBugs: true,
		})
		big := core.Record(p, core.Options{
			Scheme: sketch.BASE, ScheduleSeed: 1, WorldSeed: 1, Scale: 80, MaxSteps: 2_000_000, FixBugs: true,
		})
		if small.Result.Failure != nil || big.Result.Failure != nil {
			t.Errorf("%s: scaled fixed run failed (%v / %v)", p.Name, small.Result.Failure, big.Result.Failure)
			continue
		}
		if big.Result.Steps <= small.Result.Steps {
			t.Errorf("%s: scale 80 (%d steps) not larger than scale 20 (%d)",
				p.Name, big.Result.Steps, small.Result.Steps)
		}
	}
}

// TestBugAssertionsCarryContext: manifested failures carry the bug id,
// the failing thread and a human-readable message.
func TestBugAssertionsCarryContext(t *testing.T) {
	_, rec := findBuggySeed(t, "fft-barrier", 2000)
	if rec == nil {
		t.Fatal("no buggy seed")
	}
	f := rec.Result.Failure
	if f.BugID != "fft-barrier" || f.Msg == "" || f.Step == 0 {
		t.Fatalf("failure lacks context: %+v", f)
	}
}
