package apps

import (
	"fmt"

	"repro/internal/appkit"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/ssync"
)

// barnes models the SPLASH-2 Barnes-Hut N-body kernel's tree-build
// phase: builder threads insert bodies into a shared tree while walker
// threads traverse it to accumulate forces (the original overlaps build
// and force phases for cells that are "done").
//
// Modelled bug:
//
//   - barnes-order (order violation): an insert publishes the child
//     pointer in the parent before initializing the child's body (mass,
//     center). A concurrent walker that follows the fresh pointer reads
//     an uninitialized node — the original garbage-force defect,
//     caught by the node's ready tag at the read.
func barnes() *appkit.Program {
	return &appkit.Program{
		Name:     "barnes",
		Category: "scientific",
		Bugs:     []string{"barnes-order"},
		Run:      runBarnes,
	}
}

func runBarnes(env *appkit.Env) {
	th := env.T
	nBodies := env.ScaleOr(6)

	const maxNodes = 64
	const readyTag = 0xA11
	// Node layout: children (slot per node), mass, ready-tag.
	children := mem.NewArray("barnes.children", maxNodes)
	mass := mem.NewArray("barnes.mass", maxNodes)
	ready := mem.NewArray("barnes.ready", maxNodes)
	nextNode := mem.NewCell("barnes.next_node", 1) // 0 is the root
	treeLock := ssync.NewMutex("barnes.tree_lock")
	forces := mem.NewCell("barnes.force_acc", 0)

	// Root is initialized before the workers start.
	ready.Poke(0, readyTag)
	mass.Poke(0, 1)

	insert := func(t *sched.Thread, body int) {
		appkit.Func(t, "barnes.insert_body", func() {
			// Walk the tree to the insertion cell: private traversal.
			appkit.Block(t, "barnes.tree_walk", 300)
			// Allocate a node id under the tree lock (synchronized, as
			// in the original).
			treeLock.Lock(t)
			id := nextNode.Load(t)
			nextNode.Store(t, id+1)
			treeLock.Unlock(t)
			if id >= maxNodes {
				return
			}
			parent := uint64(body) % id // walk shortened to a hash step
			if env.FixBugs {
				// Patched: initialize, then publish. Correctly ordered
				// straight-line stores, so the whole sequence batches
				// under one handoff (every interleaving point is safe).
				t.PointBatch(
					appkit.BlockOp("barnes.init_node", appkit.DefaultBlockAccesses),
					mass.StoreOp(int(id), uint64(body)+1),
					ready.StoreOp(int(id), readyTag),
					appkit.BlockOp("barnes.link_child", appkit.DefaultBlockAccesses),
					children.StoreOp(int(parent), id),
				)
				return
			}
			appkit.BB(t, "barnes.link_child")
			// BUG: the child pointer is published first...
			children.Store(t, int(parent), id)
			// ...and the node body is initialized after the link.
			appkit.BB(t, "barnes.init_node")
			mass.Store(t, int(id), uint64(body)+1)
			ready.Store(t, int(id), readyTag)
		})
	}

	walk := func(t *sched.Thread, start int) {
		appkit.Func(t, "barnes.walk", func() {
			node := uint64(start) % 4
			for hop := 0; hop < 3; hop++ {
				// In the patched program the child pointer is published
				// after the node is initialized, so the force math and the
				// pointer read are straight-line and batch under one
				// handoff. The unpatched walker keeps every hop on plain
				// points: its pointer read sits inside the racy
				// publish/init window, and committing it back-to-back with
				// the force block would close the interleavings the bug
				// needs.
				var child uint64
				if env.FixBugs {
					t.PointBatch(
						appkit.BlockOp("barnes.force_math", 600),
						children.LoadOp(int(node%maxNodes), func(v uint64) { child = v }),
					)
				} else {
					appkit.Block(t, "barnes.force_math", 600)
					child = children.Load(t, int(node%maxNodes))
				}
				if child == 0 || child >= maxNodes {
					break
				}
				tag := ready.Load(t, int(child))
				t.Check(tag == readyTag, "barnes-order",
					"walker read node %d before init (tag=%#x)", child, tag)
				m := mass.Load(t, int(child))
				forces.Add(t, m%1000)
				node = child
			}
		})
	}

	builder := th.Spawn("barnes-builder", func(t *sched.Thread) {
		for b := 1; b <= nBodies; b++ {
			insert(t, b)
		}
	})
	var walkers []*sched.Thread
	for i := 0; i < 2; i++ {
		start := i + 1
		walkers = append(walkers, th.Spawn(fmt.Sprintf("barnes-walker%d", i), func(t *sched.Thread) {
			for round := 0; round < nBodies/2+1; round++ {
				walk(t, start+round)
			}
		}))
	}

	th.Join(builder)
	for _, wk := range walkers {
		th.Join(wk)
	}
}
