package apps

import (
	"fmt"

	"repro/internal/appkit"
	"repro/internal/mem"
	"repro/internal/sched"
)

// transmission models the BitTorrent client's session startup: the main
// thread constructs the session object and spawns peer workers that
// immediately start using it to rate-limit their transfers.
//
// Modelled bug:
//
//   - transmission-1818 (order violation): tr_sessionInitFull published
//     the session handle (h->ready) before initializing h->bandwidth;
//     a peer thread that won the race dereferenced an uninitialized
//     bandwidth object and crashed. We publish the handle first and
//     fill the bandwidth fields after, exactly the original ordering.
func transmission() *appkit.Program {
	return &appkit.Program{
		Name:     "transmission",
		Category: "desktop",
		Bugs:     []string{"transmission-1818"},
		Run:      runTransmission,
	}
}

func runTransmission(env *appkit.Env) {
	th := env.T
	w := env.W
	nPeers := 2
	nMsgs := env.ScaleOr(6)

	// The session object: handle flag plus two bandwidth fields.
	handleReady := mem.NewCell("tr.handle_ready", 0)
	bwLimit := mem.NewCell("tr.bandwidth_limit", 0)
	bwMagic := mem.NewCell("tr.bandwidth_magic", 0)
	transferred := mem.NewCell("tr.transferred", 0)
	peerQ := w.NewQueue("tr.peer_socket")

	const bandwidthMagic = 0xB00C

	// Peer workers: spawned by session init below; they rate-limit
	// transfers through the bandwidth object.
	peerBody := func(t *sched.Thread) {
		{
			for {
				appkit.BB(t, "tr.peer_loop")
				msg, ok := peerQ.Recv(t)
				if !ok {
					return
				}
				appkit.Func(t, "tr.peer_transfer", func() {
					if handleReady.Load(t) == 1 {
						// Dereference the bandwidth object.
						var magic uint64
						if env.FixBugs {
							// Patched init publishes the handle last, so
							// the magic read is stable once the handle is
							// visible and batches with the use block. The
							// buggy path keeps it a plain point: the read
							// sits inside the racy init window.
							t.PointBatch(
								appkit.BlockOp("tr.bandwidth_use", appkit.DefaultBlockAccesses),
								bwMagic.LoadOp(func(v uint64) { magic = v }),
							)
						} else {
							appkit.BB(t, "tr.bandwidth_use")
							magic = bwMagic.Load(t)
						}
						t.Check(magic == bandwidthMagic, "transmission-1818",
							"bandwidth used before init (magic=%#x)", magic)
						limit := bwLimit.Load(t)
						amount := uint64(msg[0])
						if amount > limit {
							amount = limit
						}
						transferred.Add(t, amount)
						// Verify the admitted piece: private work.
						appkit.Block(t, "tr.piece_hash", 2500)
					}
				})
			}
		}
	}

	// Peer traffic is already queued on the sockets when the session
	// starts (peers connect asynchronously in the original).
	for i := 0; i < nMsgs; i++ {
		r := w.Rand(th)
		peerQ.Send(th, []byte{byte(r%120 + 1)})
	}

	// Session init, with the original's buggy publication order. The
	// patched variant (the upstream fix) initializes the bandwidth
	// object before the handle is published and the peers started.
	var peers []*sched.Thread
	appkit.Func(th, "tr.sessionInitFull", func() {
		if env.FixBugs {
			appkit.BB(th, "tr.init_bandwidth")
			bwLimit.Store(th, 100)
			bwMagic.Store(th, bandwidthMagic)
			w.Sleep(th, 20)
			appkit.BB(th, "tr.init_handle")
			handleReady.Store(th, 1)
			for i := 0; i < nPeers; i++ {
				peers = append(peers, th.Spawn(fmt.Sprintf("tr-peer%d", i), peerBody))
			}
			return
		}
		appkit.BB(th, "tr.init_handle")
		handleReady.Store(th, 1)      // BUG: handle published first...
		for i := 0; i < nPeers; i++ { // ...the peer threads started...
			peers = append(peers, th.Spawn(fmt.Sprintf("tr-peer%d", i), peerBody))
		}
		w.Sleep(th, 20) // (the original did network setup here)
		appkit.BB(th, "tr.init_bandwidth")
		bwLimit.Store(th, 100)            // ...and only then the bandwidth
		bwMagic.Store(th, bandwidthMagic) // object initialized.
	})

	peerQ.Close(th)

	for _, p := range peers {
		th.Join(p)
	}
}
