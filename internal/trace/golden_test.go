package trace

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden wire-format fixtures")

// The golden fixtures freeze both wire formats: v1 files must decode
// forever (recordings in the field never orphan), and the current
// encoders must keep producing byte-identical output for the same log
// (any drift is a silent format change and needs a version bump).
//
// Regenerate deliberately with: go test ./internal/trace -run Golden -update

func goldenSketch() *SketchLog {
	l := &SketchLog{Scheme: "SYNC", TotalOps: 9001, Records: 12}
	// Walk every v2 object mode: absolute, delta, mru[0] repeat, deep
	// MRU hits, and a same-thread run long enough to RLE.
	for _, e := range []SketchEntry{
		{TID: 0, Kind: KindLock, Obj: 0x1000},   // abs (cold dictionary)
		{TID: 0, Kind: KindUnlock, Obj: 0x1000}, // mru[0]
		{TID: 0, Kind: KindLock, Obj: 0x1008},   // short delta
		{TID: 2, Kind: KindLock, Obj: 0x1000},   // mru[1] after new run
		{TID: 2, Kind: KindSignal, Obj: 7},      // abs beats huge delta? delta from 0x1000, abs=7 smaller
		{TID: 2, Kind: KindWait, Obj: 0x1008},   // deep mru hit
		{TID: 1, Kind: KindBarrier, Obj: 99},
		{TID: 1, Kind: KindBarrier, Obj: 99},
		{TID: 1, Kind: KindSyscall, Obj: 0},
		{TID: 0, Kind: KindStore, Obj: 1 << 40}, // wide absolute object
	} {
		l.Entries = append(l.Entries, e)
	}
	return l
}

func goldenInput() *InputLog {
	l := &InputLog{}
	l.Append(InputRecord{TID: 0, Call: 3, Data: []byte("clock")})
	l.Append(InputRecord{TID: 0, Call: 3, Data: []byte{0xff, 0x00}})
	// Empty (not nil) data: the decoders materialize a zero-length
	// slice, and DeepEqual distinguishes the two.
	l.Append(InputRecord{TID: 5, Call: 1, Data: []byte{}})
	l.Append(InputRecord{TID: 2, Call: 9, Data: []byte("recv")})
	return l
}

func goldenFullOrder() *FullOrder {
	return &FullOrder{Order: []TID{0, 0, 0, 0, 2, 2, 1, 0, 0, 3, 3, 3, 3, 3, 1}}
}

func TestGoldenWireFormats(t *testing.T) {
	cases := []struct {
		file   string
		encode func(*bytes.Buffer) error
		decode func(*bytes.Buffer) (any, error)
		want   any
	}{
		{"sketch_v1.bin",
			func(b *bytes.Buffer) error { return EncodeSketchV1(b, goldenSketch()) },
			func(b *bytes.Buffer) (any, error) { return DecodeSketch(b) },
			goldenSketch()},
		{"sketch_v2.bin",
			func(b *bytes.Buffer) error { return EncodeSketch(b, goldenSketch()) },
			func(b *bytes.Buffer) (any, error) { return DecodeSketch(b) },
			goldenSketch()},
		{"input_v1.bin",
			func(b *bytes.Buffer) error { return EncodeInputV1(b, goldenInput()) },
			func(b *bytes.Buffer) (any, error) { return DecodeInput(b) },
			goldenInput()},
		{"input_v2.bin",
			func(b *bytes.Buffer) error { return EncodeInput(b, goldenInput()) },
			func(b *bytes.Buffer) (any, error) { return DecodeInput(b) },
			goldenInput()},
		{"fullorder_v1.bin",
			func(b *bytes.Buffer) error { return EncodeFullOrderV1(b, goldenFullOrder()) },
			func(b *bytes.Buffer) (any, error) { return DecodeFullOrder(b) },
			goldenFullOrder()},
		{"fullorder_v2.bin",
			func(b *bytes.Buffer) error { return EncodeFullOrder(b, goldenFullOrder()) },
			func(b *bytes.Buffer) (any, error) { return DecodeFullOrder(b) },
			goldenFullOrder()},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			path := filepath.Join("testdata", tc.file)
			var enc bytes.Buffer
			if err := tc.encode(&enc); err != nil {
				t.Fatal(err)
			}
			if *updateGolden {
				if err := os.WriteFile(path, enc.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			fixture, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			// Encoder stability: today's encoder must reproduce the
			// frozen bytes exactly.
			if !bytes.Equal(enc.Bytes(), fixture) {
				t.Fatalf("encoder output drifted from fixture %s (%d vs %d bytes)", tc.file, enc.Len(), len(fixture))
			}
			// Decoder compatibility: the frozen bytes must decode to the
			// canonical log.
			got, err := tc.decode(bytes.NewBuffer(fixture))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("decoded fixture mismatch:\n got %+v\nwant %+v", got, tc.want)
			}
		})
	}
}

// TestGoldenV2Smaller pins the headline property of the v2 sketch
// format on the fixture itself.
func TestGoldenV2Smaller(t *testing.T) {
	var v1, v2 bytes.Buffer
	if err := EncodeSketchV1(&v1, goldenSketch()); err != nil {
		t.Fatal(err)
	}
	if err := EncodeSketch(&v2, goldenSketch()); err != nil {
		t.Fatal(err)
	}
	if v2.Len() >= v1.Len() {
		t.Fatalf("v2 (%d bytes) not smaller than v1 (%d bytes)", v2.Len(), v1.Len())
	}
}
