package trace

// Per-thread sketch logs. A ShardedSketch is the in-memory form a
// per-thread-log recorder accumulates during a production run: one
// append-only SketchShard per recording thread, plus a global list of
// SealedChunks — contiguous shard ranges published at epoch seal
// points, in seal order. The on-disk form is unchanged: Merge
// interleaves the chunks back into the canonical global order and the
// result encodes through the ordinary v2 sketch codec, byte-identical
// to what a global-log recorder of the same execution would have
// written (pinned by FuzzShardMergeRoundTrip and the core equivalence
// property test).
//
// The contract between the writer (the recorder), the sealer (the
// scheduler's epoch seam) and the reader (Merge) is:
//
//  1. A thread appends only to its own shard, never to another's, and
//     never reorders or removes entries (shards are append-only).
//  2. An epoch seal publishes the shard's unsealed suffix as one chunk
//     and claims the next global seal sequence number — the chunk's
//     position in Chunks. Seals of an execution are totally ordered.
//  3. Canonical-order soundness: when a chunk is sealed, every entry of
//     every *earlier* global position has already been sealed. The
//     scheduler guarantees this by sealing the outgoing thread at every
//     control transfer, before the incoming thread commits anything —
//     so at any instant at most one shard holds unsealed entries, and
//     concatenating chunks in seal order reproduces the global order.
//
// See INTERNALS.md, "Per-thread sketch logs & epoch merge".

// SketchShard is one thread's local sketch buffer: the subsequence of
// the global sketch order performed by that thread, in program order.
type SketchShard struct {
	TID     TID
	Entries []SketchEntry
	// sealed counts the leading entries already published as chunks;
	// Entries[sealed:] is the open (unsealed) suffix of the current
	// epoch.
	sealed int
}

// Append records one sketch point in the thread-local buffer.
func (sh *SketchShard) Append(ev Event) {
	sh.Entries = append(sh.Entries, EntryOf(ev))
}

// Reserve grows the shard for n upcoming appends (the run-grant
// batching hook), with the same never-below-doubling growth as
// SketchLog.Reserve so interleaved Reserve/Append stays amortized.
func (sh *SketchShard) Reserve(n int) {
	need := len(sh.Entries) + n
	if n <= 0 || cap(sh.Entries) >= need {
		return
	}
	newCap := 2 * cap(sh.Entries)
	if newCap < need {
		newCap = need
	}
	grown := make([]SketchEntry, len(sh.Entries), newCap)
	copy(grown, sh.Entries)
	sh.Entries = grown
}

// Unsealed returns the number of entries of the open epoch — appends
// not yet published by a seal.
func (sh *SketchShard) Unsealed() int { return len(sh.Entries) - sh.sealed }

// SealedChunk is one published epoch: the half-open entry range
// [Start, End) of shard index Shard. A chunk's position in
// ShardedSketch.Chunks is its global seal sequence number.
type SealedChunk struct {
	Shard      int
	Start, End int
}

// ShardedSketch is the per-thread in-memory sketch representation (see
// the package-level contract above).
type ShardedSketch struct {
	Scheme string
	Shards []*SketchShard // creation order; one per recording thread
	Chunks []SealedChunk  // seal order == canonical global order
	// TotalOps and Records mirror SketchLog's bookkeeping.
	TotalOps uint64
	Records  uint64
}

// NewShard creates the local buffer for one thread and returns its
// shard index.
func (s *ShardedSketch) NewShard(tid TID) (int, *SketchShard) {
	sh := &SketchShard{TID: tid}
	s.Shards = append(s.Shards, sh)
	return len(s.Shards) - 1, sh
}

// Seal publishes shard i's unsealed suffix as the next chunk and
// returns the number of entries it covered; an empty suffix publishes
// nothing and returns 0 (an idle thread's epoch costs nothing).
func (s *ShardedSketch) Seal(i int) int {
	sh := s.Shards[i]
	n := sh.Unsealed()
	if n == 0 {
		return 0
	}
	s.Chunks = append(s.Chunks, SealedChunk{Shard: i, Start: sh.sealed, End: len(sh.Entries)})
	sh.sealed = len(sh.Entries)
	return n
}

// SealAll publishes every shard's remaining open suffix — the final
// epochs at end of execution. By contract rule 3 at most one shard can
// hold unsealed entries here, so the publication order is immaterial.
func (s *ShardedSketch) SealAll() {
	for i := range s.Shards {
		s.Seal(i)
	}
}

// Len returns the total number of entries across all shards, sealed or
// not.
func (s *ShardedSketch) Len() int {
	n := 0
	for _, sh := range s.Shards {
		n += len(sh.Entries)
	}
	return n
}

// Merge seals every open suffix and interleaves the chunks, in seal
// order, into one globally ordered SketchLog — the canonical-order
// merge performed once at encode time. The result is entry-for-entry
// (and therefore, through EncodeSketch, byte-for-byte) what a
// global-log recorder of the same execution would hold.
func (s *ShardedSketch) Merge() *SketchLog {
	s.SealAll()
	total := 0
	for _, c := range s.Chunks {
		total += c.End - c.Start
	}
	l := &SketchLog{
		Scheme:   s.Scheme,
		TotalOps: s.TotalOps,
		Records:  s.Records,
		Entries:  make([]SketchEntry, 0, total),
	}
	for _, c := range s.Chunks {
		l.Entries = append(l.Entries, s.Shards[c.Shard].Entries[c.Start:c.End]...)
	}
	return l
}
