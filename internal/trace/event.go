// Package trace defines the execution event model shared by the
// scheduler, the sketch recorders and the replayer, together with the
// on-disk log formats (sketch logs, input logs, full-order traces) and a
// compact varint-based binary codec.
//
// Every instrumentation point in an application produces one Event. The
// scheduler assigns the global sequence number at grant time; the global
// order of events *is* the execution. Sketching mechanisms record
// subsequences of it (see package sketch); the full order is captured
// only after a bug has been reproduced once.
package trace

import "fmt"

// TID identifies a simulated thread within one execution. Thread 0 is
// the initial (main) thread; children get ids in spawn order.
type TID int32

// NoTID marks an absent thread id.
const NoTID TID = -1

// Kind enumerates instrumentation-point operation kinds.
type Kind uint8

// Operation kinds. The numeric values are part of the log format; append
// only.
const (
	KindInvalid Kind = iota

	// Thread lifecycle.
	KindThreadStart // first point of a thread, Obj = parent tid
	KindThreadExit  // last point of a thread
	KindSpawn       // Obj = child tid
	KindJoin        // Obj = joined tid

	// Shared memory. Obj = cell address, Arg = value stored/loaded.
	KindLoad
	KindStore
	KindRMW // atomic read-modify-write (counts as both for races)

	// Synchronization. Obj = primitive id.
	KindLock
	KindUnlock
	KindRLock
	KindRUnlock
	KindWait      // condition wait: release + sleep
	KindWake      // condition wait resumed: lock reacquired
	KindSignal    // Obj = cond id
	KindBroadcast // Obj = cond id
	KindSemAcquire
	KindSemRelease
	KindBarrier // Obj = barrier id, Arg = generation

	// System calls. Obj = vsys call code, Arg = handle or size.
	KindSyscall

	// Control-flow instrumentation.
	KindFuncEnter // Obj = function id
	KindFuncExit  // Obj = function id
	KindBB        // Obj = basic-block id

	// Explicit scheduling point with no side effect.
	KindYield

	numKinds
)

// NumKinds is the number of defined kinds (including KindInvalid), for
// sizing per-kind counter arrays.
const NumKinds = int(numKinds)

// CostUnit is the logical-time cost of one instrumented memory access;
// all operation costs are expressed in tenths of it so that sub-access
// costs (like the instrumentation filter) stay integral.
const CostUnit = 10

var kindNames = [numKinds]string{
	KindInvalid:     "invalid",
	KindThreadStart: "thread-start",
	KindThreadExit:  "thread-exit",
	KindSpawn:       "spawn",
	KindJoin:        "join",
	KindLoad:        "load",
	KindStore:       "store",
	KindRMW:         "rmw",
	KindLock:        "lock",
	KindUnlock:      "unlock",
	KindRLock:       "rlock",
	KindRUnlock:     "runlock",
	KindWait:        "wait",
	KindWake:        "wake",
	KindSignal:      "signal",
	KindBroadcast:   "broadcast",
	KindSemAcquire:  "sem-acquire",
	KindSemRelease:  "sem-release",
	KindBarrier:     "barrier",
	KindSyscall:     "syscall",
	KindFuncEnter:   "func-enter",
	KindFuncExit:    "func-exit",
	KindBB:          "bb",
	KindYield:       "yield",
}

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Valid reports whether k is a defined kind.
func (k Kind) Valid() bool { return k > KindInvalid && k < numKinds }

// IsMemory reports whether k is a shared-memory access.
func (k Kind) IsMemory() bool { return k == KindLoad || k == KindStore || k == KindRMW }

// IsWrite reports whether k writes shared memory.
func (k Kind) IsWrite() bool { return k == KindStore || k == KindRMW }

// IsSync reports whether k is a synchronization operation (including
// thread lifecycle, which orders threads just like sync ops do).
func (k Kind) IsSync() bool {
	switch k {
	case KindLock, KindUnlock, KindRLock, KindRUnlock,
		KindWait, KindWake, KindSignal, KindBroadcast,
		KindSemAcquire, KindSemRelease, KindBarrier,
		KindSpawn, KindJoin, KindThreadStart, KindThreadExit:
		return true
	}
	return false
}

// IsSyscall reports whether k is a virtual system call (thread lifecycle
// operations are exposed to the SYS sketch as well, mirroring clone/wait
// being system calls on a real kernel).
func (k Kind) IsSyscall() bool {
	switch k {
	case KindSyscall, KindSpawn, KindJoin, KindThreadStart, KindThreadExit:
		return true
	}
	return false
}

// Event is one instrumentation-point operation in the global order.
type Event struct {
	Seq    uint64 // global sequence number, assigned at grant time
	TID    TID    // executing thread
	TCount uint64 // per-thread operation index (1-based)
	Kind   Kind
	Obj    uint64 // address / primitive id / call code / func or bb id
	Arg    uint64 // kind-specific argument
}

// String renders the event for diagnostics.
func (e Event) String() string {
	return fmt.Sprintf("#%d t%d/%d %s obj=%#x arg=%d", e.Seq, e.TID, e.TCount, e.Kind, e.Obj, e.Arg)
}

// Conflicts reports whether two memory events race: same address,
// different threads, at least one write.
func Conflicts(a, b Event) bool {
	return a.Kind.IsMemory() && b.Kind.IsMemory() &&
		a.TID != b.TID && a.Obj == b.Obj &&
		(a.Kind.IsWrite() || b.Kind.IsWrite())
}
