package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// This file is the epoch-segmented recording container: instead of one
// whole-execution sketch log, a recording is a sequence of sealed
// epochs held in a fixed-size ring, plus periodic state checkpoints.
// Epoch boundaries are the scheduler's control transfers (the same seam
// sched.EpochObserver seals per-thread shards at), so an epoch's
// entries are a contiguous slice of the global order and the retained
// window is simply the concatenation of the retained epochs. The ring
// is what makes always-on recording possible: old epochs are evicted
// as new ones seal, bounding memory and log bytes by the ring size
// while replay search restarts from the newest retained checkpoint.
//
// Wire layout ("PREG" payload, framed by core's "PREP" container):
//
//	"PREG" version scheme totalOps records size evicted evictedEntries
//	nEpochs { id startStep startEntry len sketchSection }...
//	nCheckpoints { epoch step sketchIndex inputIndex eventDigest
//	               worldDigest len worldBytes }...
//
// Each epoch's entries are encoded as an independent v2 sketch section
// (EncodeSketch with fresh MRU/TID state), so decoding a window never
// depends on evicted epochs' codec state.

// Epoch is one sealed segment of the global sketch order.
type Epoch struct {
	// ID numbers epochs from 0 over the whole run; eviction never
	// renumbers, so an ID is a stable name for "the K-th epoch" in
	// diagnostics and checkpoints.
	ID uint64
	// StartStep is the number of events the execution had committed
	// when the epoch opened.
	StartStep uint64
	// StartEntry is the global sketch-entry index of the epoch's first
	// entry (entries recorded before it, including evicted ones).
	StartEntry uint64
	// Entries is the epoch's slice of the global sketch order.
	Entries []SketchEntry
}

// Checkpoint is a periodic state capture at an epoch boundary: enough
// identity (step/entry/input positions plus digests) for a replayer to
// re-establish the boundary, and the serialized virtual-world snapshot.
type Checkpoint struct {
	// Epoch is the ID of the first epoch after the capture point (the
	// checkpoint sits exactly between epoch Epoch-1 and epoch Epoch).
	Epoch uint64
	// Step is the number of committed events at capture.
	Step uint64
	// SketchIndex is the global sketch-entry count at capture.
	SketchIndex uint64
	// InputIndex is the input-record count at capture.
	InputIndex uint64
	// EventDigest is the running digest of every committed event up to
	// Step (Digest.Entry over each event's sketch projection); replay
	// validates its re-executed prefix against it.
	EventDigest uint64
	// WorldDigest is the virtual syscall world's state digest at
	// capture; World is its serialized snapshot (vsys.World.Snapshot).
	WorldDigest uint64
	World       []byte
}

// EpochRing is the bounded container of sealed epochs. Size is the
// capacity in epochs (0 = unbounded); appending past capacity evicts
// the oldest epoch and drops checkpoints older than the retained
// window. Scheme/TotalOps/Records mirror the whole run's SketchLog
// bookkeeping so a window log can be reconstructed after decode.
type EpochRing struct {
	Scheme   string
	TotalOps uint64
	Records  uint64
	// Size is the ring capacity in epochs; 0 means unbounded.
	Size int
	// Evicted counts epochs dropped from the front; EvictedEntries
	// counts the sketch entries dropped with them. The oldest retained
	// epoch's ID is always Evicted.
	Evicted        uint64
	EvictedEntries uint64
	Epochs         []Epoch
	Checkpoints    []Checkpoint
}

// NewEpochRing returns an empty ring with the given capacity in epochs
// (size <= 0 means unbounded).
func NewEpochRing(size int) *EpochRing {
	if size < 0 {
		size = 0
	}
	return &EpochRing{Size: size}
}

// Append seals one epoch into the ring, evicting from the front when
// the ring is full. Checkpoints that fall before the retained window
// are dropped — their prefix can no longer be re-established from the
// retained entries.
func (r *EpochRing) Append(e Epoch) {
	r.Epochs = append(r.Epochs, e)
	for r.Size > 0 && len(r.Epochs) > r.Size {
		old := r.Epochs[0]
		r.Evicted++
		r.EvictedEntries += uint64(len(old.Entries))
		copy(r.Epochs, r.Epochs[1:])
		r.Epochs = r.Epochs[:len(r.Epochs)-1]
	}
	for len(r.Checkpoints) > 0 && r.Checkpoints[0].Epoch < r.Evicted {
		copy(r.Checkpoints, r.Checkpoints[1:])
		r.Checkpoints = r.Checkpoints[:len(r.Checkpoints)-1]
	}
}

// AddCheckpoint records a checkpoint at the current boundary.
func (r *EpochRing) AddCheckpoint(cp Checkpoint) {
	r.Checkpoints = append(r.Checkpoints, cp)
}

// WindowLen returns the number of sketch entries currently retained.
func (r *EpochRing) WindowLen() int {
	n := 0
	for _, e := range r.Epochs {
		n += len(e.Entries)
	}
	return n
}

// Window concatenates the retained epochs' entries into one slice in
// global order — the sketch the replayer enforces.
func (r *EpochRing) Window() []SketchEntry {
	out := make([]SketchEntry, 0, r.WindowLen())
	for _, e := range r.Epochs {
		out = append(out, e.Entries...)
	}
	return out
}

// WindowLog reconstructs the SketchLog view of the retained window:
// Entries hold the window, TotalOps/Records keep the whole run's
// cumulative counts (an unbounded ring's window log is exactly the
// whole-execution log).
func (r *EpochRing) WindowLog() *SketchLog {
	return &SketchLog{
		Scheme:   r.Scheme,
		Entries:  r.Window(),
		TotalOps: r.TotalOps,
		Records:  r.Records,
	}
}

// LastCheckpoint returns the newest retained checkpoint, if any.
func (r *EpochRing) LastCheckpoint() (Checkpoint, bool) {
	if len(r.Checkpoints) == 0 {
		return Checkpoint{}, false
	}
	return r.Checkpoints[len(r.Checkpoints)-1], true
}

// Segmented reports whether the ring carries structure the classic
// whole-execution format cannot express — a bounded window or
// checkpoints. An unbounded, checkpoint-free ring's recording is
// byte-identical to the classic format (core.Recording.Write emits the
// classic layout for it).
func (r *EpochRing) Segmented() bool {
	return r.Size > 0 || r.Evicted > 0 || len(r.Checkpoints) > 0
}

// EpochContainerMagic is the 4-byte sniff tag a container recording
// starts with. The classic format can never begin with it: its first
// byte is a uvarint section length, so either that byte has the high
// bit set (not 'P') or the following bytes are the "PRSK" sketch magic.
const EpochContainerMagic = "PREP"

// magicEpochs frames the epoch payload itself (inside the container's
// length-prefixed first section).
const magicEpochs = "PREG"

// Epoch decode sanity limits (see the maxDecode* family above).
const (
	maxDecodeEpochs      = 1 << 20
	maxDecodeCheckpoints = 1 << 16
	maxWorldSnapshot     = 1 << 26
)

// EncodeEpochs writes the ring in the epoch container payload format.
func EncodeEpochs(w io.Writer, r *EpochRing) error {
	bw := getBufio(w)
	defer putBufio(bw)
	if _, err := bw.WriteString(magicEpochs); err != nil {
		return err
	}
	scratch := getScratch()
	defer putScratch(scratch)
	buf := *scratch
	buf = binary.AppendUvarint(buf, logVersion2)
	buf = binary.AppendUvarint(buf, uint64(len(r.Scheme)))
	buf = append(buf, r.Scheme...)
	buf = binary.AppendUvarint(buf, r.TotalOps)
	buf = binary.AppendUvarint(buf, r.Records)
	buf = binary.AppendUvarint(buf, uint64(r.Size))
	buf = binary.AppendUvarint(buf, r.Evicted)
	buf = binary.AppendUvarint(buf, r.EvictedEntries)
	buf = binary.AppendUvarint(buf, uint64(len(r.Epochs)))
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	var section bytes.Buffer
	for _, e := range r.Epochs {
		section.Reset()
		if err := EncodeSketch(&section, &SketchLog{Entries: e.Entries}); err != nil {
			return err
		}
		buf = buf[:0]
		buf = binary.AppendUvarint(buf, e.ID)
		buf = binary.AppendUvarint(buf, e.StartStep)
		buf = binary.AppendUvarint(buf, e.StartEntry)
		buf = binary.AppendUvarint(buf, uint64(section.Len()))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
		if _, err := bw.Write(section.Bytes()); err != nil {
			return err
		}
	}
	buf = buf[:0]
	buf = binary.AppendUvarint(buf, uint64(len(r.Checkpoints)))
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	for _, cp := range r.Checkpoints {
		buf = buf[:0]
		buf = binary.AppendUvarint(buf, cp.Epoch)
		buf = binary.AppendUvarint(buf, cp.Step)
		buf = binary.AppendUvarint(buf, cp.SketchIndex)
		buf = binary.AppendUvarint(buf, cp.InputIndex)
		buf = binary.AppendUvarint(buf, cp.EventDigest)
		buf = binary.AppendUvarint(buf, cp.WorldDigest)
		buf = binary.AppendUvarint(buf, uint64(len(cp.World)))
		buf = append(buf, cp.World...)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	*scratch = buf
	return bw.Flush()
}

// DecodeEpochs reads an epoch container payload written by EncodeEpochs.
func DecodeEpochs(r io.Reader) (*EpochRing, error) {
	br := bufio.NewReader(r)
	if err := expectMagic(br, magicEpochs); err != nil {
		return nil, err
	}
	if _, err := readVersion(br); err != nil {
		return nil, err
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nameLen > 1<<10 {
		return nil, fmt.Errorf("%w: scheme name length %d", ErrBadFormat, nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	ring := &EpochRing{Scheme: string(name)}
	fields := []*uint64{&ring.TotalOps, &ring.Records}
	for _, f := range fields {
		if *f, err = binary.ReadUvarint(br); err != nil {
			return nil, err
		}
	}
	size, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if size > maxDecodeEpochs {
		return nil, fmt.Errorf("%w: ring size %d exceeds sanity limit", ErrBadFormat, size)
	}
	ring.Size = int(size)
	if ring.Evicted, err = binary.ReadUvarint(br); err != nil {
		return nil, err
	}
	if ring.EvictedEntries, err = binary.ReadUvarint(br); err != nil {
		return nil, err
	}
	nEpochs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nEpochs > maxDecodeEpochs {
		return nil, fmt.Errorf("%w: %d epochs exceeds sanity limit", ErrBadFormat, nEpochs)
	}
	if nEpochs > 0 {
		ring.Epochs = make([]Epoch, 0, min(nEpochs, 1<<12))
	}
	for i := uint64(0); i < nEpochs; i++ {
		var e Epoch
		if e.ID, err = binary.ReadUvarint(br); err != nil {
			return nil, err
		}
		if e.StartStep, err = binary.ReadUvarint(br); err != nil {
			return nil, err
		}
		if e.StartEntry, err = binary.ReadUvarint(br); err != nil {
			return nil, err
		}
		secLen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if secLen > 1<<30 {
			return nil, fmt.Errorf("%w: epoch %d section size %d", ErrBadFormat, i, secLen)
		}
		section := make([]byte, secLen)
		if _, err := io.ReadFull(br, section); err != nil {
			return nil, err
		}
		sk, err := DecodeSketch(bytes.NewReader(section))
		if err != nil {
			return nil, err
		}
		e.Entries = sk.Entries
		ring.Epochs = append(ring.Epochs, e)
	}
	nCps, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nCps > maxDecodeCheckpoints {
		return nil, fmt.Errorf("%w: %d checkpoints exceeds sanity limit", ErrBadFormat, nCps)
	}
	if nCps > 0 {
		ring.Checkpoints = make([]Checkpoint, 0, min(nCps, 1<<10))
	}
	for i := uint64(0); i < nCps; i++ {
		var cp Checkpoint
		fields := []*uint64{&cp.Epoch, &cp.Step, &cp.SketchIndex, &cp.InputIndex, &cp.EventDigest, &cp.WorldDigest}
		for _, f := range fields {
			if *f, err = binary.ReadUvarint(br); err != nil {
				return nil, err
			}
		}
		wLen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if wLen > maxWorldSnapshot {
			return nil, fmt.Errorf("%w: checkpoint %d world size %d", ErrBadFormat, i, wLen)
		}
		cp.World = make([]byte, wLen)
		if _, err := io.ReadFull(br, cp.World); err != nil {
			return nil, err
		}
		ring.Checkpoints = append(ring.Checkpoints, cp)
	}
	return ring, nil
}
