package trace

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSketchStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewSketchWriter(&buf, "SYNC")
	if err != nil {
		t.Fatal(err)
	}
	want := []SketchEntry{
		{TID: 0, Kind: KindLock, Obj: 7},
		{TID: 2, Kind: KindUnlock, Obj: 7},
		{TID: 1, Kind: KindBarrier, Obj: 99},
	}
	for _, e := range want {
		sw.Append(e)
	}
	if sw.Entries() != 3 {
		t.Fatalf("entries = %d", sw.Entries())
	}
	if err := sw.Close(500, 3); err != nil {
		t.Fatal(err)
	}

	got, truncated, err := DecodeSketchStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if truncated {
		t.Fatal("complete stream reported truncated")
	}
	if got.Scheme != "SYNC" || got.TotalOps != 500 || got.Records != 3 {
		t.Fatalf("header: %+v", got)
	}
	if len(got.Entries) != len(want) {
		t.Fatalf("entries = %d", len(got.Entries))
	}
	for i := range want {
		if got.Entries[i] != want[i] {
			t.Fatalf("entry %d = %v, want %v", i, got.Entries[i], want[i])
		}
	}
}

func TestSketchStreamSalvagesTruncation(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewSketchWriter(&buf, "SYS")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		sw.Append(SketchEntry{TID: TID(i % 3), Kind: KindSyscall, Obj: uint64(i)})
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	// Crash: no Close. Decode whatever was flushed.
	got, truncated, err := DecodeSketchStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !truncated {
		t.Fatal("footer-less stream must report truncated")
	}
	if len(got.Entries) != 10 {
		t.Fatalf("salvaged %d entries, want 10", len(got.Entries))
	}
}

func TestSketchStreamMidEntryTruncation(t *testing.T) {
	var buf bytes.Buffer
	sw, _ := NewSketchWriter(&buf, "SYNC")
	for i := 0; i < 5; i++ {
		sw.Append(SketchEntry{TID: 1, Kind: KindLock, Obj: 0xABCDEF})
	}
	sw.Flush()
	// Cut inside the last entry.
	cut := buf.Bytes()[:buf.Len()-2]
	got, truncated, err := DecodeSketchStream(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	if !truncated {
		t.Fatal("cut stream must report truncated")
	}
	if len(got.Entries) == 0 || len(got.Entries) > 5 {
		t.Fatalf("salvaged %d entries", len(got.Entries))
	}
}

func TestSketchStreamCloseTwice(t *testing.T) {
	var buf bytes.Buffer
	sw, _ := NewSketchWriter(&buf, "BB")
	if err := sw.Close(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(1, 0); err == nil {
		t.Fatal("double close should error")
	}
	sw.Append(SketchEntry{TID: 1, Kind: KindBB}) // must be a no-op
	if sw.Entries() != 0 {
		t.Fatal("append after close counted")
	}
}

func TestSketchStreamRejectsForeignMagic(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeSketch(&buf, &SketchLog{Scheme: "SYNC"}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeSketchStream(&buf); err == nil {
		t.Fatal("batch format accepted as stream")
	}
}

func TestPropSketchStreamRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var buf bytes.Buffer
		sw, err := NewSketchWriter(&buf, "RW")
		if err != nil {
			return false
		}
		n := r.Intn(100)
		var want []SketchEntry
		for i := 0; i < n; i++ {
			e := SketchEntry{
				TID:  TID(r.Intn(8)),
				Kind: Kind(1 + r.Intn(int(numKinds)-1)),
				Obj:  uint64(r.Int63()),
			}
			want = append(want, e)
			sw.Append(e)
		}
		if err := sw.Close(uint64(n)*3, uint64(n)); err != nil {
			return false
		}
		got, truncated, err := DecodeSketchStream(&buf)
		if err != nil || truncated || len(got.Entries) != n {
			return false
		}
		for i := range want {
			if got.Entries[i] != want[i] {
				return false
			}
		}
		return got.TotalOps == uint64(n)*3 && got.Records == uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
