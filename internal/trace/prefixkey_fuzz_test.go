package trace

import "testing"

// FuzzFlipPrefixKey pins the keying discipline of the snapshot tree
// (internal/core snapshot.go): a directed attempt stores snapshots
// under the cache key of its own flip set, and a child looks up the
// key of its parent prefix — the child's flips minus the one it added.
// The tree is only sound if every proper prefix of a flip sequence
// keys differently from the full set (a collision would let an attempt
// restore from its own, deeper snapshots — a cycle), and if distinct
// prefix depths never collide with each other. Both must hold through
// the full ScheduleCacheKey composition, not just FlipSetKey, and for
// duplicate flips too: extending a set by a flip it already contains
// still changes the multiset, so it must still change the key.
func FuzzFlipPrefixKey(f *testing.F) {
	f.Add(uint64(0), []byte{})
	f.Add(uint64(1), flipSeed(36))
	f.Add(uint64(0xdeadbeef), flipSeed(72))
	f.Add(uint64(1)<<63, flipSeed(36*8))
	// Duplicate flips: two identical 36-byte tuples.
	dup := append(flipSeed(36), flipSeed(36)...)
	f.Add(uint64(42), dup)

	f.Fuzz(func(t *testing.T, ctx uint64, b []byte) {
		flips := flipsFromBytes(b)
		keys := make([]string, len(flips)+1)
		for i := 0; i <= len(flips); i++ {
			keys[i] = ScheduleCacheKey(ctx, 0, false, FlipSetKey(flips[:i]))
		}
		for i := 0; i <= len(flips); i++ {
			for j := i + 1; j <= len(flips); j++ {
				if keys[i] == keys[j] {
					t.Fatalf("prefix depths %d and %d share key %q (flips %v)",
						i, j, keys[i], flips)
				}
			}
		}
		// A context change must move every key: two searches with
		// different digests can never serve each other's snapshots.
		for i := 0; i <= len(flips); i++ {
			if other := ScheduleCacheKey(ctx+1, 0, false, FlipSetKey(flips[:i])); other == keys[i] {
				t.Fatalf("depth %d key %q ignores the context digest", i, keys[i])
			}
		}
	})
}
