package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// SketchWriter streams sketch entries to an io.Writer as they are
// recorded, the way a production deployment writes its log — bounded
// memory regardless of run length, explicit flush points, and a
// finalizing footer carrying the run totals. The stream format is
// distinct from the batch format of EncodeSketch (which retains the
// entry count up front); DecodeSketchStream reads it back.
type SketchWriter struct {
	bw      *bufio.Writer
	scheme  string
	entries uint64
	closed  bool
	err     error
}

const magicSketchStream = "PRSS"

// NewSketchWriter starts a stream for the given scheme.
func NewSketchWriter(w io.Writer, scheme string) (*SketchWriter, error) {
	sw := &SketchWriter{bw: bufio.NewWriter(w), scheme: scheme}
	if _, err := sw.bw.WriteString(magicSketchStream); err != nil {
		return nil, err
	}
	// The stream layout is unchanged by wire format v2 (its per-entry
	// tagging is already its own format), so it stays at version 1.
	var buf []byte
	buf = binary.AppendUvarint(buf, logVersion1)
	buf = binary.AppendUvarint(buf, uint64(len(scheme)))
	buf = append(buf, scheme...)
	if _, err := sw.bw.Write(buf); err != nil {
		return nil, err
	}
	return sw, nil
}

// Append streams one sketch entry. Errors are sticky and re-reported by
// Close.
func (sw *SketchWriter) Append(e SketchEntry) {
	if sw.err != nil || sw.closed {
		return
	}
	// Tag byte 1 = entry follows (0 terminates the stream in Close).
	var buf []byte
	buf = append(buf, 1)
	buf = binary.AppendUvarint(buf, uint64(e.TID))
	buf = append(buf, byte(e.Kind))
	buf = binary.AppendUvarint(buf, e.Obj)
	if _, err := sw.bw.Write(buf); err != nil {
		sw.err = err
		return
	}
	sw.entries++
}

// Entries returns the number of entries streamed so far.
func (sw *SketchWriter) Entries() uint64 { return sw.entries }

// Flush forces buffered entries to the underlying writer — the
// production recorder calls this at quiescent points so a crash loses
// at most the buffer.
func (sw *SketchWriter) Flush() error {
	if sw.err != nil {
		return sw.err
	}
	return sw.bw.Flush()
}

// Close terminates the stream with a footer (totalOps, records) and
// flushes. The writer is unusable afterwards.
func (sw *SketchWriter) Close(totalOps, records uint64) error {
	if sw.err != nil {
		return sw.err
	}
	if sw.closed {
		return fmt.Errorf("trace: sketch stream already closed")
	}
	sw.closed = true
	var buf []byte
	buf = append(buf, 0) // terminator
	buf = binary.AppendUvarint(buf, totalOps)
	buf = binary.AppendUvarint(buf, records)
	if _, err := sw.bw.Write(buf); err != nil {
		return err
	}
	return sw.bw.Flush()
}

// DecodeSketchStream reads a stream written by SketchWriter. A stream
// cut off before its footer (a crashed recorder) decodes successfully
// with Truncated=true and whatever entries were flushed — exactly the
// salvage behaviour a diagnosis tool needs.
func DecodeSketchStream(r io.Reader) (log *SketchLog, truncated bool, err error) {
	br := bufio.NewReader(r)
	if err := expectMagic(br, magicSketchStream); err != nil {
		return nil, false, err
	}
	if _, err := readVersion(br); err != nil {
		return nil, false, err
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, false, err
	}
	if nameLen > 1<<10 {
		return nil, false, fmt.Errorf("%w: scheme name length %d", ErrBadFormat, nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, false, err
	}
	l := &SketchLog{Scheme: string(name)}
	for {
		tag, err := br.ReadByte()
		if err == io.EOF {
			return l, true, nil // no footer: salvaged prefix
		}
		if err != nil {
			return nil, false, err
		}
		if tag == 0 {
			break
		}
		tid, err := binary.ReadUvarint(br)
		if err != nil {
			return l, true, nil
		}
		kb, err := br.ReadByte()
		if err != nil {
			return l, true, nil
		}
		k := Kind(kb)
		if !k.Valid() {
			return nil, false, fmt.Errorf("%w: invalid kind %d in stream", ErrBadFormat, kb)
		}
		obj, err := binary.ReadUvarint(br)
		if err != nil {
			return l, true, nil
		}
		l.Entries = append(l.Entries, SketchEntry{TID: TID(tid), Kind: k, Obj: obj})
	}
	if l.TotalOps, err = binary.ReadUvarint(br); err != nil {
		return l, true, nil
	}
	if l.Records, err = binary.ReadUvarint(br); err != nil {
		return l, true, nil
	}
	return l, false, nil
}
