package trace

import (
	"bytes"
	"reflect"
	"slices"
	"testing"
)

func mkEntries(tid TID, obj uint64, n int) []SketchEntry {
	out := make([]SketchEntry, n)
	for i := range out {
		out[i] = SketchEntry{TID: tid, Kind: KindLock, Obj: obj + uint64(i%3)}
	}
	return out
}

func TestEpochRingEviction(t *testing.T) {
	r := NewEpochRing(2)
	for i := 0; i < 5; i++ {
		r.Append(Epoch{
			ID:         uint64(i),
			StartStep:  uint64(i) * 10,
			StartEntry: uint64(i) * 4,
			Entries:    mkEntries(TID(i), 0x100, 4),
		})
		if i == 2 {
			r.AddCheckpoint(Checkpoint{Epoch: 3, Step: 30, SketchIndex: 12})
		}
	}
	if r.Evicted != 3 || r.EvictedEntries != 12 {
		t.Fatalf("evicted=%d entries=%d, want 3/12", r.Evicted, r.EvictedEntries)
	}
	if len(r.Epochs) != 2 || r.Epochs[0].ID != 3 || r.Epochs[1].ID != 4 {
		t.Fatalf("retained %v, want IDs 3,4", r.Epochs)
	}
	if r.WindowLen() != 8 || len(r.Window()) != 8 {
		t.Fatalf("window len %d, want 8", r.WindowLen())
	}
	// The checkpoint at epoch 3 sits exactly at the oldest retained
	// epoch's start, so it must survive eviction of epochs 0-2.
	if cp, ok := r.LastCheckpoint(); !ok || cp.Epoch != 3 {
		t.Fatalf("checkpoint %v ok=%v, want epoch 3", cp, ok)
	}
	// One more append evicts epoch 3 and with it the checkpoint.
	r.Append(Epoch{ID: 5, Entries: mkEntries(9, 0x200, 4)})
	if _, ok := r.LastCheckpoint(); ok {
		t.Fatal("checkpoint survived eviction of its epoch")
	}
}

func TestEpochRingUnboundedWindowEqualsWhole(t *testing.T) {
	r := NewEpochRing(0)
	var all []SketchEntry
	for i := 0; i < 4; i++ {
		e := mkEntries(TID(i), uint64(0x10*i), 3)
		all = append(all, e...)
		r.Append(Epoch{ID: uint64(i), StartEntry: uint64(3 * i), Entries: e})
	}
	if r.Evicted != 0 || !slices.Equal(r.Window(), all) {
		t.Fatalf("unbounded ring window differs from the whole log")
	}
	if r.Segmented() {
		t.Fatal("unbounded checkpoint-free ring reports Segmented")
	}
	r.AddCheckpoint(Checkpoint{Epoch: 2, Step: 20})
	if !r.Segmented() {
		t.Fatal("ring with a checkpoint must report Segmented")
	}
}

func TestEpochRoundTrip(t *testing.T) {
	r := NewEpochRing(3)
	r.Scheme, r.TotalOps, r.Records = "SYNC", 500, 24
	for i := 0; i < 5; i++ {
		r.Append(Epoch{
			ID:         uint64(i),
			StartStep:  uint64(i) * 100,
			StartEntry: uint64(i) * 4,
			Entries:    mkEntries(TID(i%3), 0xBEEF, 4),
		})
	}
	r.AddCheckpoint(Checkpoint{
		Epoch: 4, Step: 400, SketchIndex: 16, InputIndex: 7,
		EventDigest: 0xDEAD, WorldDigest: 0xF00D, World: []byte{1, 2, 3},
	})
	var buf bytes.Buffer
	if err := EncodeEpochs(&buf, r); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeEpochs(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, r)
	}
}

func TestEpochDecodeRejectsCorrupt(t *testing.T) {
	r := NewEpochRing(2)
	r.Scheme = "SYNC"
	r.Append(Epoch{ID: 0, Entries: mkEntries(1, 5, 2)})
	var buf bytes.Buffer
	if err := EncodeEpochs(&buf, r); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if _, err := DecodeEpochs(bytes.NewReader(good[:len(good)/2])); err == nil {
		t.Fatal("truncated payload decoded")
	}
	bad := append([]byte("XXXX"), good[4:]...)
	if _, err := DecodeEpochs(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic decoded")
	}
}
