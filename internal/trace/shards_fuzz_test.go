package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"slices"
	"testing"
)

// FuzzShardMergeRoundTrip is the merge correctness fuzzer: arbitrary
// bytes are interpreted as a globally ordered entry stream with
// arbitrary extra seal points (4 bytes per entry: tid, kind selector,
// object selector, seal bit), partitioned into per-thread shards under
// the scheduler's control-transfer seal discipline, and the merged
// result must match the reference global log entry-for-entry AND
// encode to the exact same v2 bytes as the reference encoder. Seeds
// include the raw testdata fixture files plus a descriptor stream
// derived from the decoded v2 fixture, so the corpus starts from real
// recorded shapes.
func FuzzShardMergeRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 0})
	f.Add([]byte{0, 1, 0, 0, 0, 2, 0, 1, 3, 3, 200, 0, 3, 4, 200, 1, 0, 1, 9, 0})
	f.Add(bytes.Repeat([]byte{5, 7, 11, 0, 5, 7, 12, 1, 6, 2, 11, 0}, 30))
	// Raw fixture bytes: meaningless as descriptors but real entropy.
	for _, name := range []string{"sketch_v1.bin", "sketch_v2.bin"} {
		if b, err := os.ReadFile(filepath.Join("testdata", name)); err == nil {
			f.Add(b)
		}
	}
	// A descriptor stream reconstructing the v2 fixture's actual
	// TID/kind sequence (objects mapped through the selector table).
	if b, err := os.ReadFile(filepath.Join("testdata", "sketch_v2.bin")); err == nil {
		if l, err := DecodeSketch(bytes.NewReader(b)); err == nil {
			var desc []byte
			for i, e := range l.Entries {
				desc = append(desc, byte(e.TID)&15, byte(e.Kind-1), byte(e.Obj), byte(i&1))
			}
			f.Add(desc)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		objs := [8]uint64{0, 1, 0x40, 0x48, 1 << 16, 1<<16 + 8, 1 << 50, ^uint64(0)}
		ref := &SketchLog{Scheme: "FUZZ", TotalOps: uint64(len(data)), Records: uint64(len(data) / 4)}
		s := &ShardedSketch{Scheme: ref.Scheme, TotalOps: ref.TotalOps, Records: ref.Records}
		byTID := map[TID]int{}
		last := NoTID
		for i := 0; i+3 < len(data); i += 4 {
			ev := Event{
				TID:  TID(data[i] & 15),
				Kind: Kind(1 + data[i+1]%byte(numKinds-1)),
				Obj:  objs[data[i+2]&7] + uint64(data[i+2]>>3),
			}
			ref.Append(ev)
			// Control-transfer seal: the scheduler seals the outgoing
			// thread before the incoming thread commits anything.
			if last != NoTID && last != ev.TID {
				s.Seal(byTID[last])
			}
			idx, ok := byTID[ev.TID]
			if !ok {
				idx, _ = s.NewShard(ev.TID)
				byTID[ev.TID] = idx
			}
			s.Shards[idx].Append(ev)
			last = ev.TID
			// Fuzzer-chosen extra epoch boundary mid-run.
			if data[i+3]&1 == 1 {
				s.Seal(idx)
			}
		}
		merged := s.Merge()
		if merged.Scheme != ref.Scheme || merged.TotalOps != ref.TotalOps || merged.Records != ref.Records {
			t.Fatalf("merged bookkeeping %q/%d/%d, want %q/%d/%d",
				merged.Scheme, merged.TotalOps, merged.Records, ref.Scheme, ref.TotalOps, ref.Records)
		}
		if !slices.Equal(merged.Entries, ref.Entries) {
			t.Fatalf("merge order mismatch: %d entries vs %d", merged.Len(), ref.Len())
		}
		var mb, rb bytes.Buffer
		if err := EncodeSketch(&mb, merged); err != nil {
			t.Fatalf("encode merged: %v", err)
		}
		if err := EncodeSketch(&rb, ref); err != nil {
			t.Fatalf("encode reference: %v", err)
		}
		if !bytes.Equal(mb.Bytes(), rb.Bytes()) {
			t.Fatalf("merged v2 bytes differ from reference (%d vs %d bytes)", mb.Len(), rb.Len())
		}
	})
}
