package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"slices"
	"strings"
	"testing"
	"testing/quick"
)

func TestKindStrings(t *testing.T) {
	if KindLock.String() != "lock" {
		t.Fatalf("KindLock.String() = %q", KindLock.String())
	}
	if !strings.HasPrefix(Kind(200).String(), "kind(") {
		t.Fatalf("unknown kind should render numerically, got %q", Kind(200))
	}
}

func TestKindClassification(t *testing.T) {
	mem := []Kind{KindLoad, KindStore, KindRMW}
	for _, k := range mem {
		if !k.IsMemory() {
			t.Errorf("%v should be memory", k)
		}
	}
	if KindLoad.IsWrite() {
		t.Error("load is not a write")
	}
	if !KindStore.IsWrite() || !KindRMW.IsWrite() {
		t.Error("store/rmw are writes")
	}
	for _, k := range []Kind{KindLock, KindUnlock, KindWait, KindSignal, KindBarrier, KindSpawn, KindJoin} {
		if !k.IsSync() {
			t.Errorf("%v should be sync", k)
		}
	}
	for _, k := range []Kind{KindSyscall, KindSpawn, KindJoin} {
		if !k.IsSyscall() {
			t.Errorf("%v should be syscall-class", k)
		}
	}
	if KindLoad.IsSync() || KindBB.IsSyscall() {
		t.Error("misclassified kinds")
	}
	if KindInvalid.Valid() || !KindYield.Valid() {
		t.Error("Valid() wrong")
	}
}

func TestConflicts(t *testing.T) {
	w1 := Event{TID: 1, Kind: KindStore, Obj: 0x10}
	r2 := Event{TID: 2, Kind: KindLoad, Obj: 0x10}
	r3 := Event{TID: 3, Kind: KindLoad, Obj: 0x10}
	wOther := Event{TID: 2, Kind: KindStore, Obj: 0x20}
	sameT := Event{TID: 1, Kind: KindLoad, Obj: 0x10}
	lock := Event{TID: 2, Kind: KindLock, Obj: 0x10}

	if !Conflicts(w1, r2) || !Conflicts(r2, w1) {
		t.Error("write/read same addr different threads should conflict")
	}
	if Conflicts(r2, r3) {
		t.Error("read/read should not conflict")
	}
	if Conflicts(w1, wOther) {
		t.Error("different addresses should not conflict")
	}
	if Conflicts(w1, sameT) {
		t.Error("same thread should not conflict")
	}
	if Conflicts(w1, lock) {
		t.Error("non-memory op should not conflict")
	}
}

func TestSketchRoundTrip(t *testing.T) {
	l := &SketchLog{Scheme: "SYNC", TotalOps: 12345, Records: 77}
	l.Append(Event{TID: 0, Kind: KindLock, Obj: 7})
	l.Append(Event{TID: 3, Kind: KindUnlock, Obj: 7})
	l.Append(Event{TID: 1, Kind: KindBarrier, Obj: 99, Arg: 2})

	var buf bytes.Buffer
	if err := EncodeSketch(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSketch(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scheme != "SYNC" || got.TotalOps != 12345 || got.Records != 77 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if !reflect.DeepEqual(got.Entries, l.Entries) {
		t.Fatalf("entries mismatch:\n got %v\nwant %v", got.Entries, l.Entries)
	}
}

func TestSketchRoundTripEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeSketch(&buf, &SketchLog{Scheme: "BASE"}); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSketch(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || got.Scheme != "BASE" {
		t.Fatalf("got %+v", got)
	}
}

func TestInputRoundTrip(t *testing.T) {
	l := &InputLog{}
	l.Append(InputRecord{TID: 0, Call: 1, Data: []byte("hello")})
	l.Append(InputRecord{TID: 2, Call: 9, Data: nil})
	l.Append(InputRecord{TID: 1, Call: 3, Data: []byte{0, 1, 2, 255}})

	var buf bytes.Buffer
	if err := EncodeInput(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeInput(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("len = %d", got.Len())
	}
	for i := range l.Records {
		if got.Records[i].TID != l.Records[i].TID || got.Records[i].Call != l.Records[i].Call {
			t.Fatalf("record %d header mismatch", i)
		}
		if !bytes.Equal(got.Records[i].Data, l.Records[i].Data) {
			t.Fatalf("record %d data mismatch", i)
		}
	}
}

func TestFullOrderRoundTrip(t *testing.T) {
	f := &FullOrder{Order: []TID{0, 0, 0, 1, 1, 0, 2, 2, 2, 2, 1}}
	var buf bytes.Buffer
	if err := EncodeFullOrder(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFullOrder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Order, f.Order) {
		t.Fatalf("order mismatch: got %v want %v", got.Order, f.Order)
	}
}

func TestDecodeRejectsWrongMagic(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeInput(&buf, &InputLog{}); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSketch(&buf); err == nil {
		t.Fatal("decoding an input log as a sketch should fail")
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	l := &SketchLog{Scheme: "RW"}
	for i := 0; i < 10; i++ {
		l.Append(Event{TID: TID(i), Kind: KindStore, Obj: uint64(i)})
	}
	var buf bytes.Buffer
	if err := EncodeSketch(&buf, l); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := DecodeSketch(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated log should fail to decode")
	}
}

func TestDecodeRejectsInvalidKind(t *testing.T) {
	l := &SketchLog{Scheme: "X"}
	l.Append(Event{TID: 1, Kind: KindLock, Obj: 1})
	var buf bytes.Buffer
	if err := EncodeSketchV1(&buf, l); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Corrupt the kind byte (v1 entry layout: tid varint, kind byte, obj varint).
	b[len(b)-2] = 0xEE
	if _, err := DecodeSketch(bytes.NewReader(b)); err == nil {
		t.Fatal("invalid v1 kind should fail to decode")
	}

	buf.Reset()
	if err := EncodeSketch(&buf, l); err != nil {
		t.Fatal(err)
	}
	b = buf.Bytes()
	// v2 entry layout here: ..., op byte, obj delta varint. 0xEE has
	// object mode 7 (reserved) in its high bits.
	b[len(b)-2] = 0xEE
	if _, err := DecodeSketch(bytes.NewReader(b)); err == nil {
		t.Fatal("reserved v2 object mode should fail to decode")
	}
}

func TestDecodeRejectsBadV2Run(t *testing.T) {
	// Hand-build a v2 sketch whose run overshoots the declared entry
	// count; the decoder must reject it instead of over-appending.
	var buf bytes.Buffer
	buf.WriteString(magicSketch)
	buf.Write([]byte{logVersion2, 1, 'X', 0, 0, 1}) // scheme "X", 1 entry
	buf.Write([]byte{0, 2})                         // run: tid delta 0, length 2 > declared 1
	if _, err := DecodeSketch(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("overlong v2 run accepted")
	}

	buf.Reset()
	buf.WriteString(magicSketch)
	buf.Write([]byte{logVersion2, 1, 'X', 0, 0, 1})
	buf.Write([]byte{0, 0}) // zero-length run can never make progress
	if _, err := DecodeSketch(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("zero-length v2 run accepted")
	}
}

func TestV1EncodersRoundTrip(t *testing.T) {
	// The legacy encoders stay alive for fixtures and size comparisons;
	// the shared decoders must keep reading their output bit-for-bit.
	l := &SketchLog{Scheme: "RW", TotalOps: 500, Records: 9}
	for i := 0; i < 40; i++ {
		l.Append(Event{TID: TID(i % 5), Kind: KindStore, Obj: uint64(i * 13)})
	}
	var buf bytes.Buffer
	if err := EncodeSketchV1(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSketch(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, l) {
		t.Fatal("v1 sketch round trip mismatch")
	}

	il := &InputLog{}
	il.Append(InputRecord{TID: 3, Call: 7, Data: []byte("x")})
	il.Append(InputRecord{TID: 1, Call: 2, Data: []byte{}})
	buf.Reset()
	if err := EncodeInputV1(&buf, il); err != nil {
		t.Fatal(err)
	}
	gotIn, err := DecodeInput(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotIn, il) {
		t.Fatal("v1 input round trip mismatch")
	}

	fo := &FullOrder{Order: []TID{2, 2, 0, 1, 1, 1}}
	buf.Reset()
	if err := EncodeFullOrderV1(&buf, fo); err != nil {
		t.Fatal(err)
	}
	gotFo, err := DecodeFullOrder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotFo, fo) {
		t.Fatal("v1 full-order round trip mismatch")
	}
}

func TestPropSketchRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := &SketchLog{Scheme: "SYS", TotalOps: uint64(r.Intn(100000))}
		n := r.Intn(200)
		for i := 0; i < n; i++ {
			l.Append(Event{
				TID:  TID(r.Intn(16)),
				Kind: Kind(1 + r.Intn(int(numKinds)-1)),
				Obj:  uint64(r.Int63()),
			})
		}
		var buf bytes.Buffer
		if err := EncodeSketch(&buf, l); err != nil {
			return false
		}
		got, err := DecodeSketch(&buf)
		if err != nil {
			return false
		}
		if len(got.Entries) != len(l.Entries) {
			return false
		}
		for i := range got.Entries {
			if got.Entries[i] != l.Entries[i] {
				return false
			}
		}
		return got.TotalOps == l.TotalOps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropSketchV1V2Agree(t *testing.T) {
	// Both wire versions of the same log must decode to identical
	// entries — the compatibility contract behind the version byte.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := &SketchLog{Scheme: "SYNC", TotalOps: uint64(r.Intn(5000)), Records: uint64(r.Intn(100))}
		objs := []uint64{8, 16, 1 << 20, 1 << 45} // small working set, like real sketches
		n := r.Intn(300)
		cur := TID(0)
		for i := 0; i < n; i++ {
			if r.Intn(3) == 0 {
				cur = TID(r.Intn(8))
			}
			l.Append(Event{
				TID:  cur,
				Kind: Kind(1 + r.Intn(int(numKinds)-1)),
				Obj:  objs[r.Intn(len(objs))] + uint64(r.Intn(4)),
			})
		}
		var b1, b2 bytes.Buffer
		if EncodeSketchV1(&b1, l) != nil || EncodeSketch(&b2, l) != nil {
			return false
		}
		d1, err1 := DecodeSketch(&b1)
		d2, err2 := DecodeSketch(&b2)
		if err1 != nil || err2 != nil {
			return false
		}
		same := func(d *SketchLog) bool {
			return d.Scheme == l.Scheme && d.TotalOps == l.TotalOps &&
				d.Records == l.Records && slices.Equal(d.Entries, l.Entries)
		}
		return same(d1) && same(d2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropFullOrderRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fo := &FullOrder{}
		n := r.Intn(500)
		cur := TID(0)
		for i := 0; i < n; i++ {
			if r.Intn(4) == 0 {
				cur = TID(r.Intn(8))
			}
			fo.Order = append(fo.Order, cur)
		}
		var buf bytes.Buffer
		if err := EncodeFullOrder(&buf, fo); err != nil {
			return false
		}
		got, err := DecodeFullOrder(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.Order, fo.Order)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Seq: 5, TID: 2, TCount: 9, Kind: KindStore, Obj: 0x40, Arg: 7}
	s := e.String()
	for _, want := range []string{"#5", "t2/9", "store", "0x40"} {
		if !strings.Contains(s, want) {
			t.Errorf("Event.String() = %q missing %q", s, want)
		}
	}
}

func TestSketchEntryString(t *testing.T) {
	e := SketchEntry{TID: 1, Kind: KindLock, Obj: 0xff}
	if s := e.String(); !strings.Contains(s, "lock") || !strings.Contains(s, "t1") {
		t.Fatalf("String() = %q", s)
	}
}

func TestSketchLogReserve(t *testing.T) {
	l := &SketchLog{}
	l.Reserve(-1)
	l.Reserve(0)
	if cap(l.Entries) != 0 {
		t.Fatalf("no-op reserves allocated capacity %d", cap(l.Entries))
	}
	l.Reserve(4)
	c := cap(l.Entries)
	if c < 4 {
		t.Fatalf("Reserve(4) left capacity %d", c)
	}
	for i := 0; i < 4; i++ {
		l.Append(Event{TID: 1, Kind: KindLoad, Obj: uint64(i)})
	}
	if cap(l.Entries) != c {
		t.Fatal("Append reallocated inside a reserved run")
	}
	if l.Len() != 4 || l.Entries[3].Obj != 3 {
		t.Fatalf("reserved log lost appends: %v", l.Entries)
	}
	// A full log's next reserve at least doubles, so interleaved
	// Reserve(1)/Append stays amortized like plain append.
	l.Reserve(1)
	if cap(l.Entries) < 2*c {
		t.Fatalf("Reserve(1) over a full log grew only to %d (had %d)", cap(l.Entries), c)
	}
}
