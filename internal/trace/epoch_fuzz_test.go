package trace

import (
	"bytes"
	"os"
	"reflect"
	"testing"
)

// FuzzEpochRingRoundTrip drives the epoch container codec from raw
// bytes: the input is split into epochs of fuzz-chosen lengths whose
// entries are synthesized exactly as FuzzSketchRoundTrip does, sealed
// into a ring of fuzz-chosen capacity with periodic checkpoints, and
// the encode/decode round trip must reproduce the ring exactly —
// including eviction counters and checkpoint retention. The existing
// trace testdata recordings seed the corpus so real v1/v2 entry
// patterns (long same-thread runs, MRU-friendly objects) are exercised
// from the first run.
func FuzzEpochRingRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6}, uint8(2))
	f.Add(bytes.Repeat([]byte{5, 7, 11, 5, 7, 12}, 40), uint8(3))
	for _, name := range []string{"sketch_v1.bin", "sketch_v2.bin", "input_v2.bin"} {
		if b, err := os.ReadFile("testdata/" + name); err == nil {
			f.Add(b, uint8(2))
		}
	}
	f.Fuzz(func(t *testing.T, data []byte, size uint8) {
		ring := NewEpochRing(int(size % 8))
		ring.Scheme, ring.TotalOps, ring.Records = "FUZZ", uint64(len(data)), uint64(len(data)/3)
		objs := [8]uint64{0, 1, 0x40, 0x48, 1 << 16, 1<<16 + 8, 1 << 50, ^uint64(0)}
		var cur []SketchEntry
		id, startEntry, step := uint64(0), uint64(0), uint64(0)
		seal := func() {
			if cur == nil {
				cur = []SketchEntry{} // decoders return non-nil empty slices
			}
			ring.Append(Epoch{ID: id, StartStep: step, StartEntry: startEntry, Entries: cur})
			id++
			startEntry += uint64(len(cur))
			step += uint64(len(cur)) * 2
			if id%2 == 0 {
				ring.AddCheckpoint(Checkpoint{
					Epoch: id, Step: step, SketchIndex: startEntry,
					EventDigest: step * 3, WorldDigest: step * 5,
					World: append([]byte{}, data[:min(len(data), 16)]...),
				})
			}
			cur = nil
		}
		for i := 0; i+2 < len(data); i += 3 {
			cur = append(cur, SketchEntry{
				TID:  TID(data[i] & 15),
				Kind: Kind(1 + data[i+1]%byte(numKinds-1)),
				Obj:  objs[data[i+2]&7] + uint64(data[i+2]>>3),
			})
			if len(cur) >= 1+int(data[i]&7) {
				seal()
			}
		}
		seal()
		if len(ring.Checkpoints) == 0 {
			ring.Checkpoints = nil // canonical empty form, as the decoder returns
		}

		var buf bytes.Buffer
		if err := EncodeEpochs(&buf, ring); err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := DecodeEpochs(&buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(got, ring) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, ring)
		}
	})
}

// FuzzDecodeEpochs pins the decoder's arbitrary-input invariant: error
// or ring, never a panic or runaway allocation.
func FuzzDecodeEpochs(f *testing.F) {
	r := NewEpochRing(2)
	r.Scheme = "SYNC"
	r.Append(Epoch{ID: 0, Entries: mkEntries(1, 5, 3)})
	r.AddCheckpoint(Checkpoint{Epoch: 1, Step: 3, World: []byte{9}})
	var buf bytes.Buffer
	_ = EncodeEpochs(&buf, r)
	f.Add([]byte{})
	f.Add([]byte(magicEpochs))
	f.Add(buf.Bytes())
	f.Fuzz(func(t *testing.T, b []byte) {
		ring, err := DecodeEpochs(bytes.NewReader(b))
		if err == nil && ring == nil {
			t.Fatal("nil ring with nil error")
		}
	})
}
