package trace

import (
	"fmt"
	"sort"
)

// This file defines the canonical identity of a replay attempt: the
// flip-set key (which race reversals the attempt enforces, order
// ignored) and the schedule-cache key (flip set plus the schedule
// policy plus a digest of everything else that determines the
// execution — program, sketch prefix, inputs, replay knobs). The
// replayer's cross-attempt schedule cache and its dedup set are keyed
// by these strings, so they must be injective: distinct attempts must
// never share a key, or the search would silently skip live work.
// FuzzFlipSetKey and FuzzScheduleCacheKey pin that property.

// FlipID names one race flip — "hold thread HoldTID's HoldCount-th
// access to Addr until thread UntilTID has executed UntilCount
// operations" — by the coordinates that determine its enforcement.
type FlipID struct {
	Addr       uint64
	HoldTID    TID
	HoldCount  uint64
	UntilTID   TID
	UntilCount uint64
}

// encode renders a FlipID as a fixed-width hex tuple. Fixed width makes
// lexicographic string order a total order on the tuples and keeps the
// encoding injective.
func (f FlipID) encode() string {
	return fmt.Sprintf("%016x.%08x.%016x.%08x.%016x",
		f.Addr, uint32(f.HoldTID), f.HoldCount, uint32(f.UntilTID), f.UntilCount)
}

// FlipSetKey returns the canonical key of a flip set: the same multiset
// of flips yields the same key regardless of insertion order, and
// distinct multisets always yield distinct keys (each flip encodes
// fixed-width, so sorting and joining cannot merge or split tuples).
// The empty set's key is the empty string.
func FlipSetKey(flips []FlipID) string {
	if len(flips) == 0 {
		return ""
	}
	enc := make([]string, len(flips))
	for i, f := range flips {
		enc[i] = f.encode()
	}
	sort.Strings(enc)
	n := len(enc) - 1
	for _, s := range enc {
		n += len(s)
	}
	b := make([]byte, 0, n)
	for i, s := range enc {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, s...)
	}
	return string(b)
}

// ScheduleCacheKey is the full identity of one replay attempt:
//
//   - ctx digests the search context — program, scheme, sketch prefix,
//     input log, world seed and every replay knob that changes what an
//     attempt executes (build it with Digest);
//   - seeded/seed identify the exploration policy: seeded attempts
//     sample the sketch-constrained space with that RNG seed, unseeded
//     ones run the deterministic sticky policy (seed is ignored, so two
//     unseeded attempts differ only by flip set);
//   - flipKey is the FlipSetKey of the enforced flips.
//
// Two attempts share a key iff they are the same execution, so a cache
// hit can stand in for actually running the attempt.
func ScheduleCacheKey(ctx uint64, seed int64, seeded bool, flipKey string) string {
	policy := "det"
	if seeded {
		policy = fmt.Sprintf("%016x", uint64(seed))
	}
	return fmt.Sprintf("%016x/%s/%s", ctx, policy, flipKey)
}

// Digest accumulates an FNV-1a 64-bit hash over the components of a
// search context. It is not cryptographic — it only needs to make
// unrelated searches vanishingly unlikely to collide in the schedule
// cache, where a collision costs a wrong-but-complete attempt outcome.
type Digest struct{ h uint64 }

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// NewDigest returns a digest in its initial state.
func NewDigest() *Digest { return &Digest{h: fnvOffset64} }

// Word mixes one 64-bit value.
func (d *Digest) Word(v uint64) {
	for i := 0; i < 8; i++ {
		d.h ^= v & 0xff
		d.h *= fnvPrime64
		v >>= 8
	}
}

// Int mixes one signed value.
func (d *Digest) Int(v int64) { d.Word(uint64(v)) }

// String mixes a length-prefixed string (the prefix keeps "ab","c"
// distinct from "a","bc").
func (d *Digest) String(s string) {
	d.Word(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		d.h ^= uint64(s[i])
		d.h *= fnvPrime64
	}
}

// Bytes mixes a length-prefixed byte slice.
func (d *Digest) Bytes(b []byte) {
	d.Word(uint64(len(b)))
	for _, c := range b {
		d.h ^= uint64(c)
		d.h *= fnvPrime64
	}
}

// Entry mixes one sketch entry.
func (d *Digest) Entry(e SketchEntry) {
	d.Word(uint64(uint32(e.TID)))
	d.Word(uint64(e.Kind))
	d.Word(e.Obj)
}

// Input mixes one input record.
func (d *Digest) Input(r InputRecord) {
	d.Word(uint64(uint32(r.TID)))
	d.Word(r.Call)
	d.Bytes(r.Data)
}

// Sum returns the accumulated hash.
func (d *Digest) Sum() uint64 { return d.h }
