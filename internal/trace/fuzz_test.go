package trace

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// The decoders consume untrusted files; whatever bytes arrive, they
// must return an error or a log — never panic, never allocate absurdly.

func TestDecodeSketchRandomBytesNeverPanics(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := make([]byte, r.Intn(512))
		r.Read(b)
		// Half the time, keep a valid magic so the body parser runs.
		if r.Intn(2) == 0 && len(b) >= 4 {
			copy(b, magicSketch)
		}
		l, err := DecodeSketch(bytes.NewReader(b))
		return err != nil || l != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeInputRandomBytesNeverPanics(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := make([]byte, r.Intn(512))
		r.Read(b)
		if r.Intn(2) == 0 && len(b) >= 4 {
			copy(b, magicInput)
		}
		l, err := DecodeInput(bytes.NewReader(b))
		return err != nil || l != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeFullOrderRandomBytesNeverPanics(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := make([]byte, r.Intn(512))
		r.Read(b)
		if r.Intn(2) == 0 && len(b) >= 4 {
			copy(b, magicFull)
		}
		l, err := DecodeFullOrder(bytes.NewReader(b))
		return err != nil || l != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeBitFlippedSketch(t *testing.T) {
	// Every single-byte corruption of a valid log must either decode to
	// something or error — never panic.
	l := &SketchLog{Scheme: "SYNC", TotalOps: 99}
	for i := 0; i < 20; i++ {
		l.Append(Event{TID: TID(i % 4), Kind: KindLock, Obj: uint64(i)})
	}
	var buf bytes.Buffer
	if err := EncodeSketch(&buf, l); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	for i := range orig {
		for _, flip := range []byte{0x01, 0x80, 0xff} {
			b := append([]byte(nil), orig...)
			b[i] ^= flip
			DecodeSketch(bytes.NewReader(b)) // must not panic
		}
	}
}

func TestDecodeHugeDeclaredLengths(t *testing.T) {
	// A log that declares a gigantic entry count but has no body must
	// fail fast without huge allocations.
	var buf bytes.Buffer
	buf.WriteString(magicSketch)
	buf.Write([]byte{logVersion})
	buf.Write([]byte{4}) // scheme name length 4
	buf.WriteString("SYNC")
	buf.Write([]byte{0})                                  // totalOps
	buf.Write([]byte{0})                                  // records
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}) // entries: huge varint
	if _, err := DecodeSketch(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("huge declared length should error on truncated body")
	}
}

func TestDecodeSanityLimits(t *testing.T) {
	// A full-order file that declares 2^50 decisions in one run must be
	// rejected before any large allocation — the OOM the fuzzer found.
	var buf bytes.Buffer
	buf.WriteString(magicFull)
	buf.Write([]byte{logVersion})
	big := make([]byte, 0, 16)
	big = appendUvarintForTest(big, 1<<50) // total decisions
	buf.Write(big)
	buf.Write([]byte{0}) // tid 0
	run := appendUvarintForTest(nil, 1<<50)
	buf.Write(run)
	if _, err := DecodeFullOrder(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("gigantic declared order accepted")
	}

	// Same for a gigantic declared input-record count.
	buf.Reset()
	buf.WriteString(magicInput)
	buf.Write([]byte{logVersion})
	buf.Write(appendUvarintForTest(nil, 1<<40))
	if _, err := DecodeInput(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("gigantic record count accepted")
	}

	// And a gigantic single input record.
	buf.Reset()
	buf.WriteString(magicInput)
	buf.Write([]byte{logVersion})
	buf.Write([]byte{1})    // one record
	buf.Write([]byte{0, 1}) // tid, call
	buf.Write(appendUvarintForTest(nil, 1<<29))
	if _, err := DecodeInput(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("gigantic record size accepted")
	}
}

func appendUvarintForTest(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}
