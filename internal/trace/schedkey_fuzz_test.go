package trace

import (
	"encoding/binary"
	"sort"
	"testing"
)

// Fuzz targets for the replay search's canonical keys. The invariant
// under test is injectivity both ways: equal flip multisets (in any
// order) must share a key, and distinct multisets must never collide —
// a collision would make the schedule cache serve one attempt's
// outcome for a different attempt, silently corrupting the search.

// flipsFromBytes decodes up to maxFuzzFlips FlipIDs from raw fuzz
// bytes, 36 bytes per flip.
func flipsFromBytes(b []byte) []FlipID {
	const flipBytes = 36
	const maxFuzzFlips = 8
	var out []FlipID
	for len(b) >= flipBytes && len(out) < maxFuzzFlips {
		out = append(out, FlipID{
			Addr:       binary.LittleEndian.Uint64(b[0:]),
			HoldTID:    TID(binary.LittleEndian.Uint32(b[8:])),
			HoldCount:  binary.LittleEndian.Uint64(b[12:]),
			UntilTID:   TID(binary.LittleEndian.Uint32(b[20:])),
			UntilCount: binary.LittleEndian.Uint64(b[24:]),
		})
		b = b[flipBytes:]
	}
	return out
}

// sortedFlips is an order-independent normal form computed without
// going through encode/FlipSetKey, so the test's notion of multiset
// equality is independent of the implementation under test.
func sortedFlips(fs []FlipID) []FlipID {
	out := append([]FlipID(nil), fs...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		switch {
		case a.Addr != b.Addr:
			return a.Addr < b.Addr
		case a.HoldTID != b.HoldTID:
			return a.HoldTID < b.HoldTID
		case a.HoldCount != b.HoldCount:
			return a.HoldCount < b.HoldCount
		case a.UntilTID != b.UntilTID:
			return a.UntilTID < b.UntilTID
		default:
			return a.UntilCount < b.UntilCount
		}
	})
	return out
}

func sameMultiset(a, b []FlipID) bool {
	if len(a) != len(b) {
		return false
	}
	sa, sb := sortedFlips(a), sortedFlips(b)
	for i := range sa {
		if sa[i] != sb[i] {
			return false
		}
	}
	return true
}

func flipSeed(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*37 + 11)
	}
	return b
}

func FuzzFlipSetKey(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add(flipSeed(36), flipSeed(36))
	f.Add(flipSeed(72), flipSeed(36))
	f.Add(flipSeed(108), flipSeed(109))
	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		fa, fb := flipsFromBytes(rawA), flipsFromBytes(rawB)
		ka, kb := FlipSetKey(fa), FlipSetKey(fb)

		// Order independence: any permutation of fa keys identically.
		rev := make([]FlipID, len(fa))
		for i, fl := range fa {
			rev[len(fa)-1-i] = fl
		}
		if kr := FlipSetKey(rev); kr != ka {
			t.Fatalf("order-dependent key: %q vs reversed %q", ka, kr)
		}

		// Injectivity both ways: same multiset <=> same key.
		if same := sameMultiset(fa, fb); same != (ka == kb) {
			t.Fatalf("collision contract violated: sameMultiset=%v key-equal=%v\nka=%q\nkb=%q",
				same, ka == kb, ka, kb)
		}

		// The empty set's key is reserved for the empty set.
		if len(fa) > 0 && ka == "" {
			t.Fatalf("non-empty flip set produced the empty key")
		}
	})
}

func FuzzScheduleCacheKey(f *testing.F) {
	f.Add(uint64(0), int64(0), false, []byte{}, uint64(0), int64(0), false, []byte{})
	f.Add(uint64(1), int64(5), true, flipSeed(36), uint64(1), int64(5), false, flipSeed(36))
	f.Add(uint64(7), int64(-1), true, flipSeed(72), uint64(7), int64(3), true, flipSeed(36))
	f.Fuzz(func(t *testing.T, ctxA uint64, seedA int64, seededA bool, rawA []byte,
		ctxB uint64, seedB int64, seededB bool, rawB []byte) {
		fa, fb := flipsFromBytes(rawA), flipsFromBytes(rawB)
		ka := ScheduleCacheKey(ctxA, seedA, seededA, FlipSetKey(fa))
		kb := ScheduleCacheKey(ctxB, seedB, seededB, FlipSetKey(fb))

		// Two attempts are the same execution iff: same search context,
		// same schedule policy (seed matters only for seeded attempts)
		// and same flip multiset.
		sameAttempt := ctxA == ctxB && seededA == seededB &&
			(!seededA || seedA == seedB) && sameMultiset(fa, fb)
		if sameAttempt != (ka == kb) {
			t.Fatalf("collision contract violated: sameAttempt=%v key-equal=%v\nka=%q\nkb=%q",
				sameAttempt, ka == kb, ka, kb)
		}
	})
}
