package trace

import (
	"bytes"
	"testing"
)

// buildSharded partitions a globally ordered entry stream into a
// ShardedSketch exactly the way the record path does: each entry is
// appended to its thread's shard, the outgoing thread is sealed at
// every TID change (the scheduler's control-transfer seal), and
// extraSeal(i) may force an extra seal after entry i (consecutive runs
// of the same thread split into separate epochs).
func buildSharded(l *SketchLog, extraSeal func(i int) bool) *ShardedSketch {
	s := &ShardedSketch{Scheme: l.Scheme, TotalOps: l.TotalOps, Records: l.Records}
	byTID := map[TID]int{}
	last := NoTID
	for i, e := range l.Entries {
		if last != NoTID && last != e.TID {
			s.Seal(byTID[last])
		}
		idx, ok := byTID[e.TID]
		if !ok {
			idx, _ = s.NewShard(e.TID)
			byTID[e.TID] = idx
		}
		s.Shards[idx].Append(Event{TID: e.TID, Kind: e.Kind, Obj: e.Obj})
		last = e.TID
		if extraSeal != nil && extraSeal(i) {
			s.Seal(idx)
		}
	}
	return s
}

func sampleSketchLog() *SketchLog {
	l := &SketchLog{Scheme: "SYNC", TotalOps: 120, Records: 9}
	for _, e := range []SketchEntry{
		{TID: 0, Kind: KindThreadStart, Obj: 0},
		{TID: 0, Kind: KindSpawn, Obj: 0},
		{TID: 1, Kind: KindThreadStart, Obj: 0},
		{TID: 1, Kind: KindLock, Obj: 0xAA},
		{TID: 1, Kind: KindUnlock, Obj: 0xAA},
		{TID: 0, Kind: KindLock, Obj: 0xAA},
		{TID: 2, Kind: KindThreadStart, Obj: 0},
		{TID: 0, Kind: KindUnlock, Obj: 0xAA},
		{TID: 0, Kind: KindJoin, Obj: 1},
	} {
		l.Entries = append(l.Entries, e)
	}
	return l
}

// TestShardMergeCanonicalOrder: partitioning a global log into
// per-thread shards with control-transfer seals and merging must
// reproduce the global log exactly — entries, bookkeeping, and encoded
// v2 bytes.
func TestShardMergeCanonicalOrder(t *testing.T) {
	ref := sampleSketchLog()
	s := buildSharded(ref, nil)
	merged := s.Merge()
	if merged.Scheme != ref.Scheme || merged.TotalOps != ref.TotalOps || merged.Records != ref.Records {
		t.Fatalf("merged bookkeeping %q/%d/%d, want %q/%d/%d",
			merged.Scheme, merged.TotalOps, merged.Records, ref.Scheme, ref.TotalOps, ref.Records)
	}
	if len(merged.Entries) != len(ref.Entries) {
		t.Fatalf("merged %d entries, want %d", len(merged.Entries), len(ref.Entries))
	}
	for i := range ref.Entries {
		if merged.Entries[i] != ref.Entries[i] {
			t.Fatalf("entry %d = %v, want %v", i, merged.Entries[i], ref.Entries[i])
		}
	}
	var mb, rb bytes.Buffer
	if err := EncodeSketch(&mb, merged); err != nil {
		t.Fatal(err)
	}
	if err := EncodeSketch(&rb, ref); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mb.Bytes(), rb.Bytes()) {
		t.Fatalf("merged encoding differs from reference (%d vs %d bytes)", mb.Len(), rb.Len())
	}
}

// TestShardMergeExtraSeals: additional seals inside a same-thread run
// (an epoch boundary without a context switch) split chunks but cannot
// change the merged order — the v2 encoder re-fuses adjacent same-TID
// chunks into one run, so even the bytes stay identical.
func TestShardMergeExtraSeals(t *testing.T) {
	ref := sampleSketchLog()
	s := buildSharded(ref, func(i int) bool { return i%2 == 0 })
	if len(s.Chunks) <= 4 {
		t.Fatalf("extra seals produced only %d chunks", len(s.Chunks))
	}
	merged := s.Merge()
	var mb, rb bytes.Buffer
	if err := EncodeSketch(&mb, merged); err != nil {
		t.Fatal(err)
	}
	if err := EncodeSketch(&rb, ref); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mb.Bytes(), rb.Bytes()) {
		t.Fatal("extra seal points changed the encoded bytes")
	}
}

// TestShardSealSemantics: sealing an empty suffix publishes nothing,
// repeated seals are idempotent, and Merge's implicit SealAll flushes
// the final open epoch.
func TestShardSealSemantics(t *testing.T) {
	s := &ShardedSketch{Scheme: "SYNC"}
	i, sh := s.NewShard(3)
	if got := s.Seal(i); got != 0 {
		t.Fatalf("sealing an empty shard published %d entries", got)
	}
	if len(s.Chunks) != 0 {
		t.Fatalf("empty seal appended a chunk: %v", s.Chunks)
	}
	sh.Append(Event{TID: 3, Kind: KindLock, Obj: 1})
	sh.Append(Event{TID: 3, Kind: KindUnlock, Obj: 1})
	if got := s.Seal(i); got != 2 {
		t.Fatalf("seal published %d entries, want 2", got)
	}
	if got := s.Seal(i); got != 0 {
		t.Fatalf("re-seal published %d entries, want 0", got)
	}
	sh.Append(Event{TID: 3, Kind: KindLock, Obj: 2})
	if sh.Unsealed() != 1 {
		t.Fatalf("unsealed = %d, want 1", sh.Unsealed())
	}
	merged := s.Merge() // implicit SealAll
	if len(merged.Entries) != 3 || sh.Unsealed() != 0 {
		t.Fatalf("merge flushed %d entries (unsealed %d), want 3 (0)", len(merged.Entries), sh.Unsealed())
	}
}

// TestShardReserve: Reserve guarantees capacity for a declared run and
// never shrinks, mirroring SketchLog.Reserve's growth discipline.
func TestShardReserve(t *testing.T) {
	sh := &SketchShard{TID: 1}
	sh.Reserve(8)
	if cap(sh.Entries) < 8 {
		t.Fatalf("cap = %d after Reserve(8)", cap(sh.Entries))
	}
	for i := 0; i < 8; i++ {
		sh.Append(Event{TID: 1, Kind: KindBB, Obj: uint64(i)})
	}
	c := cap(sh.Entries)
	sh.Reserve(0)
	sh.Reserve(-3)
	if cap(sh.Entries) != c || len(sh.Entries) != 8 {
		t.Fatal("no-op Reserve changed the shard")
	}
}
