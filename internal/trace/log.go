package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// SketchEntry is one recorded sketch point: the identity of the thread
// that performed the k-th sketch-kind operation, the operation kind and
// the object it touched. This triple is what the replayer enforces.
type SketchEntry struct {
	TID  TID
	Kind Kind
	Obj  uint64
}

// String renders the entry for diagnostics.
func (e SketchEntry) String() string {
	return fmt.Sprintf("t%d %s obj=%#x", e.TID, e.Kind, e.Obj)
}

// EntryOf projects an event onto its sketch entry.
func EntryOf(ev Event) SketchEntry {
	return SketchEntry{TID: ev.TID, Kind: ev.Kind, Obj: ev.Obj}
}

// SketchLog is the ordered sequence of sketch points recorded during a
// production run, plus bookkeeping used by the overhead experiments.
type SketchLog struct {
	Scheme  string        // recording scheme name, e.g. "SYNC"
	Entries []SketchEntry // global order of sketch points
	// TotalOps is the total number of instrumentation points the
	// execution performed (recorded or not); Entries/TotalOps is the
	// sketch density.
	TotalOps uint64
	// Records is the number of log records the entries represent: equal
	// to len(Entries) except for RW sketches, whose basic-block entries
	// are run-length encodings of every private access in the block.
	Records uint64
}

// Append records one sketch point.
func (l *SketchLog) Append(ev Event) {
	l.Entries = append(l.Entries, EntryOf(ev))
}

// Len returns the number of recorded sketch points.
func (l *SketchLog) Len() int { return len(l.Entries) }

// InputRecord captures one non-deterministic input consumed from the
// virtual syscall layer (file read, socket receive, clock sample, rng
// draw). Inputs are recorded under every scheme, including BASE.
type InputRecord struct {
	TID  TID
	Call uint64 // vsys call code
	Data []byte // the bytes/value the call returned
}

// InputLog is the ordered per-execution input record.
type InputLog struct {
	Records []InputRecord
}

// Append adds one input record.
func (l *InputLog) Append(r InputRecord) { l.Records = append(l.Records, r) }

// Len returns the number of records.
func (l *InputLog) Len() int { return len(l.Records) }

// FullOrder is a captured total grant order: the thread id scheduled at
// every instrumentation point. Replaying it verbatim reproduces the
// execution deterministically — this is what PRES captures after the
// first successful replay so the bug then reproduces every time.
type FullOrder struct {
	Order []TID
}

// Len returns the number of scheduling decisions captured.
func (f *FullOrder) Len() int { return len(f.Order) }

// Log format magic bytes and version.
const (
	magicSketch = "PRSK"
	magicInput  = "PRIN"
	magicFull   = "PRFO"
	logVersion  = 1
)

// ErrBadFormat reports a corrupt or foreign log file.
var ErrBadFormat = errors.New("trace: bad log format")

// Decoder sanity limits: declared sizes beyond these are rejected
// rather than allocated, so corrupt or hostile files cannot exhaust
// memory. Real logs sit orders of magnitude below every limit.
const (
	maxDecodeEntries   = 1 << 26 // sketch entries / schedule decisions
	maxDecodeRecords   = 1 << 24 // input records
	maxInputRecordSize = 1 << 24 // bytes per input record
)

// EncodeSketch writes l to w in the compact binary format. Thread ids,
// kinds and objects are varint-encoded; the common case (SYNC/SYS
// sketches of long runs) compresses to a few bytes per entry.
func EncodeSketch(w io.Writer, l *SketchLog) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magicSketch); err != nil {
		return err
	}
	var buf []byte
	buf = binary.AppendUvarint(buf, logVersion)
	buf = binary.AppendUvarint(buf, uint64(len(l.Scheme)))
	buf = append(buf, l.Scheme...)
	buf = binary.AppendUvarint(buf, l.TotalOps)
	buf = binary.AppendUvarint(buf, l.Records)
	buf = binary.AppendUvarint(buf, uint64(len(l.Entries)))
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	for _, e := range l.Entries {
		buf = buf[:0]
		buf = binary.AppendUvarint(buf, uint64(e.TID))
		buf = append(buf, byte(e.Kind))
		buf = binary.AppendUvarint(buf, e.Obj)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeSketch reads a sketch log in the format written by EncodeSketch.
func DecodeSketch(r io.Reader) (*SketchLog, error) {
	br := bufio.NewReader(r)
	if err := expectMagic(br, magicSketch); err != nil {
		return nil, err
	}
	if err := expectVersion(br); err != nil {
		return nil, err
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nameLen > 1<<10 {
		return nil, fmt.Errorf("%w: scheme name length %d", ErrBadFormat, nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	totalOps, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	records, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > maxDecodeEntries {
		return nil, fmt.Errorf("%w: %d entries exceeds sanity limit", ErrBadFormat, n)
	}
	l := &SketchLog{Scheme: string(name), TotalOps: totalOps, Records: records}
	l.Entries = make([]SketchEntry, 0, min(n, 1<<20))
	for i := uint64(0); i < n; i++ {
		tid, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		kb, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		k := Kind(kb)
		if !k.Valid() {
			return nil, fmt.Errorf("%w: entry %d has invalid kind %d", ErrBadFormat, i, kb)
		}
		obj, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		l.Entries = append(l.Entries, SketchEntry{TID: TID(tid), Kind: k, Obj: obj})
	}
	return l, nil
}

// EncodeInput writes l to w.
func EncodeInput(w io.Writer, l *InputLog) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magicInput); err != nil {
		return err
	}
	var buf []byte
	buf = binary.AppendUvarint(buf, logVersion)
	buf = binary.AppendUvarint(buf, uint64(len(l.Records)))
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	for _, rec := range l.Records {
		buf = buf[:0]
		buf = binary.AppendUvarint(buf, uint64(rec.TID))
		buf = binary.AppendUvarint(buf, rec.Call)
		buf = binary.AppendUvarint(buf, uint64(len(rec.Data)))
		buf = append(buf, rec.Data...)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeInput reads an input log in the format written by EncodeInput.
func DecodeInput(r io.Reader) (*InputLog, error) {
	br := bufio.NewReader(r)
	if err := expectMagic(br, magicInput); err != nil {
		return nil, err
	}
	if err := expectVersion(br); err != nil {
		return nil, err
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > maxDecodeRecords {
		return nil, fmt.Errorf("%w: %d input records exceeds sanity limit", ErrBadFormat, n)
	}
	l := &InputLog{Records: make([]InputRecord, 0, min(n, 1<<20))}
	for i := uint64(0); i < n; i++ {
		tid, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		call, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		size, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if size > maxInputRecordSize {
			return nil, fmt.Errorf("%w: input record %d size %d", ErrBadFormat, i, size)
		}
		data := make([]byte, size)
		if _, err := io.ReadFull(br, data); err != nil {
			return nil, err
		}
		l.Records = append(l.Records, InputRecord{TID: TID(tid), Call: call, Data: data})
	}
	return l, nil
}

// EncodeFullOrder writes f to w. Consecutive grants to the same thread
// are run-length encoded: real schedules have long same-thread runs
// between context switches.
func EncodeFullOrder(w io.Writer, f *FullOrder) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magicFull); err != nil {
		return err
	}
	var buf []byte
	buf = binary.AppendUvarint(buf, logVersion)
	buf = binary.AppendUvarint(buf, uint64(len(f.Order)))
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	for i := 0; i < len(f.Order); {
		j := i
		for j < len(f.Order) && f.Order[j] == f.Order[i] {
			j++
		}
		buf = buf[:0]
		buf = binary.AppendUvarint(buf, uint64(f.Order[i]))
		buf = binary.AppendUvarint(buf, uint64(j-i))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
		i = j
	}
	return bw.Flush()
}

// DecodeFullOrder reads a full-order trace written by EncodeFullOrder.
func DecodeFullOrder(r io.Reader) (*FullOrder, error) {
	br := bufio.NewReader(r)
	if err := expectMagic(br, magicFull); err != nil {
		return nil, err
	}
	if err := expectVersion(br); err != nil {
		return nil, err
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > maxDecodeEntries {
		return nil, fmt.Errorf("%w: %d schedule decisions exceeds sanity limit", ErrBadFormat, n)
	}
	f := &FullOrder{Order: make([]TID, 0, min(n, 1<<24))}
	for uint64(len(f.Order)) < n {
		tid, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		run, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if run == 0 || uint64(len(f.Order))+run > n {
			return nil, fmt.Errorf("%w: bad run length %d", ErrBadFormat, run)
		}
		for k := uint64(0); k < run; k++ {
			f.Order = append(f.Order, TID(tid))
		}
	}
	return f, nil
}

func expectMagic(br *bufio.Reader, magic string) error {
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(br, got); err != nil {
		return fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(got) != magic {
		return fmt.Errorf("%w: magic %q, want %q", ErrBadFormat, got, magic)
	}
	return nil
}

func expectVersion(br *bufio.Reader) error {
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if v != logVersion {
		return fmt.Errorf("%w: version %d, want %d", ErrBadFormat, v, logVersion)
	}
	return nil
}
