package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"slices"
	"sync"
)

// SketchEntry is one recorded sketch point: the identity of the thread
// that performed the k-th sketch-kind operation, the operation kind and
// the object it touched. This triple is what the replayer enforces.
type SketchEntry struct {
	TID  TID
	Kind Kind
	Obj  uint64
}

// String renders the entry for diagnostics.
func (e SketchEntry) String() string {
	return fmt.Sprintf("t%d %s obj=%#x", e.TID, e.Kind, e.Obj)
}

// EntryOf projects an event onto its sketch entry.
func EntryOf(ev Event) SketchEntry {
	return SketchEntry{TID: ev.TID, Kind: ev.Kind, Obj: ev.Obj}
}

// SketchLog is the ordered sequence of sketch points recorded during a
// production run, plus bookkeeping used by the overhead experiments.
type SketchLog struct {
	Scheme  string        // recording scheme name, e.g. "SYNC"
	Entries []SketchEntry // global order of sketch points
	// TotalOps is the total number of instrumentation points the
	// execution performed (recorded or not); Entries/TotalOps is the
	// sketch density.
	TotalOps uint64
	// Records is the number of log records the entries represent: equal
	// to len(Entries) except for RW sketches, whose basic-block entries
	// are run-length encodings of every private access in the block.
	Records uint64
}

// Append records one sketch point.
func (l *SketchLog) Append(ev Event) {
	l.Entries = append(l.Entries, EntryOf(ev))
}

// Reserve grows the entry slice for n upcoming appends, so a granted
// scheduler run's worth of sketch points costs at most one allocation
// (the sched.RunObserver batching hook). Growth never falls below
// append's doubling, so interleaved Reserve/Append stays amortized.
func (l *SketchLog) Reserve(n int) {
	need := len(l.Entries) + n
	if n <= 0 || cap(l.Entries) >= need {
		return
	}
	newCap := 2 * cap(l.Entries)
	if newCap < need {
		newCap = need
	}
	grown := make([]SketchEntry, len(l.Entries), newCap)
	copy(grown, l.Entries)
	l.Entries = grown
}

// Len returns the number of recorded sketch points.
func (l *SketchLog) Len() int { return len(l.Entries) }

// InputRecord captures one non-deterministic input consumed from the
// virtual syscall layer (file read, socket receive, clock sample, rng
// draw). Inputs are recorded under every scheme, including BASE.
type InputRecord struct {
	TID  TID
	Call uint64 // vsys call code
	Data []byte // the bytes/value the call returned
}

// InputLog is the ordered per-execution input record.
type InputLog struct {
	Records []InputRecord
}

// Append adds one input record.
func (l *InputLog) Append(r InputRecord) { l.Records = append(l.Records, r) }

// Len returns the number of records.
func (l *InputLog) Len() int { return len(l.Records) }

// FullOrder is a captured total grant order: the thread id scheduled at
// every instrumentation point. Replaying it verbatim reproduces the
// execution deterministically — this is what PRES captures after the
// first successful replay so the bug then reproduces every time.
type FullOrder struct {
	Order []TID
}

// Len returns the number of scheduling decisions captured.
func (f *FullOrder) Len() int { return len(f.Order) }

// Log format magic bytes and versions. Version 1 is the original
// entry-per-varint-triple layout; version 2 (the current encoders'
// output) run-length encodes same-thread runs and delta-codes objects
// against a small MRU dictionary (see INTERNALS.md, "wire format v2").
// Decoders accept both.
const (
	magicSketch = "PRSK"
	magicInput  = "PRIN"
	magicFull   = "PRFO"
	logVersion1 = 1
	logVersion2 = 2
	logVersion  = logVersion2
)

// ErrBadFormat reports a corrupt or foreign log file.
var ErrBadFormat = errors.New("trace: bad log format")

// Decoder sanity limits: declared sizes beyond these are rejected
// rather than allocated, so corrupt or hostile files cannot exhaust
// memory. Real logs sit orders of magnitude below every limit.
const (
	maxDecodeEntries   = 1 << 26 // sketch entries / schedule decisions
	maxDecodeRecords   = 1 << 24 // input records
	maxInputRecordSize = 1 << 24 // bytes per input record
)

// The v2 op byte packs the entry kind into its low 5 bits; this array
// fails to compile if kinds ever outgrow them (bump the wire version
// when that happens).
var _ [32 - NumKinds]struct{}

// v2 op-byte object modes (high 3 bits): how the entry's object is
// recovered from the decoder's MRU state.
const (
	objSame  = 0 // obj == mru[0] (previous entry's object)
	objMRU1  = 1 // obj == mru[1]
	objMRU2  = 2 // obj == mru[2]
	objMRU3  = 3 // obj == mru[3]
	objMRU4  = 4 // obj == mru[4]
	objDelta = 5 // zigzag varint delta from mru[0] follows
	objAbs   = 6 // absolute varint object follows
	// 7 is reserved; decoders reject it.
)

// objMRU is the move-to-front dictionary of recently seen objects that
// the v2 sketch codec keeps on both sides of the wire. Real sketches
// touch a small working set of objects (a lock and its data, the
// current basic block's neighbours), so most entries resolve to a slot
// index and cost zero object bytes.
type objMRU [5]uint64

// hit returns the slot holding obj, or -1.
func (m *objMRU) hit(obj uint64) int {
	for i, v := range m {
		if v == obj {
			return i
		}
	}
	return -1
}

// push moves obj to the front, evicting the oldest slot on a miss.
func (m *objMRU) push(obj uint64, slot int) {
	if slot == 0 {
		return
	}
	if slot < 0 {
		slot = len(m) - 1
	}
	copy(m[1:slot+1], m[:slot])
	m[0] = obj
}

// zigzag maps a signed delta onto an unsigned varint-friendly value.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// uvarintLen returns the encoded length of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// scratchPool recycles the encoders' scratch buffers so encoding a log
// (or measuring its size, which encodes into a counting writer) does
// not allocate per call on the recording hot path.
var scratchPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 4096); return &b },
}

func getScratch() *[]byte {
	b := scratchPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

func putScratch(b *[]byte) {
	if cap(*b) <= 1<<20 { // don't pin pathological buffers
		scratchPool.Put(b)
	}
}

// bufioPool recycles the encoders' output buffers for the same reason:
// sizing a log (LogBytes) encodes it, and a per-call bufio.Writer
// would charge 4KB of garbage to every recording.
var bufioPool = sync.Pool{
	New: func() any { return bufio.NewWriterSize(io.Discard, 4096) },
}

func getBufio(w io.Writer) *bufio.Writer {
	bw := bufioPool.Get().(*bufio.Writer)
	bw.Reset(w)
	return bw
}

func putBufio(bw *bufio.Writer) {
	bw.Reset(io.Discard) // drop the reference to the caller's writer
	bufioPool.Put(bw)
}

// EncodeSketch writes l to w in the current (v2) compact binary
// format: entries are grouped into same-thread runs (thread ids
// zigzag-delta coded between runs), each entry is one op byte packing
// its kind with an object mode, and objects resolve against a 5-slot
// MRU dictionary — repeats cost nothing, near misses a short delta.
// SYNC/SYS sketches of real runs compress to ~1.5 bytes per entry.
func EncodeSketch(w io.Writer, l *SketchLog) error {
	bw := getBufio(w)
	defer putBufio(bw)
	if _, err := bw.WriteString(magicSketch); err != nil {
		return err
	}
	scratch := getScratch()
	defer putScratch(scratch)
	buf := *scratch
	buf = binary.AppendUvarint(buf, logVersion2)
	buf = binary.AppendUvarint(buf, uint64(len(l.Scheme)))
	buf = append(buf, l.Scheme...)
	buf = binary.AppendUvarint(buf, l.TotalOps)
	buf = binary.AppendUvarint(buf, l.Records)
	buf = binary.AppendUvarint(buf, uint64(len(l.Entries)))
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	var mru objMRU
	prevTID := TID(0)
	for i := 0; i < len(l.Entries); {
		j := i
		for j < len(l.Entries) && l.Entries[j].TID == l.Entries[i].TID {
			j++
		}
		buf = buf[:0]
		buf = binary.AppendUvarint(buf, zigzag(int64(l.Entries[i].TID)-int64(prevTID)))
		buf = binary.AppendUvarint(buf, uint64(j-i))
		prevTID = l.Entries[i].TID
		for _, e := range l.Entries[i:j] {
			slot := mru.hit(e.Obj)
			switch {
			case slot >= 0:
				buf = append(buf, byte(e.Kind)|byte(slot)<<5)
			default:
				delta := zigzag(int64(e.Obj) - int64(mru[0]))
				if uvarintLen(delta) <= uvarintLen(e.Obj) {
					buf = append(buf, byte(e.Kind)|objDelta<<5)
					buf = binary.AppendUvarint(buf, delta)
				} else {
					buf = append(buf, byte(e.Kind)|objAbs<<5)
					buf = binary.AppendUvarint(buf, e.Obj)
				}
			}
			mru.push(e.Obj, slot)
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
		i = j
	}
	*scratch = buf
	return bw.Flush()
}

// EncodeSketchV1 writes l in the legacy v1 format (one varint triple
// per entry). Kept so compatibility fixtures and size comparisons can
// still produce v1 bytes; new recordings use EncodeSketch.
func EncodeSketchV1(w io.Writer, l *SketchLog) error {
	bw := getBufio(w)
	defer putBufio(bw)
	if _, err := bw.WriteString(magicSketch); err != nil {
		return err
	}
	scratch := getScratch()
	defer putScratch(scratch)
	buf := *scratch
	buf = binary.AppendUvarint(buf, logVersion1)
	buf = binary.AppendUvarint(buf, uint64(len(l.Scheme)))
	buf = append(buf, l.Scheme...)
	buf = binary.AppendUvarint(buf, l.TotalOps)
	buf = binary.AppendUvarint(buf, l.Records)
	buf = binary.AppendUvarint(buf, uint64(len(l.Entries)))
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	for _, e := range l.Entries {
		buf = buf[:0]
		buf = binary.AppendUvarint(buf, uint64(e.TID))
		buf = append(buf, byte(e.Kind))
		buf = binary.AppendUvarint(buf, e.Obj)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	*scratch = buf
	return bw.Flush()
}

// DecodeSketch reads a sketch log in either wire version.
func DecodeSketch(r io.Reader) (*SketchLog, error) {
	br := bufio.NewReader(r)
	if err := expectMagic(br, magicSketch); err != nil {
		return nil, err
	}
	version, err := readVersion(br)
	if err != nil {
		return nil, err
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nameLen > 1<<10 {
		return nil, fmt.Errorf("%w: scheme name length %d", ErrBadFormat, nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	totalOps, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	records, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > maxDecodeEntries {
		return nil, fmt.Errorf("%w: %d entries exceeds sanity limit", ErrBadFormat, n)
	}
	l := &SketchLog{Scheme: string(name), TotalOps: totalOps, Records: records}
	l.Entries = make([]SketchEntry, 0, min(n, 1<<20))
	if version == logVersion1 {
		return decodeSketchEntriesV1(br, l, n)
	}
	return decodeSketchEntriesV2(br, l, n)
}

func decodeSketchEntriesV1(br *bufio.Reader, l *SketchLog, n uint64) (*SketchLog, error) {
	for i := uint64(0); i < n; i++ {
		tid, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		kb, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		k := Kind(kb)
		if !k.Valid() {
			return nil, fmt.Errorf("%w: entry %d has invalid kind %d", ErrBadFormat, i, kb)
		}
		obj, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		l.Entries = append(l.Entries, SketchEntry{TID: TID(tid), Kind: k, Obj: obj})
	}
	return l, nil
}

func decodeSketchEntriesV2(br *bufio.Reader, l *SketchLog, n uint64) (*SketchLog, error) {
	var mru objMRU
	prevTID := TID(0)
	for uint64(len(l.Entries)) < n {
		tidDelta, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		tid := TID(int64(prevTID) + unzigzag(tidDelta))
		prevTID = tid
		run, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if run == 0 || uint64(len(l.Entries))+run > n {
			return nil, fmt.Errorf("%w: bad sketch run length %d", ErrBadFormat, run)
		}
		for k := uint64(0); k < run; k++ {
			op, err := br.ReadByte()
			if err != nil {
				return nil, err
			}
			kind := Kind(op & 0x1f)
			if !kind.Valid() {
				return nil, fmt.Errorf("%w: entry %d has invalid kind %d", ErrBadFormat, len(l.Entries), op&0x1f)
			}
			var obj uint64
			slot := -1
			switch mode := op >> 5; mode {
			case objSame, objMRU1, objMRU2, objMRU3, objMRU4:
				slot = int(mode)
				obj = mru[slot]
			case objDelta:
				d, err := binary.ReadUvarint(br)
				if err != nil {
					return nil, err
				}
				obj = uint64(int64(mru[0]) + unzigzag(d))
			case objAbs:
				if obj, err = binary.ReadUvarint(br); err != nil {
					return nil, err
				}
			default:
				return nil, fmt.Errorf("%w: entry %d has invalid object mode %d", ErrBadFormat, len(l.Entries), mode)
			}
			mru.push(obj, slot)
			l.Entries = append(l.Entries, SketchEntry{TID: tid, Kind: kind, Obj: obj})
		}
	}
	return l, nil
}

// EncodeInput writes l to w in the current (v2) format: thread ids and
// call codes are zigzag-delta coded between records (consecutive inputs
// are usually the same thread polling the same call), data length and
// bytes follow verbatim.
func EncodeInput(w io.Writer, l *InputLog) error {
	bw := getBufio(w)
	defer putBufio(bw)
	if _, err := bw.WriteString(magicInput); err != nil {
		return err
	}
	scratch := getScratch()
	defer putScratch(scratch)
	buf := *scratch
	buf = binary.AppendUvarint(buf, logVersion2)
	buf = binary.AppendUvarint(buf, uint64(len(l.Records)))
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	prevTID, prevCall := int64(0), uint64(0)
	for _, rec := range l.Records {
		buf = buf[:0]
		buf = binary.AppendUvarint(buf, zigzag(int64(rec.TID)-prevTID))
		buf = binary.AppendUvarint(buf, zigzag(int64(rec.Call)-int64(prevCall)))
		buf = binary.AppendUvarint(buf, uint64(len(rec.Data)))
		buf = append(buf, rec.Data...)
		prevTID, prevCall = int64(rec.TID), rec.Call
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	*scratch = buf
	return bw.Flush()
}

// EncodeInputV1 writes l in the legacy v1 format (absolute varints per
// record). Kept for compatibility fixtures; new recordings use
// EncodeInput.
func EncodeInputV1(w io.Writer, l *InputLog) error {
	bw := getBufio(w)
	defer putBufio(bw)
	if _, err := bw.WriteString(magicInput); err != nil {
		return err
	}
	scratch := getScratch()
	defer putScratch(scratch)
	buf := *scratch
	buf = binary.AppendUvarint(buf, logVersion1)
	buf = binary.AppendUvarint(buf, uint64(len(l.Records)))
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	for _, rec := range l.Records {
		buf = buf[:0]
		buf = binary.AppendUvarint(buf, uint64(rec.TID))
		buf = binary.AppendUvarint(buf, rec.Call)
		buf = binary.AppendUvarint(buf, uint64(len(rec.Data)))
		buf = append(buf, rec.Data...)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	*scratch = buf
	return bw.Flush()
}

// DecodeInput reads an input log in either wire version.
func DecodeInput(r io.Reader) (*InputLog, error) {
	br := bufio.NewReader(r)
	if err := expectMagic(br, magicInput); err != nil {
		return nil, err
	}
	version, err := readVersion(br)
	if err != nil {
		return nil, err
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > maxDecodeRecords {
		return nil, fmt.Errorf("%w: %d input records exceeds sanity limit", ErrBadFormat, n)
	}
	l := &InputLog{Records: make([]InputRecord, 0, min(n, 1<<20))}
	prevTID, prevCall := int64(0), int64(0)
	for i := uint64(0); i < n; i++ {
		var tid TID
		var call uint64
		if version == logVersion1 {
			t, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			c, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			tid, call = TID(t), c
		} else {
			td, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			cd, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			prevTID += unzigzag(td)
			prevCall += unzigzag(cd)
			tid, call = TID(prevTID), uint64(prevCall)
		}
		size, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if size > maxInputRecordSize {
			return nil, fmt.Errorf("%w: input record %d size %d", ErrBadFormat, i, size)
		}
		data := make([]byte, size)
		if _, err := io.ReadFull(br, data); err != nil {
			return nil, err
		}
		l.Records = append(l.Records, InputRecord{TID: tid, Call: call, Data: data})
	}
	return l, nil
}

// EncodeFullOrder writes f to w in the current (v2) format. Consecutive
// grants to the same thread are run-length encoded — real schedules
// have long same-thread runs between context switches — and the run
// thread ids are zigzag-delta coded against the previous run's.
func EncodeFullOrder(w io.Writer, f *FullOrder) error {
	return encodeFullOrder(w, f, logVersion2)
}

// EncodeFullOrderV1 writes f in the legacy v1 format (absolute run
// thread ids). Kept for compatibility fixtures.
func EncodeFullOrderV1(w io.Writer, f *FullOrder) error {
	return encodeFullOrder(w, f, logVersion1)
}

func encodeFullOrder(w io.Writer, f *FullOrder, version uint64) error {
	bw := getBufio(w)
	defer putBufio(bw)
	if _, err := bw.WriteString(magicFull); err != nil {
		return err
	}
	scratch := getScratch()
	defer putScratch(scratch)
	buf := *scratch
	buf = binary.AppendUvarint(buf, version)
	buf = binary.AppendUvarint(buf, uint64(len(f.Order)))
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	prevTID := TID(0)
	for i := 0; i < len(f.Order); {
		j := i
		for j < len(f.Order) && f.Order[j] == f.Order[i] {
			j++
		}
		buf = buf[:0]
		if version == logVersion1 {
			buf = binary.AppendUvarint(buf, uint64(f.Order[i]))
		} else {
			buf = binary.AppendUvarint(buf, zigzag(int64(f.Order[i])-int64(prevTID)))
			prevTID = f.Order[i]
		}
		buf = binary.AppendUvarint(buf, uint64(j-i))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
		i = j
	}
	*scratch = buf
	return bw.Flush()
}

// DecodeFullOrder reads a full-order trace in either wire version.
func DecodeFullOrder(r io.Reader) (*FullOrder, error) {
	br := bufio.NewReader(r)
	if err := expectMagic(br, magicFull); err != nil {
		return nil, err
	}
	version, err := readVersion(br)
	if err != nil {
		return nil, err
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > maxDecodeEntries {
		return nil, fmt.Errorf("%w: %d schedule decisions exceeds sanity limit", ErrBadFormat, n)
	}
	f := &FullOrder{}
	if n > 0 {
		// Leave Order nil for empty traces so round-trips are exact
		// (DeepEqual distinguishes nil from empty).
		f.Order = make([]TID, 0, min(n, 1<<24))
	}
	prevTID := TID(0)
	for uint64(len(f.Order)) < n {
		raw, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		var tid TID
		if version == logVersion1 {
			tid = TID(raw)
		} else {
			tid = TID(int64(prevTID) + unzigzag(raw))
			prevTID = tid
		}
		run, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if run == 0 || uint64(len(f.Order))+run > n {
			return nil, fmt.Errorf("%w: bad run length %d", ErrBadFormat, run)
		}
		// Extend once per run, not once per decision: captured orders
		// reach millions of decisions and per-element appends would
		// regrow the slice all the way up.
		start := len(f.Order)
		f.Order = slices.Grow(f.Order, int(run))[:start+int(run)]
		for k := range f.Order[start:] {
			f.Order[start+k] = tid
		}
	}
	return f, nil
}

func expectMagic(br *bufio.Reader, magic string) error {
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(br, got); err != nil {
		return fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(got) != magic {
		return fmt.Errorf("%w: magic %q, want %q", ErrBadFormat, got, magic)
	}
	return nil
}

// readVersion reads and validates the format version byte; both wire
// versions are accepted so v1 recordings never orphan.
func readVersion(br *bufio.Reader) (uint64, error) {
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if v != logVersion1 && v != logVersion2 {
		return 0, fmt.Errorf("%w: version %d, want %d or %d", ErrBadFormat, v, logVersion1, logVersion2)
	}
	return v, nil
}
