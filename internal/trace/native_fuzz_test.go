package trace

import (
	"bytes"
	"testing"
)

// Native fuzz targets; without -fuzz they run their seed corpora as
// regression tests. The invariant for every decoder: arbitrary bytes
// produce an error or a log, never a panic or runaway allocation.

func validSketchBytes() []byte {
	l := &SketchLog{Scheme: "SYNC", TotalOps: 40, Records: 4}
	l.Append(Event{TID: 1, Kind: KindLock, Obj: 0xAA})
	l.Append(Event{TID: 2, Kind: KindUnlock, Obj: 0xAA})
	var buf bytes.Buffer
	if err := EncodeSketch(&buf, l); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func FuzzDecodeSketch(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("PRSK"))
	f.Add(validSketchBytes())
	f.Fuzz(func(t *testing.T, b []byte) {
		l, err := DecodeSketch(bytes.NewReader(b))
		if err == nil && l == nil {
			t.Fatal("nil log with nil error")
		}
	})
}

func FuzzDecodeInput(f *testing.F) {
	var buf bytes.Buffer
	il := &InputLog{}
	il.Append(InputRecord{TID: 1, Call: 2, Data: []byte{1, 2, 3}})
	_ = EncodeInput(&buf, il)
	f.Add([]byte{})
	f.Add(buf.Bytes())
	f.Fuzz(func(t *testing.T, b []byte) {
		l, err := DecodeInput(bytes.NewReader(b))
		if err == nil && l == nil {
			t.Fatal("nil log with nil error")
		}
	})
}

func FuzzDecodeFullOrder(f *testing.F) {
	var buf bytes.Buffer
	_ = EncodeFullOrder(&buf, &FullOrder{Order: []TID{0, 0, 1}})
	f.Add([]byte{})
	f.Add(buf.Bytes())
	f.Fuzz(func(t *testing.T, b []byte) {
		l, err := DecodeFullOrder(bytes.NewReader(b))
		if err == nil && l == nil {
			t.Fatal("nil order with nil error")
		}
	})
}

func FuzzDecodeSketchStream(f *testing.F) {
	var buf bytes.Buffer
	sw, _ := NewSketchWriter(&buf, "SYNC")
	sw.Append(SketchEntry{TID: 1, Kind: KindLock, Obj: 5})
	_ = sw.Close(10, 1)
	f.Add([]byte{})
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:buf.Len()/2])
	f.Fuzz(func(t *testing.T, b []byte) {
		l, _, err := DecodeSketchStream(bytes.NewReader(b))
		if err == nil && l == nil {
			t.Fatal("nil log with nil error")
		}
	})
}
