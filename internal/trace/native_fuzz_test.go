package trace

import (
	"bytes"
	"io"
	"slices"
	"testing"
)

// Native fuzz targets; without -fuzz they run their seed corpora as
// regression tests. The invariant for every decoder: arbitrary bytes
// produce an error or a log, never a panic or runaway allocation.

func validSketchBytes() []byte {
	l := &SketchLog{Scheme: "SYNC", TotalOps: 40, Records: 4}
	l.Append(Event{TID: 1, Kind: KindLock, Obj: 0xAA})
	l.Append(Event{TID: 2, Kind: KindUnlock, Obj: 0xAA})
	var buf bytes.Buffer
	if err := EncodeSketch(&buf, l); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func validSketchBytesV1() []byte {
	l := &SketchLog{Scheme: "SYNC", TotalOps: 40, Records: 4}
	l.Append(Event{TID: 1, Kind: KindLock, Obj: 0xAA})
	l.Append(Event{TID: 2, Kind: KindUnlock, Obj: 0xAA})
	var buf bytes.Buffer
	if err := EncodeSketchV1(&buf, l); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func FuzzDecodeSketch(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("PRSK"))
	f.Add(validSketchBytes())
	f.Add(validSketchBytesV1())
	f.Fuzz(func(t *testing.T, b []byte) {
		l, err := DecodeSketch(bytes.NewReader(b))
		if err == nil && l == nil {
			t.Fatal("nil log with nil error")
		}
	})
}

// FuzzSketchRoundTrip drives the v1 and v2 sketch codecs from raw
// bytes: the input is interpreted as a stream of entries (3 bytes
// each: tid, kind selector, object selector), and both encodings must
// round-trip to the exact same log. Object selectors deliberately
// revisit a small set of values so the fuzzer exercises every MRU
// mode, not just absolute encoding.
func FuzzSketchRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{0, 1, 0, 0, 2, 0, 3, 3, 200, 3, 4, 200, 0, 1, 9})
	f.Add(bytes.Repeat([]byte{5, 7, 11, 5, 7, 12}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		l := &SketchLog{Scheme: "FUZZ", TotalOps: uint64(len(data)), Records: uint64(len(data) / 3)}
		objs := [8]uint64{0, 1, 0x40, 0x48, 1 << 16, 1<<16 + 8, 1 << 50, ^uint64(0)}
		for i := 0; i+2 < len(data); i += 3 {
			l.Append(Event{
				TID:  TID(data[i] & 15),
				Kind: Kind(1 + data[i+1]%byte(numKinds-1)),
				Obj:  objs[data[i+2]&7] + uint64(data[i+2]>>3),
			})
		}
		for name, enc := range map[string]func(io.Writer, *SketchLog) error{
			"v1": EncodeSketchV1, "v2": EncodeSketch,
		} {
			var buf bytes.Buffer
			if err := enc(&buf, l); err != nil {
				t.Fatalf("%s encode: %v", name, err)
			}
			got, err := DecodeSketch(&buf)
			if err != nil {
				t.Fatalf("%s decode: %v", name, err)
			}
			if got.Scheme != l.Scheme || got.TotalOps != l.TotalOps ||
				got.Records != l.Records || !slices.Equal(got.Entries, l.Entries) {
				t.Fatalf("%s round trip mismatch: got %d entries, want %d", name, got.Len(), l.Len())
			}
		}
	})
}

func FuzzDecodeInput(f *testing.F) {
	var buf, bufV1 bytes.Buffer
	il := &InputLog{}
	il.Append(InputRecord{TID: 1, Call: 2, Data: []byte{1, 2, 3}})
	_ = EncodeInput(&buf, il)
	_ = EncodeInputV1(&bufV1, il)
	f.Add([]byte{})
	f.Add(buf.Bytes())
	f.Add(bufV1.Bytes())
	f.Fuzz(func(t *testing.T, b []byte) {
		l, err := DecodeInput(bytes.NewReader(b))
		if err == nil && l == nil {
			t.Fatal("nil log with nil error")
		}
	})
}

func FuzzDecodeFullOrder(f *testing.F) {
	var buf, bufV1 bytes.Buffer
	_ = EncodeFullOrder(&buf, &FullOrder{Order: []TID{0, 0, 1}})
	_ = EncodeFullOrderV1(&bufV1, &FullOrder{Order: []TID{0, 0, 1}})
	f.Add([]byte{})
	f.Add(buf.Bytes())
	f.Add(bufV1.Bytes())
	f.Fuzz(func(t *testing.T, b []byte) {
		l, err := DecodeFullOrder(bytes.NewReader(b))
		if err == nil && l == nil {
			t.Fatal("nil order with nil error")
		}
	})
}

func FuzzDecodeSketchStream(f *testing.F) {
	var buf bytes.Buffer
	sw, _ := NewSketchWriter(&buf, "SYNC")
	sw.Append(SketchEntry{TID: 1, Kind: KindLock, Obj: 5})
	_ = sw.Close(10, 1)
	f.Add([]byte{})
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:buf.Len()/2])
	f.Fuzz(func(t *testing.T, b []byte) {
		l, _, err := DecodeSketchStream(bytes.NewReader(b))
		if err == nil && l == nil {
			t.Fatal("nil log with nil error")
		}
	})
}
