// Package appkit is the instrumented-program kit: the API the
// application corpus is written against, standing in for the paper's
// Pin-based binary instrumentation.
//
// Applications receive an Env (main thread + virtual syscall world +
// workload knobs) and perform every shared-memory access through
// internal/mem, every synchronization through internal/ssync and every
// system call through internal/vsys. Function and basic-block
// instrumentation points — the hooks the FUNC and BB sketching
// mechanisms record — are emitted with Func and BB.
package appkit

import (
	"hash/fnv"

	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/vsys"
)

// Env is what a program's Run receives.
type Env struct {
	T *sched.Thread // the program's main thread
	W *vsys.World   // virtual syscall layer for this execution
	// Scale sizes the workload (iterations, requests, matrix size);
	// each program documents its interpretation. Zero means the
	// program's default.
	Scale int
	// Procs is the modelled processor count, for programs that size
	// their worker pools like the originals do.
	Procs int
	// FixBugs selects each program's patched code paths (the correct
	// synchronization). Overhead experiments run the patched programs
	// so long workloads are not cut short by a manifestation; the fixed
	// variants are also the ground truth that the failures really are
	// the documented races.
	FixBugs bool
	// Inject is this execution's failure-injection hook, when one is
	// installed (core.Options.Inject / internal/scenario): the same
	// function the vsys calls and lock acquisitions consult, surfaced
	// so programs can model app-level degraded paths (e.g. shedding a
	// request themselves). Nil in normal runs; injectors must be
	// deterministic per thread (see sched.InjectFn).
	Inject sched.InjectFn
}

// ScaleOr returns the workload scale, defaulting to def.
func (e *Env) ScaleOr(def int) int {
	if e.Scale <= 0 {
		return def
	}
	return e.Scale
}

// ProcsOr returns the processor count, defaulting to def.
func (e *Env) ProcsOr(def int) int {
	if e.Procs <= 0 {
		return def
	}
	return e.Procs
}

// Program is one application in the corpus.
type Program struct {
	Name     string
	Category string   // "server", "desktop" or "scientific"
	Bugs     []string // bug ids this program can manifest
	// Run executes the workload on the environment's main thread. It
	// must allocate all program state inside Run so every execution
	// starts fresh.
	Run func(env *Env)
}

// id hashes an instrumentation label.
func id(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

// FuncID returns the stable id the FUNC sketch sees for a function name.
func FuncID(name string) uint64 { return id("func:" + name) }

// BBID returns the stable id the BB sketch sees for a block label.
func BBID(name string) uint64 { return id("bb:" + name) }

// Func brackets body with function-entry/exit instrumentation points,
// the hooks the FUNC sketching mechanism records.
func Func(t *sched.Thread, name string, body func()) {
	fid := FuncID(name)
	t.Point(&sched.Op{Kind: trace.KindFuncEnter, Obj: fid, Desc: "enter " + name})
	body()
	t.Point(&sched.Op{Kind: trace.KindFuncExit, Obj: fid, Desc: "exit " + name})
}

// BB marks a basic-block boundary, the hook the BB sketching mechanism
// records. Real instrumentation marks every block; programs in the
// corpus mark loop bodies and branch arms, the same density class. A
// plain BB represents a small block (DefaultBlockAccesses private
// memory accesses).
func BB(t *sched.Thread, name string) {
	Block(t, name, DefaultBlockAccesses)
}

// DefaultBlockAccesses is the private-memory-access count a plain BB
// marker represents: a typical small basic block.
const DefaultBlockAccesses = 4

// Block marks a basic-block boundary representing a straight-line
// region that performs n private (thread-local) memory accesses. The
// region costs n time units in the execution model, and — because real
// binary instrumentation cannot tell private accesses from shared ones —
// the RW sketching mechanism pays to record all n of them, while the
// cheaper sketches skip the block entirely. This is what separates the
// schemes' production overheads by orders of magnitude, exactly as on
// the paper's testbed.
//
// Private accesses cannot race (no other thread can address them), so
// the region needs no effect and no race-detector attention; only its
// cost and recording weight matter.
func Block(t *sched.Thread, name string, n int) {
	t.Point(BlockOp(name, n))
}

// BlockOp returns the scheduling-point op Block performs, for declaring
// straight-line runs with sched.Thread.PointBatch: a basic block
// followed by the shared accesses it feeds is the canonical batch shape
// in the compute kernels.
func BlockOp(name string, n int) *sched.Op {
	if n < 1 {
		n = 1
	}
	return &sched.Op{
		Kind: trace.KindBB,
		Obj:  BBID(name),
		Arg:  uint64(n),
		Cost: uint64(n) * trace.CostUnit,
		Desc: "bb " + name,
	}
}
