package appkit

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/trace"
)

type collector struct{ evs []trace.Event }

func (c *collector) OnEvent(ev trace.Event) uint64 {
	c.evs = append(c.evs, ev)
	return 0
}

func TestFuncEmitsEnterExit(t *testing.T) {
	c := &collector{}
	res := sched.Run(func(th *sched.Thread) {
		Func(th, "handle", func() {
			th.Yield()
		})
	}, sched.Config{Strategy: sched.Lowest{}, Observers: []sched.Observer{c}})
	if res.Failure != nil {
		t.Fatal(res.Failure)
	}
	var enter, exit, inBetween bool
	for _, ev := range c.evs {
		switch ev.Kind {
		case trace.KindFuncEnter:
			if ev.Obj != FuncID("handle") {
				t.Fatal("enter id mismatch")
			}
			enter = true
		case trace.KindYield:
			inBetween = enter
		case trace.KindFuncExit:
			if !inBetween {
				t.Fatal("exit before body ran")
			}
			exit = true
		}
	}
	if !enter || !exit {
		t.Fatal("missing enter/exit events")
	}
}

func TestBBEmitsBlockEvent(t *testing.T) {
	c := &collector{}
	res := sched.Run(func(th *sched.Thread) {
		for i := 0; i < 3; i++ {
			BB(th, "loop")
		}
	}, sched.Config{Strategy: sched.Lowest{}, Observers: []sched.Observer{c}})
	if res.Failure != nil {
		t.Fatal(res.Failure)
	}
	n := 0
	for _, ev := range c.evs {
		if ev.Kind == trace.KindBB && ev.Obj == BBID("loop") {
			n++
		}
	}
	if n != 3 {
		t.Fatalf("BB events = %d, want 3", n)
	}
}

func TestIDsStableAndDistinct(t *testing.T) {
	if FuncID("f") != FuncID("f") || BBID("b") != BBID("b") {
		t.Fatal("ids not stable")
	}
	if FuncID("x") == BBID("x") {
		t.Fatal("func and bb namespaces collided")
	}
}

func TestEnvDefaults(t *testing.T) {
	e := &Env{}
	if e.ScaleOr(10) != 10 || e.ProcsOr(4) != 4 {
		t.Fatal("defaults not applied")
	}
	e.Scale, e.Procs = 3, 2
	if e.ScaleOr(10) != 3 || e.ProcsOr(4) != 2 {
		t.Fatal("explicit values not honored")
	}
}

func TestBlockClampsAndCosts(t *testing.T) {
	c := &collector{}
	res := sched.Run(func(th *sched.Thread) {
		Block(th, "big", 100)
		Block(th, "clamped", 0) // clamps to 1 access
	}, sched.Config{Strategy: sched.Lowest{}, Observers: []sched.Observer{c}})
	if res.Failure != nil {
		t.Fatal(res.Failure)
	}
	var args []uint64
	for _, ev := range c.evs {
		if ev.Kind == trace.KindBB {
			args = append(args, ev.Arg)
		}
	}
	if len(args) != 2 || args[0] != 100 || args[1] != 1 {
		t.Fatalf("block args = %v", args)
	}
	// The big block dominates the run's base cost.
	if res.BaseCost < 100*trace.CostUnit {
		t.Fatalf("BaseCost = %d", res.BaseCost)
	}
}
