package exec

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// countRunner runs every index once and records the commit order.
type countRunner struct {
	runs []atomic.Int32

	mu      sync.Mutex
	commits []int
	stopAt  int // commit returns false at this index; -1 = never
	onRun   func(ctx context.Context, idx int)
}

func newCountRunner(n int) *countRunner {
	return &countRunner{runs: make([]atomic.Int32, max(n, 1)), stopAt: -1}
}

func (r *countRunner) Dispatch(worker, idx int) Decision { return Decision{Job: idx} }

func (r *countRunner) Run(ctx context.Context, worker, idx int, job any) {
	if job.(int) != idx {
		panic("job does not carry its own index")
	}
	r.runs[idx].Add(1)
	if r.onRun != nil {
		r.onRun(ctx, idx)
	}
}

func (r *countRunner) Complete(idx int, job any) {}

func (r *countRunner) Commit(idx int, job any) bool {
	r.mu.Lock()
	r.commits = append(r.commits, idx)
	r.mu.Unlock()
	return idx != r.stopAt
}

func (r *countRunner) committed() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]int(nil), r.commits...)
}

func TestPoolRunsEveryIndexOnceCommitsInOrder(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		for _, n := range []int{1, 5, 100} {
			r := newCountRunner(n)
			// Stagger completion so out-of-order finishes actually occur.
			r.onRun = func(_ context.Context, idx int) {
				if idx%3 == 0 {
					time.Sleep(time.Microsecond)
				}
			}
			if err := Run(context.Background(), Config{Workers: workers, Budget: n}, r); err != nil {
				t.Fatalf("workers=%d n=%d: err = %v", workers, n, err)
			}
			for i := 0; i < n; i++ {
				if got := r.runs[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, got)
				}
			}
			commits := r.committed()
			if len(commits) != n {
				t.Fatalf("workers=%d n=%d: %d commits", workers, n, len(commits))
			}
			for i, idx := range commits {
				if idx != i {
					t.Fatalf("workers=%d n=%d: commit %d was index %d (not canonical)", workers, n, i, idx)
				}
			}
		}
	}
}

func TestPoolCommitStopIsFirstSuccess(t *testing.T) {
	const n, stop = 200, 17
	r := newCountRunner(n)
	r.stopAt = stop
	if err := Run(context.Background(), Config{Workers: 8, Budget: n}, r); err != nil {
		t.Fatalf("err = %v", err)
	}
	commits := r.committed()
	if len(commits) != stop+1 {
		t.Fatalf("committed %d results after a stop at %d, want %d", len(commits), stop, stop+1)
	}
	for i, idx := range commits {
		if idx != i {
			t.Fatalf("commit %d was index %d", i, idx)
		}
	}
}

func TestPoolCancelCommitsCompletedPrefix(t *testing.T) {
	// Cancel mid-run: no new indices dispatch, in-flight jobs finish,
	// their canonical prefix still commits in order, the ctx error is
	// returned, and Run's return proves the workers drained.
	const n = 1000
	ctx, cancel := context.WithCancel(context.Background())
	r := newCountRunner(n)
	var ran atomic.Int32
	r.onRun = func(ctx context.Context, idx int) {
		if ran.Add(1) == 20 {
			cancel()
		}
	}
	err := Run(ctx, Config{Workers: 4, Budget: n}, r)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	commits := r.committed()
	if len(commits) == 0 || len(commits) >= n {
		t.Fatalf("committed %d of %d after cancel", len(commits), n)
	}
	for i, idx := range commits {
		if idx != i {
			t.Fatalf("commit %d was index %d (prefix broken)", i, idx)
		}
	}
	// Every dispatched job ran to completion despite the cancel: the
	// commit drain never outruns the runs.
	if int(ran.Load()) < len(commits) {
		t.Fatalf("%d commits but only %d runs", len(commits), ran.Load())
	}
}

func TestPoolPreCancelledDispatchesNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := newCountRunner(10)
	if err := Run(ctx, Config{Workers: 4, Budget: 10}, r); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i := range r.runs {
		if r.runs[i].Load() != 0 {
			t.Fatalf("index %d ran after pre-cancel", i)
		}
	}
	if len(r.committed()) != 0 {
		t.Fatal("commits after pre-cancel")
	}
}

// waitRunner exercises the Wait decision: odd indices decline dispatch
// until the preceding even index has committed.
type waitRunner struct {
	countRunner
	done []atomic.Bool
}

func (r *waitRunner) Dispatch(worker, idx int) Decision {
	if idx%2 == 1 && !r.done[idx-1].Load() {
		return Decision{Wait: true}
	}
	return Decision{Job: idx}
}

func (r *waitRunner) Commit(idx int, job any) bool {
	r.done[idx].Store(true)
	return r.countRunner.Commit(idx, job)
}

func TestPoolWaitDecisionIsReoffered(t *testing.T) {
	const n = 40
	r := &waitRunner{countRunner: *newCountRunner(n), done: make([]atomic.Bool, n)}
	if err := Run(context.Background(), Config{Workers: 8, Budget: n}, r); err != nil {
		t.Fatalf("err = %v", err)
	}
	commits := r.committed()
	if len(commits) != n {
		t.Fatalf("%d commits, want %d", len(commits), n)
	}
}

func TestPoolMetricsInstruments(t *testing.T) {
	reg := obs.NewRegistry()
	active := reg.Gauge("test_workers_active")
	occ := reg.Histogram("test_occupancy", []float64{1, 2, 4, 8})
	r := newCountRunner(50)
	if err := Run(context.Background(), Config{
		Workers: 4, Budget: 50, Active: active, Occupancy: occ,
	}, r); err != nil {
		t.Fatalf("err = %v", err)
	}
	if got := active.Value(); got != 0 {
		t.Fatalf("active gauge = %v after Run returned, want 0", got)
	}
	if occ.Count() != 50 {
		t.Fatalf("occupancy observations = %d, want 50", occ.Count())
	}
}

func TestPoolAdaptiveStillRunsEverything(t *testing.T) {
	const n = 300
	r := newCountRunner(n)
	if err := Run(context.Background(), Config{Workers: 16, Budget: n, Adaptive: true}, r); err != nil {
		t.Fatalf("err = %v", err)
	}
	if len(r.committed()) != n {
		t.Fatalf("%d commits, want %d", len(r.committed()), n)
	}
}

// artifactRunner models the replay search's prefix-snapshot handoff:
// every Run publishes an immutable artifact for its index into a
// mutex-guarded store and consumes the deepest predecessor artifact
// already published, checksumming it to catch torn reads. Under -race
// this pins the visibility contract Run's doc promises: cross-job
// artifact flow through an internally synchronized container is safe
// at any width, and a one-worker pool always sees its immediate
// predecessor (strict alternation).
type artifactRunner struct {
	countRunner

	mu    sync.Mutex
	store map[int][]byte

	sawPred []atomic.Bool
}

func newArtifactRunner(n int) *artifactRunner {
	r := &artifactRunner{
		countRunner: *newCountRunner(n),
		store:       make(map[int][]byte),
		sawPred:     make([]atomic.Bool, n),
	}
	return r
}

func artifactFor(idx int) []byte {
	b := make([]byte, 64)
	for i := range b {
		b[i] = byte(idx*31 + i)
	}
	return b
}

func (r *artifactRunner) Run(ctx context.Context, worker, idx int, job any) {
	r.countRunner.Run(ctx, worker, idx, job)
	// Consume: deepest already-published predecessor, verified intact.
	r.mu.Lock()
	best := -1
	for i := idx - 1; i >= 0; i-- {
		if _, ok := r.store[i]; ok {
			best = i
			break
		}
	}
	var got []byte
	if best >= 0 {
		got = r.store[best] // shared slice: published-immutable
	}
	r.mu.Unlock()
	if best >= 0 {
		want := artifactFor(best)
		for i := range got {
			if got[i] != want[i] {
				panic("artifact torn or mutated after publication")
			}
		}
		if best == idx-1 {
			r.sawPred[idx].Store(true)
		}
	}
	// Publish this job's artifact; it must never be written again.
	r.mu.Lock()
	r.store[idx] = artifactFor(idx)
	r.mu.Unlock()
}

func TestPoolArtifactHandoff(t *testing.T) {
	const n = 200
	// Any width: publication through the synchronized store is safe and
	// intact (the -race build and the checksum enforce it).
	for _, workers := range []int{1, 2, 8} {
		r := newArtifactRunner(n)
		if err := Run(context.Background(), Config{Workers: workers, Budget: n}, r); err != nil {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if len(r.committed()) != n {
			t.Fatalf("workers=%d: %d commits, want %d", workers, len(r.committed()), n)
		}
		if workers == 1 {
			// Strict alternation: job i's publication is ordered before
			// job i+1's Run, so every job sees its immediate predecessor.
			for i := 1; i < n; i++ {
				if !r.sawPred[i].Load() {
					t.Fatalf("workers=1: job %d did not see job %d's artifact", i, i-1)
				}
			}
		}
	}
}
