// Package exec is the canonical-commit worker pool both engines of the
// replayer run on: core.Replay's work-stealing attempt search and the
// harness's experiment-cell fan-out. The pool owns everything generic
// about ordered parallel work — index dispatch, the strict in-order
// commit of results, cooperative context cancellation, and the
// adaptive occupancy controller — while the Runner callback owns what
// the work *is*. See INTERNALS.md for the layering.
package exec

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/obs"
)

// Decision is a Runner's answer to one dispatch offer.
type Decision struct {
	// Job is the work composed for this canonical index; the pool hands
	// it back verbatim to Run, Complete and Commit.
	Job any
	// Wait declines the offer until another in-flight job completes
	// (e.g. a directed slot waiting for in-flight feedback instead of
	// burning the index on speculation). A Runner may only return Wait
	// while at least one job is in flight — the completion's broadcast
	// is what re-offers the index.
	Wait bool
}

// Runner is the work a pool executes. Dispatch, Complete and Commit
// are called under the pool's mutex — they may touch shared search
// state without further locking, and must not block. Run is called
// without the lock and does the actual work.
type Runner interface {
	// Dispatch composes the job for canonical index idx, offered to the
	// given worker. The index is consumed unless the decision is Wait.
	Dispatch(worker, idx int) Decision
	// Run executes one job. ctx is the pool's context; long work should
	// observe it so cancellation drains promptly.
	Run(ctx context.Context, worker, idx int, job any)
	// Complete records a job's completion in completion order, before
	// the commit drain — bookkeeping that must not wait for canonical
	// order (in-flight counts, advisory hints).
	Complete(idx int, job any)
	// Commit folds one finished job into the result, called strictly in
	// canonical index order. Returning false stops the pool: no further
	// indices dispatch and no later results commit (first-success
	// semantics).
	Commit(idx int, job any) bool
}

// Config parameterizes one pool run.
type Config struct {
	// Workers is the pool width; values below 1 mean 1. A one-worker
	// pool degenerates to a strict dispatch-run-commit alternation —
	// byte-identical to a sequential loop.
	Workers int
	// Budget is the number of canonical indices to dispatch (required,
	// > 0): indices 0..Budget-1 unless a Commit stops the pool early.
	Budget int
	// Adaptive lets the pool shrink and regrow its live-worker target
	// between 1 and Workers, driven by an EWMA of the dispatch-time
	// occupancy, clamped to GOMAXPROCS+1 — for compute-bound work,
	// more in-flight jobs than cores only preempt one another.
	Adaptive bool
	// Active, when non-nil, tracks the in-flight job count (a gauge the
	// caller names; nil-safe). Occupancy, when non-nil, receives the
	// dispatch-time occupancy samples the adaptive controller consumes.
	Active    *obs.Gauge
	Occupancy *obs.Histogram
}

// Run executes cfg.Budget canonical indices over r and blocks until
// every worker has drained. On context cancellation no new indices
// dispatch, in-flight jobs are left to finish (observing ctx), their
// already-completed canonical prefix still commits in order, and the
// context's error is returned — the pool never leaks a goroutine.
// A nil error means the run ended by budget or by a Commit stop.
//
// Memory visibility (the snapshot-handoff contract): within one job,
// the pool's mutex orders Dispatch → Run → Complete → Commit, so a
// job's Run sees everything its Dispatch composed and its Commit sees
// everything its Run wrote. Across jobs the pool promises nothing
// about Run-to-Run ordering at Workers > 1 — two Runs may be fully
// concurrent — so artifacts one Run publishes for another (e.g. the
// replay search's prefix snapshots) must flow through a container
// that synchronizes internally; the publishing Run must treat an
// artifact as immutable once shared. At Workers: 1 the strict
// dispatch-run-commit alternation does order every effect of job i
// before job i+1's Dispatch, which is what lets a one-worker search
// consume artifacts published earlier in the same run as if it were a
// sequential loop. TestPoolArtifactHandoff pins both halves.
func Run(ctx context.Context, cfg Config, r Runner) error {
	if cfg.Budget <= 0 {
		return ctx.Err()
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > cfg.Budget {
		workers = cfg.Budget
	}
	p := &pool{
		cfg:     cfg,
		ctx:     ctx,
		r:       r,
		workers: workers,
		target:  workers,
		pending: make(map[int]any),
	}
	p.cond = sync.NewCond(&p.mu)
	if cfg.Adaptive && workers > 2 {
		// Start mid-pool and let the occupancy signal grow or shrink it.
		p.target = (workers + 1) / 2
	}
	if t := p.hwClamp(p.target); t < p.target {
		p.target = t
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p.worker(id)
		}(w)
	}
	wg.Wait()
	return p.err
}

// pool is the shared state of one Run. mu orders everything canonical:
// index dispatch, the in-order commit drain, and the adaptive
// controller — the same single-lock discipline the Runner's callbacks
// piggyback on for their own shared state.
type pool struct {
	cfg     Config
	ctx     context.Context
	r       Runner
	workers int

	mu         sync.Mutex
	cond       *sync.Cond
	next       int // next canonical index to dispatch
	commitNext int // next canonical index to commit
	pending    map[int]any
	stopped    bool  // a Commit returned false; stop dispatch and commits
	err        error // ctx error observed by dispatch; stops dispatch only
	active     int   // jobs currently in flight
	target     int   // adaptive live-worker target
	occ        float64
	occInit    bool
}

func (p *pool) worker(id int) {
	for {
		idx, job, ok := p.dispatch(id)
		if !ok {
			return
		}
		p.r.Run(p.ctx, id, idx, job)
		p.complete(idx, job)
	}
}

// dispatch reserves the next canonical index and asks the Runner to
// compose its job. Returns ok=false when the run is over: budget
// dispatched, a Commit stopped the pool, or the context was cancelled.
// Workers whose id exceeds the adaptive target park here until
// retuned; a Wait decision parks until another job completes. Every
// park is woken by a completion's broadcast — a Runner may only Wait
// while something is in flight, and a cancelled in-flight execution
// observes ctx at its next scheduling point, so the pool always
// drains.
func (p *pool) dispatch(id int) (int, any, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.err == nil {
			if err := p.ctx.Err(); err != nil {
				p.err = err
			}
		}
		if p.stopped || p.err != nil || p.next >= p.cfg.Budget {
			return 0, nil, false
		}
		if id >= p.target {
			p.cond.Wait()
			continue
		}
		d := p.r.Dispatch(id, p.next)
		if d.Wait {
			p.cond.Wait()
			continue
		}
		idx := p.next
		p.next++
		p.active++
		p.observeOccupancyLocked()
		return idx, d.Job, true
	}
}

// complete hands a finished job to the committer: results commit
// strictly in canonical index order, so whichever worker completes the
// next-in-order job drains everything contiguous behind it. The drain
// runs even after cancellation — already-completed work still commits;
// only *new* dispatch stops.
func (p *pool) complete(idx int, job any) {
	p.mu.Lock()
	p.active--
	p.cfg.Active.Set(float64(p.active))
	p.r.Complete(idx, job)
	p.pending[idx] = job
	for !p.stopped {
		nj, ok := p.pending[p.commitNext]
		if !ok {
			break
		}
		delete(p.pending, p.commitNext)
		p.commitNext++
		if !p.r.Commit(p.commitNext-1, nj) {
			p.stopped = true
		}
	}
	p.retuneLocked()
	p.mu.Unlock()
	// Wake parked workers (the target may have grown), Wait decisions
	// pending on this completion, and dispatchers behind a stop.
	p.cond.Broadcast()
}

// observeOccupancyLocked samples how many jobs are in flight at
// dispatch time — the signal the adaptive controller and the
// caller's occupancy histogram consume.
func (p *pool) observeOccupancyLocked() {
	p.cfg.Occupancy.Observe(float64(p.active))
	p.cfg.Active.Set(float64(p.active))
	if !p.occInit {
		p.occ = float64(p.active)
		p.occInit = true
		return
	}
	p.occ = 0.8*p.occ + 0.2*float64(p.active)
}

// retuneLocked is the adaptive controller: saturated occupancy grows
// the target toward Workers, sustained idleness shrinks it toward 1,
// and the target never exceeds the indices still left in the budget.
// Without Adaptive the target stays pinned (modulo the budget clamp,
// which is free parallelism hygiene either way).
func (p *pool) retuneLocked() {
	t := p.workers
	if p.cfg.Adaptive {
		t = p.target
		switch {
		case p.occ >= 0.75*float64(p.target) && p.target < p.workers:
			t = p.target + 1
		case p.occ < 0.4*float64(p.target) && p.target > 1:
			t = p.target - 1
		}
		t = p.hwClamp(t)
	}
	if remaining := p.cfg.Budget - p.next; remaining >= 1 && t > remaining {
		t = remaining
	}
	if t < 1 {
		t = 1
	}
	p.target = t
}

// hwClamp bounds an adaptive target by the host's schedulable CPUs;
// the +1 keeps one successor warm behind the running set. Fixed-size
// pools honor the caller's Workers choice untouched.
func (p *pool) hwClamp(t int) int {
	if !p.cfg.Adaptive {
		return t
	}
	if hw := runtime.GOMAXPROCS(0) + 1; t > hw {
		return hw
	}
	return t
}
