package sketch

import (
	"bytes"
	"slices"
	"testing"

	"repro/internal/trace"
)

// sealTransfers feeds a globally ordered event stream to r, sealing at
// every TID change and once at the end — the scheduler's epoch
// discipline, reproduced inline.
func sealTransfers(r *ShardRecorder, evs []trace.Event) (cost uint64) {
	last := trace.NoTID
	for _, ev := range evs {
		if last != trace.NoTID && last != ev.TID {
			cost += r.OnEpochSeal(last)
		}
		cost += r.OnEvent(ev)
		last = ev.TID
	}
	if last != trace.NoTID {
		cost += r.OnEpochSeal(last)
	}
	return cost
}

func interleavedEvents() []trace.Event {
	return []trace.Event{
		{TID: 0, Kind: trace.KindLock, Obj: 1},
		{TID: 0, Kind: trace.KindLoad, Obj: 9}, // not recorded by SYNC
		{TID: 0, Kind: trace.KindUnlock, Obj: 1},
		{TID: 1, Kind: trace.KindLock, Obj: 1},
		{TID: 1, Kind: trace.KindUnlock, Obj: 1},
		{TID: 0, Kind: trace.KindLock, Obj: 2},
		{TID: 2, Kind: trace.KindBB, Obj: 7}, // not recorded by SYNC
		{TID: 0, Kind: trace.KindUnlock, Obj: 2},
		{TID: 0, Kind: trace.KindJoin, Obj: 1},
	}
}

// TestShardRecorderMatchesGlobalRecorder: under the epoch discipline,
// the per-thread recorder's merged log is entry- and byte-identical to
// the global recorder's, and its bookkeeping (TotalOps, Records)
// matches.
func TestShardRecorderMatchesGlobalRecorder(t *testing.T) {
	evs := interleavedEvents()
	global := NewRecorder(SYNC)
	for _, ev := range evs {
		global.OnEvent(ev)
	}
	shard := NewShardRecorder(SYNC)
	sealTransfers(shard, evs)
	g, m := global.Log(), shard.Log()
	if g.Scheme != m.Scheme || g.TotalOps != m.TotalOps || g.Records != m.Records {
		t.Fatalf("bookkeeping differs: global %q/%d/%d, merged %q/%d/%d",
			g.Scheme, g.TotalOps, g.Records, m.Scheme, m.TotalOps, m.Records)
	}
	if !slices.Equal(g.Entries, m.Entries) {
		t.Fatalf("entries differ:\nglobal: %v\nmerged: %v", g.Entries, m.Entries)
	}
	var gb, mb bytes.Buffer
	if err := trace.EncodeSketch(&gb, g); err != nil {
		t.Fatal(err)
	}
	if err := trace.EncodeSketch(&mb, m); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gb.Bytes(), mb.Bytes()) {
		t.Fatal("encoded bytes differ between global and merged logs")
	}
	if shard.Log() != m {
		t.Fatal("Log() not memoized")
	}
}

// TestShardRecorderSealAccounting: seals that publish nothing (the
// thread recorded nothing this epoch, or never recorded at all) are
// free and uncounted; non-empty seals cost EpochSealCost each and feed
// Seals()/HighWater().
func TestShardRecorderSealAccounting(t *testing.T) {
	r := NewShardRecorder(SYNC)
	if got := r.OnEpochSeal(5); got != 0 {
		t.Fatalf("seal of never-seen thread cost %d", got)
	}
	r.OnEvent(trace.Event{TID: 1, Kind: trace.KindLoad, Obj: 9}) // filtered out
	if got := r.OnEpochSeal(1); got != 0 || r.Seals() != 0 {
		t.Fatalf("empty-epoch seal cost %d, seals %d; want free and uncounted", got, r.Seals())
	}
	r.OnEvent(trace.Event{TID: 1, Kind: trace.KindLock, Obj: 1})
	r.OnEvent(trace.Event{TID: 1, Kind: trace.KindUnlock, Obj: 1})
	if got := r.OnEpochSeal(1); got != EpochSealCost {
		t.Fatalf("seal cost %d, want %d", got, EpochSealCost)
	}
	r.OnEvent(trace.Event{TID: 1, Kind: trace.KindLock, Obj: 2})
	r.OnEpochSeal(1)
	if r.Seals() != 2 || r.HighWater() != 2 || r.Shards() != 1 {
		t.Fatalf("seals=%d highwater=%d shards=%d, want 2/2/1", r.Seals(), r.HighWater(), r.Shards())
	}
}

// TestShardRecorderEventCosts: recorded events charge the local append
// cost, filtered events only the dispatch — and the per-record gap
// versus the global recorder is RecordCost-LocalRecordCost.
func TestShardRecorderEventCosts(t *testing.T) {
	r := NewShardRecorder(SYNC)
	if got := r.OnEvent(trace.Event{TID: 0, Kind: trace.KindLoad}); got != FilterCost {
		t.Fatalf("filtered event cost %d, want %d", got, FilterCost)
	}
	if got := r.OnEvent(trace.Event{TID: 0, Kind: trace.KindLock, Obj: 1}); got != FilterCost+LocalRecordCost {
		t.Fatalf("recorded event cost %d, want %d", got, FilterCost+LocalRecordCost)
	}
	if LocalRecordCost >= RecordCost {
		t.Fatalf("LocalRecordCost (%d) must undercut RecordCost (%d)", LocalRecordCost, RecordCost)
	}
}

// TestShardAppendAllocFree is the per-thread append allocation gate:
// once a run's reservation is in place (OnRunStart), every OnEvent of
// the run — filter, weight, shard lookup, append — is 0 allocs/op,
// matching the claim that the thread-local fast path never touches
// the allocator.
func TestShardAppendAllocFree(t *testing.T) {
	r := NewShardRecorder(RW)
	// First touch creates the shard and byTID table outside the
	// measured window, as OnRunStart does at the start of a run.
	r.OnRunStart(3, 4096)
	ev := trace.Event{TID: 3, Kind: trace.KindStore, Obj: 42}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		ev.Obj = uint64(i)
		i++
		r.OnEvent(ev)
	})
	if allocs != 0 {
		t.Fatalf("thread-local append allocated %.2f objects/op; want 0", allocs)
	}
}
