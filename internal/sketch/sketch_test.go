package sketch

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/ssync"
	"repro/internal/trace"
	"repro/internal/vsys"
)

func TestStringParseRoundTrip(t *testing.T) {
	for _, s := range All() {
		got, err := Parse(s.String())
		if err != nil || got != s {
			t.Fatalf("Parse(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := Parse("sync"); err != nil {
		t.Fatal("Parse should be case-insensitive")
	}
	if _, err := Parse("NOPE"); err == nil {
		t.Fatal("Parse should reject unknown names")
	}
}

func TestRecordsFilters(t *testing.T) {
	cases := []struct {
		scheme Scheme
		kind   trace.Kind
		want   bool
	}{
		{BASE, trace.KindLock, false},
		{BASE, trace.KindSyscall, false},
		{SYNC, trace.KindLock, true},
		{SYNC, trace.KindBarrier, true},
		{SYNC, trace.KindLoad, false},
		{SYNC, trace.KindSyscall, false},
		{SYS, trace.KindSyscall, true},
		{SYS, trace.KindSpawn, true},
		{SYS, trace.KindLock, false},
		{FUNC, trace.KindFuncEnter, true},
		{FUNC, trace.KindFuncExit, true},
		{FUNC, trace.KindBB, false},
		{BB, trace.KindBB, true},
		{BB, trace.KindFuncEnter, false},
		{RW, trace.KindLoad, true},
		{RW, trace.KindStore, true},
		{RW, trace.KindLock, true},
		{RW, trace.KindSyscall, true},
		{RW, trace.KindBB, true}, // blocks carry the private accesses RW must pay for
		{RW, trace.KindYield, false},
	}
	for _, c := range cases {
		if got := c.scheme.Records(c.kind); got != c.want {
			t.Errorf("%v.Records(%v) = %v, want %v", c.scheme, c.kind, got, c.want)
		}
	}
}

// mixedProgram exercises every event class once or more.
func mixedProgram(th *sched.Thread) {
	w := vsys.NewWorld(1)
	m := ssync.NewMutex("m")
	x := mem.NewCell("x", 0)
	child := th.Spawn("c", func(ct *sched.Thread) {
		m.Lock(ct)
		x.Store(ct, 1)
		m.Unlock(ct)
	})
	m.Lock(th)
	x.Load(th)
	m.Unlock(th)
	w.Now(th)
	th.Join(child)
}

func record(t *testing.T, s Scheme) *Recorder {
	t.Helper()
	r := NewRecorder(s)
	res := sched.Run(mixedProgram, sched.Config{
		Strategy:  sched.Lowest{},
		Observers: []sched.Observer{r},
	})
	if res.Failure != nil {
		t.Fatalf("%v: %v", s, res.Failure)
	}
	return r
}

func TestRecorderFiltersByScheme(t *testing.T) {
	base := record(t, BASE)
	if base.Log().Len() != 0 {
		t.Fatalf("BASE recorded %d entries", base.Log().Len())
	}
	syncR := record(t, SYNC)
	for _, e := range syncR.Log().Entries {
		if !e.Kind.IsSync() {
			t.Fatalf("SYNC log has %v", e.Kind)
		}
	}
	if syncR.Log().Len() == 0 {
		t.Fatal("SYNC recorded nothing")
	}
	sysR := record(t, SYS)
	foundNow := false
	for _, e := range sysR.Log().Entries {
		if e.Kind == trace.KindSyscall {
			foundNow = true
		}
	}
	if !foundNow {
		t.Fatal("SYS log missing the syscall")
	}
	rw := record(t, RW)
	if rw.Log().Len() <= syncR.Log().Len() {
		t.Fatal("RW should record strictly more than SYNC here")
	}
}

func TestRecorderTotalOpsAndDensity(t *testing.T) {
	r := record(t, SYNC)
	l := r.Log()
	if l.TotalOps == 0 {
		t.Fatal("TotalOps not counted")
	}
	if uint64(l.Len()) > l.TotalOps {
		t.Fatal("recorded more entries than ops")
	}
	d := Density(l)
	if d <= 0 || d > 1 {
		t.Fatalf("density = %v", d)
	}
	if Density(&trace.SketchLog{}) != 0 {
		t.Fatal("empty log density should be 0")
	}
}

func TestRecorderChargesCost(t *testing.T) {
	r := NewRecorder(RW)
	res := sched.Run(mixedProgram, sched.Config{
		Strategy:  sched.Lowest{},
		Observers: []sched.Observer{r},
	})
	if res.Failure != nil {
		t.Fatal(res.Failure)
	}
	want := r.Log().Records*RecordCost + r.Log().TotalOps*FilterCost
	if res.ExtraCost != want {
		t.Fatalf("ExtraCost = %d, want %d", res.ExtraCost, want)
	}

	// BASE pays only the instrumentation filter.
	rb := NewRecorder(BASE)
	resB := sched.Run(mixedProgram, sched.Config{
		Strategy:  sched.Lowest{},
		Observers: []sched.Observer{rb},
	})
	if resB.ExtraCost != rb.Log().TotalOps*FilterCost {
		t.Fatalf("BASE ExtraCost = %d, want filter only", resB.ExtraCost)
	}
}

func TestOverheadOrdering(t *testing.T) {
	// The schemes' modelled overheads must be monotone:
	// BASE = 0 <= SYS,SYNC <= RW on this mixed workload.
	overhead := func(s Scheme) float64 {
		r := NewRecorder(s)
		res := sched.Run(mixedProgram, sched.Config{
			Strategy:  sched.Lowest{},
			Observers: []sched.Observer{r},
		})
		if res.Failure != nil {
			t.Fatalf("%v: %v", s, res.Failure)
		}
		return res.Overhead()
	}
	if b := overhead(BASE); b <= 0 || b > overhead(SYNC) {
		t.Fatalf("BASE overhead %v must be positive (substrate) and below SYNC", b)
	}
	if !(overhead(SYNC) < overhead(RW)) {
		t.Fatal("SYNC overhead must be below RW")
	}
}

func TestWeight(t *testing.T) {
	block := trace.Event{Kind: trace.KindBB, Arg: 500}
	if got := RW.Weight(block); got != 500 {
		t.Fatalf("RW block weight = %d, want 500", got)
	}
	if got := BB.Weight(block); got != 1 {
		t.Fatalf("BB block weight = %d, want 1", got)
	}
	if got := SYNC.Weight(block); got != 0 {
		t.Fatalf("SYNC block weight = %d, want 0", got)
	}
	if got := RW.Weight(trace.Event{Kind: trace.KindBB}); got != 1 {
		t.Fatalf("RW zero-arg block weight = %d, want 1", got)
	}
	if got := RW.Weight(trace.Event{Kind: trace.KindStore}); got != 1 {
		t.Fatalf("RW store weight = %d, want 1", got)
	}
}

func TestRecorderWeightedCost(t *testing.T) {
	r := NewRecorder(RW)
	extra := r.OnEvent(trace.Event{Kind: trace.KindBB, Arg: 100})
	if extra != 100*RecordCost+FilterCost {
		t.Fatalf("block extra cost = %d, want %d", extra, 100*RecordCost+FilterCost)
	}
	if r.Log().Records != 100 || r.Log().Len() != 1 {
		t.Fatalf("records=%d entries=%d", r.Log().Records, r.Log().Len())
	}
}

func TestEncodedSize(t *testing.T) {
	r := record(t, SYNC)
	n := EncodedSize(r.Log())
	if n <= 0 {
		t.Fatal("encoded size must be positive")
	}
	empty := EncodedSize(&trace.SketchLog{Scheme: "BASE"})
	if n <= empty {
		t.Fatal("non-empty log should encode larger than empty")
	}
}

func TestInputEncodedSize(t *testing.T) {
	l := &trace.InputLog{}
	l.Append(trace.InputRecord{TID: 0, Call: vsys.CallRand, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}})
	if InputEncodedSize(l) <= InputEncodedSize(&trace.InputLog{}) {
		t.Fatal("input size accounting broken")
	}
}

func TestHybridScheme(t *testing.T) {
	if !HYBRID.Records(trace.KindLock) || !HYBRID.Records(trace.KindSyscall) {
		t.Fatal("HYBRID must record both sync and syscalls")
	}
	if HYBRID.Records(trace.KindLoad) || HYBRID.Records(trace.KindBB) {
		t.Fatal("HYBRID must not record memory or blocks")
	}
	if s, err := Parse("hybrid"); err != nil || s != HYBRID {
		t.Fatalf("Parse(hybrid) = %v, %v", s, err)
	}
	for _, s := range All() {
		if s == HYBRID {
			t.Fatal("HYBRID must not be in the paper's scheme list")
		}
	}
	found := false
	for _, s := range Extended() {
		if s == HYBRID {
			found = true
		}
	}
	if !found {
		t.Fatal("HYBRID missing from Extended()")
	}
}
