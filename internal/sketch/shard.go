package sketch

import "repro/internal/trace"

// ShardRecorder is the per-thread-log production-run observer
// (Options.PerThreadLog): each recorded thread appends to its own
// trace.SketchShard without touching a global log, and the scheduler's
// epoch seam (sched.EpochObserver) seals the open shard at every
// control transfer, publishing its entries as the next chunk of the
// global seal order. Log merges the chunks back into canonical global
// order once, at encode time — the result is entry- and
// byte-identical to what the global-log Recorder of the same
// execution produces (pinned by TestPropPerThreadLogEquivalence), but
// the modelled per-record cost drops from RecordCost to
// LocalRecordCost, with EpochSealCost paid once per context switch.
type ShardRecorder struct {
	scheme  Scheme
	sharded *trace.ShardedSketch
	// byTID maps TID -> shard index + 1 (0 = no shard yet), dense so
	// the per-event lookup is an index, not a map probe.
	byTID     []int32
	seals     uint64
	highWater int
	merged    *trace.SketchLog // memoized Log() result
}

// NewShardRecorder returns a per-thread recorder for one scheme.
func NewShardRecorder(s Scheme) *ShardRecorder {
	return &ShardRecorder{
		scheme:  s,
		sharded: &trace.ShardedSketch{Scheme: s.String()},
	}
}

// Scheme returns the recorder's scheme.
func (r *ShardRecorder) Scheme() Scheme { return r.scheme }

// shardFor returns tid's shard index, creating the shard on first use.
func (r *ShardRecorder) shardFor(tid trace.TID) int {
	for int(tid) >= len(r.byTID) {
		r.byTID = append(r.byTID, 0)
	}
	if i := r.byTID[tid]; i != 0 {
		return int(i - 1)
	}
	i, _ := r.sharded.NewShard(tid)
	r.byTID[tid] = int32(i + 1)
	return i
}

// OnEvent implements sched.Observer: sketch-relevant events append to
// the committing thread's own shard; the charged cost is the local
// append, with no global-sequence claim.
func (r *ShardRecorder) OnEvent(ev trace.Event) uint64 {
	r.sharded.TotalOps++
	w := r.scheme.Weight(ev)
	if w == 0 {
		return FilterCost
	}
	r.sharded.Shards[r.shardFor(ev.TID)].Append(ev)
	r.sharded.Records += w
	return FilterCost + LocalRecordCost*w
}

// OnRunStart implements sched.RunObserver: reserve the granted run's
// worst case in the granted thread's shard, so the per-commit Append
// never reallocates mid-run.
func (r *ShardRecorder) OnRunStart(tid trace.TID, n int) {
	r.sharded.Shards[r.shardFor(tid)].Reserve(n)
}

// OnEpochSeal implements sched.EpochObserver: publish tid's unsealed
// entries as the next chunk of the global seal order. A seal that
// publishes nothing (the thread recorded nothing this epoch — common
// under sparse schemes) is free: no chunk, no modelled cost.
func (r *ShardRecorder) OnEpochSeal(tid trace.TID) uint64 {
	if int(tid) >= len(r.byTID) || r.byTID[tid] == 0 {
		return 0 // thread never recorded anything
	}
	i := int(r.byTID[tid] - 1)
	n := r.sharded.Seal(i)
	if n == 0 {
		return 0
	}
	r.seals++
	if n > r.highWater {
		r.highWater = n
	}
	return EpochSealCost
}

// Seals returns the number of non-empty epoch seals performed.
func (r *ShardRecorder) Seals() uint64 { return r.seals }

// Shards returns the number of per-thread shards created (threads that
// recorded at least one entry).
func (r *ShardRecorder) Shards() int { return len(r.sharded.Shards) }

// HighWater returns the largest number of entries any single seal
// published — the high-water mark of a thread-local buffer's unsealed
// suffix, i.e. how much memory the epoch discipline lets accumulate
// outside the global order.
func (r *ShardRecorder) HighWater() int { return r.highWater }

// Log merges the sealed chunks into the canonical globally ordered
// sketch log (merge-on-encode; see DESIGN.md). The merge is performed
// once and memoized — callers after the run may ask repeatedly
// (encode, size accounting, replay seeding) and share one log.
func (r *ShardRecorder) Log() *trace.SketchLog {
	if r.merged == nil {
		r.merged = r.sharded.Merge()
	}
	return r.merged
}
