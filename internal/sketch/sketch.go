// Package sketch implements PRES's execution sketching mechanisms: the
// production-run recorders that log a chosen subsequence of the global
// event order. The paper's five mechanisms plus the baseline:
//
//	BASE — nothing but non-deterministic inputs (handled by vsys)
//	SYNC — global order of synchronization operations
//	SYS  — global order of system calls (incl. thread lifecycle)
//	FUNC — global order of function entries/exits
//	BB   — global order of basic-block boundaries
//	RW   — global order of all shared-memory accesses (prior work's
//	       full recording; the overhead baseline PRES is compared to)
//
// A Recorder is a sched.Observer: it filters events by scheme and
// charges the modelled per-record cost against the production run, which
// is how the overhead experiments (E2/E7) measure each scheme.
package sketch

import (
	"fmt"
	"strings"

	"repro/internal/trace"
)

// Scheme selects a sketching mechanism.
type Scheme int

// The schemes, ordered from cheapest to most complete.
const (
	BASE Scheme = iota
	SYNC
	SYS
	FUNC
	BB
	RW
	// HYBRID records the union of SYNC and SYS — an extension beyond
	// the paper's five mechanisms: for roughly the sum of two tiny
	// overheads it pins both the synchronization order and the
	// system-call order, closing the gaps each leaves alone.
	HYBRID
	numSchemes
)

// All lists the paper's mechanisms, cheapest first (HYBRID, this
// reproduction's extension, is excluded so the regenerated tables match
// the paper's columns; see Extended).
func All() []Scheme { return []Scheme{BASE, SYNC, SYS, FUNC, BB, RW} }

// Extended lists every mechanism including the HYBRID extension.
func Extended() []Scheme { return append(All(), HYBRID) }

// String returns the scheme's canonical upper-case name.
func (s Scheme) String() string {
	switch s {
	case BASE:
		return "BASE"
	case SYNC:
		return "SYNC"
	case SYS:
		return "SYS"
	case FUNC:
		return "FUNC"
	case BB:
		return "BB"
	case RW:
		return "RW"
	case HYBRID:
		return "HYBRID"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Parse converts a scheme name (case-insensitive) back to a Scheme.
func Parse(name string) (Scheme, error) {
	for _, s := range Extended() {
		if strings.EqualFold(s.String(), name) {
			return s, nil
		}
	}
	return 0, fmt.Errorf("sketch: unknown scheme %q", name)
}

// Records reports whether the scheme logs events of kind k.
func (s Scheme) Records(k trace.Kind) bool {
	switch s {
	case BASE:
		return false
	case SYNC:
		return k.IsSync()
	case SYS:
		return k.IsSyscall()
	case HYBRID:
		return k.IsSync() || k.IsSyscall()
	case FUNC:
		return k == trace.KindFuncEnter || k == trace.KindFuncExit
	case BB:
		return k == trace.KindBB
	case RW:
		// Binary instrumentation cannot tell private accesses from
		// shared ones, so full memory-order recording also pays for
		// every access inside straight-line blocks (see Weight).
		return k.IsMemory() || k.IsSync() || k.IsSyscall() || k == trace.KindBB
	default:
		return false
	}
}

// Weight returns how many log records the event represents for the
// scheme: a straight-line block of n private accesses costs the RW
// recorder n records (one per access), while every other recorded event
// is a single record. BB entries in an RW sketch are stored run-length
// (one entry representing n accesses), so the in-memory log stays
// small; the production-run cost is charged in full.
func (s Scheme) Weight(ev trace.Event) uint64 {
	if !s.Records(ev.Kind) {
		return 0
	}
	if s == RW && ev.Kind == trace.KindBB {
		return max(ev.Arg, 1)
	}
	return 1
}

// RecordCost is the modelled logical cost of appending one record to
// the globally ordered sketch log during the production run: the
// synchronized claim of a global sequence number (a contended atomic
// increment plus the cache-line transfer) and the log write — on the
// order of tens of simple instructions, so 15 access-times.
const RecordCost = 15 * trace.CostUnit

// FilterCost is the per-instrumentation-point cost of the recording
// substrate itself — the inlined "do I record this?" dispatch every
// scheme (including BASE) pays at every point, about one access-time.
// It is what puts a floor under the cheap schemes' overhead and bounds
// the achievable reduction versus RW, exactly as the binary-
// instrumentation substrate did on the paper's testbed.
const FilterCost = trace.CostUnit

// LocalRecordCost is the modelled cost of appending one record to a
// thread-local sketch shard (Options.PerThreadLog): no global sequence
// claim, no shared cache line — just the local buffer write and a
// counter bump, a few access-times instead of RecordCost's 15.
const LocalRecordCost = 4 * trace.CostUnit

// EpochSealCost is the modelled cost of one epoch seal under
// per-thread logging: the synchronization that publishes a thread's
// local chunk into the global seal order (a fence plus a shared
// append). It is paid once per context switch rather than once per
// record, so dense sketches amortize it over whole runs — the
// per-thread log's whole point. For very sparse sketches (one record
// per epoch) LocalRecordCost+EpochSealCost can exceed RecordCost; the
// global log stays the better model there, which is why PerThreadLog
// is an option and not the default.
const EpochSealCost = 25 * trace.CostUnit

// Recorder is the production-run observer for one scheme.
type Recorder struct {
	scheme Scheme
	log    *trace.SketchLog
}

// NewRecorder returns a recorder appending to a fresh sketch log.
func NewRecorder(s Scheme) *Recorder {
	return &Recorder{scheme: s, log: &trace.SketchLog{Scheme: s.String()}}
}

// Scheme returns the recorder's scheme.
func (r *Recorder) Scheme() Scheme { return r.scheme }

// Log returns the sketch log accumulated so far.
func (r *Recorder) Log() *trace.SketchLog { return r.log }

// OnRunStart implements sched.RunObserver: a granted multi-step run
// will append at most n entries, so the log reserves them up front and
// the per-commit Append never reallocates mid-run. The global log is
// shared by all threads, so tid is unused here (the per-thread
// ShardRecorder reserves in tid's shard).
func (r *Recorder) OnRunStart(_ trace.TID, n int) { r.log.Reserve(n) }

// OnEvent implements sched.Observer: it logs sketch-relevant events and
// charges the record cost against the run.
func (r *Recorder) OnEvent(ev trace.Event) uint64 {
	r.log.TotalOps++
	w := r.scheme.Weight(ev)
	if w == 0 {
		return FilterCost
	}
	r.log.Append(ev)
	r.log.Records += w
	return FilterCost + RecordCost*w
}

// countingWriter measures encoded bytes without buffering them.
type countingWriter struct{ n int }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

// EncodedSize returns the byte size of the sketch log in the on-disk
// format — the "log size" metric of experiment E3.
func EncodedSize(l *trace.SketchLog) int {
	var w countingWriter
	if err := trace.EncodeSketch(&w, l); err != nil {
		// The counting writer never fails; an error here is a bug.
		panic(fmt.Sprintf("sketch: encode failed: %v", err))
	}
	return w.n
}

// InputEncodedSize returns the byte size of an input log in the on-disk
// format; inputs are charged to every scheme including BASE.
func InputEncodedSize(l *trace.InputLog) int {
	var w countingWriter
	if err := trace.EncodeInput(&w, l); err != nil {
		panic(fmt.Sprintf("sketch: encode failed: %v", err))
	}
	return w.n
}

// Density returns recorded entries per total instrumented operation —
// the quantity that determines each scheme's overhead.
func Density(l *trace.SketchLog) float64 {
	if l.TotalOps == 0 {
		return 0
	}
	return float64(len(l.Entries)) / float64(l.TotalOps)
}
