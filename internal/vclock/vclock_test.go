package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZeroValueHappensBeforeTicked(t *testing.T) {
	var zero VC
	v := New(3).Tick(0)
	if !zero.HappensBefore(v) {
		t.Fatalf("zero clock should happen before %v", v)
	}
	if v.HappensBefore(zero) {
		t.Fatalf("%v should not happen before zero clock", v)
	}
}

func TestTickAdvances(t *testing.T) {
	v := New(2)
	v = v.Tick(1)
	if got := v.Get(1); got != 1 {
		t.Fatalf("Get(1) = %d, want 1", got)
	}
	if got := v.Get(0); got != 0 {
		t.Fatalf("Get(0) = %d, want 0", got)
	}
}

func TestTickGrows(t *testing.T) {
	v := New(1)
	v = v.Tick(5)
	if len(v) != 6 {
		t.Fatalf("len = %d, want 6", len(v))
	}
	if v.Get(5) != 1 {
		t.Fatalf("Get(5) = %d, want 1", v.Get(5))
	}
}

func TestGetOutOfRange(t *testing.T) {
	v := New(2)
	if v.Get(-1) != 0 || v.Get(10) != 0 {
		t.Fatal("out-of-range Get should be 0")
	}
}

func TestJoinTakesMax(t *testing.T) {
	a := VC{1, 5, 0}
	b := VC{3, 2}
	j := a.Clone().Join(b)
	want := VC{3, 5, 0}
	if !j.Equal(want) {
		t.Fatalf("join = %v, want %v", j, want)
	}
}

func TestHappensBeforeStrict(t *testing.T) {
	a := VC{1, 2}
	if a.HappensBefore(a) {
		t.Fatal("clock must not happen before itself")
	}
	b := VC{1, 3}
	if !a.HappensBefore(b) {
		t.Fatalf("%v should happen before %v", a, b)
	}
	if b.HappensBefore(a) {
		t.Fatalf("%v should not happen before %v", b, a)
	}
}

func TestConcurrent(t *testing.T) {
	a := VC{2, 0}
	b := VC{0, 2}
	if !a.Concurrent(b) || !b.Concurrent(a) {
		t.Fatalf("%v and %v should be concurrent", a, b)
	}
	if a.Concurrent(a) {
		t.Fatal("a clock is not concurrent with itself")
	}
}

func TestCompare(t *testing.T) {
	a := VC{1, 0}
	b := VC{1, 1}
	if a.Compare(b) != -1 || b.Compare(a) != 1 {
		t.Fatal("Compare ordering wrong")
	}
	c := VC{0, 2}
	if a.Compare(c) != 0 {
		t.Fatal("concurrent clocks should compare 0")
	}
}

func TestEqualDifferentLengths(t *testing.T) {
	a := VC{1, 0, 0}
	b := VC{1}
	if !a.Equal(b) {
		t.Fatalf("%v and %v should be equal (trailing zeros)", a, b)
	}
}

func TestString(t *testing.T) {
	v := VC{1, 2, 3}
	if got, want := v.String(), "[1 2 3]"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestCloneIndependent(t *testing.T) {
	a := VC{1, 2}
	c := a.Clone()
	c = c.Tick(0)
	if a.Get(0) != 1 {
		t.Fatal("Clone must not share storage")
	}
}

// randVC generates a small random clock for property tests.
func randVC(r *rand.Rand) VC {
	n := 1 + r.Intn(5)
	v := New(n)
	for i := range v {
		v[i] = uint64(r.Intn(4))
	}
	return v
}

func TestPropJoinUpperBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randVC(r), randVC(r)
		j := a.Clone().Join(b)
		// join is an upper bound of both operands
		return !j.HappensBefore(a) && !j.HappensBefore(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropJoinCommutative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randVC(r), randVC(r)
		return a.Clone().Join(b).Equal(b.Clone().Join(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropJoinIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randVC(r)
		return a.Clone().Join(a).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropHappensBeforeAntisymmetric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randVC(r), randVC(r)
		return !(a.HappensBefore(b) && b.HappensBefore(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropHappensBeforeTransitive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randVC(r)
		b := a.Clone().Join(randVC(r)).Tick(0)
		c := b.Clone().Tick(1)
		// a < b and b < c by construction, so a < c must hold.
		return a.HappensBefore(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropTickStrictlyAfter(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randVC(r)
		b := a.Clone().Tick(r.Intn(len(a)))
		return a.HappensBefore(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSet(t *testing.T) {
	v := New(1)
	v = v.Set(4, 9)
	if v.Get(4) != 9 || len(v) != 5 {
		t.Fatalf("Set grew wrong: %v", v)
	}
	v = v.Set(0, 3)
	if v.Get(0) != 3 {
		t.Fatal("Set in range failed")
	}
}
