// Package vclock implements vector clocks for happens-before tracking.
//
// PRES's feedback generator needs to know which pairs of memory accesses
// are concurrent (racing) during a replay attempt. We track one logical
// clock component per thread; the usual vector-clock laws give a partial
// order over events from which concurrency is decided.
package vclock

import (
	"fmt"
	"strings"
)

// VC is a vector clock. Index i holds the number of events thread i has
// performed that the owner of the clock knows about. The zero value is a
// valid clock that happens-before everything.
type VC []uint64

// New returns a clock sized for n threads, all components zero.
func New(n int) VC { return make(VC, n) }

// Clone returns an independent copy of v.
func (v VC) Clone() VC {
	c := make(VC, len(v))
	copy(c, v)
	return c
}

// Get returns component i, treating missing components as zero.
func (v VC) Get(i int) uint64 {
	if i < 0 || i >= len(v) {
		return 0
	}
	return v[i]
}

// Tick increments component i, growing the clock if needed, and returns
// the (possibly reallocated) clock.
func (v VC) Tick(i int) VC {
	v = v.grow(i + 1)
	v[i]++
	return v
}

// Set assigns component i, growing the clock if needed, and returns the
// (possibly reallocated) clock.
func (v VC) Set(i int, val uint64) VC {
	v = v.grow(i + 1)
	v[i] = val
	return v
}

// Join merges other into v component-wise (v = v join other) and returns
// the (possibly reallocated) clock. Join computes the least upper bound
// of the two clocks.
func (v VC) Join(other VC) VC {
	v = v.grow(len(other))
	for i, o := range other {
		if o > v[i] {
			v[i] = o
		}
	}
	return v
}

// HappensBefore reports whether v happens strictly before other:
// v <= other component-wise and v != other.
func (v VC) HappensBefore(other VC) bool {
	le, lt := true, false
	n := max(len(v), len(other))
	for i := 0; i < n; i++ {
		a, b := v.Get(i), other.Get(i)
		if a > b {
			le = false
			break
		}
		if a < b {
			lt = true
		}
	}
	return le && lt
}

// Concurrent reports whether neither clock happens before the other and
// they are not equal.
func (v VC) Concurrent(other VC) bool {
	return !v.HappensBefore(other) && !other.HappensBefore(v) && !v.Equal(other)
}

// Equal reports component-wise equality, treating missing components as
// zero.
func (v VC) Equal(other VC) bool {
	n := max(len(v), len(other))
	for i := 0; i < n; i++ {
		if v.Get(i) != other.Get(i) {
			return false
		}
	}
	return true
}

// Compare returns -1 if v happens before other, +1 if other happens
// before v, and 0 if the clocks are equal or concurrent.
func (v VC) Compare(other VC) int {
	switch {
	case v.HappensBefore(other):
		return -1
	case other.HappensBefore(v):
		return 1
	default:
		return 0
	}
}

// String renders the clock as "[c0 c1 ...]".
func (v VC) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, c := range v {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", c)
	}
	b.WriteByte(']')
	return b.String()
}

func (v VC) grow(n int) VC {
	if n <= len(v) {
		return v
	}
	c := make(VC, n)
	copy(c, v)
	return c
}
