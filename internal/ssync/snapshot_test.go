package ssync

import "testing"

func TestMutexSnapshotRestore(t *testing.T) {
	m := NewMutex("snap.mu")
	m.holder, m.hname = 3, "worker-3"
	s := m.Snapshot()
	m.holder, m.hname = 0, ""
	m.Restore(s)
	if m.holder != 3 || m.hname != "worker-3" {
		t.Fatalf("restored mutex = (%d, %q)", m.holder, m.hname)
	}
}

func TestRWMutexSnapshotRestore(t *testing.T) {
	m := NewRWMutex("snap.rw")
	m.readers, m.writer = 2, 0
	s := m.Snapshot()
	m.readers, m.writer = 0, 5
	m.Restore(s)
	if m.readers != 2 || m.writer != 0 {
		t.Fatalf("restored rwmutex = (%d readers, writer %d)", m.readers, m.writer)
	}
}

func TestCountSnapshotRestore(t *testing.T) {
	sem := NewSemaphore("snap.sem", 4)
	sem.count = 1
	s := sem.Snapshot()
	sem.count = 9
	sem.Restore(s)
	if sem.count != 1 {
		t.Fatalf("restored semaphore count = %d", sem.count)
	}

	wg := NewWaitGroup("snap.wg")
	wg.count = 3
	ws := wg.Snapshot()
	wg.count = 0
	wg.Restore(ws)
	if wg.count != 3 {
		t.Fatalf("restored waitgroup count = %d", wg.count)
	}
}

func TestOnceSnapshotRestore(t *testing.T) {
	o := NewOnce("snap.once")
	o.done = true
	s := o.Snapshot()
	o.done, o.running = false, true
	o.Restore(s)
	if !o.done || o.running {
		t.Fatalf("restored once = (running=%v, done=%v)", o.running, o.done)
	}
}

func TestQuiescent(t *testing.T) {
	c := NewCond("snap.cond")
	if !c.Quiescent() {
		t.Fatal("fresh cond not quiescent")
	}
	b := NewBarrier("snap.bar", 2)
	if !b.Quiescent() {
		t.Fatal("fresh barrier not quiescent")
	}
	b.gen = 7
	s := b.Snapshot()
	b.gen = 0
	b.Restore(s)
	if b.gen != 7 {
		t.Fatalf("restored barrier gen = %d", b.gen)
	}
}
