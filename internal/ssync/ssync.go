// Package ssync provides the synchronization primitives applications use
// under the simulated scheduler: Mutex, RWMutex, Cond, Semaphore,
// Barrier, WaitGroup and Once, with pthread-like semantics.
//
// Every operation is a scheduling point of the appropriate trace kind,
// which is exactly what the SYNC sketching mechanism records. Primitives
// are identified by a stable name: the 64-bit FNV-1a hash of the name is
// the object id in the event stream, so the id is identical across the
// production run and every replay attempt regardless of interleaving.
//
// All state mutation happens inside operation effects (scheduler
// goroutine) or in the calling thread between scheduling points; the
// channel handshakes in package sched order every access, so no host
// locking is needed or used.
package ssync

import (
	"hash/fnv"

	"repro/internal/sched"
	"repro/internal/trace"
)

// ID hashes a primitive name to its stable object id.
func ID(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

// injectLock consults the thread's failure-injection hook for a
// blocking acquisition and applies the verdict to op: extra modelled
// cost (slow, contended locks) or a wedge (the acquire never proceeds —
// a component hung holding shared state, the partial-shutdown class the
// scenario matrix drives; dependent threads pile up behind it and the
// run ends in deadlock detection). InjectFailOp has no meaning for a
// lock and is ignored; InjectPanic fires in finishLock after the
// acquisition, so the thread crashes while holding the primitive. With
// no hook installed this is one nil check, allocation-free.
func injectLock(t *sched.Thread, obj uint64, op *sched.Op) sched.InjectAction {
	act := t.Inject(sched.InjectPoint{Kind: sched.InjectLock, Obj: obj})
	if act.ExtraCost > 0 {
		op.Cost = op.Cost + trace.CostUnit + act.ExtraCost
	}
	if act.Outcome == sched.InjectWedge {
		op.Enabled = func() bool { return false }
		op.Desc += " (wedged)"
		op.BlockedOn = nil
	}
	return act
}

// finishLock completes an injected acquisition on the thread goroutine.
func finishLock(act sched.InjectAction, what string) {
	if act.Outcome == sched.InjectPanic {
		panic("injected fault: " + what)
	}
}

// Mutex is a non-reentrant mutual-exclusion lock.
type Mutex struct {
	name   string
	id     uint64
	holder trace.TID
	hname  string // holder thread name, for deadlock reports
}

// NewMutex returns a mutex with a stable name.
func NewMutex(name string) *Mutex {
	return &Mutex{name: name, id: ID(name), holder: trace.NoTID}
}

// Name returns the mutex name.
func (m *Mutex) Name() string { return m.name }

// Obj returns the stable object id used in the event stream.
func (m *Mutex) Obj() uint64 { return m.id }

// Lock blocks until the mutex is free and acquires it.
func (m *Mutex) Lock(t *sched.Thread) {
	op := &sched.Op{
		Kind:      trace.KindLock,
		Obj:       m.id,
		Desc:      "lock " + m.name,
		DescFn:    func() string { return "held by " + m.hname },
		Enabled:   func() bool { return m.holder == trace.NoTID },
		BlockedOn: func() trace.TID { return m.holder },
		Effect: func(ctx *sched.EffectCtx) {
			m.holder = ctx.Self().ID()
			m.hname = ctx.Self().Name()
		},
	}
	act := injectLock(t, m.id, op)
	t.Point(op)
	finishLock(act, "lock "+m.name)
}

// TryLock acquires the mutex iff it is currently free, reporting whether
// it did. The attempt is a scheduling point either way.
func (m *Mutex) TryLock(t *sched.Thread) bool {
	got := false
	t.Point(&sched.Op{
		Kind: trace.KindLock,
		Obj:  m.id,
		Desc: "trylock " + m.name,
		Effect: func(ctx *sched.EffectCtx) {
			if m.holder == trace.NoTID {
				m.holder = ctx.Self().ID()
				m.hname = ctx.Self().Name()
				got = true
				ctx.Ev.Arg = 1
			}
		},
	})
	return got
}

// Unlock releases the mutex. Unlocking a mutex the caller does not hold
// fails the execution with a misuse assertion.
func (m *Mutex) Unlock(t *sched.Thread) {
	if m.holder != t.ID() {
		t.Fail("ssync-misuse", "unlock of %s not held by t%d", m.name, t.ID())
	}
	t.Point(&sched.Op{
		Kind:   trace.KindUnlock,
		Obj:    m.id,
		Desc:   "unlock " + m.name,
		Effect: func(ctx *sched.EffectCtx) { m.holder = trace.NoTID; m.hname = "" },
	})
}

// HeldBy reports the current holder (NoTID when free). Callers may only
// use this from a running thread, where the value is stable.
func (m *Mutex) HeldBy() trace.TID { return m.holder }

// RWMutex is a reader-preference read/write lock.
type RWMutex struct {
	name    string
	id      uint64
	readers int
	writer  trace.TID
}

// NewRWMutex returns a read/write lock with a stable name.
func NewRWMutex(name string) *RWMutex {
	return &RWMutex{name: name, id: ID(name), writer: trace.NoTID}
}

// Obj returns the stable object id.
func (m *RWMutex) Obj() uint64 { return m.id }

// RLock acquires the lock for reading.
func (m *RWMutex) RLock(t *sched.Thread) {
	t.Point(&sched.Op{
		Kind:    trace.KindRLock,
		Obj:     m.id,
		Desc:    "rlock " + m.name,
		Enabled: func() bool { return m.writer == trace.NoTID },
		Effect:  func(*sched.EffectCtx) { m.readers++ },
	})
}

// RUnlock releases a read acquisition.
func (m *RWMutex) RUnlock(t *sched.Thread) {
	if m.readers <= 0 {
		t.Fail("ssync-misuse", "runlock of %s with no readers", m.name)
	}
	t.Point(&sched.Op{
		Kind:   trace.KindRUnlock,
		Obj:    m.id,
		Desc:   "runlock " + m.name,
		Effect: func(*sched.EffectCtx) { m.readers-- },
	})
}

// Lock acquires the lock for writing.
func (m *RWMutex) Lock(t *sched.Thread) {
	op := &sched.Op{
		Kind:      trace.KindLock,
		Obj:       m.id,
		Desc:      "wlock " + m.name,
		Enabled:   func() bool { return m.writer == trace.NoTID && m.readers == 0 },
		BlockedOn: func() trace.TID { return m.writer },
		Effect:    func(ctx *sched.EffectCtx) { m.writer = ctx.Self().ID() },
	}
	act := injectLock(t, m.id, op)
	t.Point(op)
	finishLock(act, "wlock "+m.name)
}

// Unlock releases a write acquisition.
func (m *RWMutex) Unlock(t *sched.Thread) {
	if m.writer != t.ID() {
		t.Fail("ssync-misuse", "unlock of %s not write-held by t%d", m.name, t.ID())
	}
	t.Point(&sched.Op{
		Kind:   trace.KindUnlock,
		Obj:    m.id,
		Desc:   "wunlock " + m.name,
		Effect: func(*sched.EffectCtx) { m.writer = trace.NoTID },
	})
}

// Cond is a pthread-style condition variable with Mesa semantics: Wait
// atomically releases the associated mutex and sleeps; Signal wakes one
// waiter, which reacquires the mutex before Wait returns; a Signal with
// no waiters is lost. Lost wakeups therefore hang exactly as they do in
// real programs, where the deadlock detector reports them.
type Cond struct {
	name    string
	id      uint64
	waiters []*sched.Thread
}

// NewCond returns a condition variable with a stable name.
func NewCond(name string) *Cond {
	return &Cond{name: name, id: ID(name)}
}

// Obj returns the stable object id.
func (c *Cond) Obj() uint64 { return c.id }

// Wait releases m, sleeps until signalled, reacquires m and returns.
// The caller must hold m. As with pthreads, callers must re-check their
// predicate in a loop.
func (c *Cond) Wait(t *sched.Thread, m *Mutex) {
	if m.holder != t.ID() {
		t.Fail("ssync-misuse", "cond %s wait without holding %s", c.name, m.name)
	}
	t.Point(&sched.Op{
		Kind: trace.KindWait,
		Obj:  c.id,
		Desc: "wait " + c.name,
		Effect: func(ctx *sched.EffectCtx) {
			m.holder = trace.NoTID
			m.hname = ""
			c.waiters = append(c.waiters, ctx.Self())
			ctx.Sleep()
		},
	})
	// Point returns only after the wake op (installed by Signal or
	// Broadcast) has been granted, i.e. with m reacquired.
}

func (c *Cond) wakeOp(w *sched.Thread, m *Mutex) *sched.Op {
	return &sched.Op{
		Kind:    trace.KindWake,
		Obj:     c.id,
		Desc:    "wake " + c.name + " reacquire " + m.name,
		Enabled: func() bool { return m.holder == trace.NoTID },
		Effect: func(ctx *sched.EffectCtx) {
			m.holder = w.ID()
			m.hname = w.Name()
		},
	}
}

// Signal wakes one waiter if any. The caller should hold the associated
// mutex (not enforced, as with pthreads).
func (c *Cond) Signal(t *sched.Thread, m *Mutex) {
	t.Point(&sched.Op{
		Kind: trace.KindSignal,
		Obj:  c.id,
		Desc: "signal " + c.name,
		Effect: func(ctx *sched.EffectCtx) {
			if len(c.waiters) == 0 {
				return // lost signal
			}
			w := c.waiters[0]
			c.waiters = c.waiters[1:]
			ctx.Ev.Arg = 1
			ctx.WakeWith(w, c.wakeOp(w, m))
		},
	})
}

// Broadcast wakes every waiter.
func (c *Cond) Broadcast(t *sched.Thread, m *Mutex) {
	t.Point(&sched.Op{
		Kind: trace.KindBroadcast,
		Obj:  c.id,
		Desc: "broadcast " + c.name,
		Effect: func(ctx *sched.EffectCtx) {
			ctx.Ev.Arg = uint64(len(c.waiters))
			for _, w := range c.waiters {
				ctx.WakeWith(w, c.wakeOp(w, m))
			}
			c.waiters = nil
		},
	})
}

// Semaphore is a counting semaphore.
type Semaphore struct {
	name  string
	id    uint64
	count int
}

// NewSemaphore returns a semaphore with the given initial count.
func NewSemaphore(name string, initial int) *Semaphore {
	return &Semaphore{name: name, id: ID(name), count: initial}
}

// Obj returns the stable object id.
func (s *Semaphore) Obj() uint64 { return s.id }

// Acquire blocks until the count is positive and decrements it.
func (s *Semaphore) Acquire(t *sched.Thread) {
	op := &sched.Op{
		Kind:    trace.KindSemAcquire,
		Obj:     s.id,
		Desc:    "sem-acquire " + s.name,
		Enabled: func() bool { return s.count > 0 },
		Effect:  func(*sched.EffectCtx) { s.count-- },
	}
	act := injectLock(t, s.id, op)
	t.Point(op)
	finishLock(act, "sem-acquire "+s.name)
}

// Release increments the count.
func (s *Semaphore) Release(t *sched.Thread) {
	t.Point(&sched.Op{
		Kind:   trace.KindSemRelease,
		Obj:    s.id,
		Desc:   "sem-release " + s.name,
		Effect: func(*sched.EffectCtx) { s.count++ },
	})
}

// Barrier is a cyclic barrier for a fixed party count.
type Barrier struct {
	name    string
	id      uint64
	parties int
	gen     uint64
	waiting []*sched.Thread
}

// NewBarrier returns a barrier that releases once parties threads arrive.
func NewBarrier(name string, parties int) *Barrier {
	if parties < 1 {
		panic("ssync: barrier needs at least one party")
	}
	return &Barrier{name: name, id: ID(name), parties: parties}
}

// Obj returns the stable object id.
func (b *Barrier) Obj() uint64 { return b.id }

// Await blocks until all parties have arrived at the current generation.
func (b *Barrier) Await(t *sched.Thread) {
	t.Point(&sched.Op{
		Kind: trace.KindBarrier,
		Obj:  b.id,
		Desc: "barrier " + b.name,
		Effect: func(ctx *sched.EffectCtx) {
			ctx.Ev.Arg = b.gen
			if len(b.waiting)+1 < b.parties {
				b.waiting = append(b.waiting, ctx.Self())
				ctx.Sleep()
				return
			}
			// Last arrival: release the generation.
			gen := b.gen
			b.gen++
			for _, w := range b.waiting {
				ctx.WakeWith(w, &sched.Op{
					Kind: trace.KindWake,
					Obj:  b.id,
					Arg:  gen,
					Desc: "barrier-release " + b.name,
				})
			}
			b.waiting = nil
		},
	})
}

// WaitGroup counts outstanding work, like sync.WaitGroup. Add and Done
// are semaphore-release-class events; Wait is a blocking acquire-class
// event enabled when the count reaches zero.
type WaitGroup struct {
	name  string
	id    uint64
	count int
}

// NewWaitGroup returns a wait group with a stable name.
func NewWaitGroup(name string) *WaitGroup {
	return &WaitGroup{name: name, id: ID(name)}
}

// Obj returns the stable object id.
func (w *WaitGroup) Obj() uint64 { return w.id }

// Add adds delta to the count.
func (w *WaitGroup) Add(t *sched.Thread, delta int) {
	t.Point(&sched.Op{
		Kind: trace.KindSemRelease,
		Obj:  w.id,
		Arg:  uint64(int64(delta)),
		Desc: "wg-add " + w.name,
		Effect: func(*sched.EffectCtx) {
			w.count += delta
		},
	})
	if w.count < 0 {
		t.Fail("ssync-misuse", "waitgroup %s went negative", w.name)
	}
}

// Done decrements the count.
func (w *WaitGroup) Done(t *sched.Thread) { w.Add(t, -1) }

// Wait blocks until the count is zero.
func (w *WaitGroup) Wait(t *sched.Thread) {
	t.Point(&sched.Op{
		Kind:    trace.KindSemAcquire,
		Obj:     w.id,
		Desc:    "wg-wait " + w.name,
		Enabled: func() bool { return w.count == 0 },
	})
}

// Once runs a function exactly once across threads; late callers block
// until the first caller's function has completed (like sync.Once).
type Once struct {
	name    string
	id      uint64
	running bool
	done    bool
}

// NewOnce returns a one-shot guard with a stable name.
func NewOnce(name string) *Once {
	return &Once{name: name, id: ID(name)}
}

// Obj returns the stable object id.
func (o *Once) Obj() uint64 { return o.id }

// Do invokes f if no other thread has; otherwise it blocks until the
// winning invocation finishes.
func (o *Once) Do(t *sched.Thread, f func()) {
	entered := false
	t.Point(&sched.Op{
		Kind:    trace.KindLock,
		Obj:     o.id,
		Desc:    "once " + o.name,
		Enabled: func() bool { return o.done || !o.running },
		Effect: func(ctx *sched.EffectCtx) {
			if !o.done {
				o.running = true
				entered = true
				ctx.Ev.Arg = 1
			}
		},
	})
	if !entered {
		return
	}
	f()
	t.Point(&sched.Op{
		Kind: trace.KindUnlock,
		Obj:  o.id,
		Desc: "once-done " + o.name,
		Effect: func(*sched.EffectCtx) {
			o.done = true
			o.running = false
		},
	})
}
