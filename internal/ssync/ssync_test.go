package ssync

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/trace"
)

// run executes root under a seeded 4-processor schedule with heavy
// preemption — the adversarial environment for sync primitives.
func run(seed int64, root func(*sched.Thread)) *sched.Result {
	return sched.Run(root, sched.Config{Strategy: sched.NewRandomMP(4, 0.2, seed)})
}

func TestIDStable(t *testing.T) {
	if ID("a") != ID("a") {
		t.Fatal("ID not deterministic")
	}
	if ID("a") == ID("b") {
		t.Fatal("distinct names collided")
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		res := run(seed, func(th *sched.Thread) {
			m := NewMutex("m")
			inside := 0
			var ts []*sched.Thread
			for i := 0; i < 4; i++ {
				ts = append(ts, th.Spawn("w", func(ct *sched.Thread) {
					for j := 0; j < 5; j++ {
						m.Lock(ct)
						inside++
						ct.Check(inside == 1, "mutex-broken", "two threads in section")
						ct.Yield()
						inside--
						m.Unlock(ct)
					}
				}))
			}
			for _, h := range ts {
				th.Join(h)
			}
		})
		if res.Failure != nil {
			t.Fatalf("seed %d: %v", seed, res.Failure)
		}
	}
}

func TestMutexHeldBy(t *testing.T) {
	res := run(1, func(th *sched.Thread) {
		m := NewMutex("m")
		m.Lock(th)
		if m.HeldBy() != th.ID() {
			th.Fail("x", "HeldBy wrong")
		}
		m.Unlock(th)
	})
	if res.Failure != nil {
		t.Fatal(res.Failure)
	}
}

func TestMutexUnlockMisuse(t *testing.T) {
	res := run(1, func(th *sched.Thread) {
		m := NewMutex("m")
		m.Unlock(th)
	})
	if res.Failure == nil || res.Failure.BugID != "ssync-misuse" {
		t.Fatalf("failure = %v", res.Failure)
	}
}

func TestTryLock(t *testing.T) {
	res := run(1, func(th *sched.Thread) {
		m := NewMutex("m")
		if !m.TryLock(th) {
			th.Fail("x", "trylock on free mutex failed")
		}
		done := th.Spawn("c", func(ct *sched.Thread) {
			if m.TryLock(ct) {
				ct.Fail("x", "trylock on held mutex succeeded")
			}
		})
		th.Join(done)
		m.Unlock(th)
	})
	if res.Failure != nil {
		t.Fatal(res.Failure)
	}
}

func TestRWMutexReadersShare(t *testing.T) {
	res := run(5, func(th *sched.Thread) {
		rw := NewRWMutex("rw")
		readersIn := 0
		maxReaders := 0
		gate := NewBarrier("gate", 3)
		var ts []*sched.Thread
		for i := 0; i < 3; i++ {
			ts = append(ts, th.Spawn("r", func(ct *sched.Thread) {
				rw.RLock(ct)
				readersIn++
				if readersIn > maxReaders {
					maxReaders = readersIn
				}
				gate.Await(ct) // force all three inside simultaneously
				readersIn--
				rw.RUnlock(ct)
			}))
		}
		for _, h := range ts {
			th.Join(h)
		}
		th.Check(maxReaders == 3, "rw", "readers did not share: max %d", maxReaders)
	})
	if res.Failure != nil {
		t.Fatal(res.Failure)
	}
}

func TestRWMutexWriterExcludes(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		res := run(seed, func(th *sched.Thread) {
			rw := NewRWMutex("rw")
			var state int // 0 idle, >0 readers, -1 writer
			var ts []*sched.Thread
			for i := 0; i < 2; i++ {
				ts = append(ts, th.Spawn("r", func(ct *sched.Thread) {
					for j := 0; j < 4; j++ {
						rw.RLock(ct)
						ct.Check(state >= 0, "rw-broken", "reader saw writer inside")
						state++
						ct.Yield()
						state--
						rw.RUnlock(ct)
					}
				}))
			}
			ts = append(ts, th.Spawn("w", func(ct *sched.Thread) {
				for j := 0; j < 4; j++ {
					rw.Lock(ct)
					ct.Check(state == 0, "rw-broken", "writer entered with state %d", state)
					state = -1
					ct.Yield()
					state = 0
					rw.Unlock(ct)
				}
			}))
			for _, h := range ts {
				th.Join(h)
			}
		})
		if res.Failure != nil {
			t.Fatalf("seed %d: %v", seed, res.Failure)
		}
	}
}

func TestCondProducerConsumer(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		res := run(seed, func(th *sched.Thread) {
			m := NewMutex("buf.lock")
			notEmpty := NewCond("buf.notEmpty")
			notFull := NewCond("buf.notFull")
			var buf []int
			const capN, items = 2, 10

			prod := th.Spawn("producer", func(ct *sched.Thread) {
				for i := 0; i < items; i++ {
					m.Lock(ct)
					for len(buf) == capN {
						notFull.Wait(ct, m)
					}
					buf = append(buf, i)
					notEmpty.Signal(ct, m)
					m.Unlock(ct)
				}
			})
			var got []int
			cons := th.Spawn("consumer", func(ct *sched.Thread) {
				for i := 0; i < items; i++ {
					m.Lock(ct)
					for len(buf) == 0 {
						notEmpty.Wait(ct, m)
					}
					got = append(got, buf[0])
					buf = buf[1:]
					notFull.Signal(ct, m)
					m.Unlock(ct)
				}
			})
			th.Join(prod)
			th.Join(cons)
			th.Check(len(got) == items, "pc", "consumed %d items", len(got))
			for i, v := range got {
				th.Check(v == i, "pc", "out of order: got[%d]=%d", i, v)
			}
		})
		if res.Failure != nil {
			t.Fatalf("seed %d: %v", seed, res.Failure)
		}
	}
}

func TestCondWaitRequiresMutex(t *testing.T) {
	res := run(1, func(th *sched.Thread) {
		m := NewMutex("m")
		c := NewCond("c")
		c.Wait(th, m) // not holding m
	})
	if res.Failure == nil || res.Failure.BugID != "ssync-misuse" {
		t.Fatalf("failure = %v", res.Failure)
	}
}

func TestLostSignalDeadlocks(t *testing.T) {
	// Consumer checks the flag non-atomically with the wait: if the
	// producer signals first, the wakeup is lost and the run hangs.
	// Force that schedule directly.
	res := sched.Run(func(th *sched.Thread) {
		m := NewMutex("m")
		c := NewCond("c")
		// Signal first, with nobody waiting.
		m.Lock(th)
		c.Signal(th, m)
		m.Unlock(th)
		w := th.Spawn("waiter", func(ct *sched.Thread) {
			m.Lock(ct)
			c.Wait(ct, m) // sleeps forever
			m.Unlock(ct)
		})
		th.Join(w)
	}, sched.Config{Strategy: sched.Lowest{}})
	if res.Failure == nil || res.Failure.Reason != sched.ReasonDeadlock {
		t.Fatalf("failure = %v, want deadlock", res.Failure)
	}
}

func TestBroadcastWakesAll(t *testing.T) {
	res := run(7, func(th *sched.Thread) {
		m := NewMutex("m")
		c := NewCond("c")
		ready := false
		wg := NewWaitGroup("started")
		wg.Add(th, 3)
		var ts []*sched.Thread
		for i := 0; i < 3; i++ {
			ts = append(ts, th.Spawn("w", func(ct *sched.Thread) {
				m.Lock(ct)
				wg.Done(ct)
				for !ready {
					c.Wait(ct, m)
				}
				m.Unlock(ct)
			}))
		}
		wg.Wait(th) // all three have at least reached the lock
		m.Lock(th)
		ready = true
		c.Broadcast(th, m)
		m.Unlock(th)
		for _, h := range ts {
			th.Join(h)
		}
	})
	if res.Failure != nil {
		t.Fatal(res.Failure)
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		res := run(seed, func(th *sched.Thread) {
			sem := NewSemaphore("pool", 2)
			inside := 0
			var ts []*sched.Thread
			for i := 0; i < 5; i++ {
				ts = append(ts, th.Spawn("w", func(ct *sched.Thread) {
					sem.Acquire(ct)
					inside++
					ct.Check(inside <= 2, "sem-broken", "%d threads inside", inside)
					ct.Yield()
					inside--
					sem.Release(ct)
				}))
			}
			for _, h := range ts {
				th.Join(h)
			}
		})
		if res.Failure != nil {
			t.Fatalf("seed %d: %v", seed, res.Failure)
		}
	}
}

func TestBarrierPhases(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		res := run(seed, func(th *sched.Thread) {
			const parties, phases = 3, 4
			b := NewBarrier("b", parties)
			counts := make([]int, phases)
			var ts []*sched.Thread
			for i := 0; i < parties; i++ {
				ts = append(ts, th.Spawn("p", func(ct *sched.Thread) {
					for ph := 0; ph < phases; ph++ {
						counts[ph]++
						b.Await(ct)
						// After the barrier, every party must have
						// contributed to this phase.
						ct.Check(counts[ph] == parties, "barrier-broken",
							"phase %d count %d", ph, counts[ph])
					}
				}))
			}
			for _, h := range ts {
				th.Join(h)
			}
		})
		if res.Failure != nil {
			t.Fatalf("seed %d: %v", seed, res.Failure)
		}
	}
}

func TestWaitGroupWaitsForAll(t *testing.T) {
	res := run(3, func(th *sched.Thread) {
		wg := NewWaitGroup("wg")
		done := 0
		wg.Add(th, 4)
		for i := 0; i < 4; i++ {
			th.Spawn("w", func(ct *sched.Thread) {
				ct.Yield()
				done++
				wg.Done(ct)
			})
		}
		wg.Wait(th)
		th.Check(done == 4, "wg", "wait returned with %d done", done)
	})
	if res.Failure != nil {
		t.Fatal(res.Failure)
	}
}

func TestOnceRunsExactlyOnce(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		res := run(seed, func(th *sched.Thread) {
			o := NewOnce("init")
			calls := 0
			initialized := false
			var ts []*sched.Thread
			for i := 0; i < 4; i++ {
				ts = append(ts, th.Spawn("w", func(ct *sched.Thread) {
					o.Do(ct, func() {
						calls++
						ct.Yield() // make the init window wide
						initialized = true
					})
					ct.Check(initialized, "once-broken", "Do returned before init completed")
				}))
			}
			for _, h := range ts {
				th.Join(h)
			}
			th.Check(calls == 1, "once-broken", "init ran %d times", calls)
		})
		if res.Failure != nil {
			t.Fatalf("seed %d: %v", seed, res.Failure)
		}
	}
}

func TestLockInversionDeadlockDetected(t *testing.T) {
	// Force the classic AB/BA inversion deterministically.
	res := sched.Run(func(th *sched.Thread) {
		a := NewMutex("A")
		b := NewMutex("B")
		step := 0
		t1 := th.Spawn("t1", func(ct *sched.Thread) {
			a.Lock(ct)
			step++
			ct.Point(&sched.Op{Kind: trace.KindYield, Enabled: func() bool { return step == 2 }})
			b.Lock(ct)
		})
		t2 := th.Spawn("t2", func(ct *sched.Thread) {
			ct.Point(&sched.Op{Kind: trace.KindYield, Enabled: func() bool { return step == 1 }})
			b.Lock(ct)
			step++
			a.Lock(ct)
		})
		th.Join(t1)
		th.Join(t2)
	}, sched.Config{Strategy: sched.Lowest{}})
	if res.Failure == nil || res.Failure.Reason != sched.ReasonDeadlock {
		t.Fatalf("failure = %v, want deadlock", res.Failure)
	}
	if len(res.Failure.Stuck) < 2 {
		t.Fatalf("stuck = %+v, want both workers", res.Failure.Stuck)
	}
}

func TestPrimitiveIdentities(t *testing.T) {
	m := NewMutex("m")
	if m.Name() != "m" || m.Obj() != ID("m") {
		t.Fatal("mutex identity wrong")
	}
	if NewRWMutex("rw").Obj() != ID("rw") {
		t.Fatal("rwmutex identity wrong")
	}
	if NewCond("c").Obj() != ID("c") {
		t.Fatal("cond identity wrong")
	}
	if NewSemaphore("s", 1).Obj() != ID("s") {
		t.Fatal("semaphore identity wrong")
	}
	if NewBarrier("b", 2).Obj() != ID("b") {
		t.Fatal("barrier identity wrong")
	}
	if NewWaitGroup("w").Obj() != ID("w") {
		t.Fatal("waitgroup identity wrong")
	}
	if NewOnce("o").Obj() != ID("o") {
		t.Fatal("once identity wrong")
	}
}

func TestBarrierRejectsZeroParties(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-party barrier accepted")
		}
	}()
	NewBarrier("bad", 0)
}

func TestRWMutexMisuse(t *testing.T) {
	res := run(1, func(th *sched.Thread) {
		rw := NewRWMutex("rw")
		rw.RUnlock(th)
	})
	if res.Failure == nil || res.Failure.BugID != "ssync-misuse" {
		t.Fatalf("failure = %v", res.Failure)
	}
	res = run(1, func(th *sched.Thread) {
		rw := NewRWMutex("rw")
		rw.Unlock(th)
	})
	if res.Failure == nil || res.Failure.BugID != "ssync-misuse" {
		t.Fatalf("failure = %v", res.Failure)
	}
}

func TestWaitGroupNegative(t *testing.T) {
	res := run(1, func(th *sched.Thread) {
		wg := NewWaitGroup("wg")
		wg.Done(th)
	})
	if res.Failure == nil || res.Failure.BugID != "ssync-misuse" {
		t.Fatalf("failure = %v", res.Failure)
	}
}
