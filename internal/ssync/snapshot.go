package ssync

import "repro/internal/trace"

// Checkpoint support. Snapshot/Restore capture and re-establish a
// primitive's ownership state without scheduling points. They are only
// valid at scheduler quiescent points with no sleeping waiters: waiter
// lists hold parked *sched.Thread values that belong to one execution
// and cannot be serialized or transplanted, so primitives that can
// have waiters expose Quiescent() and their snapshots exclude the
// waiter lists. Epoch-boundary checkpoints are taken at control
// transfers, where the holding/counting state below is exactly the
// state a re-executed prefix must reproduce.

// MutexState is a Mutex snapshot.
type MutexState struct {
	Holder     trace.TID
	HolderName string
}

// Snapshot captures the mutex's ownership.
func (m *Mutex) Snapshot() MutexState {
	return MutexState{Holder: m.holder, HolderName: m.hname}
}

// Restore re-establishes snapshotted ownership.
func (m *Mutex) Restore(s MutexState) {
	m.holder = s.Holder
	m.hname = s.HolderName
}

// RWMutexState is an RWMutex snapshot.
type RWMutexState struct {
	Readers int
	Writer  trace.TID
}

// Snapshot captures the lock's reader count and writer.
func (m *RWMutex) Snapshot() RWMutexState {
	return RWMutexState{Readers: m.readers, Writer: m.writer}
}

// Restore re-establishes snapshotted reader/writer state.
func (m *RWMutex) Restore(s RWMutexState) {
	m.readers = s.Readers
	m.writer = s.Writer
}

// Snapshot captures the semaphore's count.
func (s *Semaphore) Snapshot() int { return s.count }

// Restore re-establishes a snapshotted count.
func (s *Semaphore) Restore(count int) { s.count = count }

// Snapshot captures the wait group's count.
func (w *WaitGroup) Snapshot() int { return w.count }

// Restore re-establishes a snapshotted count.
func (w *WaitGroup) Restore(count int) { w.count = count }

// OnceState is a Once snapshot.
type OnceState struct {
	Running bool
	Done    bool
}

// Snapshot captures the guard's progress.
func (o *Once) Snapshot() OnceState {
	return OnceState{Running: o.running, Done: o.done}
}

// Restore re-establishes snapshotted progress.
func (o *Once) Restore(s OnceState) {
	o.running = s.Running
	o.done = s.Done
}

// Quiescent reports whether the condition variable has no sleeping
// waiters — the precondition for snapshotting the primitives around it
// (a Cond's only state is its waiter list, so there is nothing else to
// capture).
func (c *Cond) Quiescent() bool { return len(c.waiters) == 0 }

// Quiescent reports whether the barrier has no parked arrivals; its
// snapshot is just the generation counter.
func (b *Barrier) Quiescent() bool { return len(b.waiting) == 0 }

// Snapshot captures the barrier's generation. Valid only when
// Quiescent reports true.
func (b *Barrier) Snapshot() uint64 { return b.gen }

// Restore re-establishes a snapshotted generation, clearing any waiter
// bookkeeping (callers must only restore at quiescent points).
func (b *Barrier) Restore(gen uint64) {
	b.gen = gen
	b.waiting = nil
}
