package ssync

import (
	"testing"

	"repro/internal/sched"
)

// These tests are proofs, not samples: sched.Explore enumerates the
// complete schedule space of each small program, so zero failures means
// no interleaving whatsoever can violate the invariant.

func TestMutexExclusionExhaustive(t *testing.T) {
	res := sched.Explore(func(th *sched.Thread) {
		m := NewMutex("m")
		inside := 0
		a := th.Spawn("a", func(t *sched.Thread) {
			for i := 0; i < 2; i++ {
				m.Lock(t)
				inside++
				t.Check(inside == 1, "excl", "two inside")
				inside--
				m.Unlock(t)
			}
		})
		b := th.Spawn("b", func(t *sched.Thread) {
			m.Lock(t)
			inside++
			t.Check(inside == 1, "excl", "two inside")
			inside--
			m.Unlock(t)
		})
		th.Join(a)
		th.Join(b)
	}, sched.ExploreOptions{})
	if !res.Complete {
		t.Fatalf("space not fully enumerated (%d runs)", res.Runs)
	}
	if res.FailureCount != 0 {
		t.Fatalf("mutual exclusion violated in %d of %d schedules: %v",
			res.FailureCount, res.Runs, res.Failures[0])
	}
	t.Logf("proved over %d schedules", res.Runs)
}

func TestSemaphoreBoundExhaustive(t *testing.T) {
	res := sched.Explore(func(th *sched.Thread) {
		sem := NewSemaphore("s", 1)
		inside := 0
		var ws []*sched.Thread
		for i := 0; i < 2; i++ {
			ws = append(ws, th.Spawn("w", func(t *sched.Thread) {
				sem.Acquire(t)
				inside++
				t.Check(inside == 1, "bound", "bound exceeded")
				inside--
				sem.Release(t)
			}))
		}
		for _, w := range ws {
			th.Join(w)
		}
	}, sched.ExploreOptions{})
	if !res.Complete || res.FailureCount != 0 {
		t.Fatalf("semaphore bound broken: %v", res)
	}
	t.Logf("proved over %d schedules", res.Runs)
}

func TestOnceExhaustive(t *testing.T) {
	res := sched.Explore(func(th *sched.Thread) {
		o := NewOnce("o")
		calls := 0
		done := false
		a := th.Spawn("a", func(t *sched.Thread) {
			o.Do(t, func() { calls++; t.Yield(); done = true })
			t.Check(done, "once", "returned before init done")
		})
		b := th.Spawn("b", func(t *sched.Thread) {
			o.Do(t, func() { calls++; t.Yield(); done = true })
			t.Check(done, "once", "returned before init done")
		})
		th.Join(a)
		th.Join(b)
		th.Check(calls == 1, "once", "ran %d times", calls)
	}, sched.ExploreOptions{})
	if !res.Complete || res.FailureCount != 0 {
		t.Fatalf("once broken: %v", res)
	}
	t.Logf("proved over %d schedules", res.Runs)
}

func TestBarrierExhaustive(t *testing.T) {
	res := sched.Explore(func(th *sched.Thread) {
		b := NewBarrier("b", 2)
		phase := [2]int{}
		for w := 0; w < 2; w++ {
			th.Spawn("w", func(t *sched.Thread) {
				phase[0]++
				b.Await(t)
				t.Check(phase[0] == 2, "barrier", "released early")
				phase[1]++
				b.Await(t)
				t.Check(phase[1] == 2, "barrier", "released early")
			})
		}
		th.Yield()
	}, sched.ExploreOptions{})
	if !res.Complete || res.FailureCount != 0 {
		t.Fatalf("barrier broken: %v", res)
	}
	t.Logf("proved over %d schedules", res.Runs)
}

func TestCondNoLostWakeupWithPredicateExhaustive(t *testing.T) {
	// The canonical predicate-loop usage must never hang under any
	// schedule (hangs surface as deadlock failures).
	res := sched.Explore(func(th *sched.Thread) {
		m := NewMutex("m")
		c := NewCond("c")
		ready := false
		w := th.Spawn("waiter", func(t *sched.Thread) {
			m.Lock(t)
			for !ready {
				c.Wait(t, m)
			}
			m.Unlock(t)
		})
		m.Lock(th)
		ready = true
		c.Signal(th, m)
		m.Unlock(th)
		th.Join(w)
	}, sched.ExploreOptions{})
	if !res.Complete || res.FailureCount != 0 {
		t.Fatalf("cond protocol broken: %v", res)
	}
	t.Logf("proved over %d schedules", res.Runs)
}

func TestABBAInversionAlwaysFindable(t *testing.T) {
	// The explorer must find the AB/BA deadlock — and prove the ordered
	// variant safe.
	build := func(ordered bool) func(*sched.Thread) {
		return func(th *sched.Thread) {
			a := NewMutex("A")
			b := NewMutex("B")
			t1 := th.Spawn("t1", func(t *sched.Thread) {
				a.Lock(t)
				b.Lock(t)
				b.Unlock(t)
				a.Unlock(t)
			})
			t2 := th.Spawn("t2", func(t *sched.Thread) {
				if ordered {
					a.Lock(t)
					b.Lock(t)
					b.Unlock(t)
					a.Unlock(t)
				} else {
					b.Lock(t)
					a.Lock(t)
					a.Unlock(t)
					b.Unlock(t)
				}
			})
			th.Join(t1)
			th.Join(t2)
		}
	}
	buggy := sched.Explore(build(false), sched.ExploreOptions{})
	if !buggy.Complete || buggy.FailureCount == 0 {
		t.Fatalf("inversion deadlock not found: %v", buggy)
	}
	fixed := sched.Explore(build(true), sched.ExploreOptions{})
	if !fixed.Complete || fixed.FailureCount != 0 {
		t.Fatalf("ordered locking deadlocked: %v", fixed)
	}
	t.Logf("buggy: %d/%d schedules deadlock; ordered: 0/%d",
		buggy.FailureCount, buggy.Runs, fixed.Runs)
}

func TestDeadlockCycleExtraction(t *testing.T) {
	res := sched.Explore(func(th *sched.Thread) {
		a := NewMutex("A")
		b := NewMutex("B")
		t1 := th.Spawn("t1", func(t *sched.Thread) {
			a.Lock(t)
			b.Lock(t)
			b.Unlock(t)
			a.Unlock(t)
		})
		t2 := th.Spawn("t2", func(t *sched.Thread) {
			b.Lock(t)
			a.Lock(t)
			a.Unlock(t)
			b.Unlock(t)
		})
		th.Join(t1)
		th.Join(t2)
	}, sched.ExploreOptions{StopAtFirstFailure: true})
	if res.FailureCount == 0 {
		t.Fatal("inversion not found")
	}
	f := res.Failures[0]
	if f.Reason != sched.ReasonDeadlock {
		t.Fatalf("failure = %v", f)
	}
	if len(f.Cycle) != 2 {
		t.Fatalf("cycle = %v, want the two workers", f.Cycle)
	}
	// The cycle must contain both workers (tids 1 and 2) and close.
	seen := map[int32]bool{}
	for _, tid := range f.Cycle {
		seen[int32(tid)] = true
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("cycle %v does not name both workers", f.Cycle)
	}
}
