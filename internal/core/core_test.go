package core

import (
	"bytes"
	"testing"

	"repro/internal/appkit"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/sketch"
	"repro/internal/ssync"
)

// orderBugProg is a minimal order violation: the producer publishes the
// ready flag before the value it guards (a buggy publish). The consumer
// fails if it observes the flag without the value.
func orderBugProg() *appkit.Program {
	return &appkit.Program{
		Name: "orderbug",
		Bugs: []string{"order-bug"},
		Run: func(env *appkit.Env) {
			th := env.T
			x := mem.NewCell("x", 0)
			flag := mem.NewCell("flag", 0)
			prod := th.Spawn("producer", func(t *sched.Thread) {
				appkit.BB(t, "pub")
				flag.Store(t, 1) // bug: flag published before x
				t.Yield()
				x.Store(t, 42)
			})
			cons := th.Spawn("consumer", func(t *sched.Thread) {
				appkit.BB(t, "use")
				if flag.Load(t) == 1 {
					v := x.Load(t)
					t.Check(v == 42, "order-bug", "used x before init: %d", v)
				}
			})
			th.Join(prod)
			th.Join(cons)
		},
	}
}

// atomBugProg is a minimal atomicity violation: two workers increment a
// shared counter with unsynchronized load+store; the main thread asserts
// no update was lost.
func atomBugProg(iters int) *appkit.Program {
	return &appkit.Program{
		Name: "atombug",
		Bugs: []string{"atom-bug"},
		Run: func(env *appkit.Env) {
			th := env.T
			ctr := mem.NewCell("ctr", 0)
			var ws []*sched.Thread
			for i := 0; i < 2; i++ {
				ws = append(ws, th.Spawn("w", func(t *sched.Thread) {
					for j := 0; j < iters; j++ {
						appkit.BB(t, "inc")
						v := ctr.Load(t)
						ctr.Store(t, v+1)
					}
				}))
			}
			for _, w := range ws {
				th.Join(w)
			}
			got := ctr.Load(th)
			th.Check(got == uint64(2*iters), "atom-bug", "lost updates: %d", got)
		},
	}
}

// deadlockProg is a classic AB/BA inversion whose manifestation depends
// on the schedule.
func deadlockProg() *appkit.Program {
	return &appkit.Program{
		Name: "dlock",
		Bugs: []string{"test-deadlock"},
		Run: func(env *appkit.Env) {
			th := env.T
			a := ssync.NewMutex("A")
			b := ssync.NewMutex("B")
			t1 := th.Spawn("t1", func(t *sched.Thread) {
				a.Lock(t)
				t.Yield()
				b.Lock(t)
				b.Unlock(t)
				a.Unlock(t)
			})
			t2 := th.Spawn("t2", func(t *sched.Thread) {
				b.Lock(t)
				t.Yield()
				a.Lock(t)
				a.Unlock(t)
				b.Unlock(t)
			})
			th.Join(t1)
			th.Join(t2)
		},
	}
}

// recordBuggy searches seeds until the production run manifests the bug.
func recordBuggy(t *testing.T, prog *appkit.Program, scheme sketch.Scheme) *Recording {
	t.Helper()
	for seed := int64(0); seed < 500; seed++ {
		rec := Record(prog, Options{
			Scheme:       scheme,
			Processors:   4,
			ScheduleSeed: seed,
			WorldSeed:    1,
			MaxSteps:     200_000,
		})
		if rec.BugFailure() != nil {
			return rec
		}
	}
	t.Fatalf("%s: bug never manifested in 500 production seeds", prog.Name)
	return nil
}

func TestRecordCapturesSketchAndInputs(t *testing.T) {
	rec := Record(orderBugProg(), Options{Scheme: sketch.SYNC, ScheduleSeed: 1, MaxSteps: 100_000})
	if rec.Sketch.Len() == 0 {
		t.Fatal("SYNC sketch empty")
	}
	for _, e := range rec.Sketch.Entries {
		if !e.Kind.IsSync() {
			t.Fatalf("non-sync entry %v in SYNC sketch", e)
		}
	}
	if rec.Sketch.TotalOps == 0 {
		t.Fatal("TotalOps not counted")
	}
	if rec.LogBytes() <= 0 {
		t.Fatal("log size not accounted")
	}
}

func TestRecordDeterministic(t *testing.T) {
	opts := Options{Scheme: sketch.SYNC, Processors: 4, ScheduleSeed: 7, WorldSeed: 2, MaxSteps: 100_000}
	a := Record(atomBugProg(3), opts)
	b := Record(atomBugProg(3), opts)
	if a.Sketch.Len() != b.Sketch.Len() {
		t.Fatal("same seed recorded different sketches")
	}
	for i := range a.Sketch.Entries {
		if a.Sketch.Entries[i] != b.Sketch.Entries[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestRecordingRoundTrip(t *testing.T) {
	rec := Record(orderBugProg(), Options{Scheme: sketch.SYS, ScheduleSeed: 3, MaxSteps: 100_000})
	var buf bytes.Buffer
	if err := rec.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRecording(&buf, rec.Options)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scheme != sketch.SYS || got.Sketch.Len() != rec.Sketch.Len() || got.Inputs.Len() != rec.Inputs.Len() {
		t.Fatal("round trip lost data")
	}
}

func TestReplayOrderBugWithSync(t *testing.T) {
	rec := recordBuggy(t, orderBugProg(), sketch.SYNC)
	res := Replay(orderBugProg(), rec, ReplayOptions{
		Feedback: true,
		Oracle:   MatchBugID("order-bug"),
	})
	if !res.Reproduced {
		t.Fatalf("not reproduced: attempts=%d stats=%+v", res.Attempts, res.Stats)
	}
	if res.Attempts > 10 {
		t.Fatalf("took %d attempts; paper-range is <10 for SYNC", res.Attempts)
	}
	if res.Order == nil || res.Order.Len() == 0 {
		t.Fatal("successful replay did not capture the full order")
	}
}

func TestReplayOrderBugAllSchemes(t *testing.T) {
	for _, s := range []sketch.Scheme{sketch.SYS, sketch.FUNC, sketch.BB, sketch.RW} {
		rec := recordBuggy(t, orderBugProg(), s)
		res := Replay(orderBugProg(), rec, ReplayOptions{
			Feedback: true,
			Oracle:   MatchBugID("order-bug"),
		})
		if !res.Reproduced {
			t.Fatalf("%v: not reproduced (attempts=%d, stats=%+v)", s, res.Attempts, res.Stats)
		}
		t.Logf("%v reproduced in %d attempts", s, res.Attempts)
	}
}

func TestReplayRWFirstAttempt(t *testing.T) {
	// RW records the full memory order: the first coordinated replay
	// must reproduce the bug (the prior-work guarantee PRES relaxes).
	rec := recordBuggy(t, orderBugProg(), sketch.RW)
	res := Replay(orderBugProg(), rec, ReplayOptions{Feedback: true, Oracle: MatchBugID("order-bug")})
	if !res.Reproduced || res.Attempts != 1 {
		t.Fatalf("RW should reproduce on attempt 1; got reproduced=%v attempts=%d", res.Reproduced, res.Attempts)
	}
}

func TestReplayAtomicityBug(t *testing.T) {
	prog := atomBugProg(3)
	rec := recordBuggy(t, prog, sketch.SYNC)
	res := Replay(prog, rec, ReplayOptions{Feedback: true, Oracle: MatchBugID("atom-bug")})
	if !res.Reproduced {
		t.Fatalf("not reproduced: attempts=%d stats=%+v", res.Attempts, res.Stats)
	}
	t.Logf("atomicity bug reproduced in %d attempts with %d flips", res.Attempts, res.Flips)
}

func TestReplayDeadlockFirstAttempt(t *testing.T) {
	prog := deadlockProg()
	rec := recordBuggy(t, prog, sketch.SYNC)
	res := Replay(prog, rec, ReplayOptions{Feedback: true, Oracle: MatchBugID("test-deadlock")})
	if !res.Reproduced {
		t.Fatalf("deadlock not reproduced: %+v", res.Stats)
	}
	if res.Attempts != 1 {
		t.Fatalf("SYNC sketch pins the lock order; expected attempt 1, got %d", res.Attempts)
	}
	if res.Failure.Reason != sched.ReasonDeadlock {
		t.Fatalf("reproduced failure = %v", res.Failure)
	}
}

func TestReproduceEveryTime(t *testing.T) {
	prog := orderBugProg()
	rec := recordBuggy(t, prog, sketch.SYNC)
	res := Replay(prog, rec, ReplayOptions{Feedback: true, Oracle: MatchBugID("order-bug")})
	if !res.Reproduced {
		t.Fatal("setup: bug not reproduced")
	}
	for i := 0; i < 10; i++ {
		out := Reproduce(prog, rec, res.Order)
		if out.Failure == nil || !out.Failure.IsBug() || out.Failure.BugID != "order-bug" {
			t.Fatalf("re-replay %d did not reproduce: %v", i, out.Failure)
		}
	}
}

func TestNoFeedbackIsWeaker(t *testing.T) {
	prog := atomBugProg(3)
	rec := recordBuggy(t, prog, sketch.SYNC)
	with := Replay(prog, rec, ReplayOptions{Feedback: true, Oracle: MatchBugID("atom-bug")})
	if !with.Reproduced {
		t.Fatal("feedback mode failed outright")
	}
	without := Replay(prog, rec, ReplayOptions{
		Feedback:    false,
		Oracle:      MatchBugID("atom-bug"),
		MaxAttempts: with.Attempts, // same budget as feedback needed
	})
	// Random exploration may get lucky, but across this fixed budget it
	// must not beat feedback; equality is possible when both hit on the
	// first attempts.
	if without.Reproduced && without.Attempts < with.Attempts {
		t.Fatalf("no-feedback (%d) beat feedback (%d)", without.Attempts, with.Attempts)
	}
}

func TestReplayStatsPopulated(t *testing.T) {
	prog := atomBugProg(4)
	rec := recordBuggy(t, prog, sketch.SYNC)
	res := Replay(prog, rec, ReplayOptions{Feedback: true, Oracle: MatchBugID("atom-bug")})
	if !res.Reproduced {
		t.Fatal("not reproduced")
	}
	if res.Attempts > 1 && res.Stats.RacesSeen == 0 {
		t.Fatal("multi-attempt search saw no races")
	}
}

func TestMatchBugIDOracle(t *testing.T) {
	o := MatchBugID("my-bug")
	if !o(&sched.Failure{Reason: sched.ReasonAssert, BugID: "my-bug"}) {
		t.Fatal("matching id rejected")
	}
	if o(&sched.Failure{Reason: sched.ReasonAssert, BugID: "other"}) {
		t.Fatal("non-matching id accepted")
	}
	dl := MatchBugID("radix-deadlock")
	if !dl(&sched.Failure{Reason: sched.ReasonDeadlock}) {
		t.Fatal("deadlock oracle rejected deadlock")
	}
	if MatchBugID("my-bug")(&sched.Failure{Reason: sched.ReasonDeadlock}) {
		t.Fatal("non-deadlock id accepted a deadlock")
	}
}

func TestBaseSchemeRecordsNothing(t *testing.T) {
	rec := Record(orderBugProg(), Options{Scheme: sketch.BASE, ScheduleSeed: 1, MaxSteps: 100_000})
	if rec.Sketch.Len() != 0 {
		t.Fatal("BASE sketch must be empty")
	}
	// BASE pays only the per-point instrumentation filter, never a
	// record append.
	if rec.Result.ExtraCost != rec.Sketch.TotalOps*sketch.FilterCost {
		t.Fatalf("BASE ExtraCost = %d, want filter-only %d",
			rec.Result.ExtraCost, rec.Sketch.TotalOps*sketch.FilterCost)
	}
}

func TestReplayBudgetRespected(t *testing.T) {
	// An oracle that never matches forces budget exhaustion.
	prog := orderBugProg()
	rec := recordBuggy(t, prog, sketch.SYNC)
	res := Replay(prog, rec, ReplayOptions{
		Feedback:    true,
		MaxAttempts: 5,
		Oracle:      func(*sched.Failure) bool { return false },
	})
	if res.Reproduced {
		t.Fatal("impossible oracle reproduced")
	}
	if res.Attempts > 5 {
		t.Fatalf("budget exceeded: %d", res.Attempts)
	}
}
