package core

import (
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/sketch"
)

// The tentpole correctness gate for snapshot-tree search: with
// PrefixSnapshots on, a Workers:1 search must produce the identical
// reproduction result and search trajectory as the snapshot-free
// engine — restores change where the work happens, never what the
// search decides or reproduces. Only the accounting that *describes*
// the saved work may differ: handoffs and fast-path grants (forced
// prefixes run under multi-step budgets) and the snapshot counters
// themselves.

// normalizeSnapshotStats zeroes the fields the snapshot path is
// allowed to change, leaving everything the equivalence property pins.
func normalizeSnapshotStats(r *ReplayResult) *ReplayResult {
	c := *r
	c.Stats.Handoffs = 0
	c.Stats.FastPathSteps = 0
	c.Stats.SnapshotHits = 0
	c.Stats.SnapshotMisses = 0
	c.Stats.SnapshotCaptures = 0
	c.Stats.SnapshotEvicted = 0
	c.Stats.SnapshotBytes = 0
	c.Stats.FastForwardSteps = 0
	return &c
}

func TestPropPrefixSnapshotEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-corpus property")
	}
	totalHits := 0
	for _, c := range epochCases {
		prog, ok := apps.ProgramForBug(c.bug)
		if !ok {
			t.Fatalf("%s: program missing", c.bug)
		}
		rec := recordBuggy(t, prog, c.scheme)
		base := ReplayOptions{Feedback: true, Oracle: MatchBugID(c.bug), Workers: 1}
		off := Replay(prog, rec, base)
		on := base
		on.PrefixSnapshots = true
		got := Replay(prog, rec, on)
		totalHits += got.Stats.SnapshotHits
		if !reflect.DeepEqual(normalizeSnapshotStats(off), normalizeSnapshotStats(got)) {
			t.Errorf("%s/%v: snapshot search diverged from baseline:\noff: %+v\non:  %+v",
				c.bug, c.scheme, normalizeSnapshotStats(off), normalizeSnapshotStats(got))
			continue
		}
		// Restores must never be observable in the reproduced schedule:
		// the captured order replays the bug exactly as the baseline's.
		if got.Reproduced {
			out := Reproduce(prog, rec, got.Order)
			if out.Failure == nil || !out.Failure.IsBug() {
				t.Errorf("%s/%v: snapshot search's captured order did not re-reproduce", c.bug, c.scheme)
			}
		}
		// A second snapshot run must be bit-for-bit deterministic,
		// snapshot counters included — the cache is per-search state and
		// Workers:1 commits strictly in order.
		again := Replay(prog, rec, on)
		if !reflect.DeepEqual(got, again) {
			t.Errorf("%s/%v: snapshot search is not deterministic:\na: %+v\nb: %+v",
				c.bug, c.scheme, got, again)
		}
	}
	if totalHits == 0 {
		t.Error("no search restored from any snapshot across the corpus; the property is vacuous")
	}
}

// TestPropPrefixSnapshotLockset pins the same equivalence under the
// lockset-detector ablation — the second detector type the snapshot
// clones.
func TestPropPrefixSnapshotLockset(t *testing.T) {
	prog, ok := apps.ProgramForBug("lu-atomicity")
	if !ok {
		t.Fatal("lu-atomicity missing")
	}
	rec := recordBuggy(t, prog, sketch.RW)
	base := ReplayOptions{Feedback: true, Oracle: MatchBugID("lu-atomicity"), Workers: 1, UseLockset: true}
	off := Replay(prog, rec, base)
	on := base
	on.PrefixSnapshots = true
	got := Replay(prog, rec, on)
	if !reflect.DeepEqual(normalizeSnapshotStats(off), normalizeSnapshotStats(got)) {
		t.Fatalf("lockset snapshot search diverged:\noff: %+v\non:  %+v",
			normalizeSnapshotStats(off), normalizeSnapshotStats(got))
	}
}

// TestPrefixSnapshotOffIsInert pins the byte-identical-when-disabled
// contract at the options level: the zero value and an explicit false
// run the same engine, so turning the feature off costs nothing.
func TestPrefixSnapshotOffIsInert(t *testing.T) {
	prog := atomBugProg(3)
	rec := recordBuggy(t, prog, sketch.SYNC)
	a := Replay(prog, rec, ReplayOptions{Feedback: true, Oracle: MatchBugID("atom-bug"), Workers: 1})
	b := Replay(prog, rec, ReplayOptions{Feedback: true, Oracle: MatchBugID("atom-bug"), Workers: 1, PrefixSnapshots: false})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("PrefixSnapshots: false perturbed the search:\na: %+v\nb: %+v", a, b)
	}
}
