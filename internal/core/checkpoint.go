package core

import (
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/vsys"
)

// Replay from a checkpoint. A checkpoint (trace.Checkpoint) names an
// epoch boundary by its committed-event count and carries digests of
// the event stream and the virtual world at that point. Replay cannot
// deserialize thread state, so "starting at the checkpoint" is done by
// deterministically re-executing the prefix: the production schedule is
// a pure function of the recorded seeds (sched.NewRandomMP consumes
// randomness only per granted pick, identically with or without the
// run-grant fast path), so running the production strategy for exactly
// cp.Step committed events re-establishes the boundary. The restore
// strategy validates both digests at the switch point and only then
// hands the schedule to the director, which enforces the retained
// sketch window strictly from its first entry.
//
// The prefix runs with the world in Live mode, not Replay mode: the
// production world seed regenerates every recorded input
// deterministically, and — crucially — keeps blocking calls' recorded
// enabledness. Replay mode enables a blocked call (a queue Recv, say)
// as soon as a logged input exists for it, which offers the scheduler
// candidates the production run never saw and diverges the prefix
// (apache-25520's workers blocking on the listener queue exposed
// this). At the boundary the restore strategy flips the world into
// Replay mode with the input cursor fast-forwarded past the
// checkpoint's InputIndex, so the constrained tail is served logged
// inputs exactly as a whole-execution replay would serve them.
//
// The search space this buys is the point of the epoch design: flip
// points and sketch enforcement are confined to the window after the
// checkpoint, so search depth is bounded by the flip candidates of the
// retained epochs, not the whole execution.

// activeCheckpoint resolves the checkpoint a replay attempt starts
// from: the newest retained one, when the caller asked for
// checkpointed replay and the recording carries any.
func activeCheckpoint(rec *Recording, opts ReplayOptions) (trace.Checkpoint, bool) {
	if !opts.FromCheckpoint || rec.Epochs == nil {
		return trace.Checkpoint{}, false
	}
	return rec.Epochs.LastCheckpoint()
}

// windowFrom slices the recording's retained sketch entries to those at
// or after the checkpoint. Sketch holds the window starting at global
// entry index Epochs.EvictedEntries; the checkpoint's SketchIndex is a
// global index within that window (eviction drops checkpoints before
// the window, so the offset cannot go negative on a well-formed
// recording — a salvaged one is clamped).
func windowFrom(rec *Recording, cp trace.Checkpoint) []trace.SketchEntry {
	off := int64(cp.SketchIndex) - int64(rec.Epochs.EvictedEntries)
	if off < 0 {
		off = 0
	}
	if off > int64(len(rec.Sketch.Entries)) {
		off = int64(len(rec.Sketch.Entries))
	}
	return rec.Sketch.Entries[off:]
}

// restoreStrategy re-establishes a checkpoint boundary and then
// delegates to the director. Phase one (steps < boundary) forwards
// every pick to a fresh production strategy over a Live-mode world,
// reproducing the recorded prefix draw for draw; at the boundary it
// compares the running event digest and the world's state digest
// against the checkpoint's, and only on a match flips the world into
// Replay mode for the constrained tail. A mismatch marks the attempt
// diverged — the recording and this binary disagree about the prefix,
// so enforcement past the boundary would be meaningless.
//
// Like cancellableStrategy, it deliberately forwards no
// sched.RunGranter: budget-1 grants keep the phase switch exact (a
// multi-point run granted just before the boundary would overshoot it),
// and RandomMP's single-step continuation branch reproduces the same
// schedule without budgets.
type restoreStrategy struct {
	prod   sched.Strategy // production strategy for the prefix
	dir    *director
	world  *vsys.World
	inputs *trace.InputLog

	boundary  uint64 // cp.Step: committed events in the prefix
	inputFrom int    // cp.InputIndex: inputs the prefix consumes

	steps      uint64
	digest     *trace.Digest
	wantDigest uint64
	wantWorld  uint64
	switched   bool
	mismatch   bool
}

func newRestoreStrategy(rec *Recording, cp trace.Checkpoint, dir *director, world *vsys.World) *restoreStrategy {
	ro := rec.Options
	return &restoreStrategy{
		prod:       sched.NewRandomMP(ro.processors(), ro.preempt(), ro.ScheduleSeed),
		dir:        dir,
		world:      world,
		inputs:     rec.Inputs,
		boundary:   cp.Step,
		inputFrom:  int(cp.InputIndex),
		digest:     trace.NewDigest(),
		wantDigest: cp.EventDigest,
		wantWorld:  cp.WorldDigest,
	}
}

// Pick implements sched.Strategy.
func (r *restoreStrategy) Pick(view *sched.PickView) (trace.TID, bool) {
	if r.steps < r.boundary {
		return r.prod.Pick(view)
	}
	if !r.switched {
		r.switched = true
		if r.digest.Sum() != r.wantDigest || r.world.Digest() != r.wantWorld {
			r.mismatch = true
		} else {
			// Boundary validated: serve the rest of the recorded inputs
			// from the log, like a whole-execution replay past this point.
			r.world.StartReplayFrom(r.inputs, r.inputFrom)
		}
	}
	if r.mismatch {
		return trace.NoTID, false
	}
	return r.dir.Pick(view)
}

// OnEvent implements sched.Observer, folding the prefix's committed
// events into the digest the boundary check compares.
func (r *restoreStrategy) OnEvent(ev trace.Event) uint64 {
	if r.steps < r.boundary {
		r.digest.Entry(trace.EntryOf(ev))
	}
	r.steps++
	return 0
}
