package core

import (
	"sync"
	"sync/atomic"
)

// shardedFrontier is the directed search's work queue: a priority
// frontier of replayNodes ordered by (flip depth, push sequence),
// spread over independently-locked shards so attempt workers can push
// and steal without funneling through one lock.
//
// The (depth, seq) order preserves the search's breadth-first shape —
// all single flips before any pair, and within a level the ranking
// appendChildren pushed in — while letting children enter the moment
// their parent commits, with no wave barrier. With one shard (the
// workers=1 configuration) pops are exactly the sequential engine's
// FIFO: on a search tree, insertion order never decreases in depth, so
// the (depth, seq) minimum is the oldest node.
//
// With several shards, priority is exact within a shard and best-effort
// across them: Pop scans every shard's current minimum and takes the
// best, but a concurrent push may land a better node a moment later.
// That slack only ever reorders same-priority-class work between
// workers; it never loses a node.
type shardedFrontier struct {
	shards  []frontierShard
	size    atomic.Int64
	pushSeq atomic.Uint64
}

type frontierShard struct {
	mu sync.Mutex
	h  []frontierItem // binary min-heap by less()
}

type frontierItem struct {
	nd    replayNode
	depth int
	seq   uint64
}

func (a frontierItem) less(b frontierItem) bool {
	if a.depth != b.depth {
		return a.depth < b.depth
	}
	return a.seq < b.seq
}

// newShardedFrontier sizes the frontier for the given worker count.
func newShardedFrontier(workers int) *shardedFrontier {
	n := workers
	if n < 1 {
		n = 1
	}
	if n > 8 {
		n = 8
	}
	return &shardedFrontier{shards: make([]frontierShard, n)}
}

// Push adds a node; the push sequence both breaks depth ties (FIFO
// within a level) and round-robins nodes across shards.
func (f *shardedFrontier) Push(nd replayNode) {
	seq := f.pushSeq.Add(1)
	it := frontierItem{nd: nd, depth: len(nd.fs.flips), seq: seq}
	s := &f.shards[seq%uint64(len(f.shards))]
	s.mu.Lock()
	s.h = append(s.h, it)
	siftUp(s.h, len(s.h)-1)
	s.mu.Unlock()
	f.size.Add(1)
}

// Pop removes and returns the best node, scanning shards starting at
// the worker's home shard (so uncontended workers tend to reuse their
// own shard and steal only when it runs dry). ok=false means the
// frontier is empty.
func (f *shardedFrontier) Pop(home int) (replayNode, bool) {
	n := len(f.shards)
	for f.size.Load() > 0 {
		best := -1
		var bestItem frontierItem
		for i := 0; i < n; i++ {
			s := &f.shards[(home+i)%n]
			s.mu.Lock()
			if len(s.h) > 0 && (best < 0 || s.h[0].less(bestItem)) {
				best = (home + i) % n
				bestItem = s.h[0]
			}
			s.mu.Unlock()
		}
		if best < 0 {
			break // raced with concurrent pops; size check re-verifies
		}
		s := &f.shards[best]
		s.mu.Lock()
		if len(s.h) == 0 {
			s.mu.Unlock()
			continue // another worker drained it between scans; rescan
		}
		it := s.h[0]
		last := len(s.h) - 1
		s.h[0] = s.h[last]
		s.h = s.h[:last]
		if last > 0 {
			siftDown(s.h, 0)
		}
		s.mu.Unlock()
		f.size.Add(-1)
		return it.nd, true
	}
	return replayNode{}, false
}

// Len returns the current node count (exact between operations,
// advisory while workers are pushing and popping).
func (f *shardedFrontier) Len() int { return int(f.size.Load()) }

func siftUp(h []frontierItem, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h[i].less(h[p]) {
			return
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func siftDown(h []frontierItem, i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h[l].less(h[small]) {
			small = l
		}
		if r < n && h[r].less(h[small]) {
			small = r
		}
		if small == i {
			return
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}
