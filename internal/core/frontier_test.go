package core

import (
	"sync"
	"testing"
)

// nodeAtDepth fabricates a replayNode whose flip-set depth is d and
// whose identity encodes tag (distinct tags => distinct canonical keys).
func nodeAtDepth(d int, tag uint64) replayNode {
	fs := flipSet{}
	for i := 0; i < d; i++ {
		fs.flips = append(fs.flips, flip{addr: tag, holdTID: 1, holdCount: uint64(i + 1), untilTID: 2, untilCnt: uint64(i + 1)})
	}
	return replayNode{fs: fs}
}

func TestFrontierSingleShardIsFIFO(t *testing.T) {
	// One shard (the workers=1 shape) must pop in exact push order when
	// depth never decreases — the sequential engine's BFS queue.
	f := newShardedFrontier(1)
	var want []uint64
	for i := uint64(0); i < 20; i++ {
		depth := 1 + int(i/5) // non-decreasing, like a search tree
		f.Push(nodeAtDepth(depth, i))
		want = append(want, i)
	}
	for i, tag := range want {
		nd, ok := f.Pop(0)
		if !ok {
			t.Fatalf("pop %d: frontier empty early", i)
		}
		got := nd.fs.flips[0].addr
		if got != tag {
			t.Fatalf("pop %d: got tag %d, want %d (FIFO broken)", i, got, tag)
		}
	}
	if _, ok := f.Pop(0); ok || f.Len() != 0 {
		t.Fatal("frontier not empty after draining")
	}
}

func TestFrontierPriorityAcrossShards(t *testing.T) {
	// Shallower nodes pop first even when pushed later and landed on
	// other shards: the breadth-first shape survives sharding.
	f := newShardedFrontier(4)
	for i := uint64(0); i < 8; i++ {
		f.Push(nodeAtDepth(3, 100+i))
	}
	f.Push(nodeAtDepth(1, 7))
	nd, ok := f.Pop(2)
	if !ok || len(nd.fs.flips) != 1 {
		t.Fatalf("expected the depth-1 node first, got depth %d", len(nd.fs.flips))
	}
	if f.Len() != 8 {
		t.Fatalf("Len = %d, want 8", f.Len())
	}
}

func TestFrontierConcurrentNeverLosesNodes(t *testing.T) {
	// Hammer pushes and pops from many goroutines: every pushed node is
	// popped exactly once. Runs under -race in the tier-1 gate.
	f := newShardedFrontier(8)
	const producers, perProducer = 8, 200
	var mu sync.Mutex
	seen := make(map[uint64]int)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				tag := uint64(p*perProducer + i)
				f.Push(nodeAtDepth(1+int(tag%3), tag))
			}
		}(p)
	}
	prodDone := make(chan struct{})
	go func() { wg.Wait(); close(prodDone) }()
	var cg sync.WaitGroup
	for c := 0; c < 8; c++ {
		cg.Add(1)
		go func(home int) {
			defer cg.Done()
			for {
				nd, ok := f.Pop(home)
				if !ok {
					select {
					case <-prodDone:
						if f.Len() == 0 {
							return
						}
					default:
					}
					continue
				}
				mu.Lock()
				seen[nd.fs.flips[0].addr]++
				mu.Unlock()
			}
		}(c)
	}
	cg.Wait()
	if len(seen) != producers*perProducer {
		t.Fatalf("popped %d distinct nodes, want %d", len(seen), producers*perProducer)
	}
	for tag, n := range seen {
		if n != 1 {
			t.Fatalf("node %d popped %d times", tag, n)
		}
	}
}
