package core

import (
	"strings"
	"testing"

	"repro/internal/sched"
	"repro/internal/sketch"
)

func TestAdviseBranches(t *testing.T) {
	rec := &Recording{Scheme: sketch.SYNC}
	okRes := &ReplayResult{Reproduced: true}
	if !strings.Contains(Advise(rec, okRes), "no advice") {
		t.Fatal("reproduced case")
	}

	empty := &ReplayResult{}
	if !strings.Contains(Advise(rec, empty), "no attempts") {
		t.Fatal("empty case")
	}

	div := &ReplayResult{Attempts: 10, Stats: ReplayStats{Divergences: 8, CleanRuns: 2}}
	if !strings.Contains(Advise(rec, div), "diverged") {
		t.Fatal("divergence case")
	}

	other := &ReplayResult{Attempts: 10, Stats: ReplayStats{OtherFailures: 8, CleanRuns: 2}}
	if !strings.Contains(Advise(rec, other), "different failure") {
		t.Fatal("shadowing case")
	}

	clean := &ReplayResult{Attempts: 10, Stats: ReplayStats{CleanRuns: 10, RacesSeen: 50}}
	if !strings.Contains(Advise(rec, clean), "denser") {
		t.Fatal("sparse-sketch case")
	}

	dense := &Recording{Scheme: sketch.RW}
	if !strings.Contains(Advise(dense, clean), "MaxAttempts") {
		t.Fatal("dense-sketch case")
	}
}

func TestAdviseEndToEnd(t *testing.T) {
	// An impossible oracle exhausts the budget with clean runs; the
	// advice should point at density/budget.
	prog := orderBugProg()
	rec := recordBuggy(t, prog, sketch.SYNC)
	res := Replay(prog, rec, ReplayOptions{
		Feedback:    true,
		MaxAttempts: 6,
		Oracle:      func(*sched.Failure) bool { return false },
	})
	if res.Reproduced {
		t.Fatal("impossible oracle reproduced")
	}
	if Advise(rec, res) == "" {
		t.Fatal("no advice for failed search")
	}
}
