package core

import (
	"bytes"
	"context"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/appkit"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/search"
	"repro/internal/sketch"
)

func neverOracle(*sched.Failure) bool { return false }

// hookProg is a single-threaded program that calls hook between steps —
// a window for a test to cancel the search's context from *inside* a
// running attempt, deterministically.
func hookProg(hook func()) *appkit.Program {
	return &appkit.Program{
		Name: "hookprog",
		Run: func(env *appkit.Env) {
			th := env.T
			c := mem.NewCell("c", 0)
			for i := 0; i < 30; i++ {
				c.Store(th, uint64(i))
				th.Yield()
				if hook != nil {
					hook()
				}
			}
		},
	}
}

func TestReplayCancelledAttemptNeverCached(t *testing.T) {
	// Cancel the context from inside attempt 0's execution: the attempt
	// must surface as "cancelled" on every observability surface, count
	// in Stats.Cancelled, and never enter the schedule cache — its
	// outcome describes a truncated run.
	var armed, fired atomic.Bool
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	prog := hookProg(func() {
		if armed.Load() && fired.CompareAndSwap(false, true) {
			cancel()
		}
	})
	rec := Record(prog, Options{Scheme: sketch.SYNC, ScheduleSeed: 1, WorldSeed: 1, MaxSteps: 100_000})
	armed.Store(true)

	cache := NewSearchCache(0)
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	res := ReplayContext(ctx, prog, rec, ReplayOptions{
		Oracle:      neverOracle,
		MaxAttempts: 50,
		Workers:     1,
		Cache:       cache,
		Metrics:     reg,
		Trace:       obs.NewTraceSink(&buf),
	})
	if res.Err != context.Canceled {
		t.Fatalf("Err = %v, want context.Canceled", res.Err)
	}
	if res.Reproduced {
		t.Fatal("cancelled search reproduced")
	}
	if res.Attempts != 1 || res.Stats.Cancelled != 1 {
		t.Fatalf("attempts=%d cancelled=%d, want 1/1", res.Attempts, res.Stats.Cancelled)
	}
	if cache.Len() != 0 {
		t.Fatalf("cancelled attempt stored in the schedule cache (%d entries)", cache.Len())
	}
	if got := reg.Counter("pres_replay_cancelled_total").Value(); got != 1 {
		t.Fatalf("pres_replay_cancelled_total = %d, want 1", got)
	}
	if got := reg.Counter("pres_replay_searches_total", "result", "cancelled").Value(); got != 1 {
		t.Fatalf("searches_total{result=cancelled} = %d, want 1", got)
	}
	trace := buf.String()
	if !strings.Contains(trace, `"outcome":"cancelled"`) || !strings.Contains(trace, `"cancelled":true`) {
		t.Fatalf("trace missing cancelled markers:\n%s", trace)
	}
}

func TestReplayCancelCommitsDeterministicPrefix(t *testing.T) {
	// Cancelling between attempts at Workers=1 leaves a deterministic
	// committed prefix: exactly the attempts that finished before the
	// cancel, with identical stats across runs.
	prog := atomBugProg(3)
	rec := recordBuggy(t, prog, sketch.SYNC)
	run := func() *ReplayResult {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		return ReplayContext(ctx, prog, rec, ReplayOptions{
			Feedback:    true,
			Oracle:      neverOracle,
			MaxAttempts: 100,
			Workers:     1,
			OnAttempt: func(i int, mode, outcome string) {
				if i == 3 {
					cancel()
				}
			},
		})
	}
	a, b := run(), run()
	if a.Err != context.Canceled || b.Err != context.Canceled {
		t.Fatalf("Err = %v / %v, want context.Canceled", a.Err, b.Err)
	}
	if a.Attempts != 3 {
		t.Fatalf("attempts = %d, want exactly the 3 committed before the cancel", a.Attempts)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("cancelled prefix not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestReplayCancelDrainsWorkersWithoutLeak(t *testing.T) {
	// Mid-search cancellation at Workers=8 must drain the whole pool:
	// after ReplayContext returns, no search goroutine may linger.
	prog := atomBugProg(3)
	rec := recordBuggy(t, prog, sketch.SYNC)
	before := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		var n atomic.Int32
		res := ReplayContext(ctx, prog, rec, ReplayOptions{
			Feedback:    true,
			Oracle:      neverOracle,
			MaxAttempts: 400,
			Workers:     8,
			OnAttempt: func(i int, mode, outcome string) {
				if n.Add(1) == 5 {
					cancel()
				}
			},
		})
		cancel()
		if res.Err != context.Canceled {
			t.Fatalf("round %d: Err = %v, want context.Canceled", round, res.Err)
		}
		if res.Attempts >= 400 {
			t.Fatalf("round %d: search ran to budget despite cancel", round)
		}
	}
	// The runtime may briefly keep service goroutines around; poll.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after cancelled searches",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestReplayPreExpiredDeadline(t *testing.T) {
	// A context dead on arrival dispatches nothing and reports the
	// deadline distinctly from plain cancellation.
	prog := atomBugProg(3)
	rec := recordBuggy(t, prog, sketch.SYNC)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res := ReplayContext(ctx, prog, rec, ReplayOptions{
		Feedback: true, Oracle: MatchBugID("atom-bug"), Workers: 4,
	})
	if res.Err != context.DeadlineExceeded {
		t.Fatalf("Err = %v, want context.DeadlineExceeded", res.Err)
	}
	if res.Attempts != 0 || res.Reproduced {
		t.Fatalf("dead-on-arrival search did work: %+v", res)
	}
}

func TestRecordContextCancelled(t *testing.T) {
	// RecordContext under a dead context yields a recording whose result
	// is a ReasonCancelled failure — never mistaken for a manifested bug.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rec := RecordContext(ctx, atomBugProg(3), Options{
		Scheme: sketch.SYNC, ScheduleSeed: 1, WorldSeed: 1, MaxSteps: 100_000,
	})
	if rec.Result.Failure == nil || rec.Result.Failure.Reason != sched.ReasonCancelled {
		t.Fatalf("failure = %v, want ReasonCancelled", rec.Result.Failure)
	}
	if rec.BugFailure() != nil {
		t.Fatal("cancelled recording reports a bug failure")
	}
}

func TestPolicySeamMatchesLegacyFlags(t *testing.T) {
	// The Policy seam is behavior-preserving: an explicit policy must
	// retrace the exact search its legacy flag produced, attempt for
	// attempt (Workers=1 is deterministic).
	prog := atomBugProg(3)
	rec := recordBuggy(t, prog, sketch.SYNC)
	for _, tc := range []struct {
		name   string
		legacy ReplayOptions
		pol    search.Policy
	}{
		{"feedback", ReplayOptions{Feedback: true}, search.FeedbackDirected{}},
		{"probabilistic", ReplayOptions{Feedback: false}, search.Probabilistic{}},
	} {
		tc.legacy.Oracle = MatchBugID("atom-bug")
		tc.legacy.Workers = 1
		tc.legacy.MaxAttempts = 300
		viaFlag := Replay(prog, rec, tc.legacy)
		withPol := tc.legacy
		withPol.Feedback = false // must be ignored when Policy is set
		withPol.Policy = tc.pol
		viaPol := Replay(prog, rec, withPol)
		if viaFlag.Reproduced != viaPol.Reproduced ||
			viaFlag.Attempts != viaPol.Attempts ||
			viaFlag.Flips != viaPol.Flips ||
			!reflect.DeepEqual(viaFlag.Stats, viaPol.Stats) {
			t.Fatalf("%s: policy diverged from legacy flag:\nflag:   %+v\npolicy: %+v",
				tc.name, viaFlag, viaPol)
		}
	}
}
