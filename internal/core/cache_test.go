package core

import (
	"fmt"
	"testing"

	"repro/internal/sched"
	"repro/internal/sketch"
)

// The cache's own LRU/nil-safety unit tests moved to internal/search
// with the implementation; what stays here is the *engine's* cache
// contract — trajectory invariance, reproduction freshness, and the
// cross-search race stress.

func TestReplayCacheInvariant(t *testing.T) {
	// The tentpole's core invariant: a warm cache changes wall-clock
	// only, never the search trajectory. A second Workers=1 search over
	// the same recording must report the identical attempt count,
	// outcome and root causes — with every non-reproducing attempt
	// served from the cache (the success always re-executes).
	prog := atomBugProg(3)
	rec := recordBuggy(t, prog, sketch.SYNC)
	cache := NewSearchCache(0)
	opts := ReplayOptions{Feedback: true, Oracle: MatchBugID("atom-bug"), Workers: 1, Cache: cache}
	cold := Replay(prog, rec, opts)
	if !cold.Reproduced {
		t.Fatalf("cold search failed: %+v", cold.Stats)
	}
	if cold.Stats.CacheHits != 0 {
		t.Fatalf("cold search hit the cache %d times", cold.Stats.CacheHits)
	}
	if cold.Stats.CacheMisses != cold.Attempts {
		t.Fatalf("cold misses %d != attempts %d", cold.Stats.CacheMisses, cold.Attempts)
	}
	warm := Replay(prog, rec, opts)
	if warm.Attempts != cold.Attempts || warm.Reproduced != cold.Reproduced || warm.Flips != cold.Flips {
		t.Fatalf("warm search changed trajectory: cold %d attempts, warm %d", cold.Attempts, warm.Attempts)
	}
	if warm.Stats.CacheHits != warm.Attempts-1 || warm.Stats.CacheMisses != 1 {
		t.Fatalf("warm hits/misses = %d/%d, want %d/1 (success re-executes)",
			warm.Stats.CacheHits, warm.Stats.CacheMisses, warm.Attempts-1)
	}
	if out := Reproduce(prog, rec, warm.Order); out.Failure == nil || out.Failure.BugID != "atom-bug" {
		t.Fatalf("warm captured order lost the bug: %v", out.Failure)
	}
}

func TestReplayCacheNeverServesReproduction(t *testing.T) {
	// An attempt whose stored outcome matches the current oracle must
	// re-execute: Order must always come from a fresh run, and an
	// oracle change between searches must re-judge cached failures.
	prog := atomBugProg(3)
	rec := recordBuggy(t, prog, sketch.SYNC)
	cache := NewSearchCache(0)
	// First search: oracle rejects everything, so the bug-manifesting
	// attempts' failures enter the cache as "other".
	none := Replay(prog, rec, ReplayOptions{
		Feedback: true, Oracle: func(*sched.Failure) bool { return false },
		MaxAttempts: 40, Workers: 1, Cache: cache,
	})
	if none.Reproduced {
		t.Fatal("never-oracle reproduced")
	}
	// Second search with the real oracle shares the cache: hits are fine
	// for genuinely failed attempts, but the reproduction must come from
	// an execution with a captured order.
	res := Replay(prog, rec, ReplayOptions{
		Feedback: true, Oracle: MatchBugID("atom-bug"), Workers: 1, Cache: cache,
	})
	if !res.Reproduced {
		t.Fatalf("search failed: %+v", res.Stats)
	}
	if res.Order == nil || len(res.Order.Order) == 0 {
		t.Fatal("reproduction has no captured order — was it served from cache?")
	}
	if out := Reproduce(prog, rec, res.Order); out.Failure == nil || out.Failure.BugID != "atom-bug" {
		t.Fatalf("captured order lost the bug: %v", out.Failure)
	}
}

func TestSearchDedupRaceStress(t *testing.T) {
	// Satellite 4: the dedup set and commit path are mutated only under
	// the search mutex, and the schedule cache is shared across
	// concurrent searches. Hammer both from several full searches at
	// Workers: 8 — the -race gate (make stress runs this with -count=2)
	// must stay silent, and every search must behave.
	if testing.Short() {
		t.Skip("stress test")
	}
	prog := atomBugProg(3)
	rec := recordBuggy(t, prog, sketch.SYNC)
	cache := NewSearchCache(512)
	done := make(chan error, 6)
	for i := 0; i < 6; i++ {
		go func(i int) {
			oracle := MatchBugID("atom-bug")
			budget := 0 // full budget for reproducing searches
			if i%2 == 1 {
				// Odd searches never match: they exercise exhaustion,
				// frontier drying and heavy cache stores concurrently.
				oracle = func(*sched.Failure) bool { return false }
				budget = 60
			}
			res := Replay(prog, rec, ReplayOptions{
				Feedback: true, Oracle: oracle, MaxAttempts: budget,
				Workers: 8, AdaptiveWorkers: i%3 == 0, Cache: cache,
			})
			if i%2 == 0 && !res.Reproduced {
				done <- fmt.Errorf("search %d failed to reproduce: %+v", i, res.Stats)
				return
			}
			if i%2 == 1 && res.Reproduced {
				done <- fmt.Errorf("search %d reproduced against a never-oracle", i)
				return
			}
			done <- nil
		}(i)
	}
	for i := 0; i < 6; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if hits, misses := cache.Stats(); hits+misses == 0 {
		t.Fatal("shared cache saw no traffic")
	}
}
