package core

import (
	"time"

	"repro/internal/obs"
)

// This file renders the search's progress onto every observability
// surface — the structured trace sink, the metrics registry, and the
// legacy OnAttempt callback — in one place, so the engine (engine.go)
// stays measurement-free.

// reportAttempt publishes one finished attempt, in canonical order, on
// every observability surface: one event, rendered three ways.
func (o ReplayOptions) reportAttempt(idx int, directed bool, fs flipSet, out attemptOutcome) {
	if o.Trace == nil && o.Metrics == nil && o.OnAttempt == nil {
		return
	}
	mode := "random"
	if directed {
		mode = "directed"
	}
	outcome := outcomeName(out)
	o.Trace.Emit(obs.AttemptEvent{
		Event:          obs.EventAttempt,
		Attempt:        idx,
		Mode:           mode,
		FlipSetID:      fs.id,
		FlipDepth:      len(fs.flips),
		Outcome:        outcome,
		WallMS:         float64(out.wall) / float64(time.Millisecond),
		SketchConsumed: out.consumed,
		Divergence:     out.note,
		Cached:         out.cached,
		Cancelled:      out.cancelled,
	})
	if m := o.Metrics; m != nil {
		m.Counter("pres_replay_attempts_total", "mode", mode, "outcome", outcome).Inc()
		if out.cancelled {
			m.Counter("pres_replay_cancelled_total").Inc()
		}
		m.Histogram("pres_replay_attempt_wall_seconds", obs.DefaultTimeBuckets).Observe(out.wall.Seconds())
	}
	if o.OnAttempt != nil {
		o.OnAttempt(idx, mode, outcome)
	}
}

// reportSearch closes the search's observability: a summary trace
// event and the search-level metrics. Called on every Replay return
// path.
func (o ReplayOptions) reportSearch(r *ReplayResult) {
	o.Trace.Emit(obs.SummaryEvent{
		Event:       obs.EventSummary,
		Reproduced:  r.Reproduced,
		Attempts:    r.Attempts,
		Flips:       r.Flips,
		Divergences: r.Stats.Divergences,
		CleanRuns:   r.Stats.CleanRuns,
		RacesSeen:   r.Stats.RacesSeen,
		CacheHits:   r.Stats.CacheHits,
		CacheMisses: r.Stats.CacheMisses,
		Cancelled:   r.Err != nil,
	})
	if m := o.Metrics; m != nil {
		result := "exhausted"
		switch {
		case r.Reproduced:
			result = "reproduced"
		case r.Err != nil:
			result = "cancelled"
		}
		m.Counter("pres_replay_searches_total", "result", result).Inc()
		m.Counter("pres_replay_flips_enqueued_total").Add(uint64(r.Stats.FlipsEnqueued))
		m.Gauge("pres_replay_races_seen").Set(float64(r.Stats.RacesSeen))
		if r.Stats.CacheHits+r.Stats.CacheMisses > 0 {
			m.Counter("pres_replay_cache_hits_total").Add(uint64(r.Stats.CacheHits))
			m.Counter("pres_replay_cache_misses_total").Add(uint64(r.Stats.CacheMisses))
		}
	}
}

// waveBuckets are the occupancy histogram bounds: pool sizes worth
// distinguishing.
var waveBuckets = []float64{1, 2, 4, 8, 16, 32, 64}
