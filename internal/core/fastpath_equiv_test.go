package core

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/sketch"
)

// TestPropCoreFastPathEquivalence: the scheduler's run-grant fast path
// is invisible to everything PRES computes. For a corpus subset, a
// production recording made with the fast path enabled is byte-for-byte
// identical (sketch log and input log) to one made in single-step
// reference mode, and a full replay search over the recording follows
// the identical trajectory — same attempts, same flips, same captured
// order, same stats — in both modes. Only the fast-path step counter
// may differ: positive with run grants, zero in reference mode.
func TestPropCoreFastPathEquivalence(t *testing.T) {
	cases := []struct {
		app    string
		scheme sketch.Scheme
	}{
		{"fft", sketch.SYNC},
		{"lu", sketch.SYNC},
		{"radix", sketch.SYNC},
		{"mysqld", sketch.SYNC},
		{"aget", sketch.RW},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.app, func(t *testing.T) {
			prog, ok := apps.Get(tc.app)
			if !ok {
				t.Fatalf("unknown corpus app %q", tc.app)
			}
			// Prefer a seed whose production run manifests a bug so the
			// replay comparison exercises the directed search, feedback
			// and order capture; fall back to a clean recording (the
			// search trajectory must match either way).
			opt := Options{Scheme: tc.scheme, Processors: 4, WorldSeed: 11, MaxSteps: 400_000}
			for seed := int64(0); seed < 300; seed++ {
				opt.ScheduleSeed = seed
				if Record(prog, opt).BugFailure() != nil {
					break
				}
			}

			fastOpt, slowOpt := opt, opt
			slowOpt.SingleStep = true
			fast := Record(prog, fastOpt)
			slow := Record(prog, slowOpt)

			var fb, sb bytes.Buffer
			if err := fast.Write(&fb); err != nil {
				t.Fatal(err)
			}
			if err := slow.Write(&sb); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(fb.Bytes(), sb.Bytes()) {
				t.Fatalf("recorded logs differ between fast-path and single-step modes (%d vs %d bytes)", fb.Len(), sb.Len())
			}
			fr, sr := fast.Result, slow.Result
			if fr.Steps != sr.Steps || fr.BaseCost != sr.BaseCost || fr.Threads != sr.Threads {
				t.Fatalf("run shape differs: steps %d/%d cost %d/%d threads %d/%d",
					fr.Steps, sr.Steps, fr.BaseCost, sr.BaseCost, fr.Threads, sr.Threads)
			}
			if fr.Handoffs != sr.Handoffs {
				t.Fatalf("handoffs differ: fast %d, single-step %d", fr.Handoffs, sr.Handoffs)
			}
			if !reflect.DeepEqual(fr.EventsByKind, sr.EventsByKind) {
				t.Fatalf("event kind histograms differ: %v vs %v", fr.EventsByKind, sr.EventsByKind)
			}
			if (fr.Failure == nil) != (sr.Failure == nil) {
				t.Fatalf("failure presence differs: %v vs %v", fr.Failure, sr.Failure)
			}
			if fr.Failure != nil && (fr.Failure.Reason != sr.Failure.Reason || fr.Failure.BugID != sr.Failure.BugID || fr.Failure.Step != sr.Failure.Step) {
				t.Fatalf("failures differ: %v vs %v", fr.Failure, sr.Failure)
			}
			if sr.FastPathSteps != 0 {
				t.Fatalf("single-step recording claims %d fast-path steps", sr.FastPathSteps)
			}
			if fr.FastPathSteps == 0 {
				t.Fatalf("%s: fast-path recording committed no fast-path steps; batching/budgets not engaged", tc.app)
			}

			// The searches replay rec.Options, so rf runs every attempt
			// with the fast path and rs in single-step mode. Directed
			// attempts run on budget-1 grants (the director declares no
			// run budgets), so even the fast-path search reports zero
			// fast-path steps and the stats must match field for field.
			ropts := ReplayOptions{Feedback: true, MaxAttempts: 60}
			rf := Replay(prog, fast, ropts)
			rs := Replay(prog, slow, ropts)
			if rf.Reproduced != rs.Reproduced || rf.Attempts != rs.Attempts || rf.Flips != rs.Flips {
				t.Fatalf("search trajectories differ: %v/%d/%d vs %v/%d/%d",
					rf.Reproduced, rf.Attempts, rf.Flips, rs.Reproduced, rs.Attempts, rs.Flips)
			}
			if !reflect.DeepEqual(rf.Stats, rs.Stats) {
				t.Fatalf("search stats differ:\nfast: %+v\nslow: %+v", rf.Stats, rs.Stats)
			}
			if !reflect.DeepEqual(rf.Order, rs.Order) {
				t.Fatal("captured orders differ between modes")
			}
			if !reflect.DeepEqual(rf.RootCauses, rs.RootCauses) {
				t.Fatalf("root causes differ: %v vs %v", rf.RootCauses, rs.RootCauses)
			}
			// Budget-1 grants mean no fast-path steps, but handoffs are
			// per declared batch (the thread blocks once for the whole
			// run), so the search still amortizes handoffs below steps.
			if rf.Stats.FastPathSteps != 0 {
				t.Fatalf("directed attempts committed %d fast-path steps; the director must stay budget-1", rf.Stats.FastPathSteps)
			}
			if rf.Stats.Handoffs > rf.Stats.Steps {
				t.Fatalf("more handoffs (%d) than steps (%d)", rf.Stats.Handoffs, rf.Stats.Steps)
			}
			if rf.Reproduced {
				// The captured order must reproduce in both modes.
				of := Reproduce(prog, fast, rf.Order)
				os := Reproduce(prog, slow, rs.Order)
				if of.Failure == nil || os.Failure == nil || of.Failure.BugID != os.Failure.BugID {
					t.Fatalf("order reproduction differs: %v vs %v", of.Failure, os.Failure)
				}
				// Order replay, unlike the directed search, does consume
				// run declarations (OrderStrategy grants consecutive
				// same-thread runs), so the fast mode must amortize.
				if of.Handoffs >= of.Steps {
					t.Fatalf("order replay did not amortize handoffs: %d over %d steps", of.Handoffs, of.Steps)
				}
				if of.Steps != os.Steps || of.Handoffs != os.Handoffs {
					t.Fatalf("order replay shape differs: steps %d/%d handoffs %d/%d", of.Steps, os.Steps, of.Handoffs, os.Handoffs)
				}
			}
			t.Logf("%s: steps=%d handoffs=%d fastpath=%d attempts=%d reproduced=%v",
				tc.app, fr.Steps, fr.Handoffs, fr.FastPathSteps, rf.Attempts, rf.Reproduced)
		})
	}
}
