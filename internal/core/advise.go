package core

import (
	"fmt"

	"repro/internal/sketch"
)

// Advise turns a failed replay search's statistics into actionable
// guidance for the developer: which knob — sketch density, attempt
// budget, window retention — is the binding constraint. This mirrors
// the deployment guidance of the paper's discussion section: pick the
// cheapest sketch that still reproduces your failures, and densify only
// when the replayer tells you it is starving.
func Advise(rec *Recording, res *ReplayResult) string {
	if res.Reproduced {
		return "reproduced; no advice needed"
	}
	total := res.Stats.Divergences + res.Stats.CleanRuns + res.Stats.OtherFailures
	if total == 0 {
		return "no attempts ran; check the recording with Validate and raise MaxAttempts"
	}
	switch {
	case res.Stats.Divergences*2 > total:
		// The sketch cannot be honored: the recording and program
		// disagree, or the sketch pins a dimension the program no
		// longer reproduces deterministically.
		return fmt.Sprintf(
			"%d/%d attempts diverged from the sketch: verify the program and inputs match the recording "+
				"(Recording.Validate), or re-record — a divergence-dominated search almost never converges",
			res.Stats.Divergences, total)
	case res.Stats.OtherFailures*2 > total:
		return fmt.Sprintf(
			"%d/%d attempts manifested a different failure first: diagnose that bug (drop the Oracle filter) "+
				"or patch it and re-record, since it shadows the target",
			res.Stats.OtherFailures, total)
	case rec.Scheme == sketch.BASE || rec.Scheme == sketch.SYS || rec.Scheme == sketch.SYNC:
		denser := "SYNC"
		switch rec.Scheme {
		case sketch.SYNC, sketch.SYS:
			denser = "HYBRID or BB"
		}
		return fmt.Sprintf(
			"attempts run clean but the failure stays out of reach (%d races seen): the unrecorded space is too "+
				"large for this sketch — re-record with a denser mechanism (%s) or raise MaxAttempts beyond %d",
			res.Stats.RacesSeen, denser, res.Attempts)
	default:
		return fmt.Sprintf(
			"search exhausted %d attempts under a dense sketch: raise MaxAttempts, raise BranchFactor, or "+
				"check that the bug's oracle actually matches the production failure", res.Attempts)
	}
}
