package core

import (
	"math/rand"
	"sort"
	"time"

	"repro/internal/appkit"
	"repro/internal/obs"
	"repro/internal/race"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/vsys"
)

// Oracle decides whether a manifested failure is the bug under
// diagnosis. The default accepts any manifested bug.
type Oracle func(*sched.Failure) bool

// MatchBugID returns an oracle accepting assertion failures with the
// given id, or — for deadlock bugs — any detected deadlock.
func MatchBugID(id string) Oracle {
	return func(f *sched.Failure) bool {
		if f.Reason == sched.ReasonDeadlock {
			return id == "" || isDeadlockID(id)
		}
		return id == "" || f.BugID == id
	}
}

// isDeadlockID reports whether a corpus bug id denotes a deadlock bug
// (by convention their ids contain "deadlock").
func isDeadlockID(id string) bool {
	for i := 0; i+8 <= len(id); i++ {
		if id[i:i+8] == "deadlock" {
			return true
		}
	}
	return false
}

// ReplayOptions parameterizes the intelligent replayer.
type ReplayOptions struct {
	// MaxAttempts bounds the search; the paper uses 1000 as "not
	// reproduced". 0 means DefaultMaxAttempts.
	MaxAttempts int
	// Feedback enables race-directed search (the paper's feedback
	// generation). When false, each attempt explores the sketch-
	// constrained space with an independent random seed — the E5
	// ablation baseline.
	Feedback bool
	// BranchFactor bounds how many race flips a failed attempt enqueues
	// (nearest the failure point first). 0 means DefaultBranchFactor.
	BranchFactor int
	// Oracle matches the target bug; nil accepts any manifested bug.
	Oracle Oracle
	// MaxSteps bounds each attempt. 0 inherits the recording's bound.
	MaxSteps uint64
	// UseLockset selects the Eraser-style lockset detector for feedback
	// generation instead of the default happens-before detector — an
	// ablation of the feedback source (see BenchmarkAblationDetector).
	UseLockset bool
	// SketchTail, when positive, replays with only the last N sketch
	// entries, as a soft guide rather than a hard constraint. This
	// models bounded-storage deployments that truncate the sketch log
	// (the paper's answer to log growth is checkpointing; ours is tail
	// retention) — experiment E9 measures how reproduction degrades as
	// the retained fraction shrinks.
	SketchTail int
	// Parallelism runs replay attempts concurrently in waves of this
	// size (attempts are fully independent executions). The search
	// remains deterministic for a fixed value: the first success in
	// canonical attempt order wins and Attempts reports its position.
	// Values below 2 preserve the exact sequential search. Feedback
	// children enter the frontier one wave later than sequentially.
	Parallelism int
	// OnAttempt, if set, is called after each attempt (in canonical
	// order) with its 1-based index, mode ("directed" or "random") and
	// outcome ("reproduced", "clean", "diverged" or "other") — live
	// progress for interactive tools. It is implemented on top of the
	// same per-attempt events Trace receives.
	OnAttempt func(i int, mode, outcome string)
	// Metrics, when non-nil, receives the search's metrics: attempt
	// counters by mode and outcome, attempt wall-time histograms,
	// frontier depth, distinct races seen, wave occupancy and the
	// substrate's scheduler counters (see OBSERVABILITY.md). Nil, the
	// default, keeps the replay hot path free of measurement cost.
	Metrics *obs.Registry
	// Trace, when non-nil, receives one structured obs.AttemptEvent per
	// attempt in canonical order, closed by an obs.SummaryEvent — the
	// JSONL search trace OBSERVABILITY.md documents.
	Trace *obs.TraceSink
}

// DefaultMaxAttempts is the paper's reproduction budget.
const DefaultMaxAttempts = 1000

// DefaultBranchFactor bounds feedback fan-out per failed attempt.
const DefaultBranchFactor = 8

func (o ReplayOptions) maxAttempts() int {
	if o.MaxAttempts <= 0 {
		return DefaultMaxAttempts
	}
	return o.MaxAttempts
}

func (o ReplayOptions) branch() int {
	if o.BranchFactor <= 0 {
		return DefaultBranchFactor
	}
	return o.BranchFactor
}

func (o ReplayOptions) oracle() Oracle {
	if o.Oracle == nil {
		return func(f *sched.Failure) bool { return true }
	}
	return o.Oracle
}

// ReplayStats counts what the search did.
type ReplayStats struct {
	Divergences   int // attempts that diverged from the sketch
	CleanRuns     int // attempts that completed without the bug
	OtherFailures int // step limits or non-matching bugs
	RacesSeen     int // distinct race pairs observed across attempts
	FlipsEnqueued int // feedback children pushed
	FrontierDried bool
}

// ReplayResult is the outcome of the replay search.
type ReplayResult struct {
	Reproduced bool
	Attempts   int              // attempts performed (including the success)
	Failure    *sched.Failure   // the reproduced failure, if any
	Order      *trace.FullOrder // captured full order of the success
	Flips      int              // flips in the successful attempt's set
	// RootCauses are the unrecorded races the successful attempt had to
	// reverse relative to the deterministic baseline — the replayer's
	// diagnosis of which accesses constitute the bug. Empty when the
	// success came from a probabilistic attempt or needed no flips.
	RootCauses []race.Pair
	Stats      ReplayStats
}

type attemptOutcome struct {
	bug      bool
	failure  *sched.Failure
	races    []race.Pair
	order    *trace.FullOrder
	diverged bool
	clean    bool
	// horizon is the step nearest the recorded execution's end: the
	// step at which the sketch was fully consumed, or where the attempt
	// stopped if it never was. The production run died here, so races
	// near it are the prime flip candidates.
	horizon uint64
	// consumed counts the sketch entries the director honored; note is
	// its divergence note, if any; wall is the attempt's wall-clock
	// duration. All three feed the attempt trace (see obs.AttemptEvent).
	consumed int
	note     string
	wall     time.Duration
}

// runAttempt performs one coordinated replay: sketch enforcement plus
// the given flip set, with the race detector watching for feedback.
func runAttempt(prog *appkit.Program, rec *Recording, fs flipSet, rng *rand.Rand, opts ReplayOptions) attemptOutcome {
	start := time.Now()
	world := vsys.NewWorld(rec.Options.WorldSeed)
	world.StartReplay(rec.Inputs)

	entries := rec.Sketch.Entries
	softStart := false
	if opts.SketchTail > 0 && opts.SketchTail < len(entries) {
		// Tail-only replay: the prefix of the execution is
		// unconstrained, so the sketch can only ever be a soft guide.
		entries = entries[len(entries)-opts.SketchTail:]
		softStart = true
	}
	dir := newDirector(rec.Scheme, entries, fs, rng)
	dir.soft = dir.soft || softStart
	var det interface {
		sched.Observer
		Pairs() []race.Pair
	} = race.NewDetector()
	if opts.UseLockset {
		det = race.NewLocksetDetector()
	}
	cap := &orderCapture{}
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = rec.Options.MaxSteps
	}

	res := execute(prog, rec.Options, sched.Config{
		Strategy:  dir,
		Observers: []sched.Observer{dir, det, cap},
		MaxSteps:  maxSteps,
		Metrics:   opts.Metrics,
	}, world)

	out := attemptOutcome{races: det.Pairs(), horizon: dir.exhaustStep, consumed: dir.k, note: dir.divergeNote}
	if out.horizon == 0 {
		out.horizon = res.Steps
	}
	switch {
	case res.Failure == nil:
		out.clean = true
	case res.Failure.IsBug() && opts.oracle()(res.Failure):
		out.bug = true
		out.failure = res.Failure
		out.order = cap.full()
	case res.Failure.Reason == sched.ReasonDiverged:
		out.diverged = true
	}
	out.wall = time.Since(start)
	return out
}

// reportAttempt publishes one finished attempt, in canonical order, on
// every observability surface: the structured trace sink, the metrics
// registry, and the legacy OnAttempt callback — one event, rendered
// three ways.
func (o ReplayOptions) reportAttempt(idx int, directed bool, fs flipSet, out attemptOutcome) {
	if o.Trace == nil && o.Metrics == nil && o.OnAttempt == nil {
		return
	}
	mode := "random"
	if directed {
		mode = "directed"
	}
	outcome := outcomeName(out)
	o.Trace.Emit(obs.AttemptEvent{
		Event:          obs.EventAttempt,
		Attempt:        idx,
		Mode:           mode,
		FlipSetID:      fs.id,
		FlipDepth:      len(fs.flips),
		Outcome:        outcome,
		WallMS:         float64(out.wall) / float64(time.Millisecond),
		SketchConsumed: out.consumed,
		Divergence:     out.note,
	})
	if m := o.Metrics; m != nil {
		m.Counter("pres_replay_attempts_total", "mode", mode, "outcome", outcome).Inc()
		m.Histogram("pres_replay_attempt_wall_seconds", obs.DefaultTimeBuckets).Observe(out.wall.Seconds())
	}
	if o.OnAttempt != nil {
		o.OnAttempt(idx, mode, outcome)
	}
}

// reportSearch closes the search's observability: a summary trace
// event and the search-level metrics. Called on every Replay return
// path.
func (o ReplayOptions) reportSearch(r *ReplayResult) {
	o.Trace.Emit(obs.SummaryEvent{
		Event:       obs.EventSummary,
		Reproduced:  r.Reproduced,
		Attempts:    r.Attempts,
		Flips:       r.Flips,
		Divergences: r.Stats.Divergences,
		CleanRuns:   r.Stats.CleanRuns,
		RacesSeen:   r.Stats.RacesSeen,
	})
	if m := o.Metrics; m != nil {
		result := "exhausted"
		if r.Reproduced {
			result = "reproduced"
		}
		m.Counter("pres_replay_searches_total", "result", result).Inc()
		m.Counter("pres_replay_flips_enqueued_total").Add(uint64(r.Stats.FlipsEnqueued))
		m.Gauge("pres_replay_races_seen").Set(float64(r.Stats.RacesSeen))
	}
}

// waveBuckets are the occupancy histogram bounds: parallelism levels
// worth distinguishing.
var waveBuckets = []float64{1, 2, 4, 8, 16, 32, 64}

// Replay is the intelligent replayer: it searches the unrecorded
// non-deterministic space left by the sketch until the bug reproduces or
// the attempt budget is exhausted.
//
// With feedback (the paper's design — it is *probabilistic* replay),
// the search alternates two kinds of coordinated attempts: directed
// ones, each a deterministic function of the recorded sketch and a set
// of race flips learned from earlier failures (nearest the failure
// point first), and probabilistic ones that sample the sketch-
// constrained space with a time-weighted random schedule. Directed
// attempts systematically force the windows random sampling is unlikely
// to hit; random attempts cover window shapes the race-flip vocabulary
// cannot express. Without feedback, only the random sampling remains —
// the paper's ablation baseline.
func Replay(prog *appkit.Program, rec *Recording, opts ReplayOptions) *ReplayResult {
	r := &ReplayResult{}
	if !opts.Feedback {
		return replayNoFeedback(prog, rec, opts, r)
	}

	frontier := []replayNode{{}}
	tried := map[string]bool{"": true}
	racesSeen := map[string]bool{}

	// The production run's failing thread, if the recording captured the
	// failure: races involving it are the prime suspects.
	failTID := trace.NoTID
	if f := rec.BugFailure(); f != nil {
		failTID = f.TID
	}

	wave := opts.Parallelism
	if wave < 1 {
		wave = 1
	}
	for r.Attempts < opts.maxAttempts() {
		// Compose the next wave of jobs: odd attempts sample the space
		// probabilistically; even attempts pop the directed frontier
		// (FIFO: breadth-first over flip depth — nearly every real bug
		// needs only one or two reorderings, so all single flips are
		// tried before any pair, and within a level insertion order
		// keeps the best-ranked candidates first).
		type job struct {
			directed bool
			nd       replayNode
			seed     int64
			out      attemptOutcome
		}
		var jobs []*job
		for len(jobs) < wave && r.Attempts+len(jobs) < opts.maxAttempts() {
			idx := r.Attempts + len(jobs)
			if idx%2 == 1 || len(frontier) == 0 {
				jobs = append(jobs, &job{seed: int64(idx)})
				continue
			}
			jobs = append(jobs, &job{directed: true, nd: frontier[0]})
			frontier = frontier[1:]
		}
		if len(jobs) == 0 {
			break
		}
		if m := opts.Metrics; m != nil {
			m.Histogram("pres_replay_wave_occupancy", waveBuckets).Observe(float64(len(jobs)))
		}
		if len(jobs) == 1 {
			j := jobs[0]
			if j.directed {
				j.out = runAttempt(prog, rec, j.nd.fs, nil, opts)
			} else {
				j.out = runAttempt(prog, rec, flipSet{}, rand.New(rand.NewSource(j.seed)), opts)
			}
		} else {
			done := make(chan struct{})
			for _, j := range jobs {
				go func(j *job) {
					if j.directed {
						j.out = runAttempt(prog, rec, j.nd.fs, nil, opts)
					} else {
						j.out = runAttempt(prog, rec, flipSet{}, rand.New(rand.NewSource(j.seed)), opts)
					}
					done <- struct{}{}
				}(j)
			}
			for range jobs {
				<-done
			}
		}

		// Consume outcomes in canonical order; the first success wins.
		var succ *job
		for _, j := range jobs {
			r.Attempts++
			opts.reportAttempt(r.Attempts, j.directed, j.nd.fs, j.out)
			if j.out.bug {
				succ = j
				break
			}
			switch {
			case j.out.diverged:
				r.Stats.Divergences++
			case j.out.clean:
				r.Stats.CleanRuns++
			default:
				r.Stats.OtherFailures++
			}
			for _, p := range j.out.races {
				racesSeen[p.Key()] = true
			}
			r.Stats.RacesSeen = len(racesSeen)
			if j.directed {
				var added int
				frontier, added = appendChildren(frontier, j.nd, j.out, failTID, tried, opts)
				r.Stats.FlipsEnqueued += added
			}
		}
		if m := opts.Metrics; m != nil {
			m.Gauge("pres_replay_frontier_depth").Set(float64(len(frontier)))
			m.Gauge("pres_replay_frontier_depth_peak").SetMax(float64(len(frontier)))
		}
		if succ != nil {
			r.Reproduced = true
			r.Failure = succ.out.failure
			r.Order = succ.out.order
			if succ.directed {
				r.Flips = len(succ.nd.fs.flips)
				r.RootCauses = succ.nd.fs.pairs()
			}
			opts.reportSearch(r)
			return r
		}
	}
	r.Stats.FrontierDried = len(frontier) == 0
	opts.reportSearch(r)
	return r
}

// replayNode is one point in the directed search tree: a flip set plus
// the race keys its parent attempt observed — feedback prioritizes races
// a node's deviation *created*, which localize the next flip to the
// perturbed neighborhood (the paper's "compare the failed replay with
// the recording").
type replayNode struct {
	fs          flipSet
	parentRaces map[string]bool
}

// appendChildren ranks a failed directed attempt's races and appends the
// resulting child flip sets to the frontier. Ranking: races the parent's
// deviation newly created beat pre-existing ones (at most two slots go
// to the latter — they are reachable from other nodes too), and within a
// tier, races closest to the recorded horizon — the step where the
// truncated production sketch ran out, i.e. where the production run
// died — go first; races involving the production run's failing thread
// lead overall, preferring flips that hold *its* access while the
// partner slips in.
func appendChildren(frontier []replayNode, nd replayNode, out attemptOutcome, failTID trace.TID, tried map[string]bool, opts ReplayOptions) ([]replayNode, int) {
	if len(nd.fs.flips) >= maxFlipDepth {
		return frontier, 0 // deep chains are noise; let siblings run
	}
	myRaces := make(map[string]bool, len(out.races))
	for _, p := range out.races {
		myRaces[p.Key()] = true
	}
	dist := func(p race.Pair) uint64 {
		d := out.horizon - p.SecondSeq
		if p.SecondSeq >= out.horizon {
			d = p.SecondSeq - out.horizon
		}
		if failTID != trace.NoTID {
			switch {
			case p.First.TID == failTID:
				// best tier: no penalty
			case p.Second.TID == failTID:
				d += 1 << 24
			default:
				d += 1 << 32
			}
		}
		return d
	}
	byDist := make([]race.Pair, len(out.races))
	copy(byDist, out.races)
	sort.SliceStable(byDist, func(i, j int) bool { return dist(byDist[i]) < dist(byDist[j]) })

	added := 0
	oldSlots := 2
	for _, wantFresh := range []bool{true, false} {
		for _, p := range byDist {
			if added >= opts.branch() {
				break
			}
			fresh := nd.parentRaces == nil || !nd.parentRaces[p.Key()]
			if wantFresh != fresh {
				continue
			}
			if !fresh && oldSlots == 0 {
				continue
			}
			child, ok := nd.fs.with(flipOf(p))
			if !ok || tried[child.id] {
				continue
			}
			tried[child.id] = true
			if !fresh {
				oldSlots--
			}
			frontier = append(frontier, replayNode{fs: child, parentRaces: myRaces})
			added++
		}
	}
	return frontier, added
}

// maxFlipDepth caps feedback chains: the breadth-first search tries all
// single flips, then pairs, and so on; real concurrency bugs virtually
// always fall within a handful of simultaneous reorderings, and each
// extra level multiplies the tree by the branch factor.
const maxFlipDepth = 4

// outcomeName classifies an attempt outcome for progress reporting.
func outcomeName(out attemptOutcome) string {
	switch {
	case out.bug:
		return "reproduced"
	case out.clean:
		return "clean"
	case out.diverged:
		return "diverged"
	default:
		return "other"
	}
}

func replayNoFeedback(prog *appkit.Program, rec *Recording, opts ReplayOptions, r *ReplayResult) *ReplayResult {
	racesSeen := map[string]bool{}
	for i := 0; i < opts.maxAttempts(); i++ {
		var rng *rand.Rand
		if i > 0 {
			// Attempt 0 is the deterministic baseline (comparable to
			// feedback mode's first attempt); later attempts are random.
			rng = rand.New(rand.NewSource(int64(i)))
		}
		out := runAttempt(prog, rec, flipSet{}, rng, opts)
		r.Attempts++
		opts.reportAttempt(r.Attempts, false, flipSet{}, out)
		if out.bug {
			r.Reproduced = true
			r.Failure = out.failure
			r.Order = out.order
			opts.reportSearch(r)
			return r
		}
		switch {
		case out.diverged:
			r.Stats.Divergences++
		case out.clean:
			r.Stats.CleanRuns++
		default:
			r.Stats.OtherFailures++
		}
		for _, p := range out.races {
			racesSeen[p.Key()] = true
		}
		r.Stats.RacesSeen = len(racesSeen)
	}
	opts.reportSearch(r)
	return r
}

// Reproduce replays a captured full order and returns the run's result;
// with a faithful order the recorded bug manifests every time.
func Reproduce(prog *appkit.Program, rec *Recording, order *trace.FullOrder) *sched.Result {
	world := vsys.NewWorld(rec.Options.WorldSeed)
	world.StartReplay(rec.Inputs)
	return execute(prog, rec.Options, sched.Config{
		Strategy: &sched.OrderStrategy{Order: order.Order},
		MaxSteps: rec.Options.MaxSteps,
	}, world)
}

// tightWindow is the global-step distance under which a race is
// considered "tight" and prioritized by feedback: an access pair that
// nearly touched is an atomicity-violation-shaped window whose flip
// rarely wedges the schedule.
const tightWindow = 100
