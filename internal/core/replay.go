package core

import (
	"context"

	"repro/internal/appkit"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/race"
	"repro/internal/sched"
	"repro/internal/search"
	"repro/internal/trace"
	"repro/internal/vsys"
)

// Oracle decides whether a manifested failure is the bug under
// diagnosis. The default accepts any manifested bug.
type Oracle func(*sched.Failure) bool

// MatchBugID returns an oracle accepting assertion failures with the
// given id, or — for deadlock bugs — any detected deadlock.
func MatchBugID(id string) Oracle {
	return func(f *sched.Failure) bool {
		if f.Reason == sched.ReasonDeadlock {
			return id == "" || isDeadlockID(id)
		}
		return id == "" || f.BugID == id
	}
}

// isDeadlockID reports whether a corpus bug id denotes a deadlock bug
// (by convention their ids contain "deadlock").
func isDeadlockID(id string) bool {
	for i := 0; i+8 <= len(id); i++ {
		if id[i:i+8] == "deadlock" {
			return true
		}
	}
	return false
}

// SearchCache is the cross-attempt schedule cache consumed through
// ReplayOptions.Cache; it lives in internal/search and is re-exported
// here for the public API.
type SearchCache = search.Cache

// DefaultSearchCacheSize is the entry cap a zero-capacity
// NewSearchCache gets.
const DefaultSearchCacheSize = search.DefaultCacheSize

// NewSearchCache returns an empty cache holding at most capacity
// entries (<=0 selects DefaultSearchCacheSize), evicting
// least-recently used.
func NewSearchCache(capacity int) *SearchCache { return search.NewCache(capacity) }

// ReplayOptions parameterizes the intelligent replayer.
type ReplayOptions struct {
	// MaxAttempts bounds the search; the paper uses 1000 as "not
	// reproduced". 0 means DefaultMaxAttempts.
	MaxAttempts int
	// Feedback enables race-directed search (the paper's feedback
	// generation). When false, each attempt explores the sketch-
	// constrained space with an independent random seed — the E5
	// ablation baseline. Ignored when Policy is set.
	Feedback bool
	// Policy composes the search's attempt kinds — which canonical
	// indices pop the directed frontier and which sample randomly (see
	// internal/search.Policy). Nil derives the policy from Feedback:
	// search.FeedbackDirected when true, search.Probabilistic when
	// false. Setting it plugs in alternative strategies (e.g.
	// search.StickyDirected) without touching the engine.
	Policy search.Policy
	// BranchFactor bounds how many race flips a failed attempt enqueues
	// (nearest the failure point first). 0 means DefaultBranchFactor.
	BranchFactor int
	// Oracle matches the target bug; nil accepts any manifested bug.
	Oracle Oracle
	// MaxSteps bounds each attempt. 0 inherits the recording's bound.
	MaxSteps uint64
	// UseLockset selects the Eraser-style lockset detector for feedback
	// generation instead of the default happens-before detector — an
	// ablation of the feedback source (see BenchmarkAblationDetector).
	UseLockset bool
	// SketchTail, when positive, replays with only the last N sketch
	// entries, as a soft guide rather than a hard constraint. This
	// models bounded-storage deployments that truncate the sketch log
	// (the paper's answer to log growth is checkpointing; ours is tail
	// retention) — experiment E9 measures how reproduction degrades as
	// the retained fraction shrinks.
	SketchTail int
	// FromCheckpoint starts every attempt from the recording's newest
	// retained checkpoint (recordings made with Options.EpochRing and
	// CheckpointEvery > 0): the prefix up to the checkpoint is
	// re-executed deterministically under the production strategy and
	// validated against the checkpoint's digests, then the director
	// enforces only the sketch window from the checkpoint on. Flip-point
	// enumeration is likewise confined to races after the boundary, so
	// search depth is bounded by the retained epochs, not the whole
	// execution. Ignored (with no effect on the search trajectory) when
	// the recording carries no checkpoint. Overrides SketchTail.
	FromCheckpoint bool
	// PrefixSnapshots enables snapshot-tree search (snapshot.go):
	// directed attempts capture world + engine snapshots at scheduler
	// quiescent points, keyed by flip-set prefix, and child attempts
	// whose flip sets extend a captured prefix resume from the deepest
	// safe snapshot instead of re-executing from step 0. Reproduction
	// results and the Workers:1 search trajectory are unchanged (the
	// equivalence property tests pin this); what changes is the work: a
	// restored attempt fast-forwards its shared prefix mechanically and
	// pays detection and scheduling-decision cost only on its divergent
	// suffix. Ignored under FromCheckpoint (the recording checkpoint
	// already anchors every attempt) and for non-feedback policies
	// (without a frontier there are no shared prefixes).
	PrefixSnapshots bool
	// SnapshotBudgetBytes bounds the in-memory snapshot cache;
	// least-recently-used snapshots are evicted past it. 0 means
	// search.DefaultSnapshotBudget (64 MiB).
	SnapshotBudgetBytes int64
	// Workers sizes the work-stealing attempt pool. Each worker pulls
	// the next canonical attempt — alternating probabilistic samples
	// and directed frontier pops — and runs it as an independent
	// execution; results commit strictly in canonical attempt order, so
	// the first success in that order wins and Attempts reports its
	// position. The first reproduction cooperatively cancels in-flight
	// later attempts. Workers <= 1 preserves the exact sequential
	// search, attempt for attempt — the deterministic baseline.
	Workers int
	// AdaptiveWorkers lets the pool shrink and regrow between 1 and
	// Workers, driven by the measured dispatch occupancy (the
	// pres_replay_wave_occupancy signal) and the remaining attempt
	// budget, instead of pinning Workers attempts in flight.
	AdaptiveWorkers bool
	// Cache, when non-nil, memoizes attempt outcomes across searches
	// and workers, keyed by the attempt's canonical identity (schedule
	// policy + flip set + a digest of the recording and replay knobs).
	// A hit replaces the simulated execution with the stored outcome —
	// wall-clock changes, the search trajectory does not, and
	// reproductions are always re-executed so the captured order is
	// fresh. Share one cache between searches of the same recording to
	// amortize repeated exploration.
	Cache *SearchCache
	// OnAttempt, if set, is called after each attempt (in canonical
	// order) with its 1-based index, mode ("directed" or "random") and
	// outcome ("reproduced", "clean", "diverged", "cancelled" or
	// "other") — live progress for interactive tools. It is implemented
	// on top of the same per-attempt events Trace receives.
	OnAttempt func(i int, mode, outcome string)
	// Metrics, when non-nil, receives the search's metrics: attempt
	// counters by mode and outcome, attempt wall-time histograms,
	// frontier depth, distinct races seen, worker occupancy, cache
	// hit/miss counters and the substrate's scheduler counters (see
	// OBSERVABILITY.md). Nil, the default, keeps the replay hot path
	// free of measurement cost.
	Metrics *obs.Registry
	// Trace, when non-nil, receives one structured obs.AttemptEvent per
	// attempt in canonical order, closed by an obs.SummaryEvent — the
	// JSONL search trace OBSERVABILITY.md documents.
	Trace *obs.TraceSink
}

// DefaultMaxAttempts is the paper's reproduction budget.
const DefaultMaxAttempts = 1000

// DefaultBranchFactor bounds feedback fan-out per failed attempt.
const DefaultBranchFactor = 8

// normalize resolves derived defaults into canonical form — the one
// place the Feedback→Policy derivation lives. Every public entry point
// calls it once, so the engine below only ever sees Workers >= 1 and a
// non-nil Policy.
func (o ReplayOptions) normalize() ReplayOptions {
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.Policy == nil {
		if o.Feedback {
			o.Policy = search.FeedbackDirected{}
		} else {
			o.Policy = search.Probabilistic{}
		}
	}
	return o
}

func (o ReplayOptions) maxAttempts() int {
	if o.MaxAttempts <= 0 {
		return DefaultMaxAttempts
	}
	return o.MaxAttempts
}

func (o ReplayOptions) branch() int {
	if o.BranchFactor <= 0 {
		return DefaultBranchFactor
	}
	return o.BranchFactor
}

func (o ReplayOptions) oracle() Oracle {
	if o.Oracle == nil {
		return func(f *sched.Failure) bool { return true }
	}
	return o.Oracle
}

// ReplayStats counts what the search did.
type ReplayStats struct {
	Divergences   int // attempts that diverged from the sketch
	CleanRuns     int // attempts that completed without the bug
	OtherFailures int // step limits or non-matching bugs
	Cancelled     int // attempts cut short by context cancellation
	RacesSeen     int // distinct race pairs observed across attempts
	FlipsEnqueued int // feedback children pushed
	CacheHits     int // attempts answered by the schedule cache
	CacheMisses   int // attempts executed with the cache enabled
	FrontierDried bool
	// Steps, Handoffs and FastPathSteps total the executed attempts'
	// scheduler counters (sched.Result): committed points, strategy
	// handoffs, and grants committed on the run-grant fast path.
	// Handoffs/Steps is the search's handoff amortization; cached
	// attempts execute nothing and contribute nothing.
	Steps         uint64
	Handoffs      uint64
	FastPathSteps uint64
	// Prefix-snapshot accounting (PrefixSnapshots on): attempts restored
	// from / denied a parent snapshot, snapshots captured and evicted,
	// bytes written into the snapshot cache, and the total steps the
	// restored attempts fast-forwarded mechanically instead of deciding.
	// Steps - FastForwardSteps is the search's truly re-executed work —
	// the quantity the snapshot tree exists to shrink.
	SnapshotHits     int
	SnapshotMisses   int
	SnapshotCaptures int
	SnapshotEvicted  int
	SnapshotBytes    int64
	FastForwardSteps uint64
}

// ReplayResult is the outcome of the replay search.
type ReplayResult struct {
	Reproduced bool
	Attempts   int              // attempts performed (including the success)
	Failure    *sched.Failure   // the reproduced failure, if any
	Order      *trace.FullOrder // captured full order of the success
	Flips      int              // flips in the successful attempt's set
	// RootCauses are the unrecorded races the successful attempt had to
	// reverse relative to the deterministic baseline — the replayer's
	// diagnosis of which accesses constitute the bug. Empty when the
	// success came from a probabilistic attempt or needed no flips.
	RootCauses []race.Pair
	Stats      ReplayStats
	// Err distinguishes an interrupted search from an exhausted one:
	// context.Canceled or context.DeadlineExceeded when the search's
	// context ended before the budget did, nil otherwise. A search that
	// reproduced reports Err == nil even if cancellation raced its
	// shutdown — a success is a success. Attempts and Stats always
	// describe the committed canonical prefix.
	Err error
}

// Replay is the intelligent replayer: it searches the unrecorded
// non-deterministic space left by the sketch until the bug reproduces or
// the attempt budget is exhausted. It is ReplayContext with a background
// context.
func Replay(prog *appkit.Program, rec *Recording, opts ReplayOptions) *ReplayResult {
	return ReplayContext(context.Background(), prog, rec, opts)
}

// ReplayContext runs the replay search under ctx.
//
// With feedback (the paper's design — it is *probabilistic* replay),
// the search alternates two kinds of coordinated attempts: directed
// ones, each a deterministic function of the recorded sketch and a set
// of race flips learned from earlier failures (nearest the failure
// point first), and probabilistic ones that sample the sketch-
// constrained space with a time-weighted random schedule. Directed
// attempts systematically force the windows random sampling is unlikely
// to hit; random attempts cover window shapes the race-flip vocabulary
// cannot express. Without feedback, only the random sampling remains —
// the paper's ablation baseline. ReplayOptions.Policy plugs other
// compositions into the same engine.
//
// The search runs on the internal/exec canonical-commit pool over the
// internal/search sharded priority frontier: there is no wave barrier —
// a failed directed attempt's children enter the frontier the moment it
// commits, and any idle worker steals them. Attempt outcomes commit
// strictly in canonical attempt order, so stats, feedback, dedup and
// every observability surface behave as if the attempts had run
// sequentially; the first success in canonical order wins and
// cooperatively cancels in-flight later attempts. With Workers <= 1 the
// engine degenerates to the exact sequential search — dispatch, execute
// and commit strictly alternate — which is the deterministic baseline
// the tests pin.
//
// Cancelling ctx stops the search cooperatively: no new attempts
// dispatch, in-flight attempts abort at their next scheduling point,
// already-completed attempts still commit in canonical order, and the
// pool drains without leaking a goroutine. The result reports the
// committed prefix with Err set to the context's error.
func ReplayContext(ctx context.Context, prog *appkit.Program, rec *Recording, opts ReplayOptions) *ReplayResult {
	opts = opts.normalize()
	s := &searchState{
		prog:      prog,
		rec:       rec,
		opts:      opts,
		pol:       opts.Policy,
		feedback:  opts.Policy.UsesFeedback(),
		budget:    opts.maxAttempts(),
		maxW:      opts.Workers,
		failTID:   trace.NoTID,
		seen:      map[string]bool{"": true},
		racesSeen: map[string]bool{},
		r:         &ReplayResult{},
	}
	s.cancel.Store(cancelNone)
	s.likelyWinner.Store(-1)
	if opts.Cache != nil || opts.PrefixSnapshots {
		s.digest = searchDigest(prog, rec, opts)
	}
	if s.feedback {
		s.frontier = search.NewFrontier[replayNode](s.maxW)
		s.frontier.Push(replayNode{}, 0)
		if opts.PrefixSnapshots {
			if _, cp := activeCheckpoint(rec, opts); !cp {
				s.snaps = search.NewSnapshotCache(opts.SnapshotBudgetBytes)
			}
		}
		// The production run's failing thread, if the recording captured
		// the failure: races involving it are the prime suspects.
		if f := rec.BugFailure(); f != nil {
			s.failTID = f.TID
		}
	}
	var active *obs.Gauge
	var occ *obs.Histogram
	if m := opts.Metrics; m != nil {
		active = m.Gauge("pres_replay_workers_active")
		occ = m.Histogram("pres_replay_wave_occupancy", waveBuckets)
		if _, ok := activeCheckpoint(rec, opts); ok {
			m.Counter("pres_replay_from_checkpoint_total", "scheme", rec.Scheme.String()).Inc()
		}
	}

	err := exec.Run(ctx, exec.Config{
		Workers:   s.maxW,
		Budget:    s.budget,
		Adaptive:  opts.AdaptiveWorkers,
		Active:    active,
		Occupancy: occ,
	}, s)
	if err == nil {
		// The pool can finish its last dispatched indices while the
		// context expires; the search was still cut short.
		err = ctx.Err()
	}
	if s.r.Reproduced {
		err = nil // a success that raced shutdown is still a success
	}
	s.r.Err = err

	if !s.r.Reproduced && err == nil && s.feedback {
		s.r.Stats.FrontierDried = s.frontier.Len() == 0
		if m := opts.Metrics; m != nil {
			m.Gauge("pres_replay_frontier_depth").Set(float64(s.frontier.Len()))
		}
	}
	opts.reportSearch(s.r)
	return s.r
}

// Reproduce replays a captured full order and returns the run's result;
// with a faithful order the recorded bug manifests every time.
func Reproduce(prog *appkit.Program, rec *Recording, order *trace.FullOrder) *sched.Result {
	return ReproduceContext(context.Background(), prog, rec, order)
}

// ReproduceContext replays a captured full order under ctx; a cancelled
// context unwinds the execution at its next scheduling point with a
// ReasonCancelled failure.
func ReproduceContext(ctx context.Context, prog *appkit.Program, rec *Recording, order *trace.FullOrder) *sched.Result {
	world := vsys.NewWorld(rec.Options.WorldSeed)
	world.StartReplay(rec.Inputs)
	return execute(prog, rec.Options, sched.Config{
		Strategy: &sched.OrderStrategy{Order: order.Order},
		MaxSteps: rec.Options.MaxSteps,
		Ctx:      ctx,
	}, world)
}
