package core

import (
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/appkit"
	"repro/internal/obs"
	"repro/internal/race"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/vsys"
)

// Oracle decides whether a manifested failure is the bug under
// diagnosis. The default accepts any manifested bug.
type Oracle func(*sched.Failure) bool

// MatchBugID returns an oracle accepting assertion failures with the
// given id, or — for deadlock bugs — any detected deadlock.
func MatchBugID(id string) Oracle {
	return func(f *sched.Failure) bool {
		if f.Reason == sched.ReasonDeadlock {
			return id == "" || isDeadlockID(id)
		}
		return id == "" || f.BugID == id
	}
}

// isDeadlockID reports whether a corpus bug id denotes a deadlock bug
// (by convention their ids contain "deadlock").
func isDeadlockID(id string) bool {
	for i := 0; i+8 <= len(id); i++ {
		if id[i:i+8] == "deadlock" {
			return true
		}
	}
	return false
}

// ReplayOptions parameterizes the intelligent replayer.
type ReplayOptions struct {
	// MaxAttempts bounds the search; the paper uses 1000 as "not
	// reproduced". 0 means DefaultMaxAttempts.
	MaxAttempts int
	// Feedback enables race-directed search (the paper's feedback
	// generation). When false, each attempt explores the sketch-
	// constrained space with an independent random seed — the E5
	// ablation baseline.
	Feedback bool
	// BranchFactor bounds how many race flips a failed attempt enqueues
	// (nearest the failure point first). 0 means DefaultBranchFactor.
	BranchFactor int
	// Oracle matches the target bug; nil accepts any manifested bug.
	Oracle Oracle
	// MaxSteps bounds each attempt. 0 inherits the recording's bound.
	MaxSteps uint64
	// UseLockset selects the Eraser-style lockset detector for feedback
	// generation instead of the default happens-before detector — an
	// ablation of the feedback source (see BenchmarkAblationDetector).
	UseLockset bool
	// SketchTail, when positive, replays with only the last N sketch
	// entries, as a soft guide rather than a hard constraint. This
	// models bounded-storage deployments that truncate the sketch log
	// (the paper's answer to log growth is checkpointing; ours is tail
	// retention) — experiment E9 measures how reproduction degrades as
	// the retained fraction shrinks.
	SketchTail int
	// Workers sizes the work-stealing attempt pool. Each worker pulls
	// the next canonical attempt — alternating probabilistic samples
	// and directed frontier pops — and runs it as an independent
	// execution; results commit strictly in canonical attempt order, so
	// the first success in that order wins and Attempts reports its
	// position. The first reproduction cooperatively cancels in-flight
	// later attempts. Workers <= 1 preserves the exact sequential
	// search, attempt for attempt — the deterministic baseline. 0
	// inherits Parallelism.
	Workers int
	// Parallelism is the legacy name for Workers (the old engine ran
	// attempts in lock-step waves of this size); it is honored when
	// Workers is 0.
	Parallelism int
	// AdaptiveWorkers lets the pool shrink and regrow between 1 and
	// Workers, driven by the measured dispatch occupancy (the
	// pres_replay_wave_occupancy signal) and the remaining attempt
	// budget, instead of pinning Workers attempts in flight.
	AdaptiveWorkers bool
	// Cache, when non-nil, memoizes attempt outcomes across searches
	// and workers, keyed by the attempt's canonical identity (schedule
	// policy + flip set + a digest of the recording and replay knobs).
	// A hit replaces the simulated execution with the stored outcome —
	// wall-clock changes, the search trajectory does not, and
	// reproductions are always re-executed so the captured order is
	// fresh. Share one cache between searches of the same recording to
	// amortize repeated exploration.
	Cache *SearchCache
	// OnAttempt, if set, is called after each attempt (in canonical
	// order) with its 1-based index, mode ("directed" or "random") and
	// outcome ("reproduced", "clean", "diverged" or "other") — live
	// progress for interactive tools. It is implemented on top of the
	// same per-attempt events Trace receives.
	OnAttempt func(i int, mode, outcome string)
	// Metrics, when non-nil, receives the search's metrics: attempt
	// counters by mode and outcome, attempt wall-time histograms,
	// frontier depth, distinct races seen, worker occupancy, cache
	// hit/miss counters and the substrate's scheduler counters (see
	// OBSERVABILITY.md). Nil, the default, keeps the replay hot path
	// free of measurement cost.
	Metrics *obs.Registry
	// Trace, when non-nil, receives one structured obs.AttemptEvent per
	// attempt in canonical order, closed by an obs.SummaryEvent — the
	// JSONL search trace OBSERVABILITY.md documents.
	Trace *obs.TraceSink
}

// DefaultMaxAttempts is the paper's reproduction budget.
const DefaultMaxAttempts = 1000

// DefaultBranchFactor bounds feedback fan-out per failed attempt.
const DefaultBranchFactor = 8

func (o ReplayOptions) maxAttempts() int {
	if o.MaxAttempts <= 0 {
		return DefaultMaxAttempts
	}
	return o.MaxAttempts
}

func (o ReplayOptions) branch() int {
	if o.BranchFactor <= 0 {
		return DefaultBranchFactor
	}
	return o.BranchFactor
}

func (o ReplayOptions) oracle() Oracle {
	if o.Oracle == nil {
		return func(f *sched.Failure) bool { return true }
	}
	return o.Oracle
}

// workers resolves the pool size: Workers, falling back to the legacy
// Parallelism field, floor 1.
func (o ReplayOptions) workers() int {
	w := o.Workers
	if w <= 0 {
		w = o.Parallelism
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ReplayStats counts what the search did.
type ReplayStats struct {
	Divergences   int // attempts that diverged from the sketch
	CleanRuns     int // attempts that completed without the bug
	OtherFailures int // step limits or non-matching bugs
	RacesSeen     int // distinct race pairs observed across attempts
	FlipsEnqueued int // feedback children pushed
	CacheHits     int // attempts answered by the schedule cache
	CacheMisses   int // attempts executed with the cache enabled
	FrontierDried bool
}

// ReplayResult is the outcome of the replay search.
type ReplayResult struct {
	Reproduced bool
	Attempts   int              // attempts performed (including the success)
	Failure    *sched.Failure   // the reproduced failure, if any
	Order      *trace.FullOrder // captured full order of the success
	Flips      int              // flips in the successful attempt's set
	// RootCauses are the unrecorded races the successful attempt had to
	// reverse relative to the deterministic baseline — the replayer's
	// diagnosis of which accesses constitute the bug. Empty when the
	// success came from a probabilistic attempt or needed no flips.
	RootCauses []race.Pair
	Stats      ReplayStats
}

type attemptOutcome struct {
	bug      bool
	failure  *sched.Failure
	races    []race.Pair
	order    *trace.FullOrder
	diverged bool
	clean    bool
	// horizon is the step nearest the recorded execution's end: the
	// step at which the sketch was fully consumed, or where the attempt
	// stopped if it never was. The production run died here, so races
	// near it are the prime flip candidates.
	horizon uint64
	// consumed counts the sketch entries the director honored; note is
	// its divergence note, if any; wall is the attempt's wall-clock
	// duration. All three feed the attempt trace (see obs.AttemptEvent).
	consumed int
	note     string
	wall     time.Duration
	// rawFailure is the execution's failure before oracle
	// classification (failure above is only set for the target bug) —
	// what the schedule cache stores so a hit can be re-judged under
	// any oracle.
	rawFailure *sched.Failure
	// cached marks an outcome served by the schedule cache instead of
	// an execution.
	cached bool
}

// cancelNone is the sentinel for "no reproduction known yet" in the
// cooperative-cancellation word (any real attempt index is smaller).
const cancelNone = int64(^uint64(0) >> 1)

// cancellableStrategy wraps an attempt's strategy with a poll of the
// search-wide first-success index: once some earlier-canonical attempt
// has reproduced, later in-flight attempts abort at their next
// scheduling point instead of running to completion.
type cancellableStrategy struct {
	inner  sched.Strategy
	idx    int64
	cancel *atomic.Int64
}

func (c *cancellableStrategy) Pick(view *sched.PickView) (trace.TID, bool) {
	if c.cancel.Load() < c.idx {
		return trace.NoTID, false
	}
	return c.inner.Pick(view)
}

// runAttempt performs one coordinated replay: sketch enforcement plus
// the given flip set, with the race detector watching for feedback.
// cancel, when non-nil, lets a concurrent earlier success abort this
// attempt between scheduling points.
func runAttempt(prog *appkit.Program, rec *Recording, fs flipSet, rng *rand.Rand, opts ReplayOptions, idx int64, cancel *atomic.Int64) attemptOutcome {
	start := time.Now()
	world := vsys.NewWorld(rec.Options.WorldSeed)
	world.StartReplay(rec.Inputs)

	entries := rec.Sketch.Entries
	softStart := false
	if opts.SketchTail > 0 && opts.SketchTail < len(entries) {
		// Tail-only replay: the prefix of the execution is
		// unconstrained, so the sketch can only ever be a soft guide.
		entries = entries[len(entries)-opts.SketchTail:]
		softStart = true
	}
	dir := newDirector(rec.Scheme, entries, fs, rng)
	dir.soft = dir.soft || softStart
	var det interface {
		sched.Observer
		Pairs() []race.Pair
	} = race.NewDetector()
	if opts.UseLockset {
		det = race.NewLocksetDetector()
	}
	cap := &orderCapture{}
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = rec.Options.MaxSteps
	}

	var strat sched.Strategy = dir
	if cancel != nil {
		strat = &cancellableStrategy{inner: dir, idx: idx, cancel: cancel}
	}
	res := execute(prog, rec.Options, sched.Config{
		Strategy:  strat,
		Observers: []sched.Observer{dir, det, cap},
		MaxSteps:  maxSteps,
		Metrics:   opts.Metrics,
	}, world)

	out := attemptOutcome{races: det.Pairs(), horizon: dir.exhaustStep, consumed: dir.k, note: dir.divergeNote, rawFailure: res.Failure}
	if out.horizon == 0 {
		out.horizon = res.Steps
	}
	switch {
	case res.Failure == nil:
		out.clean = true
	case res.Failure.IsBug() && opts.oracle()(res.Failure):
		out.bug = true
		out.failure = res.Failure
		out.order = cap.full()
	case res.Failure.Reason == sched.ReasonDiverged:
		out.diverged = true
	}
	out.wall = time.Since(start)
	return out
}

// reportAttempt publishes one finished attempt, in canonical order, on
// every observability surface: the structured trace sink, the metrics
// registry, and the legacy OnAttempt callback — one event, rendered
// three ways.
func (o ReplayOptions) reportAttempt(idx int, directed bool, fs flipSet, out attemptOutcome) {
	if o.Trace == nil && o.Metrics == nil && o.OnAttempt == nil {
		return
	}
	mode := "random"
	if directed {
		mode = "directed"
	}
	outcome := outcomeName(out)
	o.Trace.Emit(obs.AttemptEvent{
		Event:          obs.EventAttempt,
		Attempt:        idx,
		Mode:           mode,
		FlipSetID:      fs.id,
		FlipDepth:      len(fs.flips),
		Outcome:        outcome,
		WallMS:         float64(out.wall) / float64(time.Millisecond),
		SketchConsumed: out.consumed,
		Divergence:     out.note,
		Cached:         out.cached,
	})
	if m := o.Metrics; m != nil {
		m.Counter("pres_replay_attempts_total", "mode", mode, "outcome", outcome).Inc()
		m.Histogram("pres_replay_attempt_wall_seconds", obs.DefaultTimeBuckets).Observe(out.wall.Seconds())
	}
	if o.OnAttempt != nil {
		o.OnAttempt(idx, mode, outcome)
	}
}

// reportSearch closes the search's observability: a summary trace
// event and the search-level metrics. Called on every Replay return
// path.
func (o ReplayOptions) reportSearch(r *ReplayResult) {
	o.Trace.Emit(obs.SummaryEvent{
		Event:       obs.EventSummary,
		Reproduced:  r.Reproduced,
		Attempts:    r.Attempts,
		Flips:       r.Flips,
		Divergences: r.Stats.Divergences,
		CleanRuns:   r.Stats.CleanRuns,
		RacesSeen:   r.Stats.RacesSeen,
		CacheHits:   r.Stats.CacheHits,
		CacheMisses: r.Stats.CacheMisses,
	})
	if m := o.Metrics; m != nil {
		result := "exhausted"
		if r.Reproduced {
			result = "reproduced"
		}
		m.Counter("pres_replay_searches_total", "result", result).Inc()
		m.Counter("pres_replay_flips_enqueued_total").Add(uint64(r.Stats.FlipsEnqueued))
		m.Gauge("pres_replay_races_seen").Set(float64(r.Stats.RacesSeen))
		if r.Stats.CacheHits+r.Stats.CacheMisses > 0 {
			m.Counter("pres_replay_cache_hits_total").Add(uint64(r.Stats.CacheHits))
			m.Counter("pres_replay_cache_misses_total").Add(uint64(r.Stats.CacheMisses))
		}
	}
}

// waveBuckets are the occupancy histogram bounds: pool sizes worth
// distinguishing.
var waveBuckets = []float64{1, 2, 4, 8, 16, 32, 64}

// Replay is the intelligent replayer: it searches the unrecorded
// non-deterministic space left by the sketch until the bug reproduces or
// the attempt budget is exhausted.
//
// With feedback (the paper's design — it is *probabilistic* replay),
// the search alternates two kinds of coordinated attempts: directed
// ones, each a deterministic function of the recorded sketch and a set
// of race flips learned from earlier failures (nearest the failure
// point first), and probabilistic ones that sample the sketch-
// constrained space with a time-weighted random schedule. Directed
// attempts systematically force the windows random sampling is unlikely
// to hit; random attempts cover window shapes the race-flip vocabulary
// cannot express. Without feedback, only the random sampling remains —
// the paper's ablation baseline.
//
// The search runs on a pool of Workers attempt workers over a sharded
// priority frontier: there is no wave barrier — a failed directed
// attempt's children enter the frontier the moment it commits, and any
// idle worker steals them. Attempt outcomes commit strictly in
// canonical attempt order under one mutex, so stats, feedback, dedup
// and every observability surface behave as if the attempts had run
// sequentially; the first success in canonical order wins and
// cooperatively cancels in-flight later attempts. With Workers <= 1
// the engine degenerates to the exact sequential search — dispatch,
// execute and commit strictly alternate — which is the deterministic
// baseline the tests pin.
func Replay(prog *appkit.Program, rec *Recording, opts ReplayOptions) *ReplayResult {
	s := &searchState{
		prog:      prog,
		rec:       rec,
		opts:      opts,
		budget:    opts.maxAttempts(),
		feedback:  opts.Feedback,
		maxW:      opts.workers(),
		winner:    -1,
		failTID:   trace.NoTID,
		pending:   make(map[int]*searchJob),
		seen:      map[string]bool{"": true},
		racesSeen: map[string]bool{},
		r:         &ReplayResult{},
	}
	s.cond = sync.NewCond(&s.mu)
	s.cancel.Store(cancelNone)
	s.likelyWinner = -1
	s.target = s.maxW
	if opts.AdaptiveWorkers && s.maxW > 2 {
		// Start mid-pool and let the occupancy signal grow or shrink it.
		s.target = (s.maxW + 1) / 2
	}
	if t := s.hwClampLocked(s.target); t < s.target {
		s.target = t
	}
	if opts.Cache != nil {
		s.ctx = searchDigest(prog, rec, opts)
	}
	if s.feedback {
		s.frontier = newShardedFrontier(s.maxW)
		s.frontier.Push(replayNode{})
		// The production run's failing thread, if the recording captured
		// the failure: races involving it are the prime suspects.
		if f := rec.BugFailure(); f != nil {
			s.failTID = f.TID
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < s.maxW; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			s.worker(id)
		}(w)
	}
	wg.Wait()

	if !s.r.Reproduced && s.feedback {
		s.r.Stats.FrontierDried = s.frontier.Len() == 0
		if m := opts.Metrics; m != nil {
			m.Gauge("pres_replay_frontier_depth").Set(float64(s.frontier.Len()))
		}
	}
	opts.reportSearch(s.r)
	return s.r
}

// searchJob is one dispatched attempt: its canonical index, what kind
// of exploration it performs, and (after running) its outcome.
type searchJob struct {
	idx       int // 0-based canonical attempt index
	directed  bool
	nd        replayNode
	seed      int64
	likelyWin bool // cache says this attempt reproduced last time
	out       attemptOutcome
}

// searchState is the shared state of one replay search. Two locking
// domains keep the workers honest:
//
//   - mu orders everything canonical: attempt dispatch (index
//     assignment), the in-order commit of outcomes (stats, feedback
//     children, the dedup set `seen`, trace emission), and the adaptive
//     pool controller. The dedup set is therefore mutated only under
//     mu — the race the old wave engine's `tried` map invited is
//     structurally gone (pinned by TestSearchDedupRaceStress).
//   - the frontier and the schedule cache carry their own finer locks,
//     so pushes, steals and cache probes from other workers never wait
//     on a commit in progress.
//
// cancel is the lone cross-worker atomic: the lowest attempt index
// known to have reproduced, polled by in-flight attempts at every
// scheduling point.
type searchState struct {
	prog     *appkit.Program
	rec      *Recording
	opts     ReplayOptions
	budget   int
	feedback bool
	maxW     int
	ctx      uint64 // schedule-cache context digest
	failTID  trace.TID
	frontier *shardedFrontier
	cancel   atomic.Int64

	mu         sync.Mutex
	cond       *sync.Cond
	next       int // next canonical index to dispatch
	commitNext int // next canonical index to commit
	pending    map[int]*searchJob
	winner       int // committed first-success index; -1 while searching
	directedLive int // dispatched directed attempts not yet completed
	// likelyWinner is the lowest in-flight attempt whose cache entry
	// says it reproduced last time (re-executing to capture a fresh
	// order); dispatch pauses past it rather than speculate on attempts
	// its success is about to cancel. -1 when no such attempt is known.
	likelyWinner int
	seen         map[string]bool
	racesSeen    map[string]bool
	r          *ReplayResult
	active     int     // workers currently executing an attempt
	target     int     // adaptive pool-size target
	occ        float64 // EWMA of dispatch-time occupancy
	occInit    bool
}

func (s *searchState) worker(id int) {
	for {
		j := s.dispatch(id)
		if j == nil {
			return
		}
		s.runJob(id, j)
		s.complete(j)
	}
}

// dispatch reserves the next canonical attempt and decides its kind:
// odd indices sample the space probabilistically; even indices pop the
// directed frontier (priority: breadth-first over flip depth — nearly
// every real bug needs only one or two reorderings, so all single
// flips are tried before any pair), falling back to a probabilistic
// sample when the frontier is empty. Returns nil when the search is
// over: budget dispatched or a success committed. Workers whose id
// exceeds the adaptive target park here until retuned.
//
// A directed slot that finds the frontier empty while another directed
// attempt is still in flight waits for that attempt to commit instead
// of burning the slot on a speculative random sample: the in-flight
// attempt's feedback is about to refill the frontier, and the paper's
// search is worth more per execution than blind sampling. At Workers=1
// no other attempt is ever in flight, so the sequential composition —
// pop if available, else random — is untouched.
func (s *searchState) dispatch(id int) *searchJob {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.winner >= 0 || s.next >= s.budget {
			return nil
		}
		if id >= s.target {
			s.cond.Wait()
			continue
		}
		if lw := s.likelyWinner; lw >= 0 && s.next > lw {
			// A warm-cache attempt below us is re-executing a known
			// reproduction; its success cancels everything we would
			// start now, so wait for it instead of burning CPU.
			s.cond.Wait()
			continue
		}
		idx := s.next
		if s.feedback && idx%2 == 0 {
			if nd, ok := s.frontier.Pop(id); ok {
				j := &searchJob{idx: idx, directed: true, nd: nd, seed: int64(idx)}
				s.admitLocked(j)
				return j
			}
			if s.directedLive > 0 {
				s.cond.Wait()
				continue
			}
		}
		j := &searchJob{idx: idx, seed: int64(idx)}
		s.admitLocked(j)
		return j
	}
}

// admitLocked finalizes a composed job's dispatch: consumes the
// canonical index and updates the occupancy accounting. Runs under
// s.mu.
func (s *searchState) admitLocked(j *searchJob) {
	s.next++
	s.active++
	if j.directed {
		s.directedLive++
	}
	s.observeOccupancyLocked()
}

// runJob produces the attempt's outcome: from the schedule cache when
// an equivalent attempt already executed (and its failure is not the
// target bug — reproductions always re-execute so the captured order
// is fresh), otherwise by running the simulated execution.
func (s *searchState) runJob(id int, j *searchJob) {
	var key string
	if s.opts.Cache != nil {
		seeded := !j.directed && !(s.isBaseline(j))
		key = trace.ScheduleCacheKey(s.ctx, j.seed, seeded, canonicalFlipKey(j.nd.fs))
		if e, ok := s.opts.Cache.lookup(key); ok {
			if !s.isTargetBug(e.failure) {
				start := time.Now()
				j.out = attemptOutcome{
					races:      e.races,
					horizon:    e.horizon,
					consumed:   e.consumed,
					note:       e.note,
					rawFailure: e.failure,
					cached:     true,
				}
				switch {
				case e.failure == nil:
					j.out.clean = true
				case e.failure.Reason == sched.ReasonDiverged:
					j.out.diverged = true
				}
				j.out.wall = time.Since(start)
				return
			}
			// The cache says this attempt reproduced the target bug
			// last time. It must re-execute so this search captures a
			// fresh full order — but flag it so dispatch stops
			// speculating on attempts its success is about to cancel.
			s.mu.Lock()
			if s.likelyWinner < 0 || j.idx < s.likelyWinner {
				s.likelyWinner = j.idx
				j.likelyWin = true
			}
			s.mu.Unlock()
		}
	}
	var rng *rand.Rand
	if !j.directed && !s.isBaseline(j) {
		rng = rand.New(rand.NewSource(j.seed))
	}
	var cancel *atomic.Int64
	if s.maxW > 1 {
		cancel = &s.cancel
	}
	j.out = runAttempt(s.prog, s.rec, j.nd.fs, rng, s.opts, int64(j.idx), cancel)
	if s.opts.Cache != nil && s.cancel.Load() >= int64(j.idx) {
		// Store only complete executions: a cancelled attempt's outcome
		// is truncated. A reproduction's raw failure is stored too — as
		// the likely-winner hint above — but never served in place of a
		// re-execution, so every search captures its own order.
		s.opts.Cache.store(cacheEntry{
			key:      key,
			races:    j.out.races,
			failure:  j.out.rawFailure,
			horizon:  j.out.horizon,
			consumed: j.out.consumed,
			note:     j.out.note,
		})
	}
}

// isBaseline reports whether j is the deterministic sticky-policy
// attempt with no flips: attempt 0 of a no-feedback search (feedback
// mode's attempt 0 is the directed frontier root, which is the same
// execution).
func (s *searchState) isBaseline(j *searchJob) bool {
	return !s.feedback && j.idx == 0
}

func (s *searchState) isTargetBug(f *sched.Failure) bool {
	return f != nil && f.IsBug() && s.opts.oracle()(f)
}

// complete hands a finished attempt to the committer: outcomes commit
// strictly in canonical index order, so whichever worker completes the
// next-in-order attempt drains everything contiguous behind it.
func (s *searchState) complete(j *searchJob) {
	if j.out.bug {
		// Publish the reproduction immediately (before its canonical
		// turn): in-flight attempts with higher indices poll this word
		// and abort at their next scheduling point.
		for {
			cur := s.cancel.Load()
			if int64(j.idx) >= cur || s.cancel.CompareAndSwap(cur, int64(j.idx)) {
				break
			}
		}
	}
	s.mu.Lock()
	s.active--
	if j.directed {
		s.directedLive--
	}
	if j.likelyWin && s.likelyWinner == j.idx {
		s.likelyWinner = -1
	}
	if m := s.opts.Metrics; m != nil {
		m.Gauge("pres_replay_workers_active").Set(float64(s.active))
	}
	s.pending[j.idx] = j
	for s.winner < 0 {
		nj, ok := s.pending[s.commitNext]
		if !ok {
			break
		}
		delete(s.pending, s.commitNext)
		s.commitNext++
		s.commitLocked(nj)
	}
	s.retuneLocked()
	s.mu.Unlock()
	// Wake parked workers (the target may have grown) and dispatchers
	// blocked behind a finished search.
	s.cond.Broadcast()
}

// commitLocked folds one attempt, in canonical order, into the result:
// observability, stats, and — for failed directed attempts — feedback
// children into the frontier. Runs under s.mu.
func (s *searchState) commitLocked(j *searchJob) {
	r := s.r
	r.Attempts++
	if s.opts.Cache != nil {
		if j.out.cached {
			r.Stats.CacheHits++
		} else {
			r.Stats.CacheMisses++
		}
	}
	s.opts.reportAttempt(r.Attempts, j.directed, j.nd.fs, j.out)
	if j.out.bug {
		s.winner = j.idx
		r.Reproduced = true
		r.Failure = j.out.failure
		r.Order = j.out.order
		if j.directed {
			r.Flips = len(j.nd.fs.flips)
			r.RootCauses = j.nd.fs.pairs()
		}
		return
	}
	switch {
	case j.out.diverged:
		r.Stats.Divergences++
	case j.out.clean:
		r.Stats.CleanRuns++
	default:
		r.Stats.OtherFailures++
	}
	for _, p := range j.out.races {
		s.racesSeen[p.Key()] = true
	}
	r.Stats.RacesSeen = len(s.racesSeen)
	if j.directed {
		r.Stats.FlipsEnqueued += s.appendChildrenLocked(j.nd, j.out)
	}
	if m := s.opts.Metrics; m != nil && s.feedback {
		depth := float64(s.frontier.Len())
		m.Gauge("pres_replay_frontier_depth").Set(depth)
		m.Gauge("pres_replay_frontier_depth_peak").SetMax(depth)
	}
}

// observeOccupancyLocked samples how many attempts are in flight at
// dispatch time — the occupancy signal the adaptive controller and the
// pres_replay_wave_occupancy histogram consume.
func (s *searchState) observeOccupancyLocked() {
	if m := s.opts.Metrics; m != nil {
		m.Histogram("pres_replay_wave_occupancy", waveBuckets).Observe(float64(s.active))
		m.Gauge("pres_replay_workers_active").Set(float64(s.active))
	}
	if !s.occInit {
		s.occ = float64(s.active)
		s.occInit = true
		return
	}
	s.occ = 0.8*s.occ + 0.2*float64(s.active)
}

// retuneLocked is the adaptive pool controller: saturated occupancy
// grows the target toward Workers, sustained idleness shrinks it
// toward 1, and the target never exceeds the attempts still left in
// the budget. Without AdaptiveWorkers the target stays pinned (modulo
// the budget clamp, which is free parallelism hygiene either way).
func (s *searchState) retuneLocked() {
	t := s.maxW
	if s.opts.AdaptiveWorkers {
		t = s.target
		switch {
		case s.occ >= 0.75*float64(s.target) && s.target < s.maxW:
			t = s.target + 1
		case s.occ < 0.4*float64(s.target) && s.target > 1:
			t = s.target - 1
		}
		t = s.hwClampLocked(t)
	}
	if remaining := s.budget - s.next; remaining >= 1 && t > remaining {
		t = remaining
	}
	if t < 1 {
		t = 1
	}
	s.target = t
}

// hwClampLocked bounds an adaptive target by the host's schedulable
// CPUs: replay attempts are pure compute, so running more of them
// concurrently than GOMAXPROCS only makes them preempt one another
// and stretches every attempt's wall clock. The +1 keeps one
// successor warm behind the running set. Fixed-size pools (no
// AdaptiveWorkers) honor the caller's Workers choice untouched.
func (s *searchState) hwClampLocked(t int) int {
	if !s.opts.AdaptiveWorkers {
		return t
	}
	if hw := runtime.GOMAXPROCS(0) + 1; t > hw {
		return hw
	}
	return t
}

// canonicalFlipKey is the order-independent identity of a flip set —
// the dedup and cache key. Distinct sets never collide
// (trace.FlipSetKey is injective; FuzzFlipSetKey pins it).
func canonicalFlipKey(fs flipSet) string {
	if len(fs.flips) == 0 {
		return ""
	}
	ids := make([]trace.FlipID, len(fs.flips))
	for i, f := range fs.flips {
		ids[i] = trace.FlipID{
			Addr:       f.addr,
			HoldTID:    f.holdTID,
			HoldCount:  f.holdCount,
			UntilTID:   f.untilTID,
			UntilCount: f.untilCnt,
		}
	}
	return trace.FlipSetKey(ids)
}

// searchDigest hashes everything that determines what a replay attempt
// of this search executes — program, recording (sketch, inputs, world)
// and the replay knobs that alter enforcement — into the schedule
// cache's context component. Searches with equal digests run equal
// attempts for equal (policy, flip set) pairs.
func searchDigest(prog *appkit.Program, rec *Recording, opts ReplayOptions) uint64 {
	d := trace.NewDigest()
	d.String(prog.Name)
	d.String(rec.Scheme.String())
	d.Int(rec.Options.WorldSeed)
	d.Int(int64(rec.Options.Processors))
	d.Int(int64(rec.Options.Scale))
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = rec.Options.MaxSteps
	}
	d.Word(maxSteps)
	d.Int(int64(opts.SketchTail))
	if opts.UseLockset {
		d.Word(1)
	} else {
		d.Word(0)
	}
	for _, e := range rec.Sketch.Entries {
		d.Entry(e)
	}
	for _, in := range rec.Inputs.Records {
		d.Input(in)
	}
	return d.Sum()
}

// replayNode is one point in the directed search tree: a flip set plus
// the race keys its parent attempt observed — feedback prioritizes races
// a node's deviation *created*, which localize the next flip to the
// perturbed neighborhood (the paper's "compare the failed replay with
// the recording").
type replayNode struct {
	fs          flipSet
	parentRaces map[string]bool
}

// appendChildrenLocked ranks a failed directed attempt's races and
// pushes the resulting child flip sets onto the frontier. Ranking:
// races the parent's deviation newly created beat pre-existing ones
// (at most two slots go to the latter — they are reachable from other
// nodes too), and within a tier, races closest to the recorded
// horizon — the step where the truncated production sketch ran out,
// i.e. where the production run died — go first; races involving the
// production run's failing thread lead overall, preferring flips that
// hold *its* access while the partner slips in.
//
// Dedup happens here, under the commit mutex, against canonical flip-
// set keys — so two orderings of the same flips are one node, and no
// worker ever observes a half-updated dedup set.
func (s *searchState) appendChildrenLocked(nd replayNode, out attemptOutcome) int {
	if len(nd.fs.flips) >= maxFlipDepth {
		return 0 // deep chains are noise; let siblings run
	}
	failTID := s.failTID
	myRaces := make(map[string]bool, len(out.races))
	for _, p := range out.races {
		myRaces[p.Key()] = true
	}
	dist := func(p race.Pair) uint64 {
		d := out.horizon - p.SecondSeq
		if p.SecondSeq >= out.horizon {
			d = p.SecondSeq - out.horizon
		}
		if failTID != trace.NoTID {
			switch {
			case p.First.TID == failTID:
				// best tier: no penalty
			case p.Second.TID == failTID:
				d += 1 << 24
			default:
				d += 1 << 32
			}
		}
		return d
	}
	byDist := make([]race.Pair, len(out.races))
	copy(byDist, out.races)
	sort.SliceStable(byDist, func(i, j int) bool { return dist(byDist[i]) < dist(byDist[j]) })

	added := 0
	oldSlots := 2
	for _, wantFresh := range []bool{true, false} {
		for _, p := range byDist {
			if added >= s.opts.branch() {
				break
			}
			fresh := nd.parentRaces == nil || !nd.parentRaces[p.Key()]
			if wantFresh != fresh {
				continue
			}
			if !fresh && oldSlots == 0 {
				continue
			}
			child, ok := nd.fs.with(flipOf(p))
			if !ok {
				continue
			}
			ck := canonicalFlipKey(child)
			if s.seen[ck] {
				continue
			}
			s.seen[ck] = true
			if !fresh {
				oldSlots--
			}
			s.frontier.Push(replayNode{fs: child, parentRaces: myRaces})
			added++
		}
	}
	return added
}

// maxFlipDepth caps feedback chains: the breadth-first search tries all
// single flips, then pairs, and so on; real concurrency bugs virtually
// always fall within a handful of simultaneous reorderings, and each
// extra level multiplies the tree by the branch factor.
const maxFlipDepth = 4

// outcomeName classifies an attempt outcome for progress reporting.
func outcomeName(out attemptOutcome) string {
	switch {
	case out.bug:
		return "reproduced"
	case out.clean:
		return "clean"
	case out.diverged:
		return "diverged"
	default:
		return "other"
	}
}

// Reproduce replays a captured full order and returns the run's result;
// with a faithful order the recorded bug manifests every time.
func Reproduce(prog *appkit.Program, rec *Recording, order *trace.FullOrder) *sched.Result {
	world := vsys.NewWorld(rec.Options.WorldSeed)
	world.StartReplay(rec.Inputs)
	return execute(prog, rec.Options, sched.Config{
		Strategy: &sched.OrderStrategy{Order: order.Order},
		MaxSteps: rec.Options.MaxSteps,
	}, world)
}
