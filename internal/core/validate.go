package core

import (
	"fmt"

	"repro/internal/sketch"
)

// Validate checks a recording's internal consistency beyond what the
// codec enforces — the pre-flight a diagnosis tool runs on an untrusted
// or salvaged file before spending replay budget on it.
func (r *Recording) Validate() error {
	if r.Sketch == nil || r.Inputs == nil {
		return fmt.Errorf("core: recording missing sketch or input log")
	}
	scheme, err := sketch.Parse(r.Sketch.Scheme)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if scheme != r.Scheme {
		return fmt.Errorf("core: recording scheme %v does not match log header %q", r.Scheme, r.Sketch.Scheme)
	}
	if uint64(r.Sketch.Len()) > r.Sketch.TotalOps && r.Sketch.TotalOps != 0 {
		return fmt.Errorf("core: sketch has %d entries but only %d total ops", r.Sketch.Len(), r.Sketch.TotalOps)
	}
	for i, e := range r.Sketch.Entries {
		if !e.Kind.Valid() {
			return fmt.Errorf("core: sketch entry %d has invalid kind %d", i, e.Kind)
		}
		if !scheme.Records(e.Kind) {
			return fmt.Errorf("core: sketch entry %d (%v) is not recordable under %v", i, e.Kind, scheme)
		}
		if e.TID < 0 {
			return fmt.Errorf("core: sketch entry %d has negative thread id", i)
		}
	}
	for i, rec := range r.Inputs.Records {
		if rec.TID < 0 {
			return fmt.Errorf("core: input record %d has negative thread id", i)
		}
		if rec.Call == 0 {
			return fmt.Errorf("core: input record %d has zero call code", i)
		}
	}
	return nil
}
