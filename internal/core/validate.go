package core

import (
	"fmt"

	"repro/internal/sketch"
)

// Validate checks a recording's internal consistency beyond what the
// codec enforces — the pre-flight a diagnosis tool runs on an untrusted
// or salvaged file before spending replay budget on it.
func (r *Recording) Validate() error {
	if r.Sketch == nil || r.Inputs == nil {
		return fmt.Errorf("core: recording missing sketch or input log")
	}
	scheme, err := sketch.Parse(r.Sketch.Scheme)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if scheme != r.Scheme {
		return fmt.Errorf("core: recording scheme %v does not match log header %q", r.Scheme, r.Sketch.Scheme)
	}
	if uint64(r.Sketch.Len()) > r.Sketch.TotalOps && r.Sketch.TotalOps != 0 {
		return fmt.Errorf("core: sketch has %d entries but only %d total ops", r.Sketch.Len(), r.Sketch.TotalOps)
	}
	for i, e := range r.Sketch.Entries {
		if !e.Kind.Valid() {
			return fmt.Errorf("core: sketch entry %d has invalid kind %d", i, e.Kind)
		}
		if !scheme.Records(e.Kind) {
			return fmt.Errorf("core: sketch entry %d (%v) is not recordable under %v", i, e.Kind, scheme)
		}
		if e.TID < 0 {
			return fmt.Errorf("core: sketch entry %d has negative thread id", i)
		}
	}
	for i, rec := range r.Inputs.Records {
		if rec.TID < 0 {
			return fmt.Errorf("core: input record %d has negative thread id", i)
		}
		if rec.Call == 0 {
			return fmt.Errorf("core: input record %d has zero call code", i)
		}
	}
	if ring := r.Epochs; ring != nil {
		if ring.WindowLen() != r.Sketch.Len() {
			return fmt.Errorf("core: epoch window holds %d entries but sketch view has %d", ring.WindowLen(), r.Sketch.Len())
		}
		want := ring.Evicted
		entry := ring.EvictedEntries
		for i, e := range ring.Epochs {
			if e.ID != want {
				return fmt.Errorf("core: epoch %d has id %d, want %d", i, e.ID, want)
			}
			if e.StartEntry != entry {
				return fmt.Errorf("core: epoch %d starts at entry %d, want %d", e.ID, e.StartEntry, entry)
			}
			want++
			entry += uint64(len(e.Entries))
		}
		for i, cp := range ring.Checkpoints {
			if cp.Epoch < ring.Evicted || cp.Epoch > ring.Evicted+uint64(len(ring.Epochs)) {
				return fmt.Errorf("core: checkpoint %d at epoch %d is outside the retained window [%d, %d]",
					i, cp.Epoch, ring.Evicted, ring.Evicted+uint64(len(ring.Epochs)))
			}
			if cp.SketchIndex < ring.EvictedEntries || cp.SketchIndex > entry {
				return fmt.Errorf("core: checkpoint %d sketch index %d is outside the retained entries [%d, %d]",
					i, cp.SketchIndex, ring.EvictedEntries, entry)
			}
		}
	}
	return nil
}
