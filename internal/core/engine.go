package core

import (
	"context"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/appkit"
	"repro/internal/exec"
	"repro/internal/race"
	"repro/internal/sched"
	"repro/internal/search"
	"repro/internal/trace"
	"repro/internal/vsys"
)

// This file is the replay search engine: the exec.Runner that composes,
// executes and commits attempts on the canonical-commit pool. The
// public surface lives in replay.go, the observability plumbing in
// report.go, and the feedback generation in feedback.go.

type attemptOutcome struct {
	bug      bool
	failure  *sched.Failure
	races    []race.Pair
	order    *trace.FullOrder
	diverged bool
	clean    bool
	// cancelled marks an attempt the context cut short: the execution
	// unwound at a scheduling point before reaching a verdict, so the
	// outcome describes a truncated run and must never feed the schedule
	// cache or the feedback frontier.
	cancelled bool
	// horizon is the step nearest the recorded execution's end: the
	// step at which the sketch was fully consumed, or where the attempt
	// stopped if it never was. The production run died here, so races
	// near it are the prime flip candidates.
	horizon uint64
	// consumed counts the sketch entries the director honored; note is
	// its divergence note, if any; wall is the attempt's wall-clock
	// duration. All three feed the attempt trace (see obs.AttemptEvent).
	consumed int
	note     string
	wall     time.Duration
	// rawFailure is the execution's failure before oracle
	// classification (failure above is only set for the target bug) —
	// what the schedule cache stores so a hit can be re-judged under
	// any oracle.
	rawFailure *sched.Failure
	// cached marks an outcome served by the schedule cache instead of
	// an execution.
	cached bool
	// steps, handoffs and fastSteps are the execution's scheduler
	// counters (sched.Result): committed points, strategy handoffs and
	// fast-path grants. Zero for cached outcomes — the cache stores
	// verdicts, not executions.
	steps     uint64
	handoffs  uint64
	fastSteps uint64
	// Prefix-snapshot accounting (snapshot.go): restored marks an
	// attempt that resumed from a parent snapshot, ffSteps its forced
	// fast-forward prefix length, snapMiss a probe that found no usable
	// snapshot; captures/capBytes/evicted tally the attempt's own
	// stores into the snapshot cache.
	restored bool
	snapMiss bool
	ffSteps  uint64
	captures int
	capBytes int64
	evicted  int
}

// cancelNone is the sentinel for "no reproduction known yet" in the
// cooperative-cancellation word (any real attempt index is smaller).
const cancelNone = int64(^uint64(0) >> 1)

// cancellableStrategy wraps an attempt's strategy with a poll of the
// search-wide first-success index: once some earlier-canonical attempt
// has reproduced, later in-flight attempts abort at their next
// scheduling point instead of running to completion.
//
// The wrapper deliberately does not forward sched.RunGranter: even if
// an inner strategy declared run budgets, a wrapped attempt must fall
// back to budget-1 grants so the cancellation poll runs between every
// two points. The director never grants budgets anyway (see its doc),
// so nothing is lost.
type cancellableStrategy struct {
	inner  sched.Strategy
	idx    int64
	cancel *atomic.Int64
}

func (c *cancellableStrategy) Pick(view *sched.PickView) (trace.TID, bool) {
	if c.cancel.Load() < c.idx {
		return trace.NoTID, false
	}
	return c.inner.Pick(view)
}

// runAttempt performs one coordinated replay: sketch enforcement plus
// the given flip set, with the race detector watching for feedback.
// cancel, when non-nil, lets a concurrent earlier success abort this
// attempt between scheduling points; ctx cancellation aborts it the
// same way, via the scheduler's own context poll. sp, when non-nil,
// enrolls the attempt in the snapshot tree (snapshot.go): it tries to
// resume from a parent prefix snapshot and captures its own snapshots
// for future children.
func runAttempt(ctx context.Context, prog *appkit.Program, rec *Recording, fs flipSet, rng *rand.Rand, opts ReplayOptions, idx int64, cancel *atomic.Int64, sp *snapPlan) attemptOutcome {
	start := time.Now()
	world := vsys.NewWorld(rec.Options.WorldSeed)
	entries := rec.Sketch.Entries
	softStart := false
	cp, fromCP := activeCheckpoint(rec, opts)
	if !fromCP {
		world.StartReplay(rec.Inputs)
	}
	// Checkpointed attempts leave the world in Live mode: the prefix
	// re-execution regenerates the recorded inputs from the world seed,
	// and the restore strategy flips to Replay mode at the validated
	// boundary (see checkpoint.go).
	switch {
	case fromCP:
		// Checkpointed replay: the prefix is re-executed exactly, so the
		// window from the checkpoint is enforced strictly from entry 0 —
		// no soft start. Overrides SketchTail (the checkpoint decides
		// where constrained replay begins).
		entries = windowFrom(rec, cp)
	case opts.SketchTail > 0 && opts.SketchTail < len(entries):
		// Tail-only replay: the prefix of the execution is
		// unconstrained, so the sketch can only ever be a soft guide.
		entries = entries[len(entries)-opts.SketchTail:]
		softStart = true
	}
	dir := newDirector(rec.Scheme, entries, fs, rng)
	dir.soft = dir.soft || softStart
	var det raceDetector = race.NewDetector()
	if opts.UseLockset {
		det = race.NewLocksetDetector()
	}
	cap := &orderCapture{}
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = rec.Options.MaxSteps
	}

	var strat sched.Strategy = dir
	observers := []sched.Observer{dir, det, cap}
	var rs *restoreStrategy
	if fromCP {
		rs = newRestoreStrategy(rec, cp, dir, world)
		strat = rs
		observers = append(observers, rs)
	}
	var sn *snapshotter
	var fk *forkStrategy
	snapMiss := false
	if sp != nil && !fromCP && rng == nil {
		digest := trace.NewDigest()
		var base uint64
		if sp.parentKey != "" && sp.bound > 0 && len(fs.flips) > 0 {
			// The flip this child adds to its parent's set is the last one
			// in discovery order; only snapshots from strictly before it
			// could have engaged are prefix-equivalent (see snapshot.go).
			nf := fs.flips[len(fs.flips)-1]
			snap := sp.cache.Best(sp.parentKey, sp.bound, func(s *search.Snapshot) bool {
				st, ok := s.State.(*snapState)
				return ok && st.dir.executed[nf.holdTID]+1 < nf.holdCount
			})
			if snap != nil {
				if st := snap.State.(*snapState); st != nil {
					if rdet, _ := cloneDetector(st.det); rdet != nil {
						installDirState(dir, st.dir)
						fk = &forkStrategy{
							dir: dir, world: world, det: rdet,
							order: snap.Order, boundary: snap.Step,
							wantDigest: snap.EventDigest, wantWorld: snap.WorldDigest,
							digest: digest,
						}
						det = rdet
						strat = fk
						// The detector hangs off fk, which feeds it suffix
						// events only; registering it directly would replay
						// the prefix into a clone that already contains it.
						observers = []sched.Observer{dir, fk, cap}
						base = snap.Step
					}
				}
			} else {
				snapMiss = true
			}
		}
		sn = newSnapshotter(world, cap, dir, det, sp, digest, base)
		observers = append(observers, sn)
	}
	if cancel != nil {
		strat = &cancellableStrategy{inner: strat, idx: idx, cancel: cancel}
	}
	res := execute(prog, rec.Options, sched.Config{
		Strategy:  strat,
		Observers: observers,
		MaxSteps:  maxSteps,
		Metrics:   opts.Metrics,
		Ctx:       ctx,
	}, world)

	out := attemptOutcome{
		races: det.Pairs(), horizon: dir.exhaustStep, consumed: dir.k,
		note: dir.divergeNote, rawFailure: res.Failure,
		steps: res.Steps, handoffs: res.Handoffs, fastSteps: res.FastPathSteps,
	}
	if out.horizon == 0 {
		out.horizon = res.Steps
	}
	if fromCP {
		// Only races whose first access falls after the boundary are
		// flippable: the prefix is re-executed verbatim every attempt, so
		// a flip holding a prefix access could never engage differently.
		kept := out.races[:0:0]
		for _, p := range out.races {
			if p.FirstSeq > cp.Step {
				kept = append(kept, p)
			}
		}
		out.races = kept
		if rs.mismatch {
			out.note = "checkpoint boundary mismatch: recording and prefix re-execution disagree"
		}
	}
	out.snapMiss = snapMiss
	if fk != nil {
		out.restored = true
		out.ffSteps = fk.boundary
		if fk.mismatch {
			out.note = "snapshot boundary mismatch: parent prefix and forced re-execution disagree"
		}
	}
	if sn != nil {
		out.captures = sn.captures
		out.capBytes = sn.capBytes
		out.evicted = sn.evicted
	}
	switch {
	case res.Failure == nil:
		out.clean = true
	case res.Failure.IsBug() && opts.oracle()(res.Failure):
		out.bug = true
		out.failure = res.Failure
		out.order = cap.full()
	case res.Failure.Reason == sched.ReasonDiverged:
		out.diverged = true
	case res.Failure.Reason == sched.ReasonCancelled:
		out.cancelled = true
	}
	out.wall = time.Since(start)
	return out
}

// searchJob is one dispatched attempt: its canonical index, what kind
// of exploration it performs, and (after running) its outcome.
type searchJob struct {
	idx       int // 0-based canonical attempt index
	directed  bool
	nd        replayNode
	seed      int64
	likelyWin bool // cache says this attempt reproduced last time
	out       attemptOutcome
}

// searchState is one replay search, expressed as the exec pool's
// Runner. The layering splits the old monolith's responsibilities:
//
//   - the pool (internal/exec) owns canonical index dispatch, the
//     strict in-order commit drain, worker lifecycle, context
//     cancellation and the adaptive occupancy controller. Dispatch,
//     Complete and Commit below run under the pool's mutex, so the
//     canonical-order state they touch (directedLive, the dedup set
//     `seen`, racesSeen, the result) needs no further locking — the
//     same single-lock discipline the old engine had, now borrowed
//     from the pool.
//   - the frontier and the schedule cache (internal/search) carry
//     their own finer locks, so pushes, steals and cache probes from
//     other workers never wait on a commit in progress.
//   - cancel and likelyWinner are the cross-worker atomics, mutated
//     from Run (which holds no lock): cancel is the lowest attempt
//     index known to have reproduced, polled by in-flight attempts at
//     every scheduling point; likelyWinner is the lowest in-flight
//     attempt whose cache entry says it reproduced last time.
type searchState struct {
	prog     *appkit.Program
	rec      *Recording
	opts     ReplayOptions
	pol      search.Policy
	feedback bool
	budget   int
	maxW     int
	digest   uint64 // schedule-cache / snapshot-key context digest
	failTID  trace.TID
	frontier *search.Frontier[replayNode]
	// snaps is the prefix-snapshot cache (nil unless PrefixSnapshots is
	// on, feedback is in play and no recording checkpoint overrides it).
	// It carries its own lock; workers probe and store directly.
	snaps  *search.SnapshotCache
	cancel atomic.Int64
	// likelyWinner is the lowest in-flight attempt whose cache entry
	// says it reproduced last time (re-executing to capture a fresh
	// order); dispatch pauses past it rather than speculate on attempts
	// its success is about to cancel. -1 when no such attempt is known.
	likelyWinner atomic.Int64

	// Guarded by the pool's mutex (only touched from Dispatch, Complete
	// and Commit).
	directedLive int // dispatched directed attempts not yet completed
	seen         map[string]bool
	racesSeen    map[string]bool
	r            *ReplayResult
}

// Dispatch composes the attempt for canonical index idx: the policy
// decides whether it pops the directed frontier (priority:
// breadth-first over flip depth — nearly every real bug needs only one
// or two reorderings, so all single flips are tried before any pair)
// or samples the space probabilistically.
//
// A directed slot that finds the frontier empty while another directed
// attempt is still in flight waits for that attempt to commit instead
// of burning the slot on a speculative random sample: the in-flight
// attempt's feedback is about to refill the frontier, and the paper's
// search is worth more per execution than blind sampling. At Workers=1
// no other attempt is ever in flight, so the sequential composition —
// pop if available, else random — is untouched.
func (s *searchState) Dispatch(worker, idx int) exec.Decision {
	if lw := s.likelyWinner.Load(); lw >= 0 && int64(idx) > lw {
		// A warm-cache attempt below us is re-executing a known
		// reproduction; its success cancels everything we would start
		// now, so wait for it instead of burning CPU.
		return exec.Decision{Wait: true}
	}
	if s.feedback && s.pol.Directed(idx) {
		if nd, ok := s.frontier.Pop(worker); ok {
			s.directedLive++
			return exec.Decision{Job: &searchJob{idx: idx, directed: true, nd: nd, seed: int64(idx)}}
		}
		if s.directedLive > 0 {
			return exec.Decision{Wait: true}
		}
	}
	return exec.Decision{Job: &searchJob{idx: idx, seed: int64(idx)}}
}

// Run produces the attempt's outcome: from the schedule cache when an
// equivalent attempt already executed (and its failure is not the
// target bug — reproductions always re-execute so the captured order
// is fresh), otherwise by running the simulated execution.
func (s *searchState) Run(ctx context.Context, worker, idx int, job any) {
	j := job.(*searchJob)
	var key string
	if s.opts.Cache != nil {
		seeded := !j.directed && s.pol.Seeded(j.idx)
		key = trace.ScheduleCacheKey(s.digest, j.seed, seeded, canonicalFlipKey(j.nd.fs))
		if e, ok := s.opts.Cache.Lookup(key); ok {
			if !s.isTargetBug(e.Failure) {
				start := time.Now()
				j.out = attemptOutcome{
					races:      e.Races,
					horizon:    e.Horizon,
					consumed:   e.Consumed,
					note:       e.Note,
					rawFailure: e.Failure,
					cached:     true,
				}
				switch {
				case e.Failure == nil:
					j.out.clean = true
				case e.Failure.Reason == sched.ReasonDiverged:
					j.out.diverged = true
				}
				j.out.wall = time.Since(start)
				return
			}
			// The cache says this attempt reproduced the target bug
			// last time. It must re-execute so this search captures a
			// fresh full order — but flag it so dispatch stops
			// speculating on attempts its success is about to cancel.
			for {
				cur := s.likelyWinner.Load()
				if cur >= 0 && cur <= int64(j.idx) {
					break
				}
				if s.likelyWinner.CompareAndSwap(cur, int64(j.idx)) {
					j.likelyWin = true
					break
				}
			}
		}
	}
	var rng *rand.Rand
	if !j.directed && s.pol.Seeded(j.idx) {
		rng = rand.New(rand.NewSource(j.seed))
	}
	var cancel *atomic.Int64
	if s.maxW > 1 {
		cancel = &s.cancel
	}
	var sp *snapPlan
	if s.snaps != nil && j.directed {
		sp = &snapPlan{cache: s.snaps, parentKey: j.nd.parentKey, bound: j.nd.bound}
		if len(j.nd.fs.flips) < maxFlipDepth {
			// Attempts at the depth cap never spawn children, so their
			// prefixes are never restored from: don't pay to capture them.
			sp.selfKey = snapKey(s.digest, canonicalFlipKey(j.nd.fs))
		}
	}
	j.out = runAttempt(ctx, s.prog, s.rec, j.nd.fs, rng, s.opts, int64(j.idx), cancel, sp)
	if j.out.bug {
		// Publish the reproduction immediately (before its canonical
		// turn): in-flight attempts with higher indices poll this word
		// and abort at their next scheduling point.
		for {
			cur := s.cancel.Load()
			if int64(j.idx) >= cur || s.cancel.CompareAndSwap(cur, int64(j.idx)) {
				break
			}
		}
	}
	if s.opts.Cache != nil && !j.out.cancelled && s.cancel.Load() >= int64(j.idx) {
		// Store only complete executions: a cancelled attempt's outcome
		// is truncated. A reproduction's raw failure is stored too — as
		// the likely-winner hint above — but never served in place of a
		// re-execution, so every search captures its own order.
		s.opts.Cache.Store(search.Entry{
			Key:      key,
			Races:    j.out.races,
			Failure:  j.out.rawFailure,
			Horizon:  j.out.horizon,
			Consumed: j.out.consumed,
			Note:     j.out.note,
		})
	}
}

func (s *searchState) isTargetBug(f *sched.Failure) bool {
	return f != nil && f.IsBug() && s.opts.oracle()(f)
}

// Complete records an attempt's completion (in completion order,
// before its canonical commit): the in-flight bookkeeping dispatch
// consults must not wait for canonical order.
func (s *searchState) Complete(idx int, job any) {
	j := job.(*searchJob)
	if j.directed {
		s.directedLive--
	}
	if j.likelyWin {
		s.likelyWinner.CompareAndSwap(int64(j.idx), -1)
	}
}

// Commit folds one attempt, in canonical order, into the result:
// observability, stats, and — for failed directed attempts — feedback
// children into the frontier. Returning false on a reproduction stops
// the pool: the first success in canonical order wins.
func (s *searchState) Commit(idx int, job any) bool {
	j := job.(*searchJob)
	r := s.r
	r.Attempts++
	if s.opts.Cache != nil {
		if j.out.cached {
			r.Stats.CacheHits++
		} else {
			r.Stats.CacheMisses++
		}
	}
	r.Stats.Steps += j.out.steps
	r.Stats.Handoffs += j.out.handoffs
	r.Stats.FastPathSteps += j.out.fastSteps
	if s.snaps != nil {
		if j.out.restored {
			r.Stats.SnapshotHits++
		}
		if j.out.snapMiss {
			r.Stats.SnapshotMisses++
		}
		r.Stats.SnapshotCaptures += j.out.captures
		r.Stats.SnapshotEvicted += j.out.evicted
		r.Stats.SnapshotBytes += j.out.capBytes
		r.Stats.FastForwardSteps += j.out.ffSteps
		if m := s.opts.Metrics; m != nil {
			if j.out.restored {
				m.Counter("pres_search_snapshot_hits_total").Inc()
			}
			if j.out.snapMiss {
				m.Counter("pres_search_snapshot_misses_total").Inc()
			}
			if j.out.capBytes > 0 {
				m.Counter("pres_search_snapshot_bytes_total").Add(uint64(j.out.capBytes))
			}
			if j.out.evicted > 0 {
				m.Counter("pres_search_snapshot_evicted_total").Add(uint64(j.out.evicted))
			}
		}
	}
	s.opts.reportAttempt(r.Attempts, j.directed, j.nd.fs, j.out)
	if j.out.bug {
		r.Reproduced = true
		r.Failure = j.out.failure
		r.Order = j.out.order
		if j.directed {
			r.Flips = len(j.nd.fs.flips)
			r.RootCauses = j.nd.fs.pairs()
		}
		return false
	}
	switch {
	case j.out.cancelled:
		r.Stats.Cancelled++
	case j.out.diverged:
		r.Stats.Divergences++
	case j.out.clean:
		r.Stats.CleanRuns++
	default:
		r.Stats.OtherFailures++
	}
	if j.out.cancelled {
		// A truncated execution's races and horizon describe a run that
		// never finished: no feedback, no race folding.
		return true
	}
	for _, p := range j.out.races {
		s.racesSeen[p.Key()] = true
	}
	r.Stats.RacesSeen = len(s.racesSeen)
	if j.directed {
		r.Stats.FlipsEnqueued += s.appendChildren(j.nd, j.out)
	}
	if m := s.opts.Metrics; m != nil && s.feedback {
		depth := float64(s.frontier.Len())
		m.Gauge("pres_replay_frontier_depth").Set(depth)
		m.Gauge("pres_replay_frontier_depth_peak").SetMax(depth)
	}
	return true
}

// outcomeName classifies an attempt outcome for progress reporting.
func outcomeName(out attemptOutcome) string {
	switch {
	case out.bug:
		return "reproduced"
	case out.clean:
		return "clean"
	case out.diverged:
		return "diverged"
	case out.cancelled:
		return "cancelled"
	default:
		return "other"
	}
}
