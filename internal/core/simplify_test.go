package core

import (
	"testing"

	"repro/internal/sketch"
	"repro/internal/trace"
)

func TestSimplifyPreservesFailure(t *testing.T) {
	prog := atomBugProg(3)
	rec := recordBuggy(t, prog, sketch.SYNC)
	res := Replay(prog, rec, ReplayOptions{Feedback: true, Oracle: MatchBugID("atom-bug")})
	if !res.Reproduced {
		t.Fatal("setup: not reproduced")
	}
	simple, spent := Simplify(prog, rec, res.Order, 0)
	if spent <= 0 {
		t.Fatal("simplify did no work")
	}
	// The simplified schedule must still reproduce the same bug.
	out := Reproduce(prog, rec, simple)
	if out.Failure == nil || out.Failure.BugID != "atom-bug" {
		t.Fatalf("simplified schedule lost the bug: %v", out.Failure)
	}
	if Switches(simple) > Switches(res.Order) {
		t.Fatalf("simplify increased switches: %d -> %d", Switches(res.Order), Switches(simple))
	}
	t.Logf("switches %d -> %d in %d re-executions", Switches(res.Order), Switches(simple), spent)
}

func TestSimplifyReducesSearchNoise(t *testing.T) {
	// The order-violation bug needs exactly one adverse switch; the
	// simplified schedule should be close to minimal.
	prog := orderBugProg()
	rec := recordBuggy(t, prog, sketch.SYNC)
	res := Replay(prog, rec, ReplayOptions{Feedback: true, Oracle: MatchBugID("order-bug")})
	if !res.Reproduced {
		t.Fatal("setup: not reproduced")
	}
	simple, _ := Simplify(prog, rec, res.Order, 0)
	if Switches(simple) > Switches(res.Order) {
		t.Fatal("simplification made the schedule worse")
	}
	out := Reproduce(prog, rec, simple)
	if out.Failure == nil || out.Failure.BugID != "order-bug" {
		t.Fatalf("lost the bug: %v", out.Failure)
	}
}

func TestSimplifyRespectsBudget(t *testing.T) {
	prog := atomBugProg(4)
	rec := recordBuggy(t, prog, sketch.SYNC)
	res := Replay(prog, rec, ReplayOptions{Feedback: true, Oracle: MatchBugID("atom-bug")})
	if !res.Reproduced {
		t.Fatal("setup: not reproduced")
	}
	_, spent := Simplify(prog, rec, res.Order, 3)
	if spent > 3 {
		t.Fatalf("budget exceeded: %d", spent)
	}
}

func TestSwitchesCounting(t *testing.T) {
	cases := []struct {
		order []trace.TID
		want  int
	}{
		{nil, 0},
		{[]trace.TID{1}, 0},
		{[]trace.TID{1, 1, 1}, 0},
		{[]trace.TID{1, 2}, 1},
		{[]trace.TID{1, 2, 1, 2}, 3},
		{[]trace.TID{0, 0, 1, 1, 0}, 2},
	}
	for _, c := range cases {
		if got := Switches(&trace.FullOrder{Order: c.order}); got != c.want {
			t.Errorf("Switches(%v) = %d, want %d", c.order, got, c.want)
		}
	}
}

func TestSpliceRuns(t *testing.T) {
	cur := []trace.TID{1, 1, 2, 2, 1, 1, 3}
	// Move thread 1's run at index 4 to position 2.
	got := spliceRuns(cur, 2, 4)
	want := []trace.TID{1, 1, 1, 1, 2, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("spliceRuns = %v, want %v", got, want)
		}
	}
	// The input must not be modified.
	if cur[2] != 2 {
		t.Fatal("spliceRuns mutated its input")
	}
}

func TestSwitchHelpers(t *testing.T) {
	cur := []trace.TID{1, 1, 2, 3, 3}
	if switchAfter(cur, 0) != 2 {
		t.Fatal("switchAfter(0) wrong")
	}
	if switchAfter(cur, 2) != 3 {
		t.Fatal("switchAfter(2) wrong")
	}
	if switchAfter(cur, 3) != -1 {
		t.Fatal("switchAfter at tail should be -1")
	}
	if nextRunOf(cur, 3, 0) != 3 {
		t.Fatal("nextRunOf wrong")
	}
	if nextRunOf(cur, 9, 0) != -1 {
		t.Fatal("nextRunOf missing thread should be -1")
	}
}

func TestRootCausesReported(t *testing.T) {
	// A bug that needs at least one flip must report the reversed races.
	prog := atomBugProg(3)
	rec := recordBuggy(t, prog, sketch.SYNC)
	res := Replay(prog, rec, ReplayOptions{Feedback: true, Oracle: MatchBugID("atom-bug")})
	if !res.Reproduced {
		t.Fatal("setup: not reproduced")
	}
	if len(res.RootCauses) != res.Flips {
		t.Fatalf("root causes (%d) != flips (%d)", len(res.RootCauses), res.Flips)
	}
	for _, rc := range res.RootCauses {
		if rc.First.TID == rc.Second.TID {
			t.Fatalf("degenerate root cause %v", rc)
		}
	}
}
