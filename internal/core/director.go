package core

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/race"
	"repro/internal/sched"
	"repro/internal/sketch"
	"repro/internal/trace"
)

// flip is one scheduling constraint learned from a failed attempt: delay
// the access that originally went first until the originally-second
// access has executed, reversing one race outcome.
type flip struct {
	holdTID   trace.TID
	holdCount uint64
	addr      uint64
	untilTID  trace.TID
	untilCnt  uint64
	// pair is the race this flip reverses, kept for root-cause
	// reporting when the flip's attempt reproduces the bug.
	pair race.Pair
}

func flipOf(p race.Pair) flip {
	return flip{
		holdTID:   p.First.TID,
		holdCount: p.First.TCount,
		addr:      p.First.Addr,
		untilTID:  p.Second.TID,
		untilCnt:  p.Second.TCount,
		pair:      p,
	}
}

// pairs returns the races a flip set reverses, in order.
func (fs flipSet) pairs() []race.Pair {
	out := make([]race.Pair, len(fs.flips))
	for i, f := range fs.flips {
		out[i] = f.pair
	}
	return out
}

func (f flip) key() string {
	return fmt.Sprintf("%#x:t%d#%d>t%d#%d", f.addr, f.untilTID, f.untilCnt, f.holdTID, f.holdCount)
}

// pairKey identifies the unordered access pair a flip constrains. A
// flip set constrains each pair at most once: otherwise the search
// oscillates, flipping the same race back and forth as each attempt
// re-observes it in the direction the previous flip produced.
func (f flip) pairKey() string {
	a := fmt.Sprintf("t%d#%d", f.holdTID, f.holdCount)
	b := fmt.Sprintf("t%d#%d", f.untilTID, f.untilCnt)
	if a > b {
		a, b = b, a
	}
	return fmt.Sprintf("%#x:%s/%s", f.addr, a, b)
}

// flipSet is an ordered set of flips defining one point in the search
// tree. Order matters only for the key; enforcement is simultaneous.
type flipSet struct {
	flips []flip
	id    string
}

// with returns fs extended by f, or ok=false if fs already constrains
// f's access pair (in either direction).
func (fs flipSet) with(f flip) (flipSet, bool) {
	pk := f.pairKey()
	for _, g := range fs.flips {
		if g.pairKey() == pk {
			return flipSet{}, false
		}
	}
	child := flipSet{flips: append(append([]flip(nil), fs.flips...), f)}
	child.id = fs.id + "|" + f.key()
	return child, true
}

// director is both the replay Strategy and an Observer: it enforces the
// recorded sketch order, holds threads per the flip set, explores the
// remaining freedom with a deterministic (or seeded-random, for the
// no-feedback ablation) policy, and detects divergence from the sketch.
//
// The director deliberately implements no sched.RunGranter: a directed
// attempt runs on budget-1 grants so every scheduling point — in
// particular every point near a flip's hold window — is a fresh pick
// where a hold can engage or release. Granting a multi-point run to a
// thread that reaches a flip point mid-run would commit past the very
// interleaving the flip exists to force. Declared batches still arrive
// as candidates with Run > 1; the director simply never consumes the
// declaration, so batch points stay individually interleavable under
// replay.
type director struct {
	scheme  sketch.Scheme
	entries []trace.SketchEntry
	k       int // next sketch entry to honor

	flips    []flip
	flipDone []bool
	executed map[trace.TID]uint64

	rng  *rand.Rand            // nil => deterministic sticky policy
	vt   map[trace.TID]float64 // virtual time for the random policy
	last trace.TID             // thread granted at the previous pick

	// exhaustStep records the global step at which the final sketch
	// entry was consumed (0 while unconsumed): the recorded horizon.
	// The production run died at its last sketch point, so the bug
	// lives near this step — feedback ranks races by proximity to it.
	exhaustStep uint64

	// soft is set once a flip engages (its hold point is reached): the
	// schedule has deliberately deviated from the recorded execution, so
	// from that point the sketch is a soft guide rather than a hard
	// constraint — exactly PRES's "replay to the deviation point, then
	// explore". Before engagement the sketch is enforced strictly.
	soft bool

	diverged    bool
	divergeNote string
}

func newDirector(scheme sketch.Scheme, entries []trace.SketchEntry, fs flipSet, rng *rand.Rand) *director {
	// Enforce flips in canonical (key) order, not discovery order: the
	// only order-sensitive operation is releaseOneFlip's first-match
	// scan, and sorting makes the attempt a function of the flip *set* —
	// the same identity the dedup set and the schedule cache key on.
	flips := append([]flip(nil), fs.flips...)
	sort.Slice(flips, func(i, j int) bool { return flips[i].key() < flips[j].key() })
	return &director{
		scheme:   scheme,
		entries:  entries,
		flips:    flips,
		flipDone: make([]bool, len(flips)),
		executed: make(map[trace.TID]uint64),
		rng:      rng,
	}
}

// Pick implements sched.Strategy.
func (d *director) Pick(view *sched.PickView) (trace.TID, bool) {
	// Sticky fast path: once the sketch is fully consumed and no flip
	// is still pending, every candidate is grantable and unheld, so the
	// deterministic sticky policy reduces to "keep the last thread
	// running if it can" — answered by binary search over the
	// TID-sorted view without re-partitioning the candidates. The tail
	// of a directed attempt (usually the bulk of its points) pays one
	// PickView.Find instead of two candidate scans.
	if d.rng == nil && d.k >= len(d.entries) && !d.anyFlipPending() {
		if c, ok := view.Find(d.last); ok {
			d.last = c.TID
			return c.TID, true
		}
	}
	grantable, expected, ok := d.collect(view)
	if !ok {
		return trace.NoTID, false
	}

	// Enforce the flip set: hold an access whose identity matches a
	// pending flip until its partner has executed. The moment a flip
	// engages, the schedule has deviated from the recorded execution on
	// purpose, so sketch enforcement switches to soft for the rest of
	// the attempt (PRES's "replay to the deviation point, then explore")
	// and the candidates are re-collected under the relaxed rule so the
	// partner thread can actually run. A flip that still wedges the
	// schedule (its partner transitively blocked on the held thread) is
	// released as a last resort; either way the attempt remains a
	// deterministic function of the flip set.
	filtered, anyHeld := d.applyFlips(grantable)
	if anyHeld && !d.soft {
		d.soft = true
		grantable, expected, _ = d.collect(view)
		filtered, _ = d.applyFlips(grantable)
	}
	for len(filtered) == 0 {
		if !d.releaseOneFlip(grantable) {
			d.diverged = true
			d.divergeNote = "flip release failed to unwedge the schedule"
			return trace.NoTID, false
		}
		filtered, _ = d.applyFlips(grantable)
	}

	var choice sched.Candidate
	switch {
	case d.rng != nil:
		// Random exploration (the no-feedback ablation): time-weighted
		// like the production scheduler, so window-hitting odds match
		// a real stress re-run rather than a uniform event lottery.
		if d.vt == nil {
			d.vt = make(map[trace.TID]float64)
		}
		choice = filtered[0]
		for _, c := range filtered[1:] {
			if d.vt[c.TID] < d.vt[choice.TID] {
				choice = c
			}
		}
		d.vt[choice.TID] += float64(choice.Cost) * (0.85 + 0.3*d.rng.Float64())
	default:
		// Deterministic sticky policy: keep running the thread that ran
		// last until it blocks or the sketch/flips hold it. Coarse
		// schedules resemble the production run, so the baseline
		// attempt does not trip unrelated race windows the production
		// run never opened; context switches happen exactly where the
		// sketch or a flip forces them. When the current thread cannot
		// run, fall back to the least-executed candidate so no thread
		// is starved.
		choice = filtered[0]
		sticky := false
		for _, c := range filtered {
			if c.TID == d.last {
				choice = c
				sticky = true
				break
			}
		}
		if !sticky {
			for _, c := range filtered[1:] {
				if d.executed[c.TID] < d.executed[choice.TID] {
					choice = c
				}
			}
		}
	}
	d.last = choice.TID
	if expected != nil && choice.TID == expected.TID && choice.Kind == expected.Kind && choice.Obj == expected.Obj {
		d.k++
		if d.k == len(d.entries) {
			d.exhaustStep = view.Step + 1
		}
	}
	return choice.TID, true
}

// anyFlipPending reports whether a flip could still hold a candidate.
func (d *director) anyFlipPending() bool {
	for i := range d.flips {
		if !d.flipDone[i] {
			return true
		}
	}
	return false
}

// collect partitions the runnable candidates under the current sketch
// rule: strictly before any flip engages (out-of-turn sketch ops are
// held, impossible sketches diverge), and softly after (everything may
// run, the expected entry is merely preferred via k-advancement).
func (d *director) collect(view *sched.PickView) (grantable []sched.Candidate, expected *sched.Candidate, ok bool) {
	for i := range view.Candidates {
		c := view.Candidates[i]
		if d.scheme.Records(c.Kind) && d.k < len(d.entries) {
			exp := d.entries[d.k]
			if c.TID == exp.TID && c.Kind == exp.Kind && c.Obj == exp.Obj {
				expected = &view.Candidates[i]
				grantable = append(grantable, c)
				continue
			}
			if d.soft {
				// Past the deviation point the recorded order is only
				// a guide: out-of-turn sketch ops may run.
				grantable = append(grantable, c)
				continue
			}
			if c.TID == exp.TID {
				// The thread owed the next sketch point reached a
				// different one: its program order can never produce
				// the recorded entry any more.
				d.diverged = true
				d.divergeNote = fmt.Sprintf("sketch[%d]=%v but t%d is at %v obj=%#x",
					d.k, exp, c.TID, c.Kind, c.Obj)
				return nil, nil, false
			}
			continue // a sketch-kind op out of recorded turn: hold
		}
		grantable = append(grantable, c)
	}
	if len(grantable) == 0 {
		d.diverged = true
		d.divergeNote = fmt.Sprintf("no thread can reach sketch[%d]", d.k)
		return nil, nil, false
	}
	return grantable, expected, true
}

// applyFlips filters out candidates currently held by an active flip.
func (d *director) applyFlips(grantable []sched.Candidate) (filtered []sched.Candidate, anyHeld bool) {
	filtered = grantable[:0:0]
	for _, c := range grantable {
		if d.heldByFlip(c) {
			anyHeld = true
			continue
		}
		filtered = append(filtered, c)
	}
	return filtered, anyHeld
}

// releaseOneFlip abandons the first active flip that is holding one of
// the candidates, reporting whether one was found.
func (d *director) releaseOneFlip(grantable []sched.Candidate) bool {
	for _, c := range grantable {
		if !c.Kind.IsMemory() {
			continue
		}
		next := d.executed[c.TID] + 1
		for i, f := range d.flips {
			if !d.flipDone[i] && c.TID == f.holdTID && next == f.holdCount && c.Obj == f.addr {
				d.flipDone[i] = true
				return true
			}
		}
	}
	return false
}

func (d *director) heldByFlip(c sched.Candidate) bool {
	if !c.Kind.IsMemory() {
		return false
	}
	next := d.executed[c.TID] + 1
	for i, f := range d.flips {
		if d.flipDone[i] {
			continue
		}
		if c.TID == f.holdTID && next == f.holdCount && c.Obj == f.addr {
			return true
		}
	}
	return false
}

// OnEvent implements sched.Observer: it tracks per-thread progress so
// flip identities ((tid, tcount) pairs) can be matched, and releases
// flips whose partner access has executed.
func (d *director) OnEvent(ev trace.Event) uint64 {
	d.executed[ev.TID] = ev.TCount
	for i, f := range d.flips {
		if !d.flipDone[i] && ev.TID == f.untilTID && ev.TCount >= f.untilCnt {
			d.flipDone[i] = true
		}
	}
	return 0
}

// sketchConsumed reports whether every recorded sketch point was honored.
func (d *director) sketchConsumed() bool { return d.k >= len(d.entries) }

// orderCapture records the full grant order of an attempt so a
// successful reproduction can be replayed verbatim forever after.
type orderCapture struct {
	order []trace.TID
}

func (o *orderCapture) OnEvent(ev trace.Event) uint64 {
	o.order = append(o.order, ev.TID)
	return 0
}

func (o *orderCapture) full() *trace.FullOrder {
	return &trace.FullOrder{Order: o.order}
}
