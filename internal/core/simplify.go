package core

import (
	"repro/internal/appkit"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/vsys"
)

// Simplify reduces a captured full order to an equivalent schedule with
// as few context switches as possible while still reproducing the same
// failure. The schedule the replayer finds is an artifact of its search
// and often interleaves threads where it does not have to; the
// simplified schedule shows a developer the *minimal* interleaving
// structure — typically just the few switches that constitute the bug.
//
// The algorithm greedily coalesces runs: for each context switch in the
// current schedule, it tries to extend the previous thread's run through
// the following run (deferring the preempted ops), verifies by
// re-execution that the failure still reproduces identically, and keeps
// the change if so. This is the schedule-reduction idea of
// CHESS-style systematic testers applied to PRES's captured orders; the
// paper's diagnosis story motivates it (a reproduced bug is consumed by
// a human next).
//
// Simplify performs at most budget re-executions (0 means
// DefaultSimplifyBudget) and returns the best schedule found together
// with the number of re-executions spent. The input order is not
// modified.
func Simplify(prog *appkit.Program, rec *Recording, order *trace.FullOrder, budget int) (*trace.FullOrder, int) {
	if budget <= 0 {
		budget = DefaultSimplifyBudget
	}
	oracle := func(f *sched.Failure) bool { return f != nil && f.IsBug() }
	if f := rec.BugFailure(); f != nil && f.BugID != "" {
		id := f.BugID
		oracle = func(f *sched.Failure) bool {
			return f != nil && f.IsBug() && (f.BugID == id || f.Reason == sched.ReasonDeadlock)
		}
	}

	cur := append([]trace.TID(nil), order.Order...)
	spent := 0

	// Repeatedly sweep the schedule, trying to eliminate the first
	// removable switch of each run boundary; stop when a full sweep
	// makes no progress or the budget is gone.
	progress := true
	for progress && spent < budget {
		progress = false
		i := 0
		for i < len(cur) && spent < budget {
			j := switchAfter(cur, i)
			if j < 0 {
				break
			}
			// Runs: [..i..j-1] by thread A, [j..k-1] by thread B.
			k := switchAfter(cur, j)
			if k < 0 {
				k = len(cur)
			}
			if next := nextRunOf(cur, cur[j-1], j); next >= 0 {
				// Candidate: move A's next run to directly follow this
				// one, deferring B's run (and anything between) after.
				cand := spliceRuns(cur, j, next)
				spent++
				if replaysSame(prog, rec, cand, oracle) {
					cur = cand
					progress = true
					continue // retry from the same position
				}
			}
			i = j
		}
	}
	return &trace.FullOrder{Order: cur}, spent
}

// DefaultSimplifyBudget bounds re-executions during simplification.
const DefaultSimplifyBudget = 200

// switchAfter returns the index of the first context switch at or after
// i (the first index whose thread differs from cur[i]'s run), or -1.
func switchAfter(cur []trace.TID, i int) int {
	if i >= len(cur) {
		return -1
	}
	t := cur[i]
	for j := i + 1; j < len(cur); j++ {
		if cur[j] != t {
			return j
		}
	}
	return -1
}

// nextRunOf returns the start index of thread t's next run at or after
// i, or -1.
func nextRunOf(cur []trace.TID, t trace.TID, i int) int {
	for j := i; j < len(cur); j++ {
		if cur[j] == t {
			return j
		}
	}
	return -1
}

// spliceRuns moves the run of cur[next...] (a maximal same-thread run)
// to position j, shifting the elements in between right.
func spliceRuns(cur []trace.TID, j, next int) []trace.TID {
	t := cur[next]
	end := next
	for end < len(cur) && cur[end] == t {
		end++
	}
	out := make([]trace.TID, 0, len(cur))
	out = append(out, cur[:j]...)
	out = append(out, cur[next:end]...)
	out = append(out, cur[j:next]...)
	out = append(out, cur[end:]...)
	return out
}

// replaysSame re-executes prog under the candidate order and reports
// whether it reproduces an acceptable failure.
func replaysSame(prog *appkit.Program, rec *Recording, cand []trace.TID, oracle Oracle) bool {
	world := vsys.NewWorld(rec.Options.WorldSeed)
	world.StartReplay(rec.Inputs)
	res := execute(prog, rec.Options, sched.Config{
		Strategy: &sched.OrderStrategy{Order: cand},
		MaxSteps: rec.Options.MaxSteps,
	}, world)
	return res.Failure != nil && res.Failure.IsBug() && oracle(res.Failure)
}

// Switches counts the context switches in a schedule — the metric
// Simplify minimizes.
func Switches(order *trace.FullOrder) int {
	n := 0
	for i := 1; i < len(order.Order); i++ {
		if order.Order[i] != order.Order[i-1] {
			n++
		}
	}
	return n
}
