package core

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"repro/internal/apps"
	"repro/internal/sketch"
)

// TestPropPerThreadLogEquivalence: per-thread sketch logging is
// invisible to everything PRES keeps. For a corpus subset, a
// production recording made with Options.PerThreadLog is byte-for-byte
// identical (sketch log and input log, through Recording.Write) to one
// made against the global reference log, the run shape matches, and a
// full replay search over each follows the identical trajectory. Only
// the modelled recording cost (Result.ExtraCost, Overhead) may differ
// — that cost difference IS the feature.
func TestPropPerThreadLogEquivalence(t *testing.T) {
	cases := []struct {
		app    string
		scheme sketch.Scheme
	}{
		{"fft", sketch.SYNC},
		{"lu", sketch.SYNC},
		{"barnes", sketch.SYNC},
		{"mysqld", sketch.SYNC},
		{"radix", sketch.SYNC},
		{"aget", sketch.RW},
		// Dense sketch over long compute runs: the case per-thread
		// logging exists for, asserted cheaper below.
		{"fft-rw", sketch.RW},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.app+"-"+tc.scheme.String(), func(t *testing.T) {
			prog, ok := apps.Get(appName(tc.app))
			if !ok {
				t.Fatalf("unknown corpus app %q", tc.app)
			}
			// Prefer a seed whose production run manifests a bug so the
			// replay comparison exercises the directed search, feedback
			// and order capture; fall back to a clean recording.
			opt := Options{Scheme: tc.scheme, Processors: 4, WorldSeed: 11, MaxSteps: 400_000}
			for seed := int64(0); seed < 300; seed++ {
				opt.ScheduleSeed = seed
				if Record(prog, opt).BugFailure() != nil {
					break
				}
			}

			globalOpt, shardOpt := opt, opt
			shardOpt.PerThreadLog = true
			global := Record(prog, globalOpt)
			shard := Record(prog, shardOpt)

			var gb, sb bytes.Buffer
			if err := global.Write(&gb); err != nil {
				t.Fatal(err)
			}
			if err := shard.Write(&sb); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gb.Bytes(), sb.Bytes()) {
				t.Fatalf("recorded logs differ between global and per-thread modes (%d vs %d bytes)", gb.Len(), sb.Len())
			}
			gr, sr := global.Result, shard.Result
			if gr.Steps != sr.Steps || gr.BaseCost != sr.BaseCost || gr.Threads != sr.Threads ||
				gr.Handoffs != sr.Handoffs || gr.FastPathSteps != sr.FastPathSteps {
				t.Fatalf("run shape differs:\nglobal:     %+v\nper-thread: %+v", gr, sr)
			}
			if !reflect.DeepEqual(gr.EventsByKind, sr.EventsByKind) {
				t.Fatalf("event kind histograms differ: %v vs %v", gr.EventsByKind, sr.EventsByKind)
			}
			if (gr.Failure == nil) != (sr.Failure == nil) {
				t.Fatalf("failure presence differs: %v vs %v", gr.Failure, sr.Failure)
			}
			if gr.Failure != nil && (gr.Failure.Reason != sr.Failure.Reason || gr.Failure.BugID != sr.Failure.BugID || gr.Failure.Step != sr.Failure.Step) {
				t.Fatalf("failures differ: %v vs %v", gr.Failure, sr.Failure)
			}
			if tc.app == "fft-rw" && sr.ExtraCost >= gr.ExtraCost {
				// Dense sketch, long same-thread runs: local appends plus
				// per-switch seals must undercut per-record global
				// synchronization.
				t.Fatalf("per-thread recording cost %d not below global %d on a dense sketch",
					sr.ExtraCost, gr.ExtraCost)
			}

			// Replay trajectories: the searches consume only Sketch+Inputs
			// (byte-identical above), so the trajectories must match field
			// for field. shard.Options carries PerThreadLog into every
			// replay attempt's recording mode, proving the attempt path is
			// equally indifferent.
			ropts := ReplayOptions{Feedback: true, MaxAttempts: 60}
			rg := Replay(prog, global, ropts)
			rs := Replay(prog, shard, ropts)
			if rg.Reproduced != rs.Reproduced || rg.Attempts != rs.Attempts || rg.Flips != rs.Flips {
				t.Fatalf("search trajectories differ: %v/%d/%d vs %v/%d/%d",
					rg.Reproduced, rg.Attempts, rg.Flips, rs.Reproduced, rs.Attempts, rs.Flips)
			}
			if !reflect.DeepEqual(rg.Stats, rs.Stats) {
				t.Fatalf("search stats differ:\nglobal:     %+v\nper-thread: %+v", rg.Stats, rs.Stats)
			}
			if !reflect.DeepEqual(rg.Order, rs.Order) {
				t.Fatal("captured orders differ between modes")
			}
			if !reflect.DeepEqual(rg.RootCauses, rs.RootCauses) {
				t.Fatalf("root causes differ: %v vs %v", rg.RootCauses, rs.RootCauses)
			}
			if rg.Reproduced {
				og := Reproduce(prog, global, rg.Order)
				os := Reproduce(prog, shard, rs.Order)
				if og.Failure == nil || os.Failure == nil || og.Failure.BugID != os.Failure.BugID {
					t.Fatalf("order reproduction differs: %v vs %v", og.Failure, os.Failure)
				}
				if og.Steps != os.Steps || og.Handoffs != os.Handoffs {
					t.Fatalf("order replay shape differs: steps %d/%d handoffs %d/%d",
						og.Steps, os.Steps, og.Handoffs, os.Handoffs)
				}
			}
			t.Logf("%s/%s: steps=%d extra(global)=%d extra(per-thread)=%d attempts=%d reproduced=%v",
				tc.app, tc.scheme, gr.Steps, gr.ExtraCost, sr.ExtraCost, rg.Attempts, rg.Reproduced)
		})
	}
}

// appName strips the scheme-variant suffix used to run one app under
// two schemes in the case table.
func appName(name string) string {
	if name == "fft-rw" {
		return "fft"
	}
	return name
}

// TestPerThreadRecordRaceClean: concurrent per-thread-mode recordings
// share nothing — run under -race (as `make check` does), N parallel
// Records of the same program must all be byte-identical to a
// reference recording. This is the stress gate for the shard/seal
// plumbing's freedom from hidden shared state.
func TestPerThreadRecordRaceClean(t *testing.T) {
	prog, ok := apps.Get("fft")
	if !ok {
		t.Fatal("unknown corpus app fft")
	}
	opt := Options{Scheme: sketch.RW, Processors: 4, ScheduleSeed: 7, WorldSeed: 11,
		MaxSteps: 400_000, PerThreadLog: true}
	var refBuf bytes.Buffer
	if err := Record(prog, opt).Write(&refBuf); err != nil {
		t.Fatal(err)
	}
	ref := refBuf.Bytes()
	const workers = 8
	var wg sync.WaitGroup
	errs := make([]string, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf bytes.Buffer
			if err := Record(prog, opt).Write(&buf); err != nil {
				errs[w] = err.Error()
				return
			}
			if !bytes.Equal(buf.Bytes(), ref) {
				errs[w] = "recording differs from reference"
			}
		}()
	}
	wg.Wait()
	for w, e := range errs {
		if e != "" {
			t.Fatalf("worker %d: %s", w, e)
		}
	}
}
