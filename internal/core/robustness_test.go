package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/sched"
	"repro/internal/sketch"
)

// TestReplayWrongProgramDoesNotCrash: replaying a recording against a
// different program must fail gracefully (divergence / no reproduction),
// never panic or hang.
func TestReplayWrongProgramDoesNotCrash(t *testing.T) {
	rec := recordBuggy(t, orderBugProg(), sketch.SYNC)
	res := Replay(atomBugProg(3), rec, ReplayOptions{
		Feedback:    true,
		MaxAttempts: 20,
		Oracle:      MatchBugID("order-bug"),
	})
	if res.Reproduced {
		t.Fatal("wrong program reproduced the wrong bug id!?")
	}
	if res.Attempts > 20 {
		t.Fatalf("budget ignored: %d", res.Attempts)
	}
}

// TestReplayEmptyRecording: a recording of an empty sketch (BASE) still
// drives a meaningful search.
func TestReplayEmptyRecording(t *testing.T) {
	prog := orderBugProg()
	rec := recordBuggy(t, prog, sketch.BASE)
	if rec.Sketch.Len() != 0 {
		t.Fatal("BASE sketch should be empty")
	}
	res := Replay(prog, rec, ReplayOptions{Feedback: true, Oracle: MatchBugID("order-bug")})
	if !res.Reproduced {
		t.Fatalf("BASE replay failed in %d attempts", res.Attempts)
	}
}

// TestHybridSchemeEndToEnd: the SYNC∪SYS extension records and replays.
func TestHybridSchemeEndToEnd(t *testing.T) {
	prog := orderBugProg()
	rec := recordBuggy(t, prog, sketch.HYBRID)
	for _, e := range rec.Sketch.Entries {
		if !e.Kind.IsSync() && !e.Kind.IsSyscall() {
			t.Fatalf("HYBRID recorded %v", e.Kind)
		}
	}
	res := Replay(prog, rec, ReplayOptions{Feedback: true, Oracle: MatchBugID("order-bug")})
	if !res.Reproduced {
		t.Fatalf("HYBRID replay failed: %+v", res.Stats)
	}
}

// TestWorldSeedVariation: the pipeline works across different input
// worlds, not just the default seed.
func TestWorldSeedVariation(t *testing.T) {
	prog := atomBugProg(3)
	oracle := MatchBugID("atom-bug")
	verified := 0
	for _, ws := range []int64{1, 2, 7, 42} {
		for seed := int64(0); seed < 600; seed++ {
			rec := Record(prog, Options{
				Scheme:       sketch.SYNC,
				Processors:   4,
				ScheduleSeed: seed,
				WorldSeed:    ws,
				MaxSteps:     200_000,
			})
			f := rec.BugFailure()
			if f == nil || !oracle(f) {
				continue
			}
			res := Replay(prog, rec, ReplayOptions{Feedback: true, Oracle: oracle})
			if !res.Reproduced {
				t.Fatalf("world seed %d: not reproduced", ws)
			}
			verified++
			break
		}
	}
	if verified < 2 {
		t.Fatalf("only %d world seeds produced a manifestation", verified)
	}
}

// TestReplayBudgetOne: the tightest budget performs exactly one attempt.
func TestReplayBudgetOne(t *testing.T) {
	prog := orderBugProg()
	rec := recordBuggy(t, prog, sketch.SYNC)
	res := Replay(prog, rec, ReplayOptions{
		Feedback:    true,
		MaxAttempts: 1,
		Oracle:      func(*sched.Failure) bool { return false },
	})
	if res.Attempts != 1 || res.Reproduced {
		t.Fatalf("attempts=%d reproduced=%v", res.Attempts, res.Reproduced)
	}
}

// TestParallelReplayMatchesSequential: the work-stealing pool must find
// the bug whenever the sequential search does, and its captured order
// must replay to the same failure; Workers=1 must preserve the exact
// sequential search.
func TestParallelReplayMatchesSequential(t *testing.T) {
	prog := atomBugProg(3)
	rec := recordBuggy(t, prog, sketch.SYNC)
	seq := Replay(prog, rec, ReplayOptions{Feedback: true, Oracle: MatchBugID("atom-bug")})
	if !seq.Reproduced {
		t.Fatal("sequential failed")
	}
	par := Replay(prog, rec, ReplayOptions{
		Feedback: true, Oracle: MatchBugID("atom-bug"), Workers: 4,
	})
	if !par.Reproduced {
		t.Fatalf("parallel failed: %+v", par.Stats)
	}
	out := Reproduce(prog, rec, par.Order)
	if out.Failure == nil || out.Failure.BugID != "atom-bug" {
		t.Fatalf("parallel capture lost the bug: %v", out.Failure)
	}
	// Workers=1 must preserve the exact sequential search, attempt for
	// attempt — for a fixed seed the attempt count cannot move.
	one := Replay(prog, rec, ReplayOptions{
		Feedback: true, Oracle: MatchBugID("atom-bug"), Workers: 1,
	})
	if one.Attempts != seq.Attempts {
		t.Fatalf("W=1 diverged from sequential: %d vs %d", one.Attempts, seq.Attempts)
	}
}

// TestParallelReplayCorpusBug: parallelism on a real corpus bug.
func TestParallelReplayCorpusBug(t *testing.T) {
	prog, _ := apps.Get("lu")
	oracle := MatchBugID("lu-atomicity")
	var rec *Recording
	for seed := int64(0); seed < 3000; seed++ {
		r := Record(prog, Options{Scheme: sketch.SYNC, Processors: 4, ScheduleSeed: seed, WorldSeed: 1, MaxSteps: 300_000})
		if f := r.BugFailure(); f != nil && oracle(f) {
			rec = r
			break
		}
	}
	if rec == nil {
		t.Fatal("no buggy seed")
	}
	res := Replay(prog, rec, ReplayOptions{Feedback: true, Oracle: oracle, Workers: 8})
	if !res.Reproduced {
		t.Fatalf("not reproduced: %+v", res.Stats)
	}
}

// TestOnAttemptCallback: progress reporting fires once per attempt in
// order, ending with "reproduced".
func TestOnAttemptCallback(t *testing.T) {
	prog := atomBugProg(3)
	rec := recordBuggy(t, prog, sketch.SYNC)
	var seen []string
	res := Replay(prog, rec, ReplayOptions{
		Feedback: true,
		Oracle:   MatchBugID("atom-bug"),
		OnAttempt: func(i int, mode, outcome string) {
			if i != len(seen)+1 {
				t.Errorf("attempt index %d out of order", i)
			}
			seen = append(seen, mode+"/"+outcome)
		},
	})
	if !res.Reproduced {
		t.Fatal("not reproduced")
	}
	if len(seen) != res.Attempts {
		t.Fatalf("callback fired %d times for %d attempts", len(seen), res.Attempts)
	}
	if last := seen[len(seen)-1]; !strings.HasSuffix(last, "/reproduced") {
		t.Fatalf("last outcome = %q", last)
	}
	// No-feedback mode reports too.
	seen = nil
	Replay(prog, rec, ReplayOptions{
		Feedback:    false,
		MaxAttempts: 3,
		Oracle:      func(*sched.Failure) bool { return false },
		OnAttempt:   func(i int, mode, outcome string) { seen = append(seen, mode) },
	})
	if len(seen) != 3 {
		t.Fatalf("no-feedback callback fired %d times", len(seen))
	}
}

// TestOptionDefaults exercises every option normalization path.
func TestOptionDefaults(t *testing.T) {
	o := Options{}
	if o.preempt() != DefaultPreempt || o.processors() != 4 {
		t.Fatal("record defaults wrong")
	}
	o = Options{Preempt: 0.5, Processors: 8}
	if o.preempt() != 0.5 || o.processors() != 8 {
		t.Fatal("record explicit values lost")
	}
	r := ReplayOptions{}
	if r.maxAttempts() != DefaultMaxAttempts || r.branch() != DefaultBranchFactor {
		t.Fatal("replay defaults wrong")
	}
	if !r.oracle()(&sched.Failure{Reason: sched.ReasonAssert, BugID: "any"}) {
		t.Fatal("default oracle should accept any failure")
	}
	r = ReplayOptions{MaxAttempts: 3, BranchFactor: 5}
	if r.maxAttempts() != 3 || r.branch() != 5 {
		t.Fatal("replay explicit values lost")
	}
}

// TestReadRecordingCorruptSections exercises the section-reader error
// paths.
func TestReadRecordingCorruptSections(t *testing.T) {
	rec := recordBuggy(t, orderBugProg(), sketch.SYNC)
	var buf bytes.Buffer
	if err := rec.Write(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Truncations at every prefix length must error, not panic.
	for cut := 0; cut < len(full); cut += 7 {
		if _, err := ReadRecording(bytes.NewReader(full[:cut]), rec.Options); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// A section length beyond sanity must be rejected.
	huge := append([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}, full...)
	if _, err := ReadRecording(bytes.NewReader(huge), rec.Options); err == nil {
		t.Fatal("huge section length accepted")
	}
}
