// Package core implements PRES itself: production-run recording under a
// chosen sketching mechanism, the intelligent replayer that explores the
// unrecorded non-deterministic space with feedback from failed attempts,
// and the reproducer that replays a captured full order deterministically
// every time.
package core

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"io"

	"repro/internal/appkit"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sketch"
	"repro/internal/trace"
	"repro/internal/vsys"
)

// Options parameterizes a production run.
type Options struct {
	Scheme sketch.Scheme
	// Processors models the production machine's core count.
	Processors int
	// Preempt is the per-point timeslice-preemption probability of the
	// production scheduler; zero means DefaultPreempt.
	Preempt float64
	// ScheduleSeed seeds the production run's interleaving.
	ScheduleSeed int64
	// WorldSeed seeds the virtual syscall layer (clock/rng inputs).
	WorldSeed int64
	// Scale and MaxSteps are passed through to the program/scheduler.
	Scale    int
	MaxSteps uint64
	// FixBugs runs the programs' patched code paths (see appkit.Env).
	FixBugs bool
	// SingleStep disables the scheduler's run-grant fast path: every
	// scheduling point is a separate strategy pick and handoff, with no
	// state reuse (sched.Config.SingleStep). The reference mode the
	// fast-path equivalence properties compare against; production use
	// leaves it false.
	SingleStep bool
	// NoBatch makes declared point batches (sched.Thread.PointBatch)
	// decompose into sequential single points (sched.Config.NoBatch):
	// the measurement baseline for handoff amortization. Batches feed
	// run-aware strategies, so unlike SingleStep this changes recorded
	// schedules.
	NoBatch bool
	// PerThreadLog records into thread-local sketch shards sealed at
	// epoch boundaries (context switches) and merged into canonical
	// global order at encode time, instead of the globally ordered log
	// every append synchronizes on. The recording is byte-identical and
	// replays identically (TestPropPerThreadLogEquivalence); only the
	// modelled recording cost changes — cheaper for dense sketches with
	// long same-thread runs, pricier for very sparse ones (see
	// sketch.LocalRecordCost/EpochSealCost). The global log remains the
	// default and the reference path.
	PerThreadLog bool
	// EpochRing, when non-nil, selects epoch-segmented recording: the
	// sketch is sealed into fixed-length epochs kept in a bounded ring
	// with periodic checkpoints (see EpochRingOptions). The recorded
	// interleaving is identical to a plain recording of the same seeds —
	// sealing observes the committed stream, it never perturbs it — and
	// an unbounded, checkpoint-free ring serializes byte-identically to
	// the classic format. Takes precedence over PerThreadLog (the two
	// answer the same question at different layers). Nil, the default,
	// is the classic whole-execution path, untouched.
	EpochRing *EpochRingOptions
	// Inject, when non-nil, returns a fresh failure-injection hook for
	// each execution (internal/scenario's failure classes are such
	// factories). The factory shape matters: injectors keep per-thread
	// counters, and Options outlives a single run — the recording run,
	// every replay attempt, and order reproduction each materialize
	// their own hook so injection decisions repeat identically. Nil —
	// the default — leaves every fault site on its unconditional fast
	// path (see TestInjectDisabledAllocFree).
	Inject func() sched.InjectFn
	// Metrics, when non-nil, receives recording metrics (sketch entries
	// written, log bytes, modelled overhead — see OBSERVABILITY.md) and
	// the substrate's scheduler counters. Nil, the default, keeps the
	// production hot path free of measurement cost.
	Metrics *obs.Registry
}

// DefaultPreempt is the production scheduler's timeslice-preemption
// probability when Options leaves it zero.
const DefaultPreempt = 0.02

func (o Options) preempt() float64 {
	if o.Preempt == 0 {
		return DefaultPreempt
	}
	return o.Preempt
}

func (o Options) processors() int {
	if o.Processors <= 0 {
		return 4
	}
	return o.Processors
}

// Recording is everything PRES keeps from a production run: the sketch,
// the input log, and the run's outcome (so the harness knows whether the
// bug manifested).
type Recording struct {
	Scheme  sketch.Scheme
	Sketch  *trace.SketchLog
	Inputs  *trace.InputLog
	Options Options
	Result  *sched.Result
	// Epochs is the epoch-segmented container when the recording was
	// made with Options.EpochRing (nil otherwise). Sketch then holds the
	// retained window's log view — Entries are the window, TotalOps and
	// Records keep whole-run counts.
	Epochs *trace.EpochRing
}

// BugFailure returns the manifested bug failure of the production run,
// or nil if the run completed cleanly.
func (r *Recording) BugFailure() *sched.Failure {
	if r.Result != nil && r.Result.Failure != nil && r.Result.Failure.IsBug() {
		return r.Result.Failure
	}
	return nil
}

// LogBytes returns the encoded size of the sketch plus input logs — the
// storage cost of this recording.
func (r *Recording) LogBytes() int {
	return sketch.EncodedSize(r.Sketch) + sketch.InputEncodedSize(r.Inputs)
}

// countingWriter measures encoded bytes without retaining them.
type countingWriter struct{ n uint64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += uint64(len(p))
	return len(p), nil
}

// Write serializes the recording's logs (sketch, then inputs). Each
// section is length-prefixed so the reader can split them without the
// decoders' internal buffering over-reading across the boundary. The
// prefix comes from a counting pre-pass — the encoders are
// deterministic, so sizing is just encoding into a byte counter — and
// the section then streams straight to w, so a large RW recording is
// never held in memory a second time.
// Epoch-segmented recordings whose ring carries structure the classic
// format cannot express (a bounded window or checkpoints) are written
// as a container instead: the trace.EpochContainerMagic sniff tag, then
// a length-prefixed epoch section and input section. An unbounded,
// checkpoint-free ring's window is the whole log, so it takes the
// classic path — byte-identical to a recording made without EpochRing.
func (r *Recording) Write(w io.Writer) error {
	sections := []func(io.Writer) error{
		func(w io.Writer) error { return trace.EncodeSketch(w, r.Sketch) },
		func(w io.Writer) error { return trace.EncodeInput(w, r.Inputs) },
	}
	if r.Epochs != nil && r.Epochs.Segmented() {
		if _, err := w.Write([]byte(trace.EpochContainerMagic)); err != nil {
			return err
		}
		sections[0] = func(w io.Writer) error { return trace.EncodeEpochs(w, r.Epochs) }
	}
	var lead [binary.MaxVarintLen64]byte
	for _, enc := range sections {
		var cw countingWriter
		if err := enc(&cw); err != nil {
			return err
		}
		if _, err := w.Write(lead[:binary.PutUvarint(lead[:], cw.n)]); err != nil {
			return err
		}
		if err := enc(w); err != nil {
			return err
		}
	}
	return nil
}

func readSection(br io.ByteReader, rd io.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > 1<<31 {
		return nil, trace.ErrBadFormat
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(rd, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// ReadRecording deserializes logs written by Write — both layouts.
// The container is sniffed by its leading magic, which the classic
// format can never start with (its first byte is a uvarint length, so
// either the high bit is set or the "PRSK" sketch magic follows).
// Options and Result are not part of the wire format; the caller
// supplies Options.
func ReadRecording(rd io.Reader, opts Options) (*Recording, error) {
	br := bufio.NewReader(rd)
	container := false
	if head, err := br.Peek(len(trace.EpochContainerMagic)); err == nil && string(head) == trace.EpochContainerMagic {
		br.Discard(len(trace.EpochContainerMagic))
		container = true
	}
	skBytes, err := readSection(br, br)
	if err != nil {
		return nil, err
	}
	inBytes, err := readSection(br, br)
	if err != nil {
		return nil, err
	}
	var sk *trace.SketchLog
	var ring *trace.EpochRing
	if container {
		ring, err = trace.DecodeEpochs(bytes.NewReader(skBytes))
		if err != nil {
			return nil, err
		}
		sk = ring.WindowLog()
	} else {
		sk, err = trace.DecodeSketch(bytes.NewReader(skBytes))
		if err != nil {
			return nil, err
		}
	}
	in, err := trace.DecodeInput(bytes.NewReader(inBytes))
	if err != nil {
		return nil, err
	}
	scheme, err := sketch.Parse(sk.Scheme)
	if err != nil {
		return nil, err
	}
	return &Recording{Scheme: scheme, Sketch: sk, Inputs: in, Options: opts, Epochs: ring}, nil
}

// execute runs prog once with a fresh world in the given vsys mode. It
// is the single point where the scheduler-mode knobs (SingleStep,
// NoBatch) reach the substrate, so recording, replay attempts and
// order reproduction all honor them uniformly.
func execute(prog *appkit.Program, opts Options, cfg sched.Config, world *vsys.World) *sched.Result {
	cfg.SingleStep = opts.SingleStep
	cfg.NoBatch = opts.NoBatch
	var inj sched.InjectFn
	if opts.Inject != nil {
		// One fresh hook per execution: per-thread injector state never
		// leaks across replay attempts.
		inj = opts.Inject()
	}
	cfg.Inject = inj
	return sched.Run(func(t *sched.Thread) {
		prog.Run(&appkit.Env{T: t, W: world, Scale: opts.Scale, Procs: opts.processors(), FixBugs: opts.FixBugs, Inject: inj})
	}, cfg)
}

// Record performs one production run of prog under opts, recording a
// sketch with the chosen scheme and the input log. The run uses the
// multiprocessor production scheduler; whether the bug manifests depends
// on ScheduleSeed (use harness.FindBuggySeed to search). It is
// RecordContext with a background context.
func Record(prog *appkit.Program, opts Options) *Recording {
	return RecordContext(context.Background(), prog, opts)
}

// RecordContext performs one production run under ctx: a cancelled
// context unwinds the run at its next scheduling point, leaving a
// recording whose Result carries a ReasonCancelled failure (never
// mistaken for a manifested bug).
func RecordContext(ctx context.Context, prog *appkit.Program, opts Options) *Recording {
	world := vsys.NewWorld(opts.WorldSeed)
	inputs := &trace.InputLog{}
	world.StartRecording(inputs)
	// Both recorder kinds observe the same committed stream; they differ
	// only in where appends land (global log vs per-thread shards) and
	// in the modelled cost charged per record.
	var rec interface {
		sched.Observer
		Log() *trace.SketchLog
	}
	var shardRec *sketch.ShardRecorder
	var epochRec *epochRecorder
	switch {
	case opts.EpochRing != nil:
		epochRec = newEpochRecorder(opts.Scheme, world, inputs, opts.EpochRing)
		rec = epochRec
	case opts.PerThreadLog:
		shardRec = sketch.NewShardRecorder(opts.Scheme)
		rec = shardRec
	default:
		rec = sketch.NewRecorder(opts.Scheme)
	}
	res := execute(prog, opts, sched.Config{
		Strategy:  sched.NewRandomMP(opts.processors(), opts.preempt(), opts.ScheduleSeed),
		Observers: []sched.Observer{rec},
		MaxSteps:  opts.MaxSteps,
		Metrics:   opts.Metrics,
		Ctx:       ctx,
	}, world)
	scheme := opts.Scheme.String()
	// Merge-on-encode: the first Log() call on a ShardRecorder performs
	// the canonical-order merge (timed when metrics are on; the Timer is
	// nil-safe, so the untimed path costs nothing).
	var log *trace.SketchLog
	if shardRec != nil && opts.Metrics != nil {
		sp := opts.Metrics.Timer("pres_record_merge_seconds", "scheme", scheme).Start()
		log = shardRec.Log()
		sp.Stop()
	} else {
		if epochRec != nil {
			epochRec.finish()
		}
		log = rec.Log()
	}
	out := &Recording{
		Scheme:  opts.Scheme,
		Sketch:  log,
		Inputs:  inputs,
		Options: opts,
		Result:  res,
	}
	if epochRec != nil {
		out.Epochs = epochRec.ring
	}
	if m := opts.Metrics; m != nil {
		m.Counter("pres_record_runs_total", "scheme", scheme).Inc()
		m.Counter("pres_record_steps_total", "scheme", scheme).Add(res.Steps)
		m.Counter("pres_record_sketch_entries_total", "scheme", scheme).Add(uint64(out.Sketch.Len()))
		// LogBytes is a counting encode of both logs, so the span is the
		// run's real serialization cost (see pres_record_encode_seconds
		// in OBSERVABILITY.md).
		sp := m.Timer("pres_record_encode_seconds", "scheme", scheme).Start()
		logBytes := out.LogBytes()
		sp.Stop()
		m.Counter("pres_record_log_bytes_total", "scheme", scheme).Add(uint64(logBytes))
		m.Gauge("pres_record_overhead_ratio", "scheme", scheme).Set(res.Overhead())
		if shardRec != nil {
			m.Counter("pres_record_epoch_seals_total", "scheme", scheme).Add(shardRec.Seals())
			m.Gauge("pres_record_shards", "scheme", scheme).Set(float64(shardRec.Shards()))
			m.Gauge("pres_record_shard_highwater_entries", "scheme", scheme).SetMax(float64(shardRec.HighWater()))
		}
		if epochRec != nil {
			m.Counter("pres_record_epoch_rolls_total", "scheme", scheme).Add(epochRec.rolls)
			m.Counter("pres_record_epoch_evicted_total", "scheme", scheme).Add(epochRec.ring.Evicted)
			m.Counter("pres_record_epoch_checkpoints_total", "scheme", scheme).Add(uint64(len(epochRec.ring.Checkpoints)))
			m.Gauge("pres_record_epoch_ring_entries", "scheme", scheme).SetMax(float64(epochRec.highWater))
		}
	}
	return out
}
