package core

import (
	"testing"

	"repro/internal/race"
	"repro/internal/sched"
	"repro/internal/sketch"
	"repro/internal/trace"
)

func cand(tid trace.TID, k trace.Kind, obj uint64) sched.Candidate {
	return sched.Candidate{TID: tid, Kind: k, Obj: obj, Cost: 10}
}

func view(cs ...sched.Candidate) *sched.PickView {
	return &sched.PickView{Candidates: cs}
}

func entry(tid trace.TID, k trace.Kind, obj uint64) trace.SketchEntry {
	return trace.SketchEntry{TID: tid, Kind: k, Obj: obj}
}

func TestDirectorHoldsOutOfTurnSketchOps(t *testing.T) {
	d := newDirector(sketch.SYNC,
		[]trace.SketchEntry{entry(1, trace.KindLock, 7), entry(2, trace.KindLock, 7)},
		flipSet{}, nil)
	// Thread 2's lock is out of recorded turn; thread 1's is expected.
	tid, ok := d.Pick(view(cand(1, trace.KindLock, 7), cand(2, trace.KindLock, 7)))
	if !ok || tid != 1 {
		t.Fatalf("pick = %d, %v; want thread 1", tid, ok)
	}
	if d.k != 1 {
		t.Fatalf("sketch position = %d, want 1", d.k)
	}
}

func TestDirectorFreeOpsRunUnderHold(t *testing.T) {
	d := newDirector(sketch.SYNC,
		[]trace.SketchEntry{entry(1, trace.KindLock, 7)},
		flipSet{}, nil)
	// Thread 2 is at a free (memory) op while thread 1 owns the next
	// sketch point; sticky starts fresh so least-executed picks tid 1
	// first, but if only thread 2's free op is offered it must run.
	tid, ok := d.Pick(view(cand(2, trace.KindLoad, 0x10)))
	if !ok || tid != 2 {
		t.Fatalf("free op under hold: pick = %d, %v", tid, ok)
	}
	if d.k != 0 {
		t.Fatal("sketch position must not advance on free ops")
	}
}

func TestDirectorDivergesOnWrongSketchPoint(t *testing.T) {
	d := newDirector(sketch.SYNC,
		[]trace.SketchEntry{entry(1, trace.KindLock, 7)},
		flipSet{}, nil)
	// The thread owed the next sketch point arrives at a different one.
	_, ok := d.Pick(view(cand(1, trace.KindUnlock, 9)))
	if ok || !d.diverged {
		t.Fatalf("expected divergence, got ok=%v diverged=%v", ok, d.diverged)
	}
}

func TestDirectorDivergesWhenNothingCanRun(t *testing.T) {
	d := newDirector(sketch.SYNC,
		[]trace.SketchEntry{entry(1, trace.KindLock, 7)},
		flipSet{}, nil)
	// Only an out-of-turn sketch op is runnable: nobody can reach the
	// recorded point.
	_, ok := d.Pick(view(cand(2, trace.KindLock, 9)))
	if ok || !d.diverged {
		t.Fatal("expected divergence when no thread can reach the sketch point")
	}
}

func TestDirectorExhaustedSketchFreesEverything(t *testing.T) {
	d := newDirector(sketch.SYNC, nil, flipSet{}, nil)
	tid, ok := d.Pick(view(cand(3, trace.KindLock, 9)))
	if !ok || tid != 3 {
		t.Fatal("with no sketch entries all ops must be free")
	}
	if !d.sketchConsumed() {
		t.Fatal("empty sketch should read as consumed")
	}
}

func TestDirectorFlipHoldsAndReleases(t *testing.T) {
	p := race.Pair{
		First:  race.Access{TID: 1, TCount: 1, Addr: 0x10, Write: true},
		Second: race.Access{TID: 2, TCount: 1, Addr: 0x10},
	}
	fs, okAdd := flipSet{}.with(flipOf(p))
	if !okAdd {
		t.Fatal("fresh flip rejected")
	}
	d := newDirector(sketch.SYNC, nil, fs, nil)

	// Thread 1's first op matches the flip's hold identity: thread 2
	// must run instead, and the director enters soft mode.
	tid, ok := d.Pick(view(cand(1, trace.KindStore, 0x10), cand(2, trace.KindLoad, 0x10)))
	if !ok || tid != 2 {
		t.Fatalf("pick = %d, want the until-thread 2", tid)
	}
	if !d.soft {
		t.Fatal("engaging a flip must relax the sketch")
	}
	// Thread 2 executing its access releases the flip.
	d.OnEvent(trace.Event{TID: 2, TCount: 1, Kind: trace.KindLoad, Obj: 0x10})
	if !d.flipDone[0] {
		t.Fatal("flip not released after the until-access")
	}
	tid, ok = d.Pick(view(cand(1, trace.KindStore, 0x10)))
	if !ok || tid != 1 {
		t.Fatal("held thread must run after release")
	}
}

func TestDirectorFlipWedgeReleases(t *testing.T) {
	p := race.Pair{
		First:  race.Access{TID: 1, TCount: 1, Addr: 0x10, Write: true},
		Second: race.Access{TID: 2, TCount: 5, Addr: 0x10},
	}
	fs, _ := flipSet{}.with(flipOf(p))
	d := newDirector(sketch.SYNC, nil, fs, nil)
	// Only the held op is runnable: best-effort gives the flip up
	// rather than wedging the attempt.
	tid, ok := d.Pick(view(cand(1, trace.KindStore, 0x10)))
	if !ok || tid != 1 {
		t.Fatalf("wedged flip should release; pick = %d, %v", tid, ok)
	}
	if !d.flipDone[0] {
		t.Fatal("wedging flip not marked released")
	}
}

func TestDirectorStickyPolicy(t *testing.T) {
	d := newDirector(sketch.SYNC, nil, flipSet{}, nil)
	v := view(cand(1, trace.KindLoad, 1), cand(2, trace.KindLoad, 2))
	tid1, _ := d.Pick(v)
	d.OnEvent(trace.Event{TID: tid1, TCount: 1, Kind: trace.KindLoad})
	tid2, _ := d.Pick(v)
	if tid2 != tid1 {
		t.Fatalf("sticky policy switched threads without need: %d then %d", tid1, tid2)
	}
}

func TestDirectorHorizonRecorded(t *testing.T) {
	d := newDirector(sketch.SYNC,
		[]trace.SketchEntry{entry(1, trace.KindLock, 7)},
		flipSet{}, nil)
	v := &sched.PickView{Step: 41, Candidates: []sched.Candidate{cand(1, trace.KindLock, 7)}}
	if _, ok := d.Pick(v); !ok {
		t.Fatal("expected grant")
	}
	if d.exhaustStep != 42 {
		t.Fatalf("exhaustStep = %d, want 42", d.exhaustStep)
	}
}

func TestFlipSetPairDedup(t *testing.T) {
	p := race.Pair{
		First:  race.Access{TID: 1, TCount: 3, Addr: 0x10, Write: true},
		Second: race.Access{TID: 2, TCount: 4, Addr: 0x10},
	}
	rev := race.Pair{First: p.Second, Second: p.First}
	fs, ok := flipSet{}.with(flipOf(p))
	if !ok {
		t.Fatal("first flip rejected")
	}
	if _, ok := fs.with(flipOf(p)); ok {
		t.Fatal("identical pair accepted twice")
	}
	if _, ok := fs.with(flipOf(rev)); ok {
		t.Fatal("reversed pair accepted — oscillation guard broken")
	}
	other := race.Pair{
		First:  race.Access{TID: 1, TCount: 9, Addr: 0x20, Write: true},
		Second: race.Access{TID: 2, TCount: 2, Addr: 0x20},
	}
	if _, ok := fs.with(flipOf(other)); !ok {
		t.Fatal("distinct pair rejected")
	}
}

func TestFlipSetPairsRoundTrip(t *testing.T) {
	p := race.Pair{
		First:  race.Access{TID: 1, TCount: 3, Addr: 0x10, Write: true},
		Second: race.Access{TID: 2, TCount: 4, Addr: 0x10},
	}
	fs, _ := flipSet{}.with(flipOf(p))
	got := fs.pairs()
	if len(got) != 1 || got[0].Key() != p.Key() {
		t.Fatalf("pairs() = %v", got)
	}
}

func TestOrderCapture(t *testing.T) {
	c := &orderCapture{}
	c.OnEvent(trace.Event{TID: 1})
	c.OnEvent(trace.Event{TID: 2})
	c.OnEvent(trace.Event{TID: 1})
	f := c.full()
	if f.Len() != 3 || f.Order[0] != 1 || f.Order[1] != 2 {
		t.Fatalf("captured %v", f.Order)
	}
}
