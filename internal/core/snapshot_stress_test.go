package core

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/sched"
	"repro/internal/sketch"
)

// TestSnapshotStressEviction hammers the snapshot cache's concurrent
// surface under the race detector: eight workers capture into a budget
// sized to hold only about two snapshots, so every Store races Best
// calls and evicts entries other attempts may still be restoring from.
// Evicted snapshots must stay safe to use — the cache drops its
// reference, never mutates the snapshot — and the search itself must
// stay well-formed to its attempt budget.
func TestSnapshotStressEviction(t *testing.T) {
	prog, ok := apps.ProgramForBug("mysql-169")
	if !ok {
		t.Fatal("mysql-169 not in corpus")
	}
	rec := recordBuggy(t, prog, sketch.SYNC)
	never := func(*sched.Failure) bool { return false }

	// Probe with the default budget to learn this workload's snapshot
	// size, then rerun with room for only ~2 so eviction churns.
	probe := Replay(prog, rec, ReplayOptions{
		Feedback: true, Oracle: never, MaxAttempts: 12, Workers: 1,
		PrefixSnapshots: true,
	})
	if probe.Stats.SnapshotCaptures == 0 {
		t.Fatalf("probe run captured no snapshots: %+v", probe.Stats)
	}
	budget := 2 * probe.Stats.SnapshotBytes / int64(probe.Stats.SnapshotCaptures)

	res := Replay(prog, rec, ReplayOptions{
		Feedback: true, Oracle: never, MaxAttempts: 40, Workers: 8,
		PrefixSnapshots: true, SnapshotBudgetBytes: budget,
	})
	if res.Reproduced {
		t.Fatal("oracle never matches but search reproduced")
	}
	if res.Attempts != 40 {
		t.Fatalf("search stopped after %d attempts, want the full 40", res.Attempts)
	}
	if res.Stats.SnapshotCaptures == 0 {
		t.Fatalf("no snapshots captured under stress: %+v", res.Stats)
	}
	if res.Stats.SnapshotEvicted == 0 {
		t.Fatalf("budget %d held every snapshot (%d captured, %d bytes) — eviction path unexercised",
			budget, res.Stats.SnapshotCaptures, res.Stats.SnapshotBytes)
	}
}
