package core

import (
	"sort"

	"repro/internal/appkit"
	"repro/internal/race"
	"repro/internal/trace"
)

// This file is the feedback generation layer: how a failed directed
// attempt's observed races become child flip sets on the search
// frontier (the paper's "compare the failed replay with the
// recording"), and the canonical identities (flip-set key, search
// digest) the dedup set and the schedule cache are keyed by.

// replayNode is one point in the directed search tree: a flip set plus
// the race keys its parent attempt observed — feedback prioritizes races
// a node's deviation *created*, which localize the next flip to the
// perturbed neighborhood. With PrefixSnapshots on, parentKey names the
// parent attempt's snapshot-cache prefix and bound upper-bounds the
// snapshot probe at the added flip's first access (snapshot.go).
type replayNode struct {
	fs          flipSet
	parentRaces map[string]bool
	parentKey   string
	bound       uint64
}

// appendChildren ranks a failed directed attempt's races and pushes
// the resulting child flip sets onto the frontier. Ranking: races the
// parent's deviation newly created beat pre-existing ones (at most two
// slots go to the latter — they are reachable from other nodes too),
// and within a tier, races closest to the recorded horizon — the step
// where the truncated production sketch ran out, i.e. where the
// production run died — go first; races involving the production run's
// failing thread lead overall, preferring flips that hold *its* access
// while the partner slips in.
//
// Dedup happens here, under the pool's commit lock, against canonical
// flip-set keys — so two orderings of the same flips are one node, and
// no worker ever observes a half-updated dedup set.
func (s *searchState) appendChildren(nd replayNode, out attemptOutcome) int {
	if len(nd.fs.flips) >= maxFlipDepth {
		return 0 // deep chains are noise; let siblings run
	}
	failTID := s.failTID
	var pk string
	if s.snaps != nil {
		pk = snapKey(s.digest, canonicalFlipKey(nd.fs))
	}
	myRaces := make(map[string]bool, len(out.races))
	for _, p := range out.races {
		myRaces[p.Key()] = true
	}
	dist := func(p race.Pair) uint64 {
		d := out.horizon - p.SecondSeq
		if p.SecondSeq >= out.horizon {
			d = p.SecondSeq - out.horizon
		}
		if failTID != trace.NoTID {
			switch {
			case p.First.TID == failTID:
				// best tier: no penalty
			case p.Second.TID == failTID:
				d += 1 << 24
			default:
				d += 1 << 32
			}
		}
		return d
	}
	byDist := make([]race.Pair, len(out.races))
	copy(byDist, out.races)
	sort.SliceStable(byDist, func(i, j int) bool { return dist(byDist[i]) < dist(byDist[j]) })

	added := 0
	oldSlots := 2
	for _, wantFresh := range []bool{true, false} {
		for _, p := range byDist {
			if added >= s.opts.branch() {
				break
			}
			fresh := nd.parentRaces == nil || !nd.parentRaces[p.Key()]
			if wantFresh != fresh {
				continue
			}
			if !fresh && oldSlots == 0 {
				continue
			}
			child, ok := nd.fs.with(flipOf(p))
			if !ok {
				continue
			}
			ck := canonicalFlipKey(child)
			if s.seen[ck] {
				continue
			}
			s.seen[ck] = true
			if !fresh {
				oldSlots--
			}
			s.frontier.Push(replayNode{fs: child, parentRaces: myRaces,
				parentKey: pk, bound: p.FirstSeq}, len(child.flips))
			added++
		}
	}
	return added
}

// maxFlipDepth caps feedback chains: the breadth-first search tries all
// single flips, then pairs, and so on; real concurrency bugs virtually
// always fall within a handful of simultaneous reorderings, and each
// extra level multiplies the tree by the branch factor.
const maxFlipDepth = 4

// canonicalFlipKey is the order-independent identity of a flip set —
// the dedup and cache key. Distinct sets never collide
// (trace.FlipSetKey is injective; FuzzFlipSetKey pins it).
func canonicalFlipKey(fs flipSet) string {
	if len(fs.flips) == 0 {
		return ""
	}
	ids := make([]trace.FlipID, len(fs.flips))
	for i, f := range fs.flips {
		ids[i] = trace.FlipID{
			Addr:       f.addr,
			HoldTID:    f.holdTID,
			HoldCount:  f.holdCount,
			UntilTID:   f.untilTID,
			UntilCount: f.untilCnt,
		}
	}
	return trace.FlipSetKey(ids)
}

// searchDigest hashes everything that determines what a replay attempt
// of this search executes — program, recording (sketch, inputs, world)
// and the replay knobs that alter enforcement — into the schedule
// cache's context component. Searches with equal digests run equal
// attempts for equal (policy, flip set) pairs.
func searchDigest(prog *appkit.Program, rec *Recording, opts ReplayOptions) uint64 {
	d := trace.NewDigest()
	d.String(prog.Name)
	d.String(rec.Scheme.String())
	d.Int(rec.Options.WorldSeed)
	d.Int(int64(rec.Options.Processors))
	d.Int(int64(rec.Options.Scale))
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = rec.Options.MaxSteps
	}
	d.Word(maxSteps)
	d.Int(int64(opts.SketchTail))
	if opts.UseLockset {
		d.Word(1)
	} else {
		d.Word(0)
	}
	entries := rec.Sketch.Entries
	if cp, ok := activeCheckpoint(rec, opts); ok {
		// Checkpointed attempts enforce only the window from the
		// checkpoint, against a re-executed prefix: the cache context is
		// the checkpoint's identity plus that window, so searches from
		// different checkpoints (or from the start) never share entries.
		d.Word(cp.Step)
		d.Word(cp.SketchIndex)
		d.Word(cp.EventDigest)
		d.Word(cp.WorldDigest)
		entries = windowFrom(rec, cp)
	}
	for _, e := range entries {
		d.Entry(e)
	}
	for _, in := range rec.Inputs.Records {
		d.Input(in)
	}
	return d.Sum()
}
