package core

import (
	"repro/internal/sketch"
	"repro/internal/trace"
	"repro/internal/vsys"
)

// Always-on recording: instead of one whole-execution sketch log, the
// recorder seals the global order into fixed-length epochs kept in a
// bounded ring, and periodically captures a checkpoint at an epoch
// boundary. A long-running production service then carries a bounded
// recording (the last Size epochs) whose replay search starts from the
// newest checkpoint rather than from process start.
//
// A checkpoint does not serialize thread state — application threads
// live inside Program.Run and cannot be transplanted. It captures the
// boundary's *identity* (committed-event count, sketch/input positions,
// an event-stream digest) plus the virtual world's snapshot and digest.
// Replay re-establishes the boundary by deterministically re-executing
// the prefix under the production strategy (cheap: no enforcement, no
// detection bookkeeping in the way of the grant fast path is required
// for correctness — the production schedule is a pure function of the
// recorded seeds) and validating both digests at the switch point; see
// restoreStrategy in checkpoint.go.

// EpochRingOptions configures epoch-segmented recording.
type EpochRingOptions struct {
	// Steps is the epoch length in committed events; <= 0 means
	// DefaultEpochSteps. Epochs seal at the first control transfer at or
	// after the threshold, so every epoch boundary is a scheduler
	// quiescent point (no thread mid-effect) — the precondition for the
	// world snapshot a checkpoint takes there.
	Steps uint64
	// Size is the ring capacity in epochs; <= 0 means unbounded. An
	// unbounded, checkpoint-free ring records exactly the classic
	// whole-execution log (byte-identical on disk).
	Size int
	// CheckpointEvery captures a checkpoint every N sealed epochs; <= 0
	// disables checkpointing.
	CheckpointEvery int
}

// DefaultEpochSteps is the epoch length when EpochRingOptions leaves
// Steps zero.
const DefaultEpochSteps = 4096

func (o EpochRingOptions) steps() uint64 {
	if o.Steps <= 0 {
		return DefaultEpochSteps
	}
	return o.Steps
}

// epochRecorder wraps the global-log sketch recorder with epoch
// sealing: committed entries accumulate in the inner log as usual, and
// at each qualifying control transfer (sched.EpochObserver seam) the
// accumulated entries are cut into a sealed epoch and appended to the
// ring. The sealing happens off the recorded event stream, so the
// interleaving — and therefore the recorded sketch — is identical to a
// plain recording of the same seeds; only modelled cost differs.
type epochRecorder struct {
	inner  *sketch.Recorder
	world  *vsys.World
	inputs *trace.InputLog
	ring   *trace.EpochRing

	epochSteps      uint64
	checkpointEvery int

	steps      uint64 // committed events so far
	epochStart uint64 // steps at which the open epoch began
	startEntry uint64 // global entry index of the open epoch's first entry
	rolls      uint64 // epochs sealed so far
	highWater  int    // max retained window entries
	digest     *trace.Digest
}

func newEpochRecorder(scheme sketch.Scheme, world *vsys.World, inputs *trace.InputLog, o *EpochRingOptions) *epochRecorder {
	return &epochRecorder{
		inner:           sketch.NewRecorder(scheme),
		world:           world,
		inputs:          inputs,
		ring:            trace.NewEpochRing(o.Size),
		epochSteps:      o.steps(),
		checkpointEvery: o.CheckpointEvery,
		digest:          trace.NewDigest(),
	}
}

// OnRunStart implements sched.RunObserver, forwarding the reservation.
func (r *epochRecorder) OnRunStart(tid trace.TID, n int) { r.inner.OnRunStart(tid, n) }

// OnEvent implements sched.Observer: the inner recorder appends and
// prices the event; on top, the epoch recorder counts committed events
// and folds the event's sketch projection into the running digest a
// checkpoint will validate replayed prefixes against.
func (r *epochRecorder) OnEvent(ev trace.Event) uint64 {
	r.steps++
	r.digest.Entry(trace.EntryOf(ev))
	return r.inner.OnEvent(ev)
}

// OnEpochSeal implements sched.EpochObserver: at a control transfer, if
// the open epoch has reached its length, seal it into the ring (and
// checkpoint if due). Control transfers are quiescent points — the
// previous thread's effect has committed, the next grant has not run —
// so the world snapshot below observes no half-applied syscall.
func (r *epochRecorder) OnEpochSeal(trace.TID) uint64 {
	if r.steps-r.epochStart < r.epochSteps {
		return 0
	}
	r.roll()
	if r.checkpointEvery > 0 && r.rolls%uint64(r.checkpointEvery) == 0 {
		r.capture()
	}
	return sketch.EpochSealCost
}

// roll cuts the inner log's accumulated entries into a sealed epoch.
// The entries are copied out (not aliased): truncating the log to [:0]
// reuses its backing array for the next epoch's appends.
func (r *epochRecorder) roll() {
	log := r.inner.Log()
	entries := append([]trace.SketchEntry(nil), log.Entries...)
	log.Entries = log.Entries[:0]
	r.ring.Append(trace.Epoch{
		ID:         r.rolls,
		StartStep:  r.epochStart,
		StartEntry: r.startEntry,
		Entries:    entries,
	})
	r.startEntry += uint64(len(entries))
	r.epochStart = r.steps
	r.rolls++
	if n := r.ring.WindowLen(); n > r.highWater {
		r.highWater = n
	}
}

// capture records a checkpoint at the just-sealed boundary: the next
// epoch (ID r.rolls) starts here.
func (r *epochRecorder) capture() {
	snap := r.world.Snapshot()
	wd := trace.NewDigest()
	wd.Bytes(snap)
	r.ring.AddCheckpoint(trace.Checkpoint{
		Epoch:       r.rolls,
		Step:        r.steps,
		SketchIndex: r.startEntry,
		InputIndex:  uint64(len(r.inputs.Records)),
		EventDigest: r.digest.Sum(),
		WorldDigest: wd.Sum(),
		World:       snap,
	})
}

// finish seals the trailing partial epoch and finalizes the ring's
// whole-run bookkeeping. Called once, after the run returns.
func (r *epochRecorder) finish() {
	if len(r.inner.Log().Entries) > 0 || r.rolls == 0 {
		r.roll()
	}
	log := r.inner.Log()
	r.ring.Scheme = log.Scheme
	r.ring.TotalOps = log.TotalOps
	r.ring.Records = log.Records
}

// Log returns the retained window's SketchLog view (whole-run totals,
// window entries). Valid after finish.
func (r *epochRecorder) Log() *trace.SketchLog { return r.ring.WindowLog() }
