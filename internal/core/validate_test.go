package core

import (
	"testing"

	"repro/internal/sketch"
	"repro/internal/trace"
)

func TestValidateAcceptsRealRecording(t *testing.T) {
	rec := Record(orderBugProg(), Options{Scheme: sketch.SYNC, ScheduleSeed: 1, MaxSteps: 100_000})
	if err := rec.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsCorruption(t *testing.T) {
	fresh := func() *Recording {
		return Record(orderBugProg(), Options{Scheme: sketch.SYNC, ScheduleSeed: 1, MaxSteps: 100_000})
	}

	r := fresh()
	r.Sketch = nil
	if r.Validate() == nil {
		t.Error("nil sketch accepted")
	}

	r = fresh()
	r.Sketch.Scheme = "NOPE"
	if r.Validate() == nil {
		t.Error("unknown scheme accepted")
	}

	r = fresh()
	r.Sketch.Scheme = "RW" // header disagrees with Scheme field
	if r.Validate() == nil {
		t.Error("scheme mismatch accepted")
	}

	r = fresh()
	r.Sketch.Entries = append(r.Sketch.Entries, trace.SketchEntry{TID: 0, Kind: trace.Kind(99)})
	if r.Validate() == nil {
		t.Error("invalid kind accepted")
	}

	r = fresh()
	r.Sketch.Entries = append(r.Sketch.Entries, trace.SketchEntry{TID: 0, Kind: trace.KindLoad})
	if r.Validate() == nil {
		t.Error("non-recordable kind accepted in SYNC sketch")
	}

	r = fresh()
	r.Sketch.Entries[0].TID = -3
	if r.Validate() == nil {
		t.Error("negative tid accepted")
	}

	r = fresh()
	r.Sketch.TotalOps = 1
	if r.Validate() == nil {
		t.Error("entry count above total ops accepted")
	}

	r = fresh()
	r.Inputs.Append(trace.InputRecord{TID: -1, Call: 1})
	if r.Validate() == nil {
		t.Error("negative input tid accepted")
	}

	r = fresh()
	r.Inputs.Append(trace.InputRecord{TID: 0, Call: 0})
	if r.Validate() == nil {
		t.Error("zero call code accepted")
	}
}
