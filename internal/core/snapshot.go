package core

import (
	"repro/internal/race"
	"repro/internal/sched"
	"repro/internal/search"
	"repro/internal/trace"
	"repro/internal/vsys"
)

// Snapshot-tree replay search. Sibling attempts in the directed
// frontier share long identical flip-set prefixes: a child's schedule
// is byte-identical to its parent's until the child's newly added flip
// can first engage. With ReplayOptions.PrefixSnapshots on, a directed
// attempt captures world + engine state at scheduler quiescent points
// (sched.QuiescentObserver fires at the top of a scheduling round,
// before the strategy picks — exactly the contract vsys.World.Snapshot
// requires, and the only instant at which the director's pick-side
// state still describes the committed prefix) into a search.SnapshotCache
// keyed by the attempt's flip-set prefix; a child attempt restores
// from the deepest safe snapshot and executes only its divergent
// suffix.
//
// Threads are goroutines and cannot be serialized, so "restore" is
// forced mechanical re-execution: the snapshot carries the parent's
// grant order up to the capture step, and forkStrategy grants exactly
// that order — under multi-step run budgets, since no decision is
// being made — then validates the running event digest and the world
// digest against the snapshot's (the FromCheckpoint protocol,
// checkpoint.go) before handing the schedule to the director. What the
// restore actually saves is everything *around* the raw execution: the
// director's per-pick sketch/flip bookkeeping collapses to forced
// grants, and the race detector — the dominant per-event cost — skips
// the prefix entirely, resuming from a boundary-state clone
// (race.Detector.Clone). The reproduced schedule is unchanged: the
// order capture spans the whole execution, forced prefix included, so
// a reproduction's FullOrder is exactly what a from-scratch attempt
// would have captured.
//
// Safety bound: a snapshot of the parent at step S is usable for a
// child adding flip f only if the child's own schedule through S
// provably equals the parent's. The child differs from the parent only
// by f, and f can influence a pick only once the director could hold
// f's access — which requires f.holdTID to have executed
// f.holdCount-1 events. Snapshots record the parent's per-thread
// progress, so the engine accepts a snapshot only while
// executed[holdTID]+1 < holdCount (strictly before the hold identity
// can appear as a candidate); progress is monotone in the step, so the
// accepted set is a step-prefix and "deepest accepted" is well
// defined. p.FirstSeq — where the parent actually granted the access —
// upper-bounds the probe.

// raceDetector is the detector surface runAttempt needs: observation
// plus the accumulated pairs.
type raceDetector interface {
	sched.Observer
	Pairs() []race.Pair
}

// cloneDetector deep-copies a detector's state for a snapshot (or
// re-clones a snapshot's master copy for one restore), returning the
// clone and its modeled byte footprint; (nil, 0) for detector types
// without a clone path, which disables snapshotting for the attempt.
func cloneDetector(det raceDetector) (raceDetector, int64) {
	switch d := det.(type) {
	case *race.Detector:
		return d.Clone(), d.Footprint()
	case *race.LocksetDetector:
		return d.Clone(), d.Footprint()
	}
	return nil, 0
}

// snapKey is a flip-set prefix's snapshot-cache key: the schedule-
// cache identity of the deterministic directed attempt that executes
// that prefix (directed attempts are unseeded, so seed 0 / policy
// "det" names them all).
func snapKey(digest uint64, flipKey string) string {
	return trace.ScheduleCacheKey(digest, 0, false, flipKey)
}

// snapPlan is the per-attempt snapshot participation, composed by the
// engine: where to store captures (selfKey names this attempt's own
// prefix; empty disables capture, e.g. at max flip depth where no
// child will ever exist) and where to restore from (parentKey/bound
// name the parent prefix and the new flip's upper probe bound; empty/0
// for root attempts).
type snapPlan struct {
	cache     *search.SnapshotCache
	selfKey   string
	parentKey string
	bound     uint64
}

// dirState is the director's pick-side state at a capture point —
// everything OnEvent alone cannot re-establish in a restored child.
// The executed map doubles as the safety-bound witness.
type dirState struct {
	k           int
	last        trace.TID
	soft        bool
	exhaustStep uint64
	executed    map[trace.TID]uint64
	// done holds the keys of flips already released at the capture
	// point. Keyed by flip identity, not index: the child's flip slice
	// contains one more flip and is re-sorted.
	done map[string]bool
}

func captureDirState(d *director) dirState {
	ex := make(map[trace.TID]uint64, len(d.executed))
	for tid, n := range d.executed {
		ex[tid] = n
	}
	done := make(map[string]bool, len(d.flips))
	for i, f := range d.flips {
		if d.flipDone[i] {
			done[f.key()] = true
		}
	}
	return dirState{k: d.k, last: d.last, soft: d.soft,
		exhaustStep: d.exhaustStep, executed: ex, done: done}
}

// installDirState primes a restored child's fresh director with the
// parent's capture-point state. The director still observes the forced
// prefix normally (OnEvent re-derives executed and partner-released
// flips, idempotently over these values); installing up front covers
// the parts only Pick ever advanced — the sketch cursor, stickiness,
// soft mode, forced flip releases.
func installDirState(d *director, st dirState) {
	d.k = st.k
	d.last = st.last
	d.soft = st.soft
	d.exhaustStep = st.exhaustStep
	for tid, n := range st.executed {
		d.executed[tid] = n
	}
	for i, f := range d.flips {
		if st.done[f.key()] {
			d.flipDone[i] = true
		}
	}
}

// snapState is the engine payload stored in a search.Snapshot: the
// director's pick-side state and a master detector clone. Restores
// re-clone det rather than adopt it, so one snapshot serves any number
// of children and stays immutable under concurrent workers.
type snapState struct {
	dir dirState
	det raceDetector
}

// snapOverhead is the flat per-snapshot byte charge on top of the
// world blob, order slice and detector footprint.
const snapOverhead = 256

// snapInterval is the first capture cadence in committed events; the
// interval doubles every snapDoubleEvery captures so long executions
// keep a bounded, geometrically thinning snapshot ladder.
const (
	snapInterval    = 8
	snapDoubleEvery = 12
)

// snapshotter is the attempt-side observer: it folds every committed
// event into the running digest restores validate against, and — when
// capturing — stores world/engine snapshots at quiescent points on the
// deterministic cadence above. Registered only when PrefixSnapshots is
// on; attempts without it keep the exact pre-snapshot observer set.
type snapshotter struct {
	world  *vsys.World
	cap    *orderCapture
	dir    *director
	det    raceDetector
	plan   *snapPlan
	digest *trace.Digest
	base   uint64 // restore boundary; captures only strictly past it

	capture  bool
	next     uint64
	interval uint64

	captures int
	capBytes int64
	evicted  int
}

func newSnapshotter(world *vsys.World, cap *orderCapture, dir *director, det raceDetector, plan *snapPlan, digest *trace.Digest, base uint64) *snapshotter {
	return &snapshotter{
		world: world, cap: cap, dir: dir, det: det, plan: plan,
		digest: digest, base: base,
		capture: plan.selfKey != "", interval: snapInterval,
		next: base + snapInterval,
	}
}

// OnEvent implements sched.Observer: every committed event — forced
// prefix or live suffix — feeds the digest, so a capture's EventDigest
// always covers the full prefix from step 0.
func (s *snapshotter) OnEvent(ev trace.Event) uint64 {
	s.digest.Entry(trace.EntryOf(ev))
	return 0
}

// OnQuiescent implements sched.QuiescentObserver: at a pre-pick
// quiescent point with step events committed, capture if the cadence
// is due. Firing before the pick matters: captureDirState must see the
// director after the last commit's OnEvent but before the next pick
// mutates stickiness, the sketch cursor or flip releases — a post-pick
// capture would be one decision ahead of the stream it claims to
// describe, and a child restored from it replays that decision a step
// early.
// Restored attempts only capture strictly past their own boundary —
// the parent already holds every shallower snapshot of this prefix.
func (s *snapshotter) OnQuiescent(step uint64) {
	if !s.capture || step < s.next || step <= s.base {
		return
	}
	det, detBytes := cloneDetector(s.det)
	if det == nil {
		s.capture = false
		return
	}
	world := s.world.Snapshot()
	wd := trace.NewDigest()
	wd.Bytes(world)
	// The order slice shares the capture's backing array: the attempt
	// appends only at indices >= step, restores read only below it, and
	// growth reallocates, so the sharing is race-free and copy-free.
	order := s.cap.order[:step:step]
	snap := &search.Snapshot{
		Key:         s.plan.selfKey,
		Step:        step,
		EventDigest: s.digest.Sum(),
		WorldDigest: wd.Sum(),
		World:       world,
		Order:       order,
		State:       &snapState{dir: captureDirState(s.dir), det: det},
		Bytes:       int64(len(world)) + 4*int64(len(order)) + detBytes + snapOverhead,
	}
	s.evicted += s.plan.cache.Store(snap)
	s.captures++
	s.capBytes += snap.Bytes
	if s.captures%snapDoubleEvery == 0 {
		s.interval *= 2
	}
	s.next = step + s.interval
}

// forkStrategy resumes an attempt from a prefix snapshot: phase one
// (seen < boundary) forces the parent's captured grant order —
// consuming multi-step run budgets across consecutive same-thread
// grants, since no scheduling decision is being made — and phase two
// validates both digests at the boundary (exactly restoreStrategy's
// protocol) before delegating every pick to the director. A mismatch
// marks the attempt diverged; there is no fallback, because a
// divergent forced prefix means the snapshot lied and nothing about
// the attempt can be trusted.
//
// It is also an Observer: committed prefix events advance the forced
// cursor (runs may end early; the commit stream is the truth), and
// suffix events feed the boundary-state detector clone — which thereby
// accumulates exactly the pair set a from-scratch detector would have.
type forkStrategy struct {
	dir   *director
	world *vsys.World
	det   raceDetector // boundary-state clone; fed suffix events only

	order      []trace.TID
	boundary   uint64
	wantDigest uint64
	wantWorld  uint64
	digest     *trace.Digest // the snapshotter's; read-only here

	seen     uint64
	switched bool
	mismatch bool
}

// Pick implements sched.Strategy.
func (f *forkStrategy) Pick(view *sched.PickView) (trace.TID, bool) {
	if f.seen < f.boundary {
		tid := f.order[f.seen]
		if _, ok := view.Find(tid); !ok {
			f.mismatch = true
			return trace.NoTID, false
		}
		return tid, true
	}
	if !f.switched {
		f.switched = true
		if f.digest.Sum() != f.wantDigest || f.world.Digest() != f.wantWorld {
			f.mismatch = true
		}
	}
	if f.mismatch {
		return trace.NoTID, false
	}
	return f.dir.Pick(view)
}

// RunBudget implements sched.RunGranter: during the forced prefix the
// run extends across consecutive same-thread grants in the captured
// order — and never past the boundary, because the scan stops at the
// order's end. Past the boundary the director's budget-1 invariant
// rules (see its doc).
func (f *forkStrategy) RunBudget(view *sched.PickView, tid trace.TID) int {
	i := f.seen
	if i >= f.boundary || f.order[i] != tid {
		return 1
	}
	n := 1
	for i+uint64(n) < f.boundary && f.order[i+uint64(n)] == tid {
		n++
	}
	return n
}

// ObserveStep implements sched.RunGranter. Cursor advancement happens
// in OnEvent — the commit stream is authoritative even when a run ends
// early — so there is nothing to do here.
func (f *forkStrategy) ObserveStep(tid trace.TID, cost uint64) {}

// OnEvent implements sched.Observer (see the type doc).
func (f *forkStrategy) OnEvent(ev trace.Event) uint64 {
	f.seen++
	if f.seen <= f.boundary {
		return 0
	}
	return f.det.OnEvent(ev)
}
