package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/apps"
	"repro/internal/sched"
	"repro/internal/sketch"
)

// TestPropEveryBuggyRecordingReplays: whichever production seed the
// order bug manifests under, the replayer reproduces it within budget
// and the captured order re-reproduces it. The end-to-end contract,
// property-checked over seeds.
func TestPropEveryBuggyRecordingReplays(t *testing.T) {
	prog := orderBugProg()
	oracle := MatchBugID("order-bug")
	checked := 0
	for seed := int64(0); seed < 2500 && checked < 8; seed++ {
		rec := Record(prog, Options{
			Scheme:       sketch.SYNC,
			Processors:   4,
			ScheduleSeed: seed,
			MaxSteps:     100_000,
		})
		f := rec.BugFailure()
		if f == nil || !oracle(f) {
			continue
		}
		checked++
		res := Replay(prog, rec, ReplayOptions{Feedback: true, Oracle: oracle})
		if !res.Reproduced {
			t.Fatalf("seed %d: not reproduced", seed)
		}
		out := Reproduce(prog, rec, res.Order)
		if out.Failure == nil || out.Failure.BugID != "order-bug" {
			t.Fatalf("seed %d: captured order lost the bug", seed)
		}
	}
	if checked == 0 {
		t.Fatal("bug never manifested; substrate drifted")
	}
	t.Logf("verified %d independent recordings", checked)
}

// TestPropReplayDeterministic: Replay is a pure function of the
// recording — two invocations give identical attempt counts and orders.
func TestPropReplayDeterministic(t *testing.T) {
	prog := atomBugProg(3)
	rec := recordBuggy(t, prog, sketch.SYNC)
	a := Replay(prog, rec, ReplayOptions{Feedback: true, Oracle: MatchBugID("atom-bug")})
	b := Replay(prog, rec, ReplayOptions{Feedback: true, Oracle: MatchBugID("atom-bug")})
	if a.Attempts != b.Attempts || a.Reproduced != b.Reproduced {
		t.Fatalf("replay nondeterministic: %d/%v vs %d/%v", a.Attempts, a.Reproduced, b.Attempts, b.Reproduced)
	}
	if !reflect.DeepEqual(a.Order, b.Order) {
		t.Fatal("captured orders differ between identical replays")
	}
}

// TestPropRecordingSchemeMonotone: on the same execution (same seeds),
// RW's sketch contains at least as many entries as any other scheme's
// and BASE's none — across random seeds.
func TestPropRecordingSchemeMonotone(t *testing.T) {
	prog := atomBugProg(3)
	f := func(seedRaw uint8) bool {
		seed := int64(seedRaw)
		lens := map[sketch.Scheme]int{}
		for _, s := range sketch.All() {
			rec := Record(prog, Options{Scheme: s, Processors: 4, ScheduleSeed: seed, MaxSteps: 100_000})
			lens[s] = rec.Sketch.Len()
		}
		if lens[sketch.BASE] != 0 {
			return false
		}
		for _, s := range []sketch.Scheme{sketch.SYNC, sketch.SYS} {
			if lens[s] > lens[sketch.RW] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestPropInputsIdenticalAcrossSchemes: the input log does not depend on
// the sketching mechanism (observers cannot perturb execution).
func TestPropInputsIdenticalAcrossSchemes(t *testing.T) {
	prog := orderBugProg()
	base := Record(prog, Options{Scheme: sketch.BASE, ScheduleSeed: 5, MaxSteps: 100_000})
	for _, s := range sketch.All()[1:] {
		rec := Record(prog, Options{Scheme: s, ScheduleSeed: 5, MaxSteps: 100_000})
		if rec.Inputs.Len() != base.Inputs.Len() {
			t.Fatalf("%v: input log length %d != BASE's %d", s, rec.Inputs.Len(), base.Inputs.Len())
		}
		for i := range rec.Inputs.Records {
			a, b := rec.Inputs.Records[i], base.Inputs.Records[i]
			if a.TID != b.TID || a.Call != b.Call || string(a.Data) != string(b.Data) {
				t.Fatalf("%v: input record %d differs", s, i)
			}
		}
	}
}

// TestPropParallelSearchEquivalence: over a randomized sample of corpus
// bugs, the work-stealing search at Workers: 4 (with a schedule cache in
// play) reproduces exactly when the sequential search does, and every
// captured FullOrder — sequential or parallel — replays to the
// *identical* failure 100 times out of 100. This is the conformance
// property the pool must not break: parallelism and caching buy
// wall-clock, never reproduction power or fidelity.
func TestPropParallelSearchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bugs := apps.AllBugs()
	rng.Shuffle(len(bugs), func(i, j int) { bugs[i], bugs[j] = bugs[j], bugs[i] })

	sameFailure := func(a, b *sched.Failure) bool {
		return a != nil && b != nil && a.Reason == b.Reason &&
			a.BugID == b.BugID && a.TID == b.TID && a.Step == b.Step
	}

	checked := 0
	for _, b := range bugs {
		if checked >= 4 {
			break
		}
		prog, ok := apps.ProgramForBug(b.ID)
		if !ok {
			t.Fatalf("%s: program missing", b.ID)
		}
		oracle := MatchBugID(b.ID)
		var rec *Recording
		for seed := int64(0); seed < 600; seed++ {
			r := Record(prog, Options{Scheme: sketch.SYNC, Processors: 4, ScheduleSeed: seed, WorldSeed: 1, MaxSteps: 200_000})
			if f := r.BugFailure(); f != nil && oracle(f) {
				rec = r
				break
			}
		}
		if rec == nil {
			continue // too rare for this probe budget; the sample moves on
		}
		checked++

		seq := Replay(prog, rec, ReplayOptions{Feedback: true, Oracle: oracle, Workers: 1})
		par := Replay(prog, rec, ReplayOptions{Feedback: true, Oracle: oracle, Workers: 4, Cache: NewSearchCache(0)})
		if seq.Reproduced != par.Reproduced {
			t.Fatalf("%s: sequential reproduced=%v but workers=4 reproduced=%v (seq %+v, par %+v)",
				b.ID, seq.Reproduced, par.Reproduced, seq.Stats, par.Stats)
		}
		for name, res := range map[string]*ReplayResult{"sequential": seq, "parallel": par} {
			if !res.Reproduced {
				continue
			}
			for i := 0; i < 100; i++ {
				out := Reproduce(prog, rec, res.Order)
				if !sameFailure(out.Failure, res.Failure) {
					t.Fatalf("%s: %s captured order replayed to %v on iteration %d, want %v",
						b.ID, name, out.Failure, i, res.Failure)
				}
			}
		}
		t.Logf("%s: reproduced=%v seq=%d attempts par=%d attempts", b.ID, seq.Reproduced, seq.Attempts, par.Attempts)
	}
	if checked < 3 {
		t.Fatalf("only %d corpus bugs manifested within the probe budget; sample too thin", checked)
	}
}
