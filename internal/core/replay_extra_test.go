package core

import (
	"testing"

	"repro/internal/sketch"
)

// TestLocksetFeedbackReproduces: the lockset feedback source must also
// drive the search to reproduction on a representative bug.
func TestLocksetFeedbackReproduces(t *testing.T) {
	prog := atomBugProg(3)
	rec := recordBuggy(t, prog, sketch.SYNC)
	res := Replay(prog, rec, ReplayOptions{
		Feedback:   true,
		UseLockset: true,
		Oracle:     MatchBugID("atom-bug"),
	})
	if !res.Reproduced {
		t.Fatalf("lockset feedback failed: %d attempts, %+v", res.Attempts, res.Stats)
	}
	t.Logf("lockset feedback reproduced in %d attempts", res.Attempts)
}

// TestSketchTailReplay: reproduction still works from a truncated
// sketch tail (soft guidance), the bounded-storage deployment mode.
func TestSketchTailReplay(t *testing.T) {
	prog := orderBugProg()
	rec := recordBuggy(t, prog, sketch.SYNC)
	res := Replay(prog, rec, ReplayOptions{
		Feedback:   true,
		SketchTail: 3,
		Oracle:     MatchBugID("order-bug"),
	})
	if !res.Reproduced {
		t.Fatalf("tail replay failed: %d attempts %+v", res.Attempts, res.Stats)
	}
	t.Logf("tail-of-3 replay reproduced in %d attempts", res.Attempts)
}
