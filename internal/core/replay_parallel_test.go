package core

import (
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/sketch"
)

func TestReplayParallelMatchesSequential(t *testing.T) {
	// fft-barrier reproduces on the first directed attempt, i.e. inside
	// the first wave, where the parallel search is attempt-for-attempt
	// identical to the sequential one — so the whole ReplayResult must
	// match bit for bit.
	prog, ok := apps.ProgramForBug("fft-barrier")
	if !ok {
		t.Fatal("fft-barrier not in corpus")
	}
	rec := recordBuggy(t, prog, sketch.SYNC)
	seq := Replay(prog, rec, ReplayOptions{Feedback: true, Oracle: MatchBugID("fft-barrier"), Parallelism: 1})
	par := Replay(prog, rec, ReplayOptions{Feedback: true, Oracle: MatchBugID("fft-barrier"), Parallelism: 4})
	if !seq.Reproduced {
		t.Fatalf("sequential search failed: %+v", seq.Stats)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel result differs from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
}

func TestReplayParallelDeterministic(t *testing.T) {
	// For a multi-attempt bug the parallel search may legitimately
	// differ from the sequential one (feedback children enter the
	// frontier a wave later) — but for a fixed Parallelism the search
	// must be a pure function of its inputs.
	prog := atomBugProg(3)
	rec := recordBuggy(t, prog, sketch.SYNC)
	opts := ReplayOptions{Feedback: true, Oracle: MatchBugID("atom-bug"), Parallelism: 4}
	a := Replay(prog, rec, opts)
	b := Replay(prog, rec, opts)
	if !a.Reproduced {
		t.Fatalf("parallel search failed: attempts=%d stats=%+v", a.Attempts, a.Stats)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same inputs, different results:\na: %+v\nb: %+v", a, b)
	}
}
