package core

import (
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sketch"
)

func TestReplayParallelMatchesSequential(t *testing.T) {
	// fft-barrier reproduces on the first directed attempt — before any
	// worker could race ahead — so the whole ReplayResult must match the
	// sequential search bit for bit even at Workers: 4.
	prog, ok := apps.ProgramForBug("fft-barrier")
	if !ok {
		t.Fatal("fft-barrier not in corpus")
	}
	rec := recordBuggy(t, prog, sketch.SYNC)
	seq := Replay(prog, rec, ReplayOptions{Feedback: true, Oracle: MatchBugID("fft-barrier"), Workers: 1})
	par := Replay(prog, rec, ReplayOptions{Feedback: true, Oracle: MatchBugID("fft-barrier"), Workers: 4})
	if !seq.Reproduced {
		t.Fatalf("sequential search failed: %+v", seq.Stats)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel result differs from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
}

func TestReplayWorkersOneDeterministic(t *testing.T) {
	// Workers: 1 is the deterministic baseline: dispatch, execution and
	// commit strictly alternate, so the search is a pure function of its
	// inputs — two runs must agree bit for bit, and the zero value must
	// select the same sequential engine.
	prog := atomBugProg(3)
	rec := recordBuggy(t, prog, sketch.SYNC)
	a := Replay(prog, rec, ReplayOptions{Feedback: true, Oracle: MatchBugID("atom-bug"), Workers: 1})
	b := Replay(prog, rec, ReplayOptions{Feedback: true, Oracle: MatchBugID("atom-bug"), Workers: 1})
	c := Replay(prog, rec, ReplayOptions{Feedback: true, Oracle: MatchBugID("atom-bug")})
	if !a.Reproduced {
		t.Fatalf("search failed: attempts=%d stats=%+v", a.Attempts, a.Stats)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same inputs, different results:\na: %+v\nb: %+v", a, b)
	}
	if !reflect.DeepEqual(a, c) {
		t.Fatalf("zero-value Workers diverged from Workers: 1:\na: %+v\nc: %+v", a, c)
	}
}

func TestReplayParallelReproduces(t *testing.T) {
	// At Workers > 1 the search is not attempt-for-attempt deterministic
	// (which attempts go directed depends on frontier timing), but the
	// contract is: it reproduces whenever the sequential search does, and
	// the captured order replays to the identical failure.
	prog := atomBugProg(3)
	rec := recordBuggy(t, prog, sketch.SYNC)
	seq := Replay(prog, rec, ReplayOptions{Feedback: true, Oracle: MatchBugID("atom-bug"), Workers: 1})
	if !seq.Reproduced {
		t.Fatal("sequential search failed")
	}
	for _, w := range []int{2, 4, 8} {
		par := Replay(prog, rec, ReplayOptions{Feedback: true, Oracle: MatchBugID("atom-bug"), Workers: w})
		if !par.Reproduced {
			t.Fatalf("workers=%d failed to reproduce: %+v", w, par.Stats)
		}
		out := Reproduce(prog, rec, par.Order)
		if out.Failure == nil || out.Failure.BugID != "atom-bug" {
			t.Fatalf("workers=%d captured order lost the bug: %v", w, out.Failure)
		}
		if par.Attempts < 1 || par.Attempts > seq.Stats.Divergences+seq.Stats.CleanRuns+seq.Stats.OtherFailures+DefaultMaxAttempts {
			t.Fatalf("workers=%d implausible attempt count %d", w, par.Attempts)
		}
	}
}

func TestReplayAdaptiveWorkersReproduces(t *testing.T) {
	// The adaptive controller only retunes pool size; it must not change
	// whether the bug reproduces.
	prog := atomBugProg(3)
	rec := recordBuggy(t, prog, sketch.SYNC)
	reg := obs.NewRegistry()
	res := Replay(prog, rec, ReplayOptions{
		Feedback: true, Oracle: MatchBugID("atom-bug"),
		Workers: 8, AdaptiveWorkers: true, Metrics: reg,
	})
	if !res.Reproduced {
		t.Fatalf("adaptive search failed: %+v", res.Stats)
	}
	if out := Reproduce(prog, rec, res.Order); out.Failure == nil || out.Failure.BugID != "atom-bug" {
		t.Fatalf("captured order lost the bug: %v", out.Failure)
	}
}

func TestReplayFrontierDriesDeterministically(t *testing.T) {
	// A lock-only deadlock program has no data races, so feedback has
	// nothing to flip: the frontier holds only the root, every directed
	// slot past it falls back to random sampling, and with an oracle
	// that never matches the search must exhaust with FrontierDried set
	// — identically on every run — and the final frontier-depth gauge
	// must read zero.
	prog := deadlockProg()
	rec := recordBuggy(t, prog, sketch.SYNC)
	never := func(*sched.Failure) bool { return false }
	var want *ReplayResult
	for run := 0; run < 2; run++ {
		reg := obs.NewRegistry()
		res := Replay(prog, rec, ReplayOptions{
			Feedback: true, Oracle: never, MaxAttempts: 12, Workers: 1, Metrics: reg,
		})
		if res.Reproduced {
			t.Fatal("oracle never matches but search reproduced")
		}
		if !res.Stats.FrontierDried {
			t.Fatalf("run %d: frontier did not dry: %+v", run, res.Stats)
		}
		if got := reg.Gauge("pres_replay_frontier_depth").Value(); got != 0 {
			t.Fatalf("run %d: final frontier depth gauge = %v, want 0", run, got)
		}
		if want == nil {
			want = res
		} else if !reflect.DeepEqual(want, res) {
			t.Fatalf("frontier-dried search nondeterministic:\na: %+v\nb: %+v", want, res)
		}
	}
	// The same exhaustion at Workers: 4 must also report the dried
	// frontier (stats beyond that may differ run to run).
	res := Replay(prog, rec, ReplayOptions{
		Feedback: true, Oracle: never, MaxAttempts: 12, Workers: 4,
	})
	if res.Reproduced || !res.Stats.FrontierDried {
		t.Fatalf("workers=4 exhaustion: reproduced=%v dried=%v", res.Reproduced, res.Stats.FrontierDried)
	}
}
