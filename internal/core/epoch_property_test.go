package core

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/sketch"
	"repro/internal/trace"
)

// epochCases pairs corpus programs with schemes for the equivalence
// properties below — coverage across app shapes and sketch densities.
var epochCases = []struct {
	bug    string
	scheme sketch.Scheme
}{
	{"mysql-169", sketch.SYNC},
	{"fft-barrier", sketch.SYNC},
	{"lu-atomicity", sketch.RW},
	{"openldap-deadlock", sketch.SYNC},
	{"pbzip2-order", sketch.SYS},
	{"barnes-order", sketch.FUNC},
}

// TestPropEpochUnboundedByteIdentical is the refactor's no-regression
// gate: recording with an unbounded, checkpoint-free epoch ring
// serializes byte-for-byte identically to the classic whole-execution
// path — epoch sealing observes the committed stream without perturbing
// it, and an unsegmented ring's recording takes the classic layout.
func TestPropEpochUnboundedByteIdentical(t *testing.T) {
	for _, c := range epochCases {
		prog, ok := apps.ProgramForBug(c.bug)
		if !ok {
			t.Fatalf("%s: program missing", c.bug)
		}
		opts := Options{Scheme: c.scheme, Processors: 4, ScheduleSeed: 3, WorldSeed: 1, MaxSteps: 200_000}
		plain := Record(prog, opts)
		epochOpts := opts
		epochOpts.EpochRing = &EpochRingOptions{Steps: 64}
		epoch := Record(prog, epochOpts)

		if epoch.Epochs == nil || epoch.Epochs.Segmented() {
			t.Fatalf("%s/%v: unbounded checkpoint-free ring should be unsegmented", c.bug, c.scheme)
		}
		if !reflect.DeepEqual(plain.Sketch, epoch.Sketch) {
			t.Fatalf("%s/%v: window log differs from whole-execution log", c.bug, c.scheme)
		}
		var a, b bytes.Buffer
		if err := plain.Write(&a); err != nil {
			t.Fatal(err)
		}
		if err := epoch.Write(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("%s/%v: serialized recordings differ (%d vs %d bytes)", c.bug, c.scheme, a.Len(), b.Len())
		}
	}
}

// TestPropEpochTrajectoryEquivalence: with the ring unbounded and
// checkpointed replay off, the search trajectory over an epoch-recorded
// recording is DeepEqual to the classic one — same attempts, same
// reproduction, same captured order, same stats.
func TestPropEpochTrajectoryEquivalence(t *testing.T) {
	checked := 0
	for _, c := range epochCases[:4] {
		prog, _ := apps.ProgramForBug(c.bug)
		oracle := MatchBugID(c.bug)
		for seed := int64(0); seed < 400; seed++ {
			opts := Options{Scheme: c.scheme, Processors: 4, ScheduleSeed: seed, WorldSeed: 1, MaxSteps: 200_000}
			plain := Record(prog, opts)
			f := plain.BugFailure()
			if f == nil || !oracle(f) {
				continue
			}
			epochOpts := opts
			epochOpts.EpochRing = &EpochRingOptions{Steps: 32}
			epoch := Record(prog, epochOpts)
			ropts := ReplayOptions{Feedback: true, Oracle: oracle}
			a := Replay(prog, plain, ropts)
			b := Replay(prog, epoch, ropts)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s/%v seed %d: trajectories differ: %+v vs %+v", c.bug, c.scheme, seed, a, b)
			}
			checked++
			break
		}
	}
	if checked < 3 {
		t.Fatalf("only %d cases manifested; sample too thin", checked)
	}
}

// TestPropReplayFromCheckpointReproduces: on corpus apps, a recording
// made with checkpointing reproduces the same bug when the search
// starts from the newest checkpoint as when it starts from the
// beginning — and the checkpointed search's captured order replays the
// failure deterministically.
func TestPropReplayFromCheckpointReproduces(t *testing.T) {
	// Five corpus apps whose buggy runs live long enough to seal at
	// least one checkpoint before dying (short-lived bugs like
	// lu-atomicity crash within the first couple of epochs — nothing to
	// checkpoint, so nothing to start from).
	bugs := []string{"mysql-169", "fft-barrier", "pbzip2-order", "openldap-deadlock", "apache-25520"}
	checked := 0
	for _, id := range bugs {
		prog, ok := apps.ProgramForBug(id)
		if !ok {
			t.Fatalf("%s: program missing", id)
		}
		oracle := MatchBugID(id)
		var rec *Recording
		for seed := int64(0); seed < 400; seed++ {
			r := Record(prog, Options{
				Scheme: sketch.SYNC, Processors: 4, ScheduleSeed: seed, WorldSeed: 1, MaxSteps: 200_000,
				EpochRing: &EpochRingOptions{Steps: 32, CheckpointEvery: 2},
			})
			if f := r.BugFailure(); f != nil && oracle(f) && len(r.Epochs.Checkpoints) > 0 {
				rec = r
				break
			}
		}
		if rec == nil {
			continue // bug or checkpoint too rare at this probe budget
		}
		checked++

		base := Replay(prog, rec, ReplayOptions{Feedback: true, Oracle: oracle})
		cp := Replay(prog, rec, ReplayOptions{Feedback: true, Oracle: oracle, FromCheckpoint: true})
		if !base.Reproduced {
			t.Fatalf("%s: whole-execution replay failed to reproduce", id)
		}
		if !cp.Reproduced {
			t.Fatalf("%s: replay from checkpoint failed to reproduce (%d attempts, stats %+v)", id, cp.Attempts, cp.Stats)
		}
		if !oracle(cp.Failure) {
			t.Fatalf("%s: checkpointed replay reproduced a different failure: %v", id, cp.Failure)
		}
		out := Reproduce(prog, rec, cp.Order)
		if out.Failure == nil || !oracle(out.Failure) {
			t.Fatalf("%s: checkpointed search's captured order lost the bug: %v", id, out.Failure)
		}
		t.Logf("%s: from-start %d attempts, from-checkpoint %d attempts (%d checkpoints)",
			id, base.Attempts, cp.Attempts, len(rec.Epochs.Checkpoints))
	}
	if checked < len(bugs) {
		t.Fatalf("only %d of %d bugs manifested with checkpoints; sample too thin", checked, len(bugs))
	}
}

// TestEpochContainerRoundTrip: a segmented recording (bounded ring plus
// checkpoints) round-trips through Write/ReadRecording — epoch
// structure, checkpoints and the window's log view all survive, and the
// result passes Validate.
func TestEpochContainerRoundTrip(t *testing.T) {
	prog, _ := apps.ProgramForBug("mysql-169")
	opts := Options{Scheme: sketch.SYNC, Processors: 4, ScheduleSeed: 3, WorldSeed: 1, MaxSteps: 200_000,
		EpochRing: &EpochRingOptions{Steps: 24, Size: 4, CheckpointEvery: 1}}
	rec := Record(prog, opts)
	if rec.Epochs == nil || !rec.Epochs.Segmented() {
		t.Fatal("bounded checkpointed ring should be segmented")
	}
	if err := rec.Validate(); err != nil {
		t.Fatalf("recorded ring invalid: %v", err)
	}

	var buf bytes.Buffer
	if err := rec.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.Bytes()[:4]; string(got) != trace.EpochContainerMagic {
		t.Fatalf("container starts with %q, want %q", got, trace.EpochContainerMagic)
	}
	back, err := ReadRecording(&buf, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Epochs, rec.Epochs) {
		t.Fatal("epoch ring did not round-trip")
	}
	if !reflect.DeepEqual(back.Sketch, rec.Sketch) {
		t.Fatal("window log did not round-trip")
	}
	if back.Inputs.Len() != rec.Inputs.Len() {
		t.Fatalf("input log %d records, want %d", back.Inputs.Len(), rec.Inputs.Len())
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("decoded recording invalid: %v", err)
	}
}

// TestEpochRingBoundsMemory: with a bounded ring, the retained window's
// entry high-water mark stays within Size epochs' worth of entries
// while the whole-run totals keep counting — the always-on recording's
// memory bound.
func TestEpochRingBoundsMemory(t *testing.T) {
	prog, _ := apps.ProgramForBug("lu-atomicity")
	rec := Record(prog, Options{
		Scheme: sketch.RW, Processors: 4, ScheduleSeed: 3, WorldSeed: 1, MaxSteps: 200_000,
		EpochRing: &EpochRingOptions{Steps: 16, Size: 3},
	})
	ring := rec.Epochs
	if ring == nil {
		t.Fatal("no epoch ring recorded")
	}
	if len(ring.Epochs) > 3 {
		t.Fatalf("ring holds %d epochs, capacity 3", len(ring.Epochs))
	}
	if ring.Evicted == 0 {
		t.Fatal("expected evictions under a 3-epoch ring; run too short or epochs too long")
	}
	whole := Record(prog, Options{Scheme: sketch.RW, Processors: 4, ScheduleSeed: 3, WorldSeed: 1, MaxSteps: 200_000})
	if ring.TotalOps != whole.Sketch.TotalOps || ring.Records != whole.Sketch.Records {
		t.Fatalf("whole-run totals drifted: ring %d/%d vs classic %d/%d",
			ring.TotalOps, ring.Records, whole.Sketch.TotalOps, whole.Sketch.Records)
	}
	if uint64(rec.Sketch.Len())+ring.EvictedEntries != uint64(whole.Sketch.Len()) {
		t.Fatalf("window %d + evicted %d != whole %d", rec.Sketch.Len(), ring.EvictedEntries, whole.Sketch.Len())
	}
}
