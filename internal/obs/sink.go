package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// Trace event type tags, carried in every event's "event" field so a
// JSONL stream of mixed event kinds stays self-describing.
const (
	EventAttempt = "attempt" // one replay attempt (AttemptEvent)
	EventRecord  = "record"  // one production run (RecordEvent)
	EventSummary = "summary" // end of one replay search (SummaryEvent)
)

// AttemptEvent is the trace record of one replay attempt, emitted in
// canonical attempt order (parallel waves are reported in the same
// order the sequential search would). The schema is frozen in
// OBSERVABILITY.md.
type AttemptEvent struct {
	Event string `json:"event"` // EventAttempt
	// Attempt is the 1-based canonical attempt index.
	Attempt int `json:"attempt"`
	// Mode is "directed" (a flip set from feedback) or "random" (a
	// probabilistic sample of the sketch-constrained space).
	Mode string `json:"mode"`
	// FlipSetID identifies the directed attempt's flip set: "|"-joined
	// flip keys, stable across runs. Empty for random attempts and the
	// empty (baseline) flip set.
	FlipSetID string `json:"flip_set_id,omitempty"`
	// FlipDepth is the number of simultaneous race flips enforced.
	FlipDepth int `json:"flip_depth"`
	// Outcome is "reproduced", "clean", "diverged" or "other".
	Outcome string `json:"outcome"`
	// WallMS is the attempt's wall-clock execution time.
	WallMS float64 `json:"wall_ms"`
	// SketchConsumed is how many recorded sketch entries the attempt
	// honored before finishing (or wedging).
	SketchConsumed int `json:"sketch_consumed"`
	// Divergence is the director's note when the recorded schedule
	// could no longer be honored; empty otherwise.
	Divergence string `json:"divergence,omitempty"`
	// Cached marks an attempt answered by the schedule cache instead of
	// an execution; its outcome fields reproduce the memoized run.
	Cached bool `json:"cached,omitempty"`
	// Cancelled marks an attempt the search's context cut short: the
	// execution unwound at a scheduling point, so the outcome describes
	// a truncated run.
	Cancelled bool `json:"cancelled,omitempty"`
}

// RecordEvent is the trace record of one production run (a presrun
// seed-search probe or a single recording).
type RecordEvent struct {
	Event string `json:"event"` // EventRecord
	Seed  int64  `json:"seed"`
	// Outcome is "bug" (target failure manifested), "clean", or
	// "failure" (a non-matching failure).
	Outcome       string `json:"outcome"`
	Steps         uint64 `json:"steps"`
	SketchEntries int    `json:"sketch_entries"`
	LogBytes      int    `json:"log_bytes"`
}

// SummaryEvent closes a replay search's trace: the search-level result
// after the per-attempt events.
type SummaryEvent struct {
	Event       string `json:"event"` // EventSummary
	Reproduced  bool   `json:"reproduced"`
	Attempts    int    `json:"attempts"`
	Flips       int    `json:"flips"`
	Divergences int    `json:"divergences"`
	CleanRuns   int    `json:"clean_runs"`
	RacesSeen   int    `json:"races_seen"`
	// CacheHits/CacheMisses report schedule-cache traffic; both are
	// omitted when the search ran without a cache.
	CacheHits   int `json:"cache_hits,omitempty"`
	CacheMisses int `json:"cache_misses,omitempty"`
	// Cancelled marks a search ended by context cancellation or deadline
	// rather than by reproduction or budget exhaustion; the counts above
	// describe the committed prefix.
	Cancelled bool `json:"cancelled,omitempty"`
}

// TraceSink writes structured events as JSON Lines. It is safe for
// concurrent use; a nil *TraceSink discards everything. Write errors
// are sticky and surfaced by Err rather than failing the replay search
// mid-flight.
type TraceSink struct {
	mu  sync.Mutex
	w   io.Writer
	n   int
	err error
}

// NewTraceSink returns a sink writing JSONL events to w.
func NewTraceSink(w io.Writer) *TraceSink {
	return &TraceSink{w: w}
}

// Emit marshals ev and writes it as one line. The first error sticks;
// later events are dropped.
func (s *TraceSink) Emit(ev any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		s.err = err
		return
	}
	if _, err := s.w.Write(append(b, '\n')); err != nil {
		s.err = err
		return
	}
	s.n++
}

// Events returns how many events were written successfully.
func (s *TraceSink) Events() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Err returns the first write or marshal error, if any.
func (s *TraceSink) Err() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}
