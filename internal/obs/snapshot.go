package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Bucket is one histogram bucket in a snapshot: the count of
// observations at or below LE (and above the previous bound).
type Bucket struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram. Buckets
// hold per-bucket (not cumulative) counts for the finite bounds;
// Overflow counts observations above the last bound.
type HistogramSnapshot struct {
	Count    uint64   `json:"count"`
	Sum      float64  `json:"sum"`
	Buckets  []Bucket `json:"buckets,omitempty"`
	Overflow uint64   `json:"overflow,omitempty"`
}

// Snapshot is a point-in-time copy of a registry, keyed by canonical
// metric identity (name plus sorted labels). It marshals to stable
// JSON: encoding/json sorts map keys, so identical registries
// serialize byte-identically.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current state. A nil registry yields
// the zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	for _, m := range r.sorted() {
		switch m.kind {
		case KindCounter:
			if s.Counters == nil {
				s.Counters = map[string]uint64{}
			}
			s.Counters[m.key] = m.c.Value()
		case KindGauge:
			if s.Gauges == nil {
				s.Gauges = map[string]float64{}
			}
			s.Gauges[m.key] = m.g.Value()
		case KindHistogram:
			if s.Histograms == nil {
				s.Histograms = map[string]HistogramSnapshot{}
			}
			hs := HistogramSnapshot{Count: m.h.Count(), Sum: m.h.Sum()}
			for i, b := range m.h.bounds {
				hs.Buckets = append(hs.Buckets, Bucket{LE: b, Count: m.h.counts[i].Load()})
			}
			hs.Overflow = m.h.counts[len(m.h.bounds)].Load()
			s.Histograms[m.key] = hs
		}
	}
	return s
}

// WriteJSON writes the registry's snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WritePrometheus writes the registry in the Prometheus text
// exposition format (version 0.0.4): one # TYPE header per metric
// name, series sorted by identity, histograms expanded into
// cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	lastName := ""
	for _, m := range r.sorted() {
		if m.name != lastName {
			fmt.Fprintf(bw, "# TYPE %s %s\n", m.name, m.kind)
			lastName = m.name
		}
		switch m.kind {
		case KindCounter:
			fmt.Fprintf(bw, "%s %d\n", m.key, m.c.Value())
		case KindGauge:
			fmt.Fprintf(bw, "%s %v\n", m.key, m.g.Value())
		case KindHistogram:
			cum := uint64(0)
			for i, b := range m.h.bounds {
				cum += m.h.counts[i].Load()
				fmt.Fprintf(bw, "%s %d\n", seriesWith(m.name, m.labels, "le", fmt.Sprintf("%v", b), "_bucket"), cum)
			}
			cum += m.h.counts[len(m.h.bounds)].Load()
			fmt.Fprintf(bw, "%s %d\n", seriesWith(m.name, m.labels, "le", "+Inf", "_bucket"), cum)
			fmt.Fprintf(bw, "%s %v\n", renderKey(m.name+"_sum", m.labels), m.h.Sum())
			fmt.Fprintf(bw, "%s %d\n", renderKey(m.name+"_count", m.labels), m.h.Count())
		}
	}
	return bw.Flush()
}

// seriesWith renders name+suffix with the metric's labels plus one
// extra pair appended (the histogram "le" bound).
func seriesWith(name string, labels []string, k, v, suffix string) string {
	all := append(append([]string(nil), labels...), k, v)
	return renderKey(name+suffix, all)
}

// WriteSnapshot serializes the registry in the requested format:
// "json" (the default for empty format) or "prom"/"prometheus" text
// exposition.
func WriteSnapshot(w io.Writer, r *Registry, format string) error {
	switch format {
	case "", "json":
		return r.WriteJSON(w)
	case "prom", "prometheus":
		return r.WritePrometheus(w)
	default:
		return fmt.Errorf("obs: unknown metrics format %q (want json or prom)", format)
	}
}
