package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryIsFullyUsable(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Counter("c").Add(7)
	r.Gauge("g").Set(3.5)
	r.Gauge("g").Add(1)
	r.Gauge("g").SetMax(9)
	r.Histogram("h", []float64{1, 2}).Observe(1.5)
	r.Timer("t_seconds").Start().Stop()
	if got := r.Counter("c").Value(); got != 0 {
		t.Fatalf("nil counter value = %d", got)
	}
	if got := r.Gauge("g").Value(); got != 0 {
		t.Fatalf("nil gauge value = %v", got)
	}
	if snap := r.Snapshot(); !reflect.DeepEqual(snap, Snapshot{}) {
		t.Fatalf("nil snapshot = %+v", snap)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil prometheus output: err=%v len=%d", err, buf.Len())
	}
	var s *TraceSink
	s.Emit(AttemptEvent{})
	if s.Events() != 0 || s.Err() != nil {
		t.Fatal("nil sink not inert")
	}
}

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pres_test_total", "mode", "directed")
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
	if same := r.Counter("pres_test_total", "mode", "directed"); same != c {
		t.Fatal("same identity returned a different counter")
	}
	if other := r.Counter("pres_test_total", "mode", "random"); other == c {
		t.Fatal("different labels shared an instrument")
	}

	g := r.Gauge("depth")
	g.Set(4)
	g.Add(-1.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", g.Value())
	}
	g.SetMax(1) // below current: no-op
	if g.Value() != 2.5 {
		t.Fatalf("SetMax lowered the gauge to %v", g.Value())
	}
	g.SetMax(10)
	if g.Value() != 10 {
		t.Fatalf("SetMax = %v, want 10", g.Value())
	}

	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 556.5 {
		t.Fatalf("histogram count=%d sum=%v", h.Count(), h.Sum())
	}
	snap := r.Snapshot().Histograms["lat"]
	want := []Bucket{{LE: 1, Count: 2}, {LE: 10, Count: 1}, {LE: 100, Count: 1}}
	if !reflect.DeepEqual(snap.Buckets, want) || snap.Overflow != 1 {
		t.Fatalf("buckets = %+v overflow=%d", snap.Buckets, snap.Overflow)
	}
}

func TestLabelOrderCanonicalized(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("m", "x", "1", "a", "2")
	b := r.Counter("m", "a", "2", "x", "1")
	if a != b {
		t.Fatal("label order changed metric identity")
	}
	snap := r.Snapshot()
	if _, ok := snap.Counters[`m{a="2",x="1"}`]; !ok {
		t.Fatalf("canonical key missing; got %v", snap.Counters)
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m")
}

// TestConcurrentUpdates hammers shared instruments from many
// goroutines; run under -race this is the package's thread-safety
// proof, and the final values prove no update was lost.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers, each = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Resolve through the registry on every iteration for some
			// workers to also race the lookup path.
			for i := 0; i < each; i++ {
				if w%2 == 0 {
					r.Counter("hits").Inc()
					r.Histogram("h", []float64{0.5}).Observe(1)
					r.Gauge("g").Add(1)
				} else {
					c := r.Counter("hits")
					c.Inc()
					r.Histogram("h", []float64{0.5}).Observe(0.25)
					r.Gauge("peak").SetMax(float64(i))
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != workers*each {
		t.Fatalf("lost counter updates: %d != %d", got, workers*each)
	}
	if got := r.Histogram("h", nil).Count(); got != workers*each {
		t.Fatalf("lost observations: %d != %d", got, workers*each)
	}
	if got := r.Gauge("g").Value(); got != workers/2*each {
		t.Fatalf("lost gauge adds: %v", got)
	}
	if got := r.Gauge("peak").Value(); got != each-1 {
		t.Fatalf("peak = %v, want %d", got, each-1)
	}
}

// TestSnapshotStability: a quiesced registry snapshots identically
// twice, and identical registries serialize byte-identically — the
// property that makes metric files diffable.
func TestSnapshotStability(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("a_total", "k", "v").Add(3)
		r.Counter("b_total").Add(1)
		r.Gauge("g").Set(2.5)
		r.Histogram("h", []float64{1, 2}).Observe(1.5)
		return r
	}
	r := build()
	s1, s2 := r.Snapshot(), r.Snapshot()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("same registry snapshotted differently")
	}
	j1, err := json.Marshal(s1)
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := json.Marshal(build().Snapshot())
	if !bytes.Equal(j1, j2) {
		t.Fatalf("identical registries serialized differently:\n%s\n%s", j1, j2)
	}
	var p1, p2 bytes.Buffer
	if err := r.WritePrometheus(&p1); err != nil {
		t.Fatal(err)
	}
	if err := build().WritePrometheus(&p2); err != nil {
		t.Fatal(err)
	}
	if p1.String() != p2.String() {
		t.Fatal("identical registries rendered different Prometheus text")
	}
}

// TestPrometheusGolden pins the exposition format byte for byte.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("pres_replay_attempts_total", "mode", "directed", "outcome", "clean").Add(4)
	r.Counter("pres_replay_attempts_total", "mode", "random", "outcome", "reproduced").Inc()
	r.Gauge("pres_replay_frontier_depth").Set(7)
	h := r.Histogram("wave", []float64{1, 4})
	h.Observe(1)
	h.Observe(3)
	h.Observe(9)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# TYPE pres_replay_attempts_total counter`,
		`pres_replay_attempts_total{mode="directed",outcome="clean"} 4`,
		`pres_replay_attempts_total{mode="random",outcome="reproduced"} 1`,
		`# TYPE pres_replay_frontier_depth gauge`,
		`pres_replay_frontier_depth 7`,
		`# TYPE wave histogram`,
		`wave_bucket{le="1"} 1`,
		`wave_bucket{le="4"} 2`,
		`wave_bucket{le="+Inf"} 3`,
		`wave_sum 13`,
		`wave_count 3`,
	}, "\n") + "\n"
	if got := buf.String(); got != want {
		t.Fatalf("prometheus output:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWriteSnapshotFormats(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	var j bytes.Buffer
	if err := WriteSnapshot(&j, r, "json"); err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(j.Bytes(), &decoded); err != nil {
		t.Fatalf("json output does not round-trip: %v", err)
	}
	if decoded.Counters["c"] != 1 {
		t.Fatalf("decoded = %+v", decoded)
	}
	var p bytes.Buffer
	if err := WriteSnapshot(&p, r, "prom"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.String(), "# TYPE c counter") {
		t.Fatalf("prom output:\n%s", p.String())
	}
	if err := WriteSnapshot(&p, r, "xml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestTraceSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewTraceSink(&buf)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.Emit(AttemptEvent{Event: EventAttempt, Attempt: i + 1, Mode: "random", Outcome: "clean"})
		}(i)
	}
	wg.Wait()
	s.Emit(SummaryEvent{Event: EventSummary, Attempts: 4})
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 || s.Events() != 5 {
		t.Fatalf("got %d lines, %d events", len(lines), s.Events())
	}
	seen := map[string]int{}
	for _, ln := range lines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("line %q: %v", ln, err)
		}
		seen[ev["event"].(string)]++
	}
	if seen[EventAttempt] != 4 || seen[EventSummary] != 1 {
		t.Fatalf("event mix = %v", seen)
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errShort
	}
	w.n--
	return len(p), nil
}

var errShort = &json.UnsupportedValueError{Str: "disk full"}

func TestTraceSinkStickyError(t *testing.T) {
	s := NewTraceSink(&failWriter{n: 1})
	s.Emit(AttemptEvent{Event: EventAttempt, Attempt: 1})
	s.Emit(AttemptEvent{Event: EventAttempt, Attempt: 2})
	s.Emit(AttemptEvent{Event: EventAttempt, Attempt: 3})
	if s.Err() == nil {
		t.Fatal("write error not surfaced")
	}
	if s.Events() != 1 {
		t.Fatalf("events = %d, want 1", s.Events())
	}
}
