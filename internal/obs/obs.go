// Package obs is the observability layer for the PRES record/replay
// stack: a small, dependency-free metrics registry (counters, gauges,
// histograms with fixed bucket boundaries, span-style timers) plus a
// structured JSONL trace sink for replay-attempt events.
//
// The package is built around two invariants the rest of the system
// relies on:
//
//  1. Disabled means free. A nil *Registry (the default everywhere) is
//     fully usable: every method on it, and on the nil instruments it
//     returns, is a no-op behind a single nil check. Hot paths hold
//     pre-resolved instrument pointers and never pay a map lookup, an
//     allocation or a time syscall when observability is off.
//
//  2. Deterministic output. Snapshots and the Prometheus text rendering
//     sort metrics by their canonical identity (name plus sorted label
//     pairs), so two identical runs serialize byte-identically — which
//     is what makes metric and trace files diffable debugging artifacts
//     (see OBSERVABILITY.md).
//
// Instruments are identified by a base name plus optional label
// key/value pairs ("mode", "directed", ...). Looking the same identity
// up twice returns the same instrument, so concurrent producers (e.g.
// parallel replay attempts) share one atomic value. All instrument
// updates are lock-free and safe for concurrent use.
//
// The metric and trace-event contract — every name, type, label and
// semantic carried by this package's producers — is documented in
// OBSERVABILITY.md at the repository root.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies a registered metric.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus type name for the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing uint64. The zero value is
// ready to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64. The zero value is ready to use; a nil
// *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d to the current value.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// SetMax raises the gauge to v if v exceeds the current value —
// high-water-mark tracking (e.g. peak frontier depth).
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Bucket i counts
// observations v with v <= bounds[i] (and > bounds[i-1]); observations
// above the last bound land in an implicit overflow (+Inf) bucket.
// A nil *Histogram is a no-op.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf implicit
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: its le-bucket
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Timer records durations into a histogram of seconds. Obtain one from
// Registry.Timer; a nil *Timer starts no-op spans (and never calls
// time.Now, keeping the disabled path syscall-free).
type Timer struct {
	h *Histogram
}

// Span is one in-flight timed section.
type Span struct {
	h     *Histogram
	start time.Time
}

// Start begins a span.
func (t *Timer) Start() Span {
	if t == nil || t.h == nil {
		return Span{}
	}
	return Span{h: t.h, start: time.Now()}
}

// Stop ends the span, recording its duration, and returns it.
func (s Span) Stop() time.Duration {
	if s.h == nil {
		return 0
	}
	d := time.Since(s.start)
	s.h.Observe(d.Seconds())
	return d
}

// DefaultTimeBuckets are the bucket bounds Registry.Timer uses, in
// seconds: 100µs up to 10s in a coarse exponential ladder.
var DefaultTimeBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// metric is one registered instrument with its identity.
type metric struct {
	kind   Kind
	name   string   // base name
	labels []string // canonical (sorted) k, v, k, v, ...
	key    string   // rendered identity: name or name{k="v",...}
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds metrics by identity. Create with NewRegistry; a nil
// *Registry is the disabled default — it hands out nil instruments,
// whose every method is a no-op.
type Registry struct {
	mu    sync.Mutex
	byKey map[string]*metric
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*metric)}
}

// Counter returns the counter for name and label pairs, creating it on
// first use. Labels are alternating key, value strings.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(KindCounter, name, nil, labels).c
}

// Gauge returns the gauge for name and label pairs.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(KindGauge, name, nil, labels).g
}

// Histogram returns the histogram for name and label pairs. bounds are
// ascending bucket upper bounds; they are fixed by the first
// registration of the identity and ignored afterwards.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(KindHistogram, name, bounds, labels).h
}

// Timer returns a span timer recording into a histogram of seconds
// with DefaultTimeBuckets. By convention name ends in "_seconds".
func (r *Registry) Timer(name string, labels ...string) *Timer {
	if r == nil {
		return nil
	}
	return &Timer{h: r.Histogram(name, DefaultTimeBuckets, labels...)}
}

func (r *Registry) lookup(kind Kind, name string, bounds []float64, labels []string) *metric {
	canon := canonLabels(labels)
	key := renderKey(name, canon)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", key, kind, m.kind))
		}
		return m
	}
	m := &metric{kind: kind, name: name, labels: canon, key: key}
	switch kind {
	case KindCounter:
		m.c = &Counter{}
	case KindGauge:
		m.g = &Gauge{}
	case KindHistogram:
		if len(bounds) == 0 {
			bounds = DefaultTimeBuckets
		}
		if !sort.Float64sAreSorted(bounds) {
			panic(fmt.Sprintf("obs: histogram %q bucket bounds not ascending", key))
		}
		m.h = &Histogram{bounds: append([]float64(nil), bounds...), counts: make([]atomic.Uint64, len(bounds)+1)}
	}
	r.byKey[key] = m
	return m
}

// canonLabels sorts label pairs by key for a stable identity. An odd
// trailing label is dropped (programmer error, but never corrupts the
// registry).
func canonLabels(labels []string) []string {
	n := len(labels) / 2 * 2
	if n == 0 {
		return nil
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, n/2)
	for i := 0; i < n; i += 2 {
		pairs = append(pairs, pair{labels[i], labels[i+1]})
	}
	sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	out := make([]string, 0, n)
	for _, p := range pairs {
		out = append(out, p.k, p.v)
	}
	return out
}

// renderKey builds the canonical identity string, which doubles as the
// Prometheus series name.
func renderKey(name string, canon []string) string {
	if len(canon) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i < len(canon); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		// %q quotes and escapes the value, which keeps the identity a
		// valid Prometheus series name even for hostile label values.
		fmt.Fprintf(&b, "%s=%q", canon[i], canon[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// sorted returns the registered metrics ordered by identity — the
// deterministic iteration order every serialization uses.
func (r *Registry) sorted() []*metric {
	r.mu.Lock()
	out := make([]*metric, 0, len(r.byKey))
	for _, m := range r.byKey {
		out = append(out, m)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].key < out[j].key
	})
	return out
}
