package search

import (
	"container/list"
	"sync"

	"repro/internal/trace"
)

// DefaultSnapshotBudget is the byte budget a zero-budget
// NewSnapshotCache gets: enough for a few hundred corpus-app snapshots
// without threatening a search's working set.
const DefaultSnapshotBudget int64 = 64 << 20

// Snapshot is one prefix-snapshot of a directed replay attempt: the
// world and engine state at a scheduler quiescent point, plus the
// grant order that deterministically re-establishes it. A child
// attempt whose flip set extends the capturing attempt's set restores
// by force-replaying Order (mechanical, no enforcement), validating
// EventDigest/WorldDigest at the boundary — the FromCheckpoint
// protocol — and then executing only its divergent suffix.
//
// Snapshots are immutable once stored: restores clone what they need
// (the engine state is re-cloned per restore), so eviction never
// invalidates a restore already in flight.
type Snapshot struct {
	// Key is the capturing attempt's prefix identity — its
	// trace.ScheduleCacheKey with the deterministic (unseeded) policy —
	// so children look up snapshots by their parent's flip set.
	Key string
	// Step is the committed-event count at capture; a snapshot is
	// usable for a child whose first divergence point lies strictly
	// after it.
	Step uint64
	// EventDigest and WorldDigest validate the boundary exactly as a
	// recording checkpoint's digests do (see internal/core
	// checkpoint.go).
	EventDigest uint64
	WorldDigest uint64
	// World is the vsys world snapshot blob — kept for accounting and
	// diagnosis; the restore path re-establishes the world by forced
	// prefix re-execution and only compares digests.
	World []byte
	// Order is the grant order of the first Step committed events.
	Order []trace.TID
	// State is the engine's opaque resume state (detector clone,
	// director cursor) — internal/core owns its concrete type.
	State any
	// Bytes is the snapshot's accounted size, fixed at capture.
	Bytes int64
}

// SnapshotStats are one cache's lifetime tallies.
type SnapshotStats struct {
	Hits    uint64 // Best calls that returned a snapshot
	Misses  uint64 // Best calls that found nothing usable
	Stored  uint64 // snapshots accepted by Store
	Evicted uint64 // snapshots dropped by the byte budget
	Bytes   int64  // bytes currently retained
}

// SnapshotCache is the bounded in-memory store prefix snapshots live
// in: a byte-budget LRU over whole snapshots, indexed by prefix key.
// One cache serves one search (all workers); entries are immutable, so
// concurrent Best/Store from any number of workers is safe and an
// evicted snapshot stays valid for the restore that already fetched
// it.
type SnapshotCache struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	ll      *list.List // front = most recently used
	byKey   map[string][]*list.Element
	hits    uint64
	misses  uint64
	stored  uint64
	evicted uint64
}

// NewSnapshotCache returns an empty cache retaining at most budget
// bytes of snapshots (<= 0 selects DefaultSnapshotBudget), evicting
// least-recently used whole snapshots.
func NewSnapshotCache(budget int64) *SnapshotCache {
	if budget <= 0 {
		budget = DefaultSnapshotBudget
	}
	return &SnapshotCache{
		budget: budget,
		ll:     list.New(),
		byKey:  make(map[string][]*list.Element),
	}
}

// Best returns the deepest stored snapshot for key whose Step is
// strictly below before and which usable accepts (nil accepts all) —
// the longest shared prefix a child attempt diverging at before can
// resume from — promoting it to most-recently-used; nil when none
// qualifies. The caller's predicate lets the engine impose conditions
// the cache cannot know, e.g. "the flip being added could not yet have
// engaged at this snapshot's step". Every call tallies a hit or a
// miss. usable runs under the cache lock and must not call back in.
func (c *SnapshotCache) Best(key string, before uint64, usable func(*Snapshot) bool) *Snapshot {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var best *list.Element
	for _, el := range c.byKey[key] {
		s := el.Value.(*Snapshot)
		if s.Step >= before || (usable != nil && !usable(s)) {
			continue
		}
		if best == nil || s.Step > best.Value.(*Snapshot).Step {
			best = el
		}
	}
	if best == nil {
		c.misses++
		return nil
	}
	c.hits++
	c.ll.MoveToFront(best)
	return best.Value.(*Snapshot)
}

// Store inserts a snapshot and returns how many snapshots the byte
// budget evicted to make room. A snapshot larger than the whole budget
// is rejected (stored-and-instantly-evicted would only churn); a
// duplicate (same key and step) replaces the stored one in place.
func (c *SnapshotCache) Store(s *Snapshot) (evicted int) {
	if c == nil || s == nil || s.Key == "" || s.Bytes > c.budget {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, el := range c.byKey[s.Key] {
		if old := el.Value.(*Snapshot); old.Step == s.Step {
			c.bytes += s.Bytes - old.Bytes
			el.Value = s
			c.ll.MoveToFront(el)
			evicted = c.evictLocked()
			return evicted
		}
	}
	el := c.ll.PushFront(s)
	c.byKey[s.Key] = append(c.byKey[s.Key], el)
	c.bytes += s.Bytes
	c.stored++
	return c.evictLocked()
}

// evictLocked drops least-recently-used snapshots until the budget
// holds, returning how many went.
func (c *SnapshotCache) evictLocked() int {
	n := 0
	for c.bytes > c.budget {
		last := c.ll.Back()
		if last == nil {
			break
		}
		c.removeLocked(last)
		n++
	}
	return n
}

func (c *SnapshotCache) removeLocked(el *list.Element) {
	s := el.Value.(*Snapshot)
	c.ll.Remove(el)
	c.bytes -= s.Bytes
	c.evicted++
	els := c.byKey[s.Key]
	for i, e := range els {
		if e == el {
			els[i] = els[len(els)-1]
			els = els[:len(els)-1]
			break
		}
	}
	if len(els) == 0 {
		delete(c.byKey, s.Key)
	} else {
		c.byKey[s.Key] = els
	}
}

// Len returns the number of retained snapshots.
func (c *SnapshotCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the bytes currently retained.
func (c *SnapshotCache) Bytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Stats returns the cache's lifetime tallies.
func (c *SnapshotCache) Stats() SnapshotStats {
	if c == nil {
		return SnapshotStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return SnapshotStats{
		Hits: c.hits, Misses: c.misses,
		Stored: c.stored, Evicted: c.evicted, Bytes: c.bytes,
	}
}
