package search

import (
	"fmt"
	"sync"
	"testing"
)

func snap(key string, step uint64, bytes int64) *Snapshot {
	return &Snapshot{Key: key, Step: step, Bytes: bytes}
}

func TestSnapshotCacheBest(t *testing.T) {
	c := NewSnapshotCache(1 << 20)
	c.Store(snap("a", 10, 100))
	c.Store(snap("a", 50, 100))
	c.Store(snap("a", 90, 100))
	c.Store(snap("b", 40, 100))

	if got := c.Best("a", 60, nil); got == nil || got.Step != 50 {
		t.Fatalf("Best(a,60) = %+v, want step 50", got)
	}
	if got := c.Best("a", 200, nil); got == nil || got.Step != 90 {
		t.Fatalf("Best(a,200) = %+v, want step 90", got)
	}
	// Strictly-below: a snapshot at the divergence step itself is unusable.
	if got := c.Best("a", 10, nil); got != nil {
		t.Fatalf("Best(a,10) = %+v, want nil", got)
	}
	if got := c.Best("missing", 100, nil); got != nil {
		t.Fatalf("Best(missing) = %+v, want nil", got)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 2 hits / 2 misses", st)
	}
}

func TestSnapshotCacheEviction(t *testing.T) {
	c := NewSnapshotCache(300)
	c.Store(snap("a", 1, 100))
	c.Store(snap("b", 1, 100))
	c.Store(snap("c", 1, 100))
	if c.Len() != 3 || c.Bytes() != 300 {
		t.Fatalf("len=%d bytes=%d, want 3/300", c.Len(), c.Bytes())
	}
	// "a" is the LRU tail; storing one more evicts it.
	if ev := c.Store(snap("d", 1, 100)); ev != 1 {
		t.Fatalf("Store evicted %d, want 1", ev)
	}
	if got := c.Best("a", 100, nil); got != nil {
		t.Fatalf("evicted snapshot still served: %+v", got)
	}
	// A hit promotes: touch "b", then overflow — "c" should go, not "b".
	if c.Best("b", 100, nil) == nil {
		t.Fatal("b missing before promotion test")
	}
	c.Store(snap("e", 1, 100))
	if c.Best("b", 100, nil) == nil {
		t.Fatal("promoted snapshot was evicted ahead of colder entries")
	}
	if c.Best("c", 100, nil) != nil {
		t.Fatal("cold snapshot survived past the budget")
	}
	// Oversized snapshots are rejected outright.
	if ev := c.Store(snap("big", 1, 1000)); ev != 0 {
		t.Fatalf("oversized Store evicted %d, want 0 (rejected)", ev)
	}
	if c.Best("big", 100, nil) != nil {
		t.Fatal("oversized snapshot was retained")
	}
}

func TestSnapshotCacheReplace(t *testing.T) {
	c := NewSnapshotCache(1 << 20)
	c.Store(snap("a", 10, 100))
	repl := snap("a", 10, 250)
	repl.EventDigest = 7
	c.Store(repl)
	if c.Len() != 1 || c.Bytes() != 250 {
		t.Fatalf("len=%d bytes=%d after replace, want 1/250", c.Len(), c.Bytes())
	}
	if got := c.Best("a", 100, nil); got == nil || got.EventDigest != 7 {
		t.Fatalf("replace did not take: %+v", got)
	}
}

func TestSnapshotCacheNilSafe(t *testing.T) {
	var c *SnapshotCache
	if c.Best("a", 1, nil) != nil || c.Store(snap("a", 1, 1)) != 0 ||
		c.Len() != 0 || c.Bytes() != 0 || c.Stats() != (SnapshotStats{}) {
		t.Fatal("nil cache must be inert")
	}
}

func TestSnapshotCacheConcurrent(t *testing.T) {
	// Hammer a tiny cache from many goroutines so Store-driven eviction
	// races Best-driven promotion; run under -race this checks the
	// locking, and the final accounting must still balance.
	c := NewSnapshotCache(2000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (g+i)%5)
				if i%3 == 0 {
					c.Store(snap(key, uint64(i), int64(50+i%7*30)))
				} else if s := c.Best(key, uint64(i), func(s *Snapshot) bool { return s.Bytes > 0 }); s != nil && s.Key != key {
					t.Errorf("Best returned wrong key %q for %q", s.Key, key)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Bytes() > 2000 {
		t.Fatalf("budget exceeded after hammer: %d", c.Bytes())
	}
	st := c.Stats()
	if st.Stored == 0 || st.Evicted == 0 {
		t.Fatalf("hammer exercised nothing: %+v", st)
	}
}
