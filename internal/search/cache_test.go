package search

import "testing"

func TestCacheLRU(t *testing.T) {
	c := NewCache(2)
	c.Store(Entry{Key: "a", Note: "a"})
	c.Store(Entry{Key: "b", Note: "b"})
	if _, ok := c.Lookup("a"); !ok { // promotes a
		t.Fatal("a missing")
	}
	c.Store(Entry{Key: "c", Note: "c"}) // evicts b, the LRU
	if _, ok := c.Lookup("b"); ok {
		t.Fatal("b should have been evicted")
	}
	for _, k := range []string{"a", "c"} {
		if e, ok := c.Lookup(k); !ok || e.Note != k {
			t.Fatalf("%s missing or wrong after eviction", k)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	hits, misses := c.Stats()
	if hits != 3 || misses != 1 {
		t.Fatalf("stats = %d/%d, want 3 hits 1 miss", hits, misses)
	}
	c.Store(Entry{Key: "a", Note: "a2"}) // update in place
	if e, _ := c.Lookup("a"); e.Note != "a2" {
		t.Fatal("update did not replace the entry")
	}
}

func TestCacheNilAndEmptyKeySafe(t *testing.T) {
	var c *Cache
	if _, ok := c.Lookup("x"); ok {
		t.Fatal("nil cache hit")
	}
	c.Store(Entry{Key: "x"})
	if c.Len() != 0 {
		t.Fatal("nil cache grew")
	}
	real := NewCache(0)
	real.Store(Entry{Key: ""})
	if real.Len() != 0 {
		t.Fatal("empty key stored")
	}
}

func TestPolicyComposition(t *testing.T) {
	// The three built-in policies must compose attempts exactly as the
	// pre-seam engine did: FeedbackDirected alternates directed/random
	// with every random attempt seeded; Probabilistic keeps attempt 0 as
	// the sticky baseline; StickyDirected never directs or seeds.
	fd := FeedbackDirected{}
	if !fd.UsesFeedback() {
		t.Fatal("FeedbackDirected must use feedback")
	}
	for idx := 0; idx < 10; idx++ {
		if got, want := fd.Directed(idx), idx%2 == 0; got != want {
			t.Fatalf("FeedbackDirected.Directed(%d) = %v, want %v", idx, got, want)
		}
		if !fd.Seeded(idx) {
			t.Fatalf("FeedbackDirected.Seeded(%d) = false", idx)
		}
	}
	pr := Probabilistic{}
	if pr.UsesFeedback() {
		t.Fatal("Probabilistic must not use feedback")
	}
	if pr.Seeded(0) {
		t.Fatal("Probabilistic attempt 0 must be the sticky baseline")
	}
	for idx := 1; idx < 10; idx++ {
		if pr.Directed(idx) {
			t.Fatalf("Probabilistic.Directed(%d) = true", idx)
		}
		if !pr.Seeded(idx) {
			t.Fatalf("Probabilistic.Seeded(%d) = false", idx)
		}
	}
	st := StickyDirected{}
	if st.UsesFeedback() || st.Directed(4) || st.Seeded(4) {
		t.Fatal("StickyDirected must neither direct nor seed")
	}
}
