// Package search holds the replay search engine's data layer: the
// sharded priority frontier directed attempts are queued on, the
// cross-search schedule cache, and the Policy seam that composes a
// search's attempt kinds. It sits below internal/core (which owns the
// attempt lifecycle and feedback generation) and beside internal/exec
// (the canonical-commit worker pool the searches run on); see
// INTERNALS.md for the layering.
package search

import (
	"sync"
	"sync/atomic"
)

// Frontier is the directed search's work queue: a priority frontier of
// nodes ordered by (depth, push sequence), spread over
// independently-locked shards so attempt workers can push and steal
// without funneling through one lock.
//
// The (depth, seq) order preserves the search's breadth-first shape —
// all single flips before any pair, and within a level the ranking the
// feedback generator pushed in — while letting children enter the
// moment their parent commits, with no wave barrier. With one shard
// (the workers=1 configuration) pops are exactly the sequential
// engine's FIFO: on a search tree, insertion order never decreases in
// depth, so the (depth, seq) minimum is the oldest node.
//
// With several shards, priority is exact within a shard and best-effort
// across them: Pop scans every shard's current minimum and takes the
// best, but a concurrent push may land a better node a moment later.
// That slack only ever reorders same-priority-class work between
// workers; it never loses a node.
type Frontier[T any] struct {
	shards  []frontierShard[T]
	size    atomic.Int64
	pushSeq atomic.Uint64
}

type frontierShard[T any] struct {
	mu sync.Mutex
	h  []frontierItem[T] // binary min-heap by less()
}

type frontierItem[T any] struct {
	item  T
	depth int
	seq   uint64
}

func (a frontierItem[T]) less(b frontierItem[T]) bool {
	if a.depth != b.depth {
		return a.depth < b.depth
	}
	return a.seq < b.seq
}

// NewFrontier sizes the frontier for the given worker count.
func NewFrontier[T any](workers int) *Frontier[T] {
	n := workers
	if n < 1 {
		n = 1
	}
	if n > 8 {
		n = 8
	}
	return &Frontier[T]{shards: make([]frontierShard[T], n)}
}

// Push adds an item at the given priority depth; the push sequence
// both breaks depth ties (FIFO within a level) and round-robins items
// across shards.
func (f *Frontier[T]) Push(item T, depth int) {
	seq := f.pushSeq.Add(1)
	it := frontierItem[T]{item: item, depth: depth, seq: seq}
	s := &f.shards[seq%uint64(len(f.shards))]
	s.mu.Lock()
	s.h = append(s.h, it)
	siftUp(s.h, len(s.h)-1)
	s.mu.Unlock()
	f.size.Add(1)
}

// Pop removes and returns the best item, scanning shards starting at
// the worker's home shard (so uncontended workers tend to reuse their
// own shard and steal only when it runs dry). ok=false means the
// frontier is empty.
func (f *Frontier[T]) Pop(home int) (T, bool) {
	n := len(f.shards)
	for f.size.Load() > 0 {
		best := -1
		var bestItem frontierItem[T]
		for i := 0; i < n; i++ {
			s := &f.shards[(home+i)%n]
			s.mu.Lock()
			if len(s.h) > 0 && (best < 0 || s.h[0].less(bestItem)) {
				best = (home + i) % n
				bestItem = s.h[0]
			}
			s.mu.Unlock()
		}
		if best < 0 {
			break // raced with concurrent pops; size check re-verifies
		}
		s := &f.shards[best]
		s.mu.Lock()
		if len(s.h) == 0 {
			s.mu.Unlock()
			continue // another worker drained it between scans; rescan
		}
		it := s.h[0]
		last := len(s.h) - 1
		s.h[0] = s.h[last]
		var zero frontierItem[T]
		s.h[last] = zero // drop the item reference for the GC
		s.h = s.h[:last]
		if last > 0 {
			siftDown(s.h, 0)
		}
		s.mu.Unlock()
		f.size.Add(-1)
		return it.item, true
	}
	var zero T
	return zero, false
}

// Len returns the current item count (exact between operations,
// advisory while workers are pushing and popping).
func (f *Frontier[T]) Len() int { return int(f.size.Load()) }

func siftUp[T any](h []frontierItem[T], i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h[i].less(h[p]) {
			return
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func siftDown[T any](h []frontierItem[T], i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h[l].less(h[small]) {
			small = l
		}
		if r < n && h[r].less(h[small]) {
			small = r
		}
		if small == i {
			return
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}
