package search

import (
	"sync"
	"testing"
)

func TestFrontierSingleShardIsFIFO(t *testing.T) {
	// One shard (the workers=1 shape) must pop in exact push order when
	// depth never decreases — the sequential engine's BFS queue.
	f := NewFrontier[uint64](1)
	var want []uint64
	for i := uint64(0); i < 20; i++ {
		depth := 1 + int(i/5) // non-decreasing, like a search tree
		f.Push(i, depth)
		want = append(want, i)
	}
	for i, tag := range want {
		got, ok := f.Pop(0)
		if !ok {
			t.Fatalf("pop %d: frontier empty early", i)
		}
		if got != tag {
			t.Fatalf("pop %d: got tag %d, want %d (FIFO broken)", i, got, tag)
		}
	}
	if _, ok := f.Pop(0); ok || f.Len() != 0 {
		t.Fatal("frontier not empty after draining")
	}
}

func TestFrontierPriorityAcrossShards(t *testing.T) {
	// Shallower items pop first even when pushed later and landed on
	// other shards: the breadth-first shape survives sharding.
	f := NewFrontier[uint64](4)
	for i := uint64(0); i < 8; i++ {
		f.Push(100+i, 3)
	}
	f.Push(7, 1)
	got, ok := f.Pop(2)
	if !ok || got != 7 {
		t.Fatalf("expected the depth-1 item first, got %d (ok=%v)", got, ok)
	}
	if f.Len() != 8 {
		t.Fatalf("Len = %d, want 8", f.Len())
	}
}

func TestFrontierConcurrentNeverLosesItems(t *testing.T) {
	// Hammer pushes and pops from many goroutines: every pushed item is
	// popped exactly once. Runs under -race in the tier-1 gate.
	f := NewFrontier[uint64](8)
	const producers, perProducer = 8, 200
	var mu sync.Mutex
	seen := make(map[uint64]int)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				tag := uint64(p*perProducer + i)
				f.Push(tag, 1+int(tag%3))
			}
		}(p)
	}
	prodDone := make(chan struct{})
	go func() { wg.Wait(); close(prodDone) }()
	var cg sync.WaitGroup
	for c := 0; c < 8; c++ {
		cg.Add(1)
		go func(home int) {
			defer cg.Done()
			for {
				tag, ok := f.Pop(home)
				if !ok {
					select {
					case <-prodDone:
						if f.Len() == 0 {
							return
						}
					default:
					}
					continue
				}
				mu.Lock()
				seen[tag]++
				mu.Unlock()
			}
		}(c)
	}
	cg.Wait()
	if len(seen) != producers*perProducer {
		t.Fatalf("popped %d distinct items, want %d", len(seen), producers*perProducer)
	}
	for tag, n := range seen {
		if n != 1 {
			t.Fatalf("item %d popped %d times", tag, n)
		}
	}
}
