package search

import (
	"container/list"
	"sync"

	"repro/internal/race"
	"repro/internal/sched"
)

// DefaultCacheSize is the entry cap a zero-capacity NewCache gets:
// roomy enough for several full-budget searches (the paper's budget is
// 1000 attempts) before eviction starts.
const DefaultCacheSize = 4096

// Cache is the cross-attempt schedule cache: it memoizes the outcome
// of replay attempts keyed by their canonical identity
// (trace.ScheduleCacheKey — search-context digest, schedule policy and
// canonical flip set), so re-running an equivalent attempt — in a later
// search over the same recording, or from another worker's duplicate
// frontier path — costs a map lookup instead of a full simulated
// execution.
//
// A hit changes wall-clock only, never the search trajectory: the
// cached outcome is exactly what the execution would have produced
// (the key pins everything the execution depends on), it still
// consumes an attempt slot, and reproductions are never served from
// the cache — an attempt whose stored failure matches the current
// oracle is re-executed so the search captures a fresh FullOrder.
// Cancelled attempts are never stored either: their outcomes are
// truncated (internal/core enforces both rules at its call sites).
//
// The cache is safe for concurrent use by any number of searches and
// workers; a nil *Cache disables caching everywhere it is consulted.
type Cache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List // front = most recent
	m      map[string]*list.Element
	hits   uint64
	misses uint64
}

// Entry is the replayable summary of one executed attempt: enough to
// reconstruct its outcome under any oracle. The captured order is
// deliberately absent — reproductions always re-execute.
type Entry struct {
	Key      string
	Races    []race.Pair
	Failure  *sched.Failure // the attempt's raw failure, nil if clean
	Horizon  uint64
	Consumed int
	Note     string
}

// NewCache returns an empty cache holding at most capacity entries
// (<=0 selects DefaultCacheSize), evicting least-recently used.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &Cache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

// Lookup returns the stored entry for key and promotes it, or ok=false
// on a miss. Hit/miss tallies feed Stats.
func (c *Cache) Lookup(key string) (Entry, bool) {
	if c == nil {
		return Entry{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(Entry), true
	}
	c.misses++
	return Entry{}, false
}

// Store records an executed attempt's summary, evicting the
// least-recently-used entry when full.
func (c *Cache) Store(e Entry) {
	if c == nil || e.Key == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[e.Key]; ok {
		c.ll.MoveToFront(el)
		el.Value = e
		return
	}
	c.m[e.Key] = c.ll.PushFront(e)
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.m, last.Value.(Entry).Key)
	}
}

// Len returns the number of cached attempt outcomes.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns lifetime lookup tallies across every search that
// shared the cache.
func (c *Cache) Stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
