package search

// Policy composes a search's attempt kinds: for each canonical attempt
// index it decides whether the attempt pops the directed frontier and
// whether a non-directed attempt samples randomly or runs the
// deterministic sticky baseline. It is the seam future strategies
// (e.g. a pattern-prioritized or hybrid-guided policy) drop into
// without touching internal/core.
//
// Implementations must be pure functions of the index — the same
// policy asked about the same index must always answer the same —
// because the canonical-order commit discipline (and the schedule
// cache key, which encodes Directed and Seeded per attempt) relies on
// attempt identity being reproducible across runs and worker counts.
type Policy interface {
	// UsesFeedback reports whether the search maintains a directed
	// frontier at all: whether failed directed attempts generate
	// race-flip children.
	UsesFeedback() bool
	// Directed reports whether canonical attempt idx should pop the
	// frontier (falling back to a probabilistic sample when it is
	// empty and no directed attempt is in flight).
	Directed(idx int) bool
	// Seeded reports whether non-directed attempt idx explores with an
	// index-seeded random schedule; false runs the deterministic
	// sticky-policy baseline instead.
	Seeded(idx int) bool
}

// FeedbackDirected is the paper's search: even canonical indices pop
// the directed frontier (breadth-first over flip depth, fed by race
// flips from failed attempts), odd indices sample the
// sketch-constrained space probabilistically. Directed attempts force
// windows random sampling is unlikely to hit; random attempts cover
// window shapes the race-flip vocabulary cannot express.
type FeedbackDirected struct{}

func (FeedbackDirected) UsesFeedback() bool    { return true }
func (FeedbackDirected) Directed(idx int) bool { return idx%2 == 0 }
func (FeedbackDirected) Seeded(int) bool       { return true }

// Probabilistic is the no-feedback ablation (the paper's E5 baseline):
// attempt 0 is the deterministic sticky baseline, every later attempt
// an independent index-seeded sample of the sketch-constrained space.
type Probabilistic struct{}

func (Probabilistic) UsesFeedback() bool { return false }
func (Probabilistic) Directed(int) bool  { return false }
func (Probabilistic) Seeded(idx int) bool {
	return idx != 0
}

// PureDirected pops the directed frontier on every canonical index —
// feedback with no interleaved probabilistic sampling. The search
// lives entirely in the flip tree, so sibling attempts share maximal
// schedule prefixes; this is the policy that exposes the snapshot
// tree's (ReplayOptions.PrefixSnapshots) best case, and the directed
// leg of presperf's replay-search benchmark. When the frontier is
// empty and nothing directed is in flight, attempts fall back to the
// policy's non-directed kind — deterministic sticky here, keeping the
// whole search unseeded.
type PureDirected struct{}

func (PureDirected) UsesFeedback() bool { return true }
func (PureDirected) Directed(int) bool  { return true }
func (PureDirected) Seeded(int) bool    { return false }

// StickyDirected runs every attempt under the deterministic sticky
// policy with no feedback and no sampling — the coarsest baseline:
// one production-like schedule, repeated. Useful as a control for how
// much of a reproduction is owed to search rather than enforcement.
type StickyDirected struct{}

func (StickyDirected) UsesFeedback() bool { return false }
func (StickyDirected) Directed(int) bool  { return false }
func (StickyDirected) Seeded(int) bool    { return false }
