package mem

import (
	"reflect"
	"testing"
)

func TestCellSnapshotRestore(t *testing.T) {
	c := NewCell("snap.cell", 5)
	s := c.Snapshot()
	c.Poke(99)
	c.Restore(s)
	if got := c.Peek(); got != 5 {
		t.Fatalf("restored cell = %d, want 5", got)
	}
}

func TestArraySnapshotRestore(t *testing.T) {
	a := NewArray("snap.arr", 4)
	for i := 0; i < 4; i++ {
		a.Poke(i, uint64(i*10))
	}
	s := a.Snapshot()
	a.Poke(2, 999)
	s[0] = 888 // snapshot must be a copy, not an alias
	if a.Peek(0) == 888 {
		t.Fatal("snapshot aliases the array")
	}
	a.Restore([]uint64{0, 10, 20, 30})
	got := []uint64{a.Peek(0), a.Peek(1), a.Peek(2), a.Peek(3)}
	if !reflect.DeepEqual(got, []uint64{0, 10, 20, 30}) {
		t.Fatalf("restored array = %v", got)
	}
	if !reflect.DeepEqual(s, []uint64{888, 10, 20, 30}) {
		t.Fatalf("snapshot mutated unexpectedly: %v", s)
	}
}

func TestMatrixSnapshotRestore(t *testing.T) {
	m := NewMatrix("snap.mat", 2, 2)
	m.Poke(1, 1, 7)
	s := m.Snapshot()
	m.Poke(1, 1, 0)
	m.Restore(s)
	if got := m.Peek(1, 1); got != 7 {
		t.Fatalf("restored matrix cell = %d, want 7", got)
	}
}
