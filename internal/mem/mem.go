// Package mem models the shared memory applications race on.
//
// Cells and arrays hold 64-bit words at stable virtual addresses (the
// FNV-1a hash of their name, plus the element offset for arrays), so an
// address identifies the same program variable across the production run
// and every replay attempt. Every Load/Store/RMW is a scheduling point
// of the corresponding trace kind; this is the event stream the RW
// sketch records in full and the replayer's race detector analyses.
//
// Peek/Poke access the same storage without scheduling points; they are
// for test oracles and pre-run setup only, never for application logic.
package mem

import (
	"hash/fnv"

	"repro/internal/sched"
	"repro/internal/trace"
)

// Addr hashes a variable name to its stable virtual address.
func Addr(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

// Cell is one shared 64-bit word.
type Cell struct {
	name string
	addr uint64
	val  uint64
}

// NewCell allocates a shared word with a stable name and initial value.
func NewCell(name string, init uint64) *Cell {
	addr := Addr(name)
	registerName(addr, name)
	return &Cell{name: name, addr: addr, val: init}
}

// Name returns the cell's name.
func (c *Cell) Name() string { return c.name }

// Addr returns the cell's stable virtual address.
func (c *Cell) Addr() uint64 { return c.addr }

// Load reads the cell at a scheduling point and returns the value.
func (c *Cell) Load(t *sched.Thread) uint64 {
	var v uint64
	t.Point(&sched.Op{
		Kind: trace.KindLoad,
		Obj:  c.addr,
		Desc: "load " + c.name,
		Effect: func(ctx *sched.EffectCtx) {
			v = c.val
			ctx.Ev.Arg = v
		},
	})
	return v
}

// Store writes the cell at a scheduling point.
func (c *Cell) Store(t *sched.Thread, v uint64) {
	t.Point(&sched.Op{
		Kind:   trace.KindStore,
		Obj:    c.addr,
		Arg:    v,
		Desc:   "store " + c.name,
		Effect: func(*sched.EffectCtx) { c.val = v },
	})
}

// Add atomically adds delta (two's-complement for negatives) and returns
// the new value. A single RMW scheduling point: this is the *correctly
// synchronized* counter update; buggy code instead uses Load+Store.
func (c *Cell) Add(t *sched.Thread, delta uint64) uint64 {
	var v uint64
	t.Point(&sched.Op{
		Kind: trace.KindRMW,
		Obj:  c.addr,
		Arg:  delta,
		Desc: "add " + c.name,
		Effect: func(ctx *sched.EffectCtx) {
			c.val += delta
			v = c.val
		},
	})
	return v
}

// CAS atomically replaces old with new if the cell holds old, reporting
// whether it swapped.
func (c *Cell) CAS(t *sched.Thread, old, new uint64) bool {
	var ok bool
	t.Point(&sched.Op{
		Kind: trace.KindRMW,
		Obj:  c.addr,
		Arg:  new,
		Desc: "cas " + c.name,
		Effect: func(ctx *sched.EffectCtx) {
			if c.val == old {
				c.val = new
				ok = true
			}
		},
	})
	return ok
}

// LoadOp returns the scheduling-point op Load performs, for declaring
// straight-line runs with Thread.PointBatch; f, when non-nil, receives
// the loaded value at commit time.
func (c *Cell) LoadOp(f func(uint64)) *sched.Op {
	return &sched.Op{
		Kind: trace.KindLoad,
		Obj:  c.addr,
		Desc: "load " + c.name,
		Effect: func(ctx *sched.EffectCtx) {
			v := c.val
			ctx.Ev.Arg = v
			if f != nil {
				f(v)
			}
		},
	}
}

// StoreOp returns the scheduling-point op Store performs, for declaring
// straight-line runs with Thread.PointBatch.
func (c *Cell) StoreOp(v uint64) *sched.Op {
	return &sched.Op{
		Kind:   trace.KindStore,
		Obj:    c.addr,
		Arg:    v,
		Desc:   "store " + c.name,
		Effect: func(*sched.EffectCtx) { c.val = v },
	}
}

// StoreOpFn is StoreOp with the value computed at commit time (e.g.,
// from values earlier ops of the same batch loaded); the committed
// event's Arg carries the computed value.
func (c *Cell) StoreOpFn(f func() uint64) *sched.Op {
	return &sched.Op{
		Kind: trace.KindStore,
		Obj:  c.addr,
		Desc: "store " + c.name,
		Effect: func(ctx *sched.EffectCtx) {
			v := f()
			c.val = v
			ctx.Ev.Arg = v
		},
	}
}

// Peek reads the cell without a scheduling point (oracle/setup only).
func (c *Cell) Peek() uint64 { return c.val }

// Poke writes the cell without a scheduling point (oracle/setup only).
func (c *Cell) Poke(v uint64) { c.val = v }

// Array is a fixed-length vector of shared 64-bit words. Element i
// lives at Addr(name)+8*i.
type Array struct {
	name string
	base uint64
	vals []uint64
}

// NewArray allocates a zeroed shared array.
func NewArray(name string, n int) *Array {
	base := Addr(name)
	registerSpan(base, name, n)
	return &Array{name: name, base: base, vals: make([]uint64, n)}
}

// Name returns the array's name.
func (a *Array) Name() string { return a.name }

// Len returns the element count.
func (a *Array) Len() int { return len(a.vals) }

// ElemAddr returns the stable virtual address of element i.
func (a *Array) ElemAddr(i int) uint64 { return a.base + 8*uint64(i) }

// Load reads element i at a scheduling point.
func (a *Array) Load(t *sched.Thread, i int) uint64 {
	var v uint64
	t.Point(&sched.Op{
		Kind: trace.KindLoad,
		Obj:  a.ElemAddr(i),
		Desc: "load " + a.name,
		Effect: func(ctx *sched.EffectCtx) {
			v = a.vals[i]
			ctx.Ev.Arg = v
		},
	})
	return v
}

// Store writes element i at a scheduling point.
func (a *Array) Store(t *sched.Thread, i int, v uint64) {
	t.Point(&sched.Op{
		Kind:   trace.KindStore,
		Obj:    a.ElemAddr(i),
		Arg:    v,
		Desc:   "store " + a.name,
		Effect: func(*sched.EffectCtx) { a.vals[i] = v },
	})
}

// Add atomically adds delta to element i and returns the new value.
func (a *Array) Add(t *sched.Thread, i int, delta uint64) uint64 {
	var v uint64
	t.Point(&sched.Op{
		Kind: trace.KindRMW,
		Obj:  a.ElemAddr(i),
		Arg:  delta,
		Desc: "add " + a.name,
		Effect: func(ctx *sched.EffectCtx) {
			a.vals[i] += delta
			v = a.vals[i]
		},
	})
	return v
}

// LoadOp returns the scheduling-point op Load performs on element i,
// for declaring straight-line runs with Thread.PointBatch; f, when
// non-nil, receives the loaded value at commit time.
func (a *Array) LoadOp(i int, f func(uint64)) *sched.Op {
	return &sched.Op{
		Kind: trace.KindLoad,
		Obj:  a.ElemAddr(i),
		Desc: "load " + a.name,
		Effect: func(ctx *sched.EffectCtx) {
			v := a.vals[i]
			ctx.Ev.Arg = v
			if f != nil {
				f(v)
			}
		},
	}
}

// StoreOp returns the scheduling-point op Store performs on element i,
// for declaring straight-line runs with Thread.PointBatch.
func (a *Array) StoreOp(i int, v uint64) *sched.Op {
	return &sched.Op{
		Kind:   trace.KindStore,
		Obj:    a.ElemAddr(i),
		Arg:    v,
		Desc:   "store " + a.name,
		Effect: func(*sched.EffectCtx) { a.vals[i] = v },
	}
}

// StoreOpFn is StoreOp with the value computed at commit time (e.g.,
// from values earlier ops of the same batch loaded); the committed
// event's Arg carries the computed value.
func (a *Array) StoreOpFn(i int, f func() uint64) *sched.Op {
	return &sched.Op{
		Kind: trace.KindStore,
		Obj:  a.ElemAddr(i),
		Desc: "store " + a.name,
		Effect: func(ctx *sched.EffectCtx) {
			v := f()
			a.vals[i] = v
			ctx.Ev.Arg = v
		},
	}
}

// Peek reads element i without a scheduling point (oracle/setup only).
func (a *Array) Peek(i int) uint64 { return a.vals[i] }

// Poke writes element i without a scheduling point (oracle/setup only).
func (a *Array) Poke(i int, v uint64) { a.vals[i] = v }

// Matrix is a shared 2-dimensional array of 64-bit words in row-major
// layout, for the scientific kernels. Element (r,c) lives at
// Addr(name)+8*(r*cols+c).
type Matrix struct {
	name string
	arr  *Array
	cols int
}

// NewMatrix allocates a zeroed rows x cols shared matrix.
func NewMatrix(name string, rows, cols int) *Matrix {
	return &Matrix{name: name, arr: NewArray(name, rows*cols), cols: cols}
}

// Rows returns the row count.
func (m *Matrix) Rows() int { return m.arr.Len() / m.cols }

// Cols returns the column count.
func (m *Matrix) Cols() int { return m.cols }

// Load reads element (r,c) at a scheduling point.
func (m *Matrix) Load(t *sched.Thread, r, c int) uint64 {
	return m.arr.Load(t, r*m.cols+c)
}

// Store writes element (r,c) at a scheduling point.
func (m *Matrix) Store(t *sched.Thread, r, c int, v uint64) {
	m.arr.Store(t, r*m.cols+c, v)
}

// LoadOp returns the scheduling-point op Load performs on (r,c), for
// declaring straight-line runs with Thread.PointBatch.
func (m *Matrix) LoadOp(r, c int, f func(uint64)) *sched.Op {
	return m.arr.LoadOp(r*m.cols+c, f)
}

// StoreOp returns the scheduling-point op Store performs on (r,c), for
// declaring straight-line runs with Thread.PointBatch.
func (m *Matrix) StoreOp(r, c int, v uint64) *sched.Op {
	return m.arr.StoreOp(r*m.cols+c, v)
}

// StoreOpFn is StoreOp with the value computed at commit time.
func (m *Matrix) StoreOpFn(r, c int, f func() uint64) *sched.Op {
	return m.arr.StoreOpFn(r*m.cols+c, f)
}

// Peek reads element (r,c) without a scheduling point (oracle/setup
// only).
func (m *Matrix) Peek(r, c int) uint64 { return m.arr.Peek(r*m.cols + c) }

// Poke writes element (r,c) without a scheduling point (oracle/setup
// only).
func (m *Matrix) Poke(r, c int, v uint64) { m.arr.Poke(r*m.cols+c, v) }
