package mem

import "sync"

// The address registry maps stable virtual addresses back to the
// variable names that produced them, so diagnostics (race pairs, root
// causes) can name program variables instead of printing hashes. It is
// process-global metadata — simulation state never lives here — and is
// guarded by a host lock because independent executions may allocate
// concurrently (e.g., parallel replay attempts).
var (
	nameMu  sync.RWMutex
	names   = map[uint64]string{}
	maxSpan = map[uint64]int{} // array base -> element count
)

func registerName(addr uint64, name string) {
	nameMu.Lock()
	names[addr] = name
	nameMu.Unlock()
}

func registerSpan(base uint64, name string, n int) {
	nameMu.Lock()
	names[base] = name
	if n > maxSpan[base] {
		maxSpan[base] = n
	}
	nameMu.Unlock()
}

// NameOf resolves an address to its variable name: exact cell matches
// first, then array elements as "name[i]". Unknown addresses render as
// hex.
func NameOf(addr uint64) string {
	nameMu.RLock()
	defer nameMu.RUnlock()
	if n, ok := names[addr]; ok {
		return n
	}
	// Array element: scan registered spans. The registry is small (one
	// entry per named variable), so the linear scan is immaterial.
	for base, n := range maxSpan {
		if addr > base && addr < base+8*uint64(n) && (addr-base)%8 == 0 {
			return names[base] + indexSuffix(int((addr-base)/8))
		}
	}
	return hexAddr(addr)
}

func indexSuffix(i int) string {
	return "[" + itoa(i) + "]"
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

func hexAddr(addr uint64) string {
	const digits = "0123456789abcdef"
	var b [18]byte
	b[0], b[1] = '0', 'x'
	for i := 0; i < 16; i++ {
		b[17-i] = digits[addr&0xf]
		addr >>= 4
	}
	return string(b[:])
}
