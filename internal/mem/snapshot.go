package mem

// Checkpoint support: cells, arrays and matrices can capture and
// re-establish their values without scheduling points. Like Peek/Poke,
// these never appear in the event stream — they are for checkpoint
// capture at scheduler quiescent points (epoch seals) and for test
// oracles, never for application logic.

// Snapshot captures the cell's current value.
func (c *Cell) Snapshot() uint64 { return c.val }

// Restore re-establishes a snapshotted value.
func (c *Cell) Restore(v uint64) { c.val = v }

// Snapshot captures the array's current values.
func (a *Array) Snapshot() []uint64 {
	return append([]uint64(nil), a.vals...)
}

// Restore re-establishes snapshotted values; the snapshot must have
// the array's length (shorter/longer snapshots restore the overlap).
func (a *Array) Restore(vals []uint64) {
	copy(a.vals, vals)
}

// Snapshot captures the matrix's current values in row-major order.
func (m *Matrix) Snapshot() []uint64 { return m.arr.Snapshot() }

// Restore re-establishes snapshotted row-major values.
func (m *Matrix) Restore(vals []uint64) { m.arr.Restore(vals) }
