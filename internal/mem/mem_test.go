package mem

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/trace"
)

type collector struct{ evs []trace.Event }

func (c *collector) OnEvent(ev trace.Event) uint64 {
	c.evs = append(c.evs, ev)
	return 0
}

func runL(t *testing.T, root func(*sched.Thread)) (*sched.Result, *collector) {
	t.Helper()
	c := &collector{}
	res := sched.Run(root, sched.Config{Strategy: sched.Lowest{}, Observers: []sched.Observer{c}})
	return res, c
}

func TestCellLoadStore(t *testing.T) {
	res, c := runL(t, func(th *sched.Thread) {
		x := NewCell("x", 5)
		if got := x.Load(th); got != 5 {
			th.Fail("t", "load = %d, want 5", got)
		}
		x.Store(th, 9)
		if got := x.Load(th); got != 9 {
			th.Fail("t", "load = %d, want 9", got)
		}
	})
	if res.Failure != nil {
		t.Fatal(res.Failure)
	}
	// Events carry the observed/stored values in Arg.
	var vals []uint64
	for _, ev := range c.evs {
		if ev.Kind.IsMemory() {
			vals = append(vals, ev.Arg)
		}
	}
	want := []uint64{5, 9, 9}
	if len(vals) != len(want) {
		t.Fatalf("memory events = %d, want %d", len(vals), len(want))
	}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("event %d Arg = %d, want %d", i, vals[i], want[i])
		}
	}
}

func TestCellAdd(t *testing.T) {
	res, _ := runL(t, func(th *sched.Thread) {
		x := NewCell("x", 10)
		if got := x.Add(th, 5); got != 15 {
			th.Fail("t", "add = %d", got)
		}
		// Negative delta via two's complement.
		if got := x.Add(th, ^uint64(0)); got != 14 {
			th.Fail("t", "add -1 = %d", got)
		}
	})
	if res.Failure != nil {
		t.Fatal(res.Failure)
	}
}

func TestCellCAS(t *testing.T) {
	res, _ := runL(t, func(th *sched.Thread) {
		x := NewCell("x", 1)
		if !x.CAS(th, 1, 2) {
			th.Fail("t", "CAS(1,2) on 1 failed")
		}
		if x.CAS(th, 1, 3) {
			th.Fail("t", "CAS(1,3) on 2 succeeded")
		}
		if x.Peek() != 2 {
			th.Fail("t", "value = %d", x.Peek())
		}
	})
	if res.Failure != nil {
		t.Fatal(res.Failure)
	}
}

func TestAddrStability(t *testing.T) {
	a := NewCell("same", 0)
	b := NewCell("same", 0)
	if a.Addr() != b.Addr() {
		t.Fatal("same name must map to same address")
	}
	if NewCell("other", 0).Addr() == a.Addr() {
		t.Fatal("different names collided")
	}
}

func TestArrayElemAddrs(t *testing.T) {
	a := NewArray("arr", 4)
	if a.Len() != 4 {
		t.Fatalf("len = %d", a.Len())
	}
	seen := map[uint64]bool{}
	for i := 0; i < 4; i++ {
		addr := a.ElemAddr(i)
		if seen[addr] {
			t.Fatalf("duplicate element address %#x", addr)
		}
		seen[addr] = true
	}
	if a.ElemAddr(1) != a.ElemAddr(0)+8 {
		t.Fatal("elements not 8 bytes apart")
	}
}

func TestArrayOps(t *testing.T) {
	res, _ := runL(t, func(th *sched.Thread) {
		a := NewArray("a", 3)
		a.Store(th, 0, 7)
		a.Store(th, 2, 9)
		if a.Load(th, 0) != 7 || a.Load(th, 1) != 0 || a.Load(th, 2) != 9 {
			th.Fail("t", "array contents wrong")
		}
		if a.Add(th, 1, 4) != 4 {
			th.Fail("t", "array add wrong")
		}
	})
	if res.Failure != nil {
		t.Fatal(res.Failure)
	}
}

func TestRacyCounterLosesUpdates(t *testing.T) {
	// The canonical unprotected load+store counter must be able to lose
	// updates under some schedule — this is the non-determinism PRES
	// exists to reproduce. Find at least one losing seed.
	lost := false
	for seed := int64(0); seed < 40 && !lost; seed++ {
		var final uint64
		res := sched.Run(func(th *sched.Thread) {
			x := NewCell("ctr", 0)
			var ts []*sched.Thread
			for i := 0; i < 2; i++ {
				ts = append(ts, th.Spawn("w", func(ct *sched.Thread) {
					for j := 0; j < 10; j++ {
						v := x.Load(ct)
						x.Store(ct, v+1)
					}
				}))
			}
			for _, h := range ts {
				th.Join(h)
			}
			final = x.Peek()
		}, sched.Config{Strategy: sched.NewRandomMP(4, 0.1, seed)})
		if res.Failure != nil {
			t.Fatal(res.Failure)
		}
		if final < 20 {
			lost = true
		}
	}
	if !lost {
		t.Fatal("no schedule lost an update in 40 seeds; interleaving model too weak")
	}
}

func TestAtomicAddNeverLoses(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		var final uint64
		res := sched.Run(func(th *sched.Thread) {
			x := NewCell("ctr", 0)
			var ts []*sched.Thread
			for i := 0; i < 2; i++ {
				ts = append(ts, th.Spawn("w", func(ct *sched.Thread) {
					for j := 0; j < 10; j++ {
						x.Add(ct, 1)
					}
				}))
			}
			for _, h := range ts {
				th.Join(h)
			}
			final = x.Peek()
		}, sched.Config{Strategy: sched.NewRandomMP(4, 0.1, seed)})
		if res.Failure != nil {
			t.Fatal(res.Failure)
		}
		if final != 20 {
			t.Fatalf("seed %d: atomic counter = %d, want 20", seed, final)
		}
	}
}

func TestMatrixOps(t *testing.T) {
	res, _ := runL(t, func(th *sched.Thread) {
		m := NewMatrix("mat", 3, 4)
		if m.Rows() != 3 || m.Cols() != 4 {
			th.Fail("t", "shape %dx%d", m.Rows(), m.Cols())
		}
		m.Store(th, 1, 2, 42)
		if m.Load(th, 1, 2) != 42 {
			th.Fail("t", "load wrong")
		}
		if m.Load(th, 2, 1) != 0 {
			th.Fail("t", "untouched cell nonzero")
		}
	})
	if res.Failure != nil {
		t.Fatal(res.Failure)
	}
}

func TestMatrixPeekPoke(t *testing.T) {
	m := NewMatrix("mat2", 2, 2)
	m.Poke(0, 1, 7)
	if m.Peek(0, 1) != 7 || m.Peek(1, 0) != 0 {
		t.Fatal("peek/poke broken")
	}
}

func TestMatrixAddressing(t *testing.T) {
	// Row-major layout shares the array's element addressing.
	m := NewMatrix("mat3", 2, 3)
	a := NewArray("mat3", 6)
	for r := 0; r < 2; r++ {
		for c := 0; c < 3; c++ {
			m.Poke(r, c, uint64(r*3+c))
		}
	}
	_ = a
	if m.Peek(1, 2) != 5 {
		t.Fatal("row-major addressing broken")
	}
}

func TestNameOf(t *testing.T) {
	c := NewCell("names.cell", 0)
	if NameOf(c.Addr()) != "names.cell" {
		t.Fatalf("NameOf(cell) = %q", NameOf(c.Addr()))
	}
	a := NewArray("names.arr", 8)
	if NameOf(a.ElemAddr(0)) != "names.arr" {
		t.Fatalf("NameOf(arr[0]) = %q", NameOf(a.ElemAddr(0)))
	}
	if NameOf(a.ElemAddr(3)) != "names.arr[3]" {
		t.Fatalf("NameOf(arr[3]) = %q", NameOf(a.ElemAddr(3)))
	}
	if got := NameOf(0x1234); got != "0x0000000000001234" {
		t.Fatalf("NameOf(unknown) = %q", got)
	}
	m := NewMatrix("names.mat", 2, 3)
	_ = m
	if NameOf(Addr("names.mat")+8*4) != "names.mat[4]" {
		t.Fatal("matrix elements should resolve through the array span")
	}
}
