package sched

import (
	"fmt"

	"repro/internal/trace"
)

// ExploreOptions bounds an exhaustive schedule exploration.
type ExploreOptions struct {
	// MaxRuns bounds the number of executions; 0 means DefaultMaxRuns.
	MaxRuns int
	// MaxSteps bounds each execution; 0 means DefaultMaxSteps.
	MaxSteps uint64
	// StopAtFirstFailure ends the exploration at the first failing
	// schedule instead of enumerating all of them.
	StopAtFirstFailure bool
}

// DefaultMaxRuns bounds Explore when ExploreOptions leaves MaxRuns zero.
const DefaultMaxRuns = 100_000

// ExploreResult summarizes an exhaustive exploration.
type ExploreResult struct {
	// Runs is the number of schedules executed.
	Runs int
	// Complete reports whether the whole schedule space was covered
	// (false if MaxRuns cut the enumeration short).
	Complete bool
	// Failures holds one failure per distinct failing schedule, capped
	// at 32; FailureCount counts them all.
	Failures     []*Failure
	FailureCount int
	// FirstFailingSchedule is the decision sequence of the first failing
	// schedule found (replayable by construction).
	FirstFailingSchedule []int
}

// exploreStrategy replays a prefix of decisions and takes the first
// candidate beyond it, recording the fan-out at every step so the
// enumerator can backtrack.
type exploreStrategy struct {
	prefix []int
	widths []int
	taken  []int
}

func (s *exploreStrategy) Pick(view *PickView) (trace.TID, bool) {
	step := len(s.widths)
	choice := 0
	if step < len(s.prefix) {
		choice = s.prefix[step]
	}
	if choice >= len(view.Candidates) {
		// The program is not schedule-deterministic in its fan-out;
		// clamp rather than crash (the run is still a valid schedule).
		choice = len(view.Candidates) - 1
	}
	s.widths = append(s.widths, len(view.Candidates))
	s.taken = append(s.taken, choice)
	return view.Candidates[choice].TID, true
}

// Explore exhaustively enumerates the schedules of root — a stateless
// model checker over the same substrate PRES records and replays on.
// Every scheduling decision point is branched on, depth-first, so for
// programs whose space fits in MaxRuns the result is a *proof*: zero
// failures means no schedule of the program can fail.
//
// This is the brute-force contrast to PRES's point: exhaustive
// enumeration explodes combinatorially (it is only feasible for tiny
// programs), while sketch-guided probabilistic replay reproduces bugs
// in large ones within a handful of attempts. It also serves as ground
// truth in this repository's tests: the corpus's patched variants are
// verified over full schedule spaces at small scales.
func Explore(root func(*Thread), opts ExploreOptions) *ExploreResult {
	if opts.MaxRuns <= 0 {
		opts.MaxRuns = DefaultMaxRuns
	}
	res := &ExploreResult{Complete: true}
	prefix := []int{}
	for {
		if res.Runs >= opts.MaxRuns {
			res.Complete = false
			return res
		}
		strat := &exploreStrategy{prefix: prefix}
		out := Run(root, Config{Strategy: strat, MaxSteps: opts.MaxSteps})
		res.Runs++
		if out.Failure != nil {
			res.FailureCount++
			if len(res.Failures) < 32 {
				res.Failures = append(res.Failures, out.Failure)
			}
			if res.FirstFailingSchedule == nil {
				res.FirstFailingSchedule = append([]int(nil), strat.taken...)
			}
			if opts.StopAtFirstFailure {
				return res
			}
		}

		// Backtrack: advance the deepest decision that still has an
		// untried sibling; exhausted when none remains.
		next := advance(strat.taken, strat.widths)
		if next == nil {
			return res
		}
		prefix = next
	}
}

// advance returns the next decision prefix in depth-first order, or nil
// when the space is exhausted.
func advance(taken []int, widths []int) []int {
	for i := len(taken) - 1; i >= 0; i-- {
		if taken[i]+1 < widths[i] {
			next := append([]int(nil), taken[:i+1]...)
			next[i]++
			return next
		}
	}
	return nil
}

// ReplaySchedule re-executes root under a decision sequence returned by
// Explore (e.g., FirstFailingSchedule).
func ReplaySchedule(root func(*Thread), schedule []int, maxSteps uint64) *Result {
	return Run(root, Config{Strategy: &exploreStrategy{prefix: schedule}, MaxSteps: maxSteps})
}

// String renders the result compactly.
func (r *ExploreResult) String() string {
	status := "complete"
	if !r.Complete {
		status = "truncated"
	}
	return fmt.Sprintf("explored %d schedules (%s): %d failing", r.Runs, status, r.FailureCount)
}
