package sched

import (
	"math/rand"

	"repro/internal/trace"
)

// Lowest is the trivial strategy: always run the runnable thread with
// the smallest id. Useful in tests and as a deterministic baseline.
type Lowest struct{}

// Pick implements Strategy.
func (Lowest) Pick(view *PickView) (trace.TID, bool) {
	return view.Candidates[0].TID, true
}

// RandomMP models execution on P processors — the production-run
// environment of the paper — with *time-weighted* scheduling: each
// thread accumulates virtual time equal to the cost of the operations
// it executes (with a little random jitter standing in for cache
// misses, interrupts and frequency wobble), and among the threads
// currently on a processor the one furthest behind runs next.
//
// Time weighting is what gives race windows realistic odds: a thread
// spends most of its time inside long straight-line regions, so the
// chance that another processor's access lands inside a handful-of-
// instructions window is the window's share of wall time — small — and
// concurrency bugs manifest rarely, exactly as in production. (A
// uniform per-event scheduler would hit every window almost every run.)
//
// Threads beyond the processor count wait off-CPU; a thread joins a
// processor when one frees up (its wait time is charged so it rejoins
// at "now"), and timeslice preemption occasionally rotates waiting
// threads in. Given the same seed and program, the schedule is fully
// deterministic.
//
// RandomMP implements RunGranter: when the picked thread has declared a
// straight-line batch (Candidate.Run > 1) the whole batch is granted as
// one run — a batch models uninterrupted straight-line execution on one
// processor, during which no cross-CPU scheduling event can land anyway.
// Each op of the run is charged exactly the virtual time (speed x
// per-op jitter) a sequence of single-step picks would have charged, and
// no dispatch/preemption rolls happen mid-run, so fast-path and
// single-step modes consume identical rng streams and commit identical
// schedules. All bookkeeping is indexed by dense TID.
type RandomMP struct {
	P       int     // processor count (>=1)
	Preempt float64 // per-point preemption probability, e.g. 0.02
	Seed    int64

	rng *rand.Rand
	// Dense per-TID state. speed 0 means "not yet drawn" (real factors
	// lie in [0.75, 1.25], so 0 is a safe sentinel).
	vt    []float64
	speed []float64
	onCPU []bool

	// Reused pick-round scratch.
	inView  []bool
	running []Candidate
	waiting []Candidate

	// Run continuation: set when a full pick round grants a batch run.
	// In fast-path mode the scheduler drains it through ObserveStep; in
	// single-step mode Pick itself drains it, charging each op without
	// fresh dispatch rolls — the same draws either way.
	runTID  trace.TID
	runLeft int
}

// NewRandomMP returns a production-run strategy for p processors.
func NewRandomMP(p int, preempt float64, seed int64) *RandomMP {
	if p < 1 {
		p = 1
	}
	return &RandomMP{
		P:       p,
		Preempt: preempt,
		Seed:    seed,
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// grow extends the per-TID tables to cover tid.
func (s *RandomMP) grow(tid trace.TID) {
	for int(tid) >= len(s.vt) {
		s.vt = append(s.vt, 0)
		s.speed = append(s.speed, 0)
		s.onCPU = append(s.onCPU, false)
		s.inView = append(s.inView, false)
	}
}

// charge advances tid's virtual time by one op of the given cost: the
// thread's per-run speed factor (drawn on first use) times ±15% per-op
// jitter. This is the only rng consumption during a run, shared by the
// full pick round, the single-step continuation branch and ObserveStep.
func (s *RandomMP) charge(tid trace.TID, cost uint64) {
	sp := s.speed[tid]
	if sp == 0 {
		sp = 0.75 + 0.5*s.rng.Float64()
		s.speed[tid] = sp
	}
	jitter := 0.85 + 0.3*s.rng.Float64()
	s.vt[tid] += float64(cost) * sp * jitter
}

// Pick implements Strategy.
func (s *RandomMP) Pick(view *PickView) (trace.TID, bool) {
	if s.rng == nil { // zero-value usability for tests
		if s.P < 1 {
			s.P = 1
		}
		s.rng = rand.New(rand.NewSource(s.Seed))
	}
	if n := len(view.Candidates); n > 0 {
		s.grow(view.Candidates[n-1].TID) // candidates are TID-sorted
	}

	// Run continuation (single-step mode): the previous full round
	// granted a batch run; keep charging its ops without fresh dispatch
	// or preemption rolls, exactly as ObserveStep does on the fast path.
	if s.runLeft > 0 {
		if c, ok := view.Find(s.runTID); ok {
			s.runLeft--
			s.charge(c.TID, c.Cost)
			return c.TID, true
		}
		s.runLeft = 0 // run ended early; resume full rounds
	}

	// A blocked, asleep or exited thread releases its processor (and
	// will pay the wake-up latency to get one back); the on-CPU set is
	// the runnable threads that held a processor last round, in
	// candidate (tid) order for determinism.
	for i := range s.inView {
		s.inView[i] = false
	}
	for _, c := range view.Candidates {
		s.inView[c.TID] = true
	}
	for tid := range s.onCPU {
		if s.onCPU[tid] && !s.inView[tid] {
			s.onCPU[tid] = false
		}
	}
	running := s.running[:0]
	waiting := s.waiting[:0]
	for _, c := range view.Candidates {
		if s.onCPU[c.TID] {
			running = append(running, c)
		} else {
			waiting = append(waiting, c)
		}
	}

	// Fill free processors with the furthest-behind waiting threads. A
	// thread that was off-CPU rejoins at the current virtual "now" plus
	// a randomized wake-up latency — the dispatch delay a real kernel
	// adds, and the main source of alignment noise between a waker and
	// the woken.
	now := 0.0
	for _, c := range running {
		if s.vt[c.TID] > now {
			now = s.vt[c.TID]
		}
	}
	for len(running) < s.P && len(waiting) > 0 {
		i := s.minVT(waiting)
		c := waiting[i]
		waiting = append(waiting[:i], waiting[i+1:]...)
		wake := now + wakeLatency*s.rng.Float64()
		if s.vt[c.TID] < wake {
			s.vt[c.TID] = wake
		}
		s.onCPU[c.TID] = true
		running = append(running, c)
	}

	// Timeslice preemption: occasionally rotate a waiting thread in for
	// the thread that has consumed the most time.
	if len(waiting) > 0 && s.Preempt > 0 && s.rng.Float64() < s.Preempt {
		vi := s.maxVT(running)
		wi := s.minVT(waiting)
		victim, incoming := running[vi], waiting[wi]
		s.onCPU[victim.TID] = false
		s.onCPU[incoming.TID] = true
		if s.vt[incoming.TID] < s.vt[victim.TID] {
			s.vt[incoming.TID] = s.vt[victim.TID]
		}
		running[vi] = incoming
	}
	s.running, s.waiting = running[:0], waiting[:0] // return scratch

	// The thread furthest behind in virtual time executes next. Its op
	// costs its duration scaled by the thread's per-run speed factor —
	// cache state, co-runners and frequency make otherwise identical
	// threads drift apart by tens of percent on real hardware, and that
	// drift is what varies the alignment of race windows from run to
	// run — plus ±15% per-op jitter.
	i := s.minVT(running)
	choice := running[i]
	s.charge(choice.TID, choice.Cost)
	if choice.Run > 1 {
		s.runTID = choice.TID
		s.runLeft = choice.Run - 1
	}
	return choice.TID, true
}

// RunBudget implements RunGranter: the picked thread's declared batch is
// granted whole (Pick just primed the continuation from Candidate.Run).
func (s *RandomMP) RunBudget(view *PickView, tid trace.TID) int {
	if tid == s.runTID && s.runLeft > 0 {
		return 1 + s.runLeft
	}
	return 1
}

// ObserveStep implements RunGranter: charge one run op's virtual time,
// mirroring the single-step continuation branch of Pick draw for draw.
func (s *RandomMP) ObserveStep(tid trace.TID, cost uint64) {
	if s.runLeft > 0 {
		s.runLeft--
	}
	s.charge(tid, cost)
}

// wakeLatency bounds the randomized dispatch delay (in cost units, see
// trace.CostUnit) a thread pays when it rejoins a processor — roughly a
// microsecond-scale kernel wakeup against ten-nanosecond-scale accesses.
const wakeLatency = 1500

func (s *RandomMP) minVT(cs []Candidate) int {
	best := 0
	for i := 1; i < len(cs); i++ {
		if s.vt[cs[i].TID] < s.vt[cs[best].TID] {
			best = i
		}
	}
	return best
}

func (s *RandomMP) maxVT(cs []Candidate) int {
	best := 0
	for i := 1; i < len(cs); i++ {
		if s.vt[cs[i].TID] > s.vt[cs[best].TID] {
			best = i
		}
	}
	return best
}

// OrderStrategy replays a captured full grant order verbatim. If the
// recorded thread is not runnable at its turn the run diverges — with a
// faithful full order this never happens, which is the paper's
// "reproduce every time" property.
//
// OrderStrategy implements RunGranter: a stretch of consecutive
// same-thread entries in the recorded order is by definition an
// uninterrupted run, so it is granted whole and the cursor advances
// through ObserveStep. Full-order reproduction therefore gets the fast
// path for free without any loss of fidelity.
type OrderStrategy struct {
	Order []trace.TID
	pos   int
}

// Pick implements Strategy.
func (s *OrderStrategy) Pick(view *PickView) (trace.TID, bool) {
	if s.pos >= len(s.Order) {
		return trace.NoTID, false
	}
	tid := s.Order[s.pos]
	if !view.Has(tid) {
		return trace.NoTID, false
	}
	s.pos++
	return tid, true
}

// RunBudget implements RunGranter: the run extends over the recorded
// order's consecutive entries for tid following the one Pick consumed.
func (s *OrderStrategy) RunBudget(view *PickView, tid trace.TID) int {
	n := 1
	for i := s.pos; i < len(s.Order) && s.Order[i] == tid; i++ {
		n++
	}
	return n
}

// ObserveStep implements RunGranter: advance the cursor over the run
// entry the scheduler is about to commit.
func (s *OrderStrategy) ObserveStep(tid trace.TID, cost uint64) {
	if s.pos < len(s.Order) && s.Order[s.pos] == tid {
		s.pos++
	}
}

// Consumed returns how many scheduling decisions have been replayed.
func (s *OrderStrategy) Consumed() int { return s.pos }
