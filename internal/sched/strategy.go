package sched

import (
	"math/rand"

	"repro/internal/trace"
)

// Lowest is the trivial strategy: always run the runnable thread with
// the smallest id. Useful in tests and as a deterministic baseline.
type Lowest struct{}

// Pick implements Strategy.
func (Lowest) Pick(view *PickView) (trace.TID, bool) {
	return view.Candidates[0].TID, true
}

// RandomMP models execution on P processors — the production-run
// environment of the paper — with *time-weighted* scheduling: each
// thread accumulates virtual time equal to the cost of the operations
// it executes (with a little random jitter standing in for cache
// misses, interrupts and frequency wobble), and among the threads
// currently on a processor the one furthest behind runs next.
//
// Time weighting is what gives race windows realistic odds: a thread
// spends most of its time inside long straight-line regions, so the
// chance that another processor's access lands inside a handful-of-
// instructions window is the window's share of wall time — small — and
// concurrency bugs manifest rarely, exactly as in production. (A
// uniform per-event scheduler would hit every window almost every run.)
//
// Threads beyond the processor count wait off-CPU; a thread joins a
// processor when one frees up (its wait time is charged so it rejoins
// at "now"), and timeslice preemption occasionally rotates waiting
// threads in. Given the same seed and program, the schedule is fully
// deterministic.
type RandomMP struct {
	P       int     // processor count (>=1)
	Preempt float64 // per-point preemption probability, e.g. 0.02
	Seed    int64

	rng   *rand.Rand
	vt    map[trace.TID]float64
	speed map[trace.TID]float64
	onCPU map[trace.TID]bool
}

// NewRandomMP returns a production-run strategy for p processors.
func NewRandomMP(p int, preempt float64, seed int64) *RandomMP {
	if p < 1 {
		p = 1
	}
	return &RandomMP{
		P:       p,
		Preempt: preempt,
		Seed:    seed,
		rng:     rand.New(rand.NewSource(seed)),
		vt:      make(map[trace.TID]float64),
		speed:   make(map[trace.TID]float64),
		onCPU:   make(map[trace.TID]bool),
	}
}

// Pick implements Strategy.
func (s *RandomMP) Pick(view *PickView) (trace.TID, bool) {
	if s.rng == nil { // zero-value usability for tests
		if s.P < 1 {
			s.P = 1
		}
		s.rng = rand.New(rand.NewSource(s.Seed))
		s.vt = make(map[trace.TID]float64)
		s.speed = make(map[trace.TID]float64)
		s.onCPU = make(map[trace.TID]bool)
	}

	// A blocked, asleep or exited thread releases its processor (and
	// will pay the wake-up latency to get one back); the on-CPU set is
	// the runnable threads that held a processor last round, in
	// candidate (tid) order for determinism.
	inView := make(map[trace.TID]bool, len(view.Candidates))
	for _, c := range view.Candidates {
		inView[c.TID] = true
	}
	for tid := range s.onCPU {
		if !inView[tid] {
			delete(s.onCPU, tid)
		}
	}
	var running []Candidate
	var waiting []Candidate
	for _, c := range view.Candidates {
		if s.onCPU[c.TID] {
			running = append(running, c)
		} else {
			waiting = append(waiting, c)
		}
	}

	// Fill free processors with the furthest-behind waiting threads. A
	// thread that was off-CPU rejoins at the current virtual "now" plus
	// a randomized wake-up latency — the dispatch delay a real kernel
	// adds, and the main source of alignment noise between a waker and
	// the woken.
	now := 0.0
	for _, c := range running {
		if s.vt[c.TID] > now {
			now = s.vt[c.TID]
		}
	}
	for len(running) < s.P && len(waiting) > 0 {
		i := s.minVT(waiting)
		c := waiting[i]
		waiting = append(waiting[:i], waiting[i+1:]...)
		wake := now + wakeLatency*s.rng.Float64()
		if s.vt[c.TID] < wake {
			s.vt[c.TID] = wake
		}
		s.onCPU[c.TID] = true
		running = append(running, c)
	}

	// Timeslice preemption: occasionally rotate a waiting thread in for
	// the thread that has consumed the most time.
	if len(waiting) > 0 && s.Preempt > 0 && s.rng.Float64() < s.Preempt {
		vi := s.maxVT(running)
		wi := s.minVT(waiting)
		victim, incoming := running[vi], waiting[wi]
		delete(s.onCPU, victim.TID)
		s.onCPU[incoming.TID] = true
		if s.vt[incoming.TID] < s.vt[victim.TID] {
			s.vt[incoming.TID] = s.vt[victim.TID]
		}
		running[vi] = incoming
	}

	// The thread furthest behind in virtual time executes next. Its op
	// costs its duration scaled by the thread's per-run speed factor —
	// cache state, co-runners and frequency make otherwise identical
	// threads drift apart by tens of percent on real hardware, and that
	// drift is what varies the alignment of race windows from run to
	// run — plus ±15% per-op jitter.
	i := s.minVT(running)
	choice := running[i]
	sp, ok := s.speed[choice.TID]
	if !ok {
		sp = 0.75 + 0.5*s.rng.Float64()
		s.speed[choice.TID] = sp
	}
	jitter := 0.85 + 0.3*s.rng.Float64()
	s.vt[choice.TID] += float64(choice.Cost) * sp * jitter
	return choice.TID, true
}

// wakeLatency bounds the randomized dispatch delay (in cost units, see
// trace.CostUnit) a thread pays when it rejoins a processor — roughly a
// microsecond-scale kernel wakeup against ten-nanosecond-scale accesses.
const wakeLatency = 1500

func (s *RandomMP) minVT(cs []Candidate) int {
	best := 0
	for i := 1; i < len(cs); i++ {
		if s.vt[cs[i].TID] < s.vt[cs[best].TID] {
			best = i
		}
	}
	return best
}

func (s *RandomMP) maxVT(cs []Candidate) int {
	best := 0
	for i := 1; i < len(cs); i++ {
		if s.vt[cs[i].TID] > s.vt[cs[best].TID] {
			best = i
		}
	}
	return best
}

// OrderStrategy replays a captured full grant order verbatim. If the
// recorded thread is not runnable at its turn the run diverges — with a
// faithful full order this never happens, which is the paper's
// "reproduce every time" property.
type OrderStrategy struct {
	Order []trace.TID
	pos   int
}

// Pick implements Strategy.
func (s *OrderStrategy) Pick(view *PickView) (trace.TID, bool) {
	if s.pos >= len(s.Order) {
		return trace.NoTID, false
	}
	tid := s.Order[s.pos]
	if !view.Has(tid) {
		return trace.NoTID, false
	}
	s.pos++
	return tid, true
}

// Consumed returns how many scheduling decisions have been replayed.
func (s *OrderStrategy) Consumed() int { return s.pos }
