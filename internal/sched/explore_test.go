package sched

import (
	"testing"

	"repro/internal/trace"
)

// twoStep runs two threads doing n unsynchronized scheduling points
// each; its schedule space is small and known.
func twoStep(n int, body func(*Thread, int)) func(*Thread) {
	return func(th *Thread) {
		a := th.Spawn("a", func(t *Thread) {
			for i := 0; i < n; i++ {
				body(t, i)
			}
		})
		b := th.Spawn("b", func(t *Thread) {
			for i := 0; i < n; i++ {
				body(t, i)
			}
		})
		th.Join(a)
		th.Join(b)
	}
}

func TestExploreCompletesCleanProgram(t *testing.T) {
	res := Explore(twoStep(2, func(t *Thread, i int) { t.Yield() }), ExploreOptions{})
	if !res.Complete {
		t.Fatal("small space should enumerate completely")
	}
	if res.FailureCount != 0 {
		t.Fatalf("clean program had %d failing schedules", res.FailureCount)
	}
	// Interleavings of two 4-op threads plus main's ops: more than a
	// handful, far fewer than the budget.
	if res.Runs < 6 {
		t.Fatalf("suspiciously few schedules: %d", res.Runs)
	}
}

func TestExploreFindsEveryFailingSchedule(t *testing.T) {
	// x starts 0; thread a stores 1; thread b fails iff it reads 1
	// before a's store... reversed: b fails iff it reads 0 *after*
	// being scheduled first. Count must match hand analysis: b's load
	// fails iff it executes before a's store.
	root := func(th *Thread) {
		x := 0
		a := th.Spawn("a", func(t *Thread) {
			t.Point(&Op{Kind: trace.KindStore, Obj: 1, Effect: func(*EffectCtx) { x = 1 }})
		})
		b := th.Spawn("b", func(t *Thread) {
			var v int
			t.Point(&Op{Kind: trace.KindLoad, Obj: 1, Effect: func(*EffectCtx) { v = x }})
			t.Check(v == 1, "saw-zero", "b read before a wrote")
		})
		th.Join(a)
		th.Join(b)
	}
	res := Explore(root, ExploreOptions{})
	if !res.Complete {
		t.Fatal("space should enumerate completely")
	}
	if res.FailureCount == 0 {
		t.Fatal("the race must fail under some schedule")
	}
	if res.FailureCount >= res.Runs {
		t.Fatal("the race must also pass under some schedule")
	}
	if res.FirstFailingSchedule == nil {
		t.Fatal("first failing schedule not captured")
	}
	// The captured schedule replays to the same failure.
	out := ReplaySchedule(root, res.FirstFailingSchedule, 0)
	if out.Failure == nil || out.Failure.BugID != "saw-zero" {
		t.Fatalf("failing schedule did not replay: %v", out.Failure)
	}
}

func TestExploreStopAtFirstFailure(t *testing.T) {
	root := func(th *Thread) {
		x := 0
		a := th.Spawn("a", func(t *Thread) {
			t.Point(&Op{Kind: trace.KindStore, Obj: 1, Effect: func(*EffectCtx) { x = 1 }})
		})
		th.Join(a)
		th.Check(x == 1, "never", "join guarantees the store")
	}
	res := Explore(root, ExploreOptions{StopAtFirstFailure: true})
	if res.FailureCount != 0 {
		t.Fatalf("join-ordered program failed: %v", res.Failures)
	}
}

func TestExploreBudgetTruncates(t *testing.T) {
	res := Explore(twoStep(4, func(t *Thread, i int) { t.Yield() }), ExploreOptions{MaxRuns: 5})
	if res.Complete {
		t.Fatal("budget 5 cannot cover the space")
	}
	if res.Runs != 5 {
		t.Fatalf("runs = %d, want 5", res.Runs)
	}
}

func TestAdvanceEnumeration(t *testing.T) {
	// widths [2,2]: sequences 00,01,10,11 in DFS order.
	seq := []int{0, 0}
	widths := []int{2, 2}
	next := advance(seq, widths)
	if len(next) != 2 || next[0] != 0 || next[1] != 1 {
		t.Fatalf("advance(00) = %v", next)
	}
	next = advance([]int{0, 1}, widths)
	if len(next) != 1 || next[0] != 1 {
		t.Fatalf("advance(01) = %v", next)
	}
	if advance([]int{1, 1}, widths) != nil {
		t.Fatal("advance(11) should exhaust")
	}
}

func TestExploreString(t *testing.T) {
	r := &ExploreResult{Runs: 10, Complete: true, FailureCount: 2}
	if r.String() == "" {
		t.Fatal("empty String()")
	}
}
