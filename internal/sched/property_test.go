package sched

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

// workload builds a deterministic multi-threaded program parameterized
// by a small shape descriptor, for schedule-property tests.
func workload(workers, iters int) func(*Thread) {
	return func(th *Thread) {
		shared := uint64(0)
		var ws []*Thread
		for w := 0; w < workers; w++ {
			ws = append(ws, th.Spawn("w", func(t *Thread) {
				for i := 0; i < iters; i++ {
					t.Point(&Op{Kind: trace.KindLoad, Obj: 0x1, Effect: func(ctx *EffectCtx) { ctx.Ev.Arg = shared }})
					t.Point(&Op{Kind: trace.KindStore, Obj: 0x1, Cost: 50, Effect: func(*EffectCtx) { shared++ }})
				}
			}))
		}
		for _, w := range ws {
			th.Join(w)
		}
	}
}

// TestPropSchedulerDeterministic: identical seeds must yield identical
// event streams for any workload shape.
func TestPropSchedulerDeterministic(t *testing.T) {
	f := func(seed int64, wRaw, iRaw uint8) bool {
		workers := 1 + int(wRaw%4)
		iters := 1 + int(iRaw%5)
		run := func() []trace.Event {
			c := &collector{}
			res := Run(workload(workers, iters), Config{
				Strategy:  NewRandomMP(4, 0.05, seed),
				Observers: []Observer{c},
			})
			if res.Failure != nil {
				return nil
			}
			return c.evs
		}
		a, b := run(), run()
		return a != nil && reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropEventInvariants: over random schedules, global sequence
// numbers are dense and per-thread counters are contiguous per thread.
func TestPropEventInvariants(t *testing.T) {
	f := func(seed int64) bool {
		c := &collector{}
		res := Run(workload(3, 4), Config{
			Strategy:  NewRandomMP(4, 0.1, seed),
			Observers: []Observer{c},
		})
		if res.Failure != nil {
			return false
		}
		perThread := map[trace.TID]uint64{}
		for i, ev := range c.evs {
			if ev.Seq != uint64(i+1) {
				return false
			}
			if ev.TCount != perThread[ev.TID]+1 {
				return false
			}
			perThread[ev.TID] = ev.TCount
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPropFullOrderReplayClosure: the event stream of any run, replayed
// as a full order, reproduces the identical event stream — the fixpoint
// property Reproduce relies on.
func TestPropFullOrderReplayClosure(t *testing.T) {
	f := func(seed int64) bool {
		c := &collector{}
		res := Run(workload(3, 3), Config{
			Strategy:  NewRandomMP(4, 0.1, seed),
			Observers: []Observer{c},
		})
		if res.Failure != nil {
			return false
		}
		order := make([]trace.TID, len(c.evs))
		for i, ev := range c.evs {
			order[i] = ev.TID
		}
		c2 := &collector{}
		res2 := Run(workload(3, 3), Config{
			Strategy:  &OrderStrategy{Order: order},
			Observers: []Observer{c2},
		})
		return res2.Failure == nil && reflect.DeepEqual(c.evs, c2.evs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropBaseCostScheduleInvariant: the base cost of a run is the sum
// of its ops' costs, independent of the schedule that ordered them.
func TestPropBaseCostScheduleInvariant(t *testing.T) {
	ref := Run(workload(3, 4), Config{Strategy: Lowest{}})
	if ref.Failure != nil {
		t.Fatal(ref.Failure)
	}
	f := func(seed int64) bool {
		res := Run(workload(3, 4), Config{Strategy: NewRandomMP(4, 0.1, seed)})
		return res.Failure == nil && res.BaseCost == ref.BaseCost && res.Steps == ref.Steps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropNoLostIncrements: the workload's correctly-sequenced total is
// schedule-independent because each increment is one atomic effect.
func TestPropNoLostIncrements(t *testing.T) {
	f := func(seed int64) bool {
		total := uint64(0)
		res := Run(func(th *Thread) {
			var ws []*Thread
			for w := 0; w < 3; w++ {
				ws = append(ws, th.Spawn("w", func(t *Thread) {
					for i := 0; i < 5; i++ {
						t.Point(&Op{Kind: trace.KindRMW, Obj: 1, Effect: func(*EffectCtx) { total++ }})
					}
				}))
			}
			for _, w := range ws {
				th.Join(w)
			}
		}, Config{Strategy: NewRandomMP(4, 0.2, seed)})
		return res.Failure == nil && total == 15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPropRandomMPUsesSeedStream: two different seeds should (almost
// always) differ somewhere across a batch; catching rng plumbing bugs.
func TestPropRandomMPUsesSeedStream(t *testing.T) {
	base := func(seed int64) []trace.Event {
		c := &collector{}
		Run(workload(3, 6), Config{Strategy: NewRandomMP(4, 0.1, seed), Observers: []Observer{c}})
		return c.evs
	}
	ref := base(0)
	differs := false
	for seed := int64(1); seed <= 12; seed++ {
		if !reflect.DeepEqual(ref, base(seed)) {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("12 seeds produced identical schedules")
	}
}
