package sched

import (
	"fmt"

	"repro/internal/trace"
)

// FailureReason classifies why an execution did not run to completion.
type FailureReason uint8

const (
	// ReasonAssert: an application invariant check failed (Thread.Fail).
	ReasonAssert FailureReason = iota + 1
	// ReasonCrash: an application panicked outside the Fail API.
	ReasonCrash
	// ReasonDeadlock: no thread was runnable while threads remained.
	ReasonDeadlock
	// ReasonStepLimit: the execution exceeded Config.MaxSteps.
	ReasonStepLimit
	// ReasonDiverged: a replay strategy could no longer honor its
	// recorded schedule.
	ReasonDiverged
	// ReasonCancelled: the execution's context (Config.Ctx) was
	// cancelled or its deadline expired; the run was unwound at the next
	// scheduling point. Like ReasonDiverged it is a machinery outcome,
	// never a manifested bug.
	ReasonCancelled
	// reasonStopped is internal: the thread was unwound at shutdown.
	reasonStopped
)

// String names the reason.
func (r FailureReason) String() string {
	switch r {
	case ReasonAssert:
		return "assertion"
	case ReasonCrash:
		return "crash"
	case ReasonDeadlock:
		return "deadlock"
	case ReasonStepLimit:
		return "step-limit"
	case ReasonDiverged:
		return "diverged"
	case ReasonCancelled:
		return "cancelled"
	case reasonStopped:
		return "stopped"
	default:
		return fmt.Sprintf("reason(%d)", uint8(r))
	}
}

// Stuck describes one thread that was blocked when a deadlock was
// detected.
type Stuck struct {
	TID  trace.TID
	Name string
	What string
}

// Failure describes an abnormal end of execution. Failures with
// ReasonAssert, ReasonCrash or ReasonDeadlock represent manifested bugs;
// ReasonDiverged and ReasonStepLimit are replay-machinery outcomes.
type Failure struct {
	Reason FailureReason
	BugID  string // stable bug identity for assertion failures
	TID    trace.TID
	Step   uint64
	Msg    string
	Stuck  []Stuck // populated for deadlocks
	// Cycle is the waits-for cycle behind a deadlock, when the blocked
	// operations expose their holders (ssync primitives do): each
	// thread in the slice waits for the next, and the last waits for
	// the first. Empty when the hang is not a resource cycle (e.g., a
	// lost wakeup).
	Cycle []trace.TID
}

// Error implements the error interface.
func (f *Failure) Error() string {
	if f.BugID != "" {
		return fmt.Sprintf("%s [%s] at step %d (t%d): %s", f.Reason, f.BugID, f.Step, f.TID, f.Msg)
	}
	return fmt.Sprintf("%s at step %d: %s", f.Reason, f.Step, f.Msg)
}

// IsBug reports whether the failure is a manifested application bug (as
// opposed to a replay divergence or budget exhaustion).
func (f *Failure) IsBug() bool {
	switch f.Reason {
	case ReasonAssert, ReasonCrash, ReasonDeadlock:
		return true
	}
	return false
}
