package sched

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/trace"
)

// batchWorkload mixes every grant-protocol shape: declared straight-line
// batches (with and without effects), plain contended ops behind an
// Enabled gate, yields, spawn/join, and a single-threaded tail loop that
// exercises the tight single-candidate path. A final invariant check
// makes some schedules fail, so the equivalence tests also cover failing
// runs.
func batchWorkload(workers, iters int) func(*Thread) {
	return func(th *Thread) {
		shared := uint64(0)
		acc := make([]uint64, workers)
		var mu trace.TID = trace.NoTID // toy mutex holder
		var ws []*Thread
		for w := 0; w < workers; w++ {
			w := w
			ws = append(ws, th.Spawn("w", func(t *Thread) {
				for i := 0; i < iters; i++ {
					// Straight-line compute batch: block marker, two
					// loads folding into thread-local state, one store.
					var a, b uint64
					t.PointBatch(
						&Op{Kind: trace.KindBB, Obj: 0x10, Cost: 120},
						&Op{Kind: trace.KindLoad, Obj: 0x20, Effect: func(ctx *EffectCtx) { a = shared; ctx.Ev.Arg = a }},
						&Op{Kind: trace.KindLoad, Obj: 0x21, Effect: func(ctx *EffectCtx) { b = acc[w]; ctx.Ev.Arg = b }},
						&Op{Kind: trace.KindStore, Obj: 0x21, Cost: 30, Effect: func(ctx *EffectCtx) {
							acc[w] = a + b + 1
							ctx.Ev.Arg = acc[w]
						}},
					)
					// Contended critical section behind an Enabled gate.
					t.Point(&Op{Kind: trace.KindLock, Obj: 0x30,
						Enabled: func() bool { return mu == trace.NoTID },
						Effect:  func(ctx *EffectCtx) { mu = ctx.Self().ID() }})
					t.Point(&Op{Kind: trace.KindLoad, Obj: 0x1, Effect: func(ctx *EffectCtx) { ctx.Ev.Arg = shared }})
					t.Point(&Op{Kind: trace.KindStore, Obj: 0x1, Cost: 50, Effect: func(*EffectCtx) { shared++ }})
					t.Point(&Op{Kind: trace.KindUnlock, Obj: 0x30, Effect: func(*EffectCtx) { mu = trace.NoTID }})
					t.Yield()
				}
			}))
		}
		for _, w := range ws {
			th.Join(w)
		}
		// Single-threaded tail: only one live thread, batches with
		// effects — the tight-loop case.
		total := uint64(0)
		for w := 0; w < workers; w++ {
			w := w
			th.PointBatch(
				&Op{Kind: trace.KindBB, Obj: 0x11, Cost: 80},
				&Op{Kind: trace.KindLoad, Obj: 0x21, Effect: func(ctx *EffectCtx) { total += acc[w]; ctx.Ev.Arg = acc[w] }},
			)
		}
		th.Check(shared == uint64(workers*iters), "batch-lost-increment",
			"shared = %d, want %d", shared, workers*iters)
	}
}

// runModes runs the workload under cfg twice — fast path and single-step
// reference — and returns both event streams and results.
func runModes(prog func(*Thread), mk func() Strategy, maxSteps uint64) (fastEvs, slowEvs []trace.Event, fast, slow *Result) {
	cf := &collector{}
	fast = Run(prog, Config{Strategy: mk(), Observers: []Observer{cf}, MaxSteps: maxSteps})
	cs := &collector{}
	slow = Run(prog, Config{Strategy: mk(), Observers: []Observer{cs}, MaxSteps: maxSteps, SingleStep: true})
	return cf.evs, cs.evs, fast, slow
}

func checkEquivalent(t *testing.T, label string, fastEvs, slowEvs []trace.Event, fast, slow *Result) {
	t.Helper()
	if !reflect.DeepEqual(fastEvs, slowEvs) {
		n := len(fastEvs)
		if len(slowEvs) < n {
			n = len(slowEvs)
		}
		for i := 0; i < n; i++ {
			if fastEvs[i] != slowEvs[i] {
				t.Fatalf("%s: traces diverge at event %d: fast %+v, single-step %+v", label, i, fastEvs[i], slowEvs[i])
			}
		}
		t.Fatalf("%s: trace lengths differ: fast %d, single-step %d", label, len(fastEvs), len(slowEvs))
	}
	if fast.Steps != slow.Steps || fast.BaseCost != slow.BaseCost ||
		fast.ExtraCost != slow.ExtraCost || fast.Threads != slow.Threads ||
		fast.Handoffs != slow.Handoffs || fast.EventsByKind != slow.EventsByKind {
		t.Fatalf("%s: results differ:\nfast:        %+v\nsingle-step: %+v", label, fast, slow)
	}
	switch {
	case (fast.Failure == nil) != (slow.Failure == nil):
		t.Fatalf("%s: failure mismatch: fast %v, single-step %v", label, fast.Failure, slow.Failure)
	case fast.Failure != nil:
		f, g := fast.Failure, slow.Failure
		if f.Reason != g.Reason || f.BugID != g.BugID || f.TID != g.TID || f.Step != g.Step {
			t.Fatalf("%s: failures differ: fast %v, single-step %v", label, f, g)
		}
	}
	if slow.FastPathSteps != 0 {
		t.Fatalf("%s: single-step mode committed %d fast-path steps", label, slow.FastPathSteps)
	}
}

// TestPropFastPathEquivalence: for any seed, processor count and
// preemption rate, the fast path (run budgets, batch commits, tight
// single-candidate loop) must commit the byte-identical event stream and
// identical result accounting as the single-step reference mode.
func TestPropFastPathEquivalence(t *testing.T) {
	for _, p := range []int{1, 4} {
		for _, preempt := range []float64{0, 0.1} {
			for seed := int64(1); seed <= 6; seed++ {
				label := fmt.Sprintf("p=%d preempt=%v seed=%d", p, preempt, seed)
				fastEvs, slowEvs, fast, slow := runModes(
					batchWorkload(3, 6),
					func() Strategy { return NewRandomMP(p, preempt, seed) },
					0)
				checkEquivalent(t, label, fastEvs, slowEvs, fast, slow)
				if fast.FastPathSteps == 0 {
					t.Fatalf("%s: fast mode committed no fast-path steps", label)
				}
				if fast.Handoffs >= fast.Steps {
					t.Fatalf("%s: handoffs (%d) not amortized below steps (%d)", label, fast.Handoffs, fast.Steps)
				}
			}
		}
	}
}

// TestPropFastPathEquivalenceStepClamp: MaxSteps landing mid-batch must
// clamp both modes at the identical step with identical failures.
func TestPropFastPathEquivalenceStepClamp(t *testing.T) {
	for _, max := range []uint64{7, 23, 40, 57} {
		fastEvs, slowEvs, fast, slow := runModes(
			batchWorkload(2, 5),
			func() Strategy { return NewRandomMP(2, 0.05, 11) },
			max)
		label := fmt.Sprintf("maxsteps=%d", max)
		checkEquivalent(t, label, fastEvs, slowEvs, fast, slow)
		if fast.Failure == nil || fast.Failure.Reason != ReasonStepLimit {
			t.Fatalf("%s: expected step-limit failure, got %v", label, fast.Failure)
		}
		if fast.Steps != max {
			t.Fatalf("%s: committed %d steps", label, fast.Steps)
		}
	}
}

// TestPropFastPathOrderReplayEquivalence: a full order captured from a
// fast-path run replays to the identical trace under OrderStrategy in
// both modes — run grants over consecutive same-thread stretches do not
// disturb the reproduce-every-time property.
func TestPropFastPathOrderReplayEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		c := &collector{}
		orig := Run(batchWorkload(3, 5), Config{
			Strategy:  NewRandomMP(4, 0.1, seed),
			Observers: []Observer{c},
		})
		order := make([]trace.TID, len(c.evs))
		for i, ev := range c.evs {
			order[i] = ev.TID
		}
		fastEvs, slowEvs, fast, slow := runModes(
			batchWorkload(3, 5),
			func() Strategy { return &OrderStrategy{Order: order} },
			0)
		label := fmt.Sprintf("order-replay seed=%d", seed)
		checkEquivalent(t, label, fastEvs, slowEvs, fast, slow)
		if !reflect.DeepEqual(fastEvs, c.evs) {
			t.Fatalf("%s: replayed trace differs from original", label)
		}
		if (orig.Failure == nil) != (fast.Failure == nil) {
			t.Fatalf("%s: replay failure mismatch: %v vs %v", label, orig.Failure, fast.Failure)
		}
		if fast.FastPathSteps == 0 {
			t.Fatalf("%s: order replay took no fast-path steps", label)
		}
	}
}

// TestPropNoBatchEquivalentForRunBlindStrategy: under a strategy that
// ignores Candidate.Run, decomposing batches into per-op round-trips
// (the measurement baseline) must not change the committed trace — only
// the handoff count.
func TestPropNoBatchEquivalentForRunBlindStrategy(t *testing.T) {
	c1 := &collector{}
	r1 := Run(batchWorkload(3, 4), Config{Strategy: Lowest{}, Observers: []Observer{c1}})
	c2 := &collector{}
	r2 := Run(batchWorkload(3, 4), Config{Strategy: Lowest{}, Observers: []Observer{c2}, NoBatch: true})
	if !reflect.DeepEqual(c1.evs, c2.evs) {
		t.Fatal("NoBatch changed the committed trace under a Run-blind strategy")
	}
	if r1.Handoffs >= r2.Handoffs {
		t.Fatalf("batching saved no handoffs: batched %d, decomposed %d", r1.Handoffs, r2.Handoffs)
	}
	if r2.Handoffs != r2.Steps {
		t.Fatalf("NoBatch mode should hand off every step: %d handoffs, %d steps", r2.Handoffs, r2.Steps)
	}
}

// TestRunCancellationNeverLandsMidRunBatch: under a run-granting
// strategy a declared batch is committed as one run; cancelling the
// context from inside a batch op's effect must still commit the rest of
// the granted run before the failure lands — cancellation is polled at
// pick points, between runs, never inside one.
func TestRunCancellationNeverLandsMidRunBatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c := &collector{}
	res := Run(func(th *Thread) {
		th.PointBatch(
			&Op{Kind: trace.KindBB, Obj: 0x1},
			&Op{Kind: trace.KindStore, Obj: 0x2, Effect: func(*EffectCtx) { cancel() }},
			&Op{Kind: trace.KindStore, Obj: 0x3},
			&Op{Kind: trace.KindStore, Obj: 0x4},
		)
		for i := 0; i < 100; i++ {
			th.Yield()
		}
	}, Config{Strategy: NewRandomMP(1, 0, 1), Observers: []Observer{c}, Ctx: ctx})
	if res.Failure == nil || res.Failure.Reason != ReasonCancelled {
		t.Fatalf("expected cancellation, got %v", res.Failure)
	}
	// ThreadStart + the 4 batch ops must all have committed: the run
	// grant is indivisible with respect to cancellation.
	var sawTail bool
	for _, ev := range c.evs {
		if ev.Kind == trace.KindStore && ev.Obj == 0x4 {
			sawTail = true
		}
	}
	if !sawTail {
		t.Fatalf("cancellation landed mid-run; committed %d events", len(c.evs))
	}
	if res.Steps > 6 {
		t.Fatalf("cancellation was not prompt: %d steps", res.Steps)
	}
}

// TestRunCancellationUnwindsMidBatchCleanly: under a budget-1 strategy
// every batch op is its own run, so cancellation may land between two
// ops of a declared batch; the thread — still blocked in PointBatch —
// must unwind cleanly through the stop channel.
func TestRunCancellationUnwindsMidBatchCleanly(t *testing.T) {
	for _, singleStep := range []bool{false, true} {
		ctx, cancel := context.WithCancel(context.Background())
		res := Run(func(th *Thread) {
			th.PointBatch(
				&Op{Kind: trace.KindBB, Obj: 0x1},
				&Op{Kind: trace.KindStore, Obj: 0x2, Effect: func(*EffectCtx) { cancel() }},
				&Op{Kind: trace.KindStore, Obj: 0x3},
				&Op{Kind: trace.KindStore, Obj: 0x4},
			)
		}, Config{Strategy: Lowest{}, Ctx: ctx, SingleStep: singleStep})
		if res.Failure == nil || res.Failure.Reason != ReasonCancelled {
			t.Fatalf("singleStep=%v: expected cancellation, got %v", singleStep, res.Failure)
		}
		cancel()
	}
}

// TestPointBatchRejectsEnabledOps: a batch is a declaration of
// unconditional straight-line execution; an Enabled gate inside one is a
// programming error.
func TestPointBatchRejectsEnabledOps(t *testing.T) {
	res := Run(func(th *Thread) {
		th.PointBatch(
			&Op{Kind: trace.KindYield},
			&Op{Kind: trace.KindLock, Enabled: func() bool { return true }},
		)
	}, Config{Strategy: Lowest{}})
	if res.Failure == nil || res.Failure.Reason != ReasonCrash {
		t.Fatalf("expected crash from gated batch op, got %v", res.Failure)
	}
}

// TestPointBatchInterruptible: under a budget-1 strategy another thread
// can be interleaved between two ops of a declared batch — batching
// amortizes handoffs without coarsening the schedule space.
func TestPointBatchInterruptible(t *testing.T) {
	// alternate deliberately bounces between the two workers.
	c := &collector{}
	res := Run(func(th *Thread) {
		a := th.Spawn("a", func(t *Thread) {
			t.PointBatch(
				&Op{Kind: trace.KindStore, Obj: 0xa1},
				&Op{Kind: trace.KindStore, Obj: 0xa2},
				&Op{Kind: trace.KindStore, Obj: 0xa3},
			)
		})
		b := th.Spawn("b", func(t *Thread) {
			t.PointBatch(
				&Op{Kind: trace.KindStore, Obj: 0xb1},
				&Op{Kind: trace.KindStore, Obj: 0xb2},
				&Op{Kind: trace.KindStore, Obj: 0xb3},
			)
		})
		th.Join(a)
		th.Join(b)
	}, Config{Strategy: alternate{}, Observers: []Observer{c}})
	if res.Failure != nil {
		t.Fatal(res.Failure)
	}
	// Find a b-store committed between two a-stores (or vice versa).
	interleaved := false
	lastA := trace.NoTID
	for _, ev := range c.evs {
		if ev.Kind != trace.KindStore {
			continue
		}
		tid := ev.TID
		if lastA != trace.NoTID && tid != lastA {
			interleaved = true
		}
		lastA = tid
	}
	if !interleaved {
		t.Fatal("strategy could not interleave threads between batch ops")
	}
}

// alternate is a budget-1 strategy that switches threads whenever more
// than one candidate is runnable.
type alternate struct{}

func (alternate) Pick(view *PickView) (trace.TID, bool) {
	if len(view.Candidates) == 1 {
		return view.Candidates[0].TID, true
	}
	// Prefer a candidate different from the one that ran last step:
	// view.Step parity is a cheap stand-in that bounces between the
	// first two candidates.
	return view.Candidates[int(view.Step)%2].TID, true
}

// runStartObserver records run announcements alongside the events.
type runStartObserver struct {
	events int
	runs   []int
}

func (o *runStartObserver) OnEvent(trace.Event) uint64    { o.events++; return 0 }
func (o *runStartObserver) OnRunStart(_ trace.TID, n int) { o.runs = append(o.runs, n) }

// TestRunObserverAnnouncesRuns: a RunObserver hears every multi-step
// grant (with its budget as an upper bound on the run length) under a
// run-granting strategy, hears nothing in single-step mode, and sees
// the identical event stream either way.
func TestRunObserverAnnouncesRuns(t *testing.T) {
	fast := &runStartObserver{}
	Run(batchWorkload(2, 3), Config{Strategy: NewRandomMP(2, 0, 5), Observers: []Observer{fast}})
	if len(fast.runs) == 0 {
		t.Fatal("no run announced under a run-granting strategy with declared batches")
	}
	for _, n := range fast.runs {
		if n < 2 {
			t.Fatalf("announced run budget %d; budget-1 grants must stay silent", n)
		}
	}
	slow := &runStartObserver{}
	Run(batchWorkload(2, 3), Config{Strategy: NewRandomMP(2, 0, 5), Observers: []Observer{slow}, SingleStep: true})
	if len(slow.runs) != 0 {
		t.Fatalf("single-step mode announced %d runs", len(slow.runs))
	}
	if fast.events != slow.events {
		t.Fatalf("observer event streams diverge: %d vs %d events", fast.events, slow.events)
	}
}
