package sched

import (
	"reflect"
	"testing"

	"repro/internal/trace"
)

// collector is a test observer that records every committed event and
// optionally charges a fixed extra cost per event.
type collector struct {
	evs  []trace.Event
	cost uint64
}

func (c *collector) OnEvent(ev trace.Event) uint64 {
	c.evs = append(c.evs, ev)
	return c.cost
}

func (c *collector) kinds() []trace.Kind {
	out := make([]trace.Kind, len(c.evs))
	for i, e := range c.evs {
		out[i] = e.Kind
	}
	return out
}

func TestSingleThreadCompletes(t *testing.T) {
	c := &collector{}
	res := Run(func(th *Thread) {
		th.Yield()
		th.Yield()
	}, Config{Strategy: Lowest{}, Observers: []Observer{c}})

	if res.Failure != nil {
		t.Fatalf("unexpected failure: %v", res.Failure)
	}
	want := []trace.Kind{trace.KindThreadStart, trace.KindYield, trace.KindYield, trace.KindThreadExit}
	if !reflect.DeepEqual(c.kinds(), want) {
		t.Fatalf("kinds = %v, want %v", c.kinds(), want)
	}
	if res.Steps != 4 {
		t.Fatalf("steps = %d, want 4", res.Steps)
	}
	if res.Threads != 1 {
		t.Fatalf("threads = %d, want 1", res.Threads)
	}
}

func TestEventSequencing(t *testing.T) {
	c := &collector{}
	Run(func(th *Thread) {
		th.Yield()
		th.Yield()
	}, Config{Strategy: Lowest{}, Observers: []Observer{c}})
	for i, ev := range c.evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has Seq %d", i, ev.Seq)
		}
		if ev.TCount != uint64(i+1) { // single thread: tcount == seq
			t.Fatalf("event %d has TCount %d", i, ev.TCount)
		}
	}
}

func TestSpawnJoin(t *testing.T) {
	c := &collector{}
	var childRan bool
	res := Run(func(th *Thread) {
		child := th.Spawn("child", func(ct *Thread) {
			ct.Yield()
			childRan = true
		})
		th.Join(child)
		if !childRan {
			t.Error("join returned before child finished")
		}
	}, Config{Strategy: Lowest{}, Observers: []Observer{c}})

	if res.Failure != nil {
		t.Fatalf("unexpected failure: %v", res.Failure)
	}
	if res.Threads != 2 {
		t.Fatalf("threads = %d, want 2", res.Threads)
	}
	// The spawn event must carry the child tid in Arg.
	var spawn *trace.Event
	for i := range c.evs {
		if c.evs[i].Kind == trace.KindSpawn {
			spawn = &c.evs[i]
		}
	}
	if spawn == nil || spawn.Arg != 1 {
		t.Fatalf("spawn event = %v, want Arg=1", spawn)
	}
}

func TestJoinWaitsForExit(t *testing.T) {
	// With Lowest, the parent (tid 0) is always preferred; Join must be
	// disabled until the child exits, forcing the child to run.
	res := Run(func(th *Thread) {
		ch := th.Spawn("c", func(ct *Thread) {
			for i := 0; i < 5; i++ {
				ct.Yield()
			}
		})
		th.Join(ch)
	}, Config{Strategy: Lowest{}})
	if res.Failure != nil {
		t.Fatalf("unexpected failure: %v", res.Failure)
	}
}

func TestAssertionFailure(t *testing.T) {
	res := Run(func(th *Thread) {
		th.Yield()
		th.Fail("bug-1", "invariant broken: %d", 42)
	}, Config{Strategy: Lowest{}})
	f := res.Failure
	if f == nil || f.Reason != ReasonAssert || f.BugID != "bug-1" {
		t.Fatalf("failure = %v", f)
	}
	if !f.IsBug() {
		t.Fatal("assertion should be a bug")
	}
}

func TestCheckPasses(t *testing.T) {
	res := Run(func(th *Thread) {
		th.Check(true, "bug-x", "should not fire")
	}, Config{Strategy: Lowest{}})
	if res.Failure != nil {
		t.Fatalf("unexpected failure: %v", res.Failure)
	}
}

func TestCrashCaptured(t *testing.T) {
	res := Run(func(th *Thread) {
		th.Yield()
		panic("segfault")
	}, Config{Strategy: Lowest{}})
	f := res.Failure
	if f == nil || f.Reason != ReasonCrash {
		t.Fatalf("failure = %v, want crash", f)
	}
}

func TestFailureUnwindsSiblings(t *testing.T) {
	// A failing thread must not leave the run hanging on its siblings.
	res := Run(func(th *Thread) {
		th.Spawn("spinner", func(ct *Thread) {
			for {
				ct.Yield()
			}
		})
		th.Yield()
		th.Fail("bug-2", "boom")
	}, Config{Strategy: Lowest{}})
	if res.Failure == nil || res.Failure.BugID != "bug-2" {
		t.Fatalf("failure = %v", res.Failure)
	}
}

func TestDeadlockDetected(t *testing.T) {
	res := Run(func(th *Thread) {
		blocked := false
		th.Point(&Op{
			Kind:    trace.KindLock,
			Obj:     0x99,
			Desc:    "acquire phantom lock",
			Enabled: func() bool { return blocked },
		})
	}, Config{Strategy: Lowest{}})
	f := res.Failure
	if f == nil || f.Reason != ReasonDeadlock {
		t.Fatalf("failure = %v, want deadlock", f)
	}
	if len(f.Stuck) != 1 || f.Stuck[0].TID != 0 {
		t.Fatalf("stuck = %+v", f.Stuck)
	}
	if !f.IsBug() {
		t.Fatal("deadlock should be a bug")
	}
}

func TestStepLimit(t *testing.T) {
	res := Run(func(th *Thread) {
		for {
			th.Yield()
		}
	}, Config{Strategy: Lowest{}, MaxSteps: 100})
	f := res.Failure
	if f == nil || f.Reason != ReasonStepLimit {
		t.Fatalf("failure = %v, want step limit", f)
	}
	if f.IsBug() {
		t.Fatal("step limit is not a bug")
	}
}

func TestSleepWake(t *testing.T) {
	// Hand-rolled one-shot condition: t1 sleeps, t0 wakes it.
	var sleeper *Thread
	var posted, waiting bool
	c := &collector{}
	res := Run(func(th *Thread) {
		child := th.Spawn("sleeper", func(ct *Thread) {
			sleeper = ct
			ct.Point(&Op{
				Kind: trace.KindWait,
				Obj:  0x1,
				Effect: func(ctx *EffectCtx) {
					waiting = true
					ctx.Sleep()
				},
			})
			// Returns only after the wake op is granted.
			if !posted {
				ct.Fail("order", "woke before post")
			}
		})
		// Block until the child is actually asleep (a real condvar's
		// wait queue gives this guarantee structurally).
		th.Point(&Op{Kind: trace.KindYield, Enabled: func() bool { return waiting }})
		th.Point(&Op{
			Kind: trace.KindSignal,
			Obj:  0x1,
			Effect: func(ctx *EffectCtx) {
				posted = true
				ctx.WakeWith(sleeper, &Op{Kind: trace.KindWake, Obj: 0x1})
			},
		})
		th.Join(child)
	}, Config{Strategy: Lowest{}, Observers: []Observer{c}})
	if res.Failure != nil {
		t.Fatalf("unexpected failure: %v", res.Failure)
	}
	// Wait must precede Signal which must precede Wake in global order.
	idx := map[trace.Kind]int{}
	for i, ev := range c.evs {
		idx[ev.Kind] = i
	}
	if !(idx[trace.KindWait] < idx[trace.KindSignal] && idx[trace.KindSignal] < idx[trace.KindWake]) {
		t.Fatalf("bad order: %v", c.kinds())
	}
}

func TestEnabledGatesExecution(t *testing.T) {
	// A toy mutex: holder records ownership; contender blocks until free.
	holder := trace.NoTID
	lockOp := func(self *Thread) *Op {
		return &Op{
			Kind:    trace.KindLock,
			Obj:     0x5,
			Enabled: func() bool { return holder == trace.NoTID },
			Effect:  func(ctx *EffectCtx) { holder = ctx.Self().ID() },
		}
	}
	unlockOp := &Op{
		Kind:   trace.KindUnlock,
		Obj:    0x5,
		Effect: func(ctx *EffectCtx) { holder = trace.NoTID },
	}
	inside := 0
	res := Run(func(th *Thread) {
		work := func(ct *Thread) {
			ct.Point(lockOp(ct))
			inside++
			ct.Check(inside == 1, "mutex", "mutual exclusion violated")
			ct.Yield()
			inside--
			ct.Point(unlockOp)
		}
		a := th.Spawn("a", work)
		b := th.Spawn("b", work)
		th.Join(a)
		th.Join(b)
	}, Config{Strategy: NewRandomMP(4, 0.1, 7)})
	if res.Failure != nil {
		t.Fatalf("unexpected failure: %v", res.Failure)
	}
}

func TestObserverCostAccounting(t *testing.T) {
	c := &collector{cost: 10}
	res := Run(func(th *Thread) {
		th.Yield()
		th.Yield()
	}, Config{Strategy: Lowest{}, Observers: []Observer{c}})
	// 4 events (start, 2 yields, exit) at default cost, 10 extra each.
	if res.BaseCost != 4*trace.CostUnit {
		t.Fatalf("BaseCost = %d, want %d", res.BaseCost, 4*trace.CostUnit)
	}
	if res.ExtraCost != 40 {
		t.Fatalf("ExtraCost = %d, want 40", res.ExtraCost)
	}
	if got := res.Overhead(); got != 1 {
		t.Fatalf("Overhead = %v, want 1", got)
	}
}

func TestEventsByKind(t *testing.T) {
	res := Run(func(th *Thread) {
		th.Yield()
		th.Yield()
		th.Yield()
	}, Config{Strategy: Lowest{}})
	if res.EventsByKind[trace.KindYield] != 3 {
		t.Fatalf("yield count = %d", res.EventsByKind[trace.KindYield])
	}
	if res.EventsByKind[trace.KindThreadStart] != 1 {
		t.Fatal("missing thread-start count")
	}
}

// program spawns w workers that interleave yields and a shared-counter
// style op; used for determinism tests.
func program(w, iters int) func(*Thread) {
	return func(th *Thread) {
		var hs []*Thread
		for i := 0; i < w; i++ {
			hs = append(hs, th.Spawn("w", func(ct *Thread) {
				for j := 0; j < iters; j++ {
					ct.Point(&Op{Kind: trace.KindStore, Obj: 0x100, Arg: uint64(j)})
					ct.Yield()
				}
			}))
		}
		for _, h := range hs {
			th.Join(h)
		}
	}
}

func runCollect(t *testing.T, strat Strategy) []trace.Event {
	t.Helper()
	c := &collector{}
	res := Run(program(3, 10), Config{Strategy: strat, Observers: []Observer{c}})
	if res.Failure != nil {
		t.Fatalf("unexpected failure: %v", res.Failure)
	}
	return c.evs
}

func TestRandomMPDeterministicForSeed(t *testing.T) {
	a := runCollect(t, NewRandomMP(4, 0.05, 42))
	b := runCollect(t, NewRandomMP(4, 0.05, 42))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must give identical schedules")
	}
}

func TestRandomMPSeedsDiffer(t *testing.T) {
	a := runCollect(t, NewRandomMP(4, 0.05, 1))
	for seed := int64(2); seed < 8; seed++ {
		if !reflect.DeepEqual(a, runCollect(t, NewRandomMP(4, 0.05, seed))) {
			return // found a differing schedule, as expected
		}
	}
	t.Fatal("7 different seeds produced identical schedules; nondeterminism model broken")
}

func countSwitches(evs []trace.Event) int {
	switches := 0
	for i := 1; i < len(evs); i++ {
		if evs[i].TID != evs[i-1].TID {
			switches++
		}
	}
	return switches
}

func TestRandomMPSingleProcessorIsCoarse(t *testing.T) {
	// With P=1 and no preemption, a runnable thread keeps its processor
	// until it blocks: context switches only at spawn/join boundaries.
	evs := runCollect(t, NewRandomMP(1, 0, 3))
	if s := countSwitches(evs); s > 12 {
		t.Fatalf("P=1 preempt=0 had %d context switches; expected coarse schedule", s)
	}
}

func TestRandomMPMultiprocessorInterleaves(t *testing.T) {
	// Threads whose work is long compared to the wake-up latency run
	// time-parallel on a multiprocessor, so their events interleave.
	c := &collector{}
	res := Run(program(3, 300), Config{Strategy: NewRandomMP(8, 0, 3), Observers: []Observer{c}})
	if res.Failure != nil {
		t.Fatal(res.Failure)
	}
	if s := countSwitches(c.evs); s < 50 {
		t.Fatalf("P=8 had only %d context switches; expected fine-grained interleaving", s)
	}
	// And P=1 serializes the same workload.
	c1 := &collector{}
	res = Run(program(3, 300), Config{Strategy: NewRandomMP(1, 0, 3), Observers: []Observer{c1}})
	if res.Failure != nil {
		t.Fatal(res.Failure)
	}
	if s1, s8 := countSwitches(c1.evs), countSwitches(c.evs); s1*4 > s8 {
		t.Fatalf("P=1 (%d switches) should be far coarser than P=8 (%d)", s1, s8)
	}
}

func TestOrderStrategyReplaysExactly(t *testing.T) {
	c := &collector{}
	res := Run(program(3, 10), Config{Strategy: NewRandomMP(4, 0.05, 99), Observers: []Observer{c}})
	if res.Failure != nil {
		t.Fatalf("record failed: %v", res.Failure)
	}
	order := make([]trace.TID, len(c.evs))
	for i, ev := range c.evs {
		order[i] = ev.TID
	}

	c2 := &collector{}
	res2 := Run(program(3, 10), Config{Strategy: &OrderStrategy{Order: order}, Observers: []Observer{c2}})
	if res2.Failure != nil {
		t.Fatalf("replay failed: %v", res2.Failure)
	}
	if !reflect.DeepEqual(c.evs, c2.evs) {
		t.Fatal("full-order replay did not reproduce the event stream")
	}
}

func TestOrderStrategyDivergesWhenExhausted(t *testing.T) {
	res := Run(program(2, 5), Config{Strategy: &OrderStrategy{Order: []trace.TID{0, 0}}})
	if res.Failure == nil || res.Failure.Reason != ReasonDiverged {
		t.Fatalf("failure = %v, want diverged", res.Failure)
	}
}

func TestOrderStrategyDivergesOnWrongThread(t *testing.T) {
	// Thread 5 never exists.
	res := Run(program(2, 5), Config{Strategy: &OrderStrategy{Order: []trace.TID{0, 5}}})
	if res.Failure == nil || res.Failure.Reason != ReasonDiverged {
		t.Fatalf("failure = %v, want diverged", res.Failure)
	}
}

func TestFailureError(t *testing.T) {
	f := &Failure{Reason: ReasonAssert, BugID: "b", Step: 3, TID: 1, Msg: "m"}
	if f.Error() == "" {
		t.Fatal("empty error string")
	}
	f2 := &Failure{Reason: ReasonDeadlock, Step: 9, Msg: "stuck"}
	if f2.Error() == "" {
		t.Fatal("empty error string")
	}
}
