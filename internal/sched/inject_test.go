package sched

import (
	"testing"

	"repro/internal/trace"
)

// TestInjectDisabledAllocFree is the record-path gate for the
// injection seam: with no hook installed (the production default),
// consulting the fault site costs zero allocations — the E2 overhead
// numbers cannot move when nobody injects.
func TestInjectDisabledAllocFree(t *testing.T) {
	var allocs float64
	Run(func(th *Thread) {
		w := th.Spawn("w", func(tt *Thread) {
			allocs = testing.AllocsPerRun(1000, func() {
				if act := tt.Inject(InjectPoint{Kind: InjectSyscall, Obj: 7}); act != (InjectAction{}) {
					t.Errorf("nil hook returned %+v", act)
				}
				if act := tt.Inject(InjectPoint{Kind: InjectLock, Obj: 9}); act != (InjectAction{}) {
					t.Errorf("nil hook returned %+v", act)
				}
			})
		})
		th.Join(w)
	}, Config{Strategy: Lowest{}})
	if allocs != 0 {
		t.Fatalf("disabled Inject allocates %v/op, want 0", allocs)
	}
}

// TestInjectHookConsulted: an installed hook sees every consultation
// with the announcing thread's identity and point, and its action is
// returned to the fault site verbatim.
func TestInjectHookConsulted(t *testing.T) {
	var seen []InjectPoint
	var tids []trace.TID
	res := Run(func(th *Thread) {
		w := th.Spawn("w", func(tt *Thread) {
			act := tt.Inject(InjectPoint{Kind: InjectSyscall, Obj: 3})
			if act.ExtraCost != 11 || act.Outcome != InjectFailOp {
				tt.Fail("inject-test", "hook action lost: %+v", act)
			}
		})
		th.Join(w)
		th.Inject(InjectPoint{Kind: InjectLock, Obj: 5})
	}, Config{
		Strategy: Lowest{},
		Inject: func(tid trace.TID, p InjectPoint) InjectAction {
			seen = append(seen, p)
			tids = append(tids, tid)
			if p.Kind == InjectSyscall {
				return InjectAction{ExtraCost: 11, Outcome: InjectFailOp}
			}
			return InjectAction{}
		},
	})
	if res.Failure != nil {
		t.Fatalf("failure: %v", res.Failure)
	}
	if len(seen) != 2 || seen[0] != (InjectPoint{Kind: InjectSyscall, Obj: 3}) || seen[1] != (InjectPoint{Kind: InjectLock, Obj: 5}) {
		t.Fatalf("hook saw %+v", seen)
	}
	if len(tids) != 2 || tids[0] == tids[1] {
		t.Fatalf("hook saw tids %v, want distinct thread identities", tids)
	}
}
