package sched

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/trace"
)

// epochObserver records every event, every run announcement's tid, and
// every epoch seal, so the tests can check the seal points against the
// committed stream.
type epochObserver struct {
	evs      []trace.Event
	runTIDs  []trace.TID
	runAt    []int // len(evs) when the announcement fired
	seals    []trace.TID
	sealCost uint64
}

func (o *epochObserver) OnEvent(ev trace.Event) uint64 {
	o.evs = append(o.evs, ev)
	return 0
}

func (o *epochObserver) OnRunStart(tid trace.TID, n int) {
	o.runTIDs = append(o.runTIDs, tid)
	o.runAt = append(o.runAt, len(o.evs))
}

func (o *epochObserver) OnEpochSeal(tid trace.TID) uint64 {
	o.seals = append(o.seals, tid)
	return o.sealCost
}

// expectedSeals derives the seal sequence the epoch contract promises
// from a committed event stream: one seal of the outgoing thread at
// every TID change, plus a final seal of the last thread. Every grant
// commits at least one event, so stream TID changes are exactly the
// control transfers.
func expectedSeals(evs []trace.Event) []trace.TID {
	var seals []trace.TID
	for i := 1; i < len(evs); i++ {
		if evs[i].TID != evs[i-1].TID {
			seals = append(seals, evs[i-1].TID)
		}
	}
	if len(evs) > 0 {
		seals = append(seals, evs[len(evs)-1].TID)
	}
	return seals
}

// TestEpochSealsAtControlTransfers: an EpochObserver is sealed exactly
// at control transfers (never inside a same-thread run, however many
// grants it spans) plus once at end of execution — in both the fast
// path and the single-step reference mode, with identical sequences.
func TestEpochSealsAtControlTransfers(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		label := fmt.Sprintf("seed=%d", seed)
		fast := &epochObserver{}
		Run(batchWorkload(3, 5), Config{
			Strategy: NewRandomMP(2, 0.1, seed), Observers: []Observer{fast}})
		slow := &epochObserver{}
		Run(batchWorkload(3, 5), Config{
			Strategy: NewRandomMP(2, 0.1, seed), Observers: []Observer{slow}, SingleStep: true})
		if len(fast.seals) == 0 {
			t.Fatalf("%s: no epoch seals on a multi-threaded run", label)
		}
		if want := expectedSeals(fast.evs); !reflect.DeepEqual(fast.seals, want) {
			t.Fatalf("%s: fast-path seals %v, want %v (one per control transfer + final)",
				label, fast.seals, want)
		}
		if !reflect.DeepEqual(fast.seals, slow.seals) {
			t.Fatalf("%s: seal sequences diverge between modes:\nfast:        %v\nsingle-step: %v",
				label, fast.seals, slow.seals)
		}
		if !reflect.DeepEqual(fast.evs, slow.evs) {
			t.Fatalf("%s: event streams diverge", label)
		}
	}
}

// TestEpochSealCostAccounting: OnEpochSeal's returned cost lands in
// Result.ExtraCost, identically in both modes.
func TestEpochSealCostAccounting(t *testing.T) {
	run := func(single bool) (*Result, *epochObserver) {
		o := &epochObserver{sealCost: 7}
		res := Run(batchWorkload(2, 4), Config{
			Strategy: NewRandomMP(2, 0.1, 3), Observers: []Observer{o}, SingleStep: single})
		return res, o
	}
	base := Run(batchWorkload(2, 4), Config{Strategy: NewRandomMP(2, 0.1, 3)})
	fastRes, fastObs := run(false)
	slowRes, slowObs := run(true)
	wantExtra := base.ExtraCost + 7*uint64(len(fastObs.seals))
	if fastRes.ExtraCost != wantExtra {
		t.Fatalf("fast ExtraCost = %d, want %d (base %d + 7 x %d seals)",
			fastRes.ExtraCost, wantExtra, base.ExtraCost, len(fastObs.seals))
	}
	if slowRes.ExtraCost != fastRes.ExtraCost || len(slowObs.seals) != len(fastObs.seals) {
		t.Fatalf("modes disagree: fast %d cost/%d seals, single-step %d cost/%d seals",
			fastRes.ExtraCost, len(fastObs.seals), slowRes.ExtraCost, len(slowObs.seals))
	}
}

// TestRunStartAnnouncesGrantedThread: OnRunStart's tid names the thread
// whose run is starting — the shard a per-thread recorder must reserve
// in.
func TestRunStartAnnouncesGrantedThread(t *testing.T) {
	o := &epochObserver{}
	Run(batchWorkload(2, 4), Config{Strategy: NewRandomMP(1, 0, 2), Observers: []Observer{o}})
	if len(o.runTIDs) == 0 {
		t.Fatal("no run announcements under a run-granting strategy")
	}
	// The announcement fires before the run's first commit, so the event
	// committed right after it must carry the announced tid.
	for ri, tid := range o.runTIDs {
		at := o.runAt[ri]
		if at >= len(o.evs) {
			t.Fatalf("announcement %d (thread %d): run committed no events", ri, tid)
		}
		if o.evs[at].TID != tid {
			t.Fatalf("announcement %d: announced thread %d, first committed event from thread %d",
				ri, tid, o.evs[at].TID)
		}
	}
}
