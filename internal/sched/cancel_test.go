package sched

import (
	"context"
	"testing"
)

func TestRunContextCancelMidRun(t *testing.T) {
	// Cancelling the config context mid-run fails the execution with
	// ReasonCancelled at the next grant point — never a bug, and the
	// scheduler still drains every thread goroutine (Run returning
	// proves shutdown completed).
	ctx, cancel := context.WithCancel(context.Background())
	steps := 0
	res := Run(func(th *Thread) {
		for i := 0; i < 100; i++ {
			th.Yield()
			steps++
			if steps == 5 {
				cancel()
			}
		}
	}, Config{Strategy: Lowest{}, Ctx: ctx})
	if res.Failure == nil || res.Failure.Reason != ReasonCancelled {
		t.Fatalf("failure = %v, want ReasonCancelled", res.Failure)
	}
	if res.Failure.IsBug() {
		t.Fatal("cancellation must never classify as a manifested bug")
	}
	if steps >= 100 {
		t.Fatal("run was not cut short by the cancel")
	}
	if got := res.Failure.Reason.String(); got != "cancelled" {
		t.Fatalf("Reason.String() = %q, want %q", got, "cancelled")
	}
}

func TestRunPreCancelledContextStopsAtFirstGrant(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	res := Run(func(th *Thread) {
		th.Yield()
		ran = true
	}, Config{Strategy: Lowest{}, Ctx: ctx})
	if res.Failure == nil || res.Failure.Reason != ReasonCancelled {
		t.Fatalf("failure = %v, want ReasonCancelled", res.Failure)
	}
	if ran {
		t.Fatal("body ran past the first grant under a dead context")
	}
}

func TestRunNilContextHasNoCancellation(t *testing.T) {
	// A nil Ctx (and a background context, whose Done is nil) keeps the
	// grant loop select-free: the run completes exactly as before.
	for _, ctx := range []context.Context{nil, context.Background()} {
		res := Run(func(th *Thread) {
			for i := 0; i < 10; i++ {
				th.Yield()
			}
		}, Config{Strategy: Lowest{}, Ctx: ctx})
		if res.Failure != nil {
			t.Fatalf("ctx=%v: unexpected failure %v", ctx, res.Failure)
		}
	}
}
