package sched

import (
	"fmt"

	"repro/internal/trace"
)

// Op describes one instrumented operation a thread is about to perform.
// The scheduler evaluates Enabled each round; when the op is granted,
// Effect runs on the scheduler goroutine (with every other thread
// parked) and may mutate any simulation state.
type Op struct {
	Kind trace.Kind
	Obj  uint64
	Arg  uint64
	// Enabled reports whether the op can currently proceed (e.g., a lock
	// acquire is enabled iff the mutex is free). nil means always.
	//
	// Enabled must read only simulation state mutated inside op effects
	// (plus a target thread's done-state, as Join does): the scheduler's
	// tight single-candidate loop relies on enabledness being unable to
	// change while no effect runs and no thread exits.
	Enabled func() bool
	// Effect applies the op at grant time. It may adjust the committed
	// event via ctx.Ev (e.g., record the loaded value in Arg), put the
	// thread to sleep, wake other threads, or spawn threads.
	Effect func(ctx *EffectCtx)
	// Cost is the op's logical cost in time units (tenths of one
	// instrumented memory access; see trace.CostUnit). 0 means one
	// access, trace.CostUnit.
	Cost uint64
	// Desc, if set, labels the op in deadlock reports.
	Desc string
	// DescFn, if set, supplements Desc with dynamic state (e.g., the
	// current holder of a contended mutex) when a deadlock is reported.
	DescFn func() string
	// BlockedOn, if set, names the thread this op is currently waiting
	// for (the holder of the contended resource); the deadlock detector
	// uses it to extract waits-for cycles. Return trace.NoTID when the
	// holder is unknown or the op is not blocked.
	BlockedOn func() trace.TID
}

func (op *Op) cost() uint64 {
	if op.Cost == 0 {
		return trace.CostUnit
	}
	return op.Cost
}

func (op *Op) describe() string {
	if op == nil {
		return "?"
	}
	desc := op.Desc
	if op.DescFn != nil {
		desc += " " + op.DescFn()
	}
	if desc != "" {
		return fmt.Sprintf("%s (%s obj=%#x)", desc, op.Kind, op.Obj)
	}
	return fmt.Sprintf("%s obj=%#x", op.Kind, op.Obj)
}

// EffectCtx is passed to Op.Effect at grant time.
type EffectCtx struct {
	s *Scheduler
	t *Thread
	// Ev is the event about to be committed; Effect may fill Arg (e.g.,
	// the value a load observed) before observers see it.
	Ev *trace.Event
}

// Self returns the thread performing the op.
func (c *EffectCtx) Self() *Thread { return c.t }

// Sleep keeps the performing thread blocked after the effect: it stays
// at its point with no pending op until another thread's effect calls
// WakeWith. Used for condition-variable wait. Only the final op of a
// PointBatch may sleep.
func (c *EffectCtx) Sleep() { c.s.sleepReq = true }

// WakeWith installs op as the pending operation of an asleep thread,
// making it schedulable again. The woken thread's Point call returns
// only when that op is later granted.
func (c *EffectCtx) WakeWith(t *Thread, op *Op) {
	if t.state != stateAsleep {
		panic(fmt.Sprintf("sched: WakeWith on thread %d in state %d", t.id, t.state))
	}
	t.pending = op
	t.state = stateParked
}

// Spawn creates a new thread running fn and returns it. Must only be
// called from the effect of a KindSpawn op; the spawn event's Arg is set
// to the child id.
func (c *EffectCtx) Spawn(name string, fn func(*Thread)) *Thread {
	child := c.s.addThread(name, c.t.id)
	child.state = stateRunning
	c.s.inflight++
	c.Ev.Arg = uint64(uint32(child.id))
	go c.s.runThread(child, fn)
	return child
}

// Now returns the current global step count.
func (c *EffectCtx) Now() uint64 { return c.s.step }

// Thread is one simulated application thread. All methods must be called
// from the thread's own goroutine (they park the caller at scheduling
// points).
type Thread struct {
	id     trace.TID
	name   string
	parent trace.TID
	s      *Scheduler
	grant  chan struct{}

	// The fields below are owned by the scheduler goroutine while the
	// thread is parked and by the thread while running; the announce and
	// grant channel handshakes order every transfer.
	pending *Op
	state   threadState
	tcount  uint64
	// batch is the straight-line run declared with PointBatch, if any;
	// batch[batchPos-1] == pending while the batch is being consumed.
	// The scheduler advances through it without granting until the last
	// op commits.
	batch    []*Op
	batchPos int

	// yieldOp backs Yield without a per-call allocation; the op is
	// immutable after addThread.
	yieldOp Op
}

// remainingRun reports how many declared straight-line ops the thread
// has left, counting the pending one (1 for a plain op).
func (t *Thread) remainingRun() int {
	if t.batch != nil {
		return len(t.batch) - t.batchPos + 1
	}
	return 1
}

// ID returns the thread id.
func (t *Thread) ID() trace.TID { return t.id }

// Name returns the debug name given at spawn.
func (t *Thread) Name() string { return t.name }

// Point parks the thread at an instrumented operation and returns after
// the scheduler grants it and the effect has been applied. This is the
// only blocking primitive; everything else builds on it.
func (t *Thread) Point(op *Op) {
	if op.Kind == trace.KindInvalid {
		panic("sched: Point with invalid kind")
	}
	t.s.announce <- announcement{t: t, op: op}
	select {
	case <-t.grant:
	case <-t.s.stopC:
		panic(&Failure{Reason: reasonStopped})
	}
}

// PointBatch parks the thread at a pre-declared straight-line run of
// operations and returns after the last one has been committed. Each op
// is a real scheduling point — it is separately granted (or withheld)
// by the scheduler, appears as its own committed event, and a strategy
// with run budget 1 can interleave other threads between any two batch
// ops — but the whole batch costs a single announce/grant channel
// round-trip instead of one per op.
//
// Batch ops must be unconditional (nil Enabled): a batch is a
// declaration that the thread will perform these ops back to back with
// no blocking in between, which is what lets the scheduler commit them
// without handing control back. Effects are allowed (loads, stores,
// spawns); only the final op may Sleep. Intended for effect-light
// straight-line code such as the compute loops in fft/lu/radix/barnes.
//
// Under Config.NoBatch the batch decomposes into sequential Point
// calls — the measurement baseline with one handoff per op.
func (t *Thread) PointBatch(ops ...*Op) {
	if len(ops) == 0 {
		return
	}
	if len(ops) == 1 || t.s.cfg.NoBatch {
		for _, op := range ops {
			t.Point(op)
		}
		return
	}
	for _, op := range ops {
		if op.Kind == trace.KindInvalid {
			panic("sched: PointBatch with invalid kind")
		}
		if op.Enabled != nil {
			panic("sched: PointBatch op with an Enabled gate (batches must be unconditional)")
		}
	}
	t.s.announce <- announcement{t: t, op: ops[0], run: ops}
	select {
	case <-t.grant:
	case <-t.s.stopC:
		panic(&Failure{Reason: reasonStopped})
	}
}

// Yield parks the thread at a pure scheduling point with no effect.
func (t *Thread) Yield() {
	t.Point(&t.yieldOp)
}

// Spawn starts fn as a new thread and returns its handle. The spawn
// itself is a scheduling point (and a sync/syscall-class event for the
// sketches, mirroring clone(2)).
func (t *Thread) Spawn(name string, fn func(*Thread)) *Thread {
	var child *Thread
	t.Point(&Op{
		Kind: trace.KindSpawn,
		Desc: "spawn " + name,
		Effect: func(ctx *EffectCtx) {
			child = ctx.Spawn(name, fn)
		},
	})
	return child
}

// Join blocks until other has exited. Join is a scheduling point enabled
// only once the target is done, mirroring pthread_join.
func (t *Thread) Join(other *Thread) {
	t.Point(&Op{
		Kind:    trace.KindJoin,
		Obj:     uint64(uint32(other.id)),
		Desc:    "join " + other.name,
		Enabled: func() bool { return other.state == stateDone },
	})
}

// Fail aborts the execution with an assertion failure carrying a stable
// bug id; the harness matches it against the corpus entry.
func (t *Thread) Fail(bugID, format string, args ...any) {
	panic(&Failure{
		Reason: ReasonAssert,
		BugID:  bugID,
		TID:    t.id,
		Step:   t.s.step,
		Msg:    fmt.Sprintf(format, args...),
	})
}

// Check fails the execution with bugID unless cond holds.
func (t *Thread) Check(cond bool, bugID, format string, args ...any) {
	if !cond {
		t.Fail(bugID, format, args...)
	}
}
