package sched

import "repro/internal/trace"

// Failure injection is the scheduler-level seam the scenario matrix
// (internal/scenario) drives: an execution may carry an InjectFn hook
// (Config.Inject, surfaced to programs as appkit.Env.Inject) that the
// instrumented layers consult at their fault sites — every vsys call
// and every blocking lock acquisition. The hook returns an
// InjectAction describing what the environment does to that operation:
// nothing, extra latency, an operation failure, a panic, or a wedge.
//
// Injectors must be deterministic functions of the per-thread operation
// history (e.g. "thread t's nth read fails"): the same hook is
// installed for the production recording and for every replay attempt,
// so a decision that depended on cross-thread ordering could diverge
// between recording and replay. Stock deterministic injectors live in
// internal/scenario.

// InjectKind classifies an injection point.
type InjectKind uint8

const (
	// InjectSyscall: a vsys call; Obj is the vsys call code.
	InjectSyscall InjectKind = iota + 1
	// InjectLock: a blocking lock/semaphore acquisition; Obj is the
	// primitive's stable object id.
	InjectLock
)

// InjectPoint identifies one potential fault site.
type InjectPoint struct {
	Kind InjectKind
	Obj  uint64
}

// InjectOutcome is what the injected environment does to the operation.
type InjectOutcome uint8

const (
	// InjectNone: the operation proceeds normally (extra cost may still
	// apply).
	InjectNone InjectOutcome = iota
	// InjectFailOp: the operation takes its failure path — a read
	// returns no bytes, a send is dropped (overload shedding), a recv
	// reports the connection gone. Layers without a failure path treat
	// it as InjectNone.
	InjectFailOp
	// InjectPanic: the thread panics right after the operation — the
	// timeout/panic handler path; the run ends with ReasonCrash.
	InjectPanic
	// InjectWedge: the operation never becomes enabled — a wedged
	// component (hung backend, stuck shutdown); threads that depend on
	// it pile up behind and the run ends in deadlock detection.
	InjectWedge
)

// InjectAction is the hook's verdict for one operation.
type InjectAction struct {
	// ExtraCost is added to the operation's modelled cost (slow-I/O
	// classes), in trace.CostUnit-scaled units.
	ExtraCost uint64
	Outcome   InjectOutcome
}

// InjectFn decides the environment's behavior at one fault site. It is
// called on the performing thread's goroutine before the operation is
// announced, so it may keep per-thread deterministic state.
type InjectFn func(tid trace.TID, p InjectPoint) InjectAction

// Inject consults the execution's failure-injection hook for a fault
// site, returning the zero action when no hook is installed. The nil
// path is a single comparison and allocates nothing, keeping the
// record path's cost identical to a build without injection.
func (t *Thread) Inject(p InjectPoint) InjectAction {
	if t.s.cfg.Inject == nil {
		return InjectAction{}
	}
	return t.s.cfg.Inject(t.id, p)
}
