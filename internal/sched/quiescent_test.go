package sched

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/trace"
)

// quiObserver records committed events and every quiescent tap, and
// checks the defining property inline: a tap's step equals the number
// of events already delivered to observers, i.e. the tap describes the
// committed prefix and never runs ahead of it.
type quiObserver struct {
	evs  []trace.Event
	taps []uint64
	bad  []string
}

func (o *quiObserver) OnEvent(ev trace.Event) uint64 {
	o.evs = append(o.evs, ev)
	return 0
}

func (o *quiObserver) OnQuiescent(step uint64) {
	if step != uint64(len(o.evs)) {
		o.bad = append(o.bad, fmt.Sprintf("tap %d after %d committed events", step, len(o.evs)))
	}
	o.taps = append(o.taps, step)
}

// TestQuiescentTapsPrecedePicks: OnQuiescent fires at the top of every
// scheduling round — after all threads have parked, before the strategy
// picks — carrying exactly the committed-prefix length. Taps therefore
// start at 0 (before the first pick) and strictly increase (every round
// commits at least one event). In single-step mode every round commits
// exactly one event, so the tap sequence is precisely 0..n-1.
func TestQuiescentTapsPrecedePicks(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		label := fmt.Sprintf("seed=%d", seed)
		fast := &quiObserver{}
		Run(batchWorkload(3, 5), Config{
			Strategy: NewRandomMP(2, 0.1, seed), Observers: []Observer{fast}})
		slow := &quiObserver{}
		Run(batchWorkload(3, 5), Config{
			Strategy: NewRandomMP(2, 0.1, seed), Observers: []Observer{slow}, SingleStep: true})
		for _, o := range []*quiObserver{fast, slow} {
			if len(o.bad) > 0 {
				t.Fatalf("%s: taps ran ahead of the commit stream: %v", label, o.bad)
			}
			if len(o.taps) == 0 || o.taps[0] != 0 {
				t.Fatalf("%s: first tap %v, want a step-0 tap before the first pick", label, o.taps)
			}
			for i := 1; i < len(o.taps); i++ {
				if o.taps[i] <= o.taps[i-1] {
					t.Fatalf("%s: taps not strictly increasing: %v", label, o.taps)
				}
			}
		}
		if !reflect.DeepEqual(fast.evs, slow.evs) {
			t.Fatalf("%s: event streams diverge between modes", label)
		}
		for i, tap := range slow.taps {
			if tap != uint64(i) {
				t.Fatalf("%s: single-step taps %v, want exactly one per event", label, slow.taps)
			}
		}
		// Fast-path rounds may commit multi-event runs, so its taps are a
		// subset of the single-step sequence — never new values.
		seen := make(map[uint64]bool, len(slow.taps))
		for _, tap := range slow.taps {
			seen[tap] = true
		}
		for _, tap := range fast.taps {
			if !seen[tap] {
				t.Fatalf("%s: fast-path tap %d is not a round boundary of the stream", label, tap)
			}
		}
	}
}

// TestQuiescentPlainObserverUnaffected: registering only plain
// observers leaves the quiescent slice empty and the committed stream
// identical — the hook is zero-cost when unused.
func TestQuiescentPlainObserverUnaffected(t *testing.T) {
	plain := &epochObserver{}
	Run(batchWorkload(3, 5), Config{
		Strategy: NewRandomMP(2, 0.1, 7), Observers: []Observer{plain}})
	tapped := &quiObserver{}
	Run(batchWorkload(3, 5), Config{
		Strategy: NewRandomMP(2, 0.1, 7), Observers: []Observer{tapped}})
	if !reflect.DeepEqual(plain.evs, tapped.evs) {
		t.Fatal("quiescent taps perturbed the committed stream")
	}
}
