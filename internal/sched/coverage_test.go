package sched

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestFailureReasonStrings(t *testing.T) {
	cases := map[FailureReason]string{
		ReasonAssert:    "assertion",
		ReasonCrash:     "crash",
		ReasonDeadlock:  "deadlock",
		ReasonStepLimit: "step-limit",
		ReasonDiverged:  "diverged",
		reasonStopped:   "stopped",
	}
	for r, want := range cases {
		if r.String() != want {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), want)
		}
	}
	if !strings.HasPrefix(FailureReason(99).String(), "reason(") {
		t.Error("unknown reason should render numerically")
	}
}

func TestPickViewFind(t *testing.T) {
	v := &PickView{Candidates: []Candidate{
		{TID: 1, Kind: trace.KindLoad},
		{TID: 3, Kind: trace.KindLock},
	}}
	c, ok := v.Find(3)
	if !ok || c.Kind != trace.KindLock {
		t.Fatalf("Find(3) = %v, %v", c, ok)
	}
	if _, ok := v.Find(9); ok {
		t.Fatal("Find of absent tid succeeded")
	}
	if !v.Has(1) || v.Has(9) {
		t.Fatal("Has wrong")
	}
}

func TestResultOverheadZeroBase(t *testing.T) {
	r := &Result{}
	if r.Overhead() != 0 {
		t.Fatal("zero-base overhead should be 0")
	}
	r.BaseCost, r.ExtraCost = 100, 25
	if r.Overhead() != 0.25 {
		t.Fatalf("overhead = %v", r.Overhead())
	}
}

func TestFindCycleShapes(t *testing.T) {
	// Simple two-cycle.
	c := findCycle(map[trace.TID]trace.TID{1: 2, 2: 1})
	if len(c) != 2 {
		t.Fatalf("two-cycle = %v", c)
	}
	// Chain into a cycle: 0 -> 1 -> 2 -> 1; the cycle is {1,2}.
	c = findCycle(map[trace.TID]trace.TID{0: 1, 1: 2, 2: 1})
	if len(c) != 2 {
		t.Fatalf("tail+cycle = %v", c)
	}
	// Pure chain, no cycle.
	if c := findCycle(map[trace.TID]trace.TID{0: 1, 1: 2}); c != nil {
		t.Fatalf("chain produced cycle %v", c)
	}
	// Empty graph.
	if c := findCycle(nil); c != nil {
		t.Fatalf("empty graph produced cycle %v", c)
	}
	// Self-loop.
	if c := findCycle(map[trace.TID]trace.TID{4: 4}); len(c) != 1 || c[0] != 4 {
		t.Fatalf("self-loop = %v", c)
	}
	// Deterministic across equivalent graphs: lowest start wins.
	a := findCycle(map[trace.TID]trace.TID{5: 6, 6: 5, 1: 2, 2: 1})
	if len(a) != 2 || (a[0] != 1 && a[0] != 2) {
		t.Fatalf("cycle choice not deterministic-lowest: %v", a)
	}
}

func TestThreadAccessors(t *testing.T) {
	res := Run(func(th *Thread) {
		if th.ID() != 0 || th.Name() != "main" {
			th.Fail("t", "main identity wrong: %d %q", th.ID(), th.Name())
		}
		c := th.Spawn("worker", func(ct *Thread) {
			if ct.Name() != "worker" || ct.ID() != 1 {
				ct.Fail("t", "child identity wrong")
			}
		})
		th.Join(c)
	}, Config{Strategy: Lowest{}})
	if res.Failure != nil {
		t.Fatal(res.Failure)
	}
}

func TestEffectCtxNow(t *testing.T) {
	var at uint64
	res := Run(func(th *Thread) {
		th.Yield()
		th.Point(&Op{Kind: trace.KindYield, Effect: func(ctx *EffectCtx) { at = ctx.Now() }})
	}, Config{Strategy: Lowest{}})
	if res.Failure != nil {
		t.Fatal(res.Failure)
	}
	// Now() runs during step 3's effect (start, yield, yield).
	if at != 3 {
		t.Fatalf("ctx.Now() = %d, want 3", at)
	}
}

func TestOpDescribeVariants(t *testing.T) {
	plain := &Op{Kind: trace.KindLock, Obj: 5}
	if !strings.Contains(plain.describe(), "lock") {
		t.Fatal("plain describe missing kind")
	}
	named := &Op{Kind: trace.KindLock, Obj: 5, Desc: "lock m"}
	if !strings.Contains(named.describe(), "lock m") {
		t.Fatal("named describe missing desc")
	}
	dyn := &Op{Kind: trace.KindLock, Obj: 5, Desc: "lock m", DescFn: func() string { return "held by w" }}
	if !strings.Contains(dyn.describe(), "held by w") {
		t.Fatal("dynamic describe missing holder")
	}
	var nilOp *Op
	if nilOp.describe() != "?" {
		t.Fatal("nil describe")
	}
}

func TestOrderStrategyConsumed(t *testing.T) {
	s := &OrderStrategy{Order: []trace.TID{0, 0}}
	v := &PickView{Candidates: []Candidate{{TID: 0, Kind: trace.KindYield}}}
	s.Pick(v)
	if s.Consumed() != 1 {
		t.Fatalf("consumed = %d", s.Consumed())
	}
}

func TestRandomMPZeroValue(t *testing.T) {
	// The zero value must be usable (lazy init path).
	s := &RandomMP{}
	res := Run(func(th *Thread) { th.Yield() }, Config{Strategy: s})
	if res.Failure != nil {
		t.Fatal(res.Failure)
	}
	if s.P != 1 {
		t.Fatalf("zero-value P normalized to %d", s.P)
	}
}

func TestRandomMPPreemptionPath(t *testing.T) {
	// More threads than processors with high preemption exercises the
	// rotation path; the run must still complete.
	res := Run(program(6, 20), Config{Strategy: NewRandomMP(2, 0.5, 9)})
	if res.Failure != nil {
		t.Fatal(res.Failure)
	}
}

func TestNewRandomMPClampsP(t *testing.T) {
	s := NewRandomMP(0, 0, 1)
	if s.P != 1 {
		t.Fatalf("P = %d, want clamp to 1", s.P)
	}
}
