// Package sched implements the deterministic multiprocessor execution
// substrate that stands in for PRES's control over real OS threads.
//
// Application threads are goroutines, but they never run concurrently:
// every instrumented operation (memory access, synchronization op,
// system call, function entry, basic-block boundary) is a scheduling
// point at which the thread parks with a pending operation, and a
// central scheduler picks which parked thread proceeds next. The total
// grant order is the execution's global order; strategies (package-level
// RandomMP for production runs, replay-directed strategies in
// internal/core) choose the order, and observers (sketch recorders, race
// detectors, full-order capture) watch it.
//
// Because exactly one application thread executes at any moment and all
// simulation state is mutated either inside operation effects (run on
// the scheduler goroutine) or between two scheduling points of the
// running thread, the host program is free of data races without any
// host-level locking.
//
// # Run grants
//
// Executions are dominated by long same-thread runs, so the scheduler
// amortizes its bookkeeping over them (see INTERNALS.md, "The grant
// protocol"). A strategy that also implements RunGranter may grant the
// picked thread a run of up to N steps under a single Pick; threads can
// pre-declare straight-line batches of ops (Thread.PointBatch) that
// commit under one channel handoff instead of one round-trip per op; and
// when exactly one thread is runnable the loop re-grants it without
// rebuilding the candidate view. Config.SingleStep disables all of it
// and restores the one-Pick-one-step reference behavior; the two modes
// commit byte-identical traces (asserted by TestPropFastPathEquivalence).
package sched

import (
	"context"
	"fmt"
	"slices"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/trace"
)

// Observer watches the committed event stream. OnEvent returns the extra
// logical cost the observation imposes on the production run (e.g., the
// cost of appending to a sketch log); pure observers return 0.
//
// The scheduler reuses one internal event value across steps and passes
// it by value, so observers never see per-step garbage; an observer that
// retains events must copy them (they are plain values, so assignment
// copies).
type Observer interface {
	OnEvent(ev trace.Event) (extraCost uint64)
}

// RunObserver is an optional Observer extension for run batching: when
// the scheduler grants a multi-step run, it announces the granted
// thread and length once, before the run's first commit, so an
// observer that appends per event (a sketch recorder, an order
// capture) can reserve capacity for the whole run — in a per-thread
// shard, the tid says which — instead of growing inside the commit
// loop. The length is an upper bound — a run may end early — and
// budget-1 grants announce nothing, so implementing this interface
// must not change what the observer records, only how it allocates.
type RunObserver interface {
	Observer
	OnRunStart(tid trace.TID, n int)
}

// EpochObserver is an optional Observer extension for per-thread log
// recording: the scheduler calls OnEpochSeal(tid) at every epoch
// boundary of thread tid — lazily, at the control transfer where a
// *different* thread is granted (so consecutive same-thread grants
// form one epoch and pay for one seal), plus once at end of execution
// for the last-granted thread. Between two seals of a thread, only
// that thread commits events, which is what makes concatenating
// sealed per-thread chunks in seal order reproduce the global order
// (see trace.ShardedSketch and INTERNALS.md, "Per-thread sketch logs
// & epoch merge"). The return value is the modelled logical cost of
// the synchronization the seal stands for; it is added to
// Result.ExtraCost like OnEvent's.
type EpochObserver interface {
	Observer
	OnEpochSeal(tid trace.TID) (extraCost uint64)
}

// QuiescentObserver is an optional Observer extension for prefix
// snapshotting: OnQuiescent(step) fires at the top of every scheduling
// round — after every in-flight thread has parked and before the
// Strategy picks — with the number of events committed so far. At that
// instant no thread is executing user code and no thread sits between
// a syscall's decision and its effect, which is exactly the
// quiescent-point contract vsys.World.Snapshot requires; and because
// the tap precedes the pick, any state the Strategy mutates while
// choosing still describes the committed prefix, not the upcoming
// event. (A control-transfer tap would run one pick ahead of the
// commit stream — the pick that detects the transfer has already
// happened.) Multi-event runs granted to one thread commit without
// returning to the round top, so taps land between runs, not between
// every pair of events. The hook costs nothing when no registered
// observer implements it (the scan at construction leaves an empty
// slice), and must not mutate scheduling state: it is a read-only
// tap, fired identically in single-step and fast-path modes.
type QuiescentObserver interface {
	Observer
	OnQuiescent(step uint64)
}

// Candidate describes one enabled parked thread offered to a Strategy.
type Candidate struct {
	TID  trace.TID
	Kind trace.Kind
	Obj  uint64
	Arg  uint64
	// Cost is the pending op's logical duration; time-weighted
	// strategies use it to model how long the thread will occupy its
	// processor.
	Cost uint64
	// Run is the length of the thread's declared straight-line batch
	// counting the pending op (1 for a plain op). RunGranter strategies
	// size their run budgets from it.
	Run int
}

// PickView is the scheduler state a Strategy sees when choosing the next
// thread. Candidates are sorted by TID and all enabled.
//
// The scheduler reuses the view and its candidate buffer across steps;
// strategies must not retain either past the Pick call.
type PickView struct {
	Step       uint64
	Candidates []Candidate
}

// Has reports whether tid is among the candidates. Candidates are
// TID-sorted, so this is a binary search.
func (v *PickView) Has(tid trace.TID) bool {
	_, ok := v.Find(tid)
	return ok
}

// Find returns the candidate for tid, if present, by binary search over
// the TID-sorted candidate list.
func (v *PickView) Find(tid trace.TID) (Candidate, bool) {
	i := sort.Search(len(v.Candidates), func(i int) bool {
		return v.Candidates[i].TID >= tid
	})
	if i < len(v.Candidates) && v.Candidates[i].TID == tid {
		return v.Candidates[i], true
	}
	return Candidate{}, false
}

// Strategy decides the interleaving. Pick returns the thread to grant
// next; ok=false aborts the run with a divergence failure (used by the
// replayer when the recorded schedule can no longer be honored).
type Strategy interface {
	Pick(view *PickView) (tid trace.TID, ok bool)
}

// RunGranter is the optional fast-path seam a Strategy may implement to
// grant the picked thread a run of several steps under one Pick.
//
// Right after Pick returns tid, the scheduler calls RunBudget(view, tid);
// a budget of N >= 2 lets the thread commit up to N consecutive steps
// before the next Pick. Before each extra step (the 2nd..Nth) is
// committed, ObserveStep(tid, cost) reports the op about to run so the
// strategy can keep its accounting (virtual time, replay cursor) exactly
// as if it had Picked the step itself; ObserveStep cannot veto — the run
// ends early only for scheduler-level reasons (the op is disabled, the
// thread slept or exited, the step limit was hit).
//
// Strategies that do not implement RunGranter get budget 1 everywhere —
// the exact single-step behavior. Replay-directed strategies deliberately
// stay at budget 1 near flip points so search precision is untouched
// (the budget-1 invariant; see INTERNALS.md).
type RunGranter interface {
	RunBudget(view *PickView, tid trace.TID) int
	ObserveStep(tid trace.TID, cost uint64)
}

// Config parameterizes one execution.
type Config struct {
	Strategy  Strategy   // required
	Observers []Observer // called in order for every committed event
	// Ctx, when non-nil, bounds the execution: the scheduler polls it
	// (non-blocking) at every pick point and fails the run with
	// ReasonCancelled once it is done, then unwinds every thread — the
	// cooperative-cancellation seam Record/Replay thread the public
	// context through. Cancellation lands between runs, never inside a
	// run batch or mid-effect. Nil (the default) keeps the loop
	// select-free.
	Ctx context.Context
	// MaxSteps bounds the execution; exceeding it fails the run with
	// ReasonStepLimit. 0 means DefaultMaxSteps.
	MaxSteps uint64
	// Metrics, when non-nil, receives the substrate's counters:
	// sched_steps_total, sched_picks_total, sched_threads_total, plus
	// the fast-path instruments pres_sched_handoffs_total,
	// pres_sched_fastpath_steps_total and the pres_sched_run_length
	// histogram (see OBSERVABILITY.md). The instruments are resolved
	// once at Run, so the per-event cost is one atomic add; nil (the
	// default) keeps the hot path free of any measurement cost.
	Metrics *obs.Registry
	// SingleStep disables the fast path: one Pick per committed step,
	// no run budgets, no tight single-candidate loop, and the legacy
	// allocate-per-step view/event/effect-context structure. It is the
	// reference mode the equivalence property tests compare against and
	// the "before" side of the allocs/step benchmarks. Batches declared
	// with PointBatch still commit under one handoff (that part of the
	// protocol is thread-side and mode-independent).
	SingleStep bool
	// NoBatch makes Thread.PointBatch decompose into sequential Point
	// calls, one announce/grant round-trip per op — the measurement
	// baseline for handoffs/step and steps/sec. Traces under NoBatch
	// are only comparable for strategies that ignore Candidate.Run.
	NoBatch bool
	// Inject, when non-nil, is the failure-injection hook consulted at
	// every vsys call and lock acquisition (see inject.go and
	// internal/scenario). Nil — the default — keeps the instrumented
	// layers on their unconditional fast path.
	Inject InjectFn
}

// DefaultMaxSteps bounds runs whose Config leaves MaxSteps zero.
const DefaultMaxSteps = 5_000_000

// Result summarizes one execution.
type Result struct {
	Failure      *Failure // nil if the program ran to completion
	Steps        uint64   // scheduling points committed
	BaseCost     uint64   // logical cost of the bare execution
	ExtraCost    uint64   // logical cost added by observers (recording)
	Threads      int      // threads created over the lifetime
	EventsByKind [trace.NumKinds]uint64
	// Handoffs counts scheduler->thread channel grants. Batched ops
	// commit without one, so Handoffs <= Steps; the gap is the
	// amortization PointBatch buys. Identical between fast-path and
	// single-step modes.
	Handoffs uint64
	// FastPathSteps counts steps committed without a fresh Pick (the
	// 2nd..Nth steps of run grants and batch advances). Always 0 in
	// single-step mode.
	FastPathSteps uint64
}

// Overhead returns ExtraCost/BaseCost — the modelled production-run
// recording overhead as a fraction (0.25 == 25% slowdown).
func (r *Result) Overhead() float64 {
	if r.BaseCost == 0 {
		return 0
	}
	return float64(r.ExtraCost) / float64(r.BaseCost)
}

type threadState uint8

const (
	stateParked  threadState = iota // at a point with a pending op
	stateRunning                    // between points (or starting up)
	stateAsleep                     // at a point with no pending op (cond wait)
	stateDone
)

type announcement struct {
	t      *Thread
	op     *Op
	run    []*Op // declared batch (PointBatch); op == run[0] when set
	exited bool
	fail   *Failure
}

// runLenBounds buckets the pres_sched_run_length histogram: how many
// steps each grant committed before control returned to the strategy.
var runLenBounds = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// Scheduler coordinates one execution. Create with Run.
type Scheduler struct {
	cfg      Config
	announce chan announcement
	stopC    chan struct{}
	threads  []*Thread // dense by TID; creation order == TID order
	nextTID  trace.TID
	inflight int // threads that will announce before the next pick
	live     int
	step     uint64
	failure  *Failure
	res      Result
	sleepReq bool                // set by EffectCtx.Sleep during the current grant
	ctxDone  <-chan struct{}     // Config.Ctx's done channel, nil when unset
	granter  RunGranter          // Strategy's optional run seam; nil in single-step mode
	runObs   []RunObserver       // observers that pre-reserve per granted run
	epochObs []EpochObserver     // observers sealed at control transfers
	quiObs   []QuiescentObserver // observers tapped at control transfers
	// lastGrant is the thread the previous pick round granted: the
	// owner of the currently open epoch. Sealed (for epochObs) when a
	// different thread is granted, and finally at end of execution.
	lastGrant *Thread

	// Reused per-step machinery (fast path). The view, candidate
	// buffer, committed event and effect context live for the whole
	// execution; the loop refills them in place so the steady state
	// allocates nothing.
	view  PickView
	cands []Candidate
	ev    trace.Event
	ectx  EffectCtx

	// Tight single-candidate loop state: when the previous view had
	// exactly one candidate and nothing that could change any thread's
	// candidacy happened since (no effects and no exits — or no other
	// live thread at all), the next round reuses the view with the solo
	// candidate refreshed in place instead of rescanning the table.
	solo       *Thread
	soloPrev   bool // previous pick round offered exactly one candidate
	effectsRan bool // any Effect ran since the last pick round
	exitSeen   bool // any thread exited since the last pick round

	// Pre-resolved metric instruments (nil when Config.Metrics is nil;
	// their methods are then single-nil-check no-ops).
	mSteps     *obs.Counter
	mPicks     *obs.Counter
	mThreads   *obs.Counter
	mHandoffs  *obs.Counter
	mFastSteps *obs.Counter
	mRunLen    *obs.Histogram
}

// Run executes root as thread 0 under cfg and returns the result. It
// blocks until every thread has exited (after a failure, remaining
// threads are unwound).
func Run(root func(*Thread), cfg Config) *Result {
	if cfg.Strategy == nil {
		panic("sched: Config.Strategy is required")
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = DefaultMaxSteps
	}
	s := &Scheduler{
		cfg:      cfg,
		announce: make(chan announcement),
		stopC:    make(chan struct{}),
	}
	if !cfg.SingleStep {
		s.granter, _ = cfg.Strategy.(RunGranter)
		for _, o := range cfg.Observers {
			if ro, ok := o.(RunObserver); ok {
				s.runObs = append(s.runObs, ro)
			}
		}
	}
	// Epoch seals fire in both modes — the per-thread log must see the
	// same seal points whether or not the fast path is on, so the two
	// modes stay trace- and cost-equivalent.
	for _, o := range cfg.Observers {
		if eo, ok := o.(EpochObserver); ok {
			s.epochObs = append(s.epochObs, eo)
		}
		if qo, ok := o.(QuiescentObserver); ok {
			s.quiObs = append(s.quiObs, qo)
		}
	}
	s.ectx.s = s
	s.ectx.Ev = &s.ev
	if cfg.Metrics != nil {
		s.mSteps = cfg.Metrics.Counter("sched_steps_total")
		s.mPicks = cfg.Metrics.Counter("sched_picks_total")
		s.mThreads = cfg.Metrics.Counter("sched_threads_total")
		s.mHandoffs = cfg.Metrics.Counter("pres_sched_handoffs_total")
		s.mFastSteps = cfg.Metrics.Counter("pres_sched_fastpath_steps_total")
		s.mRunLen = cfg.Metrics.Histogram("pres_sched_run_length", runLenBounds)
	}
	if cfg.Ctx != nil {
		s.ctxDone = cfg.Ctx.Done()
	}
	t0 := s.addThread("main", trace.NoTID)
	s.inflight = 1
	go s.runThread(t0, root)
	s.loop()
	// Final epoch: the last-granted thread's open epoch ends with the
	// execution (shutdown and failure paths included, so the sealed
	// chunks always cover the whole committed stream).
	if s.lastGrant != nil {
		for _, o := range s.epochObs {
			s.res.ExtraCost += o.OnEpochSeal(s.lastGrant.id)
		}
	}
	s.res.Failure = s.failure
	s.res.Steps = s.step
	return &s.res
}

func (s *Scheduler) addThread(name string, parent trace.TID) *Thread {
	t := &Thread{
		id:     s.nextTID,
		name:   name,
		parent: parent,
		s:      s,
		grant:  make(chan struct{}),
		state:  stateRunning,
	}
	t.yieldOp.Kind = trace.KindYield
	s.nextTID++
	s.threads = append(s.threads, t)
	s.live++
	s.res.Threads++
	s.mThreads.Inc()
	return t
}

// runThread is the goroutine wrapper for one application thread.
func (s *Scheduler) runThread(t *Thread, fn func(*Thread)) {
	var fail *Failure
	func() {
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			if f, ok := r.(*Failure); ok {
				fail = f
				return
			}
			// A non-Failure panic is an application crash: treat it as
			// a manifested failure so the harness can observe it.
			fail = &Failure{
				Reason: ReasonCrash,
				TID:    t.id,
				Step:   s.step,
				Msg:    fmt.Sprint(r),
			}
		}()
		t.Point(&Op{Kind: trace.KindThreadStart, Obj: uint64(uint32(t.parent))})
		fn(t)
		t.Point(&Op{Kind: trace.KindThreadExit})
	}()
	if fail != nil && fail.Reason == reasonStopped {
		fail = nil // unwound during shutdown, not a real failure
	}
	s.announce <- announcement{t: t, exited: true, fail: fail}
}

// park records a non-exit announcement: the thread is at a point with a
// pending op (and possibly a declared batch behind it).
func (s *Scheduler) park(a announcement) {
	a.t.pending = a.op
	a.t.batch = a.run
	a.t.batchPos = 1
	a.t.state = stateParked
}

func (s *Scheduler) loop() {
	for {
		// Wait until no thread is executing user code.
		for s.inflight > 0 {
			a := <-s.announce
			s.inflight--
			if a.exited {
				s.handleExit(a)
			} else {
				s.park(a)
			}
		}
		if s.failure != nil || s.live == 0 {
			s.shutdown()
			return
		}
		if s.ctxDone != nil {
			// Non-blocking poll: cancellation lands at the next pick
			// point, never mid-effect or mid-run, so the unwind sees a
			// consistent simulation state.
			select {
			case <-s.ctxDone:
				s.failure = &Failure{Reason: ReasonCancelled, Step: s.step,
					Msg: "execution cancelled: " + s.cfg.Ctx.Err().Error()}
				s.shutdown()
				return
			default:
			}
		}
		if s.step >= s.cfg.MaxSteps {
			s.failure = &Failure{Reason: ReasonStepLimit, Step: s.step,
				Msg: fmt.Sprintf("execution exceeded %d scheduling points", s.cfg.MaxSteps)}
			s.shutdown()
			return
		}
		// Quiescent tap: every thread is parked and the strategy has not
		// yet picked, so s.step committed events fully describe the state
		// an observer captures here (see QuiescentObserver).
		for _, o := range s.quiObs {
			o.OnQuiescent(s.step)
		}
		var view *PickView
		if s.soloUsable() {
			// Tight single-candidate loop: refresh the solo candidate
			// in place instead of rescanning the thread table. Sound
			// because nothing since the last round can have changed any
			// other thread's candidacy (see soloUsable).
			s.refreshSolo()
			view = &s.view
		} else if s.cfg.SingleStep {
			view = s.buildViewAlloc()
		} else {
			view = s.buildView()
		}
		if len(view.Candidates) == 0 {
			s.failure = s.deadlockFailure()
			s.shutdown()
			return
		}
		tid, ok := s.cfg.Strategy.Pick(view)
		s.mPicks.Inc()
		if !ok {
			s.failure = &Failure{Reason: ReasonDiverged, Step: s.step,
				Msg: "strategy aborted: recorded schedule can no longer be honored"}
			s.shutdown()
			return
		}
		if int(tid) < 0 || int(tid) >= len(s.threads) {
			s.failure = &Failure{Reason: ReasonDiverged, Step: s.step, TID: tid,
				Msg: fmt.Sprintf("strategy picked unknown thread %d", tid)}
			s.shutdown()
			return
		}
		t := s.threads[tid]
		if t.state != stateParked || !opEnabled(t.pending) {
			s.failure = &Failure{Reason: ReasonDiverged, Step: s.step, TID: tid,
				Msg: fmt.Sprintf("strategy picked non-runnable thread %d", tid)}
			s.shutdown()
			return
		}
		budget := 1
		if s.granter != nil {
			if b := s.granter.RunBudget(view, tid); b > 1 {
				budget = b
			}
		}
		// Control transfer: the outgoing thread's epoch ends here, before
		// the incoming thread commits anything. Same-thread re-grants
		// keep the epoch open — that is the amortization per-thread logs
		// buy (one seal per context switch, not per grant).
		if s.lastGrant != nil && s.lastGrant != t {
			for _, o := range s.epochObs {
				s.res.ExtraCost += o.OnEpochSeal(s.lastGrant.id)
			}
		}
		s.lastGrant = t
		solo := len(view.Candidates) == 1 && !s.cfg.SingleStep
		if s.cfg.SingleStep {
			s.grantSingle(t)
		} else {
			s.grantRun(t, budget)
		}
		s.soloPrev = solo
		s.solo = t
	}
}

// soloUsable reports whether the tight single-candidate loop may reuse
// the previous view. That requires: fast-path mode; the previous round
// offered exactly one candidate (which grantRun then ran); that thread
// is parked again with an enabled op; and nothing since the pick could
// have changed any other thread's candidacy — either no other live
// thread exists at all (effects are then harmless), or the whole run
// committed without effects and without exits. Enabledness only ever
// changes through op effects or thread exits (the package's state-
// mutation contract: Op.Enabled must read only state mutated inside
// effects, plus Join's done-state which exits flip), so under these
// conditions the candidate set is provably {solo} again.
func (s *Scheduler) soloUsable() bool {
	if !s.soloPrev || s.cfg.SingleStep {
		return false
	}
	t := s.solo
	if t.state != stateParked || !opEnabled(t.pending) {
		return false
	}
	return s.live == 1 || (!s.effectsRan && !s.exitSeen)
}

// refreshSolo rewrites the single candidate from the solo thread's new
// pending op, leaving the view's backing store untouched.
func (s *Scheduler) refreshSolo() {
	t := s.solo
	s.cands = s.cands[:1]
	s.cands[0] = Candidate{
		TID:  t.id,
		Kind: t.pending.Kind,
		Obj:  t.pending.Obj,
		Arg:  t.pending.Arg,
		Cost: t.pending.cost(),
		Run:  t.remainingRun(),
	}
	s.view.Step = s.step
	s.view.Candidates = s.cands
}

func opEnabled(op *Op) bool { return op != nil && (op.Enabled == nil || op.Enabled()) }

// buildView refills the reused view/candidate buffer (fast path).
func (s *Scheduler) buildView() *PickView {
	s.cands = s.cands[:0]
	for _, t := range s.threads {
		if t.state == stateParked && opEnabled(t.pending) {
			s.cands = append(s.cands, Candidate{
				TID:  t.id,
				Kind: t.pending.Kind,
				Obj:  t.pending.Obj,
				Arg:  t.pending.Arg,
				Cost: t.pending.cost(),
				Run:  t.remainingRun(),
			})
		}
	}
	s.view.Step = s.step
	s.view.Candidates = s.cands
	return &s.view
}

// buildViewAlloc is the legacy allocate-per-step view construction, kept
// verbatim as the single-step reference (and the "before" side of the
// allocs/step benchmarks).
func (s *Scheduler) buildViewAlloc() *PickView {
	v := &PickView{Step: s.step}
	for _, t := range s.threads {
		if t.state == stateParked && opEnabled(t.pending) {
			v.Candidates = append(v.Candidates, Candidate{
				TID:  t.id,
				Kind: t.pending.Kind,
				Obj:  t.pending.Obj,
				Arg:  t.pending.Arg,
				Cost: t.pending.cost(),
				Run:  t.remainingRun(),
			})
		}
	}
	return v
}

// commit commits t's pending op as one step, filling ev (which the
// effect may amend) and fanning it out to observers. Shared by the fast
// and single-step paths; ev is &s.ev on the fast path and a fresh
// stack/heap event in single-step mode.
func (s *Scheduler) commit(t *Thread, ev *trace.Event) {
	op := t.pending
	t.pending = nil
	t.state = stateRunning
	s.step++
	s.mSteps.Inc()
	t.tcount++
	*ev = trace.Event{
		Seq:    s.step,
		TID:    t.id,
		TCount: t.tcount,
		Kind:   op.Kind,
		Obj:    op.Obj,
		Arg:    op.Arg,
	}
	s.res.BaseCost += op.cost()
	s.sleepReq = false
	if op.Effect != nil {
		s.effectsRan = true
		if ev == &s.ev {
			s.ectx.t = t
			op.Effect(&s.ectx)
		} else {
			op.Effect(&EffectCtx{s: s, t: t, Ev: ev})
		}
	}
	if int(ev.Kind) < trace.NumKinds {
		s.res.EventsByKind[ev.Kind]++
	}
	for _, o := range s.cfg.Observers {
		s.res.ExtraCost += o.OnEvent(*ev)
	}
}

// advanceBatch moves t to the next op of its declared batch, if any.
func advanceBatch(t *Thread) bool {
	if t.batch != nil && t.batchPos < len(t.batch) {
		t.pending = t.batch[t.batchPos]
		t.batchPos++
		t.state = stateParked
		return true
	}
	t.batch = nil
	return false
}

// grantRun commits a run of up to budget steps for t: the pending op,
// then further ops from t's declared batch (handoff-free) or — when the
// budget allows — the ops t announces after each grant. The run ends
// when the budget is spent, the batch and budget end together, the
// thread sleeps or exits, its next op is disabled, a failure lands, or
// the step limit is reached. Cancellation is never checked here: it
// lands between runs, at the pick point.
func (s *Scheduler) grantRun(t *Thread, budget int) {
	if budget > 1 {
		for _, o := range s.runObs {
			o.OnRunStart(t.id, budget)
		}
	}
	s.effectsRan = false
	s.exitSeen = false
	runLen := 0
	for {
		s.commit(t, &s.ev)
		runLen++
		budget--
		if s.sleepReq {
			if t.batch != nil && t.batchPos < len(t.batch) {
				panic("sched: Sleep from a non-final op of a PointBatch")
			}
			t.batch = nil
			t.state = stateAsleep
			break // thread stays blocked in Point; no announcement coming
		}
		if advanceBatch(t) {
			// Next batch op is staged as pending with no handoff. Commit
			// it now if the budget allows; otherwise it waits, parked,
			// for the next pick round.
			if budget <= 0 || s.step >= s.cfg.MaxSteps || s.failure != nil {
				break
			}
			if s.granter != nil {
				s.granter.ObserveStep(t.id, t.pending.cost())
			}
			s.res.FastPathSteps++
			s.mFastSteps.Inc()
			continue
		}
		// Batch exhausted (or plain op): hand control back to the thread.
		s.res.Handoffs++
		s.mHandoffs.Inc()
		s.inflight++
		t.grant <- struct{}{}
		if budget <= 0 || s.step >= s.cfg.MaxSteps {
			break
		}
		// Continue the run through t's next announcement, parking any
		// other arrivals (children spawned by this run's effects) as
		// they come.
		tDone := false
		for {
			a := <-s.announce
			s.inflight--
			if a.exited {
				s.handleExit(a)
				if a.t == t {
					tDone = true
					break
				}
				continue
			}
			s.park(a)
			if a.t == t {
				break
			}
		}
		if tDone || s.failure != nil || !opEnabled(t.pending) {
			break
		}
		if s.granter != nil {
			s.granter.ObserveStep(t.id, t.pending.cost())
		}
		s.res.FastPathSteps++
		s.mFastSteps.Inc()
	}
	s.mRunLen.Observe(float64(runLen))
}

// grantSingle is the single-step reference path: one committed step per
// pick, with the legacy per-step event/effect-context allocation. Batch
// advances still happen protocol-side (the thread blocks in PointBatch
// until its last op commits), so traces and handoff counts match the
// fast path exactly.
func (s *Scheduler) grantSingle(t *Thread) {
	var ev trace.Event
	s.commit(t, &ev)
	s.mRunLen.Observe(1)
	if s.sleepReq {
		if t.batch != nil && t.batchPos < len(t.batch) {
			panic("sched: Sleep from a non-final op of a PointBatch")
		}
		t.batch = nil
		t.state = stateAsleep
		return // thread stays blocked in Point; no announcement coming
	}
	if advanceBatch(t) {
		return // next batch op waits, parked, for the next pick round
	}
	s.res.Handoffs++
	s.mHandoffs.Inc()
	s.inflight++
	t.grant <- struct{}{}
}

func (s *Scheduler) handleExit(a announcement) {
	a.t.state = stateDone
	s.live--
	s.exitSeen = true
	if a.fail != nil && s.failure == nil {
		s.failure = a.fail
	}
}

// shutdown unwinds every remaining thread: parked and asleep threads are
// woken through the stop channel and panic out of Point; we drain their
// exit announcements so no goroutine leaks.
func (s *Scheduler) shutdown() {
	close(s.stopC)
	for s.live > 0 {
		a := <-s.announce
		if a.exited {
			s.handleExit(a)
		}
		// Non-exit announcements during shutdown come from threads that
		// were mid-Point when stop closed; they will observe stopC on
		// their select and exit next. Nothing to do.
	}
}

func (s *Scheduler) deadlockFailure() *Failure {
	f := &Failure{Reason: ReasonDeadlock, Step: s.step}
	var b strings.Builder
	b.WriteString("deadlock: no runnable thread;")
	waitsFor := make(map[trace.TID]trace.TID)
	for _, t := range s.threads {
		switch t.state {
		case stateParked:
			desc := t.pending.describe()
			f.Stuck = append(f.Stuck, Stuck{TID: t.id, Name: t.name, What: desc})
			fmt.Fprintf(&b, " t%d(%s) blocked at %s;", t.id, t.name, desc)
			if t.pending.BlockedOn != nil {
				if h := t.pending.BlockedOn(); h != trace.NoTID {
					waitsFor[t.id] = h
				}
			}
		case stateAsleep:
			f.Stuck = append(f.Stuck, Stuck{TID: t.id, Name: t.name, What: "asleep (condition wait)"})
			fmt.Fprintf(&b, " t%d(%s) asleep in wait;", t.id, t.name)
		}
	}
	f.Cycle = findCycle(waitsFor)
	if len(f.Cycle) > 0 {
		fmt.Fprintf(&b, " waits-for cycle: %v;", f.Cycle)
	}
	f.Msg = b.String()
	return f
}

// findCycle extracts one cycle from the waits-for graph (each node has
// out-degree at most one, so chasing pointers with a visited set finds
// any cycle in linear time). Nodes are visited in ascending id order for
// a deterministic result.
func findCycle(waitsFor map[trace.TID]trace.TID) []trace.TID {
	starts := make([]trace.TID, 0, len(waitsFor))
	for tid := range waitsFor {
		starts = append(starts, tid)
	}
	slices.Sort(starts)
	done := make(map[trace.TID]bool)
	for _, start := range starts {
		if done[start] {
			continue
		}
		pos := map[trace.TID]int{}
		var path []trace.TID
		cur := start
		for {
			if i, onPath := pos[cur]; onPath {
				return path[i:]
			}
			if done[cur] {
				break
			}
			pos[cur] = len(path)
			path = append(path, cur)
			next, ok := waitsFor[cur]
			if !ok {
				break
			}
			cur = next
		}
		for _, tid := range path {
			done[tid] = true
		}
	}
	return nil
}
