// Package sched implements the deterministic multiprocessor execution
// substrate that stands in for PRES's control over real OS threads.
//
// Application threads are goroutines, but they never run concurrently:
// every instrumented operation (memory access, synchronization op,
// system call, function entry, basic-block boundary) is a scheduling
// point at which the thread parks with a pending operation, and a
// central scheduler picks which parked thread proceeds next. The total
// grant order is the execution's global order; strategies (package-level
// RandomMP for production runs, replay-directed strategies in
// internal/core) choose the order, and observers (sketch recorders, race
// detectors, full-order capture) watch it.
//
// Because exactly one application thread executes at any moment and all
// simulation state is mutated either inside operation effects (run on
// the scheduler goroutine) or between two scheduling points of the
// running thread, the host program is free of data races without any
// host-level locking.
package sched

import (
	"context"
	"fmt"
	"slices"
	"strings"

	"repro/internal/obs"
	"repro/internal/trace"
)

// Observer watches the committed event stream. OnEvent returns the extra
// logical cost the observation imposes on the production run (e.g., the
// cost of appending to a sketch log); pure observers return 0.
type Observer interface {
	OnEvent(ev trace.Event) (extraCost uint64)
}

// Candidate describes one enabled parked thread offered to a Strategy.
type Candidate struct {
	TID  trace.TID
	Kind trace.Kind
	Obj  uint64
	Arg  uint64
	// Cost is the pending op's logical duration; time-weighted
	// strategies use it to model how long the thread will occupy its
	// processor.
	Cost uint64
}

// PickView is the scheduler state a Strategy sees when choosing the next
// thread. Candidates are sorted by TID and all enabled.
type PickView struct {
	Step       uint64
	Candidates []Candidate
}

// Has reports whether tid is among the candidates.
func (v *PickView) Has(tid trace.TID) bool {
	for _, c := range v.Candidates {
		if c.TID == tid {
			return true
		}
	}
	return false
}

// Find returns the candidate for tid, if present.
func (v *PickView) Find(tid trace.TID) (Candidate, bool) {
	for _, c := range v.Candidates {
		if c.TID == tid {
			return c, true
		}
	}
	return Candidate{}, false
}

// Strategy decides the interleaving. Pick returns the thread to grant
// next; ok=false aborts the run with a divergence failure (used by the
// replayer when the recorded schedule can no longer be honored).
type Strategy interface {
	Pick(view *PickView) (tid trace.TID, ok bool)
}

// Config parameterizes one execution.
type Config struct {
	Strategy  Strategy   // required
	Observers []Observer // called in order for every committed event
	// Ctx, when non-nil, bounds the execution: the scheduler polls it
	// (non-blocking) at every grant point and fails the run with
	// ReasonCancelled once it is done, then unwinds every thread — the
	// cooperative-cancellation seam Record/Replay thread the public
	// context through. Nil (the default) keeps the loop select-free.
	Ctx context.Context
	// MaxSteps bounds the execution; exceeding it fails the run with
	// ReasonStepLimit. 0 means DefaultMaxSteps.
	MaxSteps uint64
	// Metrics, when non-nil, receives the substrate's counters:
	// sched_steps_total, sched_picks_total and sched_threads_total
	// (see OBSERVABILITY.md). The instruments are resolved once at Run,
	// so the per-event cost is one atomic add; nil (the default) keeps
	// the hot path free of any measurement cost.
	Metrics *obs.Registry
}

// DefaultMaxSteps bounds runs whose Config leaves MaxSteps zero.
const DefaultMaxSteps = 5_000_000

// Result summarizes one execution.
type Result struct {
	Failure      *Failure // nil if the program ran to completion
	Steps        uint64   // scheduling points committed
	BaseCost     uint64   // logical cost of the bare execution
	ExtraCost    uint64   // logical cost added by observers (recording)
	Threads      int      // threads created over the lifetime
	EventsByKind [trace.NumKinds]uint64
}

// Overhead returns ExtraCost/BaseCost — the modelled production-run
// recording overhead as a fraction (0.25 == 25% slowdown).
func (r *Result) Overhead() float64 {
	if r.BaseCost == 0 {
		return 0
	}
	return float64(r.ExtraCost) / float64(r.BaseCost)
}

type threadState uint8

const (
	stateParked  threadState = iota // at a point with a pending op
	stateRunning                    // between points (or starting up)
	stateAsleep                     // at a point with no pending op (cond wait)
	stateDone
)

type announcement struct {
	t      *Thread
	op     *Op
	exited bool
	fail   *Failure
}

// Scheduler coordinates one execution. Create with Run.
type Scheduler struct {
	cfg      Config
	announce chan announcement
	stopC    chan struct{}
	threads  map[trace.TID]*Thread
	order    []trace.TID // creation order, for deterministic candidate listing
	nextTID  trace.TID
	inflight int // threads that will announce before the next pick
	live     int
	step     uint64
	failure  *Failure
	res      Result
	sleepReq bool            // set by EffectCtx.Sleep during the current grant
	ctxDone  <-chan struct{} // Config.Ctx's done channel, nil when unset

	// Pre-resolved metric instruments (nil when Config.Metrics is nil;
	// their methods are then single-nil-check no-ops).
	mSteps   *obs.Counter
	mPicks   *obs.Counter
	mThreads *obs.Counter
}

// Run executes root as thread 0 under cfg and returns the result. It
// blocks until every thread has exited (after a failure, remaining
// threads are unwound).
func Run(root func(*Thread), cfg Config) *Result {
	if cfg.Strategy == nil {
		panic("sched: Config.Strategy is required")
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = DefaultMaxSteps
	}
	s := &Scheduler{
		cfg:      cfg,
		announce: make(chan announcement),
		stopC:    make(chan struct{}),
		threads:  make(map[trace.TID]*Thread),
	}
	if cfg.Metrics != nil {
		s.mSteps = cfg.Metrics.Counter("sched_steps_total")
		s.mPicks = cfg.Metrics.Counter("sched_picks_total")
		s.mThreads = cfg.Metrics.Counter("sched_threads_total")
	}
	if cfg.Ctx != nil {
		s.ctxDone = cfg.Ctx.Done()
	}
	t0 := s.addThread("main", trace.NoTID)
	s.inflight = 1
	go s.runThread(t0, root)
	s.loop()
	s.res.Failure = s.failure
	s.res.Steps = s.step
	return &s.res
}

func (s *Scheduler) addThread(name string, parent trace.TID) *Thread {
	t := &Thread{
		id:     s.nextTID,
		name:   name,
		parent: parent,
		s:      s,
		grant:  make(chan struct{}),
		state:  stateRunning,
	}
	s.nextTID++
	s.threads[t.id] = t
	s.order = append(s.order, t.id)
	s.live++
	s.res.Threads++
	s.mThreads.Inc()
	return t
}

// runThread is the goroutine wrapper for one application thread.
func (s *Scheduler) runThread(t *Thread, fn func(*Thread)) {
	var fail *Failure
	func() {
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			if f, ok := r.(*Failure); ok {
				fail = f
				return
			}
			// A non-Failure panic is an application crash: treat it as
			// a manifested failure so the harness can observe it.
			fail = &Failure{
				Reason: ReasonCrash,
				TID:    t.id,
				Step:   s.step,
				Msg:    fmt.Sprint(r),
			}
		}()
		t.Point(&Op{Kind: trace.KindThreadStart, Obj: uint64(uint32(t.parent))})
		fn(t)
		t.Point(&Op{Kind: trace.KindThreadExit})
	}()
	if fail != nil && fail.Reason == reasonStopped {
		fail = nil // unwound during shutdown, not a real failure
	}
	s.announce <- announcement{t: t, exited: true, fail: fail}
}

func (s *Scheduler) loop() {
	for {
		// Wait until no thread is executing user code.
		for s.inflight > 0 {
			a := <-s.announce
			s.inflight--
			if a.exited {
				s.handleExit(a)
			} else {
				a.t.pending = a.op
				a.t.state = stateParked
			}
		}
		if s.failure != nil || s.live == 0 {
			s.shutdown()
			return
		}
		if s.ctxDone != nil {
			// Non-blocking poll: cancellation lands at the next grant
			// point, never mid-effect, so the unwind sees a consistent
			// simulation state.
			select {
			case <-s.ctxDone:
				s.failure = &Failure{Reason: ReasonCancelled, Step: s.step,
					Msg: "execution cancelled: " + s.cfg.Ctx.Err().Error()}
				s.shutdown()
				return
			default:
			}
		}
		if s.step >= s.cfg.MaxSteps {
			s.failure = &Failure{Reason: ReasonStepLimit, Step: s.step,
				Msg: fmt.Sprintf("execution exceeded %d scheduling points", s.cfg.MaxSteps)}
			s.shutdown()
			return
		}
		view := s.buildView()
		if len(view.Candidates) == 0 {
			s.failure = s.deadlockFailure()
			s.shutdown()
			return
		}
		tid, ok := s.cfg.Strategy.Pick(view)
		s.mPicks.Inc()
		if !ok {
			s.failure = &Failure{Reason: ReasonDiverged, Step: s.step,
				Msg: "strategy aborted: recorded schedule can no longer be honored"}
			s.shutdown()
			return
		}
		t := s.threads[tid]
		if t == nil || t.state != stateParked || !opEnabled(t.pending) {
			s.failure = &Failure{Reason: ReasonDiverged, Step: s.step, TID: tid,
				Msg: fmt.Sprintf("strategy picked non-runnable thread %d", tid)}
			s.shutdown()
			return
		}
		s.grantTo(t)
	}
}

func opEnabled(op *Op) bool { return op != nil && (op.Enabled == nil || op.Enabled()) }

func (s *Scheduler) buildView() *PickView {
	v := &PickView{Step: s.step}
	for _, tid := range s.order {
		t := s.threads[tid]
		if t.state == stateParked && opEnabled(t.pending) {
			v.Candidates = append(v.Candidates, Candidate{
				TID:  t.id,
				Kind: t.pending.Kind,
				Obj:  t.pending.Obj,
				Arg:  t.pending.Arg,
				Cost: t.pending.cost(),
			})
		}
	}
	return v
}

func (s *Scheduler) grantTo(t *Thread) {
	op := t.pending
	t.pending = nil
	t.state = stateRunning
	s.step++
	s.mSteps.Inc()
	t.tcount++
	ev := trace.Event{
		Seq:    s.step,
		TID:    t.id,
		TCount: t.tcount,
		Kind:   op.Kind,
		Obj:    op.Obj,
		Arg:    op.Arg,
	}
	s.res.BaseCost += op.cost()
	s.sleepReq = false
	if op.Effect != nil {
		op.Effect(&EffectCtx{s: s, t: t, Ev: &ev})
	}
	if int(ev.Kind) < trace.NumKinds {
		s.res.EventsByKind[ev.Kind]++
	}
	for _, o := range s.cfg.Observers {
		s.res.ExtraCost += o.OnEvent(ev)
	}
	if s.sleepReq {
		t.state = stateAsleep
		return // thread stays blocked in Point; no announcement coming
	}
	s.inflight++
	t.grant <- struct{}{}
}

func (s *Scheduler) handleExit(a announcement) {
	a.t.state = stateDone
	s.live--
	if a.fail != nil && s.failure == nil {
		s.failure = a.fail
	}
}

// shutdown unwinds every remaining thread: parked and asleep threads are
// woken through the stop channel and panic out of Point; we drain their
// exit announcements so no goroutine leaks.
func (s *Scheduler) shutdown() {
	close(s.stopC)
	for s.live > 0 {
		a := <-s.announce
		if a.exited {
			s.handleExit(a)
		}
		// Non-exit announcements during shutdown come from threads that
		// were mid-Point when stop closed; they will observe stopC on
		// their select and exit next. Nothing to do.
	}
}

func (s *Scheduler) deadlockFailure() *Failure {
	f := &Failure{Reason: ReasonDeadlock, Step: s.step}
	var b strings.Builder
	b.WriteString("deadlock: no runnable thread;")
	waitsFor := make(map[trace.TID]trace.TID)
	for _, tid := range s.order {
		t := s.threads[tid]
		switch t.state {
		case stateParked:
			desc := t.pending.describe()
			f.Stuck = append(f.Stuck, Stuck{TID: t.id, Name: t.name, What: desc})
			fmt.Fprintf(&b, " t%d(%s) blocked at %s;", t.id, t.name, desc)
			if t.pending.BlockedOn != nil {
				if h := t.pending.BlockedOn(); h != trace.NoTID {
					waitsFor[t.id] = h
				}
			}
		case stateAsleep:
			f.Stuck = append(f.Stuck, Stuck{TID: t.id, Name: t.name, What: "asleep (condition wait)"})
			fmt.Fprintf(&b, " t%d(%s) asleep in wait;", t.id, t.name)
		}
	}
	f.Cycle = findCycle(waitsFor)
	if len(f.Cycle) > 0 {
		fmt.Fprintf(&b, " waits-for cycle: %v;", f.Cycle)
	}
	f.Msg = b.String()
	return f
}

// findCycle extracts one cycle from the waits-for graph (each node has
// out-degree at most one, so chasing pointers with a visited set finds
// any cycle in linear time). Nodes are visited in ascending id order for
// a deterministic result.
func findCycle(waitsFor map[trace.TID]trace.TID) []trace.TID {
	starts := make([]trace.TID, 0, len(waitsFor))
	for tid := range waitsFor {
		starts = append(starts, tid)
	}
	slices.Sort(starts)
	done := make(map[trace.TID]bool)
	for _, start := range starts {
		if done[start] {
			continue
		}
		pos := map[trace.TID]int{}
		var path []trace.TID
		cur := start
		for {
			if i, onPath := pos[cur]; onPath {
				return path[i:]
			}
			if done[cur] {
				break
			}
			pos[cur] = len(path)
			path = append(path, cur)
			next, ok := waitsFor[cur]
			if !ok {
				break
			}
			cur = next
		}
		for _, tid := range path {
			done[tid] = true
		}
	}
	return nil
}
