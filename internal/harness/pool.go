package harness

import (
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Pool fans independent experiment cells out to a fixed set of
// workers. The experiment matrices (app x scheme, bug x procs, ...)
// are embarrassingly parallel: every cell derives its seeds from its
// own identity (bug id, scheme, processor count), never from worker
// identity or arrival order, so a pool run measures the exact same
// trajectories a sequential run would — results are committed into
// canonical cell order and the regenerated tables are byte-identical
// at any worker count.
type Pool struct {
	workers int
	cells   *obs.Counter // pres_harness_cells_total{exp}
	active  *obs.Gauge   // pres_harness_workers_active
}

// NewPool returns a pool of the given width reporting to m (nil m
// disables metrics at zero cost). Width < 1 means sequential.
func NewPool(workers int, exp string, m *obs.Registry) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{
		workers: workers,
		cells:   m.Counter("pres_harness_cells_total", "exp", exp),
		active:  m.Gauge("pres_harness_workers_active"),
	}
}

// Run executes cell(0..n-1), fanning the indices out to the pool's
// workers. Each cell must write only to its own result slot; Run
// returns once every cell has finished.
func (p *Pool) Run(n int, cell func(i int)) {
	if n <= 0 {
		return
	}
	workers := min(p.workers, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			cell(i)
			p.cells.Inc()
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.active.Add(1)
			defer p.active.Add(-1)
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				cell(i)
				p.cells.Inc()
			}
		}()
	}
	wg.Wait()
}

// runCells evaluates n independent experiment cells on cfg's pool and
// returns their results in canonical cell order — the deterministic
// commit that keeps `-j N` tables byte-identical to `-j 1`.
func runCells[R any](cfg Config, exp string, n int, cell func(i int) R) []R {
	if n <= 0 {
		return nil
	}
	out := make([]R, n)
	NewPool(cfg.jobs(), exp, cfg.Metrics).Run(n, func(i int) {
		out[i] = cell(i)
	})
	return out
}
