package harness

import (
	"context"

	"repro/internal/exec"
	"repro/internal/obs"
)

// Pool fans independent experiment cells out to the shared
// canonical-commit worker pool (internal/exec) — the same substrate
// core.Replay's attempt search runs on. The experiment matrices
// (app x scheme, bug x procs, ...) are embarrassingly parallel: every
// cell derives its seeds from its own identity (bug id, scheme,
// processor count), never from worker identity or arrival order, so a
// pool run measures the exact same trajectories a sequential run
// would — results are committed into canonical cell order and the
// regenerated tables are byte-identical at any worker count.
type Pool struct {
	workers int
	cells   *obs.Counter // pres_harness_cells_total{exp}
	active  *obs.Gauge   // pres_harness_workers_active
}

// NewPool returns a pool of the given width reporting to m (nil m
// disables metrics at zero cost). Width < 1 means sequential.
func NewPool(workers int, exp string, m *obs.Registry) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{
		workers: workers,
		cells:   m.Counter("pres_harness_cells_total", "exp", exp),
		active:  m.Gauge("pres_harness_workers_active"),
	}
}

// cellRunner adapts an index-addressed cell function to exec.Runner:
// the job is the index itself, and the canonical-order commit is where
// the cell counter ticks — so the count grows in table order even when
// cells finish out of order.
type cellRunner struct {
	cell  func(i int)
	cells *obs.Counter
}

func (r *cellRunner) Dispatch(worker, idx int) exec.Decision            { return exec.Decision{} }
func (r *cellRunner) Run(ctx context.Context, worker, idx int, job any) { r.cell(idx) }
func (r *cellRunner) Complete(idx int, job any)                         {}
func (r *cellRunner) Commit(idx int, job any) bool                      { r.cells.Inc(); return true }

// Run executes cell(0..n-1) on the pool under ctx. Each cell must
// write only to its own result slot; Run returns once every worker has
// drained. Cancelling ctx stops dispatching new cells — cells already
// running finish (their own executions observe the same context), and
// the context's error is returned.
func (p *Pool) Run(ctx context.Context, n int, cell func(i int)) error {
	if n <= 0 {
		return nil
	}
	return exec.Run(ctx, exec.Config{
		Workers: min(p.workers, n),
		Budget:  n,
		Active:  p.active,
	}, &cellRunner{cell: cell, cells: p.cells})
}

// runCells evaluates n independent experiment cells on cfg's pool and
// returns their results in canonical cell order — the deterministic
// commit that keeps `-j N` tables byte-identical to `-j 1`. Under a
// cancelled config context the undispatched cells stay zero-valued;
// callers render what was measured.
func runCells[R any](cfg Config, exp string, n int, cell func(i int) R) []R {
	if n <= 0 {
		return nil
	}
	out := make([]R, n)
	// The context error is deliberately dropped here: experiment
	// renderers consume the partial rows, and the caller inspects
	// cfg.ctx().Err() to report the interruption.
	_ = NewPool(cfg.jobs(), exp, cfg.Metrics).Run(cfg.ctx(), n, func(i int) {
		out[i] = cell(i)
	})
	return out
}
