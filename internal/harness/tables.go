package harness

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"repro/internal/obs"
	"repro/internal/sketch"
)

// PrintE1 renders the bug-reproduction table (bugs x schemes, cells are
// replay attempts; ">N" marks budget exhaustion).
func PrintE1(w io.Writer, rows []E1Row, cfg Config) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	defer tw.Flush()
	schemes := schemeOrder(rows)
	fmt.Fprint(tw, "bug\ttype")
	for _, s := range schemes {
		fmt.Fprintf(tw, "\t%s", s)
	}
	fmt.Fprintln(tw)
	byBug := map[string]map[sketch.Scheme]E1Row{}
	var order []string
	for _, r := range rows {
		if byBug[r.Bug.ID] == nil {
			byBug[r.Bug.ID] = map[sketch.Scheme]E1Row{}
			order = append(order, r.Bug.ID)
		}
		byBug[r.Bug.ID][r.Scheme] = r
	}
	for _, id := range order {
		cells := byBug[id]
		var any E1Row
		for _, c := range cells {
			any = c
		}
		fmt.Fprintf(tw, "%s\t%s", id, any.Bug.Type)
		for _, s := range schemes {
			r, ok := cells[s]
			switch {
			case !ok:
				fmt.Fprint(tw, "\t-")
			case r.Err != nil:
				fmt.Fprint(tw, "\tn/a")
			case !r.Reproduced:
				fmt.Fprintf(tw, "\t>%d", cfg.maxAttempts())
			default:
				fmt.Fprintf(tw, "\t%d", r.Attempts)
			}
		}
		fmt.Fprintln(tw)
	}
}

// PrintE2 renders the recording-overhead table (apps x schemes, cells
// are percent slowdown).
func PrintE2(w io.Writer, rows []E2Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	defer tw.Flush()
	schemes := schemeOrderE2(rows)
	fmt.Fprint(tw, "app\tcategory")
	for _, s := range schemes {
		fmt.Fprintf(tw, "\t%s", s)
	}
	fmt.Fprintln(tw)
	byApp := map[string]map[sketch.Scheme]E2Row{}
	var order []string
	for _, r := range rows {
		if byApp[r.App] == nil {
			byApp[r.App] = map[sketch.Scheme]E2Row{}
			order = append(order, r.App)
		}
		byApp[r.App][r.Scheme] = r
	}
	for _, app := range order {
		cells := byApp[app]
		var any E2Row
		for _, c := range cells {
			any = c
		}
		fmt.Fprintf(tw, "%s\t%s", app, any.Category)
		for _, s := range schemes {
			r, ok := cells[s]
			if !ok || r.Err != nil {
				fmt.Fprint(tw, "\tn/a")
				continue
			}
			fmt.Fprintf(tw, "\t%.1f%%", r.Overhead*100)
		}
		fmt.Fprintln(tw)
	}
}

// PrintE3 renders the log-size table.
func PrintE3(w io.Writer, rows []E3Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	defer tw.Flush()
	fmt.Fprintln(tw, "app\tscheme\tsketch bytes\tinput bytes\tbytes/kop")
	for _, r := range rows {
		if r.Err != nil {
			fmt.Fprintf(tw, "%s\t%s\tn/a\tn/a\tn/a\n", r.App, r.Scheme)
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%.1f\n", r.App, r.Scheme, r.SketchBytes, r.InputBytes, r.BytesPerKop)
	}
}

// PrintE4 renders the scalability sweep.
func PrintE4(w io.Writer, rows []E4Row, cfg Config) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	defer tw.Flush()
	fmt.Fprintln(tw, "procs\tbug\toverhead(SYNC)\tattempts")
	for _, r := range rows {
		if r.Err != nil {
			fmt.Fprintf(tw, "%d\t%s\tn/a\tn/a\n", r.Procs, r.Bug)
			continue
		}
		att := fmt.Sprintf("%d", r.Attempts)
		if !r.Repro {
			att = fmt.Sprintf(">%d", cfg.maxAttempts())
		}
		fmt.Fprintf(tw, "%d\t%s\t%.2f%%\t%s\n", r.Procs, r.Bug, r.Overhead*100, att)
	}
}

// PrintE5 renders the feedback ablation.
func PrintE5(w io.Writer, rows []E5Row, cfg Config) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	defer tw.Flush()
	fmt.Fprintln(tw, "bug\twith feedback\twithout feedback")
	cell := func(n int, ok bool) string {
		if !ok {
			return fmt.Sprintf(">%d", cfg.maxAttempts())
		}
		return fmt.Sprintf("%d", n)
	}
	for _, r := range rows {
		if r.Err != nil {
			fmt.Fprintf(tw, "%s\tn/a\tn/a\n", r.Bug)
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\n", r.Bug,
			cell(r.WithFeedback, r.WithFeedbackOK),
			cell(r.WithoutFeedback, r.WithoutFeedbackOK))
	}
}

// PrintE6 renders the determinism check.
func PrintE6(w io.Writer, rows []E6Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	defer tw.Flush()
	fmt.Fprintln(tw, "bug\tattempts to 1st repro\tre-replays\tall reproduced")
	for _, r := range rows {
		if r.Err != nil {
			fmt.Fprintf(tw, "%s\tn/a\t-\t-\n", r.Bug)
			continue
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%v\n", r.Bug, r.Attempts, r.Replays, r.AllRepro)
	}
}

// PrintE7 renders the overhead-reduction factors and the headline max.
func PrintE7(w io.Writer, rows []E7Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "app\tscheme\treduction vs RW")
	best := E7Row{}
	for _, r := range rows {
		if r.Err != nil {
			fmt.Fprintf(tw, "%s\t%s\tn/a\n", r.App, r.Scheme)
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\t%.0fx\n", r.App, r.Scheme, r.Reduction)
		if r.Reduction > best.Reduction && (r.Scheme == sketch.SYNC || r.Scheme == sketch.SYS) {
			best = r
		}
	}
	tw.Flush()
	if best.App != "" {
		fmt.Fprintf(w, "\nheadline: %s sketching on %s records %.0fx cheaper than RW (paper: up to 4416x)\n",
			best.Scheme, best.App, best.Reduction)
	}
}

// PrintE8 renders the replay-cost statistics.
func PrintE8(w io.Writer, rows []E8Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	defer tw.Flush()
	fmt.Fprintln(tw, "bug\tattempts\tflips\traces seen\tdivergences\tclean runs\treproduced\tcache saved")
	for _, r := range rows {
		if r.Err != nil {
			fmt.Fprintf(tw, "%s\tn/a\t-\t-\t-\t-\t-\t-\n", r.Bug)
			continue
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%v\t%d\n",
			r.Bug, r.Attempts, r.Flips, r.RacesSeen, r.Divergences, r.CleanRuns, r.Reproduced, r.CacheSaved)
	}
}

func schemeOrder(rows []E1Row) []sketch.Scheme {
	seen := map[sketch.Scheme]bool{}
	for _, r := range rows {
		seen[r.Scheme] = true
	}
	var out []sketch.Scheme
	for _, s := range sketch.All() {
		if seen[s] {
			out = append(out, s)
		}
	}
	return out
}

func schemeOrderE2(rows []E2Row) []sketch.Scheme {
	seen := map[sketch.Scheme]bool{}
	for _, r := range rows {
		seen[r.Scheme] = true
	}
	var out []sketch.Scheme
	for _, s := range sketch.All() {
		if seen[s] {
			out = append(out, s)
		}
	}
	return out
}

// PrintE9 renders the sketch-truncation sweep.
func PrintE9(w io.Writer, rows []E9Row, cfg Config) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	defer tw.Flush()
	fmt.Fprintln(tw, "bug\tretained%\tattempts")
	for _, r := range rows {
		if r.Err != nil {
			fmt.Fprintf(tw, "%s\t%d\tn/a\n", r.Bug, r.Retained)
			continue
		}
		att := fmt.Sprintf("%d", r.Attempts)
		if !r.Reproduced {
			att = fmt.Sprintf(">%d", cfg.maxAttempts())
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\n", r.Bug, r.Retained, att)
	}
}

// PrintE10 renders the pattern matrix.
func PrintE10(w io.Writer, rows []E10Row, cfg Config) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	defer tw.Flush()
	fmt.Fprintln(tw, "pattern\tclass\tscheme\tattempts")
	for _, r := range rows {
		if r.Err != nil {
			fmt.Fprintf(tw, "%s\t%s\t%s\tn/a\n", r.Pattern, r.Class, r.Scheme)
			continue
		}
		att := fmt.Sprintf("%d", r.Attempts)
		if !r.Reproduced {
			att = fmt.Sprintf(">%d", cfg.maxAttempts())
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", r.Pattern, r.Class, r.Scheme, att)
	}
}

// PrintE11 renders the work-stealing scaling sweep: wall-clock per
// pool size, with speedups quoted against each bug's workers=1 cold
// search.
func PrintE11(w io.Writer, rows []E11Row, cfg Config) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	defer tw.Flush()
	fmt.Fprintln(tw, "bug\tworkers\tattempts\tcold ms\tspeedup\twarm ms\tcache saved\thandoffs/step\tfast steps")
	base := map[string]float64{}
	for _, r := range rows {
		if r.Err == nil && r.Workers == 1 {
			base[r.Bug] = r.WallMS
		}
	}
	for _, r := range rows {
		if r.Err != nil {
			fmt.Fprintf(tw, "%s\t%d\tn/a\t-\t-\t-\t-\t-\t-\n", r.Bug, r.Workers)
			continue
		}
		att := fmt.Sprintf("%d", r.Attempts)
		if !r.Reproduced {
			att = fmt.Sprintf(">%d", cfg.maxAttempts())
		}
		speedup := "-"
		if b, ok := base[r.Bug]; ok && r.WallMS > 0 {
			speedup = fmt.Sprintf("%.2fx", b/r.WallMS)
		}
		hps := "-"
		if r.Steps > 0 {
			hps = fmt.Sprintf("%.3f", float64(r.Handoffs)/float64(r.Steps))
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%.2f\t%s\t%.2f\t%d\t%s\t%d\n",
			r.Bug, r.Workers, att, r.WallMS, speedup, r.WarmWallMS, r.CacheSaved, hps, r.FastSteps)
	}
}

// PrintE13 renders the epoch-ring sweep: per bug, the baseline row
// ("off") then one row per epoch length.
func PrintE13(w io.Writer, rows []E13Row, cfg Config) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	defer tw.Flush()
	fmt.Fprintln(tw, "bug\tepoch steps\tepochs\tevicted\tcheckpoints\twindow entries\twindow bytes\tattempts")
	for _, r := range rows {
		es := "off"
		if r.EpochSteps > 0 {
			es = fmt.Sprintf("%d", r.EpochSteps)
		}
		if r.Err != nil {
			fmt.Fprintf(tw, "%s\t%s\tn/a\t-\t-\t-\t-\t-\n", r.Bug, es)
			continue
		}
		att := fmt.Sprintf("%d", r.Attempts)
		if !r.Reproduced {
			att = fmt.Sprintf(">%d", cfg.maxAttempts())
		}
		epochs := "-"
		if r.EpochSteps > 0 {
			epochs = fmt.Sprintf("%d", r.Epochs)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\t%d\t%d\t%s\n",
			r.Bug, es, epochs, r.Evicted, r.Checkpoints, r.WindowEntries, r.WindowBytes, att)
	}
}

// PrintMetrics renders a metric snapshot as a table — the aggregate
// observability view presbench appends after its experiment tables
// when metrics capture is enabled. Histograms are summarized as
// count/sum/mean; the full bucket data is in the JSON snapshot.
func PrintMetrics(w io.Writer, snap obs.Snapshot) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	defer tw.Flush()
	fmt.Fprintln(tw, "metric\ttype\tvalue")
	for _, k := range sortedKeys(snap.Counters) {
		fmt.Fprintf(tw, "%s\tcounter\t%d\n", k, snap.Counters[k])
	}
	for _, k := range sortedKeys(snap.Gauges) {
		fmt.Fprintf(tw, "%s\tgauge\t%g\n", k, snap.Gauges[k])
	}
	for _, k := range sortedKeys(snap.Histograms) {
		h := snap.Histograms[k]
		mean := 0.0
		if h.Count > 0 {
			mean = h.Sum / float64(h.Count)
		}
		fmt.Fprintf(tw, "%s\thistogram\tcount=%d sum=%g mean=%g\n", k, h.Count, h.Sum, mean)
	}
}

// sortedKeys returns the map's keys in ascending order, for the
// deterministic rendering every harness table guarantees.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
