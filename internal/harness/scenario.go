package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/scenario"
)

// scenarioConfig maps the harness run configuration onto the scenario
// package's knobs. Zero fields fall through to scenario's own defaults
// — notably the 400-seed cell budget rather than the harness's
// 2000-seed corpus budget: matrix cells and generated programs are
// small, and their declared outcomes are reachable quickly or not at
// all.
func (c Config) scenarioConfig() scenario.Config {
	return scenario.Config{
		Ctx:         c.Ctx,
		Processors:  c.Processors,
		MaxAttempts: c.MaxAttempts,
		MaxSteps:    c.MaxSteps,
		Metrics:     c.Metrics,
	}
}

// E12Row is one driven cell of the failure-injection matrix (E12, an
// extension beyond the paper): an (app, failure class) pair with its
// declared outcome, driven through record, replay and captured-order
// reproduction.
type E12Row struct {
	scenario.CellResult
}

// RunE12 drives the full injection matrix: every corpus app under
// every failure class, each cell searched to its declared outcome and
// replayed to reproduction, plus the epoch-ring variants of the crash
// and lock-wedge cells (bounded recording, checkpointed replay). Cells
// fan out to cfg's pool; rows commit in canonical (app, class) order.
func RunE12(cfg Config) []E12Row {
	defer cfg.timeExperiment("e12")()
	cells := append(scenario.Matrix(), scenario.Variants()...)
	sc := cfg.scenarioConfig()
	return runCells(cfg, "e12", len(cells), func(i int) E12Row {
		return E12Row{scenario.RunCell(cells[i], sc)}
	})
}

// E12GenRow aggregates the generator sweep for one bug template.
type E12GenRow struct {
	Template string
	// Programs generated with this template; Reproduced of them met
	// their full ground truth (buggy manifested and replayed to
	// reproduction, patched variant held clean).
	Programs   int
	Reproduced int
	// MeanAttempts averages the replay attempts over reproduced
	// programs.
	MeanAttempts float64
	// FailSeeds lists seeds whose verification failed (presgen
	// -minimize turns one into a readable repro).
	FailSeeds []uint64
}

// RunE12Gen verifies generated programs for seeds 0..n-1 (default 50)
// and aggregates the ground-truth outcomes per template — the
// generator half of E12. Seeds fan out to cfg's pool.
func RunE12Gen(n int, cfg Config) []E12GenRow {
	defer cfg.timeExperiment("e12gen")()
	if n <= 0 {
		n = 50
	}
	sc := cfg.scenarioConfig()
	results := runCells(cfg, "e12gen", n, func(i int) scenario.VerifyResult {
		return scenario.Verify(scenario.Generate(uint64(i)), sc)
	})
	byTpl := map[string]*E12GenRow{}
	rows := make([]E12GenRow, 0, len(scenario.Templates()))
	for _, tpl := range scenario.Templates() {
		rows = append(rows, E12GenRow{Template: tpl})
		byTpl[tpl] = &rows[len(rows)-1]
	}
	for _, r := range results {
		agg, ok := byTpl[r.Template]
		if !ok {
			continue
		}
		agg.Programs++
		if r.OK() {
			agg.Reproduced++
			agg.MeanAttempts += float64(r.Attempts)
		} else {
			agg.FailSeeds = append(agg.FailSeeds, r.Seed)
		}
	}
	for i := range rows {
		if rows[i].Reproduced > 0 {
			rows[i].MeanAttempts /= float64(rows[i].Reproduced)
		}
	}
	return rows
}

// PrintE12 renders the injection matrix as an app x class grid. Cells
// show the declared outcome and, for failure outcomes, the attempts
// the replay search needed; cells that missed their declaration print
// FAIL. Epoch-ring variant rows land in "<class>+ring" columns,
// appended only when variants were driven; apps without a variant for
// that class print "-".
func PrintE12(w io.Writer, rows []E12Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	defer tw.Flush()
	cols := make([]string, 0, len(scenario.Classes())+2)
	for _, cl := range scenario.Classes() {
		cols = append(cols, cl.Name)
	}
	ringCols := map[string]bool{}
	for _, r := range rows {
		if r.EpochRing && !ringCols[r.Class] {
			ringCols[r.Class] = true
			cols = append(cols, r.Class+"+ring")
		}
	}
	fmt.Fprint(tw, "app")
	for _, col := range cols {
		fmt.Fprintf(tw, "\t%s", col)
	}
	fmt.Fprintln(tw)
	byApp := map[string]map[string]E12Row{}
	var order []string
	for _, r := range rows {
		if byApp[r.App] == nil {
			byApp[r.App] = map[string]E12Row{}
			order = append(order, r.App)
		}
		key := r.Class
		if r.EpochRing {
			key += "+ring"
		}
		byApp[r.App][key] = r
	}
	for _, app := range order {
		fmt.Fprint(tw, app)
		for _, col := range cols {
			r, ok := byApp[app][col]
			switch {
			case !ok:
				fmt.Fprint(tw, "\t-")
			case !r.OK():
				fmt.Fprint(tw, "\tFAIL")
			case r.Want == scenario.Clean:
				fmt.Fprint(tw, "\tclean")
			default:
				fmt.Fprintf(tw, "\t%s/%d", r.Want, r.Attempts)
			}
		}
		fmt.Fprintln(tw)
	}
}

// PrintE12Gen renders the generator-sweep aggregate.
func PrintE12Gen(w io.Writer, rows []E12GenRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	defer tw.Flush()
	fmt.Fprintln(tw, "template\tprograms\treproduced\tmean attempts\tfailing seeds")
	for _, r := range rows {
		fails := "none"
		if len(r.FailSeeds) > 0 {
			fails = fmt.Sprint(r.FailSeeds)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.1f\t%s\n", r.Template, r.Programs, r.Reproduced, r.MeanAttempts, fails)
	}
}
