package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/scenario"
)

func TestRunE12(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix run")
	}
	rows := RunE12(fastCfg)
	if want := len(scenario.Matrix()) + len(scenario.Variants()); len(rows) != want {
		t.Fatalf("rows = %d, want one per matrix cell plus variants (%d)", len(rows), want)
	}
	for _, r := range rows {
		if !r.OK() {
			t.Errorf("%s/%s: %v", r.App, r.Class, r.Err)
		}
	}
	var buf bytes.Buffer
	PrintE12(&buf, rows)
	for _, needle := range []string{"lock-wedge", "clean", "deadlock/", "crash+ring", "lock-wedge+ring"} {
		if !strings.Contains(buf.String(), needle) {
			t.Fatalf("E12 rendering broken: missing %q in\n%s", needle, buf.String())
		}
	}
}

func TestRunE12Gen(t *testing.T) {
	rows := RunE12Gen(6, fastCfg)
	if len(rows) != len(scenario.Templates()) {
		t.Fatalf("rows = %d, want one per template", len(rows))
	}
	total := 0
	for _, r := range rows {
		total += r.Programs
		if r.Programs != r.Reproduced {
			t.Errorf("template %s: %d/%d reproduced (failing seeds %v)",
				r.Template, r.Reproduced, r.Programs, r.FailSeeds)
		}
	}
	if total != 6 {
		t.Fatalf("aggregated %d programs, want 6", total)
	}
	var buf bytes.Buffer
	PrintE12Gen(&buf, rows)
	if !strings.Contains(buf.String(), "lostload") {
		t.Fatal("E12 gen rendering broken")
	}
}
