package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/patterns"
	"repro/internal/sketch"
)

// fastCfg keeps harness tests quick; experiment-scale runs live in the
// benchmarks.
var fastCfg = Config{SeedBudget: 2000, MaxAttempts: 1000, OverheadScale: 250}

func TestFindBuggySeed(t *testing.T) {
	prog, _ := apps.Get("fft")
	seed, rec, err := FindBuggySeed(prog, "fft-barrier", sketch.SYNC, fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	if seed < 0 || rec.BugFailure() == nil {
		t.Fatalf("seed=%d failure=%v", seed, rec.Result.Failure)
	}
}

func TestFindBuggySeedUnknownNeverManifests(t *testing.T) {
	prog, _ := apps.Get("fft")
	cfg := fastCfg
	cfg.SeedBudget = 5
	if _, _, err := FindBuggySeed(prog, "not-a-bug", sketch.SYNC, cfg); err == nil {
		t.Fatal("expected failure for unknown bug id")
	}
}

func TestFindCleanSeed(t *testing.T) {
	prog, _ := apps.Get("barnes")
	seed, err := FindCleanSeed(prog, fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	if seed < 0 {
		t.Fatal("negative seed")
	}
}

func TestReproduceBugPipeline(t *testing.T) {
	rec, res, err := ReproduceBug("transmission-1818", sketch.SYNC, fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec.BugFailure() == nil || !res.Reproduced {
		t.Fatalf("pipeline broke: rec failure %v, reproduced %v", rec.Result.Failure, res.Reproduced)
	}
}

func TestReproduceBugUnknown(t *testing.T) {
	if _, _, err := ReproduceBug("nope", sketch.SYNC, fastCfg); err == nil {
		t.Fatal("unknown bug should error")
	}
}

func TestRunE1Subset(t *testing.T) {
	// Single scheme keeps this quick; the full sweep runs in benches.
	rows := RunE1([]sketch.Scheme{sketch.RW}, fastCfg)
	if len(rows) != len(apps.AllBugs()) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Err != nil {
			t.Errorf("%s: %v", r.Bug.ID, r.Err)
			continue
		}
		if !r.Reproduced {
			t.Errorf("%s not reproduced under RW", r.Bug.ID)
		}
	}
	var buf bytes.Buffer
	PrintE1(&buf, rows, fastCfg)
	if !strings.Contains(buf.String(), "mysql-169") || !strings.Contains(buf.String(), "RW") {
		t.Fatalf("table rendering broken:\n%s", buf.String())
	}
}

func TestRunE2OverheadShape(t *testing.T) {
	rows := RunE2(nil, fastCfg)
	if len(rows) != 11*len(sketch.All()) {
		t.Fatalf("rows = %d", len(rows))
	}
	// The paper's central claim: per app, BASE = 0 and SYNC << RW.
	byApp := map[string]map[sketch.Scheme]float64{}
	for _, r := range rows {
		if r.Err != nil {
			t.Fatalf("%s/%v: %v", r.App, r.Scheme, r.Err)
		}
		if byApp[r.App] == nil {
			byApp[r.App] = map[sketch.Scheme]float64{}
		}
		byApp[r.App][r.Scheme] = r.Overhead
	}
	for app, m := range byApp {
		if !(m[sketch.BASE] > 0 && m[sketch.BASE] <= m[sketch.SYNC]) {
			t.Errorf("%s: BASE overhead %v should be positive (substrate) and <= SYNC %v",
				app, m[sketch.BASE], m[sketch.SYNC])
		}
		if !(m[sketch.SYNC] < m[sketch.RW]) {
			t.Errorf("%s: SYNC (%.3f) not below RW (%.3f)", app, m[sketch.SYNC], m[sketch.RW])
		}
		if !(m[sketch.SYS] < m[sketch.RW]) {
			t.Errorf("%s: SYS (%.3f) not below RW (%.3f)", app, m[sketch.SYS], m[sketch.RW])
		}
		if m[sketch.RW] < 1.0 {
			t.Errorf("%s: RW overhead %.3f suspiciously low (<100%%)", app, m[sketch.RW])
		}
	}
	var buf bytes.Buffer
	PrintE2(&buf, rows)
	if !strings.Contains(buf.String(), "mysqld") {
		t.Fatal("E2 table rendering broken")
	}
}

func TestRunE3LogSizes(t *testing.T) {
	rows := RunE3([]sketch.Scheme{sketch.BASE, sketch.SYNC, sketch.RW}, fastCfg)
	bySchemeTotal := map[sketch.Scheme]int{}
	for _, r := range rows {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.App, r.Err)
		}
		bySchemeTotal[r.Scheme] += r.SketchBytes
	}
	if !(bySchemeTotal[sketch.BASE] < bySchemeTotal[sketch.SYNC] &&
		bySchemeTotal[sketch.SYNC] < bySchemeTotal[sketch.RW]) {
		t.Fatalf("log size ordering broken: %v", bySchemeTotal)
	}
	var buf bytes.Buffer
	PrintE3(&buf, rows)
	if !strings.Contains(buf.String(), "bytes/kop") {
		t.Fatal("E3 table rendering broken")
	}
}

func TestRunE4Scalability(t *testing.T) {
	rows := RunE4([]int{2, 8}, []string{"fft-barrier"}, fastCfg)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Err != nil {
			t.Fatalf("procs %d: %v", r.Procs, r.Err)
		}
		if !r.Repro {
			t.Errorf("procs %d: not reproduced", r.Procs)
		}
	}
	var buf bytes.Buffer
	PrintE4(&buf, rows, fastCfg)
	if !strings.Contains(buf.String(), "procs") {
		t.Fatal("E4 table rendering broken")
	}
}

func TestRunE5FeedbackAblation(t *testing.T) {
	// Random exploration can get lucky on any single bug; the paper's
	// claim — feedback is critical — is aggregate.
	bugs := []string{"lu-atomicity", "cherokee-326", "fft-barrier"}
	rows := RunE5(bugs, fastCfg)
	if len(rows) != len(bugs) {
		t.Fatalf("rows = %d", len(rows))
	}
	withTotal, withoutTotal := 0, 0
	for _, r := range rows {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if !r.WithFeedbackOK {
			t.Fatalf("%s: feedback mode failed", r.Bug)
		}
		withTotal += r.WithFeedback
		if !r.WithoutFeedbackOK {
			withoutTotal += fastCfg.maxAttempts() // budget exhausted
		} else {
			withoutTotal += r.WithoutFeedback
		}
	}
	if withoutTotal < withTotal {
		t.Fatalf("no-feedback total (%d) beat feedback total (%d)", withoutTotal, withTotal)
	}
	var buf bytes.Buffer
	PrintE5(&buf, rows, fastCfg)
	if !strings.Contains(buf.String(), "feedback") {
		t.Fatal("E5 table rendering broken")
	}
}

func TestRunE6Determinism(t *testing.T) {
	rows := RunE6([]string{"fft-barrier"}, 10, fastCfg)
	if len(rows) != 1 || rows[0].Err != nil {
		t.Fatalf("rows = %+v", rows)
	}
	if !rows[0].AllRepro {
		t.Fatal("captured order did not reproduce every time")
	}
	var buf bytes.Buffer
	PrintE6(&buf, rows)
	if !strings.Contains(buf.String(), "re-replays") {
		t.Fatal("E6 table rendering broken")
	}
}

func TestRunE7Headline(t *testing.T) {
	rows := RunE7(fastCfg)
	maxRed := 0.0
	for _, r := range rows {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.App, r.Err)
		}
		if (r.Scheme == sketch.SYNC || r.Scheme == sketch.SYS) && r.Reduction > maxRed {
			maxRed = r.Reduction
		}
	}
	// The paper's headline is 4416x; our substrate must show the same
	// orders-of-magnitude shape (>=100x somewhere).
	if maxRed < 100 {
		t.Fatalf("max SYNC/SYS reduction %.0fx; expected >= 100x", maxRed)
	}
	var buf bytes.Buffer
	PrintE7(&buf, rows)
	if !strings.Contains(buf.String(), "headline") {
		t.Fatal("E7 rendering broken")
	}
}

func TestRunE8Stats(t *testing.T) {
	cfg := fastCfg
	rows := RunE8(cfg)
	if len(rows) != len(apps.AllBugs()) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Err != nil {
			t.Errorf("%s: %v", r.Bug, r.Err)
			continue
		}
		if !r.Reproduced {
			t.Errorf("%s: not reproduced", r.Bug)
		}
	}
	var buf bytes.Buffer
	PrintE8(&buf, rows)
	if !strings.Contains(buf.String(), "attempts") {
		t.Fatal("E8 rendering broken")
	}
}

func TestRunE9Truncation(t *testing.T) {
	rows := RunE9([]string{"fft-barrier"}, []int{100, 25}, fastCfg)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if !r.Reproduced {
			t.Errorf("retained %d%%: not reproduced", r.Retained)
		}
	}
	var buf bytes.Buffer
	PrintE9(&buf, rows, fastCfg)
	if !strings.Contains(buf.String(), "retained") {
		t.Fatal("E9 rendering broken")
	}
}

func TestCollectAppStats(t *testing.T) {
	cfg := fastCfg
	cfg.OverheadScale = 60
	rows := CollectAppStats(cfg)
	if len(rows) != 11 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Threads < 3 || r.Events == 0 || r.Work == 0 {
			t.Errorf("%s: empty profile %+v", r.App, r)
		}
		total := r.MemPct + r.SyncPct + r.SysPct + r.CtlPct
		if total < 50 || total > 101 {
			t.Errorf("%s: mix sums to %.1f%%", r.App, total)
		}
	}
	var buf bytes.Buffer
	PrintAppStats(&buf, rows)
	if !strings.Contains(buf.String(), "mysqld") || !strings.Contains(buf.String(), "sync%") {
		t.Fatal("app stats rendering broken")
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	if c.processors() != 4 || c.worldSeed() != 1 || c.seedBudget() != 2000 ||
		c.maxAttempts() != 1000 || c.maxSteps() != 300_000 || c.overheadScale() != 800 {
		t.Fatal("defaults wrong")
	}
	c = Config{Processors: 2, WorldSeed: 9, SeedBudget: 5, MaxAttempts: 7, MaxSteps: 11, OverheadScale: 13}
	if c.processors() != 2 || c.worldSeed() != 9 || c.seedBudget() != 5 ||
		c.maxAttempts() != 7 || c.maxSteps() != 11 || c.overheadScale() != 13 {
		t.Fatal("explicit values not honored")
	}
}

func TestRunE6NotReproducedPath(t *testing.T) {
	// An unknown bug id exercises the error path of E6.
	rows := RunE6([]string{"no-such-bug"}, 2, fastCfg)
	if len(rows) != 1 || rows[0].Err == nil {
		t.Fatalf("rows = %+v", rows)
	}
	var buf bytes.Buffer
	PrintE6(&buf, rows)
	if !strings.Contains(buf.String(), "n/a") {
		t.Fatal("error row not rendered")
	}
}

func TestRunE10Patterns(t *testing.T) {
	rows := RunE10([]sketch.Scheme{sketch.SYNC}, fastCfg)
	if len(rows) != len(patterns.All()) {
		t.Fatalf("rows = %d, want one per catalog pattern", len(rows))
	}
	for _, r := range rows {
		if r.Err != nil {
			t.Errorf("%s: %v", r.Pattern, r.Err)
			continue
		}
		if !r.Reproduced {
			t.Errorf("%s: not reproduced", r.Pattern)
		}
	}
	var buf bytes.Buffer
	PrintE10(&buf, rows, fastCfg)
	if !strings.Contains(buf.String(), "abba-deadlock") {
		t.Fatal("E10 rendering broken")
	}
}
