// Package harness drives the paper's evaluation: it searches production
// seeds for runs that manifest each corpus bug, measures recording
// overhead and log sizes for every sketching mechanism, counts replay
// attempts to reproduction, and renders the tables and figures of
// EXPERIMENTS.md (experiments E1-E11 in DESIGN.md). Experiment
// matrices fan their independent cells out to a worker pool
// (Config.Jobs, presbench -j) whose results commit in canonical cell
// order, so the rendered tables are byte-identical at any -j.
//
// When Config.Metrics is set, every recording and replay the harness
// performs feeds the shared registry, and each experiment stamps its
// own wall time into harness_experiment_seconds{exp=...} — so a full
// presbench run yields one aggregate metric snapshot alongside its
// tables (rendered by PrintMetrics, written by presbench
// -metrics-out). Config.Trace likewise captures every replay attempt
// across all experiments as one JSONL stream. See OBSERVABILITY.md for
// the contract.
package harness

import (
	"context"
	"fmt"
	"runtime"

	"repro/internal/appkit"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sketch"
)

// Config parameterizes a whole experiment run.
type Config struct {
	// Ctx, when non-nil, bounds every execution the harness performs:
	// seed searches, recordings and replay searches all observe it, so
	// cancelling it (presbench -timeout, SIGINT) winds the whole run
	// down cooperatively with partial results intact. Nil means no
	// bound.
	Ctx context.Context
	// Processors models the production machine; the paper's testbed was
	// an 8-core, most experiments shown at 4. Default 4.
	Processors int
	// WorldSeed seeds the virtual syscall layer. Default 1.
	WorldSeed int64
	// SeedBudget bounds the production-seed search per bug. Default 2000.
	SeedBudget int
	// MaxAttempts is the replay budget (the paper's 1000). Default 1000.
	MaxAttempts int
	// Scale is the workload scale knob passed to programs (0 = each
	// program's default).
	Scale int
	// MaxSteps bounds each execution. Default 300000.
	MaxSteps uint64
	// OverheadScale sizes the workloads of the overhead/log-size
	// experiments (E2/E3/E7), which run the *patched* programs on long
	// production-like workloads. Default 800.
	OverheadScale int
	// Jobs is the harness's own cell-level parallelism (presbench -j):
	// experiment matrices fan their independent (app, scheme, bug,
	// procs) cells out to this many workers, committing results in
	// canonical cell order so tables are byte-identical at any value.
	// 0 means GOMAXPROCS; 1 runs cells sequentially. When Trace is set
	// the harness forces sequential cells so the JSONL event stream
	// keeps its documented canonical order.
	Jobs int
	// PerThreadLog records every production run into thread-local
	// sketch shards merged at encode time (core.Options.PerThreadLog)
	// instead of the global reference log. Recordings and tables are
	// identical either way; only the modelled recording overhead
	// (E2/E7) reflects the cheaper per-thread append.
	PerThreadLog bool
	// Workers sizes the replayer's work-stealing attempt pool for every
	// search the harness runs. 0 keeps the sequential (deterministic)
	// search.
	Workers int
	// AdaptiveWorkers lets each search's pool retune itself between 1
	// and Workers from the measured dispatch occupancy.
	AdaptiveWorkers bool
	// SearchCache, when non-nil, is shared by every replay search the
	// harness performs: equivalent attempts across searches of the same
	// recording are answered from memory. Per-recording context digests
	// in the cache key keep different bugs from cross-talking.
	SearchCache *core.SearchCache
	// Metrics, when non-nil, receives metrics from every recording and
	// replay the harness performs, plus per-experiment wall-time spans.
	// Nil disables collection at zero cost.
	Metrics *obs.Registry
	// Trace, when non-nil, receives every replay attempt's structured
	// event across all experiments.
	Trace *obs.TraceSink
}

func (c Config) ctx() context.Context {
	if c.Ctx == nil {
		return context.Background()
	}
	return c.Ctx
}

// record and replay are the harness's only paths into core: every
// recording and every search runs under the config context.
func (c Config) record(prog *appkit.Program, opts core.Options) *core.Recording {
	return core.RecordContext(c.ctx(), prog, opts)
}

func (c Config) replay(prog *appkit.Program, rec *core.Recording, ropts core.ReplayOptions) *core.ReplayResult {
	return core.ReplayContext(c.ctx(), prog, rec, ropts)
}

func (c Config) processors() int {
	if c.Processors <= 0 {
		return 4
	}
	return c.Processors
}

func (c Config) jobs() int {
	if c.Trace != nil {
		// Cross-cell trace events have no canonical interleaving; keep
		// the stream deterministic rather than fast.
		return 1
	}
	if c.Jobs == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return max(c.Jobs, 1)
}

func (c Config) worldSeed() int64 {
	if c.WorldSeed == 0 {
		return 1
	}
	return c.WorldSeed
}

func (c Config) seedBudget() int {
	if c.SeedBudget <= 0 {
		return 2000
	}
	return c.SeedBudget
}

func (c Config) maxAttempts() int {
	if c.MaxAttempts <= 0 {
		return 1000
	}
	return c.MaxAttempts
}

func (c Config) maxSteps() uint64 {
	if c.MaxSteps == 0 {
		return 300_000
	}
	return c.MaxSteps
}

func (c Config) overheadScale() int {
	if c.OverheadScale <= 0 {
		return 800
	}
	return c.OverheadScale
}

// overheadOptions configures the production-workload runs of E2/E3/E7:
// patched programs (bugs do not cut the run short), scaled-up
// workloads, and a step bound sized for them.
func (c Config) overheadOptions(scheme sketch.Scheme, scheduleSeed int64) core.Options {
	o := c.options(scheme, scheduleSeed)
	o.FixBugs = true
	o.Scale = c.overheadScale()
	o.MaxSteps = 5_000_000
	return o
}

func (c Config) options(scheme sketch.Scheme, scheduleSeed int64) core.Options {
	return core.Options{
		Scheme:       scheme,
		Processors:   c.processors(),
		ScheduleSeed: scheduleSeed,
		WorldSeed:    c.worldSeed(),
		Scale:        c.Scale,
		MaxSteps:     c.maxSteps(),
		PerThreadLog: c.PerThreadLog,
		Metrics:      c.Metrics,
	}
}

// replayOptions builds the standard feedback-replay options for one
// bug's search, wired to the harness's observability sinks.
func (c Config) replayOptions(bugID string) core.ReplayOptions {
	return core.ReplayOptions{
		Feedback:        true,
		MaxAttempts:     c.maxAttempts(),
		Oracle:          core.MatchBugID(bugID),
		Workers:         c.Workers,
		AdaptiveWorkers: c.AdaptiveWorkers,
		Cache:           c.SearchCache,
		Metrics:         c.Metrics,
		Trace:           c.Trace,
	}
}

// timeExperiment opens an experiment-scoped span: it counts the run in
// harness_experiments_total{exp} and times it into
// harness_experiment_seconds{exp}. Use as
// `defer cfg.timeExperiment("e1")()`.
func (c Config) timeExperiment(exp string) func() {
	if c.Metrics == nil {
		return func() {}
	}
	c.Metrics.Counter("harness_experiments_total", "exp", exp).Inc()
	sp := c.Metrics.Timer("harness_experiment_seconds", "exp", exp).Start()
	return func() { sp.Stop() }
}

// FindBuggySeed searches production schedule seeds until prog manifests
// the target bug under the given scheme, returning the seed and its
// recording. The search is deterministic: seed 0, 1, 2, ...
func FindBuggySeed(prog *appkit.Program, bugID string, scheme sketch.Scheme, cfg Config) (int64, *core.Recording, error) {
	oracle := core.MatchBugID(bugID)
	for seed := int64(0); seed < int64(cfg.seedBudget()); seed++ {
		if err := cfg.ctx().Err(); err != nil {
			return -1, nil, err
		}
		rec := cfg.record(prog, cfg.options(scheme, seed))
		if f := rec.BugFailure(); f != nil && oracle(f) {
			return seed, rec, nil
		}
	}
	return -1, nil, fmt.Errorf("harness: %s did not manifest in %d production seeds", bugID, cfg.seedBudget())
}

// FindCleanSeed searches production seeds until prog completes without
// any failure — the workload used for overhead measurements, where the
// run must represent steady-state production service.
func FindCleanSeed(prog *appkit.Program, cfg Config) (int64, error) {
	for seed := int64(0); seed < int64(cfg.seedBudget()); seed++ {
		if err := cfg.ctx().Err(); err != nil {
			return -1, err
		}
		rec := cfg.record(prog, cfg.options(sketch.BASE, seed))
		if rec.Result.Failure == nil {
			return seed, nil
		}
	}
	return -1, fmt.Errorf("harness: %s never ran cleanly in %d seeds", prog.Name, cfg.seedBudget())
}

// ReproduceBug runs the full PRES pipeline for one bug under one scheme:
// find a buggy production seed, record, replay to reproduction.
func ReproduceBug(bugID string, scheme sketch.Scheme, cfg Config) (*core.Recording, *core.ReplayResult, error) {
	prog, ok := apps.ProgramForBug(bugID)
	if !ok {
		return nil, nil, fmt.Errorf("harness: unknown bug %q", bugID)
	}
	_, rec, err := FindBuggySeed(prog, bugID, scheme, cfg)
	if err != nil {
		return nil, nil, err
	}
	res := cfg.replay(prog, rec, cfg.replayOptions(bugID))
	return rec, res, nil
}
