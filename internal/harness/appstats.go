package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/apps"
	"repro/internal/sketch"
	"repro/internal/trace"
)

// AppStats characterizes one corpus application's workload — the
// analogue of the paper's application table (threads, instruction mix,
// event densities).
type AppStats struct {
	App      string
	Category string
	Bugs     int
	Threads  int
	// Events is the number of instrumentation points of the production
	// workload; Work its logical duration in memory-access units.
	Events uint64
	Work   uint64
	// Mix: share of instrumentation points per class.
	MemPct, SyncPct, SysPct, CtlPct float64
}

// CollectAppStats profiles every corpus app's patched production
// workload.
func CollectAppStats(cfg Config) []AppStats {
	var out []AppStats
	for _, p := range apps.All() {
		rec := cfg.record(p, cfg.overheadOptions(sketch.BASE, 1))
		st := AppStats{
			App:      p.Name,
			Category: p.Category,
			Bugs:     len(p.Bugs),
			Threads:  rec.Result.Threads,
			Events:   rec.Result.Steps,
			Work:     rec.Result.BaseCost / trace.CostUnit,
		}
		var mem, sync, sys, ctl uint64
		for k := 0; k < trace.NumKinds; k++ {
			n := rec.Result.EventsByKind[k]
			kind := trace.Kind(k)
			switch {
			case kind.IsMemory():
				mem += n
			case kind.IsSync():
				sync += n
			case kind.IsSyscall():
				sys += n
			case kind == trace.KindBB || kind == trace.KindFuncEnter || kind == trace.KindFuncExit:
				ctl += n
			}
		}
		total := float64(max(st.Events, 1))
		st.MemPct = float64(mem) / total * 100
		st.SyncPct = float64(sync) / total * 100
		st.SysPct = float64(sys) / total * 100
		st.CtlPct = float64(ctl) / total * 100
		out = append(out, st)
	}
	return out
}

// PrintAppStats renders the application table.
func PrintAppStats(w io.Writer, rows []AppStats) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	defer tw.Flush()
	fmt.Fprintln(tw, "app\tcategory\tbugs\tthreads\tevents\twork (accesses)\tmem%\tsync%\tsys%\tctl%")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%.1f\t%.1f\t%.1f\t%.1f\n",
			r.App, r.Category, r.Bugs, r.Threads, r.Events, r.Work,
			r.MemPct, r.SyncPct, r.SysPct, r.CtlPct)
	}
}
