package harness

import (
	"fmt"
	"time"

	"repro/internal/appkit"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/patterns"
	"repro/internal/sketch"
)

// E1Row is one cell of the bug-reproduction table: replay attempts to
// reproduce one bug under one sketching mechanism.
type E1Row struct {
	Bug        apps.BugInfo
	Scheme     sketch.Scheme
	Seed       int64
	Attempts   int
	Flips      int
	Reproduced bool
	Stats      core.ReplayStats
	Err        error
}

// RunE1 reproduces every corpus bug under each given scheme (the
// paper's headline table). Pass nil schemes for the full set. Cells
// fan out to cfg's pool; rows come back in canonical (bug, scheme)
// order regardless of Jobs.
func RunE1(schemes []sketch.Scheme, cfg Config) []E1Row {
	defer cfg.timeExperiment("e1")()
	if schemes == nil {
		schemes = sketch.All()
	}
	bugs := apps.AllBugs()
	return runCells(cfg, "e1", len(bugs)*len(schemes), func(i int) E1Row {
		return runE1Cell(bugs[i/len(schemes)], schemes[i%len(schemes)], cfg)
	})
}

func runE1Cell(b apps.BugInfo, s sketch.Scheme, cfg Config) E1Row {
	row := E1Row{Bug: b, Scheme: s}
	prog, _ := apps.ProgramForBug(b.ID)
	seed, rec, err := FindBuggySeed(prog, b.ID, s, cfg)
	if err != nil {
		row.Err = err
		return row
	}
	row.Seed = seed
	res := cfg.replay(prog, rec, cfg.replayOptions(b.ID))
	row.Attempts = res.Attempts
	row.Flips = res.Flips
	row.Reproduced = res.Reproduced
	row.Stats = res.Stats
	return row
}

// E2Row is one cell of the recording-overhead figure: the modelled
// production-run overhead of one scheme on one application's clean
// workload.
type E2Row struct {
	App      string
	Category string
	Scheme   sketch.Scheme
	// Overhead is ExtraCost/BaseCost (0.25 == 25% slowdown).
	Overhead float64
	// Entries and TotalOps give the sketch density behind the overhead.
	Entries  int
	TotalOps uint64
	Seed     int64
	Err      error
}

// RunE2 measures recording overhead for every app x scheme on a clean
// production run. Because observers never influence scheduling, every
// scheme measures the exact same execution of each app, so the
// between-scheme ratios are exact.
func RunE2(schemes []sketch.Scheme, cfg Config) []E2Row {
	defer cfg.timeExperiment("e2")()
	if schemes == nil {
		schemes = sketch.All()
	}
	progs := apps.All()
	return runCells(cfg, "e2", len(progs)*len(schemes), func(i int) E2Row {
		p, s := progs[i/len(schemes)], schemes[i%len(schemes)]
		row := E2Row{App: p.Name, Category: p.Category, Scheme: s}
		rec := cfg.record(p, cfg.overheadOptions(s, 1))
		if f := rec.Result.Failure; f != nil {
			row.Err = f
		} else {
			row.Overhead = rec.Result.Overhead()
			row.Entries = rec.Sketch.Len()
			row.TotalOps = rec.Sketch.TotalOps
		}
		return row
	})
}

// E3Row is one cell of the log-size table.
type E3Row struct {
	App    string
	Scheme sketch.Scheme
	// SketchBytes is the encoded sketch log; InputBytes the input log
	// (charged to every scheme, including BASE).
	SketchBytes int
	InputBytes  int
	// BytesPerKop is sketch bytes per thousand instrumented operations
	// — the paper's log-growth-rate metric.
	BytesPerKop float64
	Err         error
}

// RunE3 measures log sizes for every app x scheme on the same clean
// runs as E2.
func RunE3(schemes []sketch.Scheme, cfg Config) []E3Row {
	defer cfg.timeExperiment("e3")()
	if schemes == nil {
		schemes = sketch.All()
	}
	progs := apps.All()
	return runCells(cfg, "e3", len(progs)*len(schemes), func(i int) E3Row {
		p, s := progs[i/len(schemes)], schemes[i%len(schemes)]
		row := E3Row{App: p.Name, Scheme: s}
		rec := cfg.record(p, cfg.overheadOptions(s, 1))
		if f := rec.Result.Failure; f != nil {
			row.Err = f
		} else {
			row.SketchBytes = sketch.EncodedSize(rec.Sketch)
			row.InputBytes = sketch.InputEncodedSize(rec.Inputs)
			if rec.Sketch.TotalOps > 0 {
				row.BytesPerKop = float64(row.SketchBytes) * 1000 / float64(rec.Sketch.TotalOps)
			}
		}
		return row
	})
}

// E4Row is one cell of the scalability figure: overhead and attempts at
// a given processor count.
type E4Row struct {
	Procs    int
	Bug      string
	Scheme   sketch.Scheme
	Overhead float64
	Attempts int
	Repro    bool
	Err      error
}

// E4Bugs is the default bug subset for the scalability sweep (one per
// category).
var E4Bugs = []string{"mysql-169", "pbzip2-order", "lu-atomicity"}

// RunE4 sweeps the processor count, measuring SYNC recording overhead
// on the bug's application and attempts-to-reproduce. More processors
// widen the unrecorded interleaving space; the paper's claim is that
// PRES's attempts stay low while BASE-style approaches blow up.
func RunE4(procs []int, bugs []string, cfg Config) []E4Row {
	defer cfg.timeExperiment("e4")()
	if procs == nil {
		procs = []int{1, 2, 4, 8, 16}
	}
	if bugs == nil {
		bugs = E4Bugs
	}
	return runCells(cfg, "e4", len(procs)*len(bugs), func(i int) E4Row {
		c := cfg
		c.Processors = procs[i/len(bugs)]
		bug := bugs[i%len(bugs)]
		row := E4Row{Procs: c.Processors, Bug: bug, Scheme: sketch.SYNC}
		_, res, err := ReproduceBug(bug, sketch.SYNC, c)
		if err != nil {
			row.Err = err
		} else {
			// Overhead is a production metric: measure it on the
			// app's long patched workload at this processor count.
			prog, _ := apps.ProgramForBug(bug)
			prod := c.record(prog, c.overheadOptions(sketch.SYNC, 1))
			row.Overhead = prod.Result.Overhead()
			row.Attempts = res.Attempts
			row.Repro = res.Reproduced
		}
		return row
	})
}

// E5Row is one cell of the feedback-ablation figure.
type E5Row struct {
	Bug               string
	WithFeedback      int
	WithFeedbackOK    bool
	WithoutFeedback   int
	WithoutFeedbackOK bool
	Err               error
}

// RunE5 compares feedback-directed search against random exploration of
// the same sketch-constrained space — the paper's "feedback generation
// is critical" result.
func RunE5(bugs []string, cfg Config) []E5Row {
	defer cfg.timeExperiment("e5")()
	if bugs == nil {
		for _, b := range apps.AllBugs() {
			bugs = append(bugs, b.ID)
		}
	}
	return runCells(cfg, "e5", len(bugs), func(i int) E5Row {
		bug := bugs[i]
		row := E5Row{Bug: bug}
		prog, _ := apps.ProgramForBug(bug)
		_, rec, err := FindBuggySeed(prog, bug, sketch.SYNC, cfg)
		if err != nil {
			row.Err = err
			return row
		}
		with := cfg.replay(prog, rec, cfg.replayOptions(bug))
		noFB := cfg.replayOptions(bug)
		noFB.Feedback = false
		without := cfg.replay(prog, rec, noFB)
		row.WithFeedback, row.WithFeedbackOK = with.Attempts, with.Reproduced
		row.WithoutFeedback, row.WithoutFeedbackOK = without.Attempts, without.Reproduced
		return row
	})
}

// E6Row is one row of the reproduce-every-time check.
type E6Row struct {
	Bug      string
	Attempts int // attempts to first reproduction
	Replays  int // captured-order replays performed
	AllRepro bool
	Err      error
}

// RunE6 verifies the paper's determinism claim: after the first
// successful replay, the captured full order reproduces the bug on
// every one of n re-executions.
func RunE6(bugs []string, n int, cfg Config) []E6Row {
	defer cfg.timeExperiment("e6")()
	if bugs == nil {
		for _, b := range apps.AllBugs() {
			bugs = append(bugs, b.ID)
		}
	}
	if n <= 0 {
		n = 100
	}
	return runCells(cfg, "e6", len(bugs), func(i int) E6Row {
		bug := bugs[i]
		row := E6Row{Bug: bug, Replays: n}
		prog, _ := apps.ProgramForBug(bug)
		rec, res, err := ReproduceBug(bug, sketch.SYNC, cfg)
		if err != nil {
			row.Err = err
			return row
		}
		row.Attempts = res.Attempts
		if !res.Reproduced {
			return row
		}
		row.AllRepro = true
		oracle := core.MatchBugID(bug)
		for r := 0; r < n; r++ {
			out := core.Reproduce(prog, rec, res.Order)
			if out.Failure == nil || !out.Failure.IsBug() || !oracle(out.Failure) {
				row.AllRepro = false
				break
			}
		}
		return row
	})
}

// E7Row is one row of the overhead-reduction headline: how many times
// cheaper each sketch is than full RW recording on one application.
type E7Row struct {
	App       string
	Scheme    sketch.Scheme
	Reduction float64 // RW overhead / scheme overhead
	Err       error
}

// RunE7 derives the paper's "up to 4416x lower overhead" headline from
// the E2 measurements.
func RunE7(cfg Config) []E7Row {
	defer cfg.timeExperiment("e7")()
	e2 := RunE2([]sketch.Scheme{sketch.SYNC, sketch.SYS, sketch.FUNC, sketch.BB, sketch.RW}, cfg)
	rw := map[string]float64{}
	for _, r := range e2 {
		if r.Scheme == sketch.RW {
			rw[r.App] = r.Overhead
		}
	}
	var rows []E7Row
	for _, r := range e2 {
		if r.Scheme == sketch.RW {
			continue
		}
		row := E7Row{App: r.App, Scheme: r.Scheme, Err: r.Err}
		if r.Err == nil && r.Overhead > 0 {
			row.Reduction = rw[r.App] / r.Overhead
		}
		rows = append(rows, row)
	}
	return rows
}

// E8Row summarizes the replay-time cost of reproducing one bug.
type E8Row struct {
	Bug         string
	Attempts    int
	Flips       int
	RacesSeen   int
	Divergences int
	CleanRuns   int
	Reproduced  bool
	// CacheSaved is how many executions a second search over the same
	// recording answered from the schedule cache instead of re-running —
	// the repeated-diagnosis saving the cache buys.
	CacheSaved int
	Err        error
}

// RunE8 collects the replayer's search statistics for every bug under
// SYNC sketching. Each bug is searched twice against a shared schedule
// cache (cfg.SearchCache, or a per-bug cache when unset): the first,
// cold search fills the table's attempt statistics, the second reports
// how many of its executions the cache absorbed.
func RunE8(cfg Config) []E8Row {
	defer cfg.timeExperiment("e8")()
	bugs := apps.AllBugs()
	return runCells(cfg, "e8", len(bugs), func(i int) E8Row {
		b := bugs[i]
		row := E8Row{Bug: b.ID}
		prog, ok := apps.ProgramForBug(b.ID)
		if !ok {
			row.Err = fmt.Errorf("harness: unknown bug %q", b.ID)
			return row
		}
		_, rec, err := FindBuggySeed(prog, b.ID, sketch.SYNC, cfg)
		if err != nil {
			row.Err = err
			return row
		}
		c := cfg
		if c.SearchCache == nil {
			c.SearchCache = core.NewSearchCache(0)
		}
		res := c.replay(prog, rec, c.replayOptions(b.ID))
		row.Attempts = res.Attempts
		row.Flips = res.Flips
		row.RacesSeen = res.Stats.RacesSeen
		row.Divergences = res.Stats.Divergences
		row.CleanRuns = res.Stats.CleanRuns
		row.Reproduced = res.Reproduced
		warm := c.replay(prog, rec, c.replayOptions(b.ID))
		row.CacheSaved = warm.Stats.CacheHits
		return row
	})
}

// E9Row is one cell of the sketch-truncation experiment (an extension
// beyond the paper): replay attempts when only the tail of the sketch
// log survives, as in bounded-storage deployments.
type E9Row struct {
	Bug        string
	Retained   int // percent of the sketch kept (100 = full)
	Attempts   int
	Reproduced bool
	Err        error
}

// E9Bugs is the default subset for the truncation sweep.
var E9Bugs = []string{"mysql-169", "openldap-deadlock", "lu-atomicity", "fft-barrier"}

// RunE9 sweeps the retained sketch fraction for a bug subset under SYNC.
func RunE9(bugs []string, fractions []int, cfg Config) []E9Row {
	defer cfg.timeExperiment("e9")()
	if bugs == nil {
		bugs = E9Bugs
	}
	if fractions == nil {
		fractions = []int{100, 50, 25, 10}
	}
	// The cell is the bug, not the (bug, fraction) pair: every fraction
	// replays the same recording, so splitting them would repeat the
	// seed search per fraction.
	perBug := runCells(cfg, "e9", len(bugs), func(i int) []E9Row {
		bug := bugs[i]
		prog, _ := apps.ProgramForBug(bug)
		_, rec, err := FindBuggySeed(prog, bug, sketch.SYNC, cfg)
		out := make([]E9Row, 0, len(fractions))
		for _, pct := range fractions {
			row := E9Row{Bug: bug, Retained: pct, Err: err}
			if err == nil {
				tail := 0 // 0 = full sketch, strictly enforced
				if pct < 100 {
					tail = max(1, rec.Sketch.Len()*pct/100)
				}
				ropts := cfg.replayOptions(bug)
				ropts.SketchTail = tail
				res := cfg.replay(prog, rec, ropts)
				row.Attempts = res.Attempts
				row.Reproduced = res.Reproduced
			}
			out = append(out, row)
		}
		return out
	})
	var rows []E9Row
	for _, r := range perBug {
		rows = append(rows, r...)
	}
	return rows
}

// E10Row is one cell of the bug-pattern matrix (extension): attempts to
// reproduce a canonical pattern under a scheme.
type E10Row struct {
	Pattern    string
	Class      string
	Scheme     sketch.Scheme
	Attempts   int
	Reproduced bool
	Err        error
}

// RunE10 reproduces every catalog pattern under each scheme. Patterns
// are one-shot programs, so the production sweep covers processor
// counts down to a loaded uniprocessor (preemption strands a thread
// mid-window, which is how these windows are hit in the wild).
func RunE10(schemes []sketch.Scheme, cfg Config) []E10Row {
	defer cfg.timeExperiment("e10")()
	if schemes == nil {
		schemes = []sketch.Scheme{sketch.SYNC, sketch.RW}
	}
	pats := patterns.All()
	return runCells(cfg, "e10", len(pats)*len(schemes), func(i int) E10Row {
		p, s := pats[i/len(schemes)], schemes[i%len(schemes)]
		// Build per cell: each worker gets its own program value.
		prog := p.Build()
		oracle := core.MatchBugID(p.BugID)
		row := E10Row{Pattern: p.Name, Class: p.Class, Scheme: s}
		var rec *core.Recording
		for _, procs := range []int{4, 1, 2} {
			for seed := int64(0); seed < int64(cfg.seedBudget()) && rec == nil; seed++ {
				r := cfg.record(prog, core.Options{
					Scheme:       s,
					Processors:   procs,
					Preempt:      0.05,
					ScheduleSeed: seed,
					WorldSeed:    cfg.worldSeed(),
					MaxSteps:     cfg.maxSteps(),
					Metrics:      cfg.Metrics,
				})
				if f := r.BugFailure(); f != nil && oracle(f) {
					rec = r
				}
			}
			if rec != nil {
				break
			}
		}
		if rec == nil {
			row.Err = fmt.Errorf("pattern %s never manifested", p.Name)
			return row
		}
		res := cfg.replay(prog, rec, cfg.replayOptions(p.BugID))
		row.Attempts = res.Attempts
		row.Reproduced = res.Reproduced
		return row
	})
}

// E13Row is one cell of the always-on-recording experiment (an
// extension beyond the paper): replay attempts and retained log size
// when production records into a bounded epoch ring with periodic
// checkpoints, swept over the epoch length. EpochSteps 0 is the
// whole-execution baseline (classic recording, replay from the start).
type E13Row struct {
	Bug        string
	EpochSteps uint64 // 0 = epoch recording off (baseline)
	// Ring shape of the recording: retained epochs, evicted epochs, and
	// surviving checkpoints. The replay starts from the newest
	// checkpoint; zero checkpoints (run too short to roll) makes the
	// checkpointed replay identical to the baseline.
	Epochs      int
	Evicted     uint64
	Checkpoints int
	// WindowEntries/WindowBytes size the retained sketch window — the
	// always-on deployment's storage bound for this epoch length.
	WindowEntries int
	WindowBytes   int
	Attempts      int
	Reproduced    bool
	Err           error
}

// E13Bugs is the default subset for the epoch sweep: bugs whose buggy
// runs live long enough to seal checkpoints (short-crash bugs leave an
// empty ring and reduce to the baseline row).
var E13Bugs = []string{"mysql-169", "fft-barrier", "pbzip2-order", "openldap-deadlock", "apache-25520"}

// RunE13 sweeps the epoch length for a bug subset under SYNC: each bug
// is seed-searched once, then re-recorded at the same seed with an
// epoch ring of the given capacity and checkpoint cadence (sealing
// never perturbs the interleaving, so the same seed manifests the same
// bug), and replayed from the newest checkpoint. Shorter epochs keep
// the retained window small and the search shallow; epochs longer than
// the run never roll, so the row degrades to whole-log replay.
func RunE13(bugs []string, lengths []uint64, ringSize, cpEvery int, cfg Config) []E13Row {
	defer cfg.timeExperiment("e13")()
	if bugs == nil {
		bugs = E13Bugs
	}
	if lengths == nil {
		lengths = []uint64{16, 32, 64}
	}
	if ringSize <= 0 {
		ringSize = 2
	}
	if cpEvery <= 0 {
		cpEvery = 1
	}
	// The cell is the bug: every epoch length replays a re-recording of
	// the same seed, so splitting cells would repeat the seed search.
	perBug := runCells(cfg, "e13", len(bugs), func(i int) []E13Row {
		bug := bugs[i]
		prog, _ := apps.ProgramForBug(bug)
		seed, rec, err := FindBuggySeed(prog, bug, sketch.SYNC, cfg)
		out := make([]E13Row, 0, len(lengths)+1)
		base := E13Row{Bug: bug, Err: err}
		if err == nil {
			base.WindowEntries = rec.Sketch.Len()
			base.WindowBytes = sketch.EncodedSize(rec.Sketch)
			res := cfg.replay(prog, rec, cfg.replayOptions(bug))
			base.Attempts, base.Reproduced = res.Attempts, res.Reproduced
		}
		out = append(out, base)
		for _, es := range lengths {
			row := E13Row{Bug: bug, EpochSteps: es, Err: err}
			if err != nil {
				out = append(out, row)
				continue
			}
			opts := cfg.options(sketch.SYNC, seed)
			opts.EpochRing = &core.EpochRingOptions{Steps: es, Size: ringSize, CheckpointEvery: cpEvery}
			erec := cfg.record(prog, opts)
			ring := erec.Epochs
			row.Epochs = len(ring.Epochs)
			row.Evicted = ring.Evicted
			row.Checkpoints = len(ring.Checkpoints)
			row.WindowEntries = erec.Sketch.Len()
			row.WindowBytes = sketch.EncodedSize(erec.Sketch)
			ropts := cfg.replayOptions(bug)
			ropts.FromCheckpoint = true
			res := cfg.replay(prog, erec, ropts)
			row.Attempts, row.Reproduced = res.Attempts, res.Reproduced
			out = append(out, row)
		}
		return out
	})
	var rows []E13Row
	for _, r := range perBug {
		rows = append(rows, r...)
	}
	return rows
}

// E11Row is one cell of the work-stealing-search scaling experiment (an
// extension beyond the paper): wall-clock to reproduce one bug at a
// given worker-pool size, cold and warm against the schedule cache.
type E11Row struct {
	Bug        string
	Workers    int
	Attempts   int
	Reproduced bool
	// WallMS is the best-of-3 cold search wall time; WarmWallMS times
	// the same search with the cache already filled by a prior run.
	WallMS     float64
	WarmWallMS float64
	// CacheSaved counts the warm search's executions answered from the
	// cache.
	CacheSaved int
	// Steps, Handoffs, and FastSteps aggregate the cold search's
	// executed scheduler work (core.ReplayStats): Handoffs/Steps is the
	// search's grant amortization, FastSteps the steps committed
	// without a fresh pick.
	Steps     uint64
	Handoffs  uint64
	FastSteps uint64
	Err       error
}

// E11Bugs is the default subset for the scaling sweep: the two bugs
// whose searches are long enough for pool effects to matter.
var E11Bugs = []string{"mysql-169", "lu-atomicity"}

// RunE11 sweeps the replay worker-pool size for a bug subset under SYNC
// sketching: each (bug, workers) cell reports cold wall-clock (best of
// 3, no cache) and warm wall-clock (a fresh cache filled by one run,
// then timed). Workers=1 is the sequential baseline the speedups in
// EXPERIMENTS.md are quoted against.
//
// Only the per-bug preparation (seed search + recording) runs on cfg's
// pool; the timed sweeps themselves are always sequential, because
// concurrent cells would contend for cores and corrupt the very
// wall-clock scaling the experiment measures.
func RunE11(bugs []string, workers []int, cfg Config) []E11Row {
	defer cfg.timeExperiment("e11")()
	if bugs == nil {
		bugs = E11Bugs
	}
	if workers == nil {
		workers = []int{1, 2, 4, 8}
	}
	type e11Prep struct {
		prog *appkit.Program
		rec  *core.Recording
		err  error
	}
	preps := runCells(cfg, "e11", len(bugs), func(i int) e11Prep {
		prog, ok := apps.ProgramForBug(bugs[i])
		if !ok {
			return e11Prep{err: fmt.Errorf("harness: unknown bug %q", bugs[i])}
		}
		_, rec, err := FindBuggySeed(prog, bugs[i], sketch.SYNC, cfg)
		return e11Prep{prog: prog, rec: rec, err: err}
	})
	var rows []E11Row
	for bi, bug := range bugs {
		prog, rec, err := preps[bi].prog, preps[bi].rec, preps[bi].err
		if prog == nil {
			rows = append(rows, E11Row{Bug: bug, Err: err})
			continue
		}
		for _, w := range workers {
			row := E11Row{Bug: bug, Workers: w, Err: err}
			if err != nil {
				rows = append(rows, row)
				continue
			}
			c := cfg
			c.Workers = w
			c.SearchCache = nil
			ropts := c.replayOptions(bug)
			var res *core.ReplayResult
			for i := 0; i < 3; i++ {
				start := time.Now()
				r := c.replay(prog, rec, ropts)
				if ms := float64(time.Since(start)) / float64(time.Millisecond); i == 0 || ms < row.WallMS {
					row.WallMS = ms
				}
				res = r
			}
			row.Attempts = res.Attempts
			row.Reproduced = res.Reproduced
			row.Steps = res.Stats.Steps
			row.Handoffs = res.Stats.Handoffs
			row.FastSteps = res.Stats.FastPathSteps
			warmOpts := ropts
			warmOpts.Cache = core.NewSearchCache(0)
			c.replay(prog, rec, warmOpts) // fill
			start := time.Now()
			warm := c.replay(prog, rec, warmOpts)
			row.WarmWallMS = float64(time.Since(start)) / float64(time.Millisecond)
			row.CacheSaved = warm.Stats.CacheHits
			rows = append(rows, row)
		}
	}
	return rows
}
