package harness

import (
	"bytes"
	"context"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/apps"
	"repro/internal/obs"
	"repro/internal/sketch"
)

func TestPoolRunsEveryCellOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		for _, n := range []int{0, 1, 5, 100} {
			hits := make([]atomic.Int32, max(n, 1))
			if err := NewPool(workers, "test", nil).Run(context.Background(), n, func(i int) {
				hits[i].Add(1)
			}); err != nil {
				t.Fatalf("workers=%d n=%d: err = %v", workers, n, err)
			}
			for i := 0; i < n; i++ {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: cell %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestPoolMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	if err := NewPool(4, "e2", reg).Run(context.Background(), 10, func(int) {}); err != nil {
		t.Fatalf("err = %v", err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[`pres_harness_cells_total{exp="e2"}`]; got != 10 {
		t.Fatalf("cells_total = %d, want 10 (counters: %v)", got, snap.Counters)
	}
	if got := snap.Gauges["pres_harness_workers_active"]; got != 0 {
		t.Fatalf("workers_active = %v after Run returned, want 0", got)
	}
}

func TestConfigJobs(t *testing.T) {
	if got := (Config{}).jobs(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("default jobs = %d, want GOMAXPROCS", got)
	}
	if got := (Config{Jobs: 3}).jobs(); got != 3 {
		t.Fatalf("jobs = %d, want 3", got)
	}
	if got := (Config{Jobs: -5}).jobs(); got != 1 {
		t.Fatalf("negative jobs = %d, want 1", got)
	}
	// A trace sink has no canonical cross-cell event order; the harness
	// must force sequential cells.
	var sink bytes.Buffer
	if got := (Config{Jobs: 8, Trace: obs.NewTraceSink(&sink)}).jobs(); got != 1 {
		t.Fatalf("jobs with trace = %d, want 1", got)
	}
}

// TestJobsDeterminism is the tentpole's contract: the same experiment
// run at -j 1, -j 4 and -j GOMAXPROCS must produce byte-identical
// rendered tables (and DeepEqual rows), because every cell derives its
// trajectory from its own identity, never from worker scheduling.
func TestJobsDeterminism(t *testing.T) {
	jobsValues := []int{1, 4, runtime.GOMAXPROCS(0)}

	cfg := fastCfg
	cfg.OverheadScale = 120
	schemes := []sketch.Scheme{sketch.SYNC, sketch.RW}

	var e2Rows [][]E2Row
	var e2Tables [][]byte
	for _, j := range jobsValues {
		c := cfg
		c.Jobs = j
		rows := RunE2(schemes, c)
		var buf bytes.Buffer
		PrintE2(&buf, rows)
		e2Rows = append(e2Rows, rows)
		e2Tables = append(e2Tables, buf.Bytes())
	}
	for i := 1; i < len(jobsValues); i++ {
		if !reflect.DeepEqual(e2Rows[0], e2Rows[i]) {
			t.Errorf("E2 rows differ between -j %d and -j %d", jobsValues[0], jobsValues[i])
		}
		if !bytes.Equal(e2Tables[0], e2Tables[i]) {
			t.Errorf("E2 table bytes differ between -j %d and -j %d:\n%s\nvs\n%s",
				jobsValues[0], jobsValues[i], e2Tables[0], e2Tables[i])
		}
	}

	var e8Rows [][]E8Row
	var e8Tables [][]byte
	for _, j := range jobsValues {
		c := cfg
		c.Jobs = j
		rows := RunE8(c)
		var buf bytes.Buffer
		PrintE8(&buf, rows)
		e8Rows = append(e8Rows, rows)
		e8Tables = append(e8Tables, buf.Bytes())
	}
	for i := 1; i < len(jobsValues); i++ {
		if !reflect.DeepEqual(e8Rows[0], e8Rows[i]) {
			t.Errorf("E8 rows differ between -j %d and -j %d", jobsValues[0], jobsValues[i])
		}
		if !bytes.Equal(e8Tables[0], e8Tables[i]) {
			t.Errorf("E8 table bytes differ between -j %d and -j %d", jobsValues[0], jobsValues[i])
		}
	}
}

func TestPoolCancelledContextRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	if err := NewPool(4, "test", nil).Run(ctx, 10, func(i int) { ran++ }); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Fatalf("%d cells ran under a dead context", ran)
	}
}

func TestHarnessCancelledContextStopsSeedSearch(t *testing.T) {
	// Config.Ctx threads down to every harness loop: a dead context ends
	// the seed search on its first iteration with the context's error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := fastCfg
	cfg.Ctx = ctx
	prog, _ := apps.Get("fft")
	if _, _, err := FindBuggySeed(prog, "fft-barrier", sketch.SYNC, cfg); err != context.Canceled {
		t.Fatalf("FindBuggySeed err = %v, want context.Canceled", err)
	}
	if _, err := FindCleanSeed(prog, cfg); err != context.Canceled {
		t.Fatalf("FindCleanSeed err = %v, want context.Canceled", err)
	}
}

// TestPoolStress hammers one pool with many more cells than workers;
// under -race (the Makefile stress target) this is the concurrency
// gate for the dispatch index and the per-slot commit discipline.
func TestPoolStress(t *testing.T) {
	const n = 10_000
	reg := obs.NewRegistry()
	out := make([]int, n)
	if err := NewPool(2*runtime.GOMAXPROCS(0), "stress", reg).Run(context.Background(), n, func(i int) {
		out[i] = i * i
	}); err != nil {
		t.Fatalf("err = %v", err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
	if got := reg.Snapshot().Counters[`pres_harness_cells_total{exp="stress"}`]; got != n {
		t.Fatalf("cells_total = %d, want %d", got, n)
	}
}

// TestMetricsDeterministicAcrossJobs: the aggregate metrics snapshot
// (counter totals, not timings) must not depend on -j either.
func TestMetricsDeterministicAcrossJobs(t *testing.T) {
	cfg := fastCfg
	cfg.OverheadScale = 80
	schemes := []sketch.Scheme{sketch.SYNC}
	counts := func(jobs int) map[string]uint64 {
		c := cfg
		c.Jobs = jobs
		c.Metrics = obs.NewRegistry()
		RunE3(schemes, c)
		return c.Metrics.Snapshot().Counters
	}
	seq := counts(1)
	par := counts(runtime.GOMAXPROCS(0))
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("counter totals differ across -j:\nseq: %v\npar: %v", seq, par)
	}
}
