package vsys

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/trace"
)

// World state snapshots. A snapshot captures everything a run can have
// mutated in the virtual syscall layer — clock, random-stream position,
// file contents, queue contents and (during replay) the per-thread
// input cursors — as a self-describing byte blob, taken at a scheduler
// quiescent point (between grants, e.g. an epoch seal, where no thread
// is mid-effect). core stores one per checkpoint so a replayer can
// validate or re-establish the boundary state.
//
// The random stream is captured as a draw count, not generator
// internals: Restore reseeds from the world's creation seed and
// fast-forwards the recorded number of draws, which reproduces the
// exact stream position without depending on math/rand's unexported
// state.

// snapshot wire: "VSNP" clock draws
//
//	nFiles { name data }...  (sorted by name)
//	nQueues { name closed nMsgs { msg }... }...  (sorted by name)
//	nCursors { tid call consumed }...  (sorted; replay worlds only)
const snapMagic = "VSNP"

// Snapshot serializes the world's mutable state. Call only at a
// quiescent point (no thread between a syscall's decision and effect).
func (w *World) Snapshot() []byte {
	buf := []byte(snapMagic)
	buf = binary.AppendUvarint(buf, w.clock)
	buf = binary.AppendUvarint(buf, w.draws)

	names := make([]string, 0, len(w.fs))
	for name := range w.fs {
		names = append(names, name)
	}
	sort.Strings(names)
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, name := range names {
		buf = appendString(buf, name)
		buf = appendBytes(buf, w.fs[name].data)
	}

	qnames := make([]string, 0, len(w.qs))
	for name := range w.qs {
		qnames = append(qnames, name)
	}
	sort.Strings(qnames)
	buf = binary.AppendUvarint(buf, uint64(len(qnames)))
	for _, name := range qnames {
		q := w.qs[name]
		buf = appendString(buf, name)
		closed := uint64(0)
		if q.closed {
			closed = 1
		}
		buf = binary.AppendUvarint(buf, closed)
		buf = binary.AppendUvarint(buf, uint64(len(q.msgs)))
		for _, m := range q.msgs {
			buf = appendBytes(buf, m)
		}
	}

	type ck struct {
		tid      trace.TID
		call     uint64
		consumed uint64
	}
	var cursors []ck
	if w.mode == Replay {
		total := map[inputKey]uint64{}
		for _, r := range w.log.Records {
			total[inputKey{r.TID, r.Call}]++
		}
		for k, remaining := range w.cursor {
			if consumed := total[k] - uint64(len(remaining)); consumed > 0 {
				cursors = append(cursors, ck{k.tid, k.call, consumed})
			}
		}
		sort.Slice(cursors, func(i, j int) bool {
			if cursors[i].tid != cursors[j].tid {
				return cursors[i].tid < cursors[j].tid
			}
			return cursors[i].call < cursors[j].call
		})
	}
	buf = binary.AppendUvarint(buf, uint64(len(cursors)))
	for _, c := range cursors {
		buf = binary.AppendUvarint(buf, uint64(uint32(c.tid)))
		buf = binary.AppendUvarint(buf, c.call)
		buf = binary.AppendUvarint(buf, c.consumed)
	}
	return buf
}

// Restore re-establishes a snapshot taken on a world with the same
// creation seed (and, for replay worlds, the same attached input log).
// Existing file and queue objects are mutated in place so handles the
// application already holds stay valid; files and queues absent from
// the snapshot are removed.
func (w *World) Restore(snap []byte) error {
	r := &snapReader{buf: snap}
	if string(r.take(len(snapMagic))) != snapMagic {
		return fmt.Errorf("vsys: bad snapshot magic")
	}
	clock := r.uvarint()
	draws := r.uvarint()

	nFiles := r.uvarint()
	files := make(map[string][]byte, nFiles)
	for i := uint64(0); i < nFiles && r.err == nil; i++ {
		name := string(r.bytes())
		files[name] = append([]byte(nil), r.bytes()...)
	}
	type qstate struct {
		closed bool
		msgs   [][]byte
	}
	nQueues := r.uvarint()
	queues := make(map[string]qstate, nQueues)
	for i := uint64(0); i < nQueues && r.err == nil; i++ {
		name := string(r.bytes())
		st := qstate{closed: r.uvarint() == 1}
		nMsgs := r.uvarint()
		for j := uint64(0); j < nMsgs && r.err == nil; j++ {
			st.msgs = append(st.msgs, append([]byte(nil), r.bytes()...))
		}
		queues[name] = st
	}
	nCursors := r.uvarint()
	type ckey struct {
		k        inputKey
		consumed uint64
	}
	cursors := make([]ckey, 0, nCursors)
	for i := uint64(0); i < nCursors && r.err == nil; i++ {
		tid := trace.TID(int32(r.uvarint()))
		call := r.uvarint()
		cursors = append(cursors, ckey{inputKey{tid, call}, r.uvarint()})
	}
	if r.err != nil {
		return fmt.Errorf("vsys: corrupt snapshot: %v", r.err)
	}

	w.clock = clock
	w.rng = rand.New(rand.NewSource(w.seed))
	for i := uint64(0); i < draws; i++ {
		w.rng.Uint64()
	}
	w.draws = draws
	for name, data := range files {
		if f := w.fs[name]; f != nil {
			f.data = data
		} else {
			w.fs[name] = &file{name: name, data: data}
		}
	}
	for name, f := range w.fs {
		if _, ok := files[name]; !ok {
			f.gone = true
			delete(w.fs, name)
		}
	}
	for name, st := range queues {
		q := w.qs[name]
		if q == nil {
			q = &Queue{w: w, name: name, obj: hashName(name)}
			w.qs[name] = q
		}
		q.closed = st.closed
		q.msgs = st.msgs
	}
	for name := range w.qs {
		if _, ok := queues[name]; !ok {
			delete(w.qs, name)
		}
	}
	if w.mode == Replay {
		w.cursor = make(map[inputKey][]int)
		for i, rec := range w.log.Records {
			k := inputKey{rec.TID, rec.Call}
			w.cursor[k] = append(w.cursor[k], i)
		}
		for _, c := range cursors {
			if rem := w.cursor[c.k]; uint64(len(rem)) >= c.consumed {
				w.cursor[c.k] = rem[c.consumed:]
			}
		}
	}
	return nil
}

// Digest returns a 64-bit digest of the world's snapshot state, for
// cheap boundary-equality checks between a recording's checkpoint and
// a replay's re-executed prefix.
func (w *World) Digest() uint64 {
	d := trace.NewDigest()
	d.Bytes(w.Snapshot())
	return d.Sum()
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendBytes(buf []byte, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

// snapReader is a minimal error-latching cursor over a snapshot blob.
type snapReader struct {
	buf []byte
	pos int
	err error
}

func (r *snapReader) take(n int) []byte {
	if r.err != nil || r.pos+n > len(r.buf) {
		r.fail()
		return nil
	}
	out := r.buf[r.pos : r.pos+n]
	r.pos += n
	return out
}

func (r *snapReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.pos += n
	return v
}

func (r *snapReader) bytes() []byte {
	n := r.uvarint()
	if n > uint64(len(r.buf)) {
		r.fail()
		return nil
	}
	return r.take(int(n))
}

func (r *snapReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("truncated at offset %d", r.pos)
	}
}
