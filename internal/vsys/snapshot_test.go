package vsys

import (
	"bytes"
	"testing"

	"repro/internal/trace"
)

// TestSnapshotRestoreRoundTrip snapshots a mutated world, keeps
// mutating, restores, and checks every observable axis came back:
// digest equality, file bytes, queue contents, clock and the random
// stream position.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	w := NewWorld(42)
	w.SeedFile("data.log", []byte("hello"))
	q := w.NewQueue("reqs")
	q.msgs = [][]byte{[]byte("a"), []byte("b")}
	w.clock = 100
	w.randU64()
	w.randU64()

	snap := w.Snapshot()
	want := w.Digest()
	wantDraw := w.randU64() // next value in the stream after the snapshot

	// Mutate everything the snapshot covers.
	w.clock = 999
	w.fs["data.log"].data = []byte("clobbered")
	w.SeedFile("extra.log", []byte("new"))
	q.msgs = nil
	q.closed = true
	w.NewQueue("extra-q")
	w.randU64()
	w.randU64()

	if err := w.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got := w.Digest(); got != want {
		t.Fatalf("digest after restore = %#x, want %#x", got, want)
	}
	if w.clock != 100 {
		t.Fatalf("clock = %d, want 100", w.clock)
	}
	if got := w.fs["data.log"].data; !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("file data = %q, want %q", got, "hello")
	}
	if _, ok := w.fs["extra.log"]; ok {
		t.Fatal("file created after snapshot survived restore")
	}
	if _, ok := w.qs["extra-q"]; ok {
		t.Fatal("queue created after snapshot survived restore")
	}
	if q.closed || len(q.msgs) != 2 || !bytes.Equal(q.msgs[0], []byte("a")) {
		t.Fatalf("queue state not restored: closed=%v msgs=%q", q.closed, q.msgs)
	}
	if got := w.randU64(); got != wantDraw {
		t.Fatalf("rng draw after restore = %#x, want %#x", got, wantDraw)
	}
}

// TestSnapshotRestoreInPlace pins the aliasing contract: application
// code holds *file (via FD) and *Queue pointers across a restore, so
// Restore must mutate the existing objects rather than replace them.
func TestSnapshotRestoreInPlace(t *testing.T) {
	w := NewWorld(1)
	w.SeedFile("f", []byte("x"))
	fptr := w.fs["f"]
	qptr := w.NewQueue("q")

	snap := w.Snapshot()
	fptr.data = []byte("mutated")
	qptr.msgs = append(qptr.msgs, []byte("m"))
	if err := w.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if w.fs["f"] != fptr {
		t.Fatal("restore replaced the file object instead of mutating it")
	}
	if w.qs["q"] != qptr {
		t.Fatal("restore replaced the queue object instead of mutating it")
	}
	if !bytes.Equal(fptr.data, []byte("x")) || len(qptr.msgs) != 0 {
		t.Fatalf("held pointers see stale state: file=%q msgs=%d", fptr.data, len(qptr.msgs))
	}
}

// TestSnapshotReplayCursor checks a replay-mode world's per-thread
// input cursors round-trip: after restore, each thread resumes its
// logged input sequence from the snapshotted position.
func TestSnapshotReplayCursor(t *testing.T) {
	log := &trace.InputLog{}
	for i := uint64(0); i < 4; i++ {
		log.Append(trace.InputRecord{TID: 1, Call: CallRand, Data: encodeU64(100 + i)})
	}
	log.Append(trace.InputRecord{TID: 2, Call: CallNow, Data: encodeU64(777)})

	w := NewWorld(7)
	w.StartReplay(log)
	if got := w.input(1, CallRand, func() uint64 { return 0 }); got != 100 {
		t.Fatalf("first replay input = %d, want 100", got)
	}
	snap := w.Snapshot()

	// Consume past the boundary, then restore.
	w.input(1, CallRand, func() uint64 { return 0 })
	w.input(1, CallRand, func() uint64 { return 0 })
	w.input(2, CallNow, func() uint64 { return 0 })
	if err := w.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got := w.input(1, CallRand, func() uint64 { return 0 }); got != 101 {
		t.Fatalf("post-restore input = %d, want 101", got)
	}
	if got := w.input(2, CallNow, func() uint64 { return 0 }); got != 777 {
		t.Fatalf("post-restore tid-2 input = %d, want 777", got)
	}
}

func TestRestoreRejectsCorrupt(t *testing.T) {
	w := NewWorld(3)
	if err := w.Restore([]byte("not a snapshot")); err == nil {
		t.Fatal("bad magic accepted")
	}
	snap := w.Snapshot()
	for _, n := range []int{0, 2, len(snap) - 1} {
		if err := w.Restore(snap[:n]); err == nil {
			t.Fatalf("truncated snapshot (%d bytes) accepted", n)
		}
	}
	if err := w.Restore(snap); err != nil {
		t.Fatalf("valid snapshot rejected after failed restores: %v", err)
	}
}
