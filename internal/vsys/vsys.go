// Package vsys is the virtual system-call layer: an in-memory
// filesystem, socket-like message queues, a virtual clock and a seeded
// random source. Every call is a KindSyscall scheduling point — the
// event stream the SYS sketching mechanism records.
//
// Non-deterministic inputs (clock samples, random draws) are logged into
// a trace.InputLog during recording and served back from it during
// replay, under every scheme including BASE: PRES always records inputs
// because they are cheap; only *interleaving* non-determinism is what
// the sketch schemes trade off. The serialized input log's size is part
// of the recording's log-byte accounting (pres_record_log_bytes_total
// in OBSERVABILITY.md).
package vsys

import (
	"hash/fnv"
	"math/rand"

	"repro/internal/sched"
	"repro/internal/trace"
)

// Call codes, used as the Obj of KindSyscall events.
const (
	CallOpen uint64 = iota + 1
	CallRead
	CallWrite
	CallClose
	CallUnlink
	CallNow
	CallRand
	CallSleep
	CallSend
	CallRecv
	CallCloseQueue
)

// CallName returns a human-readable name for a call code.
func CallName(code uint64) string {
	switch code {
	case CallOpen:
		return "open"
	case CallRead:
		return "read"
	case CallWrite:
		return "write"
	case CallClose:
		return "close"
	case CallUnlink:
		return "unlink"
	case CallNow:
		return "now"
	case CallRand:
		return "rand"
	case CallSleep:
		return "sleep"
	case CallSend:
		return "send"
	case CallRecv:
		return "recv"
	case CallCloseQueue:
		return "close-queue"
	default:
		return "call(?)"
	}
}

func hashName(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

// Mode selects how the world treats non-deterministic inputs.
type Mode int

const (
	// Live generates inputs fresh (no logging) — used by plain tests.
	Live Mode = iota
	// Record generates inputs fresh and appends them to the input log.
	Record
	// Replay serves inputs from the log (falling back to fresh values
	// if the log runs dry, which only happens on divergent replays).
	Replay
)

type inputKey struct {
	tid  trace.TID
	call uint64
}

// World is one execution's syscall state. Create a fresh World per run.
type World struct {
	mode   Mode
	log    *trace.InputLog
	cursor map[inputKey][]int // per-(thread,call) FIFO of log indices

	clock uint64
	seed  int64
	draws uint64 // random values drawn, for snapshot fast-forward
	rng   *rand.Rand
	fs    map[string]*file
	qs    map[string]*Queue
}

// NewWorld returns a live-mode world whose random source uses seed.
func NewWorld(seed int64) *World {
	return &World{
		seed: seed,
		rng:  rand.New(rand.NewSource(seed)),
		fs:   make(map[string]*file),
		qs:   make(map[string]*Queue),
	}
}

// randU64 draws from the world's random source, counting draws so a
// snapshot can record the stream position.
func (w *World) randU64() uint64 {
	w.draws++
	return w.rng.Uint64()
}

// StartRecording switches the world to Record mode, appending inputs to
// log.
func (w *World) StartRecording(log *trace.InputLog) {
	w.mode = Record
	w.log = log
}

// StartReplay switches the world to Replay mode, serving inputs from
// log. Records are matched per (thread, call) in FIFO order, so replay
// attempts with different interleavings still hand each thread the same
// input sequence it saw during production.
func (w *World) StartReplay(log *trace.InputLog) {
	w.StartReplayFrom(log, 0)
}

// StartReplayFrom switches the world to Replay mode serving only the
// log's records from index `from` on. This is the seam checkpointed
// replay flips mid-run: the prefix re-executes in Live mode — the same
// world seed regenerates the recorded inputs deterministically, with
// the blocking enabledness the production run saw (Replay mode enables
// a blocked call as soon as a logged input exists, which would let
// e.g. a queue Recv run before its Send and diverge the prefix) — and
// from the validated boundary on, the remaining logged inputs are
// served exactly as a replay from the start would serve them.
func (w *World) StartReplayFrom(log *trace.InputLog, from int) {
	w.mode = Replay
	w.log = log
	w.cursor = make(map[inputKey][]int)
	if from < 0 {
		from = 0
	}
	for i := from; i < len(log.Records); i++ {
		r := log.Records[i]
		k := inputKey{r.TID, r.Call}
		w.cursor[k] = append(w.cursor[k], i)
	}
}

// input runs fresh() for the authoritative value in Live/Record mode
// (logging it in Record mode) or pops the thread's next logged value in
// Replay mode.
func (w *World) input(tid trace.TID, call uint64, fresh func() uint64) uint64 {
	b := w.inputBytes(tid, call, func() []byte { return encodeU64(fresh()) })
	return decodeU64(b)
}

// inputBytes is the byte-level input channel: the result of fresh() is
// authoritative in Live/Record mode (and logged in Record mode); in
// Replay mode the thread's next logged value for this call is served
// instead, falling back to fresh() only on a divergent replay that
// consumes more inputs than were recorded.
func (w *World) inputBytes(tid trace.TID, call uint64, fresh func() []byte) []byte {
	switch w.mode {
	case Replay:
		k := inputKey{tid, call}
		if idxs := w.cursor[k]; len(idxs) > 0 {
			rec := w.log.Records[idxs[0]]
			w.cursor[k] = idxs[1:]
			return rec.Data
		}
		return fresh() // log dry: divergent replay, monitor will catch it
	case Record:
		v := fresh()
		w.log.Append(trace.InputRecord{TID: tid, Call: call, Data: v})
		return v
	default:
		return fresh()
	}
}

// hasReplayInput reports whether the thread has an unconsumed logged
// input for the call — used by blocking calls to decide enabledness
// during replay.
func (w *World) hasReplayInput(tid trace.TID, call uint64) bool {
	return len(w.cursor[inputKey{tid, call}]) > 0
}

// inject consults the thread's failure-injection hook (sched.InjectFn)
// for a call and applies the generic parts of the verdict to op: extra
// modelled cost (slow-I/O classes) and wedging (the op never becomes
// enabled, modelling a hung backend). The per-call failure paths
// (InjectFailOp — short reads, dropped sends, reset receives) are
// handled at each call site; calls without a failure path treat
// InjectFailOp as no action. With no hook installed this is a single
// nil check and allocates nothing.
func inject(t *sched.Thread, call uint64, op *sched.Op) sched.InjectAction {
	act := t.Inject(sched.InjectPoint{Kind: sched.InjectSyscall, Obj: call})
	if act.ExtraCost > 0 {
		op.Cost += act.ExtraCost
	}
	if act.Outcome == sched.InjectWedge {
		op.Enabled = func() bool { return false }
		op.Desc += " (wedged)"
	}
	return act
}

// finish completes an injected call on the thread goroutine: the panic
// outcome fires here, after the operation's scheduling point, so the
// run ends with an application crash (sched.ReasonCrash) exactly as a
// fault-triggered panic in a real handler would.
func finish(act sched.InjectAction, call uint64) {
	if act.Outcome == sched.InjectPanic {
		panic("injected fault: sys " + CallName(call))
	}
}

func encodeU64(v uint64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return b
}

func decodeU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < len(b) && i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

// Now samples the virtual clock (a gettimeofday analogue). The clock
// advances a little on every sample; the sampled value is an input.
func (w *World) Now(t *sched.Thread) uint64 {
	var v uint64
	op := &sched.Op{
		Kind: trace.KindSyscall,
		Obj:  CallNow,
		Desc: "sys now",
		Cost: 4 * trace.CostUnit,
		Effect: func(ctx *sched.EffectCtx) {
			v = w.input(t.ID(), CallNow, func() uint64 {
				w.clock += 7
				return w.clock
			})
			ctx.Ev.Arg = v
		},
	}
	act := inject(t, CallNow, op)
	t.Point(op)
	finish(act, CallNow)
	return v
}

// Rand draws a random 64-bit value (an RDRAND/urandom analogue).
func (w *World) Rand(t *sched.Thread) uint64 {
	var v uint64
	op := &sched.Op{
		Kind: trace.KindSyscall,
		Obj:  CallRand,
		Desc: "sys rand",
		Cost: 4 * trace.CostUnit,
		Effect: func(ctx *sched.EffectCtx) {
			v = w.input(t.ID(), CallRand, w.randU64)
			ctx.Ev.Arg = v
		},
	}
	act := inject(t, CallRand, op)
	t.Point(op)
	finish(act, CallRand)
	return v
}

// Sleep advances the virtual clock by d units and costs the sleeping
// thread d units of virtual time, so time-weighted schedulers pace it
// against the other threads' work — this is how daemon threads (log
// rotators, timers) spread their activity across a workload.
func (w *World) Sleep(t *sched.Thread, d uint64) {
	op := &sched.Op{
		Kind:   trace.KindSyscall,
		Obj:    CallSleep,
		Arg:    d,
		Desc:   "sys sleep",
		Cost:   max(d, 1) * trace.CostUnit,
		Effect: func(*sched.EffectCtx) { w.clock += d },
	}
	act := inject(t, CallSleep, op)
	t.Point(op)
	finish(act, CallSleep)
}

type file struct {
	name string
	data []byte
	gone bool
}

// FD is an open file handle with its own offset.
type FD struct {
	w    *World
	f    *file
	pos  int
	obj  uint64
	open bool
}

// Open opens (creating if absent) the named file.
func (w *World) Open(t *sched.Thread, name string) *FD {
	fd := &FD{w: w, obj: hashName(name), open: true}
	op := &sched.Op{
		Kind: trace.KindSyscall,
		Obj:  CallOpen,
		Arg:  fd.obj,
		Desc: "sys open " + name,
		Cost: 8 * trace.CostUnit,
		Effect: func(*sched.EffectCtx) {
			f := w.fs[name]
			if f == nil || f.gone {
				f = &file{name: name}
				w.fs[name] = f
			}
			fd.f = f
		},
	}
	act := inject(t, CallOpen, op)
	t.Point(op)
	finish(act, CallOpen)
	return fd
}

// Unlink removes the named file.
func (w *World) Unlink(t *sched.Thread, name string) {
	op := &sched.Op{
		Kind: trace.KindSyscall,
		Obj:  CallUnlink,
		Arg:  hashName(name),
		Desc: "sys unlink " + name,
		Cost: 8 * trace.CostUnit,
		Effect: func(*sched.EffectCtx) {
			if f := w.fs[name]; f != nil {
				f.gone = true
				delete(w.fs, name)
			}
		},
	}
	act := inject(t, CallUnlink, op)
	t.Point(op)
	finish(act, CallUnlink)
}

// FileSize returns the current size of a file without a scheduling
// point (oracle/setup use only).
func (w *World) FileSize(name string) int {
	if f := w.fs[name]; f != nil {
		return len(f.data)
	}
	return -1
}

// SeedFile installs file contents before a run (setup only).
func (w *World) SeedFile(name string, data []byte) {
	w.fs[name] = &file{name: name, data: append([]byte(nil), data...)}
}

// Write appends p at the handle's offset, returning the byte count (0
// when an injected I/O error drops the write).
func (fd *FD) Write(t *sched.Thread, p []byte) int {
	n := len(p)
	op := &sched.Op{
		Kind: trace.KindSyscall,
		Obj:  CallWrite,
		Arg:  uint64(n),
		Desc: "sys write " + fd.f.name,
		Cost: 8 * trace.CostUnit,
	}
	act := inject(t, CallWrite, op)
	if act.Outcome == sched.InjectFailOp {
		n = 0 // the write is lost before reaching the file
	} else {
		op.Effect = func(*sched.EffectCtx) {
			f := fd.f
			for len(f.data) < fd.pos {
				f.data = append(f.data, 0)
			}
			f.data = append(f.data[:fd.pos], append(append([]byte(nil), p...), f.data[min(fd.pos+n, len(f.data)):]...)...)
			fd.pos += n
		}
	}
	t.Point(op)
	finish(act, CallWrite)
	return n
}

// Read fills p from the handle's offset, returning the byte count (0 at
// EOF). Like every data-bearing input, the bytes read are recorded in
// the input log and served back verbatim during replay: file contents
// can depend on other threads' interleaved writes, so the read result
// is non-deterministic input exactly as on a real kernel.
func (fd *FD) Read(t *sched.Thread, p []byte) int {
	var n int
	op := &sched.Op{
		Kind: trace.KindSyscall,
		Obj:  CallRead,
		Arg:  uint64(len(p)),
		Desc: "sys read " + fd.f.name,
		Cost: 8 * trace.CostUnit,
	}
	// An injected I/O error returns no bytes and — because the failure
	// is decided by the same deterministic injector during recording and
	// every replay attempt — consumes nothing from the input log, so the
	// per-thread input cursors stay aligned.
	act := inject(t, CallRead, op)
	if act.Outcome != sched.InjectFailOp {
		op.Effect = func(ctx *sched.EffectCtx) {
			data := fd.w.inputBytes(t.ID(), CallRead, func() []byte {
				if fd.pos >= len(fd.f.data) {
					return nil
				}
				m := min(len(p), len(fd.f.data)-fd.pos)
				out := append([]byte(nil), fd.f.data[fd.pos:fd.pos+m]...)
				fd.pos += m
				return out
			})
			n = copy(p, data)
			ctx.Ev.Arg = uint64(n)
		}
	}
	t.Point(op)
	finish(act, CallRead)
	return n
}

// Close closes the handle.
func (fd *FD) Close(t *sched.Thread) {
	op := &sched.Op{
		Kind:   trace.KindSyscall,
		Obj:    CallClose,
		Arg:    fd.obj,
		Desc:   "sys close " + fd.f.name,
		Cost:   4 * trace.CostUnit,
		Effect: func(*sched.EffectCtx) { fd.open = false },
	}
	act := inject(t, CallClose, op)
	t.Point(op)
	finish(act, CallClose)
}

// Queue is a socket-like FIFO of messages: workload drivers Send client
// requests, server threads Recv them. Recv blocks while the queue is
// empty and open.
type Queue struct {
	w      *World
	name   string
	obj    uint64
	msgs   [][]byte
	closed bool
}

// NewQueue returns the world's queue with the given name, creating it
// if needed (no scheduling point; queues are created at setup).
func (w *World) NewQueue(name string) *Queue {
	if q := w.qs[name]; q != nil {
		return q
	}
	q := &Queue{w: w, name: name, obj: hashName(name)}
	w.qs[name] = q
	return q
}

// Send enqueues a message. An injected failure sheds it: the send is a
// scheduling point as usual but the message never reaches the queue —
// the overload-shedding model the scenario matrix drives.
func (q *Queue) Send(t *sched.Thread, msg []byte) {
	op := &sched.Op{
		Kind: trace.KindSyscall,
		Obj:  CallSend,
		Arg:  q.obj,
		Desc: "sys send " + q.name,
		Cost: 8 * trace.CostUnit,
	}
	act := inject(t, CallSend, op)
	if act.Outcome != sched.InjectFailOp {
		op.Effect = func(*sched.EffectCtx) {
			q.msgs = append(q.msgs, append([]byte(nil), msg...))
		}
	}
	t.Point(op)
	finish(act, CallSend)
}

// Recv dequeues the next message, blocking while the queue is empty and
// open. ok is false once the queue is closed and drained.
//
// The received bytes are non-deterministic input (which message a thread
// gets depends on the interleaving of the receivers), so — as PRES does
// for socket reads — the result is recorded in the input log under
// every scheme and served back per-thread during replay. That pins the
// request-to-worker assignment without recording any ordering.
func (q *Queue) Recv(t *sched.Thread) (msg []byte, ok bool) {
	w := q.w
	op := &sched.Op{
		Kind: trace.KindSyscall,
		Obj:  CallRecv,
		Arg:  q.obj,
		Desc: "sys recv " + q.name,
		Cost: 8 * trace.CostUnit,
		Enabled: func() bool {
			if w.mode == Replay && w.hasReplayInput(t.ID(), CallRecv) {
				return true
			}
			return len(q.msgs) > 0 || q.closed
		},
		Effect: func(ctx *sched.EffectCtx) {
			data := w.inputBytes(t.ID(), CallRecv, func() []byte {
				if len(q.msgs) == 0 {
					return []byte{0} // closed and drained
				}
				m := q.msgs[0]
				q.msgs = q.msgs[1:]
				return append([]byte{1}, m...)
			})
			if len(data) == 0 || data[0] == 0 {
				return
			}
			msg = data[1:]
			ok = true
			ctx.Ev.Arg = uint64(len(msg))
		},
	}
	act := inject(t, CallRecv, op)
	if act.Outcome == sched.InjectFailOp {
		// Injected connection reset: the receive fails immediately
		// (never blocks), consumes nothing, and reports the peer gone.
		op.Enabled = nil
		op.Effect = nil
	}
	t.Point(op)
	finish(act, CallRecv)
	return msg, ok
}

// Close marks the queue closed; blocked and future Recvs drain whatever
// remains and then return ok=false.
func (q *Queue) Close(t *sched.Thread) {
	op := &sched.Op{
		Kind:   trace.KindSyscall,
		Obj:    CallCloseQueue,
		Arg:    q.obj,
		Desc:   "sys close-queue " + q.name,
		Cost:   4 * trace.CostUnit,
		Effect: func(*sched.EffectCtx) { q.closed = true },
	}
	act := inject(t, CallCloseQueue, op)
	t.Point(op)
	finish(act, CallCloseQueue)
}
