package vsys

import (
	"bytes"
	"testing"

	"repro/internal/sched"
	"repro/internal/trace"
)

func runL(t *testing.T, root func(*sched.Thread)) *sched.Result {
	t.Helper()
	return sched.Run(root, sched.Config{Strategy: sched.Lowest{}})
}

func TestFileWriteRead(t *testing.T) {
	res := runL(t, func(th *sched.Thread) {
		w := NewWorld(1)
		fd := w.Open(th, "/var/log/app.log")
		fd.Write(th, []byte("hello "))
		fd.Write(th, []byte("world"))
		fd.Close(th)

		rd := w.Open(th, "/var/log/app.log")
		buf := make([]byte, 64)
		n := rd.Read(th, buf)
		if string(buf[:n]) != "hello world" {
			th.Fail("t", "read %q", buf[:n])
		}
		if rd.Read(th, buf) != 0 {
			th.Fail("t", "expected EOF")
		}
		rd.Close(th)
	})
	if res.Failure != nil {
		t.Fatal(res.Failure)
	}
}

func TestFileSizeAndSeed(t *testing.T) {
	w := NewWorld(1)
	w.SeedFile("/etc/conf", []byte("abc"))
	if w.FileSize("/etc/conf") != 3 {
		t.Fatal("seeded size wrong")
	}
	if w.FileSize("/missing") != -1 {
		t.Fatal("missing file should be -1")
	}
	res := runL(t, func(th *sched.Thread) {
		fd := w.Open(th, "/etc/conf")
		buf := make([]byte, 8)
		if n := fd.Read(th, buf); string(buf[:n]) != "abc" {
			th.Fail("t", "read %q", buf[:n])
		}
	})
	if res.Failure != nil {
		t.Fatal(res.Failure)
	}
}

func TestUnlink(t *testing.T) {
	res := runL(t, func(th *sched.Thread) {
		w := NewWorld(1)
		fd := w.Open(th, "/tmp/x")
		fd.Write(th, []byte("data"))
		w.Unlink(th, "/tmp/x")
		if w.FileSize("/tmp/x") != -1 {
			th.Fail("t", "file survived unlink")
		}
		// Reopening creates a fresh file.
		fd2 := w.Open(th, "/tmp/x")
		buf := make([]byte, 8)
		if fd2.Read(th, buf) != 0 {
			th.Fail("t", "fresh file not empty")
		}
	})
	if res.Failure != nil {
		t.Fatal(res.Failure)
	}
}

func TestClockMonotonic(t *testing.T) {
	res := runL(t, func(th *sched.Thread) {
		w := NewWorld(1)
		a := w.Now(th)
		w.Sleep(th, 100)
		b := w.Now(th)
		if b <= a {
			th.Fail("t", "clock went backwards: %d then %d", a, b)
		}
		if b-a < 100 {
			th.Fail("t", "sleep did not advance clock")
		}
	})
	if res.Failure != nil {
		t.Fatal(res.Failure)
	}
}

func TestRandDeterministicPerSeed(t *testing.T) {
	draw := func(seed int64) []uint64 {
		var out []uint64
		runL(t, func(th *sched.Thread) {
			w := NewWorld(seed)
			for i := 0; i < 5; i++ {
				out = append(out, w.Rand(th))
			}
		})
		return out
	}
	a, b := draw(7), draw(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce draws")
		}
	}
	c := draw(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical draws")
	}
}

func TestQueueSendRecv(t *testing.T) {
	res := runL(t, func(th *sched.Thread) {
		w := NewWorld(1)
		q := w.NewQueue("sock")
		cons := th.Spawn("consumer", func(ct *sched.Thread) {
			msg, ok := q.Recv(ct) // blocks until the producer sends
			if !ok || string(msg) != "req-1" {
				ct.Fail("t", "recv = %q ok=%v", msg, ok)
			}
		})
		q.Send(th, []byte("req-1"))
		th.Join(cons)
	})
	if res.Failure != nil {
		t.Fatal(res.Failure)
	}
}

func TestQueueCloseDrains(t *testing.T) {
	res := runL(t, func(th *sched.Thread) {
		w := NewWorld(1)
		q := w.NewQueue("sock")
		q.Send(th, []byte("a"))
		q.Close(th)
		if msg, ok := q.Recv(th); !ok || string(msg) != "a" {
			th.Fail("t", "drain failed: %q %v", msg, ok)
		}
		if _, ok := q.Recv(th); ok {
			th.Fail("t", "recv after drain should report closed")
		}
	})
	if res.Failure != nil {
		t.Fatal(res.Failure)
	}
}

func TestQueueNamedLookup(t *testing.T) {
	w := NewWorld(1)
	if w.NewQueue("q") != w.NewQueue("q") {
		t.Fatal("same name must return same queue")
	}
}

func TestRecordReplayInputs(t *testing.T) {
	log := &trace.InputLog{}
	var recorded []uint64
	res := runL(t, func(th *sched.Thread) {
		w := NewWorld(3)
		w.StartRecording(log)
		for i := 0; i < 4; i++ {
			recorded = append(recorded, w.Rand(th))
		}
		recorded = append(recorded, w.Now(th))
	})
	if res.Failure != nil {
		t.Fatal(res.Failure)
	}
	if log.Len() != 5 {
		t.Fatalf("input log has %d records, want 5", log.Len())
	}

	// Replay with a *different* seed: the logged values must win.
	var replayed []uint64
	res = runL(t, func(th *sched.Thread) {
		w := NewWorld(999)
		w.StartReplay(log)
		for i := 0; i < 4; i++ {
			replayed = append(replayed, w.Rand(th))
		}
		replayed = append(replayed, w.Now(th))
	})
	if res.Failure != nil {
		t.Fatal(res.Failure)
	}
	for i := range recorded {
		if recorded[i] != replayed[i] {
			t.Fatalf("input %d: recorded %d, replayed %d", i, recorded[i], replayed[i])
		}
	}
}

func TestReplayPerThreadStreams(t *testing.T) {
	// Two threads draw interleaved inputs during recording; a replay
	// with a different interleaving must still hand each thread its own
	// recorded sequence.
	log := &trace.InputLog{}
	perThread := map[int][]uint64{}
	record := func(strategy sched.Strategy, w *World, sink map[int][]uint64) *sched.Result {
		return sched.Run(func(th *sched.Thread) {
			var ts []*sched.Thread
			for i := 0; i < 2; i++ {
				i := i
				ts = append(ts, th.Spawn("w", func(ct *sched.Thread) {
					for j := 0; j < 3; j++ {
						sink[i] = append(sink[i], w.Rand(ct))
						ct.Yield()
					}
				}))
			}
			for _, h := range ts {
				th.Join(h)
			}
		}, sched.Config{Strategy: strategy})
	}

	w := NewWorld(11)
	w.StartRecording(log)
	if res := record(sched.NewRandomMP(4, 0.2, 5), w, perThread); res.Failure != nil {
		t.Fatal(res.Failure)
	}

	got := map[int][]uint64{}
	w2 := NewWorld(999)
	w2.StartReplay(log)
	if res := record(sched.NewRandomMP(4, 0.2, 77), w2, got); res.Failure != nil {
		t.Fatal(res.Failure)
	}
	for i := 0; i < 2; i++ {
		if len(got[i]) != len(perThread[i]) {
			t.Fatalf("thread %d drew %d inputs, want %d", i, len(got[i]), len(perThread[i]))
		}
		for j := range got[i] {
			if got[i][j] != perThread[i][j] {
				t.Fatalf("thread %d input %d mismatch", i, j)
			}
		}
	}
}

func TestReplayDryLogFallsBack(t *testing.T) {
	log := &trace.InputLog{}
	res := runL(t, func(th *sched.Thread) {
		w := NewWorld(1)
		w.StartReplay(log) // empty log
		w.Rand(th)         // must not panic
	})
	if res.Failure != nil {
		t.Fatal(res.Failure)
	}
}

func TestCallNames(t *testing.T) {
	for code := CallOpen; code <= CallCloseQueue; code++ {
		if CallName(code) == "call(?)" {
			t.Fatalf("call %d has no name", code)
		}
	}
	if CallName(9999) != "call(?)" {
		t.Fatal("unknown code should be call(?)")
	}
}

func TestWriteOverwriteExtends(t *testing.T) {
	res := runL(t, func(th *sched.Thread) {
		w := NewWorld(1)
		a := w.Open(th, "f")
		a.Write(th, []byte("abcdef"))
		b := w.Open(th, "f") // independent offset
		b.Write(th, []byte("XY"))
		buf := make([]byte, 16)
		rd := w.Open(th, "f")
		n := rd.Read(th, buf)
		if !bytes.Equal(buf[:n], []byte("XYcdef")) {
			th.Fail("t", "contents %q", buf[:n])
		}
	})
	if res.Failure != nil {
		t.Fatal(res.Failure)
	}
}
