package scenario

import (
	"fmt"

	"repro/internal/appkit"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sketch"
)

// Outcome classifies how a production run ended, the vocabulary the
// matrix's expectations are declared in.
type Outcome uint8

const (
	// Clean: the run completed without any failure.
	Clean Outcome = iota
	// Bug: a corpus assertion bug manifested (sched.ReasonAssert with a
	// bug id).
	Bug
	// Crash: the run panicked (an injected fault path or a real one).
	Crash
	// Deadlock: the detector found no runnable thread — either a corpus
	// deadlock bug or an injected wedge propagating.
	Deadlock
	// Other: machinery outcomes (step limit, divergence, cancellation).
	Other
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Clean:
		return "clean"
	case Bug:
		return "bug"
	case Crash:
		return "crash"
	case Deadlock:
		return "deadlock"
	default:
		return "other"
	}
}

// Classify maps a run's failure to the matrix outcome vocabulary.
func Classify(f *sched.Failure) Outcome {
	switch {
	case f == nil:
		return Clean
	case f.Reason == sched.ReasonAssert && f.BugID != "":
		return Bug
	case f.Reason == sched.ReasonCrash:
		return Crash
	case f.Reason == sched.ReasonDeadlock:
		return Deadlock
	default:
		return Other
	}
}

// Cell is one (app, failure class) cell of the injection matrix with
// its declared expectation: an outcome the pipeline must produce
// within the seed budget and — for failures — replay to reproduction.
type Cell struct {
	App   string
	Class string
	Want  Outcome
	// EpochRing selects the always-on recording variant of the cell:
	// the production run records into a bounded epoch ring with
	// periodic checkpoints (core.Options.EpochRing) and the replay
	// starts from the newest retained checkpoint
	// (core.ReplayOptions.FromCheckpoint). The expectation is
	// unchanged — the injected failure must still be found and
	// reproduced from the bounded recording.
	EpochRing bool
}

// Matrix returns the pinned expectation table: every corpus app
// crossed with the failure classes that change its observable outcome,
// plus the baseline control column. Expectations were pinned
// empirically (TestMatrixPins re-derives a sample) and encode how each
// app's structure responds to each class: queue-driven apps deadlock
// when sends are shed or a consumer wedges, syscall-heavy servers hit
// the injected panic path, compute kernels shrug off I/O classes they
// never exercise.
func Matrix() []Cell {
	cells := []Cell{}
	for _, app := range apps.All() {
		for _, cl := range Classes() {
			cells = append(cells, Cell{App: app.Name, Class: cl.Name, Want: want(app.Name, cl.Name)})
		}
	}
	return cells
}

// ringGeometry is the epoch-ring setting the variant cells record
// under: short epochs (the injected failures land within a few
// hundred steps), a 4-epoch window, a checkpoint every seal. A cell
// whose failure predates the first checkpoint falls back to
// from-start replay — the expectation must hold either way.
var ringGeometry = core.EpochRingOptions{Steps: 64, Size: 4, CheckpointEvery: 1}

// Variants returns the always-on recording variants: every crash and
// lock-wedge cell with a failure expectation, re-run with the
// recording bounded to an epoch ring and replay restarted at the
// newest retained checkpoint. These two classes are the variants
// worth pinning: their injected event is deterministic per thread, so
// a bounded window must not lose it — the discarded prefix is exactly
// the history the checkpoint replaces.
func Variants() []Cell {
	var out []Cell
	for _, c := range Matrix() {
		if (c.Class == "crash" || c.Class == "lock-wedge") && c.Want != Clean {
			c.EpochRing = true
			out = append(out, c)
		}
	}
	return out
}

// pins is the empirically derived expectation table, row per app in
// class column order (baseline, slow-io, io-error, overload, crash,
// lock-wedge). Derived by classifying 120 production seeds per cell at
// the matrix settings (SYNC, 4 procs, preempt 0.05, world seed 1) and
// pinning an outcome each class makes reachable within the budget:
//
//   - The syscall-heavy servers reach the injected panic (their threads
//     pass 12 syscalls); the compute kernels never do and keep their
//     baseline behavior under the crash class.
//   - A wedged second lock acquisition strands the logging/queue
//     protocols of apached, barnes, mysqld, openldapd, pbzip2 and
//     radix into detected deadlocks; the remaining apps never acquire
//     twice on one thread and shrug it off.
//   - aget only manifests its SIGINT-save atomicity bug once slow or
//     shed I/O stretches the unsynchronized window — its baseline
//     column is clean at this preemption rate, the injected columns
//     are not. lu's pivot race needs more contention than any class
//     provides here, so its row pins the clean control everywhere.
var pins = map[string][6]Outcome{
	"aget":         {Clean, Bug, Clean, Bug, Crash, Clean},
	"apached":      {Bug, Bug, Bug, Bug, Crash, Deadlock},
	"barnes":       {Clean, Clean, Clean, Clean, Clean, Deadlock},
	"cherokeed":    {Bug, Bug, Bug, Bug, Bug, Bug},
	"fft":          {Bug, Bug, Bug, Bug, Bug, Bug},
	"lu":           {Clean, Clean, Clean, Clean, Clean, Clean},
	"mysqld":       {Bug, Bug, Bug, Bug, Crash, Deadlock},
	"openldapd":    {Deadlock, Deadlock, Deadlock, Deadlock, Crash, Deadlock},
	"pbzip2":       {Bug, Bug, Bug, Bug, Clean, Deadlock},
	"radix":        {Deadlock, Deadlock, Deadlock, Deadlock, Deadlock, Deadlock},
	"transmission": {Bug, Bug, Bug, Bug, Crash, Bug},
}

// want is the pinned expectation for one cell.
func want(app, class string) Outcome {
	row, ok := pins[app]
	if !ok {
		return Other
	}
	for i, cl := range Classes() {
		if cl.Name == class {
			return row[i]
		}
	}
	return Other
}

// CellResult is one driven cell.
type CellResult struct {
	Cell
	// Seed is the first production seed whose outcome matched Want
	// (-1 when none was found).
	Seed int64
	// Found reports whether the seed search succeeded.
	Found bool
	// Attempts/Reproduced describe the replay of the matching
	// recording; clean cells don't replay and report Reproduced=true.
	Attempts   int
	Reproduced bool
	Err        error
}

// OK reports whether the cell met its expectation end to end.
func (r CellResult) OK() bool { return r.Err == nil && r.Found && r.Reproduced }

// oracleFor matches the wanted failure during replay. Bug cells pin
// the exact manifested bug id; crash and deadlock cells accept any
// failure of their reason — the injected fault or wedge is the same
// deterministic event in every attempt.
func oracleFor(wantOutcome Outcome, f *sched.Failure) core.Oracle {
	switch wantOutcome {
	case Crash:
		return func(g *sched.Failure) bool { return g.Reason == sched.ReasonCrash }
	case Deadlock:
		return func(g *sched.Failure) bool { return g.Reason == sched.ReasonDeadlock }
	default:
		return core.MatchBugID(f.BugID)
	}
}

// RunCell drives one matrix cell: search production seeds for the
// declared outcome, then — for failure outcomes — replay the recording
// until the same failure reproduces and re-execute the captured order.
func RunCell(cell Cell, cfg Config) CellResult {
	res := CellResult{Cell: cell, Seed: -1}
	prog, ok := apps.Get(cell.App)
	if !ok {
		res.Err = fmt.Errorf("scenario: unknown app %q", cell.App)
		return res
	}
	cl, ok := ClassByName(cell.Class)
	if !ok {
		res.Err = fmt.Errorf("scenario: unknown class %q", cell.Class)
		return res
	}
	if m := cfg.Metrics; m != nil {
		m.Counter("pres_scenario_cells_total", "class", cell.Class).Inc()
	}
	var ring *core.EpochRingOptions
	if cell.EpochRing {
		g := ringGeometry
		ring = &g
	}
	seed, rec, err := findOutcome(prog, cl, cell.Want, ring, cfg)
	if err != nil {
		res.Err = err
		return res
	}
	res.Seed, res.Found = seed, true
	if cell.Want == Clean {
		res.Reproduced = true // nothing to replay
		return res
	}
	rep := core.ReplayContext(cfg.ctx(), prog, rec, core.ReplayOptions{
		Feedback:       true,
		MaxAttempts:    cfg.maxAttempts(),
		Oracle:         oracleFor(cell.Want, rec.Result.Failure),
		FromCheckpoint: cell.EpochRing,
		Metrics:        cfg.Metrics,
	})
	res.Attempts, res.Reproduced = rep.Attempts, rep.Reproduced
	if !rep.Reproduced {
		res.Err = fmt.Errorf("scenario: %s/%s not reproduced in %d attempts", cell.App, cell.Class, rep.Attempts)
		return res
	}
	out := core.ReproduceContext(cfg.ctx(), prog, rec, rep.Order)
	if Classify(out.Failure) != cell.Want {
		res.Err = fmt.Errorf("scenario: %s/%s captured order replays as %v, want %v",
			cell.App, cell.Class, Classify(out.Failure), cell.Want)
	}
	return res
}

// findOutcome searches production seeds until prog under the class's
// injection ends with the wanted outcome. A non-nil ring records each
// probe into an epoch ring (the always-on variant cells).
func findOutcome(prog *appkit.Program, cl Class, wantOutcome Outcome, ring *core.EpochRingOptions, cfg Config) (int64, *core.Recording, error) {
	for seed := int64(0); seed < int64(cfg.seedBudget()); seed++ {
		if err := cfg.ctx().Err(); err != nil {
			return -1, nil, err
		}
		rec := core.RecordContext(cfg.ctx(), prog, core.Options{
			Scheme:       sketch.SYNC,
			Processors:   cfg.processors(),
			Preempt:      cfg.preempt(),
			ScheduleSeed: seed,
			WorldSeed:    cfg.worldSeed(),
			MaxSteps:     cfg.maxSteps(),
			Inject:       cl.New,
			EpochRing:    ring,
			Metrics:      cfg.Metrics,
		})
		if m := cfg.Metrics; m != nil {
			m.Counter("pres_scenario_cell_seeds_total", "class", cl.Name).Inc()
		}
		if Classify(rec.Result.Failure) == wantOutcome {
			return seed, rec, nil
		}
	}
	return -1, nil, fmt.Errorf("scenario: %s/%s never produced %v in %d seeds",
		prog.Name, cl.Name, wantOutcome, cfg.seedBudget())
}

// RunMatrix drives every cell — the base cross plus the epoch-ring
// variants — sequentially (harness.RunE12 fans the same cells out to
// its worker pool).
func RunMatrix(cfg Config) []CellResult {
	cells := append(Matrix(), Variants()...)
	out := make([]CellResult, len(cells))
	for i, c := range cells {
		out[i] = RunCell(c, cfg)
	}
	return out
}
