// Package scenario stresses the PRES pipeline beyond the corpus's happy
// paths, from two directions.
//
// The first half is a declarative failure-injection matrix: a small
// table of failure classes — overloaded I/O, failing reads and writes,
// shed requests, panic paths, a worker wedging mid-protocol — each
// realized as a deterministic sched.InjectFn factory that the vsys
// syscall layer and the ssync lock acquisitions consult. Every
// (app, class) cell of the matrix declares the outcome the pipeline
// must be able to produce and reproduce (bug manifests, clean run,
// crash, deadlock detected); RunMatrix drives the cells, searching
// production seeds for the declared outcome and then replaying the
// recording to reproduction. Injection hooks are factories because
// injectors keep per-thread counters: recording, every replay attempt
// and order reproduction each get a fresh hook, so injection decisions
// are a pure function of per-thread history and repeat identically
// under any interleaving the replayer tries.
//
// The second half is a property-based program generator: Generate
// derives a random-but-structured appkit program from a seed — a bug
// template the corpus lacks (lost wakeup under load, livelock, ABA,
// double-checked locking) woven together with noise threads doing
// unrelated shared-memory, lock and syscall work. Each generated
// program carries its ground truth: the buggy variant must manifest
// its template bug under some production seed and replay to
// reproduction, the patched variant must never manifest it. Verify
// runs that pipeline for one seed; cmd/presgen sweeps and minimizes.
package scenario

import (
	"context"

	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/vsys"
)

// Config parameterizes matrix cells and generator verification.
type Config struct {
	// Ctx, when non-nil, bounds every execution. Nil means no bound.
	Ctx context.Context
	// Processors models the production machine. Default 4.
	Processors int
	// SeedBudget bounds the production-seed search per cell or per
	// generated buggy variant. Default 400.
	SeedBudget int
	// FixedSeeds is how many production seeds the patched variant of a
	// generated program is held clean over. Default 60.
	FixedSeeds int
	// MaxAttempts is the replay budget. Default 1000.
	MaxAttempts int
	// MaxSteps bounds each execution. Default 300000.
	MaxSteps uint64
	// Preempt is the production scheduler's preemption probability;
	// scenario programs are small, so the default is the patterns
	// sweep's loaded 0.05 rather than the corpus default.
	Preempt float64
	// WorldSeed seeds the virtual syscall layer. Default 1.
	WorldSeed int64
	// Metrics, when non-nil, receives the pres_scenario_* counters.
	Metrics *obs.Registry
}

func (c Config) ctx() context.Context {
	if c.Ctx == nil {
		return context.Background()
	}
	return c.Ctx
}

func (c Config) processors() int {
	if c.Processors <= 0 {
		return 4
	}
	return c.Processors
}

func (c Config) seedBudget() int {
	if c.SeedBudget <= 0 {
		return 400
	}
	return c.SeedBudget
}

func (c Config) fixedSeeds() int {
	if c.FixedSeeds <= 0 {
		return 60
	}
	return c.FixedSeeds
}

func (c Config) maxAttempts() int {
	if c.MaxAttempts <= 0 {
		return 1000
	}
	return c.MaxAttempts
}

func (c Config) maxSteps() uint64 {
	if c.MaxSteps == 0 {
		return 300_000
	}
	return c.MaxSteps
}

func (c Config) preempt() float64 {
	if c.Preempt == 0 {
		return 0.05
	}
	return c.Preempt
}

func (c Config) worldSeed() int64 {
	if c.WorldSeed == 0 {
		return 1
	}
	return c.WorldSeed
}

// Class is one declarative failure class: a named, deterministic
// injector. New returns a fresh hook per execution (the shape
// core.Options.Inject wants); nil New is the uninjected control.
type Class struct {
	Name string
	Desc string
	New  func() sched.InjectFn
}

// Classes returns the stock failure classes, in matrix column order.
func Classes() []Class {
	return []Class{
		{
			Name: "baseline",
			Desc: "no injection: the control column, bugs manifest as in E1",
			New:  nil,
		},
		{
			Name: "slow-io",
			Desc: "every file/socket syscall runs 8x slower (loaded storage)",
			New:  slowIO(8 * trace.CostUnit),
		},
		{
			Name: "io-error",
			Desc: "every 5th read/write per thread fails (flaky storage)",
			New:  ioErrorEvery(5),
		},
		{
			Name: "overload",
			Desc: "every 3rd send per thread is shed and all syscalls slow (saturation)",
			New:  overload(3, 4*trace.CostUnit),
		},
		{
			Name: "crash",
			Desc: "each thread's 12th syscall panics (fault path)",
			New:  panicOnNth(12),
		},
		{
			Name: "lock-wedge",
			Desc: "each thread's 2nd lock acquisition wedges forever (partial shutdown)",
			New:  wedgeNthLock(2),
		},
	}
}

// ClassByName returns the named stock class.
func ClassByName(name string) (Class, bool) {
	for _, c := range Classes() {
		if c.Name == name {
			return c, true
		}
	}
	return Class{}, false
}

// slowIO charges extra cost on every syscall. Stateless, but still a
// factory for uniformity with the counting injectors.
func slowIO(extra uint64) func() sched.InjectFn {
	return func() sched.InjectFn {
		return func(tid trace.TID, p sched.InjectPoint) sched.InjectAction {
			if p.Kind == sched.InjectSyscall {
				return sched.InjectAction{ExtraCost: extra}
			}
			return sched.InjectAction{}
		}
	}
}

// ioErrorEvery fails each thread's every nth read or write. The
// counter is per thread, so the decision sequence a thread sees is a
// pure function of its own syscall history — identical across every
// interleaving the replayer tries.
func ioErrorEvery(n uint64) func() sched.InjectFn {
	return func() sched.InjectFn {
		counts := map[trace.TID]uint64{}
		return func(tid trace.TID, p sched.InjectPoint) sched.InjectAction {
			if p.Kind != sched.InjectSyscall {
				return sched.InjectAction{}
			}
			switch p.Obj {
			case vsys.CallRead, vsys.CallWrite:
			default:
				return sched.InjectAction{}
			}
			counts[tid]++
			if counts[tid]%n == 0 {
				return sched.InjectAction{Outcome: sched.InjectFailOp}
			}
			return sched.InjectAction{}
		}
	}
}

// overload sheds each thread's every nth queue send and slows every
// syscall — the saturated-server class.
func overload(n, extra uint64) func() sched.InjectFn {
	return func() sched.InjectFn {
		sends := map[trace.TID]uint64{}
		return func(tid trace.TID, p sched.InjectPoint) sched.InjectAction {
			if p.Kind != sched.InjectSyscall {
				return sched.InjectAction{}
			}
			act := sched.InjectAction{ExtraCost: extra}
			if p.Obj == vsys.CallSend {
				sends[tid]++
				if sends[tid]%n == 0 {
					act.Outcome = sched.InjectFailOp
				}
			}
			return act
		}
	}
}

// panicOnNth panics on each thread's nth syscall — the modelled
// fault-handling path (assertion in a signal handler, abort on
// timeout). The first thread to get there crashes the run.
func panicOnNth(n uint64) func() sched.InjectFn {
	return func() sched.InjectFn {
		counts := map[trace.TID]uint64{}
		return func(tid trace.TID, p sched.InjectPoint) sched.InjectAction {
			if p.Kind != sched.InjectSyscall {
				return sched.InjectAction{}
			}
			counts[tid]++
			if counts[tid] == n {
				return sched.InjectAction{Outcome: sched.InjectPanic}
			}
			return sched.InjectAction{}
		}
	}
}

// wedgeNthLock blocks each thread forever at its nth lock acquisition
// — a worker stalled mid-protocol (the partial-shutdown class). The
// wedged thread never holds the lock; everyone who later joins it, or
// the protocol it abandoned, deadlocks, and the detector reports the
// stuck set.
func wedgeNthLock(n uint64) func() sched.InjectFn {
	return func() sched.InjectFn {
		counts := map[trace.TID]uint64{}
		return func(tid trace.TID, p sched.InjectPoint) sched.InjectAction {
			if p.Kind != sched.InjectLock {
				return sched.InjectAction{}
			}
			counts[tid]++
			if counts[tid] == n {
				return sched.InjectAction{Outcome: sched.InjectWedge}
			}
			return sched.InjectAction{}
		}
	}
}
