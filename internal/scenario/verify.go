package scenario

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sketch"
)

// VerifyResult is one generated program's ground-truth check.
type VerifyResult struct {
	Seed     uint64
	Template string
	ID       string
	// Procs/ManifestSeed locate the production run that manifested the
	// template bug (ManifestSeed -1: never manifested).
	Procs        int
	ManifestSeed int64
	// Attempts/Reproduced describe the replay search on that recording.
	Attempts   int
	Reproduced bool
	// FixedClean reports that the patched variant produced no failure
	// across the fixed-seed sweep.
	FixedClean bool
	Err        error
}

// OK reports whether the generated program met its ground truth end to
// end: buggy manifested and reproduced, fixed stayed clean.
func (r VerifyResult) OK() bool {
	return r.Err == nil && r.Reproduced && r.FixedClean
}

// Verify runs the PRES pipeline over one generated program: sweep
// production seeds until the buggy variant manifests its template bug,
// replay the recording to reproduction, re-execute the captured order,
// then hold the patched variant clean over the fixed-seed sweep — the
// same record/replay ground-truth discipline the corpus tests pin,
// applied to a program that did not exist until this seed.
func Verify(g *Gen, cfg Config) VerifyResult {
	res := VerifyResult{Seed: g.Seed, Template: g.Template, ID: g.ID(), ManifestSeed: -1}
	if m := cfg.Metrics; m != nil {
		m.Counter("pres_scenario_gen_programs_total", "template", g.Template).Inc()
	}
	prog := g.Program()
	oracle := core.MatchBugID(g.BugID)
	opts := func(procs int, seed int64, fix bool) core.Options {
		return core.Options{
			Scheme:       sketch.SYNC,
			Processors:   procs,
			Preempt:      cfg.preempt(),
			ScheduleSeed: seed,
			WorldSeed:    cfg.worldSeed(),
			MaxSteps:     cfg.maxSteps(),
			FixBugs:      fix,
			Metrics:      cfg.Metrics,
		}
	}
	// One-shot windows in small programs need a contended machine, so
	// the sweep covers processor counts down to a loaded uniprocessor
	// (the same ladder the pattern catalog uses).
	var rec *core.Recording
	for _, procs := range []int{cfg.processors(), 1, 2} {
		for seed := int64(0); seed < int64(cfg.seedBudget()); seed++ {
			if err := cfg.ctx().Err(); err != nil {
				res.Err = err
				return res
			}
			r := core.RecordContext(cfg.ctx(), prog, opts(procs, seed, false))
			if f := r.BugFailure(); f != nil && oracle(f) {
				rec, res.Procs, res.ManifestSeed = r, procs, seed
				break
			}
		}
		if rec != nil {
			break
		}
	}
	if rec == nil {
		res.Err = fmt.Errorf("scenario: %s (%s) never manifested %s in %d seeds/procs",
			g.name(), g.Template, g.BugID, cfg.seedBudget())
		return res
	}
	rep := core.ReplayContext(cfg.ctx(), prog, rec, core.ReplayOptions{
		Feedback:    true,
		MaxAttempts: cfg.maxAttempts(),
		Oracle:      oracle,
		Metrics:     cfg.Metrics,
	})
	res.Attempts, res.Reproduced = rep.Attempts, rep.Reproduced
	if !rep.Reproduced {
		res.Err = fmt.Errorf("scenario: %s not reproduced in %d attempts", g.name(), rep.Attempts)
		return res
	}
	if out := core.ReproduceContext(cfg.ctx(), prog, rec, rep.Order); out.Failure == nil || !oracle(out.Failure) {
		res.Err = fmt.Errorf("scenario: %s captured order lost the bug: %v", g.name(), out.Failure)
		return res
	}
	if m := cfg.Metrics; m != nil {
		m.Counter("pres_scenario_gen_reproduced_total", "template", g.Template).Inc()
	}
	// Ground truth, other direction: the patched variant must produce
	// no failure at all — the template fix really is the fix, and the
	// noise threads really are noise.
	res.FixedClean = true
	for seed := int64(0); seed < int64(cfg.fixedSeeds()); seed++ {
		if err := cfg.ctx().Err(); err != nil {
			res.Err = err
			return res
		}
		r := core.RecordContext(cfg.ctx(), prog, opts(cfg.processors(), seed, true))
		if f := r.Result.Failure; f != nil {
			res.FixedClean = false
			res.Err = fmt.Errorf("scenario: %s fixed variant fails at seed %d: %v", g.name(), seed, f)
			return res
		}
	}
	return res
}

// Minimize shrinks a failing generated program: starting from a Gen
// whose Verify did not pass, it repeatedly drops noise threads and
// truncates noise ops as long as verification keeps failing, and
// returns the smallest still-failing Gen. Use it to turn a failing
// sweep seed into a readable repro (presgen -minimize).
func Minimize(g *Gen, cfg Config) *Gen {
	cur := g.clone()
	if Verify(cur, cfg).OK() {
		return cur // nothing to minimize
	}
	for changed := true; changed; {
		changed = false
		// Drop whole noise threads.
		for i := 0; i < len(cur.Noise); i++ {
			cand := cur.clone()
			cand.Noise = append(cand.Noise[:i], cand.Noise[i+1:]...)
			if !Verify(cand, cfg).OK() {
				cur, changed = cand, true
				break
			}
		}
		if changed {
			continue
		}
		// Halve the op tail of each remaining thread.
		for i := 0; i < len(cur.Noise); i++ {
			if len(cur.Noise[i].Ops) < 2 {
				continue
			}
			cand := cur.clone()
			cand.Noise[i].Ops = cand.Noise[i].Ops[:len(cand.Noise[i].Ops)/2]
			if !Verify(cand, cfg).OK() {
				cur, changed = cand, true
				break
			}
		}
	}
	return cur
}
