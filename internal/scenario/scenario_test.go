package scenario

import (
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/trace"
)

// TestMatrix drives every pinned (app, class) cell end to end: the
// declared outcome is found within the seed budget, replays to
// reproduction, and the captured order re-executes to the same
// outcome class.
func TestMatrix(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := Config{Metrics: reg}
	for _, cell := range Matrix() {
		cell := cell
		t.Run(cell.App+"/"+cell.Class, func(t *testing.T) {
			res := RunCell(cell, cfg)
			if !res.OK() {
				t.Fatalf("cell failed: %+v", res.Err)
			}
			if cell.Want != Clean && res.Attempts < 1 {
				t.Fatalf("failure cell reported no replay attempts: %+v", res)
			}
		})
	}
	var cells uint64
	for key, v := range reg.Snapshot().Counters {
		if strings.HasPrefix(key, "pres_scenario_cells_total") {
			cells += v
		}
	}
	if want := uint64(len(Matrix())); cells != want {
		t.Fatalf("pres_scenario_cells_total = %v, want %v", cells, want)
	}
}

// TestVariants drives the epoch-ring variant cells: the same crash and
// lock-wedge expectations must hold when the recording is bounded to a
// 4-epoch ring and replay restarts from the newest retained checkpoint.
// Shape is checked for all variants; a sample is driven end to end (the
// full set rides along in TestRunE12 and E12).
func TestVariants(t *testing.T) {
	variants := Variants()
	if len(variants) == 0 {
		t.Fatal("no variant cells")
	}
	for _, c := range variants {
		if !c.EpochRing {
			t.Fatalf("variant %s/%s missing EpochRing", c.App, c.Class)
		}
		if c.Class != "crash" && c.Class != "lock-wedge" {
			t.Fatalf("variant %s/%s: unexpected class", c.App, c.Class)
		}
		if c.Want == Clean {
			t.Fatalf("variant %s/%s pins a clean outcome", c.App, c.Class)
		}
	}
	cfg := Config{}
	for _, cell := range []Cell{variants[0], variants[len(variants)/2], variants[len(variants)-1]} {
		cell := cell
		t.Run(cell.App+"/"+cell.Class+"+ring", func(t *testing.T) {
			res := RunCell(cell, cfg)
			if !res.OK() {
				t.Fatalf("variant cell failed: %+v", res.Err)
			}
		})
	}
}

// TestMatrixShape: the matrix covers the full app x class cross with
// pinned (non-Other) expectations — adding an app or a class without
// pinning its cells is a test failure, not a silent gap.
func TestMatrixShape(t *testing.T) {
	cells := Matrix()
	if want := len(apps.All()) * len(Classes()); len(cells) != want {
		t.Fatalf("matrix has %d cells, want %d", len(cells), want)
	}
	for _, c := range cells {
		if c.Want == Other {
			t.Errorf("cell %s/%s has no pinned expectation", c.App, c.Class)
		}
		if _, ok := ClassByName(c.Class); !ok {
			t.Errorf("cell %s/%s names an unknown class", c.App, c.Class)
		}
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		f    *sched.Failure
		want Outcome
	}{
		{nil, Clean},
		{&sched.Failure{Reason: sched.ReasonAssert, BugID: "x"}, Bug},
		{&sched.Failure{Reason: sched.ReasonCrash}, Crash},
		{&sched.Failure{Reason: sched.ReasonDeadlock}, Deadlock},
		{&sched.Failure{Reason: sched.ReasonStepLimit}, Other},
		{&sched.Failure{Reason: sched.ReasonAssert}, Other}, // no bug id
	}
	for _, c := range cases {
		if got := Classify(c.f); got != c.want {
			t.Errorf("Classify(%+v) = %v, want %v", c.f, got, c.want)
		}
	}
}

// TestInjectorsDeterministic: every stock injector is a pure function
// of per-thread call history — the property replay correctness rests
// on. Feed two fresh hooks the same per-thread sequences in different
// global interleavings and require identical decisions.
func TestInjectorsDeterministic(t *testing.T) {
	points := []sched.InjectPoint{
		{Kind: sched.InjectSyscall, Obj: 2},
		{Kind: sched.InjectSyscall, Obj: 3},
		{Kind: sched.InjectLock, Obj: 7},
	}
	for _, cl := range Classes() {
		if cl.New == nil {
			continue
		}
		a, b := cl.New(), cl.New()
		var alternating []sched.InjectAction
		// Interleaving 1: threads alternate. Interleaving 2: thread 1
		// runs all its points, then thread 2.
		for i := 0; i < 20; i++ {
			for tid := 1; tid <= 2; tid++ {
				alternating = append(alternating, a(trace.TID(tid), points[i%len(points)]))
			}
		}
		for tid := 1; tid <= 2; tid++ {
			for i := 0; i < 20; i++ {
				act := b(trace.TID(tid), points[i%len(points)])
				// Thread tid's i-th decision sits at 2i+tid-1 in
				// interleaving 1's commit order.
				if want := alternating[2*i+tid-1]; act != want {
					t.Fatalf("%s: decision %d of thread %d depends on interleaving: %+v vs %+v",
						cl.Name, i, tid, act, want)
				}
			}
		}
	}
}
