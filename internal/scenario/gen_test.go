package scenario

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"repro/internal/appkit"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sketch"
	"repro/internal/vsys"
)

// TestGenDeterministic is the generator's defining property: the seed
// is the only entropy source. Same seed — byte-identical source and
// ID, and byte-identical recordings; the sequential (Workers:1) replay
// search then walks the same attempt trajectory twice.
func TestGenDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		a, b := Generate(seed), Generate(seed)
		if a.Source() != b.Source() {
			t.Fatalf("seed %d: sources differ:\n%s\nvs\n%s", seed, a.Source(), b.Source())
		}
		if a.ID() != b.ID() {
			t.Fatalf("seed %d: IDs differ: %s vs %s", seed, a.ID(), b.ID())
		}
	}
	// Recordings: two productions of the same generated program under
	// the same options serialize byte for byte.
	g := Generate(3)
	opts := core.Options{Scheme: sketch.SYNC, Processors: 4, Preempt: 0.05, ScheduleSeed: 11, WorldSeed: 1, MaxSteps: 100_000}
	var bufs [2]bytes.Buffer
	for i := range bufs {
		rec := core.Record(Generate(3).Program(), opts)
		if err := rec.Write(&bufs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Fatalf("recordings differ: %d vs %d bytes", bufs[0].Len(), bufs[1].Len())
	}
	// Replay at Workers:1 is the deterministic sequential search: two
	// searches of one recording agree attempt for attempt.
	res := Verify(g, Config{})
	if !res.OK() {
		t.Fatalf("seed 3 does not verify: %v", res.Err)
	}
	rec := core.Record(g.Program(), core.Options{
		Scheme: sketch.SYNC, Processors: res.Procs, Preempt: 0.05,
		ScheduleSeed: res.ManifestSeed, WorldSeed: 1, MaxSteps: 300_000,
	})
	ropts := core.ReplayOptions{Feedback: true, Workers: 1, Oracle: core.MatchBugID(g.BugID)}
	r1 := core.Replay(g.Program(), rec, ropts)
	r2 := core.Replay(g.Program(), rec, ropts)
	if r1.Reproduced != r2.Reproduced || r1.Attempts != r2.Attempts {
		t.Fatalf("sequential searches disagree: (%v,%d) vs (%v,%d)",
			r1.Reproduced, r1.Attempts, r2.Reproduced, r2.Attempts)
	}
}

// TestGenTemplateCoverage: the first 100 seeds exercise every
// template — the sweep sizes in Makefile/presgen rest on this.
func TestGenTemplateCoverage(t *testing.T) {
	seen := map[string]bool{}
	for seed := uint64(0); seed < 100; seed++ {
		seen[Generate(seed).Template] = true
	}
	for _, tpl := range Templates() {
		if !seen[tpl] {
			t.Errorf("template %s not generated in 100 seeds", tpl)
		}
	}
}

// TestGenSweep: a slice of the full verification sweep (presgen -sweep
// runs the big one) — every generated program's buggy variant
// manifests and reproduces, every patched variant stays clean.
func TestGenSweep(t *testing.T) {
	n := uint64(40)
	if testing.Short() {
		n = 10
	}
	for seed := uint64(0); seed < n; seed++ {
		g := Generate(seed)
		if res := Verify(g, Config{}); !res.OK() {
			t.Errorf("seed %d (%s): %v", seed, g.Template, res.Err)
		}
	}
}

// TestGenGroundTruthExhaustive reuses the pattern catalog's
// prove-by-exhaustion trick on noise-free generated instances: the
// buggy variant fails under some enumerated schedule (and not all),
// the fixed variant under none within the budget.
func TestGenGroundTruthExhaustive(t *testing.T) {
	// Noise-free small instances per template, pinned by scanning the
	// generator (noise-free and minimum parameters keep the schedule
	// space inside the enumeration budget).
	seeds := map[string]uint64{TplABA: 0, TplLostLoad: 55, TplLivelock: 19, TplDCL: 49}
	for tpl, seed := range seeds {
		g := Generate(seed)
		if g.Template != tpl || len(g.Noise) != 0 {
			t.Fatalf("seed %d: want noise-free %s, got %s with %d noise threads",
				seed, tpl, g.Template, len(g.Noise))
		}
		explore := func(fixed bool) *sched.ExploreResult {
			prog := g.Program()
			return sched.Explore(func(th *sched.Thread) {
				prog.Run(&appkit.Env{T: th, W: vsys.NewWorld(1), FixBugs: fixed})
			}, sched.ExploreOptions{MaxRuns: 120_000})
		}
		buggy := explore(false)
		if buggy.FailureCount == 0 {
			t.Errorf("%s (seed %d): buggy variant never fails (%d schedules, complete=%v)",
				tpl, seed, buggy.Runs, buggy.Complete)
		}
		if buggy.Complete && buggy.FailureCount == buggy.Runs {
			t.Errorf("%s (seed %d): buggy variant always fails — not schedule-dependent", tpl, seed)
		}
		fixed := explore(true)
		if fixed.FailureCount != 0 {
			t.Errorf("%s (seed %d): fixed variant fails: %v", tpl, seed, fixed.Failures)
		}
	}
}

// TestGenMinimize: minimization preserves the failure it is given. A
// synthetic always-failing check (an unsatisfiable seed budget) must
// shrink to zero noise threads.
func TestGenMinimize(t *testing.T) {
	var g *Gen
	for seed := uint64(0); g == nil; seed++ {
		if c := Generate(seed); len(c.Noise) > 0 {
			g = c
		}
	}
	// A one-step budget step-limits every run, so Verify fails for any
	// program and the minimizer should strip all noise while keeping
	// the failure.
	min := Minimize(g, Config{MaxSteps: 1, SeedBudget: 5, FixedSeeds: 1})
	if len(min.Noise) != 0 {
		t.Fatalf("minimizer kept %d noise threads", len(min.Noise))
	}
	if min.Seed != g.Seed || min.Template != g.Template {
		t.Fatalf("minimizer changed identity: %+v", min)
	}
}

// TestGenStress records 200 generated programs back to back — under
// -race via make check — and requires the scheduler substrate to leak
// no goroutines across the batch.
func TestGenStress(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 40
	}
	before := runtime.NumGoroutine()
	for seed := 0; seed < n; seed++ {
		g := Generate(uint64(seed))
		rec := core.Record(g.Program(), core.Options{
			Scheme:       sketch.SYNC,
			Processors:   4,
			Preempt:      0.05,
			ScheduleSeed: int64(seed),
			WorldSeed:    1,
			MaxSteps:     100_000,
		})
		if rec.Sketch.Len() == 0 {
			t.Fatalf("seed %d: empty sketch", seed)
		}
	}
	// Every execution joins its thread goroutines before Run returns;
	// give the runtime a moment to retire the last exits.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// FuzzScenarioGen: any seed generates, records and replays without
// panics, hangs or non-deterministic sources. The checked-in corpus
// seeds one generation of each template plus noise-heavy cases.
func FuzzScenarioGen(f *testing.F) {
	for _, seed := range []uint64{0, 3, 19, 49, 7, 12, 99, 1 << 40} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		g := Generate(seed)
		if g.Source() != Generate(seed).Source() || g.ID() != Generate(seed).ID() {
			t.Fatalf("seed %d: generation not deterministic", seed)
		}
		prog := g.Program()
		rec := core.Record(prog, core.Options{
			Scheme:       sketch.SYNC,
			Processors:   2,
			Preempt:      0.05,
			ScheduleSeed: int64(seed % 64),
			WorldSeed:    1,
			MaxSteps:     50_000,
		})
		// Round-trip: a short bounded search must terminate cleanly
		// whatever the recording holds; reproduction is Verify's job.
		res := core.Replay(prog, rec, core.ReplayOptions{
			Feedback:    true,
			MaxAttempts: 5,
			Oracle:      core.MatchBugID(g.BugID),
			MaxSteps:    50_000,
		})
		if res.Err != nil {
			t.Fatalf("seed %d: replay error: %v", seed, res.Err)
		}
		// The fixed variant records without manifesting the bug.
		fixedRec := core.Record(prog, core.Options{
			Scheme:       sketch.SYNC,
			Processors:   2,
			Preempt:      0.05,
			ScheduleSeed: int64(seed % 64),
			WorldSeed:    1,
			MaxSteps:     50_000,
			FixBugs:      true,
		})
		if bf := fixedRec.BugFailure(); bf != nil && core.MatchBugID(g.BugID)(bf) {
			t.Fatalf("seed %d: fixed variant manifested %s", seed, g.BugID)
		}
	})
}
