// Benchmarks regenerating the paper's evaluation: one testing.B
// benchmark per table/figure (E1-E10 in DESIGN.md), plus ablation
// benches for the design choices DESIGN.md calls out. Custom metrics
// carry the experiment's actual result (replay attempts, overhead
// percentages, reduction factors); ns/op carries the cost of running
// the experiment itself. cmd/presbench prints the same data as tables.
package repro_test

import (
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/sketch"
)

var benchCfg = harness.Config{
	Processors:    4,
	MaxAttempts:   1000,
	SeedBudget:    2000,
	OverheadScale: 400,
}

// BenchmarkE1Reproduction regenerates the headline table: replay
// attempts to reproduce every corpus bug under SYNC sketching.
func BenchmarkE1Reproduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := harness.RunE1([]sketch.Scheme{sketch.SYNC}, benchCfg)
		total, repro10, failed := 0, 0, 0
		for _, r := range rows {
			if r.Err != nil || !r.Reproduced {
				failed++
				continue
			}
			total += r.Attempts
			if r.Attempts < 10 {
				repro10++
			}
		}
		b.ReportMetric(float64(total)/float64(len(rows)), "attempts/bug")
		b.ReportMetric(float64(repro10), "bugs-under-10-attempts")
		b.ReportMetric(float64(failed), "bugs-not-reproduced")
	}
}

// BenchmarkE1PerScheme sweeps the reproduction table per sketching
// mechanism (one sub-benchmark per scheme).
func BenchmarkE1PerScheme(b *testing.B) {
	for _, s := range sketch.All() {
		b.Run(s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows := harness.RunE1([]sketch.Scheme{s}, benchCfg)
				total, failed := 0, 0
				for _, r := range rows {
					if r.Err != nil || !r.Reproduced {
						failed++
						continue
					}
					total += r.Attempts
				}
				b.ReportMetric(float64(total)/float64(len(rows)), "attempts/bug")
				b.ReportMetric(float64(failed), "bugs-not-reproduced")
			}
		})
	}
}

// BenchmarkE2RecordOverhead regenerates the recording-overhead figure:
// the modelled production slowdown of each sketching mechanism, averaged
// over the 11 applications (per-scheme sub-benchmarks). ns/op is the
// wall-clock cost of the instrumented production run itself.
func BenchmarkE2RecordOverhead(b *testing.B) {
	for _, s := range sketch.All() {
		b.Run(s.String(), func(b *testing.B) {
			var rows []harness.E2Row
			for i := 0; i < b.N; i++ {
				rows = harness.RunE2([]sketch.Scheme{s}, benchCfg)
			}
			sum := 0.0
			for _, r := range rows {
				if r.Err == nil {
					sum += r.Overhead
				}
			}
			b.ReportMetric(sum/float64(len(rows))*100, "overhead-%")
		})
	}
}

// BenchmarkE3LogSize regenerates the log-size table: bytes of sketch log
// per thousand instrumented operations, per scheme.
func BenchmarkE3LogSize(b *testing.B) {
	for _, s := range sketch.All() {
		b.Run(s.String(), func(b *testing.B) {
			var rows []harness.E3Row
			for i := 0; i < b.N; i++ {
				rows = harness.RunE3([]sketch.Scheme{s}, benchCfg)
			}
			bytes, perKop := 0, 0.0
			for _, r := range rows {
				if r.Err == nil {
					bytes += r.SketchBytes
					perKop += r.BytesPerKop
				}
			}
			b.ReportMetric(float64(bytes)/float64(len(rows)), "sketch-bytes/app")
			b.ReportMetric(perKop/float64(len(rows)), "bytes/kop")
		})
	}
}

// BenchmarkE4Scalability regenerates the processor-count sweep: SYNC
// attempts and overhead at each machine size.
func BenchmarkE4Scalability(b *testing.B) {
	for _, p := range []int{1, 2, 4, 8, 16} {
		b.Run(procName(p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows := harness.RunE4([]int{p}, nil, benchCfg)
				att, ovh := 0, 0.0
				for _, r := range rows {
					if r.Err == nil {
						att += r.Attempts
						ovh += r.Overhead
					}
				}
				b.ReportMetric(float64(att)/float64(len(rows)), "attempts/bug")
				b.ReportMetric(ovh/float64(len(rows))*100, "overhead-%")
			}
		})
	}
}

func procName(p int) string {
	return map[int]string{1: "P1", 2: "P2", 4: "P4", 8: "P8", 16: "P16"}[p]
}

// BenchmarkE5Feedback regenerates the feedback-ablation figure: attempts
// with feedback-directed search versus blind random exploration.
func BenchmarkE5Feedback(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := harness.RunE5(nil, benchCfg)
		with, without, withoutFailed := 0, 0, 0
		for _, r := range rows {
			if r.Err != nil {
				continue
			}
			with += r.WithFeedback
			if r.WithoutFeedbackOK {
				without += r.WithoutFeedback
			} else {
				withoutFailed++
				without += benchCfg.MaxAttempts
			}
		}
		b.ReportMetric(float64(with)/float64(len(rows)), "attempts-with-feedback")
		b.ReportMetric(float64(without)/float64(len(rows)), "attempts-without-feedback")
		b.ReportMetric(float64(withoutFailed), "no-feedback-budget-exhaustions")
	}
}

// BenchmarkE6Determinism regenerates the reproduce-every-time check: the
// fraction of captured-order re-replays that reproduce their bug (must
// be 1.0).
func BenchmarkE6Determinism(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := harness.RunE6(nil, 25, benchCfg)
		ok := 0
		for _, r := range rows {
			if r.Err == nil && r.AllRepro {
				ok++
			}
		}
		b.ReportMetric(float64(ok)/float64(len(rows)), "deterministic-fraction")
	}
}

// BenchmarkE7Reduction regenerates the headline overhead-reduction
// number: how many times cheaper SYNC/SYS recording is than full RW
// recording (the paper reports up to 4416x).
func BenchmarkE7Reduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := harness.RunE7(benchCfg)
		best := 0.0
		for _, r := range rows {
			if r.Err == nil && (r.Scheme == sketch.SYNC || r.Scheme == sketch.SYS) && r.Reduction > best {
				best = r.Reduction
			}
		}
		b.ReportMetric(best, "max-reduction-x")
	}
}

// BenchmarkE8ReplayCost regenerates the replay-time statistics: search
// effort per reproduced bug.
func BenchmarkE8ReplayCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := harness.RunE8(benchCfg)
		att, races := 0, 0
		for _, r := range rows {
			if r.Err == nil {
				att += r.Attempts
				races += r.RacesSeen
			}
		}
		b.ReportMetric(float64(att)/float64(len(rows)), "attempts/bug")
		b.ReportMetric(float64(races)/float64(len(rows)), "races-seen/bug")
	}
}

// BenchmarkRecorderThroughput measures the real (wall-clock) cost of the
// sketch recorders on a production run of the full corpus — the actual
// Go implementation's logging speed, complementing the modelled
// overheads of E2.
func BenchmarkRecorderThroughput(b *testing.B) {
	for _, s := range sketch.All() {
		b.Run(s.String(), func(b *testing.B) {
			progs := repro.Programs()
			steps := uint64(0)
			for i := 0; i < b.N; i++ {
				for _, p := range progs {
					rec := repro.Record(p, repro.Options{
						Scheme:       s,
						Processors:   4,
						ScheduleSeed: 1,
						WorldSeed:    1,
						Scale:        100,
						FixBugs:      true,
					})
					steps += rec.Result.Steps
				}
			}
			b.ReportMetric(float64(steps)/float64(b.N), "events/iter")
		})
	}
}

// BenchmarkAblationPolicy compares the replayer's deterministic sticky
// baseline policy against seeded-random exploration on the corpus
// (design-choice ablation from DESIGN.md): the sticky baseline is what
// makes attempt 0 resemble the recorded run.
func BenchmarkAblationPolicy(b *testing.B) {
	bugs := []string{"openldap-deadlock", "radix-deadlock", "fft-barrier", "aget-atomicity"}
	b.Run("sticky-baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			first := 0
			for _, bug := range bugs {
				_, res, err := harness.ReproduceBug(bug, sketch.SYNC, benchCfg)
				if err == nil && res.Reproduced && res.Attempts == 1 {
					first++
				}
			}
			b.ReportMetric(float64(first), "first-attempt-reproductions")
		}
	})
}

// BenchmarkAblationBranch sweeps the feedback branch factor (how many
// race flips a failed attempt enqueues).
func BenchmarkAblationBranch(b *testing.B) {
	bugs := []string{"mysql-791", "lu-atomicity", "barnes-order"}
	for _, branch := range []int{2, 8, 16} {
		b.Run(branchName(branch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				total := 0
				for _, bug := range bugs {
					prog, _ := repro.ProgramForBug(bug)
					_, rec, err := harness.FindBuggySeed(prog, bug, sketch.SYNC, benchCfg)
					if err != nil {
						continue
					}
					res := core.Replay(prog, rec, core.ReplayOptions{
						Feedback:     true,
						BranchFactor: branch,
						Oracle:       core.MatchBugID(bug),
					})
					if res.Reproduced {
						total += res.Attempts
					} else {
						total += benchCfg.MaxAttempts
					}
				}
				b.ReportMetric(float64(total)/float64(len(bugs)), "attempts/bug")
			}
		})
	}
}

func branchName(n int) string {
	return map[int]string{2: "branch2", 8: "branch8", 16: "branch16"}[n]
}

// BenchmarkAblationDetector compares feedback driven by the exact
// happens-before detector against the predictive Eraser-style lockset
// detector, on bugs whose reproduction needs flips.
func BenchmarkAblationDetector(b *testing.B) {
	bugs := []string{"lu-atomicity", "cherokee-326", "mysql-791"}
	for _, lockset := range []bool{false, true} {
		name := "happens-before"
		if lockset {
			name = "lockset"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				total := 0
				for _, bug := range bugs {
					prog, _ := repro.ProgramForBug(bug)
					_, rec, err := harness.FindBuggySeed(prog, bug, sketch.SYNC, benchCfg)
					if err != nil {
						continue
					}
					res := core.Replay(prog, rec, core.ReplayOptions{
						Feedback:   true,
						UseLockset: lockset,
						Oracle:     core.MatchBugID(bug),
					})
					if res.Reproduced {
						total += res.Attempts
					} else {
						total += benchCfg.MaxAttempts
					}
				}
				b.ReportMetric(float64(total)/float64(len(bugs)), "attempts/bug")
			}
		})
	}
}

// BenchmarkParallelReplay measures wall-clock speedup from running
// replay attempts concurrently (they are independent executions).
func BenchmarkParallelReplay(b *testing.B) {
	prog, _ := repro.ProgramForBug("mysql-791")
	_, rec, err := harness.FindBuggySeed(prog, "mysql-791", sketch.SYNC, benchCfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range []int{1, 4, 8} {
		b.Run(map[int]string{1: "P1", 4: "P4", 8: "P8"}[p], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := core.Replay(prog, rec, core.ReplayOptions{
					Feedback: true,
					Oracle:   core.MatchBugID("mysql-791"),
					Workers:  p,
				})
				if !res.Reproduced {
					b.Fatal("not reproduced")
				}
				b.ReportMetric(float64(res.Attempts), "attempts")
			}
		})
	}
}

// BenchmarkE10Patterns regenerates the canonical bug-pattern matrix
// (extension): attempts to reproduce each pattern class under SYNC.
func BenchmarkE10Patterns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := harness.RunE10([]sketch.Scheme{sketch.SYNC}, benchCfg)
		total, failed := 0, 0
		for _, r := range rows {
			if r.Err != nil || !r.Reproduced {
				failed++
				continue
			}
			total += r.Attempts
		}
		b.ReportMetric(float64(total)/float64(len(rows)), "attempts/pattern")
		b.ReportMetric(float64(failed), "patterns-not-reproduced")
	}
}
