// Presgen drives the property-based scenario generator from the
// command line: emit a generated program's pseudo-source, verify its
// record/replay ground truth, sweep a seed range, and minimize a
// failing seed into a readable repro.
//
// Usage:
//
//	presgen -seed 7            # generate seed 7, verify, print the verdict
//	presgen -seed 7 -emit      # print the generated pseudo-source only
//	presgen -sweep 100         # verify seeds 0..99; exit 1 if any fails
//	presgen -seed 7 -minimize  # shrink a failing seed, print the minimal source
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"repro/internal/scenario"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("presgen: ")

	seed := flag.Uint64("seed", 0, "generator seed")
	emit := flag.Bool("emit", false, "print the generated program's pseudo-source and exit")
	sweep := flag.Int("sweep", 0, "verify seeds 0..N-1 instead of a single seed (0 = off)")
	minimize := flag.Bool("minimize", false, "on verification failure, shrink the program and print the minimal failing source")
	seedBudget := flag.Int("seed-budget", 0, "production seeds searched per buggy variant (0 = scenario default)")
	maxAttempts := flag.Int("max-attempts", 0, "replay attempt budget (0 = scenario default)")
	procs := flag.Int("procs", 0, "modelled processor count (0 = scenario default)")
	timeout := flag.Duration("timeout", 0, "wall-clock bound on the whole run (0 = none); SIGINT also cancels")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt)
	defer stop()

	cfg := scenario.Config{
		Ctx:         ctx,
		Processors:  *procs,
		SeedBudget:  *seedBudget,
		MaxAttempts: *maxAttempts,
	}

	if *sweep > 0 {
		failed := 0
		for s := uint64(0); s < uint64(*sweep); s++ {
			if ctx.Err() != nil {
				log.Fatalf("cancelled after %d seeds: %v", s, ctx.Err())
			}
			g := scenario.Generate(s)
			res := scenario.Verify(g, cfg)
			if res.OK() {
				fmt.Printf("seed %d %s %s: ok (procs=%d manifest-seed=%d attempts=%d)\n",
					s, g.Template, g.ID(), res.Procs, res.ManifestSeed, res.Attempts)
				continue
			}
			failed++
			fmt.Printf("seed %d %s %s: FAIL: %v\n", s, g.Template, g.ID(), res.Err)
			if *minimize {
				fmt.Print(scenario.Minimize(g, cfg).Source())
			}
		}
		fmt.Printf("%d/%d seeds verified\n", *sweep-failed, *sweep)
		if failed > 0 {
			os.Exit(1)
		}
		return
	}

	g := scenario.Generate(*seed)
	if *emit {
		fmt.Print(g.Source())
		return
	}
	res := scenario.Verify(g, cfg)
	fmt.Printf("seed %d template %s id %s\n", g.Seed, g.Template, g.ID())
	if res.OK() {
		fmt.Printf("ok: %s manifested (procs=%d manifest-seed=%d), reproduced in %d attempts, fixed variant clean\n",
			g.BugID, res.Procs, res.ManifestSeed, res.Attempts)
		return
	}
	fmt.Printf("FAIL: %v\n", res.Err)
	if *minimize {
		fmt.Println("minimal failing program:")
		fmt.Print(scenario.Minimize(g, cfg).Source())
	}
	os.Exit(1)
}
