// Presreplay runs the PRES intelligent replayer on a recording written
// by presrun: it explores the unrecorded non-deterministic space with
// feedback from failed attempts until the bug reproduces, then verifies
// the captured full order replays deterministically.
//
// Usage:
//
//	presreplay -app mysqld -bug mysql-169 run.pres
//	presreplay -app mysqld -bug mysql-169 -seed 7 -from-checkpoint run.pres
//
// An epoch-ring recording (presrun -epoch-steps/-epoch-ring/
// -checkpoint-every) additionally carries checkpoints; -from-checkpoint
// starts every attempt at the newest one, which needs the recording's
// schedule seed (-seed) to re-execute the prefix deterministically.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("presreplay: ")

	appName := flag.String("app", "", "corpus application the recording is of")
	bugID := flag.String("bug", "", "target bug id (empty accepts any manifested bug)")
	procs := flag.Int("procs", 4, "processor count used for the recording")
	scale := flag.Int("scale", 0, "workload scale used for the recording")
	worldSeed := flag.Int64("world-seed", 1, "world seed used for the recording")
	seed := flag.Int64("seed", 0, "schedule seed used for the recording (required by -from-checkpoint's prefix re-execution)")
	fromCP := flag.Bool("from-checkpoint", false, "start every attempt at the recording's newest retained checkpoint instead of process start")
	maxAttempts := flag.Int("max-attempts", 1000, "replay attempt budget")
	noFeedback := flag.Bool("no-feedback", false, "disable feedback (random exploration ablation)")
	verify := flag.Int("verify", 3, "re-replays of the captured order after success")
	simplify := flag.Bool("simplify", true, "minimize context switches in the captured schedule")
	workers := flag.Int("workers", 1, "work-stealing attempt workers (1 = exact sequential search)")
	prefixSnaps := flag.Bool("prefix-snapshots", false, "resume child attempts from shared-prefix snapshots instead of re-executing from step 0")
	snapBudget := flag.Int64("snapshot-budget", 0, "prefix-snapshot cache budget in bytes (0 = 64 MiB default)")
	adaptive := flag.Bool("adaptive", false, "let the worker pool retune itself from measured occupancy")
	timeout := flag.Duration("timeout", 0, "wall-clock bound on the search (0 = none); SIGINT also cancels gracefully")
	cacheSize := flag.Int("search-cache", 0, "schedule-cache capacity in attempts (0 disables, -1 = default size)")
	verbose := flag.Bool("v", false, "print each replay attempt as it completes")
	metricsOut := flag.String("metrics-out", "", "write a metrics snapshot to this file")
	metricsFormat := flag.String("metrics-format", "json", "metrics snapshot format: json or prom")
	traceOut := flag.String("trace-out", "", "write a JSONL attempt trace to this file (see OBSERVABILITY.md)")
	flag.Parse()

	if *appName == "" || flag.NArg() != 1 {
		log.Fatal("usage: presreplay -app <name> [-bug <id>] <recording-file>")
	}
	if *metricsFormat != "json" && *metricsFormat != "prom" && *metricsFormat != "prometheus" {
		log.Fatalf("unknown -metrics-format %q (want json or prom)", *metricsFormat)
	}
	prog, ok := repro.GetProgram(*appName)
	if !ok {
		log.Fatalf("unknown application %q (see preslist)", *appName)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	rec, err := repro.ReadRecording(f, repro.Options{
		Processors:   *procs,
		WorldSeed:    *worldSeed,
		Scale:        *scale,
		ScheduleSeed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := rec.Validate(); err != nil {
		log.Fatalf("recording failed validation: %v", err)
	}
	fmt.Printf("recording: scheme=%v entries=%d inputs=%d\n",
		rec.Scheme, rec.Sketch.Len(), rec.Inputs.Len())
	if ring := rec.Epochs; ring != nil {
		fmt.Printf("epochs: %d retained (+%d evicted), %d checkpoints, window=%d entries\n",
			len(ring.Epochs), ring.Evicted, len(ring.Checkpoints), ring.WindowLen())
	}
	if *fromCP {
		if rec.Epochs == nil || len(rec.Epochs.Checkpoints) == 0 {
			log.Print("warning: -from-checkpoint set but the recording carries no checkpoints; replaying from process start")
		} else if cp := rec.Epochs.Checkpoints[len(rec.Epochs.Checkpoints)-1]; true {
			fmt.Printf("replaying from checkpoint at epoch %d (step %d, %d inputs consumed)\n",
				cp.Epoch, cp.Step, cp.InputIndex)
		}
	}

	// The search context: -timeout bounds the wall clock, and SIGINT
	// cancels cooperatively — either way the pool drains, the committed
	// attempt prefix is reported, and the sinks below still flush.
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt)
	defer stop()

	var oracle repro.Oracle
	if *bugID != "" {
		oracle = repro.MatchBugID(*bugID)
	}
	ropts := repro.ReplayOptions{
		Feedback:            !*noFeedback,
		MaxAttempts:         *maxAttempts,
		Oracle:              oracle,
		Workers:             *workers,
		AdaptiveWorkers:     *adaptive,
		FromCheckpoint:      *fromCP,
		PrefixSnapshots:     *prefixSnaps,
		SnapshotBudgetBytes: *snapBudget,
	}
	var cache *repro.SearchCache
	if *cacheSize != 0 {
		size := *cacheSize
		if size < 0 {
			size = 0 // NewSearchCache's default capacity
		}
		cache = repro.NewSearchCache(size)
		ropts.Cache = cache
	}
	if *verbose {
		ropts.OnAttempt = func(i int, mode, outcome string) {
			fmt.Printf("  attempt %-4d %-8s %s\n", i, mode, outcome)
		}
	}

	// Observability sinks (see OBSERVABILITY.md for the contract). Both
	// are flushed on every exit path, including a failed search — a
	// search that exhausted its budget is exactly the one worth
	// diffing against a run that succeeded.
	var reg *repro.MetricsRegistry
	if *metricsOut != "" {
		reg = repro.NewMetricsRegistry()
		ropts.Metrics = reg
	}
	var traceFile *os.File
	if *traceOut != "" {
		tf, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		traceFile = tf
		ropts.Trace = repro.NewTraceSink(tf)
	}
	flush := func() {
		if cache != nil {
			hits, misses := cache.Stats()
			fmt.Printf("schedule cache: %d hits, %d misses, %d entries\n", hits, misses, cache.Len())
		}
		if ropts.Trace != nil {
			if err := ropts.Trace.Err(); err != nil {
				log.Printf("trace: %v", err)
			}
			if err := traceFile.Close(); err != nil {
				log.Printf("trace: %v", err)
			}
			fmt.Printf("attempt trace written to %s (%d events)\n", *traceOut, ropts.Trace.Events())
		}
		if reg != nil {
			f, err := os.Create(*metricsOut)
			if err != nil {
				log.Fatal(err)
			}
			if err := repro.WriteMetrics(f, reg, *metricsFormat); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("metrics snapshot written to %s\n", *metricsOut)
		}
	}

	res := repro.ReplayContext(ctx, prog, rec, ropts)
	if !res.Reproduced {
		if res.Err != nil {
			fmt.Printf("search interrupted (%v) after %d committed attempts (%+v)\n",
				res.Err, res.Attempts, res.Stats)
		} else {
			fmt.Printf("NOT reproduced within %d attempts (%+v)\n", res.Attempts, res.Stats)
			fmt.Printf("advice: %s\n", repro.Advise(rec, res))
		}
		flush()
		os.Exit(1)
	}
	fmt.Printf("reproduced in %d attempts (%d race flips): %v\n", res.Attempts, res.Flips, res.Failure)
	if res.Stats.Steps > 0 {
		fmt.Printf("  scheduler: %d steps, %d handoffs (%.3f/step), %d fast-path steps\n",
			res.Stats.Steps, res.Stats.Handoffs,
			float64(res.Stats.Handoffs)/float64(res.Stats.Steps), res.Stats.FastPathSteps)
	}
	if *prefixSnaps {
		st := res.Stats
		fmt.Printf("  snapshots: %d hits, %d misses, %d captured (%d bytes, %d evicted), %d/%d steps fast-forwarded\n",
			st.SnapshotHits, st.SnapshotMisses, st.SnapshotCaptures,
			st.SnapshotBytes, st.SnapshotEvicted, st.FastForwardSteps, st.Steps)
	}
	for _, rc := range res.RootCauses {
		fmt.Printf("  root-cause race: %v\n", rc)
	}

	ok = true
	for i := 0; i < *verify; i++ {
		out := repro.Reproduce(prog, rec, res.Order)
		if out.Failure == nil || !out.Failure.IsBug() {
			ok = false
			break
		}
	}
	if !ok {
		log.Fatal("captured order did not re-reproduce — this is a bug in the replayer")
	}
	fmt.Printf("captured order re-reproduced the failure %d/%d times\n", *verify, *verify)

	if *simplify {
		before := repro.Switches(res.Order)
		simple, spent := repro.Simplify(prog, rec, res.Order, 0)
		fmt.Printf("simplified schedule: %d -> %d context switches (%d re-executions)\n",
			before, repro.Switches(simple), spent)
	}

	flush()
}
