// Presreplay runs the PRES intelligent replayer on a recording written
// by presrun: it explores the unrecorded non-deterministic space with
// feedback from failed attempts until the bug reproduces, then verifies
// the captured full order replays deterministically.
//
// Usage:
//
//	presreplay -app mysqld -bug mysql-169 run.pres
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("presreplay: ")

	appName := flag.String("app", "", "corpus application the recording is of")
	bugID := flag.String("bug", "", "target bug id (empty accepts any manifested bug)")
	procs := flag.Int("procs", 4, "processor count used for the recording")
	scale := flag.Int("scale", 0, "workload scale used for the recording")
	worldSeed := flag.Int64("world-seed", 1, "world seed used for the recording")
	maxAttempts := flag.Int("max-attempts", 1000, "replay attempt budget")
	noFeedback := flag.Bool("no-feedback", false, "disable feedback (random exploration ablation)")
	verify := flag.Int("verify", 3, "re-replays of the captured order after success")
	simplify := flag.Bool("simplify", true, "minimize context switches in the captured schedule")
	parallel := flag.Int("parallel", 1, "replay attempts to run concurrently")
	verbose := flag.Bool("v", false, "print each replay attempt as it completes")
	flag.Parse()

	if *appName == "" || flag.NArg() != 1 {
		log.Fatal("usage: presreplay -app <name> [-bug <id>] <recording-file>")
	}
	prog, ok := repro.GetProgram(*appName)
	if !ok {
		log.Fatalf("unknown application %q (see preslist)", *appName)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	rec, err := repro.ReadRecording(f, repro.Options{
		Processors: *procs,
		WorldSeed:  *worldSeed,
		Scale:      *scale,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := rec.Validate(); err != nil {
		log.Fatalf("recording failed validation: %v", err)
	}
	fmt.Printf("recording: scheme=%v entries=%d inputs=%d\n",
		rec.Scheme, rec.Sketch.Len(), rec.Inputs.Len())

	var oracle repro.Oracle
	if *bugID != "" {
		oracle = repro.MatchBugID(*bugID)
	}
	ropts := repro.ReplayOptions{
		Feedback:    !*noFeedback,
		MaxAttempts: *maxAttempts,
		Oracle:      oracle,
		Parallelism: *parallel,
	}
	if *verbose {
		ropts.OnAttempt = func(i int, mode, outcome string) {
			fmt.Printf("  attempt %-4d %-8s %s\n", i, mode, outcome)
		}
	}
	res := repro.Replay(prog, rec, ropts)
	if !res.Reproduced {
		fmt.Printf("NOT reproduced within %d attempts (%+v)\n", res.Attempts, res.Stats)
		fmt.Printf("advice: %s\n", repro.Advise(rec, res))
		os.Exit(1)
	}
	fmt.Printf("reproduced in %d attempts (%d race flips): %v\n", res.Attempts, res.Flips, res.Failure)
	for _, rc := range res.RootCauses {
		fmt.Printf("  root-cause race: %v\n", rc)
	}

	ok = true
	for i := 0; i < *verify; i++ {
		out := repro.Reproduce(prog, rec, res.Order)
		if out.Failure == nil || !out.Failure.IsBug() {
			ok = false
			break
		}
	}
	if !ok {
		log.Fatal("captured order did not re-reproduce — this is a bug in the replayer")
	}
	fmt.Printf("captured order re-reproduced the failure %d/%d times\n", *verify, *verify)

	if *simplify {
		before := repro.Switches(res.Order)
		simple, spent := repro.Simplify(prog, rec, res.Order, 0)
		fmt.Printf("simplified schedule: %d -> %d context switches (%d re-executions)\n",
			before, repro.Switches(simple), spent)
	}
}
