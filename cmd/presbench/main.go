// Presbench regenerates every table and figure of the paper's
// evaluation (experiments E1-E13 in DESIGN.md; paper-vs-measured is
// recorded in EXPERIMENTS.md).
//
// Usage:
//
//	presbench                 # all experiments
//	presbench -exp e1         # one experiment
//	presbench -exp e1 -schemes SYNC,SYS -procs 8
//	presbench -j 1            # sequential cells (same tables, slower)
//	presbench -scenarios      # only the failure-injection matrix + generator sweep (E12)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/sketch"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("presbench: ")

	exp := flag.String("exp", "all", "experiment to run: e1..e13 or all")
	schemeList := flag.String("schemes", "", "comma-separated scheme subset (default: all)")
	procs := flag.Int("procs", 4, "modelled processor count")
	budget := flag.Int("max-attempts", 1000, "replay attempt budget")
	seedBudget := flag.Int("seed-budget", 2000, "production seeds to search per bug")
	overheadScale := flag.Int("overhead-scale", 800, "workload scale for overhead/log-size runs")
	replays := flag.Int("e6-replays", 100, "re-replays per bug in E6")
	jobs := flag.Int("j", 0, "experiment cells run in parallel (0 = GOMAXPROCS, 1 = sequential; tables are identical at any value)")
	workers := flag.Int("workers", 0, "work-stealing attempt workers per replay search (0 = sequential)")
	perThreadLog := flag.Bool("per-thread-log", false, "record production runs into per-thread sketch shards merged at encode time (identical tables; E2/E7 overheads reflect the cheaper append)")
	adaptive := flag.Bool("adaptive", false, "let each search's worker pool retune itself from occupancy")
	cacheSize := flag.Int("search-cache", 0, "shared schedule-cache capacity in attempts (0 disables, -1 = default size)")
	timeout := flag.Duration("timeout", 0, "wall-clock bound on the whole run (0 = none); SIGINT also cancels gracefully")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	metricsOut := flag.String("metrics-out", "", "write an aggregate metrics snapshot to this file")
	metricsFormat := flag.String("metrics-format", "json", "metrics snapshot format: json or prom")
	traceOut := flag.String("trace-out", "", "write a JSONL trace of every replay attempt across all experiments")
	scenarios := flag.Bool("scenarios", false, "run only the failure-injection scenarios (shorthand for -exp e12)")
	genSweep := flag.Int("gen-sweep", 50, "generated-program seeds verified by E12's generator sweep")
	epochRing := flag.Int("epoch-ring", 2, "epoch-ring capacity (retained epochs) for E13's always-on recordings")
	cpEvery := flag.Int("checkpoint-every", 1, "checkpoint cadence in epoch rolls for E13's always-on recordings")
	flag.Parse()

	if *scenarios {
		*exp = "e12"
	}

	if *metricsFormat != "json" && *metricsFormat != "prom" && *metricsFormat != "prometheus" {
		log.Fatalf("unknown -metrics-format %q (want json or prom)", *metricsFormat)
	}

	// The run context: -timeout bounds the wall clock, SIGINT cancels
	// cooperatively. Every seed search, recording and replay the harness
	// performs observes it, so a cancelled run still renders the rows it
	// finished and flushes its sinks.
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt)
	defer stop()

	cfg := harness.Config{
		Ctx:             ctx,
		Processors:      *procs,
		MaxAttempts:     *budget,
		SeedBudget:      *seedBudget,
		OverheadScale:   *overheadScale,
		Jobs:            *jobs,
		Workers:         *workers,
		AdaptiveWorkers: *adaptive,
		PerThreadLog:    *perThreadLog,
	}
	if *cacheSize != 0 {
		size := *cacheSize
		if size < 0 {
			size = 0 // core.NewSearchCache's default capacity
		}
		cfg.SearchCache = core.NewSearchCache(size)
	}
	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.NewRegistry()
		cfg.Metrics = reg
	}
	if *traceOut != "" {
		tf, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		defer tf.Close()
		cfg.Trace = obs.NewTraceSink(tf)
	}

	var schemes []sketch.Scheme
	if *schemeList != "" {
		for _, name := range strings.Split(*schemeList, ",") {
			s, err := sketch.Parse(strings.TrimSpace(name))
			if err != nil {
				log.Fatal(err)
			}
			schemes = append(schemes, s)
		}
	}

	results := map[string]any{}
	run := func(id, title string, f func() any) {
		if *exp != "all" && !strings.EqualFold(*exp, id) {
			return
		}
		if ctx.Err() != nil {
			// The run was cancelled: skip remaining experiments instead of
			// rendering tables of zero-valued cells.
			return
		}
		start := time.Now()
		if !*asJSON {
			fmt.Printf("== %s: %s ==\n", strings.ToUpper(id), title)
		}
		results[id] = f()
		if !*asJSON {
			fmt.Printf("(%s in %v)\n\n", strings.ToUpper(id), time.Since(start).Round(time.Millisecond))
		}
	}

	run("e1", "replay attempts to reproduce each bug, per sketching mechanism", func() any {
		rows := harness.RunE1(schemes, cfg)
		if !*asJSON {
			harness.PrintE1(os.Stdout, rows, cfg)
		}
		return rows
	})
	run("e2", "production-run recording overhead, per app and mechanism", func() any {
		rows := harness.RunE2(schemes, cfg)
		if !*asJSON {
			harness.PrintE2(os.Stdout, rows)
		}
		return rows
	})
	run("e3", "sketch/input log sizes, per app and mechanism", func() any {
		rows := harness.RunE3(schemes, cfg)
		if !*asJSON {
			harness.PrintE3(os.Stdout, rows)
		}
		return rows
	})
	run("e4", "scalability with processor count (SYNC)", func() any {
		rows := harness.RunE4(nil, nil, cfg)
		if !*asJSON {
			harness.PrintE4(os.Stdout, rows, cfg)
		}
		return rows
	})
	run("e5", "feedback-directed search vs. random exploration", func() any {
		rows := harness.RunE5(nil, cfg)
		if !*asJSON {
			harness.PrintE5(os.Stdout, rows, cfg)
		}
		return rows
	})
	run("e6", "reproduce-every-time after first success", func() any {
		rows := harness.RunE6(nil, *replays, cfg)
		if !*asJSON {
			harness.PrintE6(os.Stdout, rows)
		}
		return rows
	})
	run("e7", "recording-overhead reduction vs. full RW recording", func() any {
		rows := harness.RunE7(cfg)
		if !*asJSON {
			harness.PrintE7(os.Stdout, rows)
		}
		return rows
	})
	run("e8", "replayer search statistics (SYNC)", func() any {
		rows := harness.RunE8(cfg)
		if !*asJSON {
			harness.PrintE8(os.Stdout, rows)
		}
		return rows
	})
	run("e9", "sketch-log truncation (extension): attempts vs retained tail", func() any {
		rows := harness.RunE9(nil, nil, cfg)
		if !*asJSON {
			harness.PrintE9(os.Stdout, rows, cfg)
		}
		return rows
	})
	run("e10", "canonical bug-pattern matrix (extension)", func() any {
		rows := harness.RunE10(schemes, cfg)
		if !*asJSON {
			harness.PrintE10(os.Stdout, rows, cfg)
		}
		return rows
	})
	run("e11", "work-stealing search scaling and schedule-cache reuse (extension)", func() any {
		rows := harness.RunE11(nil, nil, cfg)
		if !*asJSON {
			harness.PrintE11(os.Stdout, rows, cfg)
		}
		return rows
	})
	run("e12", "failure-injection matrix and generated-program sweep (extension)", func() any {
		rows := harness.RunE12(cfg)
		gen := harness.RunE12Gen(*genSweep, cfg)
		if !*asJSON {
			harness.PrintE12(os.Stdout, rows)
			fmt.Println()
			harness.PrintE12Gen(os.Stdout, gen)
		}
		return map[string]any{"matrix": rows, "gen": gen}
	})
	run("e13", "always-on epoch-ring recording: attempts and window size vs epoch length (extension)", func() any {
		rows := harness.RunE13(nil, nil, *epochRing, *cpEvery, cfg)
		if !*asJSON {
			harness.PrintE13(os.Stdout, rows, cfg)
		}
		return rows
	})

	interrupted := ctx.Err() != nil
	if interrupted && !*asJSON {
		fmt.Printf("run interrupted (%v): remaining experiments skipped, partial results above\n\n", ctx.Err())
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			log.Fatal(err)
		}
	}

	if cfg.Trace != nil {
		if err := cfg.Trace.Err(); err != nil {
			log.Printf("trace: %v", err)
		}
		if !*asJSON {
			fmt.Printf("attempt trace written to %s (%d events)\n", *traceOut, cfg.Trace.Events())
		}
	}
	if reg != nil {
		if !*asJSON {
			fmt.Println("== aggregate metrics ==")
			harness.PrintMetrics(os.Stdout, reg.Snapshot())
		}
		f, err := os.Create(*metricsOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := obs.WriteSnapshot(f, reg, *metricsFormat); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		if !*asJSON {
			fmt.Printf("metrics snapshot written to %s\n", *metricsOut)
		}
	}
}
