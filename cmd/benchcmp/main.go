// Benchcmp guards the repo's recorded performance numbers: it finds
// the two newest BENCH_*.json reports (presperf output) in a
// directory, treats the older as the baseline and the newer as the
// candidate, and fails when a shared headline regresses by more than
// the threshold.
//
// Compared headlines:
//
//   - sched: per app, the best after_steps_per_sec across the report's
//     GOMAXPROCS settings (older reports carry one unlabelled setting
//     per app; grouping by app and taking the max reads both shapes);
//   - encode: per scheme, v2_bytes_per_entry (lower is better).
//
// Apps or schemes present in only one report are skipped — the gate
// compares what both reports measured, it does not demand identical
// coverage. With fewer than two reports there is nothing to compare
// and the tool exits 0, so a fresh clone passes `make check`.
//
// Usage:
//
//	benchcmp -dir . -threshold 10
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"time"
)

type benchReport struct {
	Tool  string `json:"tool"`
	Sched []struct {
		App              string  `json:"app"`
		AfterStepsPerSec float64 `json:"after_steps_per_sec"`
	} `json:"sched"`
	Encode []struct {
		Scheme          string  `json:"scheme"`
		V2BytesPerEntry float64 `json:"v2_bytes_per_entry"`
	} `json:"encode"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchcmp: ")
	dir := flag.String("dir", ".", "directory holding BENCH_*.json reports")
	threshold := flag.Float64("threshold", 10, "regression tolerance in percent")
	flag.Parse()

	paths, err := filepath.Glob(filepath.Join(*dir, "BENCH_*.json"))
	if err != nil {
		log.Fatal(err)
	}
	if len(paths) < 2 {
		fmt.Printf("benchcmp: %d report(s) in %s — nothing to compare\n", len(paths), *dir)
		return
	}
	sort.Slice(paths, func(i, j int) bool { return mtime(paths[i]).Before(mtime(paths[j])) })
	basePath, curPath := paths[len(paths)-2], paths[len(paths)-1]
	base, cur := load(basePath), load(curPath)
	fmt.Printf("benchcmp: baseline %s, candidate %s, threshold %.0f%%\n",
		filepath.Base(basePath), filepath.Base(curPath), *threshold)

	regressions := 0
	compared := 0
	check := func(kind, name string, baseVal, curVal float64, lowerBetter bool) {
		if baseVal <= 0 || curVal <= 0 {
			return
		}
		compared++
		deltaPct := 100 * (curVal/baseVal - 1)
		bad := deltaPct < -*threshold
		if lowerBetter {
			bad = deltaPct > *threshold
		}
		if bad {
			regressions++
			fmt.Printf("REGRESSION %-6s %-14s %.4g -> %.4g (%+.1f%%)\n", kind, name, baseVal, curVal, deltaPct)
		} else {
			fmt.Printf("ok         %-6s %-14s %.4g -> %.4g (%+.1f%%)\n", kind, name, baseVal, curVal, deltaPct)
		}
	}

	baseSched, curSched := bestSched(base), bestSched(cur)
	for _, app := range sortedKeys(baseSched) {
		if curVal, ok := curSched[app]; ok {
			check("sched", app, baseSched[app], curVal, false)
		}
	}
	baseEnc, curEnc := encBytes(base), encBytes(cur)
	for _, scheme := range sortedKeys(baseEnc) {
		if curVal, ok := curEnc[scheme]; ok {
			check("encode", scheme, baseEnc[scheme], curVal, true)
		}
	}

	if compared == 0 {
		fmt.Println("benchcmp: reports share no comparable rows")
		return
	}
	if regressions > 0 {
		log.Fatalf("%d of %d compared headline(s) regressed beyond %.0f%%", regressions, compared, *threshold)
	}
	fmt.Printf("benchcmp: %d headline(s) within %.0f%%\n", compared, *threshold)
}

func mtime(path string) time.Time {
	fi, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	return fi.ModTime()
}

func load(path string) *benchReport {
	b, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	var r benchReport
	if err := json.Unmarshal(b, &r); err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return &r
}

// bestSched reduces a report's sched section to the best
// after_steps_per_sec per app — the max over however many GOMAXPROCS
// settings the report recorded for it.
func bestSched(r *benchReport) map[string]float64 {
	out := map[string]float64{}
	for _, s := range r.Sched {
		if s.AfterStepsPerSec > out[s.App] {
			out[s.App] = s.AfterStepsPerSec
		}
	}
	return out
}

func encBytes(r *benchReport) map[string]float64 {
	out := map[string]float64{}
	for _, e := range r.Encode {
		out[e.Scheme] = e.V2BytesPerEntry
	}
	return out
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
